// A memory-lean client fleet: ONE network node multiplexing up to millions
// of simulated open-loop clients. The simulated network keeps flat n-by-n
// state, so modeling 10^6 clients as real nodes is infeasible; the fleet
// instead superposes their Poisson arrival streams into one exponential
// stream at rate num_clients * reads_per_second and keeps ~16 bytes of
// arena state per client (a SplitMix64 stream that seeds a fresh xoshiro
// generator per operation, so each client's op sequence is deterministic
// and independent of interleaving).
//
// The fleet models the steady-state read/write path only:
//   - certificates and keys are wired directly by the harness (the hello
//     storm of 10^6 setups is not what the scale sweep measures),
//   - every reply still runs the paper's full client-side verification
//     (result hash, pledge + token signatures via a shared verify cache,
//     freshness window), and accepted pledges are forwarded to the
//     auditor when auditing is on,
//   - probabilistic double-checks and retries are left to the full Client
//     (which exercises them under chaos); a fleet op that times out or
//     fails any check simply counts as failed.
// Multi-shard reads fan out one leg per planned subquery and count
// accepted only when every leg verifies; merged results are not
// materialized (the sweep measures the read path, not result plumbing).
#ifndef SDR_SRC_WORKLOAD_FLEET_H_
#define SDR_SRC_WORKLOAD_FLEET_H_

#include <functional>
#include <map>
#include <vector>

#include "src/core/config.h"
#include "src/core/messages.h"
#include "src/core/shard.h"
#include "src/runtime/env.h"
#include "src/store/document_store.h"
#include "src/store/query.h"
#include "src/trace/histogram.h"
#include "src/util/rng.h"

namespace sdr {

class ClientFleet : public Node {
 public:
  struct Options {
    ProtocolParams params;
    size_t num_clients = 1000;
    double reads_per_second = 1.0;  // per simulated client
    double write_fraction = 0.0;
    std::function<Query(Rng&)> query_source;       // required
    std::function<WriteBatch(Rng&)> write_source;  // required if writing
    uint64_t rng_seed = 1;

    // Wiring, one entry per shard (a single entry = the classic one-group
    // deployment). Reads pick a uniform slave from the owning shard's
    // set; writes go to a uniform master of that shard.
    struct ShardWiring {
      std::vector<Certificate> slave_certs;
      std::vector<NodeId> masters;
      NodeId auditor = kInvalidNode;
    };
    ShardMap shard_map;  // default-constructed = one shard
    std::vector<ShardWiring> shards;
    std::map<NodeId, Bytes> master_keys;
  };

  struct Metrics {
    uint64_t reads_issued = 0;
    uint64_t reads_accepted = 0;
    uint64_t reads_failed = 0;   // decline, bad check, or timeout
    uint64_t subreads_sent = 0;  // legs, >= reads_issued when sharded
    uint64_t writes_issued = 0;
    uint64_t writes_committed = 0;
    uint64_t writes_failed = 0;
    uint64_t pledges_forwarded = 0;
    uint64_t sig_cache_hits = 0;
    uint64_t sig_cache_misses = 0;
    LatencyHistogram read_rtt_us;
    LatencyHistogram write_rtt_us;
  };

  explicit ClientFleet(Options options);

  void Start() override;
  void HandleMessage(NodeId from, const Payload& payload) override;

  const Metrics& metrics() const {
    metrics_.sig_cache_hits = verify_cache_.stats().hits;
    metrics_.sig_cache_misses = verify_cache_.stats().misses;
    return metrics_;
  }
  size_t num_clients() const { return options_.num_clients; }

 private:
  // One multiplexed operation (possibly several legs when sharded).
  struct Op {
    SimTime issued = 0;
    uint32_t remaining = 0;
    bool is_write = false;
    EventId timeout = 0;
    std::vector<uint64_t> subs;  // outstanding sub-request ids
  };
  struct SubRead {
    uint64_t op = 0;
    uint32_t shard = 0;
    NodeId slave = kInvalidNode;
  };

  void ScheduleArrival();
  void DispatchOp();
  void IssueFleetRead(Rng& op_rng);
  void IssueFleetWrite(Rng& op_rng);
  void HandleReadReply(NodeId from, BytesView body);
  void HandleWriteReply(BytesView body);
  void FailOp(uint64_t op_id);
  void FinishOp(uint64_t op_id, bool ok);
  const Certificate* SlaveCert(uint32_t shard, NodeId slave) const;

  Options options_;
  Rng rng_;  // arrival stream + client picks
  // Per-client SplitMix64 streams: 8 bytes per simulated client.
  std::vector<uint64_t> client_state_;

  uint64_t next_op_id_ = 1;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, Op> ops_;
  std::map<uint64_t, SubRead> subreads_;
  std::map<uint64_t, uint64_t> subwrites_;  // request id -> op id

  VerifyCache verify_cache_;
  mutable Metrics metrics_;
};

}  // namespace sdr

#endif  // SDR_SRC_WORKLOAD_FLEET_H_
