// Synthetic workloads standing in for the paper's motivating applications:
// CDN-replicated product catalogues and academic/medical/legal databases
// (Section 6) — high read/write ratios, a mix of cheap point reads and
// expensive aggregation queries, Zipfian key popularity, and diurnal load.
#ifndef SDR_SRC_WORKLOAD_WORKLOAD_H_
#define SDR_SRC_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/runtime/env.h"
#include "src/store/document_store.h"
#include "src/store/query.h"
#include "src/util/rng.h"

namespace sdr {

// Zipf-distributed ranks in [0, n): rank r drawn with probability
// proportional to 1/(r+1)^s. Sampled by binary search over the CDF.
class ZipfGenerator {
 public:
  ZipfGenerator(size_t n, double s);
  size_t Next(Rng& rng) const;
  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

// Builds an e-commerce-catalogue-like corpus:
//   item/NNNNN  -> short description text (from a fixed vocabulary)
//   price/NNNNN -> integer price in cents
//   stock/NNNNN -> integer stock count
struct CorpusConfig {
  size_t n_items = 200;
  size_t words_per_item = 8;
  int64_t max_price_cents = 100000;
  int64_t max_stock = 500;
};

DocumentStore BuildCatalogCorpus(const CorpusConfig& config, Rng& rng);

// Key helpers matching the corpus layout.
std::string ItemKey(size_t index);
std::string PriceKey(size_t index);
std::string StockKey(size_t index);

// Generates read queries with a configurable mix of cost classes.
struct QueryMix {
  size_t n_items = 200;
  double get_weight = 0.70;    // point lookups (cheap)
  double scan_weight = 0.15;   // bounded range scans
  double grep_weight = 0.10;   // regex over descriptions (expensive)
  double agg_weight = 0.05;    // SUM/AVG/COUNT over prices (expensive)
  double zipf_s = 0.99;        // key popularity skew
  uint32_t scan_span = 10;     // items per scan

  Query Generate(Rng& rng) const;
};

// Write generator: updates a random item's price/stock, occasionally adds
// or removes an item.
struct WriteGen {
  size_t n_items = 200;
  double delete_fraction = 0.02;
  WriteBatch Generate(Rng& rng) const;
};

// Diurnal load multiplier: a raised cosine with its trough at 3 AM (the
// paper's "few requests at 3AM in the night"), its peak 12 hours later.
//   multiplier(t) in [min_fraction, 1].
struct DiurnalShape {
  double min_fraction = 0.1;
  SimTime period = 24 * kHour;
  SimTime trough_at = 3 * kHour;

  double Multiplier(SimTime t) const;
};

// Words used for item descriptions; exposed so grep patterns in benchmarks
// can be chosen with known selectivity.
const std::vector<std::string>& CatalogVocabulary();

}  // namespace sdr

#endif  // SDR_SRC_WORKLOAD_WORKLOAD_H_
