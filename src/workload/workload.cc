#include "src/workload/workload.h"

#include <algorithm>
#include <memory>
#include <cmath>
#include <cstdio>

namespace sdr {

ZipfGenerator::ZipfGenerator(size_t n, double s) {
  cdf_.reserve(n);
  double acc = 0;
  for (size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_.push_back(acc);
  }
  for (double& v : cdf_) {
    v /= acc;
  }
}

size_t ZipfGenerator::Next(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

const std::vector<std::string>& CatalogVocabulary() {
  static const std::vector<std::string> kVocab = {
      "red",     "blue",    "green",   "steel",   "oak",     "ceramic",
      "widget",  "gadget",  "bracket", "valve",   "sensor",  "cable",
      "compact", "rugged",  "premium", "budget",  "wireless", "portable",
      "indoor",  "outdoor", "marine",  "alpine",  "classic", "modern"};
  return kVocab;
}

std::string ItemKey(size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "item/%05zu", index);
  return buf;
}

std::string PriceKey(size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "price/%05zu", index);
  return buf;
}

std::string StockKey(size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "stock/%05zu", index);
  return buf;
}

DocumentStore BuildCatalogCorpus(const CorpusConfig& config, Rng& rng) {
  DocumentStore store;
  const auto& vocab = CatalogVocabulary();
  for (size_t i = 0; i < config.n_items; ++i) {
    std::string description;
    for (size_t w = 0; w < config.words_per_item; ++w) {
      if (w > 0) {
        description += ' ';
      }
      description += vocab[rng.NextBounded(vocab.size())];
    }
    store.Apply(WriteOp::Put(ItemKey(i), description));
    store.Apply(WriteOp::Put(
        PriceKey(i),
        std::to_string(rng.NextInt(1, config.max_price_cents))));
    store.Apply(
        WriteOp::Put(StockKey(i), std::to_string(rng.NextInt(0, config.max_stock))));
  }
  return store;
}

Query QueryMix::Generate(Rng& rng) const {
  static thread_local std::unique_ptr<ZipfGenerator> zipf;
  static thread_local size_t zipf_n = 0;
  static thread_local double zipf_param = 0;
  if (!zipf || zipf_n != n_items || zipf_param != zipf_s) {
    zipf = std::make_unique<ZipfGenerator>(n_items, zipf_s);
    zipf_n = n_items;
    zipf_param = zipf_s;
  }
  size_t idx = zipf->Next(rng);

  double total = get_weight + scan_weight + grep_weight + agg_weight;
  double pick = rng.NextDouble() * total;
  if ((pick -= get_weight) < 0) {
    // Point read of one of the three families.
    switch (rng.NextBounded(3)) {
      case 0:
        return Query::Get(ItemKey(idx));
      case 1:
        return Query::Get(PriceKey(idx));
      default:
        return Query::Get(StockKey(idx));
    }
  }
  if ((pick -= scan_weight) < 0) {
    size_t lo = idx;
    size_t hi = std::min(n_items, lo + scan_span);
    return Query::Scan(ItemKey(lo), ItemKey(hi), scan_span);
  }
  if ((pick -= grep_weight) < 0) {
    const auto& vocab = CatalogVocabulary();
    return Query::Grep(vocab[rng.NextBounded(vocab.size())], "item/", "item0");
  }
  switch (rng.NextBounded(3)) {
    case 0:
      return Query::Aggregate(QueryKind::kSum, "price/", "price0");
    case 1:
      return Query::Aggregate(QueryKind::kAvg, "price/", "price0");
    default:
      return Query::Aggregate(QueryKind::kCount, "stock/", "stock0");
  }
}

WriteBatch WriteGen::Generate(Rng& rng) const {
  size_t idx = rng.NextBounded(n_items);
  if (rng.NextBool(delete_fraction)) {
    return {WriteOp::Delete(ItemKey(idx)), WriteOp::Delete(PriceKey(idx)),
            WriteOp::Delete(StockKey(idx))};
  }
  WriteBatch batch;
  batch.push_back(
      WriteOp::Put(PriceKey(idx), std::to_string(rng.NextInt(1, 100000))));
  if (rng.NextBool(0.5)) {
    batch.push_back(
        WriteOp::Put(StockKey(idx), std::to_string(rng.NextInt(0, 500))));
  }
  return batch;
}

double DiurnalShape::Multiplier(SimTime t) const {
  double phase = 2.0 * 3.14159265358979 *
                 static_cast<double>((t - trough_at) % period) /
                 static_cast<double>(period);
  // Raised cosine: 0 at the trough, 1 at the peak.
  double raised = 0.5 * (1.0 - std::cos(phase));
  return min_fraction + (1.0 - min_fraction) * raised;
}

}  // namespace sdr
