#include "src/workload/fleet.h"

#include <algorithm>

#include "src/core/pledge.h"

namespace sdr {

namespace {
// SplitMix64 step: the per-client stream generator. One draw per op seeds
// a throwaway xoshiro Rng, so each client's op sequence is deterministic
// regardless of how the fleet's arrivals interleave.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

ClientFleet::ClientFleet(Options options)
    : options_(std::move(options)), rng_(options_.rng_seed) {}

void ClientFleet::Start() {
  rng_ = Rng(options_.rng_seed ^ (static_cast<uint64_t>(id()) << 32));
  if (options_.num_clients == 0 || !options_.query_source ||
      options_.shards.empty()) {
    return;
  }
  client_state_.resize(options_.num_clients);
  for (size_t i = 0; i < options_.num_clients; ++i) {
    client_state_[i] = options_.rng_seed * 0x9E3779B97F4A7C15ull +
                       static_cast<uint64_t>(i);
  }
  ScheduleArrival();
}

void ClientFleet::ScheduleArrival() {
  // Superposition of num_clients independent Poisson streams = one Poisson
  // stream at the aggregate rate, with a uniform client pick per arrival.
  double rate = std::max(
      static_cast<double>(options_.num_clients) * options_.reads_per_second,
      1e-9);
  SimTime gap = static_cast<SimTime>(
      rng_.NextExponential(static_cast<double>(kSecond) / rate));
  env()->ScheduleAfter(gap, [this] {
    DispatchOp();
    ScheduleArrival();
  });
}

void ClientFleet::DispatchOp() {
  size_t client = rng_.NextBounded(options_.num_clients);
  Rng op_rng(SplitMix64(client_state_[client]));
  bool write = options_.write_fraction > 0.0 && options_.write_source &&
               op_rng.NextBool(options_.write_fraction);
  if (write) {
    IssueFleetWrite(op_rng);
  } else {
    IssueFleetRead(op_rng);
  }
}

const Certificate* ClientFleet::SlaveCert(uint32_t shard,
                                          NodeId slave) const {
  for (const Certificate& cert : options_.shards[shard].slave_certs) {
    if (cert.subject == slave) {
      return &cert;
    }
  }
  return nullptr;
}

void ClientFleet::IssueFleetRead(Rng& op_rng) {
  Query query = options_.query_source(op_rng);
  std::vector<ShardSubquery> plan = PlanShardQuery(options_.shard_map, query);
  uint64_t op_id = next_op_id_++;
  Op op;
  op.issued = env()->Now();
  op.remaining = static_cast<uint32_t>(plan.size());
  ++metrics_.reads_issued;
  for (const ShardSubquery& leg : plan) {
    uint32_t shard = std::min<uint32_t>(
        leg.shard, static_cast<uint32_t>(options_.shards.size()) - 1);
    const auto& certs = options_.shards[shard].slave_certs;
    if (certs.empty()) {
      ++metrics_.reads_failed;
      return;  // misconfigured wiring; drop the op
    }
    NodeId slave = certs[op_rng.NextBounded(certs.size())].subject;
    uint64_t sub_id = next_request_id_++;
    ReadRequest msg;
    msg.request_id = sub_id;
    msg.query = leg.query;
    env()->Send(slave, WithType(MsgType::kReadRequest, msg.Encode()));
    subreads_[sub_id] = SubRead{op_id, shard, slave};
    op.subs.push_back(sub_id);
    ++metrics_.subreads_sent;
  }
  op.timeout = env()->ScheduleAfter(options_.params.client_timeout,
                                    [this, op_id] { FailOp(op_id); });
  ops_.emplace(op_id, std::move(op));
}

void ClientFleet::IssueFleetWrite(Rng& op_rng) {
  WriteBatch batch = options_.write_source(op_rng);
  // Split by owning shard, preserving op order within a shard.
  std::map<uint32_t, WriteBatch> by_shard;
  for (WriteOp& wop : batch) {
    uint32_t shard = std::min<uint32_t>(
        options_.shard_map.ShardForKey(wop.key),
        static_cast<uint32_t>(options_.shards.size()) - 1);
    by_shard[shard].push_back(std::move(wop));
  }
  if (by_shard.empty()) {
    return;
  }
  uint64_t op_id = next_op_id_++;
  Op op;
  op.issued = env()->Now();
  op.is_write = true;
  op.remaining = static_cast<uint32_t>(by_shard.size());
  ++metrics_.writes_issued;
  for (auto& [shard, sub_batch] : by_shard) {
    const auto& masters = options_.shards[shard].masters;
    if (masters.empty()) {
      ++metrics_.writes_failed;
      return;
    }
    NodeId master = masters[op_rng.NextBounded(masters.size())];
    uint64_t sub_id = next_request_id_++;
    WriteRequest msg;
    msg.request_id = sub_id;
    msg.batch = std::move(sub_batch);
    env()->Send(master, WithType(MsgType::kWriteRequest, msg.Encode()));
    subwrites_[sub_id] = op_id;
    op.subs.push_back(sub_id);
  }
  op.timeout = env()->ScheduleAfter(options_.params.client_timeout,
                                    [this, op_id] { FailOp(op_id); });
  ops_.emplace(op_id, std::move(op));
}

void ClientFleet::HandleReadReply(NodeId from, BytesView body) {
  auto msg = ReadReply::Decode(body);
  if (!msg.ok()) {
    return;
  }
  auto sit = subreads_.find(msg->request_id);
  if (sit == subreads_.end() || from != sit->second.slave) {
    return;
  }
  uint64_t op_id = sit->second.op;
  uint32_t shard = sit->second.shard;
  if (!msg->ok) {
    FailOp(op_id);  // decline; the fleet does not retry
    return;
  }
  // The paper's full client-side verification, minus double-checks.
  const Pledge& pledge = msg->pledge;
  const Certificate* cert = SlaveCert(shard, from);
  auto key = options_.master_keys.find(pledge.token.master);
  if (cert == nullptr || key == options_.master_keys.end() ||
      pledge.slave != from ||
      msg->result.Sha1Digest() != pledge.result_sha1 ||
      !VerifyPledgeAndToken(options_.params.scheme, cert->subject_public_key,
                            key->second, pledge, &verify_cache_) ||
      !TokenIsFresh(pledge.token, env()->Now(),
                    options_.params.max_latency)) {
    FailOp(op_id);
    return;
  }
  NodeId auditor = options_.shards[shard].auditor;
  if (options_.params.audit_enabled && auditor != kInvalidNode) {
    AuditSubmit submit;
    submit.pledge = pledge;
    ++metrics_.pledges_forwarded;
    env()->Send(auditor, WithType(MsgType::kAuditSubmit, submit.Encode()));
  }
  subreads_.erase(sit);
  auto oit = ops_.find(op_id);
  if (oit == ops_.end()) {
    return;
  }
  if (--oit->second.remaining == 0) {
    FinishOp(op_id, true);
  }
}

void ClientFleet::HandleWriteReply(BytesView body) {
  auto msg = WriteReply::Decode(body);
  if (!msg.ok()) {
    return;
  }
  auto sit = subwrites_.find(msg->request_id);
  if (sit == subwrites_.end()) {
    return;
  }
  uint64_t op_id = sit->second;
  if (!msg->ok) {
    FailOp(op_id);
    return;
  }
  subwrites_.erase(sit);
  auto oit = ops_.find(op_id);
  if (oit == ops_.end()) {
    return;
  }
  if (--oit->second.remaining == 0) {
    FinishOp(op_id, true);
  }
}

void ClientFleet::FailOp(uint64_t op_id) { FinishOp(op_id, false); }

void ClientFleet::FinishOp(uint64_t op_id, bool ok) {
  auto it = ops_.find(op_id);
  if (it == ops_.end()) {
    return;
  }
  Op& op = it->second;
  env()->Cancel(op.timeout);
  for (uint64_t sub : op.subs) {
    subreads_.erase(sub);
    subwrites_.erase(sub);
  }
  if (op.is_write) {
    if (ok) {
      ++metrics_.writes_committed;
      metrics_.write_rtt_us.Record(env()->Now() - op.issued);
    } else {
      ++metrics_.writes_failed;
    }
  } else {
    if (ok) {
      ++metrics_.reads_accepted;
      metrics_.read_rtt_us.Record(env()->Now() - op.issued);
    } else {
      ++metrics_.reads_failed;
    }
  }
  ops_.erase(it);
}

void ClientFleet::HandleMessage(NodeId from, const Payload& payload) {
  auto type = PeekType(payload);
  if (!type.ok()) {
    return;
  }
  BytesView body = BytesView(payload).substr(1);
  switch (*type) {
    case MsgType::kReadReply:
      HandleReadReply(from, body);
      break;
    case MsgType::kWriteReply:
      HandleWriteReply(body);
      break;
    // The fleet only models the steady-state read/write path; everything
    // else is ignored by design.
    case MsgType::kDirectoryLookup:
    case MsgType::kDirectoryLookupReply:
    case MsgType::kClientHello:
    case MsgType::kClientHelloReply:
    case MsgType::kReadRequest:
    case MsgType::kWriteRequest:
    case MsgType::kDoubleCheckRequest:
    case MsgType::kDoubleCheckReply:
    case MsgType::kAccusation:
    case MsgType::kReassignment:
    case MsgType::kStateUpdate:
    case MsgType::kStateUpdateBatch:
    case MsgType::kKeepAlive:
    case MsgType::kSlaveAck:
    case MsgType::kAuditSubmit:
    case MsgType::kBroadcastEnvelope:
    case MsgType::kBadReadNotice:
    case MsgType::kVvExchange:
    case MsgType::kForkEvidence:
    case MsgType::kPlacementQuery:
    case MsgType::kPlacementReply:
      break;
  }
}

}  // namespace sdr
