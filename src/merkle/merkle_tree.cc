#include "src/merkle/merkle_tree.h"

#include <algorithm>

#include "src/crypto/sha2.h"
#include "src/util/serde.h"

namespace sdr {

namespace {
Bytes InternalHash(const Bytes& left, const Bytes& right) {
  Sha256 h;
  uint8_t tag = 0x01;
  h.Update(&tag, 1);
  h.Update(left);
  h.Update(right);
  return h.Final();
}

Bytes EmptyRoot() {
  uint8_t tag = 0x02;
  Sha256 h;
  h.Update(&tag, 1);
  return h.Final();
}
}  // namespace

Bytes MerkleTree::LeafHash(const std::string& key, const std::string& value) {
  Sha256 h;
  uint8_t tag = 0x00;
  h.Update(&tag, 1);
  Writer w;
  w.Blob(key);
  w.Blob(value);
  h.Update(w.bytes());
  return h.Final();
}

MerkleTree MerkleTree::Build(const DocumentStore& store) {
  MerkleTree tree;
  std::vector<Bytes> level;
  for (const auto& [key, value] : store.data()) {
    tree.entries_.emplace_back(key, value);
    level.push_back(LeafHash(key, value));
  }
  if (level.empty()) {
    tree.levels_.push_back({EmptyRoot()});
    return tree;
  }
  tree.levels_.push_back(level);
  while (tree.levels_.back().size() > 1) {
    const std::vector<Bytes>& prev = tree.levels_.back();
    std::vector<Bytes> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i + 1 < prev.size(); i += 2) {
      next.push_back(InternalHash(prev[i], prev[i + 1]));
    }
    if (prev.size() % 2 == 1) {
      next.push_back(prev.back());  // odd promotion
    }
    tree.levels_.push_back(std::move(next));
  }
  return tree;
}

std::optional<MerkleTree::Proof> MerkleTree::Prove(
    const std::string& key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == entries_.end() || it->first != key) {
    return std::nullopt;
  }
  size_t index = static_cast<size_t>(it - entries_.begin());

  Proof proof;
  proof.key = key;
  proof.value = it->second;
  size_t pos = index;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const std::vector<Bytes>& level = levels_[lvl];
    ProofStep step;
    if (pos % 2 == 0) {
      if (pos + 1 < level.size()) {
        step.sibling = level[pos + 1];
        step.sibling_on_left = false;
      } else {
        step.promoted = true;
      }
    } else {
      step.sibling = level[pos - 1];
      step.sibling_on_left = true;
    }
    proof.steps.push_back(std::move(step));
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::VerifyProof(const Proof& proof, const Bytes& root) {
  Bytes h = LeafHash(proof.key, proof.value);
  for (const ProofStep& step : proof.steps) {
    if (step.promoted) {
      continue;
    }
    h = step.sibling_on_left ? InternalHash(step.sibling, h)
                             : InternalHash(h, step.sibling);
  }
  return h == root;
}

Bytes MerkleTree::Proof::Encode() const {
  Writer w;
  w.Blob(key);
  w.Blob(value);
  w.U32(static_cast<uint32_t>(steps.size()));
  for (const ProofStep& s : steps) {
    w.U8(static_cast<uint8_t>((s.sibling_on_left ? 1 : 0) |
                              (s.promoted ? 2 : 0)));
    w.Blob(s.sibling);
  }
  return w.Take();
}

std::optional<MerkleTree::Proof> MerkleTree::Proof::Decode(const Bytes& data) {
  Reader r(data);
  Proof p;
  p.key = r.BlobString();
  p.value = r.BlobString();
  uint32_t n = r.U32();
  if (n > 64) {
    return std::nullopt;  // deeper than any 2^64-leaf tree: corrupt
  }
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    ProofStep s;
    uint8_t flags = r.U8();
    s.sibling_on_left = (flags & 1) != 0;
    s.promoted = (flags & 2) != 0;
    s.sibling = r.Blob();
    p.steps.push_back(std::move(s));
  }
  if (!r.Done()) {
    return std::nullopt;
  }
  return p;
}

}  // namespace sdr
