// Merkle hash tree over the document store, for the state-signing baseline
// (related-work systems [7, 11, 13, 3] in the paper): the content owner
// signs the root; slaves serve point reads with membership proofs that
// clients verify against the signed root.
//
// Leaves are H(0x00 || key || value) in key order; internal nodes are
// H(0x01 || left || right); an odd node at the end of a level is promoted
// unchanged. The empty tree has root H(0x02).
#ifndef SDR_SRC_MERKLE_MERKLE_TREE_H_
#define SDR_SRC_MERKLE_MERKLE_TREE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/store/document_store.h"
#include "src/util/bytes.h"

namespace sdr {

class MerkleTree {
 public:
  struct ProofStep {
    Bytes sibling;
    bool sibling_on_left = false;
    // True when this level had no sibling (odd promotion) — no hash folded.
    bool promoted = false;

    bool operator==(const ProofStep&) const = default;
  };

  // A membership proof for (key, value) against a root.
  struct Proof {
    std::string key;
    std::string value;
    std::vector<ProofStep> steps;

    Bytes Encode() const;
    static std::optional<Proof> Decode(const Bytes& data);
  };

  // Builds the tree for the current store contents.
  static MerkleTree Build(const DocumentStore& store);

  const Bytes& root() const { return levels_.back()[0]; }
  size_t leaf_count() const { return entries_.size(); }

  // Produces a membership proof (key, value, and path); nullopt if the key
  // is absent. (The baseline routes reads of absent keys — like all
  // non-point queries — to a trusted master; authenticated non-membership
  // would need a range proof, which these 2003-era systems typically
  // lacked.)
  std::optional<Proof> Prove(const std::string& key) const;

  // Verifies a proof against `root`.
  static bool VerifyProof(const Proof& proof, const Bytes& root);

  static Bytes LeafHash(const std::string& key, const std::string& value);

 private:
  MerkleTree() = default;

  // Sorted leaf entries (key, value); values retained so proofs are
  // self-contained.
  std::vector<std::pair<std::string, std::string>> entries_;
  std::vector<std::vector<Bytes>> levels_;  // levels_[0] = leaves
};

}  // namespace sdr

#endif  // SDR_SRC_MERKLE_MERKLE_TREE_H_
