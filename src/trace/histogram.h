// HdrHistogram-style log-bucketed latency histogram. Values below
// 2^kSubBits land in exact unit buckets; above that, every power of two is
// split into 2^kSubBits sub-buckets, bounding the relative error of any
// recorded value to ~3% while keeping the bucket count small enough to
// merge and export thousands of per-node histograms at run end.
//
// Everything here is deterministic: bucket indices are pure integer
// arithmetic, iteration is over a dense vector, and quantiles use the
// nearest-rank rule — so two same-seed runs export byte-identical
// summaries (rule R2's contract extends to trace artifacts).
#ifndef SDR_SRC_TRACE_HISTOGRAM_H_
#define SDR_SRC_TRACE_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sdr {

class LatencyHistogram {
 public:
  // 32 sub-buckets per power of two: worst-case bucket width is 1/32 of
  // the value, i.e. ~3.1% relative error on any reported quantile.
  static constexpr int kSubBits = 5;
  static constexpr uint64_t kSubCount = 1ull << kSubBits;

  // Records one value; negative values clamp to zero (latencies are
  // non-negative by construction, but virtual-time subtraction can yield
  // zero-width intervals).
  void Record(int64_t value);

  // Adds every bucket, count, min/max/sum of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double sum() const { return sum_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  // Nearest-rank quantile, reported as the lower bound of the bucket the
  // rank falls into (clamped to the recorded max). q in [0, 1].
  int64_t Quantile(double q) const;
  int64_t Median() const { return Quantile(0.5); }
  int64_t P99() const { return Quantile(0.99); }

  // Dense bucket counts, index 0 upward; trailing buckets may be absent.
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  // Bucket mapping, exposed for tests and the binary trace format.
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);

  // Reconstruction hook for the binary trace loader: adds `n` recordings
  // into bucket `index` without touching min/max/sum (those are carried
  // explicitly in the trace file).
  void AddBucketCount(size_t index, uint64_t n);
  void SetStats(int64_t min, int64_t max, double sum) {
    min_ = min;
    max_ = max;
    sum_ = sum;
  }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace sdr

#endif  // SDR_SRC_TRACE_HISTOGRAM_H_
