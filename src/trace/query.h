// Query layer over a decoded trace: follow one causal chain end to end,
// rank the slowest read chains, and summarize exclusion verdicts with their
// evidence paths. Backs the sdrtrace CLI; also used in tests.
#ifndef SDR_SRC_TRACE_QUERY_H_
#define SDR_SRC_TRACE_QUERY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/trace/export.h"
#include "src/trace/trace.h"

namespace sdr {

class TraceQuery {
 public:
  explicit TraceQuery(const TraceData& data);

  // All events carrying `id`, in emission order.
  std::vector<TraceEvent> Chain(TraceId id) const;

  // Human-readable causal chain: one line per event with absolute sim
  // time, per-hop latency from the previous event, role/node, and name.
  // Returns an explanatory message when the id is unknown.
  std::string FormatChain(TraceId id) const;

  struct ReadDuration {
    TraceId id = kNoTrace;
    uint32_t node = 0;   // client that issued the read
    SimTime begin = 0;
    SimTime duration = 0;
    bool accepted = false;  // span-end value: 1 accepted, 0 failed
  };
  // Completed "read" spans ranked by duration (desc), ties by trace id.
  std::vector<ReadDuration> SlowestReads(size_t n) const;
  std::string FormatSlowest(size_t n) const;

  struct Verdict {
    SimTime time = 0;
    uint32_t master = 0;
    uint32_t excluded_slave = 0;  // the exclude instant's value payload
    TraceId id = kNoTrace;        // evidence chain, if traced
  };
  // Every "master.exclude" instant, in time order.
  std::vector<Verdict> Verdicts() const;
  // Each verdict plus the full evidence chain that produced it.
  std::string FormatVerdicts() const;

  // Event-name frequency table, node registry, histogram summaries.
  std::string FormatSummary() const;

  // All trace ids present, ascending. Useful for picking a chain to follow.
  std::vector<TraceId> TraceIds() const;

 private:
  const TraceData& data_;
  std::map<TraceId, std::vector<size_t>> by_id_;  // event indices, in order
};

// Parses a trace id written either as decimal or 0x-hex.
bool ParseTraceId(const std::string& s, TraceId* out);

}  // namespace sdr

#endif  // SDR_SRC_TRACE_QUERY_H_
