// Trace exporters: a compact binary trace file (loadable by sdrtrace), a
// Chrome trace_event JSON document (loadable in Perfetto / chrome://tracing),
// and histogram summaries for the byte-stable --json report. All three are
// deterministic functions of the sink contents.
#ifndef SDR_SRC_TRACE_EXPORT_H_
#define SDR_SRC_TRACE_EXPORT_H_

#include <map>
#include <string>
#include <vector>

#include "src/trace/histogram.h"
#include "src/trace/trace.h"
#include "src/util/bytes.h"
#include "src/util/json.h"
#include "src/util/result.h"

namespace sdr {

// In-memory image of a trace: what the binary file round-trips. Built from
// a live sink via Snapshot() or from a file via DecodeTrace().
struct TraceData {
  std::vector<std::string> names;  // index 0 is the reserved empty name
  std::map<uint32_t, TraceSink::NodeInfo> nodes;
  std::vector<TraceEvent> events;  // emission order, oldest first

  struct HistEntry {
    uint16_t name = 0;
    TraceRole role = TraceRole::kNone;
    uint32_t node = 0;
    LatencyHistogram hist;
  };
  std::vector<HistEntry> histograms;  // sorted by (name, role, node)

  uint64_t dropped = 0;

  const std::string& Name(uint16_t id) const {
    static const std::string kUnknown = "?";
    return id < names.size() ? names[id] : kUnknown;
  }
  std::map<std::string, LatencyHistogram> MergedHistograms() const;
};

TraceData Snapshot(const TraceSink& sink);

// Binary format "SDRT": string table, node registry, fixed-width events,
// sparse histogram buckets. Byte-stable for equal sink contents.
Bytes EncodeTrace(const TraceData& data);
inline Bytes EncodeTrace(const TraceSink& sink) {
  return EncodeTrace(Snapshot(sink));
}
Result<TraceData> DecodeTrace(const Bytes& buf);

// Chrome trace_event JSON (https://docs.google.com/document/d/1CvAClvFfyA5R-
// PhYUmn5OOQtYMH4h6I0nSsKchNAySU): one process per registered node, spans as
// B/E pairs, instants as "i", counters as "C". ts is virtual microseconds.
JsonValue ChromeTraceJson(const TraceData& data);
inline JsonValue ChromeTraceJson(const TraceSink& sink) {
  return ChromeTraceJson(Snapshot(sink));
}

// Histogram summary block for the sdrsim --json report: per-name merged
// {count, min, max, mean, p50, p99} objects keyed by histogram name.
JsonValue HistogramSummaryJson(
    const std::map<std::string, LatencyHistogram>& merged);

}  // namespace sdr

#endif  // SDR_SRC_TRACE_EXPORT_H_
