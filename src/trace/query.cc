#include "src/trace/query.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace sdr {
namespace {

std::string Fmt(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

std::string FmtTime(SimTime us) {
  return Fmt("%10.3fms", static_cast<double>(us) / 1000.0);
}

const char* EventTypeGlyph(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSpanBegin:
      return "[";
    case TraceEventType::kSpanEnd:
      return "]";
    case TraceEventType::kInstant:
      return "*";
    case TraceEventType::kCounter:
      return "#";
  }
  return "?";
}

}  // namespace

TraceQuery::TraceQuery(const TraceData& data) : data_(data) {
  for (size_t i = 0; i < data_.events.size(); ++i) {
    TraceId id = data_.events[i].trace_id;
    if (id != kNoTrace) {
      by_id_[id].push_back(i);
    }
  }
}

std::vector<TraceEvent> TraceQuery::Chain(TraceId id) const {
  std::vector<TraceEvent> out;
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return out;
  }
  out.reserve(it->second.size());
  for (size_t index : it->second) {
    out.push_back(data_.events[index]);
  }
  return out;
}

std::string TraceQuery::FormatChain(TraceId id) const {
  std::vector<TraceEvent> chain = Chain(id);
  if (chain.empty()) {
    return Fmt("trace id 0x%" PRIx64 ": no events (unknown id, or evicted "
               "from the ring buffer)\n", id);
  }
  std::string out = Fmt("causal chain 0x%" PRIx64 " (%zu events, client %u, "
                        "span %.3fms):\n",
                        id, chain.size(),
                        static_cast<unsigned>(id >> 32),
                        static_cast<double>(chain.back().time -
                                            chain.front().time) / 1000.0);
  SimTime prev = chain.front().time;
  for (const TraceEvent& ev : chain) {
    SimTime hop = ev.time - prev;
    prev = ev.time;
    out += Fmt("  %s  +%9.3fms  %s %-9s n%-4u  %s", FmtTime(ev.time).c_str(),
               static_cast<double>(hop) / 1000.0, EventTypeGlyph(ev.type),
               TraceRoleName(ev.role), ev.node, data_.Name(ev.name).c_str());
    if (ev.value != 0) {
      out += Fmt("  (value=%" PRId64 ")", ev.value);
    }
    out += "\n";
  }
  return out;
}

std::vector<TraceQuery::ReadDuration> TraceQuery::SlowestReads(
    size_t n) const {
  std::vector<ReadDuration> reads;
  // Match read span begin/end per trace id. A retried read reuses its
  // trace id, so take the first begin and the last end.
  for (const auto& [id, indices] : by_id_) {
    ReadDuration rd;
    rd.id = id;
    bool have_begin = false;
    bool have_end = false;
    SimTime end_time = 0;
    for (size_t index : indices) {
      const TraceEvent& ev = data_.events[index];
      if (data_.Name(ev.name) != "read") {
        continue;
      }
      if (ev.type == TraceEventType::kSpanBegin && !have_begin) {
        rd.begin = ev.time;
        rd.node = ev.node;
        have_begin = true;
      } else if (ev.type == TraceEventType::kSpanEnd) {
        end_time = ev.time;
        rd.accepted = ev.value != 0;
        have_end = true;
      }
    }
    if (have_begin && have_end) {
      rd.duration = end_time - rd.begin;
      reads.push_back(rd);
    }
  }
  std::sort(reads.begin(), reads.end(),
            [](const ReadDuration& a, const ReadDuration& b) {
              return a.duration != b.duration ? a.duration > b.duration
                                              : a.id < b.id;
            });
  if (reads.size() > n) {
    reads.resize(n);
  }
  return reads;
}

std::string TraceQuery::FormatSlowest(size_t n) const {
  std::vector<ReadDuration> reads = SlowestReads(n);
  if (reads.empty()) {
    return "no completed read spans in trace\n";
  }
  std::string out =
      Fmt("slowest %zu read chains:\n"
          "        trace id    client      begin      duration  outcome\n",
          reads.size());
  for (const ReadDuration& rd : reads) {
    out += Fmt("  0x%014" PRIx64 "  n%-6u %s  %9.3fms  %s\n", rd.id, rd.node,
               FmtTime(rd.begin).c_str(),
               static_cast<double>(rd.duration) / 1000.0,
               rd.accepted ? "accepted" : "failed");
  }
  return out;
}

std::vector<TraceQuery::Verdict> TraceQuery::Verdicts() const {
  std::vector<Verdict> out;
  for (const TraceEvent& ev : data_.events) {
    if (ev.type == TraceEventType::kInstant &&
        data_.Name(ev.name) == "master.exclude") {
      Verdict v;
      v.time = ev.time;
      v.master = ev.node;
      v.excluded_slave = static_cast<uint32_t>(ev.value);
      v.id = ev.trace_id;
      out.push_back(v);
    }
  }
  return out;
}

std::string TraceQuery::FormatVerdicts() const {
  std::vector<Verdict> verdicts = Verdicts();
  if (verdicts.empty()) {
    return "no exclusions in trace\n";
  }
  std::string out = Fmt("%zu exclusion verdict(s):\n", verdicts.size());
  for (const Verdict& v : verdicts) {
    out += Fmt("- at %s master n%u excluded slave n%u", FmtTime(v.time).c_str(),
               v.master, v.excluded_slave);
    if (v.id != kNoTrace) {
      out += Fmt("  (evidence chain 0x%" PRIx64 ")\n", v.id);
      out += FormatChain(v.id);
    } else {
      out += "  (untraced evidence)\n";
    }
  }
  return out;
}

std::string TraceQuery::FormatSummary() const {
  std::string out;
  out += Fmt("trace: %zu events (%" PRIu64 " dropped), %zu causal chains, "
             "%zu nodes\n",
             data_.events.size(), data_.dropped, by_id_.size(),
             data_.nodes.size());

  out += "nodes:\n";
  for (const auto& [node, info] : data_.nodes) {
    out += Fmt("  n%-4u %-9s %s\n", node, TraceRoleName(info.role),
               info.label.c_str());
  }

  // Event-name frequencies, keyed by interned id (stable across runs).
  std::map<uint16_t, uint64_t> counts;
  for (const TraceEvent& ev : data_.events) {
    ++counts[ev.name];
  }
  out += "events by name:\n";
  for (const auto& [name, count] : counts) {
    out += Fmt("  %-24s %" PRIu64 "\n", data_.Name(name).c_str(), count);
  }

  std::map<std::string, LatencyHistogram> merged = data_.MergedHistograms();
  if (!merged.empty()) {
    out += "histograms (merged across nodes, microseconds):\n";
    out += Fmt("  %-22s %10s %10s %10s %10s %10s\n", "name", "count", "mean",
               "p50", "p99", "max");
    for (const auto& [name, hist] : merged) {
      out += Fmt("  %-22s %10" PRIu64 " %10.1f %10" PRId64 " %10" PRId64
                 " %10" PRId64 "\n",
                 name.c_str(), hist.count(), hist.Mean(), hist.Median(),
                 hist.P99(), hist.max());
    }
  }
  return out;
}

std::vector<TraceId> TraceQuery::TraceIds() const {
  std::vector<TraceId> out;
  out.reserve(by_id_.size());
  for (const auto& [id, indices] : by_id_) {
    out.push_back(id);
  }
  return out;
}

bool ParseTraceId(const std::string& s, TraceId* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  uint64_t v = std::strtoull(s.c_str(), &end, 0);  // base 0: dec or 0x-hex
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace sdr
