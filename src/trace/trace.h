// Causal event tracing: a ring-buffered sink of typed events stamped with
// sim-time, node id/role, and a trace (causal) id that rides on protocol
// messages, so one read's pledge can be followed client -> slave ->
// auditor -> master verdict after the run.
//
// Zero-overhead-when-disabled contract: nodes reach the sink through
// `Simulator::trace()`, which is null unless a run opted in. Trace ids are
// minted and carried on the wire unconditionally (pure arithmetic on
// already-deterministic request ids), so enabling tracing cannot change
// simulation behavior — it only records.
//
// Determinism: events are appended in event-loop execution order, string
// interning uses an ordered map, and histograms key on an ordered tuple,
// so two same-seed runs produce byte-identical exports (R1/R2 discipline).
#ifndef SDR_SRC_TRACE_TRACE_H_
#define SDR_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/runtime/env.h"
#include "src/trace/histogram.h"

namespace sdr {

// Causal id for one read/pledge lifecycle; 0 means "not traced".
// Minted by the originating client as (client_id << 32) | request_id —
// deterministic, collision-free across nodes, and stable across replays.
using TraceId = uint64_t;

constexpr TraceId kNoTrace = 0;

inline TraceId MintTraceId(uint32_t node, uint64_t request_id) {
  return (static_cast<TraceId>(node) << 32) | (request_id & 0xffffffffull);
}

enum class TraceEventType : uint8_t {
  kSpanBegin = 0,
  kSpanEnd = 1,
  kInstant = 2,
  kCounter = 3,
};

enum class TraceRole : uint8_t {
  kNone = 0,
  kClient = 1,
  kSlave = 2,
  kMaster = 3,
  kAuditor = 4,
  kDirectory = 5,
  kSim = 6,
  kChaos = 7,
};

const char* TraceRoleName(TraceRole role);

struct TraceEvent {
  SimTime time = 0;
  TraceId trace_id = kNoTrace;
  // Payload: span end duration hint, counter sample, or event-specific
  // detail (e.g. the excluded slave's id on "master.exclude").
  int64_t value = 0;
  uint32_t node = 0;
  uint16_t name = 0;  // interned; resolve via TraceSink::name()
  TraceEventType type = TraceEventType::kInstant;
  TraceRole role = TraceRole::kNone;
};

// Ring-buffered event sink plus per-(name, role, node) latency histograms.
// Owned by the harness (Cluster or sdrnode); nodes reach it via
// env()->trace() (null when tracing is off, making every instrumentation
// site one branch).
class TraceSink {
 public:
  struct Options {
    // Ring capacity in events; oldest events are dropped once full.
    size_t capacity = 1 << 20;
    // Record a span around every simulator event dispatch (very chatty;
    // off by default even when tracing is on).
    bool sim_spans = false;
  };

  // `clock` stamps events: the Simulator in simulations, the RealEnv on a
  // live node. Only Now() is read.
  TraceSink(const Clock* clock, Options options);

  bool sim_spans() const { return options_.sim_spans; }

  // Registers a node for exporter metadata (process names in Chrome JSON,
  // role labels in reports). Safe to call once per node at cluster setup.
  void RegisterNode(uint32_t node, TraceRole role, const std::string& label);

  void SpanBegin(TraceRole role, uint32_t node, const char* name,
                 TraceId trace_id = kNoTrace, int64_t value = 0);
  void SpanEnd(TraceRole role, uint32_t node, const char* name,
               TraceId trace_id = kNoTrace, int64_t value = 0);
  void Instant(TraceRole role, uint32_t node, const char* name,
               TraceId trace_id = kNoTrace, int64_t value = 0);
  void Counter(TraceRole role, uint32_t node, const char* name,
               int64_t value, TraceId trace_id = kNoTrace);

  // Per-node histogram for `name` (e.g. "read_rtt_us"); created on first
  // use. Callers Record() into the returned reference.
  LatencyHistogram& Hist(TraceRole role, uint32_t node, const char* name);

  // All histograms with the same name merged across roles and nodes,
  // keyed by name — the run-end summary view.
  std::map<std::string, LatencyHistogram> MergedHistograms() const;

  // Events in emission order (oldest surviving first).
  std::vector<TraceEvent> Events() const;

  size_t size() const;
  uint64_t total_emitted() const { return total_; }
  uint64_t dropped() const;

  uint16_t InternName(const std::string& name);
  const std::string& name(uint16_t id) const { return names_[id]; }
  const std::vector<std::string>& names() const { return names_; }

  struct NodeInfo {
    TraceRole role = TraceRole::kNone;
    std::string label;
  };
  const std::map<uint32_t, NodeInfo>& nodes() const { return nodes_; }

  using HistKey = std::tuple<uint16_t, uint8_t, uint32_t>;  // name, role, node
  const std::map<HistKey, LatencyHistogram>& histograms() const {
    return hists_;
  }

 private:
  void Emit(TraceEventType type, TraceRole role, uint32_t node,
            const char* name, TraceId trace_id, int64_t value);

  const Clock* clock_;
  Options options_;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;     // next write slot once the ring is full
  uint64_t total_ = 0;  // events emitted over the run's lifetime

  std::vector<std::string> names_;          // id -> name ("" at id 0)
  std::map<std::string, uint16_t> interned_;
  std::map<uint32_t, NodeInfo> nodes_;
  std::map<HistKey, LatencyHistogram> hists_;
};

// RAII span helper for straight-line scopes; null-sink safe.
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, TraceRole role, uint32_t node, const char* name,
            TraceId trace_id = kNoTrace)
      : sink_(sink), role_(role), node_(node), name_(name),
        trace_id_(trace_id) {
    if (sink_ != nullptr) {
      sink_->SpanBegin(role_, node_, name_, trace_id_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (sink_ != nullptr) {
      sink_->SpanEnd(role_, node_, name_, trace_id_, value_);
    }
  }
  void set_value(int64_t value) { value_ = value; }

 private:
  TraceSink* sink_;
  TraceRole role_;
  uint32_t node_;
  const char* name_;
  TraceId trace_id_;
  int64_t value_ = 0;
};

}  // namespace sdr

#endif  // SDR_SRC_TRACE_TRACE_H_
