#include "src/trace/export.h"

#include <cinttypes>
#include <cstdio>

#include "src/util/serde.h"

namespace sdr {
namespace {

constexpr uint32_t kTraceMagic = 0x54524453;  // "SDRT" little-endian
constexpr uint16_t kTraceVersion = 1;

std::string HexTraceId(TraceId id) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, id);
  return buf;
}

}  // namespace

std::map<std::string, LatencyHistogram> TraceData::MergedHistograms() const {
  std::map<std::string, LatencyHistogram> merged;
  for (const HistEntry& entry : histograms) {
    merged[Name(entry.name)].Merge(entry.hist);
  }
  return merged;
}

TraceData Snapshot(const TraceSink& sink) {
  TraceData data;
  data.names = sink.names();
  data.nodes = sink.nodes();
  data.events = sink.Events();
  for (const auto& [key, hist] : sink.histograms()) {
    TraceData::HistEntry entry;
    entry.name = std::get<0>(key);
    entry.role = static_cast<TraceRole>(std::get<1>(key));
    entry.node = std::get<2>(key);
    entry.hist = hist;
    data.histograms.push_back(entry);
  }
  data.dropped = sink.dropped();
  return data;
}

Bytes EncodeTrace(const TraceData& data) {
  Writer w;
  w.U32(kTraceMagic);
  w.U16(kTraceVersion);

  w.U32(static_cast<uint32_t>(data.names.size()));
  for (const std::string& name : data.names) {
    w.Blob(name);
  }

  w.U32(static_cast<uint32_t>(data.nodes.size()));
  for (const auto& [node, info] : data.nodes) {
    w.U32(node);
    w.U8(static_cast<uint8_t>(info.role));
    w.Blob(info.label);
  }

  w.U64(data.events.size());
  w.Reserve(data.events.size() * 32);
  for (const TraceEvent& ev : data.events) {
    w.I64(ev.time);
    w.U64(ev.trace_id);
    w.I64(ev.value);
    w.U32(ev.node);
    w.U16(ev.name);
    w.U8(static_cast<uint8_t>(ev.type));
    w.U8(static_cast<uint8_t>(ev.role));
  }

  w.U32(static_cast<uint32_t>(data.histograms.size()));
  for (const TraceData::HistEntry& entry : data.histograms) {
    w.U16(entry.name);
    w.U8(static_cast<uint8_t>(entry.role));
    w.U32(entry.node);
    w.U64(entry.hist.count());
    w.I64(entry.hist.min());
    w.I64(entry.hist.max());
    w.Double(entry.hist.sum());
    // Sparse buckets: only non-zero (index, count) pairs.
    const std::vector<uint64_t>& buckets = entry.hist.buckets();
    uint32_t nonzero = 0;
    for (uint64_t c : buckets) {
      nonzero += (c != 0) ? 1 : 0;
    }
    w.U32(nonzero);
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] != 0) {
        w.U32(static_cast<uint32_t>(i));
        w.U64(buckets[i]);
      }
    }
  }

  w.U64(data.dropped);
  return w.Take();
}

Result<TraceData> DecodeTrace(const Bytes& buf) {
  Reader r(buf);
  if (r.U32() != kTraceMagic) {
    return Error(ErrorCode::kCorrupt, "not an SDRT trace file");
  }
  if (r.U16() != kTraceVersion) {
    return Error(ErrorCode::kCorrupt, "unsupported trace version");
  }
  TraceData data;

  uint32_t name_count = r.U32();
  for (uint32_t i = 0; r.ok() && i < name_count; ++i) {
    data.names.push_back(r.BlobString());
  }

  uint32_t node_count = r.U32();
  for (uint32_t i = 0; r.ok() && i < node_count; ++i) {
    uint32_t node = r.U32();
    TraceSink::NodeInfo info;
    info.role = static_cast<TraceRole>(r.U8());
    info.label = r.BlobString();
    data.nodes.emplace(node, std::move(info));
  }

  uint64_t event_count = r.U64();
  // Each event is 32 bytes on the wire; reject counts that cannot fit the
  // remaining buffer before reserving memory for them.
  if (r.ok() && event_count * 32 > r.remaining()) {
    return Error(ErrorCode::kCorrupt, "trace event count exceeds file size");
  }
  data.events.reserve(static_cast<size_t>(event_count));
  for (uint64_t i = 0; r.ok() && i < event_count; ++i) {
    TraceEvent ev;
    ev.time = r.I64();
    ev.trace_id = r.U64();
    ev.value = r.I64();
    ev.node = r.U32();
    ev.name = r.U16();
    ev.type = static_cast<TraceEventType>(r.U8());
    ev.role = static_cast<TraceRole>(r.U8());
    data.events.push_back(ev);
  }

  uint32_t hist_count = r.U32();
  for (uint32_t i = 0; r.ok() && i < hist_count; ++i) {
    TraceData::HistEntry entry;
    entry.name = r.U16();
    entry.role = static_cast<TraceRole>(r.U8());
    entry.node = r.U32();
    uint64_t count = r.U64();
    int64_t min = r.I64();
    int64_t max = r.I64();
    double sum = r.Double();
    uint32_t nonzero = r.U32();
    for (uint32_t b = 0; r.ok() && b < nonzero; ++b) {
      uint32_t index = r.U32();
      uint64_t bucket_count = r.U64();
      if (index > (1u << 20)) {
        return Error(ErrorCode::kCorrupt, "histogram bucket index too large");
      }
      entry.hist.AddBucketCount(index, bucket_count);
    }
    if (entry.hist.count() != count) {
      return Error(ErrorCode::kCorrupt, "histogram count mismatch");
    }
    entry.hist.SetStats(min, max, sum);
    data.histograms.push_back(std::move(entry));
  }

  data.dropped = r.U64();
  if (!r.Done()) {
    return Error(ErrorCode::kCorrupt, "trailing or truncated trace data");
  }
  return data;
}

JsonValue ChromeTraceJson(const TraceData& data) {
  JsonValue doc = JsonValue::Object();
  doc["displayTimeUnit"] = "ms";
  JsonValue events = JsonValue::Array();

  // Process-name metadata first, in node order, so Perfetto labels tracks.
  for (const auto& [node, info] : data.nodes) {
    JsonValue meta = JsonValue::Object();
    meta["ph"] = "M";
    meta["name"] = "process_name";
    meta["pid"] = static_cast<int64_t>(node);
    meta["tid"] = static_cast<int64_t>(node);
    JsonValue args = JsonValue::Object();
    args["name"] = info.label.empty()
                       ? std::string(TraceRoleName(info.role))
                       : info.label;
    meta["args"] = std::move(args);
    events.Append(std::move(meta));
  }

  for (const TraceEvent& ev : data.events) {
    JsonValue j = JsonValue::Object();
    switch (ev.type) {
      case TraceEventType::kSpanBegin:
        j["ph"] = "B";
        break;
      case TraceEventType::kSpanEnd:
        j["ph"] = "E";
        break;
      case TraceEventType::kInstant:
        j["ph"] = "i";
        j["s"] = "t";
        break;
      case TraceEventType::kCounter:
        j["ph"] = "C";
        break;
    }
    j["name"] = data.Name(ev.name);
    j["cat"] = TraceRoleName(ev.role);
    j["ts"] = ev.time;
    j["pid"] = static_cast<int64_t>(ev.node);
    j["tid"] = static_cast<int64_t>(ev.node);
    JsonValue args = JsonValue::Object();
    if (ev.trace_id != kNoTrace) {
      args["trace_id"] = HexTraceId(ev.trace_id);
    }
    if (ev.type == TraceEventType::kCounter) {
      args["value"] = ev.value;
    } else if (ev.value != 0) {
      args["value"] = ev.value;
    }
    j["args"] = std::move(args);
    events.Append(std::move(j));
  }

  doc["traceEvents"] = std::move(events);
  return doc;
}

JsonValue HistogramSummaryJson(
    const std::map<std::string, LatencyHistogram>& merged) {
  JsonValue out = JsonValue::Object();
  for (const auto& [name, hist] : merged) {
    JsonValue j = JsonValue::Object();
    j["count"] = static_cast<int64_t>(hist.count());
    j["min"] = hist.min();
    j["max"] = hist.max();
    j["mean"] = hist.Mean();
    j["p50"] = hist.Median();
    j["p99"] = hist.P99();
    out[name] = std::move(j);
  }
  return out;
}

}  // namespace sdr
