#include "src/trace/histogram.h"

#include <algorithm>
#include <bit>

namespace sdr {

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kSubCount) {
    return static_cast<size_t>(value);
  }
  // The highest set bit selects the power-of-two band; the next kSubBits
  // bits below it select the sub-bucket within the band.
  int top = std::bit_width(value) - 1;  // >= kSubBits here
  int shift = top - kSubBits;
  uint64_t sub = (value >> shift) & (kSubCount - 1);
  return static_cast<size_t>(
      (static_cast<uint64_t>(top - kSubBits + 1) << kSubBits) | sub);
}

uint64_t LatencyHistogram::BucketLowerBound(size_t index) {
  if (index < kSubCount) {
    return static_cast<uint64_t>(index);
  }
  uint64_t band = index >> kSubBits;  // >= 1
  uint64_t sub = index & (kSubCount - 1);
  return (kSubCount + sub) << (band - 1);
}

void LatencyHistogram::Record(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  size_t index = BucketIndex(static_cast<uint64_t>(value));
  if (index >= buckets_.size()) {
    buckets_.resize(index + 1, 0);
  }
  ++buckets_[index];
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
  sum_ += static_cast<double>(value);
  ++count_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

int64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (rank < count_) {
    ++rank;  // ceil for non-integral, 1-based for integral
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      return std::min(static_cast<int64_t>(BucketLowerBound(i)), max_);
    }
  }
  return max_;
}

void LatencyHistogram::AddBucketCount(size_t index, uint64_t n) {
  if (n == 0) {
    return;
  }
  if (index >= buckets_.size()) {
    buckets_.resize(index + 1, 0);
  }
  buckets_[index] += n;
  count_ += n;
}

}  // namespace sdr
