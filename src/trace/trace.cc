#include "src/trace/trace.h"

namespace sdr {

const char* TraceRoleName(TraceRole role) {
  switch (role) {
    case TraceRole::kNone:
      return "none";
    case TraceRole::kClient:
      return "client";
    case TraceRole::kSlave:
      return "slave";
    case TraceRole::kMaster:
      return "master";
    case TraceRole::kAuditor:
      return "auditor";
    case TraceRole::kDirectory:
      return "directory";
    case TraceRole::kSim:
      return "sim";
    case TraceRole::kChaos:
      return "chaos";
  }
  return "unknown";
}

TraceSink::TraceSink(const Clock* clock, Options options)
    : clock_(clock), options_(options) {
  if (options_.capacity == 0) {
    options_.capacity = 1;
  }
  ring_.reserve(options_.capacity < 4096 ? options_.capacity : 4096);
  names_.push_back("");  // id 0 reserved so 0 never aliases a real name
}

void TraceSink::RegisterNode(uint32_t node, TraceRole role,
                             const std::string& label) {
  NodeInfo& info = nodes_[node];
  info.role = role;
  info.label = label;
}

uint16_t TraceSink::InternName(const std::string& name) {
  auto it = interned_.find(name);
  if (it != interned_.end()) {
    return it->second;
  }
  uint16_t id = static_cast<uint16_t>(names_.size());
  names_.push_back(name);
  interned_.emplace(name, id);
  return id;
}

void TraceSink::Emit(TraceEventType type, TraceRole role, uint32_t node,
                     const char* name, TraceId trace_id, int64_t value) {
  TraceEvent ev;
  ev.time = clock_->Now();
  ev.trace_id = trace_id;
  ev.value = value;
  ev.node = node;
  ev.name = InternName(name);
  ev.type = type;
  ev.role = role;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(ev);
  } else {
    ring_[head_] = ev;
    head_ = (head_ + 1) % options_.capacity;
  }
  ++total_;
}

void TraceSink::SpanBegin(TraceRole role, uint32_t node, const char* name,
                          TraceId trace_id, int64_t value) {
  Emit(TraceEventType::kSpanBegin, role, node, name, trace_id, value);
}

void TraceSink::SpanEnd(TraceRole role, uint32_t node, const char* name,
                        TraceId trace_id, int64_t value) {
  Emit(TraceEventType::kSpanEnd, role, node, name, trace_id, value);
}

void TraceSink::Instant(TraceRole role, uint32_t node, const char* name,
                        TraceId trace_id, int64_t value) {
  Emit(TraceEventType::kInstant, role, node, name, trace_id, value);
}

void TraceSink::Counter(TraceRole role, uint32_t node, const char* name,
                        int64_t value, TraceId trace_id) {
  Emit(TraceEventType::kCounter, role, node, name, trace_id, value);
}

LatencyHistogram& TraceSink::Hist(TraceRole role, uint32_t node,
                                  const char* name) {
  HistKey key{InternName(name), static_cast<uint8_t>(role), node};
  return hists_[key];
}

std::map<std::string, LatencyHistogram> TraceSink::MergedHistograms() const {
  std::map<std::string, LatencyHistogram> merged;
  for (const auto& [key, hist] : hists_) {
    merged[names_[std::get<0>(key)]].Merge(hist);
  }
  return merged;
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest first: when the ring has wrapped, head_ points at the oldest
  // surviving event.
  if (ring_.size() == options_.capacity) {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
  } else {
    out = ring_;
  }
  return out;
}

size_t TraceSink::size() const { return ring_.size(); }

uint64_t TraceSink::dropped() const { return total_ - ring_.size(); }

}  // namespace sdr
