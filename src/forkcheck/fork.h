// Fork-consistency detection (ROADMAP open item 2; beyond the paper).
//
// The paper's auditor re-executes pledged queries, so it catches a slave
// that answers *wrongly* at the version it claims. It cannot catch
// equivocation: a slave serving two internally-consistent forked histories
// to disjoint client sets never produces a falsifiable pledge. Following
// Cachin & Ohrimenko's fork-linearizability results and Del Pozzo et al.'s
// auditable registers (PAPERS.md), this module adds:
//
//   - VersionVector: a compact slave-signed commitment binding the
//     slave's pledge-chain head and length to the content version it
//     served at. An honest slave's commitments are totally ordered (one
//     head per length, version monotone in length); a slave maintaining
//     per-client-set forked views necessarily signs commitments no single
//     honest chain could produce.
//   - PledgeChain: the slave-side running SHA-1 chain over issued pledges,
//     with one commitment signed per served read.
//   - ForkDetector: shared by clients (gossiped vectors) and the auditor
//     (vectors riding audit submissions); flags commitment pairs that
//     violate the total order.
//   - EvidenceChain: the two conflicting signed commitments plus the
//     certificate material needed to verify them, checkable *offline* by
//     any third party holding only the content owner's public key.
//
// Everything here is inert unless ProtocolParams::fork_check_enabled is
// set: no wire bytes, timers, rng draws or report fields change in the
// disabled configuration.
#ifndef SDR_SRC_FORKCHECK_FORK_H_
#define SDR_SRC_FORKCHECK_FORK_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/certificate.h"
#include "src/core/pledge.h"
#include "src/crypto/signer.h"
#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/util/serde.h"

namespace sdr {

// A slave's signed commitment, minted per served read: "my
// `chain_length`-th pledge, issued at content version `content_version`,
// brought my pledge-chain head to `head_sha1`". An honest slave runs one
// chain, so its commitments are totally ordered: lengths are unique, and
// the version can only grow as the chain grows. Any signed pair violating
// that — two heads at one length, or a later version attested at a
// shorter chain — is non-repudiable proof of equivocation (VvsConflict).
struct VersionVector {
  NodeId slave = kInvalidNode;
  uint64_t content_version = 0;
  uint64_t chain_length = 0;  // pledges folded into head_sha1
  Bytes head_sha1;  // pledge-chain head after this commitment's pledge
  Bytes signature;  // slave's, over SignedBody()

  Bytes SignedBody() const;
  void EncodeTo(Writer& w) const;
  static VersionVector DecodeFrom(Reader& r);
};

VersionVector MakeVersionVector(const Signer& slave_signer, NodeId slave,
                                uint64_t content_version,
                                uint64_t chain_length, const Bytes& head_sha1);
bool VerifyVersionVector(SignatureScheme scheme, const Bytes& slave_public_key,
                         const VersionVector& vv);
bool VerifyVersionVector(SignatureScheme scheme, const Bytes& slave_public_key,
                         const VersionVector& vv, VerifyCache* cache);

// True when the two commitments (by one slave) cannot both come from one
// honest pledge chain:
//   - same chain length but different heads or versions (one chain has
//     exactly one commitment per length), or
//   - a later version attested at a shorter chain (an honest chain never
//     shrinks, so version order must follow chain-length order).
// Because a forked slave's per-client-set chains both walk through every
// length past the fork point, any detector holding one post-fork
// commitment from each set at a common length has proof — no common
// *version* is ever needed, which is what makes detection work when the
// two client sets are active at disjoint times.
bool VvsConflict(const VersionVector& a, const VersionVector& b);

// A VersionVector packaged with what a stranger needs to check it: the
// master-signed token for the same version (proving the version really
// committed) and the slave's certificate (binding the signing key). This
// is the unit clients gossip and detectors retain.
struct AttestedVv {
  VersionVector vv;
  VersionToken token;
  Certificate slave_cert;

  void EncodeTo(Writer& w) const;
  static AttestedVv DecodeFrom(Reader& r);
};

// The slave-side running hash chain over issued pledges. Each served read
// folds its pledge into the head and signs a fresh commitment over the
// result, so every reply carries the chain state that includes it.
class PledgeChain {
 public:
  PledgeChain();

  // head = SHA1(head || pledge signed body), then signs the commitment
  // (slave, version, ++length, head). The returned reference is valid
  // until the next call.
  const VersionVector& ExtendAndCommit(const Signer& slave_signer,
                                       NodeId slave, uint64_t version,
                                       const Pledge& pledge);

  const Bytes& head() const { return head_; }
  size_t pledges_folded() const { return pledges_folded_; }

 private:
  Bytes head_;  // 20 zero bytes before the first pledge
  size_t pledges_folded_ = 0;
  VersionVector last_;
};

// Retains the commitments seen per slave, ordered by chain length, and
// flags the first pair that VvsConflict proves inconsistent. Because the
// stored set is kept conflict-free (versions non-decreasing in length), a
// new commitment only needs checking against its two length-neighbours.
// Used identically by clients (over read replies + gossip) and by the
// auditor (over vectors riding audit submissions).
class ForkDetector {
 public:
  struct Conflict {
    AttestedVv first;     // the commitment recorded earlier
    AttestedVv second;    // the conflicting one that exposed the fork
  };

  // Records an attested vector; returns a conflicting pair when it cannot
  // share an honest chain with one already recorded. At most one conflict
  // is reported per slave — a forked chain never reconverges, so further
  // conflicts add no information.
  std::optional<Conflict> Observe(const AttestedVv& avv);

  size_t tracked() const;

 private:
  // slave -> chain_length -> commitment at that length.
  std::map<NodeId, std::map<uint64_t, AttestedVv>> seen_;
  std::set<NodeId> flagged_;
};

// Transferable proof of equivocation: two attested commitments by the
// same slave that VvsConflict proves inconsistent — each with the
// master-signed token for its version and the slave's certificate — plus
// the master certificates rooting everything in the content owner's key.
struct EvidenceChain {
  AttestedVv a;
  AttestedVv b;
  std::vector<Certificate> master_certs;  // issued by the content owner

  void EncodeTo(Writer& w) const;
  static EvidenceChain DecodeFrom(Reader& r);
  Bytes Encode() const;
  static Result<EvidenceChain> Decode(BytesView body);
};

EvidenceChain MakeEvidenceChain(const AttestedVv& a, const AttestedVv& b,
                                const std::vector<Certificate>& master_certs);

// Offline verification — needs only the content owner's public key. True
// when every link holds: master certs verify under the content key, each
// slave cert under a listed master, each token under its master's cert,
// each vector under its slave cert and naming the token's version, both
// sides naming the same slave, and VvsConflict holding for the pair. On
// failure `why` (optional) receives a one-line reason.
bool VerifyEvidenceChain(SignatureScheme scheme,
                         const Bytes& content_public_key,
                         const EvidenceChain& chain,
                         std::string* why = nullptr);

// A file of evidence chains with the key material to verify them, written
// by sdrsim --evidence_out and checked by sdrtrace --evidence.
struct EvidenceBundle {
  SignatureScheme scheme = SignatureScheme::kEd25519;
  Bytes content_public_key;
  std::vector<EvidenceChain> chains;

  Bytes Encode() const;
  static Result<EvidenceBundle> Decode(BytesView body);
};

}  // namespace sdr

#endif  // SDR_SRC_FORKCHECK_FORK_H_
