#include "src/forkcheck/fork.h"

#include <algorithm>

#include "src/crypto/sha1.h"

namespace sdr {

namespace {

bool Fail(std::string* why, const char* reason) {
  if (why != nullptr) {
    *why = reason;
  }
  return false;
}

void EncodeChainCerts(Writer& w, const std::vector<Certificate>& certs) {
  w.U32(static_cast<uint32_t>(certs.size()));
  for (const Certificate& c : certs) {
    c.EncodeTo(w);
  }
}

std::vector<Certificate> DecodeChainCerts(Reader& r) {
  uint32_t n = r.U32();
  std::vector<Certificate> certs;
  certs.reserve(std::min<uint32_t>(n, 256));
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    certs.push_back(Certificate::DecodeFrom(r));
  }
  return certs;
}

void EncodeChains(Writer& w, const std::vector<EvidenceChain>& chains) {
  w.U32(static_cast<uint32_t>(chains.size()));
  for (const EvidenceChain& c : chains) {
    c.EncodeTo(w);
  }
}

std::vector<EvidenceChain> DecodeChains(Reader& r) {
  uint32_t n = r.U32();
  std::vector<EvidenceChain> chains;
  chains.reserve(std::min<uint32_t>(n, 256));
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    chains.push_back(EvidenceChain::DecodeFrom(r));
  }
  return chains;
}

}  // namespace

Bytes VersionVector::SignedBody() const {
  Writer w;
  w.Reserve(4 + 10 + 4 + 8 + 8 + 4 + head_sha1.size());
  w.Blob(std::string_view("sdr-vv-v1"));
  w.U32(slave);
  w.U64(content_version);
  w.U64(chain_length);
  w.Blob(head_sha1);
  return w.Take();
}

void VersionVector::EncodeTo(Writer& w) const {
  w.U32(slave);
  w.U64(content_version);
  w.U64(chain_length);
  w.Blob(head_sha1);
  w.Blob(signature);
}

VersionVector VersionVector::DecodeFrom(Reader& r) {
  VersionVector v;
  v.slave = r.U32();
  v.content_version = r.U64();
  v.chain_length = r.U64();
  v.head_sha1 = r.Blob();
  v.signature = r.Blob();
  return v;
}

VersionVector MakeVersionVector(const Signer& slave_signer, NodeId slave,
                                uint64_t content_version,
                                uint64_t chain_length, const Bytes& head_sha1) {
  VersionVector v;
  v.slave = slave;
  v.content_version = content_version;
  v.chain_length = chain_length;
  v.head_sha1 = head_sha1;
  v.signature = slave_signer.Sign(v.SignedBody());
  return v;
}

bool VerifyVersionVector(SignatureScheme scheme, const Bytes& slave_public_key,
                         const VersionVector& vv) {
  return VerifySignature(scheme, slave_public_key, vv.SignedBody(),
                         vv.signature);
}

bool VerifyVersionVector(SignatureScheme scheme, const Bytes& slave_public_key,
                         const VersionVector& vv, VerifyCache* cache) {
  if (cache == nullptr) {
    return VerifyVersionVector(scheme, slave_public_key, vv);
  }
  return cache->Verify(scheme, slave_public_key, vv.SignedBody(),
                       vv.signature);
}

void AttestedVv::EncodeTo(Writer& w) const {
  vv.EncodeTo(w);
  token.EncodeTo(w);
  slave_cert.EncodeTo(w);
}

AttestedVv AttestedVv::DecodeFrom(Reader& r) {
  AttestedVv a;
  a.vv = VersionVector::DecodeFrom(r);
  a.token = VersionToken::DecodeFrom(r);
  a.slave_cert = Certificate::DecodeFrom(r);
  return a;
}

PledgeChain::PledgeChain() : head_(Sha1::kDigestSize, 0) {}

const VersionVector& PledgeChain::ExtendAndCommit(const Signer& slave_signer,
                                                  NodeId slave,
                                                  uint64_t version,
                                                  const Pledge& pledge) {
  Sha1 h;
  h.Update(head_);
  h.Update(pledge.SignedBody());
  head_ = h.Final();
  ++pledges_folded_;
  last_ = MakeVersionVector(slave_signer, slave, version, pledges_folded_,
                            head_);
  return last_;
}

bool VvsConflict(const VersionVector& a, const VersionVector& b) {
  if (a.chain_length == b.chain_length) {
    return a.head_sha1 != b.head_sha1 ||
           a.content_version != b.content_version;
  }
  const VersionVector& lo = a.chain_length < b.chain_length ? a : b;
  const VersionVector& hi = a.chain_length < b.chain_length ? b : a;
  return lo.content_version > hi.content_version;
}

std::optional<ForkDetector::Conflict> ForkDetector::Observe(
    const AttestedVv& avv) {
  std::map<uint64_t, AttestedVv>& history = seen_[avv.vv.slave];
  const AttestedVv* counterpart = nullptr;
  auto [it, inserted] = history.emplace(avv.vv.chain_length, avv);
  if (!inserted) {
    if (!VvsConflict(it->second.vv, avv.vv)) {
      return std::nullopt;  // the same commitment, re-observed
    }
    counterpart = &it->second;
  } else {
    // The retained set is conflict-free (version non-decreasing in
    // length), so only the length-neighbours can disagree with the
    // newcomer: any farther predecessor's version is bounded by the
    // nearest one's, and symmetrically for successors.
    if (it != history.begin()) {
      const AttestedVv& pred = std::prev(it)->second;
      if (VvsConflict(pred.vv, avv.vv)) {
        counterpart = &pred;
      }
    }
    if (counterpart == nullptr && std::next(it) != history.end()) {
      const AttestedVv& succ = std::next(it)->second;
      if (VvsConflict(succ.vv, avv.vv)) {
        counterpart = &succ;
      }
    }
    if (counterpart != nullptr) {
      history.erase(it);  // keep the stored set conflict-free
    }
  }
  if (counterpart == nullptr) {
    return std::nullopt;
  }
  // Report the slave once; further conflicts add no information.
  if (!flagged_.insert(avv.vv.slave).second) {
    return std::nullopt;
  }
  return Conflict{*counterpart, avv};
}

size_t ForkDetector::tracked() const {
  size_t n = 0;
  for (const auto& [slave, history] : seen_) {
    n += history.size();
  }
  return n;
}

void EvidenceChain::EncodeTo(Writer& w) const {
  a.EncodeTo(w);
  b.EncodeTo(w);
  EncodeChainCerts(w, master_certs);
}

EvidenceChain EvidenceChain::DecodeFrom(Reader& r) {
  EvidenceChain c;
  c.a = AttestedVv::DecodeFrom(r);
  c.b = AttestedVv::DecodeFrom(r);
  c.master_certs = DecodeChainCerts(r);
  return c;
}

Bytes EvidenceChain::Encode() const {
  Writer w;
  EncodeTo(w);
  return w.Take();
}

Result<EvidenceChain> EvidenceChain::Decode(BytesView body) {
  Reader r(body);
  EvidenceChain c = DecodeFrom(r);
  if (!r.Done()) {
    return Error(ErrorCode::kCorrupt, "bad evidence chain encoding");
  }
  return c;
}

EvidenceChain MakeEvidenceChain(const AttestedVv& a, const AttestedVv& b,
                                const std::vector<Certificate>& master_certs) {
  EvidenceChain c;
  c.a = a;
  c.b = b;
  c.master_certs = master_certs;
  return c;
}

namespace {

// Verifies one attested side of the evidence against the (already
// content-key-verified) master certificates.
bool VerifySide(SignatureScheme scheme,
                const std::vector<Certificate>& master_certs,
                const AttestedVv& side, std::string* why) {
  if (side.slave_cert.role != Role::kSlave) {
    return Fail(why, "subject certificate is not a slave certificate");
  }
  bool slave_cert_ok = false;
  const Certificate* token_master = nullptr;
  for (const Certificate& mc : master_certs) {
    if (!slave_cert_ok &&
        VerifyCertificate(scheme, mc.subject_public_key, side.slave_cert)) {
      slave_cert_ok = true;
    }
    if (mc.subject == side.token.master) {
      token_master = &mc;
    }
  }
  if (!slave_cert_ok) {
    return Fail(why, "slave certificate not issued by any listed master");
  }
  if (token_master == nullptr) {
    return Fail(why, "token's master has no certificate in the chain");
  }
  if (!VerifyVersionToken(scheme, token_master->subject_public_key,
                          side.token)) {
    return Fail(why, "version token signature invalid");
  }
  if (side.vv.slave != side.slave_cert.subject) {
    return Fail(why, "version vector names a different slave");
  }
  if (side.token.content_version != side.vv.content_version) {
    return Fail(why, "token version does not match the vector");
  }
  if (!VerifyVersionVector(scheme, side.slave_cert.subject_public_key,
                           side.vv)) {
    return Fail(why, "version vector signature invalid");
  }
  return true;
}

}  // namespace

bool VerifyEvidenceChain(SignatureScheme scheme,
                         const Bytes& content_public_key,
                         const EvidenceChain& c, std::string* why) {
  if (c.master_certs.empty()) {
    return Fail(why, "no master certificates in the chain");
  }
  for (const Certificate& mc : c.master_certs) {
    if (mc.role != Role::kMaster ||
        !VerifyCertificate(scheme, content_public_key, mc)) {
      return Fail(why, "master certificate does not verify under content key");
    }
  }
  if (!VerifySide(scheme, c.master_certs, c.a, why) ||
      !VerifySide(scheme, c.master_certs, c.b, why)) {
    return false;
  }
  if (c.a.vv.slave != c.b.vv.slave) {
    return Fail(why, "the two vectors name different slaves");
  }
  if (!VvsConflict(c.a.vv, c.b.vv)) {
    return Fail(why, "commitments are chain-consistent: no equivocation shown");
  }
  if (why != nullptr) {
    why->clear();
  }
  return true;
}

Bytes EvidenceBundle::Encode() const {
  Writer w;
  w.U8(static_cast<uint8_t>(scheme));
  w.Blob(content_public_key);
  EncodeChains(w, chains);
  return w.Take();
}

Result<EvidenceBundle> EvidenceBundle::Decode(BytesView body) {
  Reader r(body);
  EvidenceBundle m;
  m.scheme = static_cast<SignatureScheme>(r.U8());
  m.content_public_key = r.Blob();
  m.chains = DecodeChains(r);
  if (!r.Done()) {
    return Error(ErrorCode::kCorrupt, "bad evidence bundle encoding");
  }
  return m;
}

}  // namespace sdr
