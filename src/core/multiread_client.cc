#include "src/core/multiread_client.h"

#include <algorithm>

#include "src/trace/trace.h"

namespace sdr {

MultiReadClient::MultiReadClient(Options options)
    : options_(std::move(options)), rng_(options_.rng_seed) {}

void MultiReadClient::Start() {
  rng_ = Rng(options_.rng_seed ^ (static_cast<uint64_t>(id()) << 32));
}

const std::vector<Certificate>& MultiReadClient::LaneSlaveCerts(
    uint32_t shard) const {
  return sharded() ? options_.shard_lanes[shard].slave_certs
                   : options_.slave_certs;
}

NodeId MultiReadClient::LaneMaster(uint32_t shard) const {
  return sharded() ? options_.shard_lanes[shard].master : options_.master;
}

NodeId MultiReadClient::LaneAuditor(uint32_t shard) const {
  return sharded() ? options_.shard_lanes[shard].auditor : options_.auditor;
}

const Certificate* MultiReadClient::CertFor(uint32_t shard,
                                            NodeId slave) const {
  for (const Certificate& cert : LaneSlaveCerts(shard)) {
    if (cert.subject == slave) {
      return &cert;
    }
  }
  return nullptr;
}

void MultiReadClient::IssueRead(const Query& query, Callback cb) {
  if (sharded()) {
    IssueShardedRead(query, std::move(cb));
    return;
  }
  uint64_t request_id = next_request_id_++;
  PendingRead read;
  read.query = query;
  read.issued = env()->Now();
  read.expected = options_.slave_certs.size();
  read.cb = std::move(cb);
  ++metrics_.reads_issued;
  if (TraceSink* t = env()->trace()) {
    t->SpanBegin(TraceRole::kClient, id(), "read",
                 MintTraceId(id(), request_id));
  }

  ReadRequest msg;
  msg.request_id = request_id;
  msg.trace_id = MintTraceId(id(), request_id);
  msg.query = query;
  Bytes wire = WithType(MsgType::kReadRequest, msg.Encode());
  for (const Certificate& cert : options_.slave_certs) {
    env()->Send(cert.subject, wire);
  }
  read.timeout = env()->ScheduleAfter(
      options_.params.client_timeout,
      [this, request_id] { Resolve(request_id); });
  pending_.emplace(request_id, std::move(read));
}

uint64_t MultiReadClient::IssueLeg(uint32_t shard, const Query& query,
                                   uint64_t parent, uint32_t leg,
                                   uint64_t trace_id) {
  uint64_t request_id = next_request_id_++;
  PendingRead read;
  read.query = query;
  read.issued = env()->Now();
  read.expected = LaneSlaveCerts(shard).size();
  read.shard = shard;
  read.parent = parent;
  read.leg = leg;

  ReadRequest msg;
  msg.request_id = request_id;
  // Legs of a fan-out share the parent's causal id; standalone reads get
  // their own.
  msg.trace_id = trace_id != 0 ? trace_id : MintTraceId(id(), request_id);
  msg.query = query;
  Bytes wire = WithType(MsgType::kReadRequest, msg.Encode());
  for (const Certificate& cert : LaneSlaveCerts(shard)) {
    env()->Send(cert.subject, wire);
  }
  read.timeout = env()->ScheduleAfter(
      options_.params.client_timeout,
      [this, request_id] { Resolve(request_id); });
  pending_.emplace(request_id, std::move(read));
  return request_id;
}

void MultiReadClient::IssueShardedRead(const Query& query, Callback cb) {
  std::vector<ShardSubquery> plan = PlanShardQuery(*options_.shard_map, query);
  ++metrics_.reads_issued;
  if (plan.size() == 1) {
    // Single owning shard: a classic k-fold read against that shard's
    // slave set.
    uint64_t request_id = IssueLeg(plan[0].shard, plan[0].query, 0, 0, 0);
    auto it = pending_.find(request_id);
    it->second.cb = std::move(cb);
    if (TraceSink* t = env()->trace()) {
      t->SpanBegin(TraceRole::kClient, id(), "read",
                   MintTraceId(id(), request_id));
    }
    return;
  }
  ++metrics_.multi_shard_reads;
  uint64_t parent_id = next_request_id_++;
  MultiRead multi;
  multi.query = query;
  multi.plan = plan;
  multi.results.resize(plan.size());
  multi.tokens.resize(plan.size());
  multi.remaining = plan.size();
  multi.issued = env()->Now();
  multi.cb = std::move(cb);
  if (TraceSink* t = env()->trace()) {
    t->SpanBegin(TraceRole::kClient, id(), "read",
                 MintTraceId(id(), parent_id));
  }
  auto [mit, inserted] = multireads_.emplace(parent_id, std::move(multi));
  (void)inserted;
  for (size_t i = 0; i < plan.size(); ++i) {
    ++metrics_.shard_legs_issued;
    mit->second.leg_ids.push_back(
        IssueLeg(plan[i].shard, plan[i].query, parent_id,
                 static_cast<uint32_t>(i), MintTraceId(id(), parent_id)));
  }
}

void MultiReadClient::HandleMessage(NodeId from, const Payload& payload) {
  auto type = PeekType(payload);
  if (!type.ok()) {
    return;
  }
  BytesView body = BytesView(payload).substr(1);
  switch (*type) {
    case MsgType::kReadReply:
      HandleReadReply(from, body);
      break;
    case MsgType::kDoubleCheckReply:
      HandleDoubleCheckReply(body);
      break;
    // The multi-read harness only ever receives read traffic; everything
    // else is ignored by design.
    case MsgType::kDirectoryLookup:
    case MsgType::kDirectoryLookupReply:
    case MsgType::kClientHello:
    case MsgType::kClientHelloReply:
    case MsgType::kReadRequest:
    case MsgType::kWriteRequest:
    case MsgType::kWriteReply:
    case MsgType::kDoubleCheckRequest:
    case MsgType::kAccusation:
    case MsgType::kReassignment:
    case MsgType::kStateUpdate:
    case MsgType::kKeepAlive:
    case MsgType::kSlaveAck:
    case MsgType::kAuditSubmit:
    case MsgType::kBroadcastEnvelope:
    case MsgType::kBadReadNotice:
    case MsgType::kVvExchange:
    case MsgType::kForkEvidence:
    case MsgType::kPlacementQuery:
    case MsgType::kPlacementReply:
    case MsgType::kStateUpdateBatch:
      break;
  }
}

void MultiReadClient::HandleReadReply(NodeId from, BytesView body) {
  auto msg = ReadReply::Decode(body);
  if (!msg.ok()) {
    return;
  }
  auto it = pending_.find(msg->request_id);
  if (it == pending_.end() || it->second.double_checking) {
    return;
  }
  PendingRead& read = it->second;

  const Certificate* cert = CertFor(read.shard, from);
  if (cert == nullptr) {
    return;
  }
  if (!msg->ok) {
    ++read.declines;
    if (read.replies.size() + read.declines >= read.expected) {
      env()->Cancel(read.timeout);
      Resolve(msg->request_id);
    }
    return;
  }
  const Pledge& pledge = msg->pledge;
  // Per-reply verification mirrors the base protocol.
  if (msg->result.Sha1Digest() != pledge.result_sha1 ||
      pledge.slave != from ||
      !VerifyPledgeSignature(options_.params.scheme, cert->subject_public_key,
                             pledge)) {
    return;
  }
  auto master_key = options_.master_keys.find(pledge.token.master);
  if (master_key == options_.master_keys.end() ||
      !VerifyVersionToken(options_.params.scheme, master_key->second,
                          pledge.token) ||
      !TokenIsFresh(pledge.token, env()->Now(), options_.params.max_latency)) {
    return;
  }
  read.replies[from] = {msg->result, pledge};
  if (read.replies.size() + read.declines >= read.expected) {
    env()->Cancel(read.timeout);
    Resolve(msg->request_id);
  }
}

void MultiReadClient::Resolve(uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end() || it->second.double_checking) {
    return;
  }
  PendingRead& read = it->second;
  if (read.replies.empty()) {
    Fail(request_id, MintTraceId(id(), request_id));
    return;
  }
  // "If all the answers are identical, the client proceeds as in the
  // original algorithm" — declining slaves gave no answer, so unanimity is
  // over the answers received. Replies for different (fresh) versions can
  // legitimately differ; treat hash disagreement as suspicion anyway — the
  // double-check resolves it either way.
  bool unanimous = true;
  const Bytes& first_hash = read.replies.begin()->second.second.result_sha1;
  for (const auto& [slave, reply] : read.replies) {
    if (reply.second.result_sha1 != first_hash) {
      unanimous = false;
      break;
    }
  }

  if (unanimous && !rng_.NextBool(options_.params.double_check_probability)) {
    ++metrics_.unanimous;
    const auto& [result, pledge] = read.replies.begin()->second;
    NodeId auditor = LaneAuditor(read.shard);
    if (options_.params.audit_enabled && auditor != kInvalidNode) {
      AuditSubmit submit;
      submit.trace_id = MintTraceId(id(), request_id);
      submit.pledge = pledge;
      if (TraceSink* t = env()->trace()) {
        t->Instant(TraceRole::kClient, id(), "pledge.forward",
                   submit.trace_id);
      }
      env()->Send(auditor,
                  WithType(MsgType::kAuditSubmit, submit.Encode()));
    }
    Accept(request_id, result, pledge);
    return;
  }

  // Disagreement (or sampled): mandatory double-check with the master,
  // using the first pledge as the reference.
  if (!unanimous) {
    ++metrics_.disagreements;
  }
  read.double_checking = true;
  ++metrics_.double_checks_sent;
  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kClient, id(), "dc.send",
               MintTraceId(id(), request_id));
  }
  DoubleCheckRequest dc;
  dc.request_id = request_id;
  dc.trace_id = MintTraceId(id(), request_id);
  dc.pledge = read.replies.begin()->second.second;
  env()->Send(LaneMaster(read.shard),
              WithType(MsgType::kDoubleCheckRequest, dc.Encode()));
}

void MultiReadClient::HandleDoubleCheckReply(BytesView body) {
  auto msg = DoubleCheckReply::Decode(body);
  if (!msg.ok()) {
    return;
  }
  auto it = pending_.find(msg->request_id);
  if (it == pending_.end() || !it->second.double_checking) {
    return;
  }
  PendingRead& read = it->second;

  if (!msg->served) {
    // Cannot establish the truth: fail the read (rare).
    Fail(msg->request_id, msg->trace_id);
    return;
  }
  // The master's answer is the truth. Accuse every slave whose pledge
  // disagrees with it — their own signatures convict them.
  Bytes correct_hash = msg->correct_result.Sha1Digest();
  Pledge reference;
  bool have_reference = false;
  for (const auto& [slave, reply] : read.replies) {
    if (reply.second.result_sha1 != correct_hash) {
      ++metrics_.accusations_sent;
      if (TraceSink* t = env()->trace()) {
        t->Instant(TraceRole::kClient, id(), "accuse", msg->trace_id,
                   static_cast<int64_t>(slave));
      }
      Accusation accusation;
      accusation.trace_id = msg->trace_id;
      accusation.pledge = reply.second;
      env()->Send(LaneMaster(read.shard),
                  WithType(MsgType::kAccusation, accusation.Encode()));
    } else if (!have_reference) {
      reference = reply.second;
      have_reference = true;
    }
  }
  if (!have_reference) {
    // No slave matched the master; synthesize acceptance on the master's
    // result with the first pledge's version.
    reference = read.replies.begin()->second.second;
  }
  Accept(msg->request_id, msg->correct_result, reference);
}

void MultiReadClient::Accept(uint64_t request_id, const QueryResult& result,
                             const Pledge& pledge) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) {
    return;
  }
  if (it->second.parent != 0) {
    // One leg of a multi-shard read: fold into the parent. on_accept
    // fires per leg — each leg carries its own pledged version, so the
    // harness validates every shard-local result independently.
    env()->Cancel(it->second.timeout);
    ++metrics_.shard_legs_accepted;
    if (on_accept) {
      on_accept(it->second.query, pledge.token.content_version, result);
    }
    uint64_t parent_id = it->second.parent;
    uint32_t leg = it->second.leg;
    pending_.erase(it);
    auto mit = multireads_.find(parent_id);
    if (mit == multireads_.end()) {
      return;
    }
    MultiRead& multi = mit->second;
    multi.results[leg] = result;
    multi.tokens[leg] = pledge.token;
    if (--multi.remaining > 0) {
      return;
    }
    QueryResult merged =
        MergeShardResults(multi.query, multi.plan, multi.results);
    SimTime oldest = multi.tokens[0].timestamp;
    for (const VersionToken& token : multi.tokens) {
      oldest = std::min(oldest, token.timestamp);
    }
    metrics_.merged_token_age_us.Add(
        static_cast<double>(env()->Now() - oldest));
    ++metrics_.reads_accepted;
    if (TraceSink* t = env()->trace()) {
      t->Hist(TraceRole::kClient, id(), "read_rtt_us")
          .Record(env()->Now() - multi.issued);
      t->SpanEnd(TraceRole::kClient, id(), "read",
                 MintTraceId(id(), parent_id), 1);
    }
    Callback cb = std::move(multi.cb);
    multireads_.erase(mit);
    if (cb) {
      cb(true, merged);
    }
    return;
  }
  ++metrics_.reads_accepted;
  if (TraceSink* t = env()->trace()) {
    t->Hist(TraceRole::kClient, id(), "read_rtt_us")
        .Record(env()->Now() - it->second.issued);
    t->SpanEnd(TraceRole::kClient, id(), "read",
               MintTraceId(id(), request_id), 1);
  }
  env()->Cancel(it->second.timeout);
  if (on_accept) {
    on_accept(it->second.query, pledge.token.content_version, result);
  }
  Callback cb = std::move(it->second.cb);
  pending_.erase(it);
  if (cb) {
    cb(true, result);
  }
}

void MultiReadClient::Fail(uint64_t request_id, uint64_t trace_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) {
    return;
  }
  if (it->second.parent != 0) {
    FailMultiRead(it->second.parent);
    return;
  }
  ++metrics_.reads_failed;
  if (TraceSink* t = env()->trace()) {
    t->SpanEnd(TraceRole::kClient, id(), "read", trace_id, 0);
  }
  Callback cb = std::move(it->second.cb);
  pending_.erase(it);
  if (cb) {
    cb(false, QueryResult{});
  }
}

void MultiReadClient::FailMultiRead(uint64_t parent_id) {
  auto mit = multireads_.find(parent_id);
  if (mit == multireads_.end()) {
    return;
  }
  // A failed leg fails the merge: cancel and drop the surviving legs.
  for (uint64_t leg_id : mit->second.leg_ids) {
    auto lit = pending_.find(leg_id);
    if (lit != pending_.end()) {
      env()->Cancel(lit->second.timeout);
      pending_.erase(lit);
    }
  }
  ++metrics_.reads_failed;
  if (TraceSink* t = env()->trace()) {
    t->SpanEnd(TraceRole::kClient, id(), "read",
               MintTraceId(id(), parent_id), 0);
  }
  Callback cb = std::move(mit->second.cb);
  multireads_.erase(mit);
  if (cb) {
    cb(false, QueryResult{});
  }
}

}  // namespace sdr
