#include "src/core/multiread_client.h"

#include "src/trace/trace.h"

namespace sdr {

MultiReadClient::MultiReadClient(Options options)
    : options_(std::move(options)), rng_(options_.rng_seed) {}

void MultiReadClient::Start() {
  rng_ = Rng(options_.rng_seed ^ (static_cast<uint64_t>(id()) << 32));
}

const Certificate* MultiReadClient::CertFor(NodeId slave) const {
  for (const Certificate& cert : options_.slave_certs) {
    if (cert.subject == slave) {
      return &cert;
    }
  }
  return nullptr;
}

void MultiReadClient::IssueRead(const Query& query, Callback cb) {
  uint64_t request_id = next_request_id_++;
  PendingRead read;
  read.query = query;
  read.issued = env()->Now();
  read.expected = options_.slave_certs.size();
  read.cb = std::move(cb);
  ++metrics_.reads_issued;
  if (TraceSink* t = env()->trace()) {
    t->SpanBegin(TraceRole::kClient, id(), "read",
                 MintTraceId(id(), request_id));
  }

  ReadRequest msg;
  msg.request_id = request_id;
  msg.trace_id = MintTraceId(id(), request_id);
  msg.query = query;
  Bytes wire = WithType(MsgType::kReadRequest, msg.Encode());
  for (const Certificate& cert : options_.slave_certs) {
    env()->Send(cert.subject, wire);
  }
  read.timeout = env()->ScheduleAfter(
      options_.params.client_timeout,
      [this, request_id] { Resolve(request_id); });
  pending_.emplace(request_id, std::move(read));
}

void MultiReadClient::HandleMessage(NodeId from, const Payload& payload) {
  auto type = PeekType(payload);
  if (!type.ok()) {
    return;
  }
  BytesView body = BytesView(payload).substr(1);
  switch (*type) {
    case MsgType::kReadReply:
      HandleReadReply(from, body);
      break;
    case MsgType::kDoubleCheckReply:
      HandleDoubleCheckReply(body);
      break;
    // The multi-read harness only ever receives read traffic; everything
    // else is ignored by design.
    case MsgType::kDirectoryLookup:
    case MsgType::kDirectoryLookupReply:
    case MsgType::kClientHello:
    case MsgType::kClientHelloReply:
    case MsgType::kReadRequest:
    case MsgType::kWriteRequest:
    case MsgType::kWriteReply:
    case MsgType::kDoubleCheckRequest:
    case MsgType::kAccusation:
    case MsgType::kReassignment:
    case MsgType::kStateUpdate:
    case MsgType::kKeepAlive:
    case MsgType::kSlaveAck:
    case MsgType::kAuditSubmit:
    case MsgType::kBroadcastEnvelope:
    case MsgType::kBadReadNotice:
    case MsgType::kVvExchange:
    case MsgType::kForkEvidence:
      break;
  }
}

void MultiReadClient::HandleReadReply(NodeId from, BytesView body) {
  auto msg = ReadReply::Decode(body);
  if (!msg.ok()) {
    return;
  }
  auto it = pending_.find(msg->request_id);
  if (it == pending_.end() || it->second.double_checking) {
    return;
  }
  PendingRead& read = it->second;

  const Certificate* cert = CertFor(from);
  if (cert == nullptr) {
    return;
  }
  if (!msg->ok) {
    ++read.declines;
    if (read.replies.size() + read.declines >= read.expected) {
      env()->Cancel(read.timeout);
      Resolve(msg->request_id);
    }
    return;
  }
  const Pledge& pledge = msg->pledge;
  // Per-reply verification mirrors the base protocol.
  if (msg->result.Sha1Digest() != pledge.result_sha1 ||
      pledge.slave != from ||
      !VerifyPledgeSignature(options_.params.scheme, cert->subject_public_key,
                             pledge)) {
    return;
  }
  auto master_key = options_.master_keys.find(pledge.token.master);
  if (master_key == options_.master_keys.end() ||
      !VerifyVersionToken(options_.params.scheme, master_key->second,
                          pledge.token) ||
      !TokenIsFresh(pledge.token, env()->Now(), options_.params.max_latency)) {
    return;
  }
  read.replies[from] = {msg->result, pledge};
  if (read.replies.size() + read.declines >= read.expected) {
    env()->Cancel(read.timeout);
    Resolve(msg->request_id);
  }
}

void MultiReadClient::Resolve(uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end() || it->second.double_checking) {
    return;
  }
  PendingRead& read = it->second;
  if (read.replies.empty()) {
    ++metrics_.reads_failed;
    if (TraceSink* t = env()->trace()) {
      t->SpanEnd(TraceRole::kClient, id(), "read",
                 MintTraceId(id(), request_id), 0);
    }
    Callback cb = std::move(read.cb);
    pending_.erase(it);
    if (cb) {
      cb(false, QueryResult{});
    }
    return;
  }
  // "If all the answers are identical, the client proceeds as in the
  // original algorithm" — declining slaves gave no answer, so unanimity is
  // over the answers received. Replies for different (fresh) versions can
  // legitimately differ; treat hash disagreement as suspicion anyway — the
  // double-check resolves it either way.
  bool unanimous = true;
  const Bytes& first_hash = read.replies.begin()->second.second.result_sha1;
  for (const auto& [slave, reply] : read.replies) {
    if (reply.second.result_sha1 != first_hash) {
      unanimous = false;
      break;
    }
  }

  if (unanimous && !rng_.NextBool(options_.params.double_check_probability)) {
    ++metrics_.unanimous;
    const auto& [result, pledge] = read.replies.begin()->second;
    if (options_.params.audit_enabled && options_.auditor != kInvalidNode) {
      AuditSubmit submit;
      submit.trace_id = MintTraceId(id(), request_id);
      submit.pledge = pledge;
      if (TraceSink* t = env()->trace()) {
        t->Instant(TraceRole::kClient, id(), "pledge.forward",
                   submit.trace_id);
      }
      env()->Send(options_.auditor,
                  WithType(MsgType::kAuditSubmit, submit.Encode()));
    }
    Accept(request_id, result, pledge);
    return;
  }

  // Disagreement (or sampled): mandatory double-check with the master,
  // using the first pledge as the reference.
  if (!unanimous) {
    ++metrics_.disagreements;
  }
  read.double_checking = true;
  ++metrics_.double_checks_sent;
  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kClient, id(), "dc.send",
               MintTraceId(id(), request_id));
  }
  DoubleCheckRequest dc;
  dc.request_id = request_id;
  dc.trace_id = MintTraceId(id(), request_id);
  dc.pledge = read.replies.begin()->second.second;
  env()->Send(options_.master,
              WithType(MsgType::kDoubleCheckRequest, dc.Encode()));
}

void MultiReadClient::HandleDoubleCheckReply(BytesView body) {
  auto msg = DoubleCheckReply::Decode(body);
  if (!msg.ok()) {
    return;
  }
  auto it = pending_.find(msg->request_id);
  if (it == pending_.end() || !it->second.double_checking) {
    return;
  }
  PendingRead& read = it->second;

  if (!msg->served) {
    // Cannot establish the truth: fail the read (rare).
    ++metrics_.reads_failed;
    if (TraceSink* t = env()->trace()) {
      t->SpanEnd(TraceRole::kClient, id(), "read", msg->trace_id, 0);
    }
    Callback cb = std::move(read.cb);
    pending_.erase(it);
    if (cb) {
      cb(false, QueryResult{});
    }
    return;
  }
  // The master's answer is the truth. Accuse every slave whose pledge
  // disagrees with it — their own signatures convict them.
  Bytes correct_hash = msg->correct_result.Sha1Digest();
  Pledge reference;
  bool have_reference = false;
  for (const auto& [slave, reply] : read.replies) {
    if (reply.second.result_sha1 != correct_hash) {
      ++metrics_.accusations_sent;
      if (TraceSink* t = env()->trace()) {
        t->Instant(TraceRole::kClient, id(), "accuse", msg->trace_id,
                   static_cast<int64_t>(slave));
      }
      Accusation accusation;
      accusation.trace_id = msg->trace_id;
      accusation.pledge = reply.second;
      env()->Send(options_.master,
                  WithType(MsgType::kAccusation, accusation.Encode()));
    } else if (!have_reference) {
      reference = reply.second;
      have_reference = true;
    }
  }
  if (!have_reference) {
    // No slave matched the master; synthesize acceptance on the master's
    // result with the first pledge's version.
    reference = read.replies.begin()->second.second;
  }
  Accept(msg->request_id, msg->correct_result, reference);
}

void MultiReadClient::Accept(uint64_t request_id, const QueryResult& result,
                             const Pledge& pledge) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) {
    return;
  }
  ++metrics_.reads_accepted;
  if (TraceSink* t = env()->trace()) {
    t->Hist(TraceRole::kClient, id(), "read_rtt_us")
        .Record(env()->Now() - it->second.issued);
    t->SpanEnd(TraceRole::kClient, id(), "read",
               MintTraceId(id(), request_id), 1);
  }
  env()->Cancel(it->second.timeout);
  if (on_accept) {
    on_accept(it->second.query, pledge.token.content_version, result);
  }
  Callback cb = std::move(it->second.cb);
  pending_.erase(it);
  if (cb) {
    cb(true, result);
  }
}

}  // namespace sdr
