#include "src/core/messages.h"

namespace sdr {

namespace {
// Shared tail check for all Decode() functions.
template <typename T>
Result<T> FinishDecode(T msg, const Reader& r) {
  if (!r.Done()) {
    return Error(ErrorCode::kCorrupt, "bad message encoding");
  }
  return msg;
}

void EncodeCerts(Writer& w, const std::vector<Certificate>& certs) {
  w.U32(static_cast<uint32_t>(certs.size()));
  for (const Certificate& c : certs) {
    c.EncodeTo(w);
  }
}

std::vector<Certificate> DecodeCerts(Reader& r) {
  uint32_t n = r.U32();
  std::vector<Certificate> certs;
  certs.reserve(std::min<uint32_t>(n, 256));
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    certs.push_back(Certificate::DecodeFrom(r));
  }
  return certs;
}

void EncodeResult(Writer& w, const QueryResult& result) {
  w.Blob(result.Encode());
}

QueryResult DecodeResult(Reader& r) {
  Bytes enc = r.Blob();
  auto res = QueryResult::Decode(enc);
  return res.ok() ? *res : QueryResult{};
}

// Optional trailing version vector (fork checking). Writing nothing when
// absent keeps disabled-mode encodings byte-identical to the fork-unaware
// wire format; the decoder keys off the remaining byte count, which only
// works because the vector is the last field of its messages.
void EncodeOptionalVv(Writer& w, const std::optional<VersionVector>& vv) {
  if (vv.has_value()) {
    vv->EncodeTo(w);
  }
}

std::optional<VersionVector> DecodeOptionalVv(Reader& r) {
  if (r.remaining() == 0) {
    return std::nullopt;
  }
  return VersionVector::DecodeFrom(r);
}

void EncodeAvvs(Writer& w, const std::vector<AttestedVv>& entries) {
  w.U32(static_cast<uint32_t>(entries.size()));
  for (const AttestedVv& e : entries) {
    e.EncodeTo(w);
  }
}

std::vector<AttestedVv> DecodeAvvs(Reader& r) {
  uint32_t n = r.U32();
  std::vector<AttestedVv> entries;
  entries.reserve(std::min<uint32_t>(n, 256));
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    entries.push_back(AttestedVv::DecodeFrom(r));
  }
  return entries;
}
}  // namespace

Result<MsgType> PeekType(BytesView payload) {
  if (payload.empty()) {
    return Error(ErrorCode::kCorrupt, "empty payload");
  }
  return static_cast<MsgType>(payload[0]);
}

Bytes WithType(MsgType type, const Bytes& body) {
  Bytes out;
  out.reserve(body.size() + 1);
  out.push_back(static_cast<uint8_t>(type));
  Append(out, body);
  return out;
}

Result<TobPayloadType> PeekTobType(BytesView payload) {
  if (payload.empty()) {
    return Error(ErrorCode::kCorrupt, "empty TOB payload");
  }
  return static_cast<TobPayloadType>(payload[0]);
}

Bytes WithTobType(TobPayloadType type, const Bytes& body) {
  Bytes out;
  out.reserve(body.size() + 1);
  out.push_back(static_cast<uint8_t>(type));
  Append(out, body);
  return out;
}

// Bodies below never include the leading type byte; senders use WithType()
// and receivers strip it before calling Decode.

Bytes DirectoryLookup::Encode() const {
  Writer w;
  w.Blob(content_public_key);
  return w.Take();
}

Result<DirectoryLookup> DirectoryLookup::Decode(BytesView body) {
  Reader r(body);
  DirectoryLookup m;
  m.content_public_key = r.Blob();
  return FinishDecode(std::move(m), r);
}

Bytes DirectoryLookupReply::Encode() const {
  Writer w;
  EncodeCerts(w, master_certs);
  return w.Take();
}

Result<DirectoryLookupReply> DirectoryLookupReply::Decode(BytesView body) {
  Reader r(body);
  DirectoryLookupReply m;
  m.master_certs = DecodeCerts(r);
  return FinishDecode(std::move(m), r);
}

Bytes ClientHello::Encode() const {
  Writer w;
  w.Blob(client_nonce);
  return w.Take();
}

Result<ClientHello> ClientHello::Decode(BytesView body) {
  Reader r(body);
  ClientHello m;
  m.client_nonce = r.Blob();
  return FinishDecode(std::move(m), r);
}

Bytes ClientHelloReply::SignedBody(const Bytes& client_nonce) const {
  Writer w;
  w.Blob(std::string_view("sdr-hello-v1"));
  w.Blob(client_nonce);
  w.Blob(server_nonce);
  slave_cert.EncodeTo(w);
  w.U32(auditor);
  return w.Take();
}

Bytes ClientHelloReply::Encode() const {
  Writer w;
  w.Blob(server_nonce);
  slave_cert.EncodeTo(w);
  w.U32(auditor);
  w.Blob(signature);
  return w.Take();
}

Result<ClientHelloReply> ClientHelloReply::Decode(BytesView body) {
  Reader r(body);
  ClientHelloReply m;
  m.server_nonce = r.Blob();
  m.slave_cert = Certificate::DecodeFrom(r);
  m.auditor = r.U32();
  m.signature = r.Blob();
  return FinishDecode(std::move(m), r);
}

Bytes ReadRequest::Encode() const {
  Writer w;
  w.U64(request_id);
  w.U64(trace_id);
  query.EncodeTo(w);
  return w.Take();
}

Result<ReadRequest> ReadRequest::Decode(BytesView body) {
  Reader r(body);
  ReadRequest m;
  m.request_id = r.U64();
  m.trace_id = r.U64();
  m.query = Query::DecodeFrom(r);
  return FinishDecode(std::move(m), r);
}

Bytes ReadReply::Encode() const {
  Writer w;
  w.U64(request_id);
  w.U64(trace_id);
  w.Bool(ok);
  EncodeResult(w, result);
  pledge.EncodeTo(w);
  EncodeOptionalVv(w, vv);
  return w.Take();
}

Result<ReadReply> ReadReply::Decode(BytesView body) {
  Reader r(body);
  ReadReply m;
  m.request_id = r.U64();
  m.trace_id = r.U64();
  m.ok = r.Bool();
  m.result = DecodeResult(r);
  m.pledge = Pledge::DecodeFrom(r);
  m.vv = DecodeOptionalVv(r);
  return FinishDecode(std::move(m), r);
}

Bytes WriteRequest::Encode() const {
  Writer w;
  w.U64(request_id);
  EncodeBatch(w, batch);
  return w.Take();
}

Result<WriteRequest> WriteRequest::Decode(BytesView body) {
  Reader r(body);
  WriteRequest m;
  m.request_id = r.U64();
  m.batch = DecodeBatch(r);
  return FinishDecode(std::move(m), r);
}

Bytes WriteReply::Encode() const {
  Writer w;
  w.U64(request_id);
  w.Bool(ok);
  w.U64(committed_version);
  w.U8(error_code);
  return w.Take();
}

Result<WriteReply> WriteReply::Decode(BytesView body) {
  Reader r(body);
  WriteReply m;
  m.request_id = r.U64();
  m.ok = r.Bool();
  m.committed_version = r.U64();
  m.error_code = r.U8();
  return FinishDecode(std::move(m), r);
}

Bytes DoubleCheckRequest::Encode() const {
  Writer w;
  w.U64(request_id);
  w.U64(trace_id);
  pledge.EncodeTo(w);
  return w.Take();
}

Result<DoubleCheckRequest> DoubleCheckRequest::Decode(BytesView body) {
  Reader r(body);
  DoubleCheckRequest m;
  m.request_id = r.U64();
  m.trace_id = r.U64();
  m.pledge = Pledge::DecodeFrom(r);
  return FinishDecode(std::move(m), r);
}

Bytes DoubleCheckReply::Encode() const {
  Writer w;
  w.U64(request_id);
  w.U64(trace_id);
  w.Bool(served);
  w.Bool(matches);
  EncodeResult(w, correct_result);
  return w.Take();
}

Result<DoubleCheckReply> DoubleCheckReply::Decode(BytesView body) {
  Reader r(body);
  DoubleCheckReply m;
  m.request_id = r.U64();
  m.trace_id = r.U64();
  m.served = r.Bool();
  m.matches = r.Bool();
  m.correct_result = DecodeResult(r);
  return FinishDecode(std::move(m), r);
}

Bytes Accusation::Encode() const {
  Writer w;
  w.U64(trace_id);
  pledge.EncodeTo(w);
  return w.Take();
}

Result<Accusation> Accusation::Decode(BytesView body) {
  Reader r(body);
  Accusation m;
  m.trace_id = r.U64();
  m.pledge = Pledge::DecodeFrom(r);
  return FinishDecode(std::move(m), r);
}

Bytes Reassignment::SignedBody() const {
  Writer w;
  w.Blob(std::string_view("sdr-reassign-v1"));
  new_slave_cert.EncodeTo(w);
  w.U32(auditor);
  w.U32(excluded_slave);
  return w.Take();
}

Bytes Reassignment::Encode() const {
  Writer w;
  // Leads the encoding like the other evidence-path messages, and stays
  // outside SignedBody(): the trace id is observability metadata, not a
  // protocol commitment, so it must not invalidate signatures.
  w.U64(trace_id);
  new_slave_cert.EncodeTo(w);
  w.U32(auditor);
  w.U32(excluded_slave);
  w.Blob(signature);
  return w.Take();
}

Result<Reassignment> Reassignment::Decode(BytesView body) {
  Reader r(body);
  Reassignment m;
  m.trace_id = r.U64();
  m.new_slave_cert = Certificate::DecodeFrom(r);
  m.auditor = r.U32();
  m.excluded_slave = r.U32();
  m.signature = r.Blob();
  return FinishDecode(std::move(m), r);
}

Bytes StateUpdate::Encode() const {
  Writer w;
  w.U64(version);
  EncodeBatch(w, batch);
  token.EncodeTo(w);
  return w.Take();
}

Result<StateUpdate> StateUpdate::Decode(BytesView body) {
  Reader r(body);
  StateUpdate m;
  m.version = r.U64();
  m.batch = DecodeBatch(r);
  m.token = VersionToken::DecodeFrom(r);
  return FinishDecode(std::move(m), r);
}

Bytes KeepAlive::Encode() const {
  Writer w;
  token.EncodeTo(w);
  return w.Take();
}

Result<KeepAlive> KeepAlive::Decode(BytesView body) {
  Reader r(body);
  KeepAlive m;
  m.token = VersionToken::DecodeFrom(r);
  return FinishDecode(std::move(m), r);
}

Bytes SlaveAck::Encode() const {
  Writer w;
  w.U64(applied_version);
  return w.Take();
}

Result<SlaveAck> SlaveAck::Decode(BytesView body) {
  Reader r(body);
  SlaveAck m;
  m.applied_version = r.U64();
  return FinishDecode(std::move(m), r);
}

Bytes AuditSubmit::Encode() const {
  Writer w;
  w.U64(trace_id);
  pledge.EncodeTo(w);
  EncodeOptionalVv(w, vv);
  return w.Take();
}

Result<AuditSubmit> AuditSubmit::Decode(BytesView body) {
  Reader r(body);
  AuditSubmit m;
  m.trace_id = r.U64();
  m.pledge = Pledge::DecodeFrom(r);
  m.vv = DecodeOptionalVv(r);
  return FinishDecode(std::move(m), r);
}

Bytes BadReadNotice::Encode() const {
  Writer w;
  w.U64(trace_id);
  pledge.EncodeTo(w);
  w.Blob(correct_sha1);
  return w.Take();
}

Result<BadReadNotice> BadReadNotice::Decode(BytesView body) {
  Reader r(body);
  BadReadNotice m;
  m.trace_id = r.U64();
  m.pledge = Pledge::DecodeFrom(r);
  m.correct_sha1 = r.Blob();
  return FinishDecode(std::move(m), r);
}

Bytes VvExchange::Encode() const {
  Writer w;
  w.U32(origin);
  EncodeAvvs(w, entries);
  return w.Take();
}

Result<VvExchange> VvExchange::Decode(BytesView body) {
  Reader r(body);
  VvExchange m;
  m.origin = r.U32();
  m.entries = DecodeAvvs(r);
  return FinishDecode(std::move(m), r);
}

Bytes ForkEvidence::Encode() const {
  Writer w;
  w.U64(trace_id);
  chain.EncodeTo(w);
  return w.Take();
}

Result<ForkEvidence> ForkEvidence::Decode(BytesView body) {
  Reader r(body);
  ForkEvidence m;
  m.trace_id = r.U64();
  m.chain = EvidenceChain::DecodeFrom(r);
  return FinishDecode(std::move(m), r);
}

Bytes PlacementQuery::Encode() const {
  Writer w;
  w.Blob(content_public_key);
  return w.Take();
}

Result<PlacementQuery> PlacementQuery::Decode(BytesView body) {
  Reader r(body);
  PlacementQuery m;
  m.content_public_key = r.Blob();
  return FinishDecode(std::move(m), r);
}

Bytes PlacementReply::Encode() const {
  Writer w;
  w.Bool(found);
  placement.EncodeTo(w);
  return w.Take();
}

Result<PlacementReply> PlacementReply::Decode(BytesView body) {
  Reader r(body);
  PlacementReply m;
  m.found = r.Bool();
  m.placement = ShardPlacement::DecodeFrom(r);
  return FinishDecode(std::move(m), r);
}

Bytes StateUpdateBatch::Encode() const {
  Writer w;
  w.U64(first_version);
  w.U32(static_cast<uint32_t>(batches.size()));
  for (const WriteBatch& b : batches) {
    EncodeBatch(w, b);
  }
  token.EncodeTo(w);
  commit.EncodeTo(w);
  return w.Take();
}

Result<StateUpdateBatch> StateUpdateBatch::Decode(BytesView body) {
  Reader r(body);
  StateUpdateBatch m;
  m.first_version = r.U64();
  uint32_t n = r.U32();
  m.batches.reserve(std::min<uint32_t>(n, 256));
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    m.batches.push_back(DecodeBatch(r));
  }
  m.token = VersionToken::DecodeFrom(r);
  m.commit = BatchCommit::DecodeFrom(r);
  return FinishDecode(std::move(m), r);
}

Bytes TobWrite::Encode() const {
  Writer w;
  w.U32(origin_master);
  w.U32(client);
  w.U64(request_id);
  EncodeBatch(w, batch);
  return w.Take();
}

Result<TobWrite> TobWrite::Decode(BytesView body) {
  Reader r(body);
  TobWrite m;
  m.origin_master = r.U32();
  m.client = r.U32();
  m.request_id = r.U64();
  m.batch = DecodeBatch(r);
  return FinishDecode(std::move(m), r);
}

Bytes TobWriteBundle::Encode() const {
  Writer w;
  w.U32(static_cast<uint32_t>(writes.size()));
  for (const TobWrite& tw : writes) {
    w.U32(tw.origin_master);
    w.U32(tw.client);
    w.U64(tw.request_id);
    EncodeBatch(w, tw.batch);
  }
  return w.Take();
}

Result<TobWriteBundle> TobWriteBundle::Decode(BytesView body) {
  Reader r(body);
  TobWriteBundle m;
  uint32_t n = r.U32();
  m.writes.reserve(std::min<uint32_t>(n, 256));
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    TobWrite tw;
    tw.origin_master = r.U32();
    tw.client = r.U32();
    tw.request_id = r.U64();
    tw.batch = DecodeBatch(r);
    m.writes.push_back(std::move(tw));
  }
  return FinishDecode(std::move(m), r);
}

Bytes TobGossip::Encode() const {
  Writer w;
  w.U32(master);
  EncodeCerts(w, slave_certs);
  return w.Take();
}

Result<TobGossip> TobGossip::Decode(BytesView body) {
  Reader r(body);
  TobGossip m;
  m.master = r.U32();
  m.slave_certs = DecodeCerts(r);
  return FinishDecode(std::move(m), r);
}

}  // namespace sdr
