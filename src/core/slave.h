// The slave server: holds a copy of the content, applies lazily pushed
// state updates from its master, and answers client read queries with
// signed pledge packets (paper Sections 2, 3.1, 3.2).
//
// Slaves are only marginally trusted, so the class also implements the
// malicious behaviours the protocol must catch; which behaviour a slave
// exhibits is part of the simulation configuration, invisible on the wire.
#ifndef SDR_SRC_CORE_SLAVE_H_
#define SDR_SRC_CORE_SLAVE_H_

#include <map>
#include <optional>

#include "src/core/config.h"
#include "src/core/messages.h"
#include "src/core/metrics.h"
#include "src/core/pledge.h"
#include "src/core/service_queue.h"
#include "src/forkcheck/fork.h"
#include "src/runtime/env.h"
#include "src/store/document_store.h"
#include "src/store/executor.h"

namespace sdr {

class Slave : public Node {
 public:
  // How this slave (mis)behaves. The default is honest.
  struct Behavior {
    // With this probability a read's result is silently corrupted while the
    // pledge hash matches the corrupted result — the paper's core threat:
    // undetectable at the client, caught only by double-check or audit.
    double lie_probability = 0.0;
    // Corrupt the result but leave the pledge hash computed over the
    // correct result — clients detect this immediately at the hash check.
    double inconsistent_lie_probability = 0.0;
    // Stop applying state updates (an honest slave in this state declines
    // reads once its token goes stale).
    bool ignore_updates = false;
    // Keep serving with the last (stale) token instead of declining —
    // clients reject such pledges by the freshness check.
    bool serve_despite_stale = false;
    // Drop read requests with this probability (unresponsiveness).
    double drop_probability = 0.0;
    // ---- Equivocation behaviors (caught by src/forkcheck/) ----
    // Maintain a forked view for the odd-id half of the clients: they get
    // results frozen at enablement time while the pledge still claims the
    // current version — an internally-consistent fork per client set that
    // produces no single falsifiable answer *within* either set.
    bool fork_views = false;
    // Serve every client from a one-version-lagged snapshot under the
    // current (fresh) token: stale content, freshly signed pledge.
    bool stale_pledge = false;
    // Like fork_views, but the equivocating replies are additionally held
    // back to just inside the freshness window (targeted slow-lies).
    bool split_serve = false;
  };

  struct Options {
    ProtocolParams params;
    CostModel cost;
    KeyPair key_pair;
    Behavior behavior;
    // Master public keys (master id -> key) for verifying version tokens.
    std::map<NodeId, Bytes> master_keys;
    uint64_t rng_seed = 1;
  };

  explicit Slave(Options options);

  void Start() override;
  void HandleMessage(NodeId from, const Payload& payload) override;

  // Installs initial content at version 0 (out-of-band distribution).
  void SetBaseContent(const DocumentStore& base);

  // Behaviour is runtime-mutable so fault-injection scenarios can flip a
  // slave malicious (or honest again) mid-run.
  void SetBehavior(const Behavior& behavior) { options_.behavior = behavior; }
  const Behavior& behavior() const { return options_.behavior; }

  uint64_t applied_version() const { return applied_version_; }
  const Bytes& public_key() const { return signer_.public_key(); }
  const SlaveMetrics& metrics() const {
    metrics_.sig_cache_hits = verify_cache_.stats().hits;
    metrics_.sig_cache_misses = verify_cache_.stats().misses;
    return metrics_;
  }
  const ServiceQueue& service_queue() const { return *queue_; }
  const DocumentStore& store() const { return store_; }

 private:
  void HandleStateUpdate(NodeId from, BytesView body);
  // Group commit: one verified BatchCommit certificate admits a whole run
  // of versions, decomposed into the per-version apply path.
  void HandleStateUpdateBatch(NodeId from, BytesView body);
  void HandleKeepAlive(NodeId from, BytesView body);
  void HandleReadRequest(NodeId from, BytesView body);
  void ApplyBuffered();
  void MaybeAdoptToken(const VersionToken& token);
  bool TokenFresh() const;
  void AckTo(NodeId master);

  Options options_;
  Signer signer_;
  Rng rng_;

  DocumentStore store_;
  QueryExecutor executor_;
  uint64_t applied_version_ = 0;
  std::map<uint64_t, StateUpdate> buffered_updates_;
  std::optional<VersionToken> token_;
  std::unique_ptr<ServiceQueue> queue_;

  // ---- Fork-consistency state (chains used only with fork_check_enabled,
  // views only while an equivocation behavior is active) ----
  // chains_[0] is the canonical pledge chain covering every client; an
  // equivocating slave lazily forks chains_[1] off it for the targeted
  // client set — the per-set chains are exactly what lets each set see an
  // internally-consistent history, and exactly what the signed
  // VersionVectors expose when the sets compare notes.
  PledgeChain chains_[2];
  bool chain1_forked_ = false;
  // Frozen content snapshots backing the attack behaviors.
  struct FrozenView {
    DocumentStore store;
    uint64_t version = 0;
  };
  std::optional<FrozenView> fork_view_;  // fork_views / split_serve
  std::optional<FrozenView> lag_view_;   // stale_pledge

  // Deduplicates token verifications: the same token arrives repeatedly via
  // keepalives and state updates during its lifetime.
  VerifyCache verify_cache_;
  mutable SlaveMetrics metrics_;
};

}  // namespace sdr

#endif  // SDR_SRC_CORE_SLAVE_H_
