// The cluster harness: builds a full deployment — directory, masters,
// auditor, slaves, clients — on the simulated network, wires up keys and
// certificates the way the content owner would, installs the initial
// content, and (optionally) validates every client-accepted read against
// ground truth. This is the entry point examples, integration tests and
// benchmarks use.
#ifndef SDR_SRC_CORE_CLUSTER_H_
#define SDR_SRC_CORE_CLUSTER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/core/auditor.h"
#include "src/core/client.h"
#include "src/core/directory.h"
#include "src/core/master.h"
#include "src/core/shard.h"
#include "src/core/slave.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/trace/trace.h"
#include "src/workload/fleet.h"
#include "src/workload/workload.h"

namespace sdr {

// Observability knobs. Tracing is off by default: with `enabled` false the
// cluster never creates a TraceSink, the simulator's trace() stays null, and
// every instrumentation site reduces to one untaken branch.
struct TraceConfig {
  bool enabled = false;
  size_t capacity = 1 << 20;  // ring-buffer event capacity
  bool sim_spans = false;     // wrap every simulator event in a span (verbose)
};

struct ClusterConfig {
  uint64_t seed = 1;
  int num_masters = 2;       // serving masters (auditors are additional)
  int num_auditors = 1;      // Section 3.4: "add extra auditors" to scale
  int slaves_per_master = 2;
  int num_clients = 4;

  // Keyspace sharding (src/core/shard.h). 1 = the paper's single group,
  // bit-for-bit. Above 1 the cluster builds one independent group
  // (num_masters masters + num_auditors auditors + their slaves) per
  // shard, splits the corpus by a directory-published signed placement,
  // and every client runs in sharded (multi-lane) mode. All counts above
  // are per shard.
  int num_shards = 1;

  // Simulated-client fleet (src/workload/fleet.h): one multiplexing node,
  // appended last in the roster, modeling `fleet_clients` open-loop
  // clients. 0 = no fleet node (classic roster, byte-identical).
  int fleet_clients = 0;
  double fleet_reads_per_second = 1.0;
  double fleet_write_fraction = 0.0;

  ProtocolParams params;
  CostModel cost;
  LinkModel default_link = LinkModel{5 * kMillisecond, 2 * kMillisecond, 0.0};

  CorpusConfig corpus;
  QueryMix mix;
  WriteGen write_gen;

  // Template applied to every client (directory/content/query sources are
  // filled in by the cluster); customize per client via tweak_client.
  Client::LoadMode client_mode = Client::LoadMode::kManual;
  SimTime client_think_time = 100 * kMillisecond;
  double client_reads_per_second = 2.0;
  double client_write_fraction = 0.0;
  std::function<double(SimTime)> client_rate_multiplier;
  std::function<void(int index, Client::Options&)> tweak_client;

  // Behaviour by global slave index (default honest).
  std::function<Slave::Behavior(int index)> slave_behavior;

  // Validate accepted reads against ground truth (costs host CPU).
  bool track_ground_truth = true;

  // The auditor's result cache (Section 3.4 "query optimization"); E5
  // ablates it.
  bool auditor_use_cache = true;

  // Host worker lanes for the auditor's re-execution engine. Purely a
  // host-CPU knob: every simulated output is byte-identical at any value.
  int audit_jobs = 1;

  uint64_t snapshot_interval = 16;
  TotalOrderBroadcast::Config broadcast;

  TraceConfig trace;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  // Advances virtual time by `duration`, firing registered tick hooks on
  // their cadence along the way.
  void RunFor(SimTime duration);

  // Registers `hook` to run every `period` of virtual time during RunFor.
  // Hooks run outside any simulator event, so they observe a quiescent
  // cluster; the chaos engine drives its invariant checkers through this.
  void AddTickHook(SimTime period, std::function<void()> hook);

  // One record per client-accepted read, emitted to on_accepted_read.
  // `checked`/`wrong` are filled only when ground-truth tracking is on.
  struct AcceptedRead {
    int client_index = 0;
    NodeId slave = kInvalidNode;
    uint64_t version = 0;
    SimTime token_timestamp = 0;  // master clock when the token was signed
    SimTime accepted_at = 0;
    bool checked = false;
    bool wrong = false;
  };
  std::function<void(const AcceptedRead&)> on_accepted_read;

  // True when any master (alive or crashed) has excluded `slave`.
  bool ExcludedByAnyMaster(NodeId slave) const;

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }
  // Null unless config.trace.enabled.
  TraceSink* trace() { return trace_sink_.get(); }
  Directory& directory() { return *directory_; }
  Master& master(int i) { return *masters_[i]; }
  Auditor& auditor(int i = 0) { return *auditors_[i]; }
  Slave& slave(int i) { return *slaves_[i]; }
  Client& client(int i) { return *clients_[i]; }
  int num_masters() const { return static_cast<int>(masters_.size()); }
  int num_auditors() const { return static_cast<int>(auditors_.size()); }
  int num_slaves() const { return static_cast<int>(slaves_.size()); }
  int num_clients() const { return static_cast<int>(clients_.size()); }

  // Sharding topology. The flat accessors above stay valid in sharded
  // runs: nodes are laid out shard-major, so shard s owns masters
  // [s*masters_per_shard, ...), auditors and slaves likewise.
  int num_shards() const { return std::max(1, config_.num_shards); }
  int masters_per_shard() const { return config_.num_masters; }
  int auditors_per_shard() const { return std::max(1, config_.num_auditors); }
  int slaves_per_shard() const {
    return config_.num_masters * config_.slaves_per_master;
  }
  // Which shard a (master) node serves; 0 for unknown ids.
  int shard_of_master(NodeId master) const;
  const ShardMap& shard_map() const { return shard_map_; }
  // Null unless config.fleet_clients > 0.
  ClientFleet* fleet() { return fleet_.get(); }

  const ContentIdentity& content() const { return content_; }
  const ClusterConfig& config() const { return config_; }

  // Every fork-evidence chain assembled anywhere in the cluster (clients
  // and auditors), in emission order. Empty unless fork_check_enabled.
  const std::vector<EvidenceChain>& fork_evidence() const {
    return fork_evidence_;
  }

  // Ground-truth accounting (only meaningful with track_ground_truth).
  uint64_t accepted_checked() const { return accepted_checked_; }
  uint64_t accepted_wrong() const { return accepted_wrong_; }
  uint64_t accepted_uncheckable() const { return accepted_uncheckable_; }

  // Aggregates across nodes, for benches and quick assertions.
  struct Totals {
    uint64_t reads_issued = 0;
    uint64_t reads_accepted = 0;
    uint64_t reads_rejected_stale = 0;
    uint64_t retries = 0;
    uint64_t double_checks_sent = 0;
    uint64_t double_check_mismatches = 0;
    uint64_t pledges_forwarded = 0;
    uint64_t writes_committed_clients = 0;
    uint64_t slave_work_units = 0;
    uint64_t master_work_units = 0;
    uint64_t auditor_work_units = 0;
    uint64_t slaves_excluded = 0;
    uint64_t auditor_mismatches = 0;
    uint64_t lies_told = 0;
    // Fork-consistency aggregates (zero unless fork_check_enabled).
    uint64_t forks_detected = 0;
    uint64_t evidence_chains_emitted = 0;
    uint64_t vv_exchanges = 0;
    // Group-commit / sharding aggregates (zero in classic runs).
    uint64_t writes_committed_masters = 0;
    uint64_t writes_batched = 0;
    uint64_t batches_committed = 0;
    uint64_t state_update_batches = 0;
    uint64_t commit_signatures = 0;
    uint64_t placement_cache_hits = 0;
    uint64_t placement_cache_misses = 0;
    uint64_t multi_shard_reads = 0;
    uint64_t multi_shard_writes = 0;
    uint64_t shard_subreads_issued = 0;
    uint64_t shard_subreads_accepted = 0;
    uint64_t shard_subwrites_committed = 0;
  };
  Totals ComputeTotals() const;

 private:
  void OnClientAccept(int client_index, const Query& query,
                      const Pledge& pledge, const QueryResult& result);
  void ValidateAcceptedRead(const Query& query, uint64_t version,
                            const QueryResult& result, int shard,
                            AcceptedRead* record);

  struct TickHook {
    SimTime period;
    SimTime next_due;
    std::function<void()> fn;
  };
  std::vector<TickHook> tick_hooks_;

  ClusterConfig config_;
  Simulator sim_;
  // Owned here, surfaced to nodes through Simulator::trace(); must outlive
  // every node, so it sits next to sim_ above the node containers.
  std::unique_ptr<TraceSink> trace_sink_;
  Network net_;
  ContentIdentity content_;

  std::unique_ptr<Directory> directory_;
  std::vector<std::unique_ptr<Master>> masters_;
  std::vector<std::unique_ptr<Auditor>> auditors_;
  std::vector<std::unique_ptr<Slave>> slaves_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::unique_ptr<ClientFleet> fleet_;

  // Trivial (one shard, no boundaries) unless config.num_shards > 1.
  ShardMap shard_map_;
  std::map<NodeId, int> shard_of_master_;

  QueryExecutor truth_executor_;
  uint64_t accepted_checked_ = 0;
  uint64_t accepted_wrong_ = 0;
  uint64_t accepted_uncheckable_ = 0;
  std::vector<EvidenceChain> fork_evidence_;
};

}  // namespace sdr

#endif  // SDR_SRC_CORE_CLUSTER_H_
