// A single-server FIFO work queue in environment time. Servers (slaves,
// masters, the auditor) push jobs with a service time from the CostModel;
// completions fire in order once the (simulated or real) CPU gets to them.
// This is what makes load arguments measurable: utilization, queueing
// delay, and backlog all emerge from job costs.
#ifndef SDR_SRC_CORE_SERVICE_QUEUE_H_
#define SDR_SRC_CORE_SERVICE_QUEUE_H_

#include <cstdint>

#include "src/runtime/env.h"
#include "src/trace/trace.h"
#include "src/util/inline_function.h"

namespace sdr {

class ServiceQueue {
 public:
  // speed > 1.0 models a faster server (service times divided by speed).
  ServiceQueue(Env* env, double speed = 1.0);

  // Attributes this queue's wait-time samples ("queue_wait_us") to the
  // owning node. Until called (or when the sim has no trace sink), no
  // samples are recorded.
  void BindTrace(TraceRole role, uint32_t node) {
    trace_role_ = role;
    trace_node_ = node;
  }

  // Enqueues a job; `done` runs when the server finishes it.
  void Enqueue(SimTime service_time, InlineFunction<void()> done);

  // Jobs accepted but not yet completed.
  size_t depth() const { return depth_; }

  // Virtual time this server has spent busy (for utilization).
  SimTime busy_time() const { return busy_time_; }
  uint64_t jobs_completed() const { return jobs_completed_; }

  // Earliest time a new job could start.
  SimTime busy_until() const;

  double UtilizationSince(SimTime start, SimTime now) const;

 private:
  Env* env_;
  double speed_;
  TraceRole trace_role_ = TraceRole::kNone;
  uint32_t trace_node_ = 0;
  SimTime busy_until_ = 0;
  SimTime busy_time_ = 0;
  size_t depth_ = 0;
  uint64_t jobs_completed_ = 0;
};

}  // namespace sdr

#endif  // SDR_SRC_CORE_SERVICE_QUEUE_H_
