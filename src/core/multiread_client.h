// The multi-slave read variant (paper Section 4): "send the same read
// request to more than one untrusted server. If all the answers are
// identical, the client proceeds as in the original algorithm —
// double-check with the master (with a small probability) and send the
// pledge packets to the auditor. If not all answers match, the client
// automatically double-checks, since at least one of the slaves has to be
// malicious." A number of malicious slaves would have to collude to pass
// an incorrect answer; the price is k-fold untrusted execution.
#ifndef SDR_SRC_CORE_MULTIREAD_CLIENT_H_
#define SDR_SRC_CORE_MULTIREAD_CLIENT_H_

#include <functional>
#include <map>
#include <vector>

#include "src/core/config.h"
#include "src/core/messages.h"
#include "src/core/metrics.h"
#include "src/runtime/env.h"
#include "src/store/executor.h"

namespace sdr {

class MultiReadClient : public Node {
 public:
  struct Options {
    ProtocolParams params;
    // The k slaves this client fans every read out to (certs from the
    // master at an extended setup; wired directly by the harness here).
    std::vector<Certificate> slave_certs;
    std::map<NodeId, Bytes> master_keys;
    NodeId master = kInvalidNode;
    NodeId auditor = kInvalidNode;
    uint64_t rng_seed = 1;
  };

  struct Metrics {
    uint64_t reads_issued = 0;
    uint64_t reads_accepted = 0;
    uint64_t unanimous = 0;         // all k answers matched
    uint64_t disagreements = 0;     // triggered a mandatory double-check
    uint64_t double_checks_sent = 0;
    uint64_t accusations_sent = 0;
    uint64_t reads_failed = 0;
  };

  explicit MultiReadClient(Options options);

  void Start() override;
  void HandleMessage(NodeId from, const Payload& payload) override;

  using Callback = std::function<void(bool ok, const QueryResult& result)>;
  void IssueRead(const Query& query, Callback cb = nullptr);

  // Invoked on accept with the pledged version (ground-truth hook).
  std::function<void(const Query&, uint64_t version, const QueryResult&)>
      on_accept;

  const Metrics& metrics() const { return metrics_; }

 private:
  struct PendingRead {
    Query query;
    SimTime issued = 0;
    size_t expected = 0;
    // Declines (slave out of sync / excluded) count toward completion so
    // one dead slave does not force every read to wait out the timeout.
    size_t declines = 0;
    // Verified replies: slave -> (result, pledge).
    std::map<NodeId, std::pair<QueryResult, Pledge>> replies;
    EventId timeout = 0;
    bool double_checking = false;
    Callback cb;
  };

  void HandleReadReply(NodeId from, BytesView body);
  void HandleDoubleCheckReply(BytesView body);
  void Resolve(uint64_t request_id);
  void Accept(uint64_t request_id, const QueryResult& result,
              const Pledge& pledge);
  const Certificate* CertFor(NodeId slave) const;

  Options options_;
  Rng rng_;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, PendingRead> pending_;
  Metrics metrics_;
};

}  // namespace sdr

#endif  // SDR_SRC_CORE_MULTIREAD_CLIENT_H_
