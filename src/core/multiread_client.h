// The multi-slave read variant (paper Section 4): "send the same read
// request to more than one untrusted server. If all the answers are
// identical, the client proceeds as in the original algorithm —
// double-check with the master (with a small probability) and send the
// pledge packets to the auditor. If not all answers match, the client
// automatically double-checks, since at least one of the slaves has to be
// malicious." A number of malicious slaves would have to collude to pass
// an incorrect answer; the price is k-fold untrusted execution.
#ifndef SDR_SRC_CORE_MULTIREAD_CLIENT_H_
#define SDR_SRC_CORE_MULTIREAD_CLIENT_H_

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/core/config.h"
#include "src/core/messages.h"
#include "src/core/metrics.h"
#include "src/core/shard.h"
#include "src/runtime/env.h"
#include "src/store/executor.h"

namespace sdr {

class MultiReadClient : public Node {
 public:
  struct Options {
    ProtocolParams params;
    // The k slaves this client fans every read out to (certs from the
    // master at an extended setup; wired directly by the harness here).
    std::vector<Certificate> slave_certs;
    std::map<NodeId, Bytes> master_keys;
    NodeId master = kInvalidNode;
    NodeId auditor = kInvalidNode;
    uint64_t rng_seed = 1;

    // Keyspace sharding (src/core/shard.h). When shard_map is set, every
    // read is planned across shards and each leg fans out to that shard's
    // own k slaves, with per-leg unanimity and double-checking; the merged
    // result is released once every leg resolves. Unset = the classic
    // single-group fields above, untouched.
    struct ShardLane {
      std::vector<Certificate> slave_certs;
      NodeId master = kInvalidNode;
      NodeId auditor = kInvalidNode;
    };
    std::optional<ShardMap> shard_map;
    std::vector<ShardLane> shard_lanes;  // one per shard_map shard
  };

  struct Metrics {
    uint64_t reads_issued = 0;
    uint64_t reads_accepted = 0;
    uint64_t unanimous = 0;         // all k answers matched
    uint64_t disagreements = 0;     // triggered a mandatory double-check
    uint64_t double_checks_sent = 0;
    uint64_t accusations_sent = 0;
    uint64_t reads_failed = 0;
    // Sharded mode only.
    uint64_t multi_shard_reads = 0;  // reads planned across >1 shard
    uint64_t shard_legs_issued = 0;
    uint64_t shard_legs_accepted = 0;
    // Age of the oldest per-shard token backing a merged read — the
    // effective freshness bound of the merge.
    Percentiles merged_token_age_us;
  };

  explicit MultiReadClient(Options options);

  void Start() override;
  void HandleMessage(NodeId from, const Payload& payload) override;

  using Callback = std::function<void(bool ok, const QueryResult& result)>;
  void IssueRead(const Query& query, Callback cb = nullptr);

  // Invoked on accept with the pledged version (ground-truth hook).
  std::function<void(const Query&, uint64_t version, const QueryResult&)>
      on_accept;

  const Metrics& metrics() const { return metrics_; }

 private:
  struct PendingRead {
    Query query;
    SimTime issued = 0;
    size_t expected = 0;
    // Declines (slave out of sync / excluded) count toward completion so
    // one dead slave does not force every read to wait out the timeout.
    size_t declines = 0;
    // Verified replies: slave -> (result, pledge).
    std::map<NodeId, std::pair<QueryResult, Pledge>> replies;
    EventId timeout = 0;
    bool double_checking = false;
    Callback cb;
    // Sharded mode: which shard's slave set this read fans out to, and —
    // for one leg of a multi-shard read — the parent id and leg index.
    uint32_t shard = 0;
    uint64_t parent = 0;  // 0 = standalone read
    uint32_t leg = 0;
  };
  // A read planned across several shards; each leg is a full k-fold
  // fan-out with its own unanimity check.
  struct MultiRead {
    Query query;
    std::vector<ShardSubquery> plan;
    std::vector<QueryResult> results;
    std::vector<VersionToken> tokens;
    size_t remaining = 0;
    SimTime issued = 0;
    std::vector<uint64_t> leg_ids;
    Callback cb;
  };

  void HandleReadReply(NodeId from, BytesView body);
  void HandleDoubleCheckReply(BytesView body);
  void Resolve(uint64_t request_id);
  void Accept(uint64_t request_id, const QueryResult& result,
              const Pledge& pledge);
  void Fail(uint64_t request_id, uint64_t trace_id);
  void FailMultiRead(uint64_t parent_id);
  const Certificate* CertFor(uint32_t shard, NodeId slave) const;

  bool sharded() const {
    return options_.shard_map.has_value() && !options_.shard_lanes.empty();
  }
  void IssueShardedRead(const Query& query, Callback cb);
  uint64_t IssueLeg(uint32_t shard, const Query& query, uint64_t parent,
                    uint32_t leg, uint64_t trace_id);
  const std::vector<Certificate>& LaneSlaveCerts(uint32_t shard) const;
  NodeId LaneMaster(uint32_t shard) const;
  NodeId LaneAuditor(uint32_t shard) const;

  Options options_;
  Rng rng_;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, PendingRead> pending_;
  std::map<uint64_t, MultiRead> multireads_;
  Metrics metrics_;
};

}  // namespace sdr

#endif  // SDR_SRC_CORE_MULTIREAD_CLIENT_H_
