#include "src/core/pledge.h"

namespace sdr {

Bytes VersionToken::SignedBody() const {
  Writer w;
  w.Reserve(4 + 11 + 8 + 8 + 4);
  w.Blob(std::string_view("sdr-vtok-v1"));
  w.U64(content_version);
  w.I64(timestamp);
  w.U32(master);
  return w.Take();
}

void VersionToken::EncodeTo(Writer& w) const {
  w.U64(content_version);
  w.I64(timestamp);
  w.U32(master);
  w.Blob(signature);
}

VersionToken VersionToken::DecodeFrom(Reader& r) {
  VersionToken t;
  t.content_version = r.U64();
  t.timestamp = r.I64();
  t.master = r.U32();
  t.signature = r.Blob();
  return t;
}

VersionToken MakeVersionToken(const Signer& master_signer, NodeId master,
                              uint64_t version, SimTime now) {
  VersionToken t;
  t.content_version = version;
  t.timestamp = now;
  t.master = master;
  t.signature = master_signer.Sign(t.SignedBody());
  return t;
}

bool VerifyVersionToken(SignatureScheme scheme, const Bytes& master_public_key,
                        const VersionToken& token) {
  return VerifySignature(scheme, master_public_key, token.SignedBody(),
                         token.signature);
}

bool TokenIsFresh(const VersionToken& token, SimTime now,
                  SimTime max_latency) {
  return now - token.timestamp <= max_latency;
}

// Upper-bound estimate of a pledge body: tag + a typical query + hash blob
// + token with signature + ids. One reservation instead of log2(size)
// regrowth copies on the per-read signing path.
static size_t PledgeBodyEstimate(const Pledge& p) {
  return 64 + p.query.key.size() + p.query.range_lo.size() +
         p.query.range_hi.size() + p.query.pattern.size() +
         p.result_sha1.size() + p.token.signature.size() +
         p.signature.size() + 48;
}

Bytes Pledge::SignedBody() const {
  Writer w;
  w.Reserve(PledgeBodyEstimate(*this));
  w.Blob(std::string_view("sdr-pledge-v1"));
  query.EncodeTo(w);
  w.Blob(result_sha1);
  // The token, including the master's signature, is part of the pledge: it
  // pins exactly which version the slave claims to have answered at.
  token.EncodeTo(w);
  w.U32(slave);
  return w.Take();
}

void Pledge::EncodeTo(Writer& w) const {
  query.EncodeTo(w);
  w.Blob(result_sha1);
  token.EncodeTo(w);
  w.U32(slave);
  w.Blob(signature);
}

Bytes Pledge::Encode() const {
  Writer w;
  w.Reserve(PledgeBodyEstimate(*this));
  EncodeTo(w);
  return w.Take();
}

Pledge Pledge::DecodeFrom(Reader& r) {
  Pledge p;
  p.query = Query::DecodeFrom(r);
  p.result_sha1 = r.Blob();
  p.token = VersionToken::DecodeFrom(r);
  p.slave = r.U32();
  p.signature = r.Blob();
  return p;
}

Result<Pledge> Pledge::Decode(const Bytes& data) {
  Reader r(data);
  Pledge p = DecodeFrom(r);
  if (!r.Done()) {
    return Error(ErrorCode::kCorrupt, "bad pledge encoding");
  }
  return p;
}

Pledge MakePledge(const Signer& slave_signer, NodeId slave, const Query& query,
                  const Bytes& result_sha1, const VersionToken& token) {
  Pledge p;
  p.query = query;
  p.result_sha1 = result_sha1;
  p.token = token;
  p.slave = slave;
  p.signature = slave_signer.Sign(p.SignedBody());
  return p;
}

bool VerifyPledgeSignature(SignatureScheme scheme,
                           const Bytes& slave_public_key,
                           const Pledge& pledge) {
  return VerifySignature(scheme, slave_public_key, pledge.SignedBody(),
                         pledge.signature);
}

bool VerifyVersionToken(SignatureScheme scheme, const Bytes& master_public_key,
                        const VersionToken& token, VerifyCache* cache) {
  if (cache == nullptr) {
    return VerifyVersionToken(scheme, master_public_key, token);
  }
  return cache->Verify(scheme, master_public_key, token.SignedBody(),
                       token.signature);
}

bool VerifyPledgeSignature(SignatureScheme scheme,
                           const Bytes& slave_public_key, const Pledge& pledge,
                           VerifyCache* cache) {
  if (cache == nullptr) {
    return VerifyPledgeSignature(scheme, slave_public_key, pledge);
  }
  return cache->Verify(scheme, slave_public_key, pledge.SignedBody(),
                       pledge.signature);
}

Bytes BatchCommit::SignedBody() const {
  Writer w;
  w.Reserve(4 + 11 + 4 + 8 + 8 + 4 + batches_sha1.size() + 8);
  w.Blob(std::string_view("sdr-bcom-v1"));
  w.U32(master);
  w.U64(first_version);
  w.U64(last_version);
  w.Blob(batches_sha1);
  w.I64(timestamp);
  return w.Take();
}

void BatchCommit::EncodeTo(Writer& w) const {
  w.U32(master);
  w.U64(first_version);
  w.U64(last_version);
  w.Blob(batches_sha1);
  w.I64(timestamp);
  w.Blob(signature);
}

BatchCommit BatchCommit::DecodeFrom(Reader& r) {
  BatchCommit c;
  c.master = r.U32();
  c.first_version = r.U64();
  c.last_version = r.U64();
  c.batches_sha1 = r.Blob();
  c.timestamp = r.I64();
  c.signature = r.Blob();
  return c;
}

BatchCommit MakeBatchCommit(const Signer& master_signer, NodeId master,
                            uint64_t first_version, uint64_t last_version,
                            const Bytes& batches_sha1, SimTime now) {
  BatchCommit c;
  c.master = master;
  c.first_version = first_version;
  c.last_version = last_version;
  c.batches_sha1 = batches_sha1;
  c.timestamp = now;
  c.signature = master_signer.Sign(c.SignedBody());
  return c;
}

bool VerifyBatchCommit(SignatureScheme scheme, const Bytes& master_public_key,
                       const BatchCommit& commit, VerifyCache* cache) {
  if (cache == nullptr) {
    return VerifySignature(scheme, master_public_key, commit.SignedBody(),
                           commit.signature);
  }
  return cache->Verify(scheme, master_public_key, commit.SignedBody(),
                       commit.signature);
}

bool VerifyPledgeAndToken(SignatureScheme scheme, const Bytes& slave_public_key,
                          const Bytes& master_public_key, const Pledge& pledge,
                          VerifyCache* cache) {
  if (!SchemeSupportsBatchVerify(scheme)) {
    return VerifyPledgeSignature(scheme, slave_public_key, pledge, cache) &&
           VerifyVersionToken(scheme, master_public_key, pledge.token, cache);
  }
  std::vector<VerifyItem> items(2);
  items[0] = {slave_public_key, pledge.SignedBody(), pledge.signature};
  items[1] = {master_public_key, pledge.token.SignedBody(),
              pledge.token.signature};
  std::vector<bool> ok = cache != nullptr
                             ? cache->VerifyBatch(scheme, items)
                             : VerifySignatureBatch(scheme, items);
  return ok[0] && ok[1];
}

}  // namespace sdr
