#include "src/core/directory.h"

#include "src/util/logging.h"

namespace sdr {

void Directory::Publish(const Bytes& content_public_key,
                        std::vector<Certificate> master_certs) {
  by_content_[content_public_key] = std::move(master_certs);
}

void Directory::PublishPlacement(const Bytes& content_public_key,
                                 ShardPlacement placement) {
  placement_by_content_[content_public_key] = std::move(placement);
}

void Directory::HandleMessage(NodeId from, const Payload& payload) {
  auto type = PeekType(payload);
  if (!type.ok()) {
    return;
  }
  if (*type == MsgType::kPlacementQuery) {
    auto msg = PlacementQuery::Decode(payload.view().substr(1));
    if (!msg.ok()) {
      return;
    }
    PlacementReply reply;
    auto it = placement_by_content_.find(msg->content_public_key);
    if (it != placement_by_content_.end()) {
      reply.found = true;
      reply.placement = it->second;
    }
    ++placement_lookups_served_;
    env()->Send(from,
                WithType(MsgType::kPlacementReply, reply.Encode()));
    return;
  }
  if (*type != MsgType::kDirectoryLookup) {
    return;
  }
  auto msg = DirectoryLookup::Decode(payload.view().substr(1));
  if (!msg.ok()) {
    return;
  }
  DirectoryLookupReply reply;
  auto it = by_content_.find(msg->content_public_key);
  if (it != by_content_.end()) {
    reply.master_certs = it->second;
  }
  ++lookups_served_;
  env()->Send(from,
              WithType(MsgType::kDirectoryLookupReply, reply.Encode()));
}

}  // namespace sdr
