// The auditor (paper Section 3.4): the trusted server, elected from the
// master set, that has no slave set and whose "only duty is to check the
// validity of pledge packets, by re-executing the read request in the
// packet and comparing the secure hash of the result to the hash in the
// packet".
//
// It participates in the total-order broadcast like any master, so it sees
// every committed write and every slave-list gossip; but it applies writes
// lazily — it moves to content_version v+1 only after auditing every pledge
// for version v and after more than max_latency (plus slack) has passed
// since v+1 committed, so no client can still accept a read for the old
// version.
//
// Throughput advantages over slaves, each individually toggleable for the
// ablation benchmark (E4):
//   - it produces no signatures,
//   - it sends no answers back to clients,
//   - it caches results of repeated queries,
//   - it spreads work over idle periods (it is a background queue).
//
// The audit pipeline processes admitted pledges in batches:
//
//   1. Admission dedup. Pledges in a batch are grouped by
//      (content_version, canonical query encoding); one group leader pays
//      for resolving the correct result, every follower is charged only a
//      hash comparison. Each pledge's result_sha1 is still compared
//      individually — a forged pledge hiding behind an honest twin is
//      caught by its own comparison, never skipped.
//   2. Cross-version memo. Correct result hashes are memoized per query
//      with a validity interval [first, last] of content versions. A
//      lookup at a version outside the interval tries to extend it by
//      proving (QueryAffectedBy) that every intervening committed write
//      batch misses the query's key footprint; committed versions are
//      immutable, so an extension is a proof, not a heuristic. Entries die
//      when their newest version finalizes.
//   3. Re-execution pool. Groups that must actually execute fan out over a
//      persistent WorkerPool (--audit_jobs lanes): snapshot
//      materialization and query execution run on worker threads against
//      the immutable oplog, each lane owning its QueryExecutor. Results
//      land in pre-sized per-group slots and are merged on the simulation
//      thread in deterministic batch order, so verdicts, metrics, and
//      traces are byte-identical at any lane count. The pool threads never
//      touch the Env: simulated service times are charged per pledge on
//      the ordinary ServiceQueue exactly as before, so the simulated
//      domain cannot observe the host-side parallelism.
#ifndef SDR_SRC_CORE_AUDITOR_H_
#define SDR_SRC_CORE_AUDITOR_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/broadcast/total_order.h"
#include "src/core/config.h"
#include "src/core/messages.h"
#include "src/core/metrics.h"
#include "src/core/service_queue.h"
#include "src/runtime/env.h"
#include "src/store/executor.h"
#include "src/store/oplog.h"
#include "src/util/parallel.h"

namespace sdr {

class Auditor : public Node {
 public:
  struct Options {
    ProtocolParams params;
    CostModel cost;
    KeyPair key_pair;
    std::vector<NodeId> group;  // total-order group (masters + this node)
    std::map<NodeId, Bytes> master_keys;
    // Content-signed master certificates, embedded in emitted fork-evidence
    // chains so they verify offline (only used with fork_check_enabled).
    std::vector<Certificate> master_certs;
    uint64_t snapshot_interval = 16;
    TotalOrderBroadcast::Config broadcast;
    // Ablation toggles (all true = the paper's auditor). Disabling the
    // result cache also disables admission dedup and the cross-version
    // memo: every pledge pays full re-execution.
    bool use_result_cache = true;
    // Host worker lanes for the re-execution pool. 1 = no threads, fully
    // inline; any value produces byte-identical outputs (see above).
    int audit_jobs = 1;
  };

  explicit Auditor(Options options);

  void Start() override;
  void HandleMessage(NodeId from, const Payload& payload) override;

  // Installs initial content at version 0 (must match the masters').
  void SetBaseContent(const DocumentStore& base) {
    oplog_.SetBaseSnapshot(base);
  }

  // Pausing stops audit work and version finalization (incoming pledges
  // are parked); resuming drains the parked backlog. Chaos scenarios use
  // this to stretch the delayed-discovery window without crashing the
  // auditor out of the broadcast group.
  void SetPaused(bool paused);
  bool paused() const { return paused_; }

  const OpLog& oplog() const { return oplog_; }
  const AuditorMetrics& metrics() const {
    metrics_.sig_cache_hits = verify_cache_.stats().hits;
    metrics_.sig_cache_misses = verify_cache_.stats().misses;
    metrics_.sig_cache_evictions = verify_cache_.stats().evictions;
    return metrics_;
  }
  // Invoked on every fork-evidence chain assembled here (cross-client
  // reconciliation); the harness collects them for offline verification.
  std::function<void(const EvidenceChain&)> on_evidence;

  uint64_t head_version() const { return oplog_.head_version(); }
  uint64_t audited_version() const { return audited_version_; }
  // Audits accepted but not yet completed (queued on the simulated CPU),
  // plus pledges parked for not-yet-committed versions or awaiting the
  // batched signature verification.
  size_t backlog() const {
    return queue_->depth() + future_.size() + pending_verify_.size();
  }
  const ServiceQueue& service_queue() const { return *queue_; }

  // Current lag between the committed head and the fully audited version.
  uint64_t version_lag() const {
    return oplog_.head_version() - audited_version_;
  }

 private:
  // A pledge moving through the audit pipeline, with the client that
  // submitted it (for delayed-discovery rollback notices) and the causal
  // trace id it arrived on (0 when untraced).
  struct PendingPledge {
    Pledge pledge;
    NodeId submitter = kInvalidNode;
    uint64_t trace_id = 0;
    // The slave's version-vector commitment piggybacked on the submission
    // (absent unless fork checking is enabled).
    std::optional<VersionVector> vv;
  };

  // A memoized correct-result hash, valid for every content version in
  // [first, last] (proven write-disjoint; see MemoLookup).
  struct MemoEntry {
    uint64_t first = 0;
    uint64_t last = 0;
    Bytes sha1;
  };

  void OnDelivered(uint64_t seq, NodeId origin, const Bytes& payload);
  void PumpCommitQueue();
  void HandleAuditSubmit(NodeId from, BytesView body);
  void GossipAndFinalizeTick();
  void EnqueueForVerify(PendingPledge item);
  void FlushVerifyBatch();
  // Cross-client fork reconciliation: feed a batch-verified version vector
  // to the detector; divergent chain heads for one (slave, version) become
  // an evidence chain sent to the slave's owning master.
  void ReconcileVv(const VersionVector& vv, const Pledge& pledge,
                   uint64_t trace_id);
  // Audits a batch of signature-verified pledges at committed versions:
  // dedup -> memo -> pooled re-execution -> deterministic merge -> one
  // ServiceQueue entry per pledge (the comparison closure).
  void AuditBatch(std::vector<PendingPledge> ready);
  // The memo entry covering (query, version), extending an adjacent
  // entry's validity interval when the intervening batches provably miss
  // the query. nullptr = must re-execute.
  const MemoEntry* MemoLookup(const Bytes& query_key, const Query& q,
                              uint64_t version);
  void MemoInsert(const Bytes& query_key, uint64_t version, Bytes sha1);
  // The re-execution pool, created on first use (never for jobs <= 1).
  WorkerPool* EnsurePool();
  // Runs fn(lane, index) over [0, n): on the pool when enabled, inline
  // otherwise. Callers merge results on the calling thread in index order.
  void PoolRun(int n, const std::function<void(int, int)>& fn);
  void TryFinalizeVersions();
  void RaiseAccusation(const Pledge& pledge, uint64_t trace_id);
  void NotifyVictim(NodeId client, const Pledge& pledge,
                    const Bytes& correct_sha1, uint64_t trace_id);

  Options options_;
  Signer signer_;
  Rng rng_;
  std::unique_ptr<TotalOrderBroadcast> broadcast_;
  std::unique_ptr<ServiceQueue> queue_;

  OpLog oplog_;
  // One executor per pool lane (index 0 = the simulation thread), so the
  // regex cache needs no locking. Inside a pool region each lane may only
  // touch its own slot — sdrlint R6 enforces the [lane] subscript.
  // sdrlint:lane_confined
  std::vector<std::unique_ptr<QueryExecutor>> lane_executors_;
  std::unique_ptr<WorkerPool> pool_;
  std::map<uint64_t, SimTime> commit_times_;  // version -> delivery time

  // Versions strictly below audited_version_ are closed: every pledge for
  // them has been audited and no client can accept a read for them any
  // more. audited_version_ itself is the oldest possibly-active version.
  uint64_t audited_version_ = 0;
  // Pledges for versions we have not yet seen committed.
  std::deque<PendingPledge> future_;
  // Pledges parked while paused, drained on resume.
  std::deque<PendingPledge> paused_backlog_;
  bool paused_ = false;
  // Admitted pledges awaiting the batched signature verification. Counted
  // in in_flight_ so finalization cannot overtake them; flushed at
  // audit_verify_batch_size or after audit_verify_batch_window.
  std::deque<PendingPledge> pending_verify_;
  bool verify_timer_armed_ = false;
  // Deduplicates signature verifications — chiefly the version token, which
  // is shared by every pledge answered under it.
  VerifyCache verify_cache_;
  // Count of in-flight audits on the service queue for each version — a
  // version cannot finalize while its audits are in flight.
  std::map<uint64_t, uint64_t> in_flight_;
  // Delivered writes waiting for the paced commit. Masters commit at most
  // one write per max_latency (PumpCommitQueue); the auditor must mirror
  // that pacing or its version numbers and commit times run ahead of what
  // slaves actually serve, and finalization would prune versions whose
  // pledges are still arriving.
  // One entry per commit slot: a single batch on the paper's path, all
  // batches of a group-commit bundle otherwise (they share the slot, so
  // the auditor's versions and commit times track the masters' exactly).
  std::deque<std::vector<WriteBatch>> commit_queue_;
  SimTime last_commit_time_ = 0;
  bool commit_timer_armed_ = false;

  // Cross-version memo: canonical query encoding -> validity-interval
  // entries (newest last, at most two per query — current interval plus
  // the one a racing in-flight version may still need).
  std::map<Bytes, std::vector<MemoEntry>> memo_;

  std::map<NodeId, Certificate> known_slave_certs_;
  std::map<NodeId, NodeId> slave_owner_;

  // Divergence detector over every version vector submitted by any client
  // (the auditor sees all sets of a forked slave, so it detects forks even
  // when client gossip is partitioned or disabled).
  ForkDetector fork_detector_;

  mutable AuditorMetrics metrics_;
};

}  // namespace sdr

#endif  // SDR_SRC_CORE_AUDITOR_H_
