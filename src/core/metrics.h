// Counters collected by the protocol roles. Each node owns its struct; the
// cluster harness aggregates them for tests and benchmarks.
#ifndef SDR_SRC_CORE_METRICS_H_
#define SDR_SRC_CORE_METRICS_H_

#include <cstdint>
#include <string>

#include "src/runtime/env.h"
#include "src/util/stats.h"

namespace sdr {

struct ClientMetrics {
  uint64_t reads_issued = 0;
  uint64_t reads_accepted = 0;
  uint64_t reads_rejected_stale = 0;     // token older than max_latency
  uint64_t reads_rejected_bad_sig = 0;   // pledge/token signature invalid
  uint64_t reads_rejected_hash = 0;      // result hash != pledge hash
  uint64_t reads_failed_declined = 0;    // slave said "not in sync"
  uint64_t reads_timed_out = 0;
  uint64_t retries = 0;
  uint64_t double_checks_sent = 0;
  uint64_t double_check_mismatches = 0;  // caught a lie red-handed
  uint64_t double_checks_unserved = 0;   // quota-throttled by the master
  uint64_t pledges_forwarded = 0;        // to the auditor
  uint64_t writes_issued = 0;
  uint64_t writes_committed = 0;
  uint64_t writes_rejected = 0;
  uint64_t reassignments = 0;
  uint64_t setups_completed = 0;
  // Delayed discovery: accepted reads later reported wrong by the auditor.
  uint64_t bad_read_notices = 0;
  // Fork-consistency checking (src/forkcheck/; all zero unless enabled).
  uint64_t vv_exchanges_sent = 0;
  uint64_t vv_exchanges_received = 0;
  uint64_t forks_detected = 0;
  uint64_t evidence_chains_emitted = 0;
  // Verify-dedup cache (mostly version tokens reused across reads).
  uint64_t sig_cache_hits = 0;
  uint64_t sig_cache_misses = 0;
  // Keyspace sharding (src/core/shard.h; all zero unless num_shards > 1).
  uint64_t placement_cache_hits = 0;    // ops planned from the cached map
  uint64_t placement_cache_misses = 0;  // placement fetched from directory
  uint64_t multi_shard_reads = 0;       // parent reads fanned to >1 shard
  uint64_t multi_shard_writes = 0;      // parent writes split across shards
  uint64_t shard_subreads_issued = 0;
  uint64_t shard_subreads_accepted = 0;
  uint64_t shard_subwrites_committed = 0;
  Percentiles read_latency_us;
  Percentiles write_latency_us;
  // Age of the oldest per-shard token backing a merged multi-shard read —
  // the merged freshness bound (empty unless sharded reads fan out).
  Percentiles merged_token_age_us;
};

struct MasterMetrics {
  uint64_t writes_received = 0;
  uint64_t writes_committed = 0;
  uint64_t writes_denied_acl = 0;
  uint64_t double_checks_served = 0;
  uint64_t double_checks_throttled = 0;
  uint64_t double_check_lies_found = 0;
  uint64_t accusations_received = 0;
  uint64_t accusations_confirmed = 0;
  uint64_t accusations_unfounded = 0;
  uint64_t slaves_excluded = 0;
  uint64_t clients_reassigned = 0;
  // Fork-consistency evidence (src/forkcheck/; zero unless enabled).
  uint64_t fork_evidence_received = 0;
  uint64_t fork_evidence_confirmed = 0;
  uint64_t state_updates_sent = 0;
  uint64_t keepalives_sent = 0;
  uint64_t slave_sets_adopted = 0;  // from crashed peers
  uint64_t work_units_executed = 0;
  // Group commit (all zero unless commit_batch > 1).
  uint64_t writes_batched = 0;       // writes that rode a bundle broadcast
  uint64_t batches_committed = 0;    // bundles applied on the commit path
  uint64_t state_update_batches_sent = 0;
  // Signatures produced on the commit/state-propagation path (tokens for
  // state updates + batch certificates; keepalives excluded). The per-write
  // signing cost group commit amortizes is commit_signatures /
  // writes_committed.
  uint64_t commit_signatures = 0;
  // Verify-dedup cache (accusation / incriminating-pledge checks).
  uint64_t sig_cache_hits = 0;
  uint64_t sig_cache_misses = 0;
};

struct SlaveMetrics {
  uint64_t reads_served = 0;
  uint64_t reads_declined_stale = 0;  // honest slave out of sync
  uint64_t lies_told = 0;             // malicious behaviour bookkeeping
  // Lies whose pledge hash matches the corrupted result — the only kind
  // that can pass client-side checks and so the only kind the protocol
  // must (and can) eventually punish by exclusion.
  uint64_t consistent_lies_told = 0;
  // Fork-consistency bookkeeping (src/forkcheck/).
  uint64_t vvs_attached = 0;           // signed commitments on read replies
  // Reads answered from a forked view that is *behind* the applied
  // version, and real-store reads while such a divergent view is live.
  // Both non-zero means both client sets saw the divergence — the forked
  // chains then provably carry conflicting commitments.
  uint64_t equivocations_served = 0;
  uint64_t honest_serves_forked = 0;
  uint64_t stale_serves = 0;           // reads answered from a lagged view
  uint64_t state_updates_applied = 0;
  // Group commit (zero unless the master batches).
  uint64_t state_update_batches_received = 0;
  uint64_t keepalives_received = 0;
  uint64_t work_units_executed = 0;
  // Verify-dedup cache (token adoption checks).
  uint64_t sig_cache_hits = 0;
  uint64_t sig_cache_misses = 0;
};

struct AuditorMetrics {
  uint64_t pledges_received = 0;
  uint64_t pledges_audited = 0;
  uint64_t pledges_skipped_sampling = 0;
  // Pledge named a version already finalized and pruned — the audit-window
  // guarantee makes this a protocol violation or extreme delay.
  uint64_t pledges_version_pruned = 0;
  // Re-execution of the pledged query failed against the materialized store.
  uint64_t pledges_exec_failed = 0;
  uint64_t pledges_bad_signature = 0;
  uint64_t mismatches_found = 0;
  uint64_t accusations_sent = 0;
  // Cross-client fork reconciliation (src/forkcheck/; zero unless enabled).
  uint64_t vvs_reconciled = 0;
  uint64_t forks_detected = 0;
  uint64_t evidence_chains_emitted = 0;
  uint64_t bad_read_notices_sent = 0;
  uint64_t cache_hits = 0;
  uint64_t versions_finalized = 0;
  uint64_t work_units_executed = 0;
  // Admission dedup: pledges answered by comparing against a twin's
  // re-execution in the same batch (one exec, N comparisons).
  uint64_t pledges_deduped = 0;
  // Cross-version memo over the committed snapshot: hits reuse a prior
  // re-execution whose validity interval covers the pledged version;
  // misses are actual query executions.
  uint64_t reexec_memo_hits = 0;
  uint64_t reexec_memo_misses = 0;
  // Work items (snapshot builds + re-executions) handed to the worker
  // pool. Counts dispatched work, not thread occupancy, so it is
  // identical at any --audit_jobs value.
  uint64_t audit_workers_busy = 0;
  // Batched up-front signature verification of submitted pledges.
  uint64_t verify_batches = 0;
  uint64_t sigs_batch_verified = 0;
  // Verify-dedup cache (version tokens shared across pledges).
  uint64_t sig_cache_hits = 0;
  uint64_t sig_cache_misses = 0;
  uint64_t sig_cache_evictions = 0;
  // Sampled at finalization: how far behind the head the auditor runs.
  Percentiles version_lag;
  Percentiles backlog_depth;
};

}  // namespace sdr

#endif  // SDR_SRC_CORE_METRICS_H_
