// The master server: a trusted host directly controlled by the content
// owner (paper Section 2). Masters
//   - serialize writes through the total-order broadcast and commit them
//     with at least max_latency between consecutive commits (Section 3.1);
//   - lazily push committed state updates and periodic signed keep-alive
//     version tokens to their slave set;
//   - set up clients (verify, assign a slave, hand over its certificate);
//   - serve probabilistic double-check requests, with greedy-client
//     policing (Section 3.3);
//   - take corrective action on incriminating pledges: verify the proof,
//     exclude the slave, reassign its clients (Section 3.5);
//   - gossip their slave lists so that when a master crashes the survivors
//     divide its slave set (Section 3).
#ifndef SDR_SRC_CORE_MASTER_H_
#define SDR_SRC_CORE_MASTER_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/broadcast/total_order.h"
#include "src/core/config.h"
#include "src/core/messages.h"
#include "src/core/metrics.h"
#include "src/core/service_queue.h"
#include "src/runtime/env.h"
#include "src/store/executor.h"
#include "src/store/oplog.h"

namespace sdr {

class Master : public Node {
 public:
  struct Options {
    ProtocolParams params;
    CostModel cost;
    KeyPair key_pair;
    ContentIdentity content;
    std::vector<NodeId> group;  // total-order group: all masters + auditor
    // The elected auditors (Section 3.4 allows "extra auditors"); pledges
    // for a slave go to auditors[slave % auditors.size()].
    std::vector<NodeId> auditors;
    // Public keys of every master in the group (for verifying version
    // tokens embedded in pledges from other masters' slaves).
    std::map<NodeId, Bytes> master_keys;
    // Client ids allowed to write; empty set = every client may write.
    std::set<NodeId> writers;
    uint64_t snapshot_interval = 16;
    TotalOrderBroadcast::Config broadcast;  // group is filled from `group`
    // Skip ack-driven catch-up pushes for versions already in flight to
    // the slave (see HandleSlaveAck). Off by default: classic single-group
    // configs must keep their exact message and signature counts. The
    // harness turns it on together with any scale-out feature, where a
    // loaded slave's delayed batch application otherwise triggers
    // redundant per-version pushes — each costing a signature — that
    // defeat group commit's amortization.
    bool dedup_catchup_pushes = false;
  };

  explicit Master(Options options);

  void Start() override;
  void HandleMessage(NodeId from, const Payload& payload) override;

  // Pre-start wiring by the content owner / harness.
  void AddSlave(const Certificate& cert);
  void SetBaseContent(const DocumentStore& base);

  // Accessors for tests and benchmarks.
  uint64_t version() const { return oplog_.head_version(); }
  const OpLog& oplog() const { return oplog_; }
  const MasterMetrics& metrics() const {
    metrics_.sig_cache_hits = verify_cache_.stats().hits;
    metrics_.sig_cache_misses = verify_cache_.stats().misses;
    return metrics_;
  }
  const Bytes& public_key() const { return signer_.public_key(); }
  std::vector<Certificate> my_slave_certs() const {
    std::vector<Certificate> certs;
    for (const auto& [slave_id, state] : my_slaves_) {
      certs.push_back(state.cert);
    }
    return certs;
  }
  std::vector<NodeId> my_slave_ids() const {
    std::vector<NodeId> ids;
    for (const auto& [slave_id, state] : my_slaves_) {
      ids.push_back(slave_id);
    }
    return ids;
  }
  bool IsExcluded(NodeId slave) const { return excluded_.count(slave) > 0; }
  const ServiceQueue& service_queue() const { return *queue_; }
  size_t assigned_clients() const { return client_slave_.size(); }
  const std::set<NodeId>& dead_masters() const { return dead_masters_; }

 private:
  struct SlaveState {
    Certificate cert;
    uint64_t acked_version = 0;
    // Highest version pushed (or batch-sent) to this slave and when —
    // read only under Options::dedup_catchup_pushes, to avoid re-signing
    // versions still in flight when an ack races a state-update batch.
    uint64_t sent_version = 0;
    SimTime sent_time = 0;
    // The crashed master this slave was adopted from (kInvalidNode if the
    // slave was originally assigned to us); yielded back on resurrection.
    NodeId adopted_from = kInvalidNode;
  };

  // Message handlers.
  void HandleClientHello(NodeId from, BytesView body);
  void HandleWriteRequest(NodeId from, BytesView body);
  void HandleDoubleCheck(NodeId from, BytesView body);
  void HandleAccusation(NodeId from, BytesView body);
  // Fork evidence (src/forkcheck/): two signed version vectors claiming the
  // same version with different chain heads. Verified entirely offline
  // against the content key — no re-execution — then punished like a
  // confirmed accusation.
  void HandleForkEvidence(NodeId from, BytesView body);
  void HandleSlaveAck(NodeId from, BytesView body);

  // Total-order deliveries.
  void OnDelivered(uint64_t seq, NodeId origin, const Bytes& payload);
  void OnTobWrite(const TobWrite& write);
  void OnTobWriteBundle(TobWriteBundle bundle);
  void OnTobGossip(const TobGossip& gossip);

  // Write pipeline: delivered writes queue up and commit spaced by
  // max_latency. With group commit (commit_batch > 1) a whole bundle
  // occupies one commit slot, so throughput rises to commit_batch /
  // max_latency while the inconsistency-window bound is untouched.
  void PumpCommitQueue();
  void CommitWrite(const TobWrite& write);
  void CommitBundle(const std::vector<TobWrite>& writes);

  // Group commit, origin side: accumulate until commit_batch writes or
  // commit_window elapse, then broadcast one bundle.
  bool batching() const { return options_.params.commit_batch > 1; }
  void FlushBundle();

  // Slave management.
  void PushStateUpdate(NodeId slave, uint64_t version);
  void SendKeepAlives();
  void GossipTick();
  void CheckPeerLiveness();
  void AdoptOrphanedSlaves(NodeId dead_master);
  VersionToken CurrentToken();

  // Corrective action (Section 3.5): returns true when the pledge proves
  // the slave guilty and the exclusion was executed.
  NodeId AuditorFor(NodeId slave) const;
  // `trace_id` is the causal chain the incriminating pledge arrived on
  // (0 when untraced); it is threaded through to the exclusion verdict and
  // the resulting Reassignment messages so sdrtrace can show the full
  // evidence path.
  bool ProcessIncriminatingPledge(const Pledge& pledge, uint64_t trace_id = 0);
  void ExcludeSlave(NodeId slave, uint64_t trace_id = 0);
  void RemoveSlaveAndReassignClients(NodeId slave, bool excluded,
                                     uint64_t trace_id = 0);
  NodeId PickSlaveFor(NodeId client);

  // Greedy-client policing: token bucket per client.
  bool AllowDoubleCheck(NodeId client);

  Options options_;
  Signer signer_;
  Rng rng_;
  std::unique_ptr<TotalOrderBroadcast> broadcast_;
  std::unique_ptr<ServiceQueue> queue_;

  OpLog oplog_;
  QueryExecutor executor_;
  SimTime last_commit_time_;
  // One queue entry per commit slot: a single write on the paper's path,
  // a whole bundle under group commit.
  struct CommitUnit {
    std::vector<TobWrite> writes;
  };
  std::deque<CommitUnit> commit_queue_;
  bool commit_timer_armed_ = false;
  std::vector<TobWrite> bundle_;  // origin-side accumulation (batching)
  bool bundle_timer_armed_ = false;

  std::map<NodeId, SlaveState> my_slaves_;
  std::set<NodeId> excluded_;
  // Write dedup: committed (client, request_id) -> version, and requests
  // currently in flight through the broadcast.
  std::map<std::pair<NodeId, uint64_t>, uint64_t> committed_writes_;
  std::set<std::pair<NodeId, uint64_t>> pending_writes_;
  std::map<NodeId, NodeId> client_slave_;      // client -> assigned slave
  std::map<NodeId, NodeId> slave_owner_;       // global gossip view
  std::map<NodeId, Certificate> known_slave_certs_;  // global gossip view
  std::map<NodeId, SimTime> peer_last_gossip_;
  std::set<NodeId> dead_masters_;

  struct Bucket {
    double tokens = 0;
    SimTime last_refill = 0;
  };
  std::map<NodeId, Bucket> greedy_buckets_;

  // Deduplicates repeated verifications when the same incriminating pledge
  // or token is presented more than once.
  VerifyCache verify_cache_;
  mutable MasterMetrics metrics_;
};

}  // namespace sdr

#endif  // SDR_SRC_CORE_MASTER_H_
