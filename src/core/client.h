// The client (paper Sections 2, 3.2, 3.3): performs the setup phase
// through the directory and one master, then issues reads to its assigned
// slave and writes to its master. For every read it
//   - checks the result hash against the pledge,
//   - verifies the slave's pledge signature and the master's version-token
//     signature,
//   - enforces the freshness window (token no older than max_latency —
//     optionally a client-chosen value, Section 3.2's relaxed variant),
//   - with probability p double-checks the answer with the master, else
//     forwards the pledge to the auditor and only then accepts.
// On a double-check mismatch it forwards the incriminating pledge
// (immediate discovery, Section 3.5) and retries the read after the master
// reassigns it to a new slave. A silent master triggers a fresh setup
// (master crash, Section 3).
#ifndef SDR_SRC_CORE_CLIENT_H_
#define SDR_SRC_CORE_CLIENT_H_

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/core/config.h"
#include "src/core/messages.h"
#include "src/core/metrics.h"
#include "src/forkcheck/fork.h"
#include "src/runtime/env.h"
#include "src/store/executor.h"
#include "src/store/query.h"

namespace sdr {

class Client : public Node {
 public:
  enum class LoadMode {
    kManual,      // the harness calls IssueRead/IssueWrite explicitly
    kClosedLoop,  // next operation `think_time` after the previous finishes
    kOpenLoop,    // Poisson arrivals at reads_per_second (x rate multiplier)
  };

  struct Options {
    ProtocolParams params;
    ContentIdentity content;
    NodeId directory = kInvalidNode;

    LoadMode mode = LoadMode::kManual;
    std::function<Query(Rng&)> query_source;       // required unless manual
    std::function<WriteBatch(Rng&)> write_source;  // required if writing
    SimTime think_time = 100 * kMillisecond;
    double reads_per_second = 1.0;
    // Optional diurnal shaping for open-loop arrivals (multiplies the rate).
    std::function<double(SimTime)> rate_multiplier;
    double write_fraction = 0.0;

    // A greedy client double-checks every read (Section 3.3's abuse case).
    bool greedy = false;
    // 0 = use params.max_latency; otherwise the client-chosen freshness
    // bound of the relaxed consistency variant.
    SimTime max_latency_override = 0;
    int max_read_retries = 8;
    SimTime retry_backoff = 200 * kMillisecond;
    uint64_t rng_seed = 1;

    // Peer clients for fork-consistency gossip (filled by the cluster
    // harness; may include this client's own id, which is skipped). Only
    // used when params.fork_check_enabled.
    std::vector<NodeId> peer_clients;

    // Keyspace sharding (src/core/shard.h). At 1 (or 0) the client runs
    // the paper's single-group protocol bit-for-bit. Above 1 the setup
    // phase additionally fetches the signed shard placement from the
    // directory, opens one lane (master + assigned slave + auditor) per
    // shard, and plans every operation against the cached placement map.
    uint32_t num_shards = 1;
  };

  explicit Client(Options options);

  void Start() override;
  void HandleMessage(NodeId from, const Payload& payload) override;

  // Manual-mode entry points (also used internally by the load loops).
  // Completion callbacks are optional.
  using ReadCallback =
      std::function<void(bool accepted, const QueryResult& result)>;
  using WriteCallback = std::function<void(bool committed, uint64_t version)>;
  void IssueRead(Query query, ReadCallback cb = nullptr);
  void IssueWrite(WriteBatch batch, WriteCallback cb = nullptr);

  // Invoked on every accepted read with the full pledge — the harness uses
  // it to validate accepted results against ground truth and to feed the
  // chaos invariant checkers (which slave served, how fresh the token was).
  std::function<void(const Query&, const Pledge&, const QueryResult&)>
      on_accept;

  // Invoked when the auditor reports that a read this client already
  // accepted was wrong (delayed discovery, Section 3.5). The application
  // uses this to roll back whatever depended on the read.
  std::function<void(const Query&, uint64_t version)> on_bad_read;

  // Invoked on every fork-evidence chain this client assembles (divergent
  // signed chain heads for one slave + version). The harness collects
  // these for offline verification (sdrtrace --evidence).
  std::function<void(const EvidenceChain&)> on_evidence;

  bool ready() const { return phase_ == Phase::kReady; }
  NodeId master() const { return master_; }
  NodeId assigned_slave() const { return slave_cert_ ? slave_cert_->subject
                                                     : kInvalidNode; }
  const ClientMetrics& metrics() const {
    metrics_.sig_cache_hits = verify_cache_.stats().hits;
    metrics_.sig_cache_misses = verify_cache_.stats().misses;
    return metrics_;
  }
  SimTime effective_max_latency() const {
    return options_.max_latency_override > 0 ? options_.max_latency_override
                                             : options_.params.max_latency;
  }

 private:
  enum class Phase {
    kIdle,
    kAwaitDirectory,
    kAwaitPlacement,  // sharded mode only: waiting for the placement map
    kAwaitHello,
    kReady,
  };

  struct PendingRead {
    Query query;
    SimTime first_issued = 0;
    int attempts = 0;
    EventId timeout = 0;
    ReadCallback cb;
    bool awaiting_double_check = false;
    uint64_t trace_id = 0;  // causal id spanning retries and double-checks
    // Sharded mode: which lane serves this read, and — when it is one leg
    // of a fanned-out multi-shard read — the parent id and leg index.
    uint32_t shard = 0;
    uint64_t parent = 0;  // 0 = standalone read
    uint32_t leg = 0;
  };
  struct PendingWrite {
    WriteBatch batch;
    SimTime first_issued = 0;
    int attempts = 0;
    EventId timeout = 0;
    WriteCallback cb;
    uint32_t shard = 0;
    uint64_t parent = 0;  // 0 = standalone write
  };

  // One per shard in sharded mode: the paper's per-group client state
  // (chosen master, assigned slave, auditor) replicated across lanes.
  struct Lane {
    NodeId master = kInvalidNode;
    std::optional<Certificate> slave_cert;
    NodeId auditor = kInvalidNode;
    Bytes nonce;        // hello nonce for this lane's setup exchange
    bool ready = false;
  };

  // A read fanned out to several shards: legs accumulate here and the
  // merged result is released only when every leg has been individually
  // verified and accepted. Freshness of the merge is bounded by the
  // *oldest* per-shard token (recorded in merged_token_age_us).
  struct MultiRead {
    Query query;  // the original, pre-planning query
    std::vector<ShardSubquery> plan;
    std::vector<QueryResult> results;  // one slot per plan leg
    std::vector<Pledge> pledges;
    size_t remaining = 0;
    SimTime first_issued = 0;
    ReadCallback cb;
    uint64_t trace_id = 0;
    std::vector<uint64_t> sub_ids;
  };
  // A write batch split across shards; commits only if every shard-local
  // sub-batch commits (no cross-shard atomicity — see docs/PERF.md).
  struct MultiWrite {
    size_t remaining = 0;
    bool all_ok = true;
    uint64_t max_version = 0;
    SimTime first_issued = 0;
    WriteCallback cb;
    uint64_t trace_id = 0;
  };

  // Setup phase.
  void BeginSetup();
  void HandleDirectoryReply(BytesView body);
  void HandleHelloReply(NodeId from, BytesView body);
  void HandleReassignment(NodeId from, BytesView body);
  void HandleBadReadNotice(BytesView body);

  // Sharded setup: placement fetch and per-lane hello handshakes.
  void HandlePlacementReply(BytesView body);
  void HandleShardHelloReply(NodeId from, BytesView body);

  bool sharded() const { return options_.num_shards > 1; }
  // Lane-aware accessors; in single-shard mode they return the classic
  // globals, so the paper's path is untouched.
  const std::optional<Certificate>& LaneSlaveCert(uint32_t shard) const;
  NodeId LaneMaster(uint32_t shard) const;
  NodeId LaneAuditor(uint32_t shard) const;

  // Reads.
  void SendRead(uint64_t request_id);
  void HandleReadReply(NodeId from, BytesView body);
  void HandleDoubleCheckReply(BytesView body);
  void RetryRead(uint64_t request_id, SimTime delay);
  void AcceptRead(uint64_t request_id, const QueryResult& result,
                  const Pledge& pledge);
  void FailRead(uint64_t request_id);

  // Sharded reads: planning, fan-out, leg accounting.
  void IssueShardedRead(Query query, ReadCallback cb);
  void AcceptShardSubread(uint64_t request_id, const QueryResult& result,
                          const Pledge& pledge);
  void FailMultiRead(uint64_t parent_id);

  // Writes.
  void SendWrite(uint64_t request_id);
  void HandleWriteReply(BytesView body);

  // Sharded writes: per-shard batch splitting.
  void IssueShardedWrite(WriteBatch batch, WriteCallback cb);

  // Load generation.
  void ScheduleNextOp();
  void IssueGeneratedOp();

  // Master-silence recovery.
  void MasterSuspect();

  // Fork-consistency checking (active only with params.fork_check_enabled).
  void ScheduleVvGossip();
  void GossipVvs();
  void HandleVvExchange(BytesView body);
  bool VerifyAttestedVv(const AttestedVv& avv);
  void ObserveVv(const AttestedVv& avv);
  void EmitForkEvidence(const ForkDetector::Conflict& conflict,
                        uint64_t trace_id);

  const Bytes* MasterKey(NodeId master) const;

  Options options_;
  Rng rng_;
  Phase phase_ = Phase::kIdle;

  std::vector<Certificate> master_certs_;
  NodeId master_ = kInvalidNode;
  std::optional<Certificate> slave_cert_;
  NodeId auditor_ = kInvalidNode;
  Bytes setup_nonce_;
  EventId setup_timeout_ = 0;
  int setup_attempts_ = 0;

  // Sharded mode: the verified placement (the client-side placement
  // cache — every op planned from it is a cache hit; every directory
  // fetch a miss) and one lane per shard.
  std::optional<ShardPlacement> placement_;
  std::vector<Lane> lanes_;

  uint64_t next_request_id_ = 1;
  std::map<uint64_t, PendingRead> reads_;
  std::map<uint64_t, PendingWrite> writes_;
  std::map<uint64_t, MultiRead> multireads_;
  std::map<uint64_t, MultiWrite> multiwrites_;
  // Reads accepted pending their double-check verdict: request_id -> result.
  std::map<uint64_t, std::pair<QueryResult, Pledge>> double_checking_;

  // Fork-consistency state: divergence detector over everything this
  // client has seen (own replies + gossip) and the freshest attested
  // vector per slave, re-gossiped each round.
  ForkDetector fork_detector_;
  std::map<NodeId, AttestedVv> latest_vv_;

  // Deduplicates signature verifications; the dominant hit source is the
  // version token, which is identical across every read until the master's
  // next keepalive. Counters are mirrored into metrics_ on access.
  VerifyCache verify_cache_;
  mutable ClientMetrics metrics_;
};

}  // namespace sdr

#endif  // SDR_SRC_CORE_CLIENT_H_
