// The public directory (paper Section 2): master certificates are "stored
// in a public directory, indexed by content public key. Thus, by knowing
// the content public key and the address of the directory, any client can
// securely get the addresses and public keys of all the master servers."
// The directory itself is untrusted infrastructure — clients verify every
// returned certificate against the content key.
#ifndef SDR_SRC_CORE_DIRECTORY_H_
#define SDR_SRC_CORE_DIRECTORY_H_

#include <map>
#include <vector>

#include "src/core/certificate.h"
#include "src/core/messages.h"
#include "src/runtime/env.h"

namespace sdr {

class Directory : public Node {
 public:
  // Registers the master set for a content (called by the content owner).
  void Publish(const Bytes& content_public_key,
               std::vector<Certificate> master_certs);

  // Registers the shard placement for a content (scale-out). Like the
  // certificates, the placement is signed by the content key, so the
  // directory merely relays it; clients verify.
  void PublishPlacement(const Bytes& content_public_key,
                        ShardPlacement placement);

  void HandleMessage(NodeId from, const Payload& payload) override;

  uint64_t lookups_served() const { return lookups_served_; }
  uint64_t placement_lookups_served() const {
    return placement_lookups_served_;
  }

 private:
  std::map<Bytes, std::vector<Certificate>> by_content_;
  std::map<Bytes, ShardPlacement> placement_by_content_;
  uint64_t lookups_served_ = 0;
  uint64_t placement_lookups_served_ = 0;
};

}  // namespace sdr

#endif  // SDR_SRC_CORE_DIRECTORY_H_
