// Keyspace sharding (scale-out, beyond the paper). The keyspace is range-
// partitioned across shards; each shard owns its own master group, slave
// set, auditor and an independent version sequence, so the per-master
// write cap E7 measured (one commit per max_latency) multiplies by the
// shard count.
//
// Placement is published through the Directory and signed by the content
// key, the same root of trust that certifies masters: an untrusted host
// between client and directory can neither move a key range to a slave
// group it controls nor split clients across divergent placements without
// forging the content signature.
//
// Multi-shard queries are planned client-side: ranged queries are clipped
// to each owning shard and the per-shard results merged back into exactly
// what a single unsharded store would produce (AVG is decomposed into
// per-shard SUM + COUNT legs; see PlanShardQuery for the one documented
// caveat). Every leg is a full protocol read — pledge, token freshness,
// probabilistic double-check — so the paper's guarantees hold per shard.
#ifndef SDR_SRC_CORE_SHARD_H_
#define SDR_SRC_CORE_SHARD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/certificate.h"
#include "src/crypto/signer.h"
#include "src/store/executor.h"
#include "src/store/query.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace sdr {

// Range partition of the keyspace. Shard i owns [lo_i, hi_i); shard 0
// starts at "" (unbounded below) and the last shard ends at "" (unbounded
// above). boundaries[i] is the first key of shard i+1, so S shards carry
// S-1 boundaries, strictly ascending.
struct ShardMap {
  std::vector<std::string> boundaries;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(boundaries.size()) + 1;
  }

  // The shard owning `key`.
  uint32_t ShardForKey(std::string_view key) const;

  // Inclusive [first, last] shard range intersecting [lo, hi), with ""
  // meaning unbounded on either side (the Query range convention).
  std::pair<uint32_t, uint32_t> ShardSpan(std::string_view lo,
                                          std::string_view hi) const;

  // Owned range of one shard; "" at either end means unbounded.
  std::string ShardLo(uint32_t shard) const;
  std::string ShardHi(uint32_t shard) const;

  void EncodeTo(Writer& w) const;
  static ShardMap DecodeFrom(Reader& r);

  bool operator==(const ShardMap&) const = default;
};

// Splits `keys` into `num_shards` contiguous ranges of near-equal key
// count. Sorts and dedups its input, so the result depends only on the key
// *set* — rebuilding from the same corpus in any order, or rebalancing to
// a different shard count and back, reproduces the map bit-for-bit.
// Produces fewer shards when there are not enough distinct keys.
ShardMap BuildShardMap(std::vector<std::string> keys, uint32_t num_shards);

// The directory's placement answer: the range map plus, per shard, the
// masters serving it, all signed by the content key (the root that also
// certifies masters), so clients need not trust the directory host.
struct ShardPlacement {
  uint64_t generation = 0;  // bumped on rebalance; newest wins
  ShardMap map;
  std::vector<std::vector<NodeId>> shard_masters;
  Bytes signature;  // by the content key, over SignedBody()

  Bytes SignedBody() const;
  void EncodeTo(Writer& w) const;
  static ShardPlacement DecodeFrom(Reader& r);
  Bytes Encode() const;
  static Result<ShardPlacement> Decode(BytesView data);

  bool operator==(const ShardPlacement&) const = default;
};

ShardPlacement MakeShardPlacement(const Signer& content_signer,
                                  uint64_t generation, ShardMap map,
                                  std::vector<std::vector<NodeId>> masters);

bool VerifyShardPlacement(SignatureScheme scheme,
                          const Bytes& content_public_key,
                          const ShardPlacement& placement);

// One leg of a fanned-out query.
struct ShardSubquery {
  uint32_t shard = 0;
  Query query;

  bool operator==(const ShardSubquery&) const = default;
};

// Plans `q` across the map. GET goes to the single owning shard; ranged
// kinds are clipped to each shard they intersect. A plan of size one
// carries the original query unmodified (byte-identical encoding), so
// single-shard maps add nothing to the wire. Multi-shard AVG is decomposed
// into a SUM leg plus a COUNT leg per shard; the merge divides total sum
// by total row count, which matches the executor's numeric-rows-only
// divisor exactly when every row in the range parses as an integer (true
// for the catalog's price/ and stock/ ranges, which is where the workload
// generator aims aggregates). Mixed ranges where some shard holds both
// numeric and non-numeric rows can merge to a smaller AVG than a single
// store would report — documented, not silently wrong: COUNT counts every
// row while the executor's AVG divides by numeric rows only.
std::vector<ShardSubquery> PlanShardQuery(const ShardMap& map, const Query& q);

// Merges per-shard results (aligned index-for-index with `plan`) into the
// result an unsharded store would produce: row legs concatenate in shard
// (= key) order and re-apply the original limit; COUNT/SUM add; MIN/MAX
// fold over non-empty legs; AVG recombines its SUM and COUNT legs.
QueryResult MergeShardResults(const Query& original,
                              const std::vector<ShardSubquery>& plan,
                              const std::vector<QueryResult>& results);

}  // namespace sdr

#endif  // SDR_SRC_CORE_SHARD_H_
