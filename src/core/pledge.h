// Version tokens and pledge packets — the paper's two signed protocol
// objects.
//
// A VersionToken is the "signed and time-stamped value of the
// content_version variable" a master attaches to state updates and
// keep-alives. A slave may serve reads only while its freshest token is
// younger than max_latency.
//
// A Pledge is the packet a slave signs for every read: a copy of the
// request, the SHA-1 of the result, and the latest master token. If the
// slave lies about the result, the pledge is irrefutable proof of its
// dishonesty (Section 3.3); honest slaves cannot be framed because framing
// would require forging their signature.
#ifndef SDR_SRC_CORE_PLEDGE_H_
#define SDR_SRC_CORE_PLEDGE_H_

#include <cstdint>

#include "src/core/certificate.h"
#include "src/crypto/signer.h"
#include "src/runtime/env.h"
#include "src/store/query.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace sdr {

struct VersionToken {
  uint64_t content_version = 0;
  SimTime timestamp = 0;   // master clock at signing
  NodeId master = kInvalidNode;
  Bytes signature;         // by the master key

  Bytes SignedBody() const;
  void EncodeTo(Writer& w) const;
  static VersionToken DecodeFrom(Reader& r);

  bool operator==(const VersionToken&) const = default;
};

VersionToken MakeVersionToken(const Signer& master_signer, NodeId master,
                              uint64_t version, SimTime now);

bool VerifyVersionToken(SignatureScheme scheme, const Bytes& master_public_key,
                        const VersionToken& token);

// Freshness predicate (Section 3.2): accepted only when the token is no
// older than max_latency at local time `now`.
bool TokenIsFresh(const VersionToken& token, SimTime now, SimTime max_latency);

struct Pledge {
  Query query;
  Bytes result_sha1;   // SHA-1 of the canonical result encoding
  VersionToken token;  // freshest token held by the slave
  NodeId slave = kInvalidNode;
  Bytes signature;     // by the slave key, over everything above

  Bytes SignedBody() const;
  Bytes Encode() const;
  static Result<Pledge> Decode(const Bytes& data);
  void EncodeTo(Writer& w) const;
  static Pledge DecodeFrom(Reader& r);

  bool operator==(const Pledge&) const = default;
};

Pledge MakePledge(const Signer& slave_signer, NodeId slave, const Query& query,
                  const Bytes& result_sha1, const VersionToken& token);

// Checks the slave's signature only (token checked separately, since it
// needs the master key).
bool VerifyPledgeSignature(SignatureScheme scheme,
                           const Bytes& slave_public_key, const Pledge& pledge);

// Cache-aware variants: with a non-null cache, repeated verifications of
// the same bytes (the usual case for version tokens, which masters attach
// unchanged to every pledge until the next keepalive) cost one lookup.
bool VerifyVersionToken(SignatureScheme scheme, const Bytes& master_public_key,
                        const VersionToken& token, VerifyCache* cache);
bool VerifyPledgeSignature(SignatureScheme scheme,
                           const Bytes& slave_public_key, const Pledge& pledge,
                           VerifyCache* cache);

// Verifies both signatures carried by one pledge — the slave's over the
// pledge body and the master's over the embedded token — as a single batch
// when the scheme supports it. Equivalent to the two separate checks.
bool VerifyPledgeAndToken(SignatureScheme scheme, const Bytes& slave_public_key,
                          const Bytes& master_public_key, const Pledge& pledge,
                          VerifyCache* cache);

// Group-commit certificate (scale-out, beyond the paper): one master
// signature covering a contiguous run of committed versions
// [first_version, last_version]. batches_sha1 binds the certificate to the
// exact write batches (SHA-1 over their canonical encodings in version
// order), so a slave applying a batched state update holds the same
// irrefutable evidence of what the master committed as it would from
// per-version tokens, at 1/N the signing cost. Pledges are unchanged —
// they still embed the head VersionToken — which is why auditing, fork
// checking and the chaos invariants work identically in batched mode.
struct BatchCommit {
  NodeId master = kInvalidNode;
  uint64_t first_version = 0;
  uint64_t last_version = 0;
  Bytes batches_sha1;
  SimTime timestamp = 0;  // master clock at signing
  Bytes signature;        // by the master key

  Bytes SignedBody() const;
  void EncodeTo(Writer& w) const;
  static BatchCommit DecodeFrom(Reader& r);

  bool operator==(const BatchCommit&) const = default;
};

BatchCommit MakeBatchCommit(const Signer& master_signer, NodeId master,
                            uint64_t first_version, uint64_t last_version,
                            const Bytes& batches_sha1, SimTime now);

bool VerifyBatchCommit(SignatureScheme scheme, const Bytes& master_public_key,
                       const BatchCommit& commit, VerifyCache* cache);

}  // namespace sdr

#endif  // SDR_SRC_CORE_PLEDGE_H_
