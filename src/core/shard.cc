#include "src/core/shard.h"

#include <algorithm>

namespace sdr {

uint32_t ShardMap::ShardForKey(std::string_view key) const {
  // Number of boundaries <= key == index of the owning shard.
  auto it = std::upper_bound(boundaries.begin(), boundaries.end(), key);
  return static_cast<uint32_t>(it - boundaries.begin());
}

std::pair<uint32_t, uint32_t> ShardMap::ShardSpan(std::string_view lo,
                                                  std::string_view hi) const {
  uint32_t first = lo.empty() ? 0 : ShardForKey(lo);
  uint32_t last = num_shards() - 1;
  if (!hi.empty()) {
    // hi is exclusive: the span ends in the shard holding keys just below
    // it, i.e. after every boundary strictly less than hi.
    auto it = std::lower_bound(boundaries.begin(), boundaries.end(), hi);
    last = static_cast<uint32_t>(it - boundaries.begin());
  }
  if (last < first) {
    last = first;  // empty range; keep the plan well-formed
  }
  return {first, last};
}

std::string ShardMap::ShardLo(uint32_t shard) const {
  return shard == 0 ? std::string() : boundaries[shard - 1];
}

std::string ShardMap::ShardHi(uint32_t shard) const {
  return shard + 1 >= num_shards() ? std::string() : boundaries[shard];
}

void ShardMap::EncodeTo(Writer& w) const {
  w.U32(static_cast<uint32_t>(boundaries.size()));
  for (const std::string& b : boundaries) {
    w.Blob(std::string_view(b));
  }
}

ShardMap ShardMap::DecodeFrom(Reader& r) {
  ShardMap m;
  uint32_t n = r.U32();
  m.boundaries.reserve(std::min<uint32_t>(n, 256));
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    Bytes b = r.Blob();
    m.boundaries.emplace_back(b.begin(), b.end());
  }
  return m;
}

ShardMap BuildShardMap(std::vector<std::string> keys, uint32_t num_shards) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  ShardMap map;
  if (num_shards <= 1 || keys.empty()) {
    return map;
  }
  size_t n = keys.size();
  for (uint32_t i = 1; i < num_shards; ++i) {
    const std::string& candidate = keys[i * n / num_shards];
    // Collapsing duplicate cut points keeps boundaries strictly ascending
    // when there are fewer distinct keys than requested shards.
    if (map.boundaries.empty() || candidate > map.boundaries.back()) {
      map.boundaries.push_back(candidate);
    }
  }
  return map;
}

Bytes ShardPlacement::SignedBody() const {
  Writer w;
  w.Blob(std::string_view("sdr-place-v1"));
  w.U64(generation);
  map.EncodeTo(w);
  w.U32(static_cast<uint32_t>(shard_masters.size()));
  for (const std::vector<NodeId>& masters : shard_masters) {
    w.U32(static_cast<uint32_t>(masters.size()));
    for (NodeId m : masters) {
      w.U32(m);
    }
  }
  return w.Take();
}

void ShardPlacement::EncodeTo(Writer& w) const {
  w.U64(generation);
  map.EncodeTo(w);
  w.U32(static_cast<uint32_t>(shard_masters.size()));
  for (const std::vector<NodeId>& masters : shard_masters) {
    w.U32(static_cast<uint32_t>(masters.size()));
    for (NodeId m : masters) {
      w.U32(m);
    }
  }
  w.Blob(signature);
}

ShardPlacement ShardPlacement::DecodeFrom(Reader& r) {
  ShardPlacement p;
  p.generation = r.U64();
  p.map = ShardMap::DecodeFrom(r);
  uint32_t shards = r.U32();
  p.shard_masters.reserve(std::min<uint32_t>(shards, 256));
  for (uint32_t s = 0; s < shards && r.ok(); ++s) {
    uint32_t n = r.U32();
    std::vector<NodeId> masters;
    masters.reserve(std::min<uint32_t>(n, 256));
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      masters.push_back(r.U32());
    }
    p.shard_masters.push_back(std::move(masters));
  }
  p.signature = r.Blob();
  return p;
}

Bytes ShardPlacement::Encode() const {
  Writer w;
  EncodeTo(w);
  return w.Take();
}

Result<ShardPlacement> ShardPlacement::Decode(BytesView data) {
  Reader r(data);
  ShardPlacement p = DecodeFrom(r);
  if (!r.Done()) {
    return Error(ErrorCode::kCorrupt, "bad placement encoding");
  }
  return p;
}

ShardPlacement MakeShardPlacement(const Signer& content_signer,
                                  uint64_t generation, ShardMap map,
                                  std::vector<std::vector<NodeId>> masters) {
  ShardPlacement p;
  p.generation = generation;
  p.map = std::move(map);
  p.shard_masters = std::move(masters);
  p.signature = content_signer.Sign(p.SignedBody());
  return p;
}

bool VerifyShardPlacement(SignatureScheme scheme,
                          const Bytes& content_public_key,
                          const ShardPlacement& placement) {
  if (placement.shard_masters.size() != placement.map.num_shards()) {
    return false;
  }
  return VerifySignature(scheme, content_public_key, placement.SignedBody(),
                         placement.signature);
}

std::vector<ShardSubquery> PlanShardQuery(const ShardMap& map,
                                          const Query& q) {
  std::vector<ShardSubquery> plan;
  if (q.kind == QueryKind::kGet) {
    plan.push_back({map.ShardForKey(q.key), q});
    return plan;
  }
  auto [first, last] = map.ShardSpan(q.range_lo, q.range_hi);
  if (first == last) {
    plan.push_back({first, q});
    return plan;
  }
  for (uint32_t s = first; s <= last; ++s) {
    Query sub = q;
    if (s != first) {
      sub.range_lo = map.ShardLo(s);
    }
    if (s != last) {
      sub.range_hi = map.ShardHi(s);
    }
    if (q.kind == QueryKind::kAvg) {
      // AVG cannot be merged from per-shard AVGs (a quotient of sums is
      // not a sum of quotients), so each shard contributes a SUM and a
      // COUNT leg instead; see the header for the numeric-rows caveat.
      Query sum = sub;
      sum.kind = QueryKind::kSum;
      plan.push_back({s, std::move(sum)});
      Query count = sub;
      count.kind = QueryKind::kCount;
      plan.push_back({s, std::move(count)});
    } else {
      plan.push_back({s, std::move(sub)});
    }
  }
  return plan;
}

QueryResult MergeShardResults(const Query& original,
                              const std::vector<ShardSubquery>& plan,
                              const std::vector<QueryResult>& results) {
  if (plan.size() == 1) {
    return results.empty() ? QueryResult{} : results[0];
  }
  QueryResult merged;
  switch (original.kind) {
    case QueryKind::kGet:
    case QueryKind::kScan:
    case QueryKind::kGrep: {
      merged.type = QueryResult::Type::kRows;
      for (const QueryResult& r : results) {
        merged.rows.insert(merged.rows.end(), r.rows.begin(), r.rows.end());
      }
      if (original.limit > 0 && merged.rows.size() > original.limit) {
        merged.rows.resize(original.limit);
      }
      return merged;
    }
    case QueryKind::kCount: {
      merged.type = QueryResult::Type::kScalar;
      for (const QueryResult& r : results) {
        merged.scalar += r.scalar;
      }
      return merged;
    }
    case QueryKind::kSum:
    case QueryKind::kMin:
    case QueryKind::kMax: {
      merged.type = QueryResult::Type::kScalar;
      merged.empty_aggregate = true;
      for (const QueryResult& r : results) {
        if (r.empty_aggregate) {
          continue;
        }
        if (merged.empty_aggregate) {
          merged.scalar = r.scalar;
          merged.empty_aggregate = false;
        } else if (original.kind == QueryKind::kSum) {
          merged.scalar += r.scalar;
        } else if (original.kind == QueryKind::kMin) {
          merged.scalar = std::min(merged.scalar, r.scalar);
        } else {
          merged.scalar = std::max(merged.scalar, r.scalar);
        }
      }
      return merged;
    }
    case QueryKind::kAvg: {
      // Recombine the SUM/COUNT leg pairs the planner emitted. A shard
      // whose SUM leg is empty contributed no numeric rows, so its COUNT
      // leg is excluded from the divisor.
      int64_t sum = 0;
      int64_t count = 0;
      for (size_t i = 0; i + 1 < plan.size(); i += 2) {
        if (results[i].empty_aggregate) {
          continue;
        }
        sum += results[i].scalar;
        count += results[i + 1].scalar;
      }
      merged.type = QueryResult::Type::kScalar;
      if (count == 0) {
        merged.empty_aggregate = true;
      } else {
        merged.scalar = 1000 * sum / count;  // the executor's fixed point
      }
      return merged;
    }
  }
  return merged;
}

}  // namespace sdr
