#include "src/core/slave.h"

#include "src/trace/trace.h"
#include "src/util/logging.h"

namespace sdr {

Slave::Slave(Options options)
    : options_(std::move(options)),
      signer_(options_.key_pair),
      rng_(options_.rng_seed) {}

void Slave::Start() {
  queue_ = std::make_unique<ServiceQueue>(env(), options_.cost.slave_speed);
  queue_->BindTrace(TraceRole::kSlave, id());
}

void Slave::SetBaseContent(const DocumentStore& base) {
  store_ = base;
}

void Slave::HandleMessage(NodeId from, const Payload& payload) {
  auto type = PeekType(payload);
  if (!type.ok()) {
    return;
  }
  BytesView body = BytesView(payload).substr(1);
  switch (*type) {
    case MsgType::kStateUpdate:
      HandleStateUpdate(from, body);
      break;
    case MsgType::kKeepAlive:
      HandleKeepAlive(from, body);
      break;
    case MsgType::kReadRequest:
      HandleReadRequest(from, body);
      break;
    // Not addressed to a slave; ignored by design.
    case MsgType::kDirectoryLookup:
    case MsgType::kDirectoryLookupReply:
    case MsgType::kClientHello:
    case MsgType::kClientHelloReply:
    case MsgType::kReadReply:
    case MsgType::kWriteRequest:
    case MsgType::kWriteReply:
    case MsgType::kDoubleCheckRequest:
    case MsgType::kDoubleCheckReply:
    case MsgType::kAccusation:
    case MsgType::kReassignment:
    case MsgType::kSlaveAck:
    case MsgType::kAuditSubmit:
    case MsgType::kBroadcastEnvelope:
    case MsgType::kBadReadNotice:
      break;
  }
}

void Slave::MaybeAdoptToken(const VersionToken& token) {
  // Verify the master's signature; reject tokens from unknown masters.
  auto key = options_.master_keys.find(token.master);
  if (key == options_.master_keys.end() ||
      !VerifyVersionToken(options_.params.scheme, key->second, token,
                          &verify_cache_)) {
    return;
  }
  // A token is only usable if we actually hold the state it attests to.
  if (token.content_version != applied_version_) {
    return;
  }
  if (!token_.has_value() || token.timestamp > token_->timestamp) {
    token_ = token;
  }
}

void Slave::HandleStateUpdate(NodeId from, BytesView body) {
  auto msg = StateUpdate::Decode(body);
  if (!msg.ok()) {
    return;
  }
  if (options_.behavior.ignore_updates) {
    // Malicious/stuck replica: swallow the update. (It may still adopt
    // keep-alive tokens for its stale version via serve_despite_stale.)
    return;
  }
  if (msg->version > applied_version_) {
    buffered_updates_[msg->version] = *msg;
    ApplyBuffered();
  }
  MaybeAdoptToken(msg->token);
  AckTo(from);
}

void Slave::ApplyBuffered() {
  auto it = buffered_updates_.find(applied_version_ + 1);
  while (it != buffered_updates_.end()) {
    store_.ApplyBatch(it->second.batch);
    ++applied_version_;
    ++metrics_.state_updates_applied;
    MaybeAdoptToken(it->second.token);
    buffered_updates_.erase(it);
    it = buffered_updates_.find(applied_version_ + 1);
  }
}

void Slave::HandleKeepAlive(NodeId from, BytesView body) {
  auto msg = KeepAlive::Decode(body);
  if (!msg.ok()) {
    return;
  }
  ++metrics_.keepalives_received;
  MaybeAdoptToken(msg->token);
  AckTo(from);
}

void Slave::AckTo(NodeId master) {
  SlaveAck ack;
  ack.applied_version = applied_version_;
  env()->Send(master, WithType(MsgType::kSlaveAck, ack.Encode()));
}

bool Slave::TokenFresh() const {
  return token_.has_value() &&
         TokenIsFresh(*token_, env()->Now(), options_.params.max_latency);
}

void Slave::HandleReadRequest(NodeId from, BytesView body) {
  auto msg = ReadRequest::Decode(body);
  if (!msg.ok()) {
    return;
  }
  if (options_.behavior.drop_probability > 0.0 &&
      rng_.NextBool(options_.behavior.drop_probability)) {
    return;
  }
  TraceSink* t = env()->trace();
  if (!token_.has_value() ||
      (!TokenFresh() && !options_.behavior.serve_despite_stale)) {
    // An honest slave that is out of sync "should stop handling user
    // requests until they are back in sync" (Section 3).
    ++metrics_.reads_declined_stale;
    if (t != nullptr) {
      t->Instant(TraceRole::kSlave, id(), "slave.decline", msg->trace_id);
    }
    ReadReply reply;
    reply.request_id = msg->request_id;
    reply.trace_id = msg->trace_id;
    reply.ok = false;
    env()->Send(from,
                WithType(MsgType::kReadReply, reply.Encode()));
    return;
  }

  auto outcome = executor_.Execute(store_, msg->query);
  if (!outcome.ok()) {
    ReadReply reply;
    reply.request_id = msg->request_id;
    reply.trace_id = msg->trace_id;
    reply.ok = false;
    env()->Send(from,
                WithType(MsgType::kReadReply, reply.Encode()));
    return;
  }

  QueryResult result = std::move(outcome->result);
  bool lied_consistently = false;
  if (options_.behavior.lie_probability > 0.0 &&
      rng_.NextBool(options_.behavior.lie_probability)) {
    // The paper's threat: a wrong answer with an internally consistent
    // pledge. Corrupt the result, then hash the corrupted bytes.
    if (result.type == QueryResult::Type::kScalar) {
      result.scalar += 1;
    } else if (!result.rows.empty()) {
      result.rows[0].second += "\x01";
    } else {
      result.rows.emplace_back("phantom", "entry");
    }
    lied_consistently = true;
    ++metrics_.lies_told;
    ++metrics_.consistent_lies_told;
    if (t != nullptr) {
      t->Instant(TraceRole::kSlave, id(), "slave.lie.consistent",
                 msg->trace_id);
    }
  }

  Bytes hashed = result.Sha1Digest();
  if (!lied_consistently &&
      options_.behavior.inconsistent_lie_probability > 0.0 &&
      rng_.NextBool(options_.behavior.inconsistent_lie_probability)) {
    // Clumsy lie: corrupt the result after hashing; clients catch this at
    // the hash check without any master involvement.
    if (result.type == QueryResult::Type::kScalar) {
      result.scalar += 1;
    } else {
      result.rows.emplace_back("phantom", "entry");
    }
    ++metrics_.lies_told;
    if (t != nullptr) {
      t->Instant(TraceRole::kSlave, id(), "slave.lie.inconsistent",
                 msg->trace_id);
    }
  }

  metrics_.work_units_executed += outcome->cost;
  SimTime service_time =
      options_.cost.ExecuteTime(outcome->cost, result.Encode().size()) +
      options_.cost.SignTime();

  // Capture everything needed — including the token the result was computed
  // under — so a state update arriving mid-service cannot skew the pledge;
  // the reply leaves when the simulated CPU has produced and signed it.
  if (t != nullptr) {
    t->SpanBegin(TraceRole::kSlave, id(), "slave.serve", msg->trace_id);
  }
  queue_->Enqueue(service_time, [this, from, request_id = msg->request_id,
                                 trace_id = msg->trace_id, query = msg->query,
                                 result = std::move(result),
                                 hashed = std::move(hashed), token = *token_] {
    ReadReply reply;
    reply.request_id = request_id;
    reply.trace_id = trace_id;
    reply.ok = true;
    reply.result = result;
    reply.pledge = MakePledge(signer_, id(), query, hashed, token);
    ++metrics_.reads_served;
    if (TraceSink* sink = env()->trace()) {
      sink->SpanEnd(TraceRole::kSlave, id(), "slave.serve", trace_id);
    }
    env()->Send(from, WithType(MsgType::kReadReply, reply.Encode()));
  });
}

}  // namespace sdr
