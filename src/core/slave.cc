#include "src/core/slave.h"

#include "src/crypto/sha1.h"
#include "src/trace/trace.h"
#include "src/util/logging.h"

namespace sdr {

Slave::Slave(Options options)
    : options_(std::move(options)),
      signer_(options_.key_pair),
      rng_(options_.rng_seed) {}

void Slave::Start() {
  queue_ = std::make_unique<ServiceQueue>(env(), options_.cost.slave_speed);
  queue_->BindTrace(TraceRole::kSlave, id());
}

void Slave::SetBaseContent(const DocumentStore& base) {
  store_ = base;
}

void Slave::HandleMessage(NodeId from, const Payload& payload) {
  auto type = PeekType(payload);
  if (!type.ok()) {
    return;
  }
  BytesView body = BytesView(payload).substr(1);
  switch (*type) {
    case MsgType::kStateUpdate:
      HandleStateUpdate(from, body);
      break;
    case MsgType::kStateUpdateBatch:
      HandleStateUpdateBatch(from, body);
      break;
    case MsgType::kKeepAlive:
      HandleKeepAlive(from, body);
      break;
    case MsgType::kReadRequest:
      HandleReadRequest(from, body);
      break;
    // Not addressed to a slave; ignored by design.
    case MsgType::kDirectoryLookup:
    case MsgType::kDirectoryLookupReply:
    case MsgType::kClientHello:
    case MsgType::kClientHelloReply:
    case MsgType::kReadReply:
    case MsgType::kWriteRequest:
    case MsgType::kWriteReply:
    case MsgType::kDoubleCheckRequest:
    case MsgType::kDoubleCheckReply:
    case MsgType::kAccusation:
    case MsgType::kReassignment:
    case MsgType::kSlaveAck:
    case MsgType::kAuditSubmit:
    case MsgType::kBroadcastEnvelope:
    case MsgType::kBadReadNotice:
    case MsgType::kVvExchange:
    case MsgType::kForkEvidence:
    case MsgType::kPlacementQuery:
    case MsgType::kPlacementReply:
      break;
  }
}

void Slave::MaybeAdoptToken(const VersionToken& token) {
  // Verify the master's signature; reject tokens from unknown masters.
  auto key = options_.master_keys.find(token.master);
  if (key == options_.master_keys.end() ||
      !VerifyVersionToken(options_.params.scheme, key->second, token,
                          &verify_cache_)) {
    return;
  }
  // A token is only usable if we actually hold the state it attests to.
  if (token.content_version != applied_version_) {
    return;
  }
  if (!token_.has_value() || token.timestamp > token_->timestamp) {
    token_ = token;
  }
}

void Slave::HandleStateUpdate(NodeId from, BytesView body) {
  auto msg = StateUpdate::Decode(body);
  if (!msg.ok()) {
    return;
  }
  if (options_.behavior.ignore_updates) {
    // Malicious/stuck replica: swallow the update. (It may still adopt
    // keep-alive tokens for its stale version via serve_despite_stale.)
    return;
  }
  if (msg->version > applied_version_) {
    buffered_updates_[msg->version] = *msg;
    ApplyBuffered();
  }
  MaybeAdoptToken(msg->token);
  AckTo(from);
}

void Slave::ApplyBuffered() {
  auto it = buffered_updates_.find(applied_version_ + 1);
  while (it != buffered_updates_.end()) {
    if (options_.behavior.stale_pledge) {
      // Keep a one-version-lagged snapshot: stale_pledge serves content
      // from here while the pledge token claims the new version.
      lag_view_ = FrozenView{store_, applied_version_};
    }
    store_.ApplyBatch(it->second.batch);
    ++applied_version_;
    ++metrics_.state_updates_applied;
    MaybeAdoptToken(it->second.token);
    buffered_updates_.erase(it);
    it = buffered_updates_.find(applied_version_ + 1);
  }
}

void Slave::HandleStateUpdateBatch(NodeId from, BytesView body) {
  auto msg = StateUpdateBatch::Decode(body);
  if (!msg.ok()) {
    return;
  }
  if (options_.behavior.ignore_updates) {
    return;
  }
  // The one certificate must be genuine and must cover exactly these
  // batches before any of them touches the store: a mismatched digest
  // means someone spliced batches under a real signature.
  auto key = options_.master_keys.find(msg->commit.master);
  if (key == options_.master_keys.end() || msg->batches.empty() ||
      msg->commit.first_version != msg->first_version ||
      msg->commit.last_version !=
          msg->first_version + msg->batches.size() - 1) {
    return;
  }
  Sha1 digest;
  for (const WriteBatch& batch : msg->batches) {
    Writer w;
    EncodeBatch(w, batch);
    digest.Update(w.Take());
  }
  if (digest.Final() != msg->commit.batches_sha1 ||
      !VerifyBatchCommit(options_.params.scheme, key->second, msg->commit,
                         &verify_cache_)) {
    return;
  }
  ++metrics_.state_update_batches_received;
  // Decompose into per-version updates so the apply path — lag views,
  // buffering across gaps, token adoption at the head — is the one the
  // unbatched protocol already exercises. The head token rides on every
  // decomposed update but only becomes adoptable once the last version of
  // the run is applied (MaybeAdoptToken's content_version check).
  for (size_t i = 0; i < msg->batches.size(); ++i) {
    uint64_t version = msg->first_version + i;
    if (version <= applied_version_) {
      continue;
    }
    StateUpdate update;
    update.version = version;
    update.batch = msg->batches[i];
    update.token = msg->token;
    buffered_updates_[version] = std::move(update);
  }
  ApplyBuffered();
  MaybeAdoptToken(msg->token);
  AckTo(from);
}

void Slave::HandleKeepAlive(NodeId from, BytesView body) {
  auto msg = KeepAlive::Decode(body);
  if (!msg.ok()) {
    return;
  }
  ++metrics_.keepalives_received;
  MaybeAdoptToken(msg->token);
  AckTo(from);
}

void Slave::AckTo(NodeId master) {
  SlaveAck ack;
  ack.applied_version = applied_version_;
  env()->Send(master, WithType(MsgType::kSlaveAck, ack.Encode()));
}

bool Slave::TokenFresh() const {
  return token_.has_value() &&
         TokenIsFresh(*token_, env()->Now(), options_.params.max_latency);
}

void Slave::HandleReadRequest(NodeId from, BytesView body) {
  auto msg = ReadRequest::Decode(body);
  if (!msg.ok()) {
    return;
  }
  if (options_.behavior.drop_probability > 0.0 &&
      rng_.NextBool(options_.behavior.drop_probability)) {
    return;
  }
  TraceSink* t = env()->trace();
  if (!token_.has_value() ||
      (!TokenFresh() && !options_.behavior.serve_despite_stale)) {
    // An honest slave that is out of sync "should stop handling user
    // requests until they are back in sync" (Section 3).
    ++metrics_.reads_declined_stale;
    if (t != nullptr) {
      t->Instant(TraceRole::kSlave, id(), "slave.decline", msg->trace_id);
    }
    ReadReply reply;
    reply.request_id = msg->request_id;
    reply.trace_id = msg->trace_id;
    reply.ok = false;
    env()->Send(from,
                WithType(MsgType::kReadReply, reply.Encode()));
    return;
  }

  // Equivocation behaviors: pick which view of the content this client is
  // served from. A forked slave splits its clients by id parity — the odd
  // half reads a view frozen when the fork began, the even half the real
  // store — while both pledges claim the current version. Views are
  // dropped as soon as the behavior heals so a recovered slave serves
  // honestly again.
  const bool fork_active =
      options_.behavior.fork_views || options_.behavior.split_serve;
  const bool fork_target = fork_active && (from % 2 == 1);
  if (!fork_active && fork_view_.has_value()) {
    fork_view_.reset();
  }
  if (!options_.behavior.stale_pledge && lag_view_.has_value()) {
    lag_view_.reset();
  }
  const DocumentStore* exec_store = &store_;
  if (fork_target) {
    if (!fork_view_.has_value()) {
      fork_view_ = FrozenView{store_, applied_version_};
    }
    exec_store = &fork_view_->store;
    if (fork_view_->version < applied_version_) {
      // Only reads answered from a view the slave knows is behind count as
      // equivocation: until a write lands, the frozen view tells the truth.
      ++metrics_.equivocations_served;
    }
  } else if (fork_active) {
    // A fork only splits *observable* history when both client sets read
    // while the views diverge; a forked slave whose clients all fall in
    // one set presents a single consistent (if stale) story.
    if (fork_view_.has_value() && fork_view_->version < applied_version_) {
      ++metrics_.honest_serves_forked;
    }
  } else if (options_.behavior.stale_pledge && lag_view_.has_value()) {
    exec_store = &lag_view_->store;
    ++metrics_.stale_serves;
  }

  auto outcome = executor_.Execute(*exec_store, msg->query);
  if (!outcome.ok()) {
    ReadReply reply;
    reply.request_id = msg->request_id;
    reply.trace_id = msg->trace_id;
    reply.ok = false;
    env()->Send(from,
                WithType(MsgType::kReadReply, reply.Encode()));
    return;
  }

  QueryResult result = std::move(outcome->result);
  bool lied_consistently = false;
  if (options_.behavior.lie_probability > 0.0 &&
      rng_.NextBool(options_.behavior.lie_probability)) {
    // The paper's threat: a wrong answer with an internally consistent
    // pledge. Corrupt the result, then hash the corrupted bytes.
    if (result.type == QueryResult::Type::kScalar) {
      result.scalar += 1;
    } else if (!result.rows.empty()) {
      result.rows[0].second += "\x01";
    } else {
      result.rows.emplace_back("phantom", "entry");
    }
    lied_consistently = true;
    ++metrics_.lies_told;
    ++metrics_.consistent_lies_told;
    if (t != nullptr) {
      t->Instant(TraceRole::kSlave, id(), "slave.lie.consistent",
                 msg->trace_id);
    }
  }

  Bytes hashed = result.Sha1Digest();
  if (!lied_consistently &&
      options_.behavior.inconsistent_lie_probability > 0.0 &&
      rng_.NextBool(options_.behavior.inconsistent_lie_probability)) {
    // Clumsy lie: corrupt the result after hashing; clients catch this at
    // the hash check without any master involvement.
    if (result.type == QueryResult::Type::kScalar) {
      result.scalar += 1;
    } else {
      result.rows.emplace_back("phantom", "entry");
    }
    ++metrics_.lies_told;
    if (t != nullptr) {
      t->Instant(TraceRole::kSlave, id(), "slave.lie.inconsistent",
                 msg->trace_id);
    }
  }

  metrics_.work_units_executed += outcome->cost;
  SimTime service_time =
      options_.cost.ExecuteTime(outcome->cost, result.Encode().size()) +
      options_.cost.SignTime();

  SimTime hold_until = 0;
  if (options_.behavior.split_serve && fork_target) {
    // Targeted slow-lie: hold the equivocating reply until just inside the
    // freshness window, so the victim set's view lags as far as the
    // protocol allows while every pledge still passes the client's checks.
    // The hold delays only the send — stalling a reply costs the slave no
    // CPU, so the service queue (and with it the honest set) keeps moving.
    const SimTime margin = 300 * kMillisecond;  // network slack
    SimTime deadline = token_->timestamp + options_.params.max_latency;
    if (deadline > margin) {
      hold_until = deadline - margin;
    }
  }

  // Fork-consistency commitment: every served read folds its pledge into
  // the serving chain and signs a fresh VersionVector over the new head.
  // An equivocating slave necessarily runs the targeted set on its own
  // chain — one unified chain would commit it to a single history that
  // contradicts one set's answers — so the per-set heads diverge and both
  // chains walk every length past the copy point. Selection happens here;
  // the fold and signature happen in the closure, in queue (FIFO) order,
  // so chain state and commitments match the order replies actually leave.
  const int chain = options_.params.fork_check_enabled && fork_target ? 1 : 0;
  if (options_.params.fork_check_enabled) {
    service_time += options_.cost.SignTime();  // the commitment signature
  }

  // Capture everything needed — including the token the result was computed
  // under — so a state update arriving mid-service cannot skew the pledge;
  // the reply leaves when the simulated CPU has produced and signed it.
  if (t != nullptr) {
    t->SpanBegin(TraceRole::kSlave, id(), "slave.serve", msg->trace_id);
  }
  queue_->Enqueue(service_time, [this, from, request_id = msg->request_id,
                                 trace_id = msg->trace_id, query = msg->query,
                                 result = std::move(result),
                                 hashed = std::move(hashed), token = *token_,
                                 chain, hold_until] {
    ReadReply reply;
    reply.request_id = request_id;
    reply.trace_id = trace_id;
    reply.ok = true;
    reply.result = result;
    reply.pledge = MakePledge(signer_, id(), query, hashed, token);
    if (options_.params.fork_check_enabled) {
      if (chain == 1 && !chain1_forked_) {
        chains_[1] = chains_[0];  // the fork copies the honest history
        chain1_forked_ = true;
      }
      reply.vv = chains_[chain].ExtendAndCommit(signer_, id(),
                                                token.content_version,
                                                reply.pledge);
      ++metrics_.vvs_attached;
    }
    ++metrics_.reads_served;
    Payload payload = WithType(MsgType::kReadReply, reply.Encode());
    SimTime now = env()->Now();
    if (hold_until > now) {
      env()->ScheduleAfter(hold_until - now,
                           [this, from, trace_id,
                            payload = std::move(payload)] {
        if (TraceSink* sink = env()->trace()) {
          sink->SpanEnd(TraceRole::kSlave, id(), "slave.serve", trace_id);
        }
        env()->Send(from, payload);
      });
      return;
    }
    if (TraceSink* sink = env()->trace()) {
      sink->SpanEnd(TraceRole::kSlave, id(), "slave.serve", trace_id);
    }
    env()->Send(from, payload);
  });
}

}  // namespace sdr
