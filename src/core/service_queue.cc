#include "src/core/service_queue.h"

#include <algorithm>
#include <cassert>

namespace sdr {

ServiceQueue::ServiceQueue(Env* env, double speed)
    : env_(env), speed_(speed) {
  assert(speed_ > 0);
}

SimTime ServiceQueue::busy_until() const {
  return std::max(busy_until_, env_->Now());
}

void ServiceQueue::Enqueue(SimTime service_time, InlineFunction<void()> done) {
  SimTime scaled = std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(service_time) / speed_));
  SimTime start = busy_until();
  if (trace_role_ != TraceRole::kNone) {
    if (TraceSink* t = env_->trace()) {
      t->Hist(trace_role_, trace_node_, "queue_wait_us")
          .Record(start - env_->Now());
    }
  }
  busy_until_ = start + scaled;
  busy_time_ += scaled;
  ++depth_;
  env_->ScheduleAt(busy_until_, [this, done = std::move(done)]() mutable {
    --depth_;
    ++jobs_completed_;
    done();
  });
}

double ServiceQueue::UtilizationSince(SimTime start, SimTime now) const {
  if (now <= start) {
    return 0.0;
  }
  return static_cast<double>(busy_time_) / static_cast<double>(now - start);
}

}  // namespace sdr
