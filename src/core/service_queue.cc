#include "src/core/service_queue.h"

#include <algorithm>
#include <cassert>

namespace sdr {

ServiceQueue::ServiceQueue(Simulator* sim, double speed)
    : sim_(sim), speed_(speed) {
  assert(speed_ > 0);
}

SimTime ServiceQueue::busy_until() const {
  return std::max(busy_until_, sim_->Now());
}

void ServiceQueue::Enqueue(SimTime service_time, InlineFunction<void()> done) {
  SimTime scaled = std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(service_time) / speed_));
  SimTime start = busy_until();
  if (trace_role_ != TraceRole::kNone) {
    if (TraceSink* t = sim_->trace()) {
      t->Hist(trace_role_, trace_node_, "queue_wait_us")
          .Record(start - sim_->Now());
    }
  }
  busy_until_ = start + scaled;
  busy_time_ += scaled;
  ++depth_;
  sim_->ScheduleAt(busy_until_, [this, done = std::move(done)]() mutable {
    --depth_;
    ++jobs_completed_;
    done();
  });
}

double ServiceQueue::UtilizationSince(SimTime start, SimTime now) const {
  if (now <= start) {
    return 0.0;
  }
  return static_cast<double>(busy_time_) / static_cast<double>(now - start);
}

}  // namespace sdr
