#include "src/core/cluster.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "src/util/logging.h"

namespace sdr {

namespace {
// Node ids are precomputed so that Options can reference them before the
// nodes exist; abort loudly if the layout assumption ever breaks.
void CheckId(NodeId got, NodeId expected) {
  if (got != expected) {
    SDR_LOG(kError) << "cluster roster mismatch: got " << got << " expected "
                    << expected;
    std::abort();
  }
}
}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      net_(&sim_, config_.default_link) {
  if (config_.trace.enabled) {
    TraceSink::Options topts;
    topts.capacity = config_.trace.capacity;
    topts.sim_spans = config_.trace.sim_spans;
    trace_sink_ = std::make_unique<TraceSink>(&sim_, topts);
    // Installed before any node starts so the first scheduled event is
    // already observable.
    sim_.set_trace(trace_sink_.get());
  }

  Rng key_rng = sim_.rng().Fork();

  // --- Content owner: content key and identity. ---
  KeyPair content_key = KeyPair::Generate(config_.params.scheme, key_rng);
  Signer owner(content_key);
  content_.scheme = config_.params.scheme;
  content_.content_public_key = content_key.public_key;

  // Node ids are assigned sequentially by AddNode; lay the roster out
  // deterministically and shard-major: directory, every shard's masters,
  // every shard's auditors, every shard's slaves, clients, then (last) the
  // optional fleet node. At num_shards == 1 every loop below collapses to
  // the single-group roster — same ids, same key_rng draw order — so
  // classic runs are byte-identical.
  const int S = num_shards();
  const int M = config_.num_masters;
  const int A = std::max(1, config_.num_auditors);
  // Scale-out configs drive the broadcast orders of magnitude harder than
  // the classic roster; without nack dedup the reordered ordered-stream
  // nack traffic grows quadratically with the write rate, and without
  // catch-up dedup a loaded slave's delayed batch application triggers
  // redundant per-version pushes that defeat group commit's signature
  // amortization. Classic configs keep both knobs off so their message
  // and signature counts stay byte-identical.
  const bool scale_out =
      S > 1 || config_.params.commit_batch > 1 || config_.fleet_clients > 0;
  if (scale_out) {
    config_.broadcast.dedup_gap_nacks = true;
  }
  const NodeId directory_id = 1;
  std::vector<std::vector<NodeId>> shard_master_ids(S);
  std::vector<std::vector<NodeId>> shard_auditor_ids(S);
  for (int sh = 0; sh < S; ++sh) {
    for (int i = 0; i < M; ++i) {
      shard_master_ids[sh].push_back(static_cast<NodeId>(2 + sh * M + i));
    }
    for (int i = 0; i < A; ++i) {
      shard_auditor_ids[sh].push_back(
          static_cast<NodeId>(2 + S * M + sh * A + i));
    }
  }

  // Per-shard TOB group: the shard's masters plus its auditors (== the
  // whole group in classic runs).
  std::vector<std::vector<NodeId>> shard_group(S);
  for (int sh = 0; sh < S; ++sh) {
    shard_group[sh] = shard_master_ids[sh];
    for (NodeId a : shard_auditor_ids[sh]) {
      shard_group[sh].push_back(a);
    }
  }

  // --- Keys and certificates. One content key certifies every shard's
  // masters; verification stays rooted in the single content identity.
  std::vector<KeyPair> master_keys;  // shard-major, sh * M + i
  std::map<NodeId, Bytes> master_key_map;
  std::vector<std::map<NodeId, Bytes>> shard_key_map(S);
  std::vector<Certificate> master_certs;  // shard-major
  std::vector<std::vector<Certificate>> shard_certs(S);
  for (int sh = 0; sh < S; ++sh) {
    for (int i = 0; i < M; ++i) {
      NodeId mid = shard_master_ids[sh][i];
      master_keys.push_back(KeyPair::Generate(config_.params.scheme, key_rng));
      master_key_map[mid] = master_keys.back().public_key;
      shard_key_map[sh][mid] = master_keys.back().public_key;
      master_certs.push_back(IssueCertificate(owner, mid, Role::kMaster,
                                              master_keys.back().public_key));
      shard_certs[sh].push_back(master_certs.back());
      shard_of_master_[mid] = sh;
    }
  }
  std::vector<KeyPair> auditor_keys;  // shard-major, sh * A + i
  for (int sh = 0; sh < S; ++sh) {
    for (int i = 0; i < A; ++i) {
      auditor_keys.push_back(KeyPair::Generate(config_.params.scheme, key_rng));
    }
  }

  // --- Initial content. ---
  Rng corpus_rng = sim_.rng().Fork();
  DocumentStore base = BuildCatalogCorpus(config_.corpus, corpus_rng);

  // --- Shard map and per-shard content. Classic runs never touch the
  // corpus: shard_map_ stays trivial and `base` is installed unfiltered.
  std::vector<DocumentStore> shard_base;
  if (S > 1) {
    std::vector<std::string> corpus_keys;
    corpus_keys.reserve(base.data().size());
    for (const auto& [key, value] : base.data()) {
      corpus_keys.push_back(key);
    }
    shard_map_ = BuildShardMap(std::move(corpus_keys), static_cast<uint32_t>(S));
    if (shard_map_.num_shards() != static_cast<uint32_t>(S)) {
      SDR_LOG(kError) << "corpus too small to split into " << S << " shards";
      std::abort();
    }
    shard_base.resize(S);
    for (const auto& [key, value] : base.data()) {
      shard_base[shard_map_.ShardForKey(key)].Apply(WriteOp::Put(key, value));
    }
  }
  auto base_for_shard = [&](int sh) -> const DocumentStore& {
    return S > 1 ? shard_base[sh] : base;
  };

  // Names the node in trace exports; no-op when tracing is off.
  auto register_node = [this](NodeId id, TraceRole role, const char* kind,
                              int index) {
    if (trace_sink_ != nullptr) {
      trace_sink_->RegisterNode(id, role,
                                std::string(kind) + " " + std::to_string(index));
    }
  };

  // --- Directory. ---
  directory_ = std::make_unique<Directory>();
  NodeId got = net_.AddNode(directory_.get());
  CheckId(got, directory_id);
  register_node(got, TraceRole::kDirectory, "directory", 0);
  directory_->Publish(content_.content_public_key, master_certs);
  if (S > 1) {
    directory_->PublishPlacement(
        content_.content_public_key,
        MakeShardPlacement(owner, 1, shard_map_, shard_master_ids));
  }

  // --- Masters. ---
  for (int sh = 0; sh < S; ++sh) {
    for (int i = 0; i < M; ++i) {
      Master::Options opts;
      opts.params = config_.params;
      opts.cost = config_.cost;
      opts.key_pair = master_keys[sh * M + i];
      opts.content = content_;
      opts.group = shard_group[sh];
      opts.auditors = shard_auditor_ids[sh];
      opts.master_keys = shard_key_map[sh];
      opts.snapshot_interval = config_.snapshot_interval;
      opts.broadcast = config_.broadcast;
      opts.dedup_catchup_pushes = scale_out;
      masters_.push_back(std::make_unique<Master>(std::move(opts)));
      got = net_.AddNode(masters_.back().get());
      CheckId(got, shard_master_ids[sh][i]);
      register_node(got, TraceRole::kMaster, "master", sh * M + i);
      masters_.back()->SetBaseContent(base_for_shard(sh));
    }
  }

  // --- Auditors (the elected trusted servers without slave sets). ---
  for (int sh = 0; sh < S; ++sh) {
    for (int i = 0; i < A; ++i) {
      Auditor::Options opts;
      opts.params = config_.params;
      opts.cost = config_.cost;
      opts.key_pair = auditor_keys[sh * A + i];
      opts.group = shard_group[sh];
      opts.master_keys = shard_key_map[sh];
      opts.master_certs = shard_certs[sh];
      opts.snapshot_interval = config_.snapshot_interval;
      opts.broadcast = config_.broadcast;
      opts.use_result_cache = config_.auditor_use_cache;
      opts.audit_jobs = config_.audit_jobs;
      auditors_.push_back(std::make_unique<Auditor>(std::move(opts)));
      got = net_.AddNode(auditors_.back().get());
      CheckId(got, shard_auditor_ids[sh][i]);
      register_node(got, TraceRole::kAuditor, "auditor", sh * A + i);
      auditors_.back()->SetBaseContent(base_for_shard(sh));
      auditors_.back()->on_evidence = [this](const EvidenceChain& chain) {
        fork_evidence_.push_back(chain);
      };
    }
  }

  // --- Slaves (shard-major; saved certs wire the fleet below). ---
  std::vector<std::vector<Certificate>> shard_slave_certs(S);
  int slave_index = 0;
  for (int sh = 0; sh < S; ++sh) {
    for (int m = 0; m < M; ++m) {
      Signer master_signer(master_keys[sh * M + m]);
      for (int s = 0; s < config_.slaves_per_master; ++s, ++slave_index) {
        Slave::Options opts;
        opts.params = config_.params;
        opts.cost = config_.cost;
        opts.key_pair = KeyPair::Generate(config_.params.scheme, key_rng);
        opts.master_keys = master_key_map;
        opts.rng_seed = config_.seed * 1000003 + slave_index;
        if (config_.slave_behavior) {
          opts.behavior = config_.slave_behavior(slave_index);
        }
        slaves_.push_back(std::make_unique<Slave>(std::move(opts)));
        NodeId sid = net_.AddNode(slaves_.back().get());
        register_node(sid, TraceRole::kSlave, "slave", slave_index);
        slaves_.back()->SetBaseContent(base_for_shard(sh));
        Certificate cert = IssueCertificate(master_signer, sid, Role::kSlave,
                                            slaves_.back()->public_key());
        masters_[sh * M + m]->AddSlave(cert);
        shard_slave_certs[sh].push_back(std::move(cert));
      }
    }
  }

  // --- Clients. ---
  // Client ids follow the slaves in the roster; precompute them so every
  // client knows its gossip peers before any node exists.
  std::vector<NodeId> client_ids;
  {
    NodeId first_client = static_cast<NodeId>(
        2 + S * M + S * A + S * M * config_.slaves_per_master);
    for (int c = 0; c < config_.num_clients; ++c) {
      client_ids.push_back(first_client + static_cast<NodeId>(c));
    }
  }
  for (int c = 0; c < config_.num_clients; ++c) {
    Client::Options opts;
    opts.params = config_.params;
    opts.content = content_;
    opts.directory = directory_id;
    opts.num_shards = static_cast<uint32_t>(S);
    opts.mode = config_.client_mode;
    opts.think_time = config_.client_think_time;
    opts.reads_per_second = config_.client_reads_per_second;
    opts.rate_multiplier = config_.client_rate_multiplier;
    opts.write_fraction = config_.client_write_fraction;
    opts.rng_seed = config_.seed * 7919 + c;
    QueryMix mix = config_.mix;
    mix.n_items = config_.corpus.n_items;
    opts.query_source = [mix](Rng& rng) { return mix.Generate(rng); };
    WriteGen write_gen = config_.write_gen;
    write_gen.n_items = config_.corpus.n_items;
    opts.write_source = [write_gen](Rng& rng) {
      return write_gen.Generate(rng);
    };
    opts.peer_clients = client_ids;
    if (config_.tweak_client) {
      config_.tweak_client(c, opts);
    }
    clients_.push_back(std::make_unique<Client>(std::move(opts)));
    NodeId cid = net_.AddNode(clients_.back().get());
    CheckId(cid, client_ids[c]);
    register_node(cid, TraceRole::kClient, "client", c);
    clients_.back()->on_evidence = [this](const EvidenceChain& chain) {
      fork_evidence_.push_back(chain);
    };
    clients_.back()->on_accept = [this, c](const Query& query,
                                           const Pledge& pledge,
                                           const QueryResult& result) {
      OnClientAccept(c, query, pledge, result);
    };
  }

  // --- Fleet (optional, always the last roster entry so every id above is
  // unchanged whether or not it exists). ---
  if (config_.fleet_clients > 0) {
    ClientFleet::Options opts;
    opts.params = config_.params;
    opts.num_clients = static_cast<size_t>(config_.fleet_clients);
    opts.reads_per_second = config_.fleet_reads_per_second;
    opts.write_fraction = config_.fleet_write_fraction;
    opts.rng_seed = config_.seed * 104729 + 1;
    QueryMix mix = config_.mix;
    mix.n_items = config_.corpus.n_items;
    opts.query_source = [mix](Rng& rng) { return mix.Generate(rng); };
    WriteGen write_gen = config_.write_gen;
    write_gen.n_items = config_.corpus.n_items;
    opts.write_source = [write_gen](Rng& rng) {
      return write_gen.Generate(rng);
    };
    opts.shard_map = shard_map_;
    opts.master_keys = master_key_map;
    for (int sh = 0; sh < S; ++sh) {
      ClientFleet::Options::ShardWiring wiring;
      wiring.slave_certs = shard_slave_certs[sh];
      wiring.masters = shard_master_ids[sh];
      wiring.auditor = shard_auditor_ids[sh][0];
      opts.shards.push_back(std::move(wiring));
    }
    fleet_ = std::make_unique<ClientFleet>(std::move(opts));
    NodeId fid = net_.AddNode(fleet_.get());
    register_node(fid, TraceRole::kClient, "fleet", 0);
  }

  net_.StartAll();
}

void Cluster::RunFor(SimTime duration) {
  const SimTime end = sim_.Now() + duration;
  if (tick_hooks_.empty()) {
    sim_.RunUntil(end);
    return;
  }
  for (;;) {
    SimTime next = end;
    for (const TickHook& hook : tick_hooks_) {
      next = std::min(next, hook.next_due);
    }
    sim_.RunUntil(next);
    for (TickHook& hook : tick_hooks_) {
      if (hook.next_due <= sim_.Now()) {
        hook.next_due += hook.period;
        hook.fn();
      }
    }
    if (sim_.Now() >= end) {
      break;
    }
  }
}

void Cluster::AddTickHook(SimTime period, std::function<void()> hook) {
  if (period <= 0) {
    period = kMillisecond;
  }
  tick_hooks_.push_back(TickHook{period, sim_.Now() + period, std::move(hook)});
}

int Cluster::shard_of_master(NodeId master) const {
  auto it = shard_of_master_.find(master);
  return it == shard_of_master_.end() ? 0 : it->second;
}

bool Cluster::ExcludedByAnyMaster(NodeId slave) const {
  for (const auto& m : masters_) {
    if (m->IsExcluded(slave)) {
      return true;
    }
  }
  return false;
}

void Cluster::OnClientAccept(int client_index, const Query& query,
                             const Pledge& pledge, const QueryResult& result) {
  AcceptedRead record;
  record.client_index = client_index;
  record.slave = pledge.slave;
  record.version = pledge.token.content_version;
  record.token_timestamp = pledge.token.timestamp;
  record.accepted_at = sim_.Now();
  if (config_.track_ground_truth) {
    ValidateAcceptedRead(query, record.version, result,
                         shard_of_master(pledge.token.master), &record);
  }
  if (on_accepted_read) {
    on_accepted_read(record);
  }
}

void Cluster::ValidateAcceptedRead(const Query& query, uint64_t version,
                                   const QueryResult& result, int shard,
                                   AcceptedRead* record) {
  // Prefer a live master's full op log; fall back to the auditor's (which
  // prunes closed versions). Versions are per shard, so only the owning
  // shard's servers are consulted (= all of them in classic runs).
  const OpLog* log = nullptr;
  const int M = masters_per_shard();
  for (int i = shard * M; i < (shard + 1) * M; ++i) {
    const auto& m = masters_[i];
    if (m->up() && m->oplog().head_version() >= version) {
      log = &m->oplog();
      break;
    }
  }
  const auto& auditor = auditors_[shard * auditors_per_shard()];
  if (log == nullptr && auditor->oplog().head_version() >= version) {
    log = &auditor->oplog();
  }
  if (log == nullptr) {
    ++accepted_uncheckable_;
    return;
  }
  auto at_version = log->MaterializeAt(version);
  if (!at_version.ok()) {
    ++accepted_uncheckable_;
    return;
  }
  auto outcome = truth_executor_.Execute(*at_version, query);
  if (!outcome.ok()) {
    ++accepted_uncheckable_;
    return;
  }
  ++accepted_checked_;
  record->checked = true;
  if (!(outcome->result == result)) {
    ++accepted_wrong_;
    record->wrong = true;
  }
}

Cluster::Totals Cluster::ComputeTotals() const {
  Totals t;
  for (const auto& c : clients_) {
    const ClientMetrics& m = c->metrics();
    t.reads_issued += m.reads_issued;
    t.reads_accepted += m.reads_accepted;
    t.reads_rejected_stale += m.reads_rejected_stale;
    t.retries += m.retries;
    t.double_checks_sent += m.double_checks_sent;
    t.double_check_mismatches += m.double_check_mismatches;
    t.pledges_forwarded += m.pledges_forwarded;
    t.writes_committed_clients += m.writes_committed;
    t.forks_detected += m.forks_detected;
    t.evidence_chains_emitted += m.evidence_chains_emitted;
    t.vv_exchanges += m.vv_exchanges_sent;
    t.placement_cache_hits += m.placement_cache_hits;
    t.placement_cache_misses += m.placement_cache_misses;
    t.multi_shard_reads += m.multi_shard_reads;
    t.multi_shard_writes += m.multi_shard_writes;
    t.shard_subreads_issued += m.shard_subreads_issued;
    t.shard_subreads_accepted += m.shard_subreads_accepted;
    t.shard_subwrites_committed += m.shard_subwrites_committed;
  }
  for (const auto& s : slaves_) {
    t.slave_work_units += s->metrics().work_units_executed;
    t.lies_told += s->metrics().lies_told;
    t.state_update_batches += s->metrics().state_update_batches_received;
  }
  for (const auto& m : masters_) {
    t.master_work_units += m->metrics().work_units_executed;
    t.slaves_excluded += m->metrics().slaves_excluded;
    t.writes_committed_masters += m->metrics().writes_committed;
    t.writes_batched += m->metrics().writes_batched;
    t.batches_committed += m->metrics().batches_committed;
    t.commit_signatures += m->metrics().commit_signatures;
  }
  for (const auto& a : auditors_) {
    t.auditor_work_units += a->metrics().work_units_executed;
    t.auditor_mismatches += a->metrics().mismatches_found;
    t.forks_detected += a->metrics().forks_detected;
    t.evidence_chains_emitted += a->metrics().evidence_chains_emitted;
  }
  return t;
}

}  // namespace sdr
