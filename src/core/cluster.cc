#include "src/core/cluster.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "src/util/logging.h"

namespace sdr {

namespace {
// Node ids are precomputed so that Options can reference them before the
// nodes exist; abort loudly if the layout assumption ever breaks.
void CheckId(NodeId got, NodeId expected) {
  if (got != expected) {
    SDR_LOG(kError) << "cluster roster mismatch: got " << got << " expected "
                    << expected;
    std::abort();
  }
}
}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      net_(&sim_, config_.default_link) {
  if (config_.trace.enabled) {
    TraceSink::Options topts;
    topts.capacity = config_.trace.capacity;
    topts.sim_spans = config_.trace.sim_spans;
    trace_sink_ = std::make_unique<TraceSink>(&sim_, topts);
    // Installed before any node starts so the first scheduled event is
    // already observable.
    sim_.set_trace(trace_sink_.get());
  }

  Rng key_rng = sim_.rng().Fork();

  // --- Content owner: content key and identity. ---
  KeyPair content_key = KeyPair::Generate(config_.params.scheme, key_rng);
  Signer owner(content_key);
  content_.scheme = config_.params.scheme;
  content_.content_public_key = content_key.public_key;

  // Node ids are assigned sequentially by AddNode; lay the roster out
  // deterministically: directory, masters, auditor, slaves, clients.
  const NodeId directory_id = 1;
  std::vector<NodeId> master_ids;
  for (int i = 0; i < config_.num_masters; ++i) {
    master_ids.push_back(static_cast<NodeId>(2 + i));
  }
  std::vector<NodeId> auditor_ids;
  for (int i = 0; i < std::max(1, config_.num_auditors); ++i) {
    auditor_ids.push_back(static_cast<NodeId>(2 + config_.num_masters + i));
  }

  std::vector<NodeId> group = master_ids;
  for (NodeId a : auditor_ids) {
    group.push_back(a);
  }

  // --- Keys and certificates. ---
  std::vector<KeyPair> master_keys;
  std::map<NodeId, Bytes> master_key_map;
  std::vector<Certificate> master_certs;
  for (int i = 0; i < config_.num_masters; ++i) {
    master_keys.push_back(KeyPair::Generate(config_.params.scheme, key_rng));
    master_key_map[master_ids[i]] = master_keys.back().public_key;
    master_certs.push_back(IssueCertificate(
        owner, master_ids[i], Role::kMaster, master_keys.back().public_key));
  }
  std::vector<KeyPair> auditor_keys;
  for (size_t i = 0; i < auditor_ids.size(); ++i) {
    auditor_keys.push_back(KeyPair::Generate(config_.params.scheme, key_rng));
  }

  // --- Initial content. ---
  Rng corpus_rng = sim_.rng().Fork();
  DocumentStore base = BuildCatalogCorpus(config_.corpus, corpus_rng);

  // Names the node in trace exports; no-op when tracing is off.
  auto register_node = [this](NodeId id, TraceRole role, const char* kind,
                              int index) {
    if (trace_sink_ != nullptr) {
      trace_sink_->RegisterNode(id, role,
                                std::string(kind) + " " + std::to_string(index));
    }
  };

  // --- Directory. ---
  directory_ = std::make_unique<Directory>();
  NodeId got = net_.AddNode(directory_.get());
  CheckId(got, directory_id);
  register_node(got, TraceRole::kDirectory, "directory", 0);
  directory_->Publish(content_.content_public_key, master_certs);

  // --- Masters. ---
  for (int i = 0; i < config_.num_masters; ++i) {
    Master::Options opts;
    opts.params = config_.params;
    opts.cost = config_.cost;
    opts.key_pair = master_keys[i];
    opts.content = content_;
    opts.group = group;
    opts.auditors = auditor_ids;
    opts.master_keys = master_key_map;
    opts.snapshot_interval = config_.snapshot_interval;
    opts.broadcast = config_.broadcast;
    masters_.push_back(std::make_unique<Master>(std::move(opts)));
    got = net_.AddNode(masters_.back().get());
    CheckId(got, master_ids[i]);
    register_node(got, TraceRole::kMaster, "master", i);
    masters_.back()->SetBaseContent(base);
  }

  // --- Auditors (the elected trusted servers without slave sets). ---
  for (size_t i = 0; i < auditor_ids.size(); ++i) {
    Auditor::Options opts;
    opts.params = config_.params;
    opts.cost = config_.cost;
    opts.key_pair = auditor_keys[i];
    opts.group = group;
    opts.master_keys = master_key_map;
    opts.master_certs = master_certs;
    opts.snapshot_interval = config_.snapshot_interval;
    opts.broadcast = config_.broadcast;
    opts.use_result_cache = config_.auditor_use_cache;
    opts.audit_jobs = config_.audit_jobs;
    auditors_.push_back(std::make_unique<Auditor>(std::move(opts)));
    got = net_.AddNode(auditors_.back().get());
    CheckId(got, auditor_ids[i]);
    register_node(got, TraceRole::kAuditor, "auditor", static_cast<int>(i));
    auditors_.back()->SetBaseContent(base);
    auditors_.back()->on_evidence = [this](const EvidenceChain& chain) {
      fork_evidence_.push_back(chain);
    };
  }

  // --- Slaves. ---
  int slave_index = 0;
  for (int m = 0; m < config_.num_masters; ++m) {
    Signer master_signer(master_keys[m]);
    for (int s = 0; s < config_.slaves_per_master; ++s, ++slave_index) {
      Slave::Options opts;
      opts.params = config_.params;
      opts.cost = config_.cost;
      opts.key_pair = KeyPair::Generate(config_.params.scheme, key_rng);
      opts.master_keys = master_key_map;
      opts.rng_seed = config_.seed * 1000003 + slave_index;
      if (config_.slave_behavior) {
        opts.behavior = config_.slave_behavior(slave_index);
      }
      slaves_.push_back(std::make_unique<Slave>(std::move(opts)));
      NodeId sid = net_.AddNode(slaves_.back().get());
      register_node(sid, TraceRole::kSlave, "slave", slave_index);
      slaves_.back()->SetBaseContent(base);
      masters_[m]->AddSlave(IssueCertificate(master_signer, sid, Role::kSlave,
                                             slaves_.back()->public_key()));
    }
  }

  // --- Clients. ---
  // Client ids follow the slaves in the roster; precompute them so every
  // client knows its gossip peers before any node exists.
  std::vector<NodeId> client_ids;
  {
    NodeId first_client =
        static_cast<NodeId>(2 + config_.num_masters + auditor_ids.size() +
                            config_.num_masters * config_.slaves_per_master);
    for (int c = 0; c < config_.num_clients; ++c) {
      client_ids.push_back(first_client + static_cast<NodeId>(c));
    }
  }
  for (int c = 0; c < config_.num_clients; ++c) {
    Client::Options opts;
    opts.params = config_.params;
    opts.content = content_;
    opts.directory = directory_id;
    opts.mode = config_.client_mode;
    opts.think_time = config_.client_think_time;
    opts.reads_per_second = config_.client_reads_per_second;
    opts.rate_multiplier = config_.client_rate_multiplier;
    opts.write_fraction = config_.client_write_fraction;
    opts.rng_seed = config_.seed * 7919 + c;
    QueryMix mix = config_.mix;
    mix.n_items = config_.corpus.n_items;
    opts.query_source = [mix](Rng& rng) { return mix.Generate(rng); };
    WriteGen write_gen = config_.write_gen;
    write_gen.n_items = config_.corpus.n_items;
    opts.write_source = [write_gen](Rng& rng) {
      return write_gen.Generate(rng);
    };
    opts.peer_clients = client_ids;
    if (config_.tweak_client) {
      config_.tweak_client(c, opts);
    }
    clients_.push_back(std::make_unique<Client>(std::move(opts)));
    NodeId cid = net_.AddNode(clients_.back().get());
    CheckId(cid, client_ids[c]);
    register_node(cid, TraceRole::kClient, "client", c);
    clients_.back()->on_evidence = [this](const EvidenceChain& chain) {
      fork_evidence_.push_back(chain);
    };
    clients_.back()->on_accept = [this, c](const Query& query,
                                           const Pledge& pledge,
                                           const QueryResult& result) {
      OnClientAccept(c, query, pledge, result);
    };
  }

  net_.StartAll();
}

void Cluster::RunFor(SimTime duration) {
  const SimTime end = sim_.Now() + duration;
  if (tick_hooks_.empty()) {
    sim_.RunUntil(end);
    return;
  }
  for (;;) {
    SimTime next = end;
    for (const TickHook& hook : tick_hooks_) {
      next = std::min(next, hook.next_due);
    }
    sim_.RunUntil(next);
    for (TickHook& hook : tick_hooks_) {
      if (hook.next_due <= sim_.Now()) {
        hook.next_due += hook.period;
        hook.fn();
      }
    }
    if (sim_.Now() >= end) {
      break;
    }
  }
}

void Cluster::AddTickHook(SimTime period, std::function<void()> hook) {
  if (period <= 0) {
    period = kMillisecond;
  }
  tick_hooks_.push_back(TickHook{period, sim_.Now() + period, std::move(hook)});
}

bool Cluster::ExcludedByAnyMaster(NodeId slave) const {
  for (const auto& m : masters_) {
    if (m->IsExcluded(slave)) {
      return true;
    }
  }
  return false;
}

void Cluster::OnClientAccept(int client_index, const Query& query,
                             const Pledge& pledge, const QueryResult& result) {
  AcceptedRead record;
  record.client_index = client_index;
  record.slave = pledge.slave;
  record.version = pledge.token.content_version;
  record.token_timestamp = pledge.token.timestamp;
  record.accepted_at = sim_.Now();
  if (config_.track_ground_truth) {
    ValidateAcceptedRead(query, record.version, result, &record);
  }
  if (on_accepted_read) {
    on_accepted_read(record);
  }
}

void Cluster::ValidateAcceptedRead(const Query& query, uint64_t version,
                                   const QueryResult& result,
                                   AcceptedRead* record) {
  // Prefer a live master's full op log; fall back to the auditor's (which
  // prunes closed versions).
  const OpLog* log = nullptr;
  for (const auto& m : masters_) {
    if (m->up() && m->oplog().head_version() >= version) {
      log = &m->oplog();
      break;
    }
  }
  if (log == nullptr && auditors_[0]->oplog().head_version() >= version) {
    log = &auditors_[0]->oplog();
  }
  if (log == nullptr) {
    ++accepted_uncheckable_;
    return;
  }
  auto at_version = log->MaterializeAt(version);
  if (!at_version.ok()) {
    ++accepted_uncheckable_;
    return;
  }
  auto outcome = truth_executor_.Execute(*at_version, query);
  if (!outcome.ok()) {
    ++accepted_uncheckable_;
    return;
  }
  ++accepted_checked_;
  record->checked = true;
  if (!(outcome->result == result)) {
    ++accepted_wrong_;
    record->wrong = true;
  }
}

Cluster::Totals Cluster::ComputeTotals() const {
  Totals t;
  for (const auto& c : clients_) {
    const ClientMetrics& m = c->metrics();
    t.reads_issued += m.reads_issued;
    t.reads_accepted += m.reads_accepted;
    t.reads_rejected_stale += m.reads_rejected_stale;
    t.retries += m.retries;
    t.double_checks_sent += m.double_checks_sent;
    t.double_check_mismatches += m.double_check_mismatches;
    t.pledges_forwarded += m.pledges_forwarded;
    t.writes_committed_clients += m.writes_committed;
    t.forks_detected += m.forks_detected;
    t.evidence_chains_emitted += m.evidence_chains_emitted;
    t.vv_exchanges += m.vv_exchanges_sent;
  }
  for (const auto& s : slaves_) {
    t.slave_work_units += s->metrics().work_units_executed;
    t.lies_told += s->metrics().lies_told;
  }
  for (const auto& m : masters_) {
    t.master_work_units += m->metrics().work_units_executed;
    t.slaves_excluded += m->metrics().slaves_excluded;
  }
  for (const auto& a : auditors_) {
    t.auditor_work_units += a->metrics().work_units_executed;
    t.auditor_mismatches += a->metrics().mismatches_found;
    t.forks_detected += a->metrics().forks_detected;
    t.evidence_chains_emitted += a->metrics().evidence_chains_emitted;
  }
  return t;
}

}  // namespace sdr
