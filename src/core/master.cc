#include "src/core/master.h"

#include <algorithm>

#include "src/crypto/sha1.h"
#include "src/trace/trace.h"
#include "src/util/logging.h"

namespace sdr {

Master::Master(Options options)
    : options_(std::move(options)),
      signer_(options_.key_pair),
      rng_(options_.key_pair.public_key.empty()
               ? 1
               : static_cast<uint64_t>(options_.key_pair.public_key[0]) + 1),
      oplog_(options_.snapshot_interval),
      last_commit_time_(0) {}

void Master::Start() {
  queue_ = std::make_unique<ServiceQueue>(env(), options_.cost.master_speed);
  queue_->BindTrace(TraceRole::kMaster, id());
  rng_ = env()->rng().Fork();

  TotalOrderBroadcast::Config bc = options_.broadcast;
  bc.group = options_.group;
  broadcast_ = std::make_unique<TotalOrderBroadcast>(
      env(), this, bc,
      [this](NodeId to, const Bytes& payload) {
        env()->Send(to,
                    WithType(MsgType::kBroadcastEnvelope, payload));
      },
      [this](uint64_t seq, NodeId origin, const Bytes& payload) {
        OnDelivered(seq, origin, payload);
      });
  broadcast_->Start();

  // Allow the very first write to commit immediately.
  last_commit_time_ = env()->Now() - options_.params.max_latency;

  for (NodeId peer : options_.group) {
    if (peer != id()) {
      peer_last_gossip_[peer] = env()->Now();
    }
  }

  SendKeepAlives();
  GossipTick();
}

void Master::AddSlave(const Certificate& cert) {
  my_slaves_[cert.subject] = SlaveState{cert, 0};
  slave_owner_[cert.subject] = id();
  known_slave_certs_[cert.subject] = cert;
}

void Master::SetBaseContent(const DocumentStore& base) {
  oplog_.SetBaseSnapshot(base);
}

VersionToken Master::CurrentToken() {
  return MakeVersionToken(signer_, id(), oplog_.head_version(), env()->Now());
}

void Master::HandleMessage(NodeId from, const Payload& payload) {
  auto type = PeekType(payload);
  if (!type.ok()) {
    return;
  }
  BytesView body = BytesView(payload).substr(1);
  switch (*type) {
    case MsgType::kClientHello:
      HandleClientHello(from, body);
      break;
    case MsgType::kWriteRequest:
      HandleWriteRequest(from, body);
      break;
    case MsgType::kDoubleCheckRequest:
      HandleDoubleCheck(from, body);
      break;
    case MsgType::kAccusation:
      HandleAccusation(from, body);
      break;
    case MsgType::kForkEvidence:
      HandleForkEvidence(from, body);
      break;
    case MsgType::kSlaveAck:
      HandleSlaveAck(from, body);
      break;
    case MsgType::kBroadcastEnvelope:
      broadcast_->OnMessage(from, body);
      break;
    // Not addressed to a master; ignored by design.
    case MsgType::kDirectoryLookup:
    case MsgType::kDirectoryLookupReply:
    case MsgType::kClientHelloReply:
    case MsgType::kReadRequest:
    case MsgType::kReadReply:
    case MsgType::kWriteReply:
    case MsgType::kDoubleCheckReply:
    case MsgType::kReassignment:
    case MsgType::kStateUpdate:
    case MsgType::kKeepAlive:
    case MsgType::kAuditSubmit:
    case MsgType::kBadReadNotice:
    case MsgType::kVvExchange:
    case MsgType::kPlacementQuery:
    case MsgType::kPlacementReply:
    case MsgType::kStateUpdateBatch:
      break;
  }
}

// ---------------------------------------------------------------------------
// Client setup (Section 2, setup phase).
// ---------------------------------------------------------------------------

NodeId Master::PickSlaveFor(NodeId client) {
  (void)client;
  // Least-loaded live slave; the paper suggests "the one closest to the
  // client", which in the simulator degenerates to load balancing.
  NodeId best = kInvalidNode;
  size_t best_load = SIZE_MAX;
  for (const auto& [slave_id, state] : my_slaves_) {
    if (excluded_.count(slave_id) > 0) {
      continue;
    }
    size_t load = 0;
    for (const auto& [c, s] : client_slave_) {
      if (s == slave_id) {
        ++load;
      }
    }
    if (load < best_load) {
      best_load = load;
      best = slave_id;
    }
  }
  return best;
}

void Master::HandleClientHello(NodeId from, BytesView body) {
  auto msg = ClientHello::Decode(body);
  if (!msg.ok()) {
    return;
  }
  NodeId slave = PickSlaveFor(from);
  if (slave == kInvalidNode) {
    // No live slaves; silence makes the client retry elsewhere.
    return;
  }
  client_slave_[from] = slave;

  ClientHelloReply reply;
  reply.server_nonce = rng_.NextBytes(16);
  reply.slave_cert = my_slaves_[slave].cert;
  reply.auditor = AuditorFor(slave);
  reply.signature = signer_.Sign(reply.SignedBody(msg->client_nonce));
  env()->Send(from,
              WithType(MsgType::kClientHelloReply, reply.Encode()));
}

// ---------------------------------------------------------------------------
// Write protocol (Section 3.1).
// ---------------------------------------------------------------------------

void Master::HandleWriteRequest(NodeId from, BytesView body) {
  auto msg = WriteRequest::Decode(body);
  if (!msg.ok()) {
    return;
  }
  ++metrics_.writes_received;
  if (!options_.writers.empty() && options_.writers.count(from) == 0) {
    ++metrics_.writes_denied_acl;
    WriteReply reply;
    reply.request_id = msg->request_id;
    reply.ok = false;
    reply.error_code = static_cast<uint8_t>(ErrorCode::kPermissionDenied);
    env()->Send(from,
                WithType(MsgType::kWriteReply, reply.Encode()));
    return;
  }
  auto key = std::make_pair(from, msg->request_id);
  auto done = committed_writes_.find(key);
  if (done != committed_writes_.end()) {
    // Retried request that already committed: resend the reply.
    WriteReply reply;
    reply.request_id = msg->request_id;
    reply.ok = true;
    reply.committed_version = done->second;
    env()->Send(from,
                WithType(MsgType::kWriteReply, reply.Encode()));
    return;
  }
  if (!pending_writes_.insert(key).second) {
    return;  // already in flight through the broadcast
  }
  TobWrite write;
  write.origin_master = id();
  write.client = from;
  write.request_id = msg->request_id;
  write.batch = std::move(msg->batch);
  if (!batching()) {
    broadcast_->Broadcast(WithTobType(TobPayloadType::kWrite, write.Encode()));
    return;
  }
  bundle_.push_back(std::move(write));
  if (bundle_.size() >= options_.params.commit_batch) {
    FlushBundle();
  } else if (!bundle_timer_armed_) {
    bundle_timer_armed_ = true;
    env()->ScheduleAfter(options_.params.commit_window, [this] {
      bundle_timer_armed_ = false;
      FlushBundle();
    });
  }
}

void Master::FlushBundle() {
  if (bundle_.empty()) {
    return;
  }
  if (bundle_.size() == 1) {
    // A lone write (window expired before a second arrived) needs no
    // bundle framing; it commits on the paper's per-write path.
    broadcast_->Broadcast(
        WithTobType(TobPayloadType::kWrite, bundle_[0].Encode()));
    bundle_.clear();
    return;
  }
  TobWriteBundle bundle;
  bundle.writes = std::move(bundle_);
  bundle_.clear();
  metrics_.writes_batched += bundle.writes.size();
  broadcast_->Broadcast(
      WithTobType(TobPayloadType::kWriteBundle, bundle.Encode()));
}

void Master::OnDelivered(uint64_t /*seq*/, NodeId /*origin*/,
                         const Bytes& payload) {
  auto type = PeekTobType(payload);
  if (!type.ok()) {
    return;
  }
  BytesView body = BytesView(payload).substr(1);
  switch (*type) {
    case TobPayloadType::kWrite: {
      auto write = TobWrite::Decode(body);
      if (write.ok()) {
        OnTobWrite(*write);
      }
      break;
    }
    case TobPayloadType::kGossip: {
      auto gossip = TobGossip::Decode(body);
      if (gossip.ok()) {
        OnTobGossip(*gossip);
      }
      break;
    }
    case TobPayloadType::kWriteBundle: {
      auto bundle = TobWriteBundle::Decode(body);
      if (bundle.ok()) {
        OnTobWriteBundle(std::move(*bundle));
      }
      break;
    }
  }
}

void Master::OnTobWrite(const TobWrite& write) {
  commit_queue_.push_back(CommitUnit{{write}});
  PumpCommitQueue();
}

void Master::OnTobWriteBundle(TobWriteBundle bundle) {
  if (bundle.writes.empty()) {
    return;
  }
  commit_queue_.push_back(CommitUnit{std::move(bundle.writes)});
  PumpCommitQueue();
}

void Master::PumpCommitQueue() {
  if (commit_queue_.empty() || commit_timer_armed_) {
    return;
  }
  SimTime earliest = last_commit_time_ + options_.params.max_latency;
  if (env()->Now() >= earliest) {
    CommitUnit unit = std::move(commit_queue_.front());
    commit_queue_.pop_front();
    if (unit.writes.size() == 1) {
      CommitWrite(unit.writes[0]);
    } else {
      CommitBundle(unit.writes);
    }
    PumpCommitQueue();
    return;
  }
  commit_timer_armed_ = true;
  env()->ScheduleAt(earliest, [this] {
    commit_timer_armed_ = false;
    PumpCommitQueue();
  });
}

void Master::CommitWrite(const TobWrite& write) {
  uint64_t version = oplog_.head_version() + 1;
  metrics_.work_units_executed += write.batch.size();
  oplog_.Append(version, write.batch);
  last_commit_time_ = env()->Now();
  ++metrics_.writes_committed;
  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kMaster, id(), "write.commit", kNoTrace,
               static_cast<int64_t>(version));
  }

  if (write.origin_master == id()) {
    pending_writes_.erase({write.client, write.request_id});
    committed_writes_[{write.client, write.request_id}] = version;
    WriteReply reply;
    reply.request_id = write.request_id;
    reply.ok = true;
    reply.committed_version = version;
    env()->Send(write.client,
                WithType(MsgType::kWriteReply, reply.Encode()));
  }

  // Lazy state propagation: updates go out only after the commit.
  for (const auto& [slave_id, state] : my_slaves_) {
    PushStateUpdate(slave_id, version);
  }
}

void Master::CommitBundle(const std::vector<TobWrite>& writes) {
  uint64_t first_version = oplog_.head_version() + 1;
  uint64_t version = first_version;
  for (const TobWrite& write : writes) {
    metrics_.work_units_executed += write.batch.size();
    oplog_.Append(version, write.batch);
    ++metrics_.writes_committed;
    if (TraceSink* t = env()->trace()) {
      t->Instant(TraceRole::kMaster, id(), "write.commit", kNoTrace,
                 static_cast<int64_t>(version));
    }
    if (write.origin_master == id()) {
      pending_writes_.erase({write.client, write.request_id});
      committed_writes_[{write.client, write.request_id}] = version;
      WriteReply reply;
      reply.request_id = write.request_id;
      reply.ok = true;
      reply.committed_version = version;
      env()->Send(write.client,
                  WithType(MsgType::kWriteReply, reply.Encode()));
    }
    ++version;
  }
  uint64_t last_version = version - 1;
  last_commit_time_ = env()->Now();
  ++metrics_.batches_committed;

  // One token plus one certificate cover the whole run — the signing cost
  // the bundle amortizes (vs one token signature per slave per write).
  StateUpdateBatch update;
  update.first_version = first_version;
  update.batches.reserve(writes.size());
  Sha1 digest;
  for (uint64_t v = first_version; v <= last_version; ++v) {
    const WriteBatch* batch = oplog_.BatchFor(v);
    Writer w;
    EncodeBatch(w, *batch);
    digest.Update(w.Take());
    update.batches.push_back(*batch);
  }
  update.token = CurrentToken();
  ++metrics_.commit_signatures;
  update.commit = MakeBatchCommit(signer_, id(), first_version, last_version,
                                  digest.Final(), env()->Now());
  ++metrics_.commit_signatures;

  // One shared buffer for the whole fan-out, like the keep-alive path.
  Payload wire = WithType(MsgType::kStateUpdateBatch, update.Encode());
  for (auto& [slave_id, state] : my_slaves_) {
    ++metrics_.state_update_batches_sent;
    state.sent_version = std::max(state.sent_version, last_version);
    state.sent_time = env()->Now();
    env()->Send(slave_id, wire);
  }
}

void Master::PushStateUpdate(NodeId slave, uint64_t version) {
  const WriteBatch* batch = oplog_.BatchFor(version);
  if (batch == nullptr) {
    return;
  }
  auto it = my_slaves_.find(slave);
  if (it != my_slaves_.end()) {
    it->second.sent_version = std::max(it->second.sent_version, version);
    it->second.sent_time = env()->Now();
  }
  StateUpdate update;
  update.version = version;
  update.batch = *batch;
  update.token = CurrentToken();
  ++metrics_.commit_signatures;
  ++metrics_.state_updates_sent;
  env()->Send(slave,
              WithType(MsgType::kStateUpdate, update.Encode()));
}

void Master::HandleSlaveAck(NodeId from, BytesView body) {
  auto msg = SlaveAck::Decode(body);
  if (!msg.ok()) {
    return;
  }
  auto it = my_slaves_.find(from);
  if (it == my_slaves_.end()) {
    return;
  }
  it->second.acked_version = msg->applied_version;
  // Catch-up: push missing versions (bounded per ack; acks ratchet).
  uint64_t head = oplog_.head_version();
  uint64_t next = msg->applied_version + 1;
  if (options_.dedup_catchup_pushes && next <= it->second.sent_version &&
      env()->Now() - it->second.sent_time <
          options_.params.keepalive_period) {
    // Everything missing is already in flight — typically a state-update
    // batch waiting behind the slave's read queue — and re-signing it per
    // version here defeats group commit's amortization. A genuinely lost
    // update is re-pushed once the slave's acks have stalled for a
    // keepalive period.
    return;
  }
  for (int i = 0; i < 8 && next <= head; ++i, ++next) {
    PushStateUpdate(from, next);
  }
}

void Master::SendKeepAlives() {
  env()->ScheduleAfter(options_.params.keepalive_period,
                       [this] { SendKeepAlives(); });
  if (!up()) {
    return;
  }
  KeepAlive msg;
  msg.token = CurrentToken();
  // One shared buffer for the whole fan-out: each Send bumps a refcount.
  Payload wire = WithType(MsgType::kKeepAlive, msg.Encode());
  for (const auto& [slave_id, state] : my_slaves_) {
    ++metrics_.keepalives_sent;
    env()->Send(slave_id, wire);
  }
}

// ---------------------------------------------------------------------------
// Gossip and master-crash recovery (Section 3).
// ---------------------------------------------------------------------------

void Master::GossipTick() {
  env()->ScheduleAfter(options_.params.gossip_period, [this] { GossipTick(); });
  if (!up()) {
    return;
  }
  TobGossip gossip;
  gossip.master = id();
  for (const auto& [slave_id, state] : my_slaves_) {
    gossip.slave_certs.push_back(state.cert);
  }
  broadcast_->Broadcast(
      WithTobType(TobPayloadType::kGossip, gossip.Encode()));
  CheckPeerLiveness();
}

void Master::OnTobGossip(const TobGossip& gossip) {
  peer_last_gossip_[gossip.master] = env()->Now();
  if (dead_masters_.count(gossip.master) > 0) {
    // Peer resurrected: yield back the slaves we adopted from it.
    dead_masters_.erase(gossip.master);
    std::vector<NodeId> to_yield;
    for (const auto& [slave_id, state] : my_slaves_) {
      if (state.adopted_from == gossip.master) {
        to_yield.push_back(slave_id);
      }
    }
    for (NodeId slave_id : to_yield) {
      RemoveSlaveAndReassignClients(slave_id, /*excluded=*/false);
    }
  }
  if (gossip.master == id()) {
    return;
  }
  for (const Certificate& cert : gossip.slave_certs) {
    if (my_slaves_.count(cert.subject) > 0 &&
        my_slaves_[cert.subject].adopted_from != gossip.master) {
      continue;  // a slave of ours; the gossiper is stale
    }
    slave_owner_[cert.subject] = gossip.master;
    known_slave_certs_[cert.subject] = cert;
  }
}

void Master::CheckPeerLiveness() {
  for (const auto& [peer, last] : peer_last_gossip_) {
    if (dead_masters_.count(peer) > 0) {
      continue;
    }
    if (env()->Now() - last > options_.params.master_failure_timeout) {
      dead_masters_.insert(peer);
      SDR_LOG(kInfo) << "master " << id() << ": presumes master " << peer
                     << " crashed, dividing its slave set";
      AdoptOrphanedSlaves(peer);
    }
  }
}

NodeId Master::AuditorFor(NodeId slave) const {
  if (options_.auditors.empty()) {
    return kInvalidNode;
  }
  return options_.auditors[slave % options_.auditors.size()];
}

void Master::AdoptOrphanedSlaves(NodeId dead_master) {
  // Survivors split the dead master's slaves deterministically: every
  // survivor computes the same assignment from the shared gossip view.
  std::vector<NodeId> survivors;
  for (NodeId m : options_.group) {
    bool is_auditor = false;
    for (NodeId a : options_.auditors) {
      if (a == m) {
        is_auditor = true;
      }
    }
    if (!is_auditor && dead_masters_.count(m) == 0) {
      survivors.push_back(m);
    }
  }
  std::sort(survivors.begin(), survivors.end());
  if (survivors.empty()) {
    return;
  }
  std::vector<NodeId> orphans;
  for (const auto& [slave_id, owner] : slave_owner_) {
    if (owner == dead_master && excluded_.count(slave_id) == 0) {
      orphans.push_back(slave_id);
    }
  }
  std::sort(orphans.begin(), orphans.end());
  bool adopted_any = false;
  for (size_t i = 0; i < orphans.size(); ++i) {
    NodeId heir = survivors[i % survivors.size()];
    slave_owner_[orphans[i]] = heir;
    if (heir != id()) {
      continue;
    }
    const Certificate& old_cert = known_slave_certs_[orphans[i]];
    // Re-certify under our key so clients we assign it to can verify.
    Certificate cert = IssueCertificate(signer_, orphans[i], Role::kSlave,
                                        old_cert.subject_public_key);
    known_slave_certs_[orphans[i]] = cert;
    SlaveState state;
    state.cert = cert;
    state.adopted_from = dead_master;
    my_slaves_[orphans[i]] = state;
    adopted_any = true;
    // Wake the adopted slave: keep-alive + ack-driven catch-up.
    KeepAlive ka;
    ka.token = CurrentToken();
    env()->Send(orphans[i],
                WithType(MsgType::kKeepAlive, ka.Encode()));
  }
  if (adopted_any) {
    ++metrics_.slave_sets_adopted;
  }
}

// ---------------------------------------------------------------------------
// Probabilistic checking (Section 3.3).
// ---------------------------------------------------------------------------

bool Master::AllowDoubleCheck(NodeId client) {
  if (!options_.params.greedy_policing_enabled) {
    return true;
  }
  Bucket& bucket = greedy_buckets_[client];
  SimTime now = env()->Now();
  if (bucket.last_refill == 0) {
    bucket.tokens = options_.params.greedy_burst;
  } else {
    double elapsed_s =
        static_cast<double>(now - bucket.last_refill) / kSecond;
    bucket.tokens =
        std::min(options_.params.greedy_burst,
                 bucket.tokens +
                     elapsed_s * options_.params.greedy_refill_per_second);
  }
  bucket.last_refill = now;
  if (bucket.tokens < 1.0) {
    return false;
  }
  bucket.tokens -= 1.0;
  return true;
}

void Master::HandleDoubleCheck(NodeId from, BytesView body) {
  auto msg = DoubleCheckRequest::Decode(body);
  if (!msg.ok()) {
    return;
  }
  DoubleCheckReply reply;
  reply.request_id = msg->request_id;
  reply.trace_id = msg->trace_id;

  if (!AllowDoubleCheck(from)) {
    ++metrics_.double_checks_throttled;
    reply.served = false;
    env()->Send(from,
                WithType(MsgType::kDoubleCheckReply, reply.Encode()));
    return;
  }

  const Pledge pledge = msg->pledge;
  auto at_version = oplog_.MaterializeAt(pledge.token.content_version);
  if (!at_version.ok()) {
    reply.served = false;
    env()->Send(from,
                WithType(MsgType::kDoubleCheckReply, reply.Encode()));
    return;
  }
  auto outcome = executor_.Execute(*at_version, pledge.query);
  if (!outcome.ok()) {
    reply.served = false;
    env()->Send(from,
                WithType(MsgType::kDoubleCheckReply, reply.Encode()));
    return;
  }
  metrics_.work_units_executed += outcome->cost;
  ++metrics_.double_checks_served;

  Bytes correct_hash = outcome->result.Sha1Digest();
  bool matches = correct_hash == pledge.result_sha1;

  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kMaster, id(), "dc.serve", msg->trace_id,
               matches ? 1 : 0);
  }
  SimTime service_time = options_.cost.ExecuteTime(
      outcome->cost, outcome->result.Encode().size());
  queue_->Enqueue(service_time, [this, from, reply, matches,
                                 result = std::move(outcome->result),
                                 pledge]() mutable {
    reply.served = true;
    reply.matches = matches;
    reply.correct_result = std::move(result);
    env()->Send(from,
                WithType(MsgType::kDoubleCheckReply, reply.Encode()));
    if (!matches) {
      ++metrics_.double_check_lies_found;
      if (TraceSink* t = env()->trace()) {
        t->Instant(TraceRole::kMaster, id(), "dc.lie_found", reply.trace_id,
                   static_cast<int64_t>(pledge.slave));
        t->Hist(TraceRole::kMaster, id(), "detection_latency_us")
            .Record(env()->Now() - pledge.token.timestamp);
      }
      ProcessIncriminatingPledge(pledge, reply.trace_id);
    }
  });
}

// ---------------------------------------------------------------------------
// Corrective action (Section 3.5).
// ---------------------------------------------------------------------------

void Master::HandleAccusation(NodeId /*from*/, BytesView body) {
  auto msg = Accusation::Decode(body);
  if (!msg.ok()) {
    return;
  }
  ++metrics_.accusations_received;
  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kMaster, id(), "accusation.recv", msg->trace_id,
               static_cast<int64_t>(msg->pledge.slave));
  }
  if (ProcessIncriminatingPledge(msg->pledge, msg->trace_id)) {
    ++metrics_.accusations_confirmed;
  } else {
    ++metrics_.accusations_unfounded;
  }
}

void Master::HandleForkEvidence(NodeId /*from*/, BytesView body) {
  if (!options_.params.fork_check_enabled) {
    return;
  }
  auto msg = ForkEvidence::Decode(body);
  if (!msg.ok()) {
    return;
  }
  ++metrics_.fork_evidence_received;
  // The chain is self-contained: it verifies against nothing but the
  // content public key, so a master never has to trust the reporter.
  if (!VerifyEvidenceChain(options_.params.scheme,
                           options_.content.content_public_key, msg->chain)) {
    return;
  }
  ++metrics_.fork_evidence_confirmed;
  NodeId slave = msg->chain.a.vv.slave;
  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kMaster, id(), "fork.confirmed", msg->trace_id,
               static_cast<int64_t>(slave));
  }
  if (!options_.params.exclusion_enabled) {
    return;
  }
  if (my_slaves_.count(slave) > 0) {
    if (excluded_.count(slave) == 0) {
      ExcludeSlave(slave, msg->trace_id);
    }
    return;
  }
  auto owner = slave_owner_.find(slave);
  if (owner != slave_owner_.end() && owner->second != id()) {
    env()->Send(owner->second,
                WithType(MsgType::kForkEvidence, msg->Encode()));
  }
}

bool Master::ProcessIncriminatingPledge(const Pledge& pledge,
                                        uint64_t trace_id) {
  // 1. The pledge must really be signed by the slave — otherwise anyone
  //    could frame an innocent server.
  auto cert_it = known_slave_certs_.find(pledge.slave);
  if (cert_it == known_slave_certs_.end()) {
    return false;
  }
  if (!VerifyPledgeSignature(options_.params.scheme,
                             cert_it->second.subject_public_key, pledge,
                             &verify_cache_)) {
    return false;
  }
  // 2. The embedded version token must be genuine — otherwise the "wrong"
  //    answer might just be an answer to a different version.
  auto master_key = options_.master_keys.find(pledge.token.master);
  if (master_key == options_.master_keys.end() ||
      !VerifyVersionToken(options_.params.scheme, master_key->second,
                          pledge.token, &verify_cache_)) {
    return false;
  }
  // 3. Re-execute at the pledged version and compare.
  auto at_version = oplog_.MaterializeAt(pledge.token.content_version);
  if (!at_version.ok()) {
    return false;
  }
  auto outcome = executor_.Execute(*at_version, pledge.query);
  if (!outcome.ok()) {
    return false;
  }
  metrics_.work_units_executed += outcome->cost;
  if (outcome->result.Sha1Digest() == pledge.result_sha1) {
    return false;  // pledge checks out; nothing to punish
  }
  // Guilty. If it is ours, exclude; otherwise hand the proof to its owner.
  if (!options_.params.exclusion_enabled) {
    return true;  // proof confirmed, punishment disabled by configuration
  }
  if (my_slaves_.count(pledge.slave) > 0) {
    if (excluded_.count(pledge.slave) == 0) {
      ExcludeSlave(pledge.slave, trace_id);
    }
    return true;
  }
  auto owner = slave_owner_.find(pledge.slave);
  if (owner != slave_owner_.end() && owner->second != id()) {
    Accusation fwd;
    fwd.trace_id = trace_id;
    fwd.pledge = pledge;
    env()->Send(owner->second,
                WithType(MsgType::kAccusation, fwd.Encode()));
    return true;
  }
  return false;
}

void Master::ExcludeSlave(NodeId slave, uint64_t trace_id) {
  RemoveSlaveAndReassignClients(slave, /*excluded=*/true, trace_id);
}

void Master::RemoveSlaveAndReassignClients(NodeId slave, bool excluded,
                                           uint64_t trace_id) {
  if (excluded) {
    excluded_.insert(slave);
    ++metrics_.slaves_excluded;
    SDR_LOG(kInfo) << "master " << id() << ": excluded slave " << slave;
    if (TraceSink* t = env()->trace()) {
      t->Instant(TraceRole::kMaster, id(), "master.exclude", trace_id,
                 static_cast<int64_t>(slave));
    }
  }
  my_slaves_.erase(slave);

  std::vector<NodeId> affected;
  for (const auto& [client, assigned] : client_slave_) {
    if (assigned == slave) {
      affected.push_back(client);
    }
  }
  for (NodeId client : affected) {
    NodeId replacement = PickSlaveFor(client);
    if (replacement == kInvalidNode) {
      client_slave_.erase(client);
      continue;
    }
    client_slave_[client] = replacement;
    ++metrics_.clients_reassigned;
    if (TraceSink* t = env()->trace()) {
      t->Instant(TraceRole::kMaster, id(), "reassign", trace_id,
                 static_cast<int64_t>(client));
    }
    Reassignment msg;
    msg.new_slave_cert = my_slaves_[replacement].cert;
    msg.auditor = AuditorFor(replacement);
    msg.excluded_slave = excluded ? slave : kInvalidNode;
    msg.trace_id = trace_id;
    msg.signature = signer_.Sign(msg.SignedBody());
    env()->Send(client,
                WithType(MsgType::kReassignment, msg.Encode()));
  }
}

}  // namespace sdr
