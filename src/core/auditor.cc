#include "src/core/auditor.h"

#include "src/trace/trace.h"
#include "src/util/logging.h"

namespace sdr {

Auditor::Auditor(Options options)
    : options_(std::move(options)),
      signer_(options_.key_pair),
      rng_(1),
      oplog_(options_.snapshot_interval),
      executor_(/*cache_regex=*/options_.use_result_cache) {}

void Auditor::Start() {
  queue_ = std::make_unique<ServiceQueue>(env(), options_.cost.auditor_speed);
  queue_->BindTrace(TraceRole::kAuditor, id());
  rng_ = env()->rng().Fork();

  TotalOrderBroadcast::Config bc = options_.broadcast;
  bc.group = options_.group;
  broadcast_ = std::make_unique<TotalOrderBroadcast>(
      env(), this, bc,
      [this](NodeId to, const Bytes& payload) {
        env()->Send(to,
                    WithType(MsgType::kBroadcastEnvelope, payload));
      },
      [this](uint64_t seq, NodeId origin, const Bytes& payload) {
        OnDelivered(seq, origin, payload);
      });
  broadcast_->Start();

  // Liveness gossip (empty slave set — the auditor has none) and periodic
  // finalization checks.
  GossipAndFinalizeTick();
}

void Auditor::GossipAndFinalizeTick() {
  env()->ScheduleAfter(options_.params.gossip_period,
                       [this] { GossipAndFinalizeTick(); });
  if (!up()) {
    return;
  }
  TobGossip gossip;
  gossip.master = id();
  broadcast_->Broadcast(WithTobType(TobPayloadType::kGossip, gossip.Encode()));
  if (!paused_) {
    TryFinalizeVersions();
  }
  metrics_.backlog_depth.Add(static_cast<double>(queue_->depth()));
  metrics_.version_lag.Add(static_cast<double>(version_lag()));
}

void Auditor::SetPaused(bool paused) {
  if (paused_ == paused) {
    return;
  }
  paused_ = paused;
  if (paused_) {
    return;
  }
  // Resume: push the parked pledges through the normal admission path.
  std::deque<PendingPledge> backlog = std::move(paused_backlog_);
  paused_backlog_.clear();
  for (PendingPledge& item : backlog) {
    EnqueueForVerify(std::move(item.pledge), item.submitter, item.trace_id);
  }
  FlushVerifyBatch();
  TryFinalizeVersions();
}

void Auditor::HandleMessage(NodeId from, const Payload& payload) {
  auto type = PeekType(payload);
  if (!type.ok()) {
    return;
  }
  BytesView body = BytesView(payload).substr(1);
  switch (*type) {
    case MsgType::kAuditSubmit:
      HandleAuditSubmit(from, body);
      break;
    case MsgType::kBroadcastEnvelope:
      broadcast_->OnMessage(from, body);
      break;
    // Not addressed to the auditor; ignored by design (R3 wants them named
    // so a new message type forces a decision here).
    case MsgType::kDirectoryLookup:
    case MsgType::kDirectoryLookupReply:
    case MsgType::kClientHello:
    case MsgType::kClientHelloReply:
    case MsgType::kReadRequest:
    case MsgType::kReadReply:
    case MsgType::kWriteRequest:
    case MsgType::kWriteReply:
    case MsgType::kDoubleCheckRequest:
    case MsgType::kDoubleCheckReply:
    case MsgType::kAccusation:
    case MsgType::kReassignment:
    case MsgType::kStateUpdate:
    case MsgType::kKeepAlive:
    case MsgType::kSlaveAck:
    case MsgType::kBadReadNotice:
      break;
  }
}

void Auditor::OnDelivered(uint64_t /*seq*/, NodeId /*origin*/,
                          const Bytes& payload) {
  auto type = PeekTobType(payload);
  if (!type.ok()) {
    return;
  }
  BytesView body = BytesView(payload).substr(1);
  switch (*type) {
    case TobPayloadType::kWrite: {
      auto write = TobWrite::Decode(body);
      if (!write.ok()) {
        return;
      }
      commit_queue_.push_back(std::move(write->batch));
      PumpCommitQueue();
      break;
    }
    case TobPayloadType::kGossip: {
      auto gossip = TobGossip::Decode(body);
      if (!gossip.ok()) {
        return;
      }
      for (const Certificate& cert : gossip->slave_certs) {
        known_slave_certs_[cert.subject] = cert;
        slave_owner_[cert.subject] = gossip->master;
      }
      break;
    }
  }
}

void Auditor::PumpCommitQueue() {
  if (commit_queue_.empty() || commit_timer_armed_) {
    return;
  }
  SimTime earliest = last_commit_time_ + options_.params.max_latency;
  if (env()->Now() >= earliest) {
    uint64_t version = oplog_.head_version() + 1;
    oplog_.Append(version, commit_queue_.front());
    commit_queue_.pop_front();
    last_commit_time_ = env()->Now();
    commit_times_[version] = last_commit_time_;
    // Pledges that were waiting for this version can now be audited.
    std::deque<PendingPledge> still_future;
    while (!future_.empty()) {
      PendingPledge item = std::move(future_.front());
      future_.pop_front();
      if (item.pledge.token.content_version <= oplog_.head_version()) {
        AuditOne(std::move(item.pledge), item.submitter, item.trace_id);
      } else {
        still_future.push_back(std::move(item));
      }
    }
    future_ = std::move(still_future);
    PumpCommitQueue();
    return;
  }
  commit_timer_armed_ = true;
  env()->ScheduleAt(earliest, [this] {
    commit_timer_armed_ = false;
    PumpCommitQueue();
  });
}

void Auditor::HandleAuditSubmit(NodeId from, BytesView body) {
  auto msg = AuditSubmit::Decode(body);
  if (!msg.ok()) {
    return;
  }
  ++metrics_.pledges_received;
  TraceSink* t = env()->trace();
  if (t != nullptr) {
    t->Instant(TraceRole::kAuditor, id(), "audit.recv", msg->trace_id);
  }
  if (options_.params.audit_sample_fraction < 1.0 &&
      !rng_.NextBool(options_.params.audit_sample_fraction)) {
    ++metrics_.pledges_skipped_sampling;
    return;
  }
  if (paused_) {
    if (t != nullptr) {
      t->Instant(TraceRole::kAuditor, id(), "audit.park_paused",
                 msg->trace_id);
    }
    paused_backlog_.push_back(
        PendingPledge{std::move(msg->pledge), from, msg->trace_id});
    return;
  }
  EnqueueForVerify(std::move(msg->pledge), from, msg->trace_id);
}

// Admission stage: buffer the pledge for batched signature verification.
// The pledge counts as in flight from here, so version finalization can
// never overtake a buffered pledge.
void Auditor::EnqueueForVerify(Pledge pledge, NodeId submitter,
                               uint64_t trace_id) {
  ++in_flight_[pledge.token.content_version];
  pending_verify_.push_back(
      PendingPledge{std::move(pledge), submitter, trace_id});
  if (pending_verify_.size() >=
      static_cast<size_t>(options_.params.audit_verify_batch_size)) {
    FlushVerifyBatch();
    return;
  }
  if (!verify_timer_armed_) {
    verify_timer_armed_ = true;
    env()->ScheduleAfter(options_.params.audit_verify_batch_window, [this] {
      verify_timer_armed_ = false;
      FlushVerifyBatch();
    });
  }
}

// Verifies the buffered pledges' signatures (slave over the pledge body,
// master over the embedded token) in one batch through the verify cache,
// then routes survivors onward. Pledges whose slave certificate has not
// been gossiped yet pass through unverified — exactly the pre-batching
// behaviour, where the signature was only checked before accusing — and
// the mismatch path re-checks (a cache hit for everything verified here).
void Auditor::FlushVerifyBatch() {
  if (pending_verify_.empty()) {
    return;
  }
  std::deque<PendingPledge> batch = std::move(pending_verify_);
  pending_verify_.clear();

  // item index pairs per verifiable pledge: [slave sig, token sig].
  std::vector<VerifyItem> items;
  std::vector<int> first_item(batch.size(), -1);
  for (size_t i = 0; i < batch.size(); ++i) {
    const Pledge& pledge = batch[i].pledge;
    auto cert = known_slave_certs_.find(pledge.slave);
    auto master_key = options_.master_keys.find(pledge.token.master);
    if (cert == known_slave_certs_.end() ||
        master_key == options_.master_keys.end()) {
      continue;
    }
    first_item[i] = static_cast<int>(items.size());
    items.push_back({cert->second.subject_public_key, pledge.SignedBody(),
                     pledge.signature});
    items.push_back({master_key->second, pledge.token.SignedBody(),
                     pledge.token.signature});
  }
  std::vector<bool> ok;
  if (!items.empty()) {
    ++metrics_.verify_batches;
    metrics_.sigs_batch_verified += items.size();
    ok = verify_cache_.VerifyBatch(options_.params.scheme, items);
  }

  TraceSink* t = env()->trace();
  for (size_t i = 0; i < batch.size(); ++i) {
    PendingPledge& item = batch[i];
    --in_flight_[item.pledge.token.content_version];
    if (first_item[i] >= 0 &&
        (!ok[first_item[i]] || !ok[first_item[i] + 1])) {
      // Forged or tampered: proves nothing, audits nothing.
      ++metrics_.pledges_bad_signature;
      if (t != nullptr) {
        t->Instant(TraceRole::kAuditor, id(), "audit.bad_sig", item.trace_id);
      }
      continue;
    }
    if (item.pledge.token.content_version > oplog_.head_version()) {
      // The slave answered at a version whose commit has not reached us yet.
      if (t != nullptr) {
        t->Instant(TraceRole::kAuditor, id(), "audit.future", item.trace_id);
      }
      future_.push_back(std::move(item));
      continue;
    }
    AuditOne(std::move(item.pledge), item.submitter, item.trace_id);
  }
}

void Auditor::AuditOne(Pledge pledge, NodeId submitter, uint64_t trace_id) {
  uint64_t version = pledge.token.content_version;
  ++in_flight_[version];
  TraceSink* t = env()->trace();

  // Cost: a cache hit is nearly free; otherwise re-execute and hash — but
  // never sign and never build a client reply (Section 3.4's advantages).
  Bytes query_key = pledge.query.Encode();
  auto cache_it = options_.use_result_cache
                      ? cache_.find({version, query_key})
                      : cache_.end();
  bool cache_hit = cache_it != cache_.end();

  SimTime service_time;
  Bytes correct_hash;
  if (cache_hit) {
    ++metrics_.cache_hits;
    service_time = static_cast<SimTime>(options_.cost.audit_cache_hit_us);
    correct_hash = cache_it->second;
  } else {
    auto at_version = oplog_.MaterializeAt(version);
    if (!at_version.ok()) {
      // Version pruned (pledge arrived long after finalization) — the
      // audit window guarantee makes this a protocol violation by the
      // client or extreme delay; skip.
      ++metrics_.pledges_version_pruned;
      if (t != nullptr) {
        t->Instant(TraceRole::kAuditor, id(), "audit.pruned", trace_id);
      }
      --in_flight_[version];
      return;
    }
    auto outcome = executor_.Execute(*at_version, pledge.query);
    if (!outcome.ok()) {
      ++metrics_.pledges_exec_failed;
      --in_flight_[version];
      return;
    }
    metrics_.work_units_executed += outcome->cost;
    correct_hash = outcome->result.Sha1Digest();
    service_time = options_.cost.ExecuteTime(
        outcome->cost, outcome->result.Encode().size());
    if (options_.use_result_cache) {
      cache_[{version, query_key}] = correct_hash;
    }
  }

  if (t != nullptr) {
    t->SpanBegin(TraceRole::kAuditor, id(), "audit", trace_id,
                 cache_hit ? 1 : 0);
  }
  queue_->Enqueue(service_time, [this, pledge = std::move(pledge),
                                 correct_hash = std::move(correct_hash),
                                 version, submitter, trace_id] {
    ++metrics_.pledges_audited;
    --in_flight_[version];
    bool mismatch = correct_hash != pledge.result_sha1;
    TraceSink* sink = env()->trace();
    if (sink != nullptr) {
      sink->SpanEnd(TraceRole::kAuditor, id(), "audit", trace_id,
                    mismatch ? 1 : 0);
    }
    if (mismatch) {
      // Check the signature before accusing: an unsigned "pledge" proves
      // nothing and forwarding it would let clients frame slaves.
      auto cert = known_slave_certs_.find(pledge.slave);
      if (cert == known_slave_certs_.end() ||
          !VerifyPledgeSignature(options_.params.scheme,
                                 cert->second.subject_public_key, pledge,
                                 &verify_cache_)) {
        ++metrics_.pledges_bad_signature;
        return;
      }
      ++metrics_.mismatches_found;
      if (sink != nullptr) {
        sink->Instant(TraceRole::kAuditor, id(), "audit.mismatch", trace_id,
                      static_cast<int64_t>(pledge.slave));
        sink->Hist(TraceRole::kAuditor, id(), "detection_latency_us")
            .Record(env()->Now() - pledge.token.timestamp);
      }
      RaiseAccusation(pledge, trace_id);
      NotifyVictim(submitter, pledge, correct_hash, trace_id);
    }
    TryFinalizeVersions();
  });
}

void Auditor::RaiseAccusation(const Pledge& pledge, uint64_t trace_id) {
  auto owner = slave_owner_.find(pledge.slave);
  if (owner == slave_owner_.end()) {
    return;
  }
  ++metrics_.accusations_sent;
  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kAuditor, id(), "accuse", trace_id,
               static_cast<int64_t>(pledge.slave));
  }
  Accusation msg;
  msg.trace_id = trace_id;
  msg.pledge = pledge;
  env()->Send(owner->second,
              WithType(MsgType::kAccusation, msg.Encode()));
}

void Auditor::NotifyVictim(NodeId client, const Pledge& pledge,
                           const Bytes& correct_sha1, uint64_t trace_id) {
  // Delayed discovery: this client already accepted the bad answer; tell
  // it so the application can roll back (Section 3.5).
  ++metrics_.bad_read_notices_sent;
  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kAuditor, id(), "notify_victim", trace_id,
               static_cast<int64_t>(client));
  }
  BadReadNotice notice;
  notice.trace_id = trace_id;
  notice.pledge = pledge;
  notice.correct_sha1 = correct_sha1;
  env()->Send(client,
              WithType(MsgType::kBadReadNotice, notice.Encode()));
}

void Auditor::TryFinalizeVersions() {
  if (paused_) {
    return;  // a paused auditor must not close versions it has not audited
  }
  // Finalize version v (move to v+1) once:
  //   - v+1 has committed,
  //   - more than max_latency + slack has passed since that commit (no
  //     client will accept a version-v read any more, and its pledge has
  //     had time to arrive),
  //   - no audit for any version <= v is still in flight.
  for (;;) {
    uint64_t next = audited_version_ + 1;
    auto commit = commit_times_.find(next);
    if (commit == commit_times_.end()) {
      return;
    }
    if (env()->Now() <=
        commit->second + options_.params.max_latency +
            options_.params.audit_slack) {
      return;
    }
    for (auto it = in_flight_.begin();
         it != in_flight_.end() && it->first < next; ++it) {
      if (it->second > 0) {
        return;
      }
    }
    // Every pledge for versions < next has been audited (queued audits are
    // counted in in_flight_ from acceptance), so those versions are closed.
    if (TraceSink* t = env()->trace()) {
      t->Hist(TraceRole::kAuditor, id(), "audit_lag_us")
          .Record(env()->Now() - commit->second);
    }
    audited_version_ = next;
    ++metrics_.versions_finalized;
    // Reclaim memory for closed versions.
    commit_times_.erase(commit_times_.begin(),
                        commit_times_.lower_bound(audited_version_));
    auto cache_end = cache_.lower_bound({audited_version_, Bytes()});
    cache_.erase(cache_.begin(), cache_end);
    oplog_.PruneBelow(audited_version_);
    in_flight_.erase(in_flight_.begin(),
                     in_flight_.lower_bound(audited_version_));
  }
}

}  // namespace sdr
