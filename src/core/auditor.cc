#include "src/core/auditor.h"

#include <algorithm>
#include <utility>

#include "src/crypto/sha1.h"
#include "src/trace/trace.h"
#include "src/util/logging.h"

namespace sdr {

namespace {

// How far a memo validity interval may be extended in one lookup. The walk
// stops at the first interfering batch anyway; the cap only bounds the
// pathological case of a very old entry and a write stream that never
// touches the query's range.
constexpr uint64_t kMemoWalkLimit = 64;

}  // namespace

Auditor::Auditor(Options options)
    : options_(std::move(options)),
      signer_(options_.key_pair),
      rng_(1),
      oplog_(options_.snapshot_interval),
      verify_cache_(options_.params.audit_verify_cache_entries) {
  int lanes = std::max(1, options_.audit_jobs);
  lane_executors_.reserve(static_cast<size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    lane_executors_.push_back(std::make_unique<QueryExecutor>(
        /*cache_regex=*/options_.use_result_cache));
  }
}

WorkerPool* Auditor::EnsurePool() {
  if (options_.audit_jobs <= 1) {
    return nullptr;
  }
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(options_.audit_jobs);
  }
  return pool_.get();
}

void Auditor::PoolRun(int n, const std::function<void(int, int)>& fn) {
  if (WorkerPool* pool = EnsurePool()) {
    pool->Run(n, fn);
    return;
  }
  for (int i = 0; i < n; ++i) {
    fn(0, i);
  }
}

void Auditor::Start() {
  queue_ = std::make_unique<ServiceQueue>(env(), options_.cost.auditor_speed);
  queue_->BindTrace(TraceRole::kAuditor, id());
  rng_ = env()->rng().Fork();

  TotalOrderBroadcast::Config bc = options_.broadcast;
  bc.group = options_.group;
  broadcast_ = std::make_unique<TotalOrderBroadcast>(
      env(), this, bc,
      [this](NodeId to, const Bytes& payload) {
        env()->Send(to,
                    WithType(MsgType::kBroadcastEnvelope, payload));
      },
      [this](uint64_t seq, NodeId origin, const Bytes& payload) {
        OnDelivered(seq, origin, payload);
      });
  broadcast_->Start();

  // Liveness gossip (empty slave set — the auditor has none) and periodic
  // finalization checks.
  GossipAndFinalizeTick();
}

void Auditor::GossipAndFinalizeTick() {
  env()->ScheduleAfter(options_.params.gossip_period,
                       [this] { GossipAndFinalizeTick(); });
  if (!up()) {
    return;
  }
  TobGossip gossip;
  gossip.master = id();
  broadcast_->Broadcast(WithTobType(TobPayloadType::kGossip, gossip.Encode()));
  if (!paused_) {
    TryFinalizeVersions();
  }
  metrics_.backlog_depth.Add(static_cast<double>(queue_->depth()));
  metrics_.version_lag.Add(static_cast<double>(version_lag()));
}

void Auditor::SetPaused(bool paused) {
  if (paused_ == paused) {
    return;
  }
  paused_ = paused;
  if (paused_) {
    return;
  }
  // Resume: push the parked pledges through the normal admission path.
  std::deque<PendingPledge> backlog = std::move(paused_backlog_);
  paused_backlog_.clear();
  for (PendingPledge& item : backlog) {
    EnqueueForVerify(std::move(item));
  }
  FlushVerifyBatch();
  TryFinalizeVersions();
}

void Auditor::HandleMessage(NodeId from, const Payload& payload) {
  auto type = PeekType(payload);
  if (!type.ok()) {
    return;
  }
  BytesView body = BytesView(payload).substr(1);
  switch (*type) {
    case MsgType::kAuditSubmit:
      HandleAuditSubmit(from, body);
      break;
    case MsgType::kBroadcastEnvelope:
      broadcast_->OnMessage(from, body);
      break;
    // Not addressed to the auditor; ignored by design (R3 wants them named
    // so a new message type forces a decision here).
    case MsgType::kDirectoryLookup:
    case MsgType::kDirectoryLookupReply:
    case MsgType::kClientHello:
    case MsgType::kClientHelloReply:
    case MsgType::kReadRequest:
    case MsgType::kReadReply:
    case MsgType::kWriteRequest:
    case MsgType::kWriteReply:
    case MsgType::kDoubleCheckRequest:
    case MsgType::kDoubleCheckReply:
    case MsgType::kAccusation:
    case MsgType::kReassignment:
    case MsgType::kStateUpdate:
    case MsgType::kKeepAlive:
    case MsgType::kSlaveAck:
    case MsgType::kBadReadNotice:
    case MsgType::kVvExchange:
    case MsgType::kForkEvidence:
    case MsgType::kPlacementQuery:
    case MsgType::kPlacementReply:
    case MsgType::kStateUpdateBatch:
      break;
  }
}

void Auditor::OnDelivered(uint64_t /*seq*/, NodeId /*origin*/,
                          const Bytes& payload) {
  auto type = PeekTobType(payload);
  if (!type.ok()) {
    return;
  }
  BytesView body = BytesView(payload).substr(1);
  switch (*type) {
    case TobPayloadType::kWrite: {
      auto write = TobWrite::Decode(body);
      if (!write.ok()) {
        return;
      }
      commit_queue_.push_back({std::move(write->batch)});
      PumpCommitQueue();
      break;
    }
    case TobPayloadType::kWriteBundle: {
      auto bundle = TobWriteBundle::Decode(body);
      if (!bundle.ok() || bundle->writes.empty()) {
        return;
      }
      std::vector<WriteBatch> unit;
      unit.reserve(bundle->writes.size());
      for (TobWrite& write : bundle->writes) {
        unit.push_back(std::move(write.batch));
      }
      commit_queue_.push_back(std::move(unit));
      PumpCommitQueue();
      break;
    }
    case TobPayloadType::kGossip: {
      auto gossip = TobGossip::Decode(body);
      if (!gossip.ok()) {
        return;
      }
      for (const Certificate& cert : gossip->slave_certs) {
        known_slave_certs_[cert.subject] = cert;
        slave_owner_[cert.subject] = gossip->master;
      }
      break;
    }
  }
}

void Auditor::PumpCommitQueue() {
  if (commit_queue_.empty() || commit_timer_armed_) {
    return;
  }
  SimTime earliest = last_commit_time_ + options_.params.max_latency;
  if (env()->Now() >= earliest) {
    for (const WriteBatch& batch : commit_queue_.front()) {
      uint64_t version = oplog_.head_version() + 1;
      oplog_.Append(version, batch);
      commit_times_[version] = env()->Now();
    }
    commit_queue_.pop_front();
    last_commit_time_ = env()->Now();
    // Pledges that were waiting for this version can now be audited.
    std::deque<PendingPledge> still_future;
    std::vector<PendingPledge> ready;
    while (!future_.empty()) {
      PendingPledge item = std::move(future_.front());
      future_.pop_front();
      if (item.pledge.token.content_version <= oplog_.head_version()) {
        ready.push_back(std::move(item));
      } else {
        still_future.push_back(std::move(item));
      }
    }
    future_ = std::move(still_future);
    AuditBatch(std::move(ready));
    PumpCommitQueue();
    return;
  }
  commit_timer_armed_ = true;
  env()->ScheduleAt(earliest, [this] {
    commit_timer_armed_ = false;
    PumpCommitQueue();
  });
}

void Auditor::HandleAuditSubmit(NodeId from, BytesView body) {
  auto msg = AuditSubmit::Decode(body);
  if (!msg.ok()) {
    return;
  }
  ++metrics_.pledges_received;
  TraceSink* t = env()->trace();
  if (t != nullptr) {
    t->Instant(TraceRole::kAuditor, id(), "audit.recv", msg->trace_id);
  }
  if (options_.params.audit_sample_fraction < 1.0 &&
      !rng_.NextBool(options_.params.audit_sample_fraction)) {
    ++metrics_.pledges_skipped_sampling;
    return;
  }
  if (paused_) {
    if (t != nullptr) {
      t->Instant(TraceRole::kAuditor, id(), "audit.park_paused",
                 msg->trace_id);
    }
    paused_backlog_.push_back(PendingPledge{std::move(msg->pledge), from,
                                            msg->trace_id,
                                            std::move(msg->vv)});
    return;
  }
  EnqueueForVerify(PendingPledge{std::move(msg->pledge), from, msg->trace_id,
                                 std::move(msg->vv)});
}

// Admission stage: buffer the pledge for batched signature verification.
// The pledge counts as in flight from here, so version finalization can
// never overtake a buffered pledge.
void Auditor::EnqueueForVerify(PendingPledge item) {
  ++in_flight_[item.pledge.token.content_version];
  pending_verify_.push_back(std::move(item));
  if (pending_verify_.size() >=
      static_cast<size_t>(options_.params.audit_verify_batch_size)) {
    FlushVerifyBatch();
    return;
  }
  if (!verify_timer_armed_) {
    verify_timer_armed_ = true;
    env()->ScheduleAfter(options_.params.audit_verify_batch_window, [this] {
      verify_timer_armed_ = false;
      FlushVerifyBatch();
    });
  }
}

// Verifies the buffered pledges' signatures (slave over the pledge body,
// master over the embedded token) in one batch through the verify cache,
// then routes survivors onward. Pledges whose slave certificate has not
// been gossiped yet pass through unverified — exactly the pre-batching
// behaviour, where the signature was only checked before accusing — and
// the mismatch path re-checks (a cache hit for everything verified here).
void Auditor::FlushVerifyBatch() {
  if (pending_verify_.empty()) {
    return;
  }
  std::deque<PendingPledge> batch = std::move(pending_verify_);
  pending_verify_.clear();

  // item index pairs per verifiable pledge: [slave sig, token sig], plus
  // an optional third item for a piggybacked version vector.
  std::vector<VerifyItem> items;
  std::vector<int> first_item(batch.size(), -1);
  std::vector<int> vv_item(batch.size(), -1);
  for (size_t i = 0; i < batch.size(); ++i) {
    const Pledge& pledge = batch[i].pledge;
    auto cert = known_slave_certs_.find(pledge.slave);
    auto master_key = options_.master_keys.find(pledge.token.master);
    if (cert == known_slave_certs_.end() ||
        master_key == options_.master_keys.end()) {
      continue;
    }
    first_item[i] = static_cast<int>(items.size());
    items.push_back({cert->second.subject_public_key, pledge.SignedBody(),
                     pledge.signature});
    items.push_back({master_key->second, pledge.token.SignedBody(),
                     pledge.token.signature});
    // The vector must name the pledging slave and the pledged version;
    // anything else is ignored (a lone bogus vector proves nothing).
    if (options_.params.fork_check_enabled && batch[i].vv.has_value() &&
        batch[i].vv->slave == pledge.slave &&
        batch[i].vv->content_version == pledge.token.content_version) {
      vv_item[i] = static_cast<int>(items.size());
      items.push_back({cert->second.subject_public_key,
                       batch[i].vv->SignedBody(), batch[i].vv->signature});
    }
  }
  std::vector<bool> ok;
  if (!items.empty()) {
    ++metrics_.verify_batches;
    metrics_.sigs_batch_verified += items.size();
    ok = verify_cache_.VerifyBatch(options_.params.scheme, items,
                                   EnsurePool());
  }

  TraceSink* t = env()->trace();
  std::vector<PendingPledge> ready;
  ready.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    PendingPledge& item = batch[i];
    --in_flight_[item.pledge.token.content_version];
    if (first_item[i] >= 0 &&
        (!ok[first_item[i]] || !ok[first_item[i] + 1])) {
      // Forged or tampered: proves nothing, audits nothing.
      ++metrics_.pledges_bad_signature;
      if (t != nullptr) {
        t->Instant(TraceRole::kAuditor, id(), "audit.bad_sig", item.trace_id);
      }
      continue;
    }
    if (vv_item[i] >= 0 && ok[vv_item[i]]) {
      ReconcileVv(*item.vv, item.pledge, item.trace_id);
    }
    if (item.pledge.token.content_version > oplog_.head_version()) {
      // The slave answered at a version whose commit has not reached us yet.
      if (t != nullptr) {
        t->Instant(TraceRole::kAuditor, id(), "audit.future", item.trace_id);
      }
      future_.push_back(std::move(item));
      continue;
    }
    ready.push_back(std::move(item));
  }
  AuditBatch(std::move(ready));
}

void Auditor::ReconcileVv(const VersionVector& vv, const Pledge& pledge,
                          uint64_t trace_id) {
  auto cert = known_slave_certs_.find(pledge.slave);
  if (cert == known_slave_certs_.end()) {
    return;
  }
  ++metrics_.vvs_reconciled;
  AttestedVv avv;
  avv.vv = vv;
  avv.token = pledge.token;
  avv.slave_cert = cert->second;
  auto conflict = fork_detector_.Observe(avv);
  if (!conflict.has_value()) {
    return;
  }
  ++metrics_.forks_detected;
  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kAuditor, id(), "fork.detect", trace_id,
               static_cast<int64_t>(vv.slave));
  }
  EvidenceChain chain = MakeEvidenceChain(conflict->first, conflict->second,
                                          options_.master_certs);
  ++metrics_.evidence_chains_emitted;
  if (on_evidence) {
    on_evidence(chain);
  }
  auto owner = slave_owner_.find(vv.slave);
  if (owner == slave_owner_.end()) {
    return;
  }
  ForkEvidence msg;
  msg.trace_id = trace_id;
  msg.chain = std::move(chain);
  env()->Send(owner->second,
              WithType(MsgType::kForkEvidence, msg.Encode()));
}

const Auditor::MemoEntry* Auditor::MemoLookup(const Bytes& query_key,
                                              const Query& q,
                                              uint64_t version) {
  auto it = memo_.find(query_key);
  if (it == memo_.end()) {
    return nullptr;
  }
  for (MemoEntry& m : it->second) {
    if (version >= m.first && version <= m.last) {
      return &m;
    }
  }
  // Not covered: try to extend an entry's interval to `version` by proving
  // every batch between them misses the query's key footprint. The store
  // at version v differs from v-1 exactly by batch v, so disjointness over
  // the whole gap means the memoized result holds at `version` too. A
  // pruned batch (BatchFor == nullptr) breaks the proof and the walk.
  for (MemoEntry& m : it->second) {
    if (version > m.last && version - m.last <= kMemoWalkLimit) {
      bool clean = true;
      for (uint64_t v = m.last + 1; v <= version; ++v) {
        const WriteBatch* batch = oplog_.BatchFor(v);
        if (batch == nullptr || QueryAffectedBy(q, *batch)) {
          clean = false;
          break;
        }
      }
      if (clean) {
        m.last = version;
        return &m;
      }
    } else if (version < m.first && m.first - version <= kMemoWalkLimit) {
      bool clean = true;
      for (uint64_t v = version + 1; v <= m.first; ++v) {
        const WriteBatch* batch = oplog_.BatchFor(v);
        if (batch == nullptr || QueryAffectedBy(q, *batch)) {
          clean = false;
          break;
        }
      }
      if (clean) {
        m.first = version;
        return &m;
      }
    }
  }
  return nullptr;
}

void Auditor::MemoInsert(const Bytes& query_key, uint64_t version,
                         Bytes sha1) {
  std::vector<MemoEntry>& entries = memo_[query_key];
  entries.push_back(MemoEntry{version, version, std::move(sha1)});
  // Keep the newest two intervals: the current one plus the previous, which
  // straggler pledges for a not-yet-finalized older version may still hit.
  if (entries.size() > 2) {
    entries.erase(entries.begin());
  }
}

// The audit engine. Stages (see the class comment):
//   dedup: group pledges by (version, query); the first pledge of a group
//     leads, the rest ride along as comparisons.
//   memo: groups covered by a memoized validity interval skip execution.
//   snapshots: distinct versions still needed are materialized once, on
//     the pool, and adopted into the oplog's shared-snapshot cache.
//   execute: remaining groups run on the pool, one executor per lane,
//     writing into per-group slots.
//   merge + dispatch: on the simulation thread, in batch order — every
//     observable effect below this point is independent of lane count.
void Auditor::AuditBatch(std::vector<PendingPledge> ready) {
  if (ready.empty()) {
    return;
  }
  TraceSink* t = env()->trace();
  const size_t n = ready.size();
  for (const PendingPledge& item : ready) {
    ++in_flight_[item.pledge.token.content_version];
  }

  struct Group {
    enum class How : uint8_t { kUnresolved, kMemo, kExec, kPruned, kFailed };
    uint64_t version = 0;
    Bytes query_key;
    size_t leader = 0;  // index into `ready` of the first group member
    How how = How::kUnresolved;
    Bytes sha1;               // correct result hash (kMemo / kExec)
    uint64_t cost = 0;        // work units (kExec)
    uint32_t result_bytes = 0;
  };
  std::vector<Group> groups;
  std::vector<size_t> group_of(n, 0);
  std::map<std::pair<uint64_t, Bytes>, size_t> group_index;
  for (size_t i = 0; i < n; ++i) {
    const Pledge& pledge = ready[i].pledge;
    Bytes query_key = pledge.query.Encode();
    if (options_.use_result_cache) {
      auto [pos, inserted] = group_index.try_emplace(
          std::make_pair(pledge.token.content_version, query_key),
          groups.size());
      if (!inserted) {
        group_of[i] = pos->second;
        continue;
      }
    }
    group_of[i] = groups.size();
    groups.emplace_back();
    groups.back().version = pledge.token.content_version;
    groups.back().query_key = std::move(query_key);
    groups.back().leader = i;
  }

  // Memo stage.
  std::vector<size_t> exec_groups;
  for (size_t g = 0; g < groups.size(); ++g) {
    Group& grp = groups[g];
    if (options_.use_result_cache) {
      const MemoEntry* memo = MemoLookup(
          grp.query_key, ready[grp.leader].pledge.query, grp.version);
      if (memo != nullptr) {
        grp.how = Group::How::kMemo;
        grp.sha1 = memo->sha1;
        ++metrics_.reexec_memo_hits;
        if (t != nullptr) {
          t->Instant(TraceRole::kAuditor, id(), "audit.memo_hit",
                     ready[grp.leader].trace_id);
        }
        continue;
      }
    }
    exec_groups.push_back(g);
  }

  // Snapshot stage: materialize the distinct versions the executing groups
  // need, in parallel, against the immutable log; adopt on this thread.
  if (!exec_groups.empty()) {
    std::vector<uint64_t> need;
    for (size_t g : exec_groups) {
      need.push_back(groups[g].version);
    }
    std::sort(need.begin(), need.end());
    need.erase(std::unique(need.begin(), need.end()), need.end());
    need.erase(std::remove_if(need.begin(), need.end(),
                              [this](uint64_t v) {
                                return oplog_.CachedSnapshot(v) != nullptr;
                              }),
               need.end());
    if (!need.empty()) {
      metrics_.audit_workers_busy += need.size();
      std::vector<std::unique_ptr<DocumentStore>> built(need.size());
      PoolRun(static_cast<int>(need.size()), [&](int, int i) {
        auto store = oplog_.MaterializeAt(need[i]);
        if (store.ok()) {
          built[i] =
              std::make_unique<DocumentStore>(std::move(store).value());
        }
      });
      for (size_t i = 0; i < need.size(); ++i) {
        if (built[i] != nullptr) {
          oplog_.AdoptSnapshot(need[i], std::move(*built[i]));
        }
      }
    }
  }

  // Execute stage.
  struct ExecItem {
    size_t group;
    std::shared_ptr<const DocumentStore> snapshot;
  };
  struct ExecSlot {
    bool ok = false;
    Bytes sha1;
    uint64_t cost = 0;
    uint32_t result_bytes = 0;
  };
  std::vector<ExecItem> exec_list;
  for (size_t g : exec_groups) {
    auto snapshot = oplog_.CachedSnapshot(groups[g].version);
    if (snapshot == nullptr) {
      // Version pruned (pledge arrived long after finalization) — the
      // audit window guarantee makes this a protocol violation by the
      // client or extreme delay; skip the whole group.
      groups[g].how = Group::How::kPruned;
      continue;
    }
    exec_list.push_back(ExecItem{g, std::move(snapshot)});
  }
  if (!exec_list.empty()) {
    metrics_.audit_workers_busy += exec_list.size();
    uint64_t lead_trace = ready[groups[exec_list.front().group].leader].trace_id;
    if (t != nullptr) {
      t->SpanBegin(TraceRole::kAuditor, id(), "audit.reexec", lead_trace,
                   static_cast<int64_t>(exec_list.size()));
    }
    std::vector<ExecSlot> slots(exec_list.size());
    PoolRun(static_cast<int>(exec_list.size()), [&](int lane, int i) {
      const ExecItem& item = exec_list[i];
      auto outcome = lane_executors_[lane]->Execute(
          *item.snapshot, ready[groups[item.group].leader].pledge.query);
      if (!outcome.ok()) {
        return;  // slot stays !ok -> kFailed in the merge
      }
      Bytes encoded = outcome->result.Encode();
      slots[i].sha1 = Sha1::Hash(encoded);
      slots[i].cost = outcome->cost;
      slots[i].result_bytes = static_cast<uint32_t>(encoded.size());
      slots[i].ok = true;
    });
    if (t != nullptr) {
      t->SpanEnd(TraceRole::kAuditor, id(), "audit.reexec", lead_trace,
                 static_cast<int64_t>(exec_list.size()));
    }
    // Deterministic merge, in batch order.
    for (size_t i = 0; i < exec_list.size(); ++i) {
      Group& grp = groups[exec_list[i].group];
      if (!slots[i].ok) {
        grp.how = Group::How::kFailed;
        continue;
      }
      grp.how = Group::How::kExec;
      grp.sha1 = std::move(slots[i].sha1);
      grp.cost = slots[i].cost;
      grp.result_bytes = slots[i].result_bytes;
      ++metrics_.reexec_memo_misses;
      metrics_.work_units_executed += grp.cost;
      if (options_.use_result_cache) {
        MemoInsert(grp.query_key, grp.version, grp.sha1);
      }
    }
  }

  // Dispatch stage: one simulated-CPU entry per pledge, in arrival order.
  // The group leader of an executed group is charged the execution time;
  // everyone else (dedup followers, memo hits) is charged a cache hit.
  // Every pledge's own result_sha1 is compared in its closure — a forged
  // pledge deduped against an honest twin still mismatches and is caught.
  for (size_t i = 0; i < n; ++i) {
    PendingPledge& item = ready[i];
    const Group& grp = groups[group_of[i]];
    uint64_t version = item.pledge.token.content_version;
    if (grp.how == Group::How::kPruned) {
      ++metrics_.pledges_version_pruned;
      if (t != nullptr) {
        t->Instant(TraceRole::kAuditor, id(), "audit.pruned", item.trace_id);
      }
      --in_flight_[version];
      continue;
    }
    if (grp.how == Group::How::kFailed) {
      ++metrics_.pledges_exec_failed;
      --in_flight_[version];
      continue;
    }
    bool leads = grp.leader == i;
    bool pays_execution = leads && grp.how == Group::How::kExec;
    SimTime service_time =
        pays_execution
            ? options_.cost.ExecuteTime(grp.cost, grp.result_bytes)
            : static_cast<SimTime>(options_.cost.audit_cache_hit_us);
    if (!leads) {
      ++metrics_.pledges_deduped;
      ++metrics_.cache_hits;
      if (t != nullptr) {
        t->Instant(TraceRole::kAuditor, id(), "audit.dedup_hit",
                   item.trace_id);
      }
    } else if (grp.how == Group::How::kMemo) {
      ++metrics_.cache_hits;
    }
    if (t != nullptr) {
      t->SpanBegin(TraceRole::kAuditor, id(), "audit", item.trace_id,
                   pays_execution ? 0 : 1);
    }
    Bytes correct_hash = grp.sha1;
    NodeId submitter = item.submitter;
    uint64_t trace_id = item.trace_id;
    queue_->Enqueue(service_time, [this, pledge = std::move(item.pledge),
                                   correct_hash = std::move(correct_hash),
                                   version, submitter, trace_id] {
      ++metrics_.pledges_audited;
      --in_flight_[version];
      bool mismatch = correct_hash != pledge.result_sha1;
      TraceSink* sink = env()->trace();
      if (sink != nullptr) {
        sink->SpanEnd(TraceRole::kAuditor, id(), "audit", trace_id,
                      mismatch ? 1 : 0);
      }
      if (mismatch) {
        // Check the signature before accusing: an unsigned "pledge" proves
        // nothing and forwarding it would let clients frame slaves.
        auto cert = known_slave_certs_.find(pledge.slave);
        if (cert == known_slave_certs_.end() ||
            !VerifyPledgeSignature(options_.params.scheme,
                                   cert->second.subject_public_key, pledge,
                                   &verify_cache_)) {
          ++metrics_.pledges_bad_signature;
          return;
        }
        ++metrics_.mismatches_found;
        if (sink != nullptr) {
          sink->Instant(TraceRole::kAuditor, id(), "audit.mismatch", trace_id,
                        static_cast<int64_t>(pledge.slave));
          sink->Hist(TraceRole::kAuditor, id(), "detection_latency_us")
              .Record(env()->Now() - pledge.token.timestamp);
        }
        RaiseAccusation(pledge, trace_id);
        NotifyVictim(submitter, pledge, correct_hash, trace_id);
      }
      TryFinalizeVersions();
    });
  }
}

void Auditor::RaiseAccusation(const Pledge& pledge, uint64_t trace_id) {
  auto owner = slave_owner_.find(pledge.slave);
  if (owner == slave_owner_.end()) {
    return;
  }
  ++metrics_.accusations_sent;
  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kAuditor, id(), "accuse", trace_id,
               static_cast<int64_t>(pledge.slave));
  }
  Accusation msg;
  msg.trace_id = trace_id;
  msg.pledge = pledge;
  env()->Send(owner->second,
              WithType(MsgType::kAccusation, msg.Encode()));
}

void Auditor::NotifyVictim(NodeId client, const Pledge& pledge,
                           const Bytes& correct_sha1, uint64_t trace_id) {
  // Delayed discovery: this client already accepted the bad answer; tell
  // it so the application can roll back (Section 3.5).
  ++metrics_.bad_read_notices_sent;
  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kAuditor, id(), "notify_victim", trace_id,
               static_cast<int64_t>(client));
  }
  BadReadNotice notice;
  notice.trace_id = trace_id;
  notice.pledge = pledge;
  notice.correct_sha1 = correct_sha1;
  env()->Send(client,
              WithType(MsgType::kBadReadNotice, notice.Encode()));
}

void Auditor::TryFinalizeVersions() {
  if (paused_) {
    return;  // a paused auditor must not close versions it has not audited
  }
  // Finalize version v (move to v+1) once:
  //   - v+1 has committed,
  //   - more than max_latency + slack has passed since that commit (no
  //     client will accept a version-v read any more, and its pledge has
  //     had time to arrive),
  //   - no audit for any version <= v is still in flight.
  for (;;) {
    uint64_t next = audited_version_ + 1;
    auto commit = commit_times_.find(next);
    if (commit == commit_times_.end()) {
      return;
    }
    if (env()->Now() <=
        commit->second + options_.params.max_latency +
            options_.params.audit_slack) {
      return;
    }
    for (auto it = in_flight_.begin();
         it != in_flight_.end() && it->first < next; ++it) {
      if (it->second > 0) {
        return;
      }
    }
    // Every pledge for versions < next has been audited (queued audits are
    // counted in in_flight_ from acceptance), so those versions are closed.
    if (TraceSink* t = env()->trace()) {
      t->Hist(TraceRole::kAuditor, id(), "audit_lag_us")
          .Record(env()->Now() - commit->second);
    }
    audited_version_ = next;
    ++metrics_.versions_finalized;
    // Reclaim memory for closed versions. The prune floor trails the
    // audited frontier by the memo walk limit: a memo entry last proven at
    // a finalized version can still be extended to a live one, but only
    // while the batches in between exist to prove non-interference over
    // the gap. Pruning right at the frontier would restart the memo cold
    // on every finalization.
    uint64_t floor = audited_version_ > kMemoWalkLimit
                         ? audited_version_ - kMemoWalkLimit
                         : 0;
    commit_times_.erase(commit_times_.begin(),
                        commit_times_.lower_bound(audited_version_));
    for (auto it = memo_.begin(); it != memo_.end();) {
      std::vector<MemoEntry>& entries = it->second;
      entries.erase(std::remove_if(entries.begin(), entries.end(),
                                   [floor](const MemoEntry& m) {
                                     return m.last < floor;
                                   }),
                    entries.end());
      it = entries.empty() ? memo_.erase(it) : std::next(it);
    }
    oplog_.PruneBelow(floor);
    in_flight_.erase(in_flight_.begin(),
                     in_flight_.lower_bound(audited_version_));
  }
}

}  // namespace sdr
