#include "src/core/client.h"

#include <algorithm>

#include "src/trace/trace.h"
#include "src/util/logging.h"

namespace sdr {

Client::Client(Options options)
    : options_(std::move(options)), rng_(options_.rng_seed) {}

void Client::Start() {
  rng_ = Rng(options_.rng_seed ^ (static_cast<uint64_t>(id()) << 32));
  BeginSetup();
  if (options_.params.fork_check_enabled && !options_.peer_clients.empty()) {
    ScheduleVvGossip();
  }
}

const Bytes* Client::MasterKey(NodeId master) const {
  for (const Certificate& cert : master_certs_) {
    if (cert.subject == master) {
      return &cert.subject_public_key;
    }
  }
  return nullptr;
}

const std::optional<Certificate>& Client::LaneSlaveCert(uint32_t shard) const {
  static const std::optional<Certificate> kNone;
  if (!sharded()) {
    return slave_cert_;
  }
  return shard < lanes_.size() ? lanes_[shard].slave_cert : kNone;
}

NodeId Client::LaneMaster(uint32_t shard) const {
  if (!sharded()) {
    return master_;
  }
  return shard < lanes_.size() ? lanes_[shard].master : kInvalidNode;
}

NodeId Client::LaneAuditor(uint32_t shard) const {
  if (!sharded()) {
    return auditor_;
  }
  return shard < lanes_.size() ? lanes_[shard].auditor : kInvalidNode;
}

// ---------------------------------------------------------------------------
// Setup phase (Section 2).
// ---------------------------------------------------------------------------

void Client::BeginSetup() {
  phase_ = Phase::kAwaitDirectory;
  ++setup_attempts_;
  DirectoryLookup lookup;
  lookup.content_public_key = options_.content.content_public_key;
  env()->Send(options_.directory,
              WithType(MsgType::kDirectoryLookup, lookup.Encode()));
  env()->Cancel(setup_timeout_);
  setup_timeout_ = env()->ScheduleAfter(options_.params.client_timeout, [this] {
    if (phase_ != Phase::kReady) {
      BeginSetup();
    }
  });
}

void Client::HandleDirectoryReply(BytesView body) {
  if (phase_ != Phase::kAwaitDirectory) {
    return;
  }
  auto msg = DirectoryLookupReply::Decode(body);
  if (!msg.ok()) {
    return;
  }
  // Keep only certificates that verify against the content key — the
  // directory itself is untrusted.
  std::vector<Certificate> verified;
  for (const Certificate& cert : msg->master_certs) {
    if (cert.role == Role::kMaster &&
        VerifyCertificate(options_.content.scheme,
                          options_.content.content_public_key, cert)) {
      verified.push_back(cert);
    }
  }
  if (verified.empty()) {
    return;  // setup timeout will retry
  }
  master_certs_ = std::move(verified);

  if (sharded()) {
    // The directory only told us *who* the masters are; the signed
    // placement says which shard each serves. Fetch it (a placement-cache
    // miss — every op until the next re-setup plans from the cached copy).
    phase_ = Phase::kAwaitPlacement;
    ++metrics_.placement_cache_misses;
    PlacementQuery query;
    query.content_public_key = options_.content.content_public_key;
    env()->Send(options_.directory,
                WithType(MsgType::kPlacementQuery, query.Encode()));
    return;
  }

  // Pick a master; avoid the one that just went silent on us, if any.
  std::vector<NodeId> candidates;
  for (const Certificate& cert : master_certs_) {
    if (cert.subject != master_ || master_certs_.size() == 1) {
      candidates.push_back(cert.subject);
    }
  }
  if (candidates.empty()) {
    candidates.push_back(master_certs_[0].subject);
  }
  master_ = candidates[rng_.NextBounded(candidates.size())];

  phase_ = Phase::kAwaitHello;
  setup_nonce_ = rng_.NextBytes(16);
  ClientHello hello;
  hello.client_nonce = setup_nonce_;
  env()->Send(master_,
              WithType(MsgType::kClientHello, hello.Encode()));
}

void Client::HandlePlacementReply(BytesView body) {
  if (phase_ != Phase::kAwaitPlacement) {
    return;
  }
  auto msg = PlacementReply::Decode(body);
  if (!msg.ok() || !msg->found) {
    return;  // setup timeout will retry
  }
  // The placement is signed by the content key — the directory merely
  // relays it, exactly like the master certificates.
  if (!VerifyShardPlacement(options_.content.scheme,
                            options_.content.content_public_key,
                            msg->placement) ||
      msg->placement.map.num_shards() != options_.num_shards) {
    return;
  }
  placement_ = msg->placement;

  // One lane per shard: pick a certified master for each, avoiding the
  // lane's previous master (the one that may have just gone silent).
  std::vector<Lane> lanes(options_.num_shards);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    std::vector<NodeId> candidates;
    for (NodeId m : placement_->shard_masters[s]) {
      if (MasterKey(m) != nullptr) {
        candidates.push_back(m);
      }
    }
    if (candidates.empty()) {
      return;  // setup timeout will retry
    }
    NodeId previous = s < lanes_.size() ? lanes_[s].master : kInvalidNode;
    std::vector<NodeId> fresh;
    for (NodeId m : candidates) {
      if (m != previous || candidates.size() == 1) {
        fresh.push_back(m);
      }
    }
    if (fresh.empty()) {
      fresh.push_back(candidates[0]);
    }
    lanes[s].master = fresh[rng_.NextBounded(fresh.size())];
    lanes[s].nonce = rng_.NextBytes(16);
  }
  lanes_ = std::move(lanes);

  phase_ = Phase::kAwaitHello;
  for (const Lane& lane : lanes_) {
    ClientHello hello;
    hello.client_nonce = lane.nonce;
    env()->Send(lane.master, WithType(MsgType::kClientHello, hello.Encode()));
  }
}

void Client::HandleShardHelloReply(NodeId from, BytesView body) {
  Lane* lane = nullptr;
  for (Lane& l : lanes_) {
    if (l.master == from && !l.ready) {
      lane = &l;
      break;
    }
  }
  if (lane == nullptr) {
    return;
  }
  auto msg = ClientHelloReply::Decode(body);
  if (!msg.ok()) {
    return;
  }
  const Bytes* master_key = MasterKey(from);
  if (master_key == nullptr ||
      !VerifySignature(options_.params.scheme, *master_key,
                       msg->SignedBody(lane->nonce), msg->signature)) {
    return;
  }
  if (msg->slave_cert.role != Role::kSlave ||
      !VerifyCertificate(options_.params.scheme, *master_key,
                         msg->slave_cert)) {
    return;
  }
  lane->slave_cert = msg->slave_cert;
  lane->auditor = msg->auditor;
  lane->ready = true;
  for (const Lane& l : lanes_) {
    if (!l.ready) {
      return;  // the other lanes' hellos are still in flight
    }
  }
  phase_ = Phase::kReady;
  env()->Cancel(setup_timeout_);
  ++metrics_.setups_completed;
  for (auto& [request_id, read] : reads_) {
    if (!read.awaiting_double_check) {
      SendRead(request_id);
    }
  }
  for (auto& [request_id, write] : writes_) {
    (void)write;
    SendWrite(request_id);
  }
  if (options_.mode != LoadMode::kManual && metrics_.setups_completed == 1) {
    ScheduleNextOp();
  }
}

void Client::HandleHelloReply(NodeId from, BytesView body) {
  if (phase_ != Phase::kAwaitHello) {
    return;
  }
  if (sharded()) {
    HandleShardHelloReply(from, body);
    return;
  }
  if (from != master_) {
    return;
  }
  auto msg = ClientHelloReply::Decode(body);
  if (!msg.ok()) {
    return;
  }
  const Bytes* master_key = MasterKey(master_);
  if (master_key == nullptr ||
      !VerifySignature(options_.params.scheme, *master_key,
                       msg->SignedBody(setup_nonce_), msg->signature)) {
    return;
  }
  // The slave certificate must chain to the master that assigned it.
  if (msg->slave_cert.role != Role::kSlave ||
      !VerifyCertificate(options_.params.scheme, *master_key,
                         msg->slave_cert)) {
    return;
  }
  slave_cert_ = msg->slave_cert;
  auditor_ = msg->auditor;
  phase_ = Phase::kReady;
  env()->Cancel(setup_timeout_);
  ++metrics_.setups_completed;

  // Re-issue anything that was in flight when the old master died.
  for (auto& [request_id, read] : reads_) {
    if (!read.awaiting_double_check) {
      SendRead(request_id);
    }
  }
  for (auto& [request_id, write] : writes_) {
    (void)write;
    SendWrite(request_id);
  }
  if (options_.mode != LoadMode::kManual && metrics_.setups_completed == 1) {
    ScheduleNextOp();
  }
}

void Client::HandleReassignment(NodeId from, BytesView body) {
  Lane* lane = nullptr;
  if (sharded()) {
    for (Lane& l : lanes_) {
      if (l.master == from) {
        lane = &l;
        break;
      }
    }
    if (lane == nullptr) {
      return;
    }
  } else if (from != master_) {
    return;
  }
  auto msg = Reassignment::Decode(body);
  if (!msg.ok()) {
    return;
  }
  const Bytes* master_key = MasterKey(from);
  if (master_key == nullptr ||
      !VerifySignature(options_.params.scheme, *master_key, msg->SignedBody(),
                       msg->signature) ||
      !VerifyCertificate(options_.params.scheme, *master_key,
                         msg->new_slave_cert)) {
    return;
  }
  if (lane != nullptr) {
    lane->slave_cert = msg->new_slave_cert;
    if (msg->auditor != kInvalidNode) {
      lane->auditor = msg->auditor;
    }
  } else {
    slave_cert_ = msg->new_slave_cert;
    if (msg->auditor != kInvalidNode) {
      auditor_ = msg->auditor;  // the new slave may audit elsewhere
    }
  }
  ++metrics_.reassignments;
  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kClient, id(), "reassigned", msg->trace_id,
               static_cast<int64_t>(msg->excluded_slave));
  }
  // Outstanding reads retry toward the new slave on their next attempt.
}

void Client::HandleBadReadNotice(BytesView body) {
  auto msg = BadReadNotice::Decode(body);
  if (!msg.ok()) {
    return;
  }
  // Sanity: the embedded token must be signed by a certified master —
  // otherwise anyone could spam clients into rolling back.
  const Bytes* master_key = MasterKey(msg->pledge.token.master);
  if (master_key == nullptr ||
      !VerifyVersionToken(options_.params.scheme, *master_key,
                          msg->pledge.token, &verify_cache_)) {
    return;
  }
  ++metrics_.bad_read_notices;
  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kClient, id(), "bad_read_notice", msg->trace_id);
  }
  if (on_bad_read) {
    on_bad_read(msg->pledge.query, msg->pledge.token.content_version);
  }
}

// ---------------------------------------------------------------------------
// Fork-consistency checking (src/forkcheck/; beyond the paper).
// ---------------------------------------------------------------------------

void Client::ScheduleVvGossip() {
  env()->ScheduleAfter(options_.params.vv_gossip_period, [this] {
    GossipVvs();
    ScheduleVvGossip();
  });
}

void Client::GossipVvs() {
  if (latest_vv_.empty()) {
    return;
  }
  std::vector<NodeId> peers;
  peers.reserve(options_.peer_clients.size());
  for (NodeId p : options_.peer_clients) {
    if (p != id()) {
      peers.push_back(p);
    }
  }
  if (peers.empty()) {
    return;
  }
  VvExchange msg;
  msg.origin = id();
  msg.entries.reserve(latest_vv_.size());
  for (const auto& [slave, avv] : latest_vv_) {
    (void)slave;
    msg.entries.push_back(avv);
  }
  Bytes encoded = WithType(MsgType::kVvExchange, msg.Encode());
  size_t fanout = std::min<size_t>(options_.params.vv_gossip_fanout,
                                   peers.size());
  // Partial Fisher-Yates: `fanout` distinct peers, uniform without bias.
  for (size_t i = 0; i < fanout; ++i) {
    size_t j = i + rng_.NextBounded(peers.size() - i);
    std::swap(peers[i], peers[j]);
    env()->Send(peers[i], encoded);
    ++metrics_.vv_exchanges_sent;
  }
}

bool Client::VerifyAttestedVv(const AttestedVv& avv) {
  // Internal consistency first (cheap), then the three signatures: token
  // under its master's key, slave certificate under some certified master,
  // vector under the certified slave key. All through the verify cache —
  // tokens and certificates repeat across gossip rounds, so most are hits.
  if (avv.slave_cert.role != Role::kSlave ||
      avv.vv.slave != avv.slave_cert.subject ||
      avv.token.content_version != avv.vv.content_version) {
    return false;
  }
  const Bytes* token_key = MasterKey(avv.token.master);
  if (token_key == nullptr ||
      !VerifyVersionToken(options_.params.scheme, *token_key, avv.token,
                          &verify_cache_)) {
    return false;
  }
  bool cert_ok = false;
  for (const Certificate& mc : master_certs_) {
    if (verify_cache_.Verify(options_.params.scheme, mc.subject_public_key,
                             avv.slave_cert.SignedBody(),
                             avv.slave_cert.signature)) {
      cert_ok = true;
      break;
    }
  }
  if (!cert_ok) {
    return false;
  }
  return VerifyVersionVector(options_.params.scheme,
                             avv.slave_cert.subject_public_key, avv.vv,
                             &verify_cache_);
}

void Client::HandleVvExchange(BytesView body) {
  if (!options_.params.fork_check_enabled) {
    return;
  }
  auto msg = VvExchange::Decode(body);
  if (!msg.ok()) {
    return;
  }
  ++metrics_.vv_exchanges_received;
  for (const AttestedVv& avv : msg->entries) {
    if (VerifyAttestedVv(avv)) {
      ObserveVv(avv);
    }
  }
}

void Client::ObserveVv(const AttestedVv& avv) {
  // "Latest" per slave means longest chain: lengths grow by one per served
  // read, while the content version can stall across many reads.
  auto it = latest_vv_.find(avv.vv.slave);
  if (it == latest_vv_.end() ||
      it->second.vv.chain_length < avv.vv.chain_length) {
    latest_vv_[avv.vv.slave] = avv;
  }
  auto conflict = fork_detector_.Observe(avv);
  if (!conflict.has_value()) {
    return;
  }
  ++metrics_.forks_detected;
  uint64_t trace_id = MintTraceId(id(), next_request_id_++);
  if (TraceSink* t = env()->trace()) {
    t->Instant(TraceRole::kClient, id(), "fork.detect", trace_id,
               static_cast<int64_t>(avv.vv.slave));
  }
  EmitForkEvidence(*conflict, trace_id);
}

void Client::EmitForkEvidence(const ForkDetector::Conflict& conflict,
                              uint64_t trace_id) {
  EvidenceChain chain =
      MakeEvidenceChain(conflict.first, conflict.second, master_certs_);
  ++metrics_.evidence_chains_emitted;
  if (on_evidence) {
    on_evidence(chain);
  }
  // Sharded mode keeps no single "my master" — route the evidence to the
  // (certified) master that signed the conflicting token, i.e. the one
  // whose slave group the equivocator belongs to.
  NodeId target = sharded() ? conflict.first.token.master : master_;
  if (target == kInvalidNode) {
    return;
  }
  ForkEvidence msg;
  msg.trace_id = trace_id;
  msg.chain = std::move(chain);
  env()->Send(target, WithType(MsgType::kForkEvidence, msg.Encode()));
}

void Client::MasterSuspect() {
  // The master has gone silent: redo the setup phase with another master
  // ("all the clients connected to the crashed server will have to go
  // through the setup process again", Section 3).
  if (phase_ == Phase::kReady) {
    phase_ = Phase::kIdle;
    BeginSetup();
  }
}

// ---------------------------------------------------------------------------
// Reads (Sections 3.2-3.4).
// ---------------------------------------------------------------------------

void Client::IssueRead(Query query, ReadCallback cb) {
  if (sharded()) {
    IssueShardedRead(std::move(query), std::move(cb));
    return;
  }
  uint64_t request_id = next_request_id_++;
  PendingRead read;
  read.query = std::move(query);
  read.first_issued = env()->Now();
  read.cb = std::move(cb);
  read.trace_id = MintTraceId(id(), request_id);
  if (TraceSink* t = env()->trace()) {
    t->SpanBegin(TraceRole::kClient, id(), "read", read.trace_id);
  }
  reads_.emplace(request_id, std::move(read));
  ++metrics_.reads_issued;
  SendRead(request_id);
}

void Client::IssueShardedRead(Query query, ReadCallback cb) {
  if (!placement_.has_value()) {
    if (cb) {
      cb(false, QueryResult{});
    }
    return;
  }
  ++metrics_.placement_cache_hits;
  std::vector<ShardSubquery> plan = PlanShardQuery(placement_->map, query);
  if (plan.size() == 1) {
    // Single owning shard: a normal read, just routed down that lane.
    uint64_t request_id = next_request_id_++;
    PendingRead read;
    read.query = std::move(plan[0].query);
    read.shard = plan[0].shard;
    read.first_issued = env()->Now();
    read.cb = std::move(cb);
    read.trace_id = MintTraceId(id(), request_id);
    if (TraceSink* t = env()->trace()) {
      t->SpanBegin(TraceRole::kClient, id(), "read", read.trace_id);
    }
    reads_.emplace(request_id, std::move(read));
    ++metrics_.reads_issued;
    SendRead(request_id);
    return;
  }
  // The query spans shards: fan one leg out per plan entry. Every leg runs
  // the full verification pipeline (hash, pledge + token signatures,
  // freshness, probabilistic double-check) before it counts.
  uint64_t parent_id = next_request_id_++;
  MultiRead multi;
  multi.query = std::move(query);
  multi.plan = plan;
  multi.results.resize(plan.size());
  multi.pledges.resize(plan.size());
  multi.remaining = plan.size();
  multi.first_issued = env()->Now();
  multi.cb = std::move(cb);
  multi.trace_id = MintTraceId(id(), parent_id);
  if (TraceSink* t = env()->trace()) {
    t->SpanBegin(TraceRole::kClient, id(), "read", multi.trace_id);
  }
  ++metrics_.reads_issued;
  ++metrics_.multi_shard_reads;
  for (size_t i = 0; i < plan.size(); ++i) {
    uint64_t sub_id = next_request_id_++;
    PendingRead sub;
    sub.query = plan[i].query;
    sub.shard = plan[i].shard;
    sub.parent = parent_id;
    sub.leg = static_cast<uint32_t>(i);
    sub.first_issued = env()->Now();
    sub.trace_id = multi.trace_id;
    multi.sub_ids.push_back(sub_id);
    reads_.emplace(sub_id, std::move(sub));
    ++metrics_.shard_subreads_issued;
  }
  auto [it, inserted] = multireads_.emplace(parent_id, std::move(multi));
  (void)inserted;
  for (uint64_t sub_id : it->second.sub_ids) {
    SendRead(sub_id);
  }
}

void Client::SendRead(uint64_t request_id) {
  auto it = reads_.find(request_id);
  if (it == reads_.end() ||
      !LaneSlaveCert(it->second.shard).has_value()) {
    return;
  }
  PendingRead& read = it->second;
  ++read.attempts;
  if (read.attempts > 1) {
    ++metrics_.retries;
    if (TraceSink* t = env()->trace()) {
      t->Instant(TraceRole::kClient, id(), "read.retry", read.trace_id,
                 read.attempts);
    }
  }
  ReadRequest msg;
  msg.request_id = request_id;
  msg.trace_id = read.trace_id;
  msg.query = read.query;
  env()->Send(LaneSlaveCert(read.shard)->subject,
              WithType(MsgType::kReadRequest, msg.Encode()));
  env()->Cancel(read.timeout);
  read.timeout =
      env()->ScheduleAfter(options_.params.client_timeout, [this, request_id] {
        auto it = reads_.find(request_id);
        if (it == reads_.end() || it->second.awaiting_double_check) {
          return;
        }
        if (it->second.attempts > options_.max_read_retries) {
          ++metrics_.reads_timed_out;
          FailRead(request_id);
          return;
        }
        SendRead(request_id);
      });
}

void Client::HandleReadReply(NodeId from, BytesView body) {
  auto msg = ReadReply::Decode(body);
  if (!msg.ok()) {
    return;
  }
  auto it = reads_.find(msg->request_id);
  if (it == reads_.end() || it->second.awaiting_double_check) {
    return;
  }
  const std::optional<Certificate>& lane_cert =
      LaneSlaveCert(it->second.shard);
  if (!lane_cert.has_value() || from != lane_cert->subject) {
    return;  // stale reply from a slave we no longer trust/use
  }
  PendingRead& read = it->second;

  TraceSink* t = env()->trace();
  if (!msg->ok) {
    // Honest decline (slave out of sync). Back off and retry.
    ++metrics_.reads_failed_declined;
    if (t != nullptr) {
      t->Instant(TraceRole::kClient, id(), "read.declined", read.trace_id);
    }
    RetryRead(msg->request_id, options_.retry_backoff);
    return;
  }

  const Pledge& pledge = msg->pledge;

  // 1. Result hash must match the pledge.
  if (msg->result.Sha1Digest() != pledge.result_sha1) {
    ++metrics_.reads_rejected_hash;
    if (t != nullptr) {
      t->Instant(TraceRole::kClient, id(), "read.reject_hash", read.trace_id);
    }
    RetryRead(msg->request_id, 0);
    return;
  }
  // 2/3. Pledge must be signed by the slave we were assigned and the
  // version token by a certified master. The two checks run as one batch
  // through the verify cache: the token is usually a cache hit (it only
  // changes on keepalives), and for batch-capable schemes a cold pair
  // shares one combined equation.
  const Bytes* master_key = MasterKey(pledge.token.master);
  if (pledge.slave != lane_cert->subject || master_key == nullptr ||
      !VerifyPledgeAndToken(options_.params.scheme,
                            lane_cert->subject_public_key, *master_key,
                            pledge, &verify_cache_)) {
    ++metrics_.reads_rejected_bad_sig;
    if (t != nullptr) {
      t->Instant(TraceRole::kClient, id(), "read.reject_sig", read.trace_id);
    }
    RetryRead(msg->request_id, 0);
    return;
  }
  // Fork-consistency: ingest the slave's signed version-vector commitment.
  // It must name the pledging slave and the pledged version; its signature
  // is checked under the certified slave key. A vector that fails any of
  // these is simply ignored — the read itself already passed the paper's
  // checks, and a missing/bogus vector only deprives the slave of the
  // chance to prove consistency (suspicious, but not falsifiable alone).
  // This runs *before* the freshness gate: a commitment is a signed fact
  // about the slave's chain whether or not the ride-along result is still
  // fresh enough to accept, and a slow-serving equivocator (split_serve)
  // must not be able to keep its commitments out of the detection pool by
  // straddling the freshness deadline.
  if (options_.params.fork_check_enabled && msg->vv.has_value() &&
      msg->vv->slave == pledge.slave &&
      msg->vv->content_version == pledge.token.content_version &&
      VerifyVersionVector(options_.params.scheme,
                          lane_cert->subject_public_key, *msg->vv,
                          &verify_cache_)) {
    AttestedVv avv;
    avv.vv = *msg->vv;
    avv.token = pledge.token;
    avv.slave_cert = *lane_cert;
    ObserveVv(avv);
  }

  NodeId lane_auditor = LaneAuditor(read.shard);
  // 4. Freshness: reject results older than (the client's) max_latency.
  if (!TokenIsFresh(pledge.token, env()->Now(), effective_max_latency())) {
    if (options_.params.fork_check_enabled &&
        options_.params.audit_enabled && lane_auditor != kInvalidNode) {
      // The reply is too old to accept but its pledge and commitment are
      // signature-verified facts; forwarding them keeps the auditor's
      // cross-client chain reconciliation complete even when an
      // equivocator serves its victims at the edge of the window.
      AuditSubmit submit;
      submit.trace_id = read.trace_id;
      submit.pledge = pledge;
      submit.vv = msg->vv;
      ++metrics_.pledges_forwarded;
      env()->Send(lane_auditor,
                  WithType(MsgType::kAuditSubmit, submit.Encode()));
    }
    ++metrics_.reads_rejected_stale;
    if (t != nullptr) {
      t->Instant(TraceRole::kClient, id(), "read.reject_stale", read.trace_id);
    }
    RetryRead(msg->request_id, options_.retry_backoff);
    return;
  }

  // Probabilistic checking: greedy clients double-check everything.
  bool double_check =
      options_.greedy ||
      rng_.NextBool(options_.params.double_check_probability);
  if (double_check) {
    read.awaiting_double_check = true;
    double_checking_[msg->request_id] = {msg->result, pledge};
    ++metrics_.double_checks_sent;
    if (t != nullptr) {
      t->Instant(TraceRole::kClient, id(), "dc.send", read.trace_id);
    }
    DoubleCheckRequest dc;
    dc.request_id = msg->request_id;
    dc.trace_id = read.trace_id;
    dc.pledge = pledge;
    env()->Send(LaneMaster(read.shard),
                WithType(MsgType::kDoubleCheckRequest, dc.Encode()));
    env()->Cancel(read.timeout);
    read.timeout = env()->ScheduleAfter(
        options_.params.client_timeout, [this, request_id = msg->request_id] {
          // Master silent on a double-check: treat the (already verified)
          // read as accepted and re-setup toward a live master.
          auto dc = double_checking_.find(request_id);
          if (dc == double_checking_.end()) {
            return;
          }
          auto copy = dc->second;
          double_checking_.erase(dc);
          AcceptRead(request_id, copy.first, copy.second);
          MasterSuspect();
        });
    return;
  }

  // No double-check: forward the pledge to the auditor, then accept
  // ("clients accept read results only after they have forwarded the
  // corresponding pledges to the auditor", Section 3.4).
  if (options_.params.audit_enabled && lane_auditor != kInvalidNode) {
    AuditSubmit submit;
    submit.trace_id = read.trace_id;
    submit.pledge = pledge;
    // Piggyback the slave's vector so the auditor can reconcile chain
    // heads across clients (nullopt — and absent on the wire — unless
    // fork checking is on).
    submit.vv = msg->vv;
    ++metrics_.pledges_forwarded;
    if (t != nullptr) {
      t->Instant(TraceRole::kClient, id(), "pledge.forward", read.trace_id);
    }
    env()->Send(lane_auditor,
                WithType(MsgType::kAuditSubmit, submit.Encode()));
  }
  AcceptRead(msg->request_id, msg->result, pledge);
}

void Client::HandleDoubleCheckReply(BytesView body) {
  auto msg = DoubleCheckReply::Decode(body);
  if (!msg.ok()) {
    return;
  }
  auto dc = double_checking_.find(msg->request_id);
  if (dc == double_checking_.end()) {
    return;
  }
  auto [result, pledge] = dc->second;
  double_checking_.erase(dc);

  auto read_it = reads_.find(msg->request_id);
  if (read_it == reads_.end()) {
    return;
  }
  read_it->second.awaiting_double_check = false;
  env()->Cancel(read_it->second.timeout);

  TraceSink* t = env()->trace();
  if (!msg->served) {
    // Quota-throttled (or version unavailable). The read itself passed all
    // client-side checks; accept it.
    ++metrics_.double_checks_unserved;
    if (t != nullptr) {
      t->Instant(TraceRole::kClient, id(), "dc.unserved", msg->trace_id);
    }
    AcceptRead(msg->request_id, result, pledge);
    return;
  }
  if (msg->matches) {
    AcceptRead(msg->request_id, result, pledge);
    return;
  }
  // Caught red-handed (immediate discovery): the master has the pledge from
  // the double-check request and will exclude the slave and reassign us;
  // retry the read, which will land on the new slave.
  ++metrics_.double_check_mismatches;
  if (t != nullptr) {
    t->Instant(TraceRole::kClient, id(), "dc.mismatch", msg->trace_id);
  }
  RetryRead(msg->request_id, options_.retry_backoff);
}

void Client::RetryRead(uint64_t request_id, SimTime delay) {
  auto it = reads_.find(request_id);
  if (it == reads_.end()) {
    return;
  }
  if (it->second.attempts > options_.max_read_retries) {
    ++metrics_.reads_timed_out;
    FailRead(request_id);
    return;
  }
  env()->Cancel(it->second.timeout);
  if (delay <= 0) {
    SendRead(request_id);
  } else {
    env()->ScheduleAfter(delay, [this, request_id] { SendRead(request_id); });
  }
}

void Client::AcceptRead(uint64_t request_id, const QueryResult& result,
                        const Pledge& pledge) {
  auto it = reads_.find(request_id);
  if (it == reads_.end()) {
    return;
  }
  if (it->second.parent != 0) {
    AcceptShardSubread(request_id, result, pledge);
    return;
  }
  ++metrics_.reads_accepted;
  metrics_.read_latency_us.Add(
      static_cast<double>(env()->Now() - it->second.first_issued));
  if (TraceSink* t = env()->trace()) {
    t->Hist(TraceRole::kClient, id(), "read_rtt_us")
        .Record(env()->Now() - it->second.first_issued);
    t->SpanEnd(TraceRole::kClient, id(), "read", it->second.trace_id, 1);
  }
  env()->Cancel(it->second.timeout);
  if (on_accept) {
    on_accept(it->second.query, pledge, result);
  }
  ReadCallback cb = std::move(it->second.cb);
  reads_.erase(it);
  if (cb) {
    cb(true, result);
  }
  if (options_.mode == LoadMode::kClosedLoop) {
    ScheduleNextOp();
  }
}

void Client::AcceptShardSubread(uint64_t request_id,
                                const QueryResult& result,
                                const Pledge& pledge) {
  auto it = reads_.find(request_id);
  if (it == reads_.end()) {
    return;
  }
  ++metrics_.shard_subreads_accepted;
  env()->Cancel(it->second.timeout);
  // on_accept fires per *leg* — each leg carries its own pledge, so the
  // harness validates every shard-local result against that shard's
  // ground truth. The merged parent has no single pledge to validate.
  if (on_accept) {
    on_accept(it->second.query, pledge, result);
  }
  uint64_t parent_id = it->second.parent;
  uint32_t leg = it->second.leg;
  reads_.erase(it);

  auto mit = multireads_.find(parent_id);
  if (mit == multireads_.end()) {
    return;
  }
  MultiRead& multi = mit->second;
  multi.results[leg] = result;
  multi.pledges[leg] = pledge;
  if (--multi.remaining > 0) {
    return;
  }
  // Every leg verified and in: merge. The merge is only as fresh as its
  // *oldest* shard token — record that age as the effective bound.
  QueryResult merged = MergeShardResults(multi.query, multi.plan,
                                         multi.results);
  SimTime oldest = multi.pledges[0].token.timestamp;
  for (const Pledge& p : multi.pledges) {
    oldest = std::min(oldest, p.token.timestamp);
  }
  metrics_.merged_token_age_us.Add(static_cast<double>(env()->Now() - oldest));
  ++metrics_.reads_accepted;
  metrics_.read_latency_us.Add(
      static_cast<double>(env()->Now() - multi.first_issued));
  if (TraceSink* t = env()->trace()) {
    t->Hist(TraceRole::kClient, id(), "read_rtt_us")
        .Record(env()->Now() - multi.first_issued);
    t->SpanEnd(TraceRole::kClient, id(), "read", multi.trace_id, 1);
  }
  ReadCallback cb = std::move(multi.cb);
  multireads_.erase(mit);
  if (cb) {
    cb(true, merged);
  }
  if (options_.mode == LoadMode::kClosedLoop) {
    ScheduleNextOp();
  }
}

void Client::FailRead(uint64_t request_id) {
  auto it = reads_.find(request_id);
  if (it == reads_.end()) {
    return;
  }
  if (it->second.parent != 0) {
    FailMultiRead(it->second.parent);
    return;
  }
  if (TraceSink* t = env()->trace()) {
    t->SpanEnd(TraceRole::kClient, id(), "read", it->second.trace_id, 0);
  }
  env()->Cancel(it->second.timeout);
  ReadCallback cb = std::move(it->second.cb);
  reads_.erase(it);
  double_checking_.erase(request_id);
  if (cb) {
    cb(false, QueryResult{});
  }
  if (options_.mode == LoadMode::kClosedLoop) {
    ScheduleNextOp();
  }
}

void Client::FailMultiRead(uint64_t parent_id) {
  auto mit = multireads_.find(parent_id);
  if (mit == multireads_.end()) {
    return;
  }
  // One failed leg fails the whole fan-out: there is no merged result to
  // return without it. Cancel and drop the surviving siblings.
  for (uint64_t sub_id : mit->second.sub_ids) {
    auto sit = reads_.find(sub_id);
    if (sit != reads_.end()) {
      env()->Cancel(sit->second.timeout);
      reads_.erase(sit);
    }
    double_checking_.erase(sub_id);
  }
  if (TraceSink* t = env()->trace()) {
    t->SpanEnd(TraceRole::kClient, id(), "read", mit->second.trace_id, 0);
  }
  ReadCallback cb = std::move(mit->second.cb);
  multireads_.erase(mit);
  if (cb) {
    cb(false, QueryResult{});
  }
  if (options_.mode == LoadMode::kClosedLoop) {
    ScheduleNextOp();
  }
}

// ---------------------------------------------------------------------------
// Writes (Section 3.1).
// ---------------------------------------------------------------------------

void Client::IssueWrite(WriteBatch batch, WriteCallback cb) {
  if (sharded()) {
    IssueShardedWrite(std::move(batch), std::move(cb));
    return;
  }
  uint64_t request_id = next_request_id_++;
  PendingWrite write;
  write.batch = std::move(batch);
  write.first_issued = env()->Now();
  write.cb = std::move(cb);
  writes_.emplace(request_id, std::move(write));
  ++metrics_.writes_issued;
  if (TraceSink* t = env()->trace()) {
    t->SpanBegin(TraceRole::kClient, id(), "write",
                 MintTraceId(id(), request_id));
  }
  SendWrite(request_id);
}

void Client::IssueShardedWrite(WriteBatch batch, WriteCallback cb) {
  if (!placement_.has_value()) {
    if (cb) {
      cb(false, 0);
    }
    return;
  }
  ++metrics_.placement_cache_hits;
  // Split the batch by owning shard (preserving op order within a shard).
  std::map<uint32_t, WriteBatch> by_shard;
  for (WriteOp& op : batch) {
    by_shard[placement_->map.ShardForKey(op.key)].push_back(std::move(op));
  }
  if (by_shard.size() <= 1) {
    uint32_t shard = by_shard.empty() ? 0 : by_shard.begin()->first;
    uint64_t request_id = next_request_id_++;
    PendingWrite write;
    if (!by_shard.empty()) {
      write.batch = std::move(by_shard.begin()->second);
    }
    write.shard = shard;
    write.first_issued = env()->Now();
    write.cb = std::move(cb);
    writes_.emplace(request_id, std::move(write));
    ++metrics_.writes_issued;
    if (TraceSink* t = env()->trace()) {
      t->SpanBegin(TraceRole::kClient, id(), "write",
                   MintTraceId(id(), request_id));
    }
    SendWrite(request_id);
    return;
  }
  // Cross-shard batch: one sub-write per shard. The parent reports
  // committed only if every shard-local sub-batch commits; there is no
  // cross-shard atomicity (each shard serializes independently).
  uint64_t parent_id = next_request_id_++;
  MultiWrite multi;
  multi.remaining = by_shard.size();
  multi.first_issued = env()->Now();
  multi.cb = std::move(cb);
  multi.trace_id = MintTraceId(id(), parent_id);
  ++metrics_.writes_issued;
  ++metrics_.multi_shard_writes;
  if (TraceSink* t = env()->trace()) {
    t->SpanBegin(TraceRole::kClient, id(), "write", multi.trace_id);
  }
  multiwrites_.emplace(parent_id, std::move(multi));
  for (auto& [shard, sub_batch] : by_shard) {
    uint64_t sub_id = next_request_id_++;
    PendingWrite write;
    write.batch = std::move(sub_batch);
    write.shard = shard;
    write.parent = parent_id;
    write.first_issued = env()->Now();
    writes_.emplace(sub_id, std::move(write));
    SendWrite(sub_id);
  }
}

void Client::SendWrite(uint64_t request_id) {
  auto it = writes_.find(request_id);
  if (it == writes_.end()) {
    return;
  }
  PendingWrite& write = it->second;
  ++write.attempts;
  WriteRequest msg;
  msg.request_id = request_id;
  msg.batch = write.batch;
  env()->Send(LaneMaster(write.shard),
              WithType(MsgType::kWriteRequest, msg.Encode()));
  env()->Cancel(write.timeout);
  write.timeout =
      env()->ScheduleAfter(options_.params.client_timeout, [this, request_id] {
        auto it = writes_.find(request_id);
        if (it == writes_.end()) {
          return;
        }
        if (it->second.attempts > 3) {
          // Master presumed dead: go through setup again; the write is
          // re-sent once the new master is in place.
          it->second.attempts = 0;
          MasterSuspect();
          return;
        }
        SendWrite(request_id);
      });
}

void Client::HandleWriteReply(BytesView body) {
  auto msg = WriteReply::Decode(body);
  if (!msg.ok()) {
    return;
  }
  auto it = writes_.find(msg->request_id);
  if (it == writes_.end()) {
    return;
  }
  env()->Cancel(it->second.timeout);
  if (it->second.parent != 0) {
    // One leg of a cross-shard write: fold into the parent.
    uint64_t parent_id = it->second.parent;
    writes_.erase(it);
    if (msg->ok) {
      ++metrics_.shard_subwrites_committed;
    }
    auto mit = multiwrites_.find(parent_id);
    if (mit == multiwrites_.end()) {
      return;
    }
    MultiWrite& multi = mit->second;
    multi.all_ok = multi.all_ok && msg->ok;
    multi.max_version = std::max(multi.max_version, msg->committed_version);
    if (--multi.remaining > 0) {
      return;
    }
    if (multi.all_ok) {
      ++metrics_.writes_committed;
      metrics_.write_latency_us.Add(
          static_cast<double>(env()->Now() - multi.first_issued));
    } else {
      ++metrics_.writes_rejected;
    }
    if (TraceSink* t = env()->trace()) {
      t->SpanEnd(TraceRole::kClient, id(), "write", multi.trace_id,
                 multi.all_ok ? 1 : 0);
    }
    WriteCallback cb = std::move(multi.cb);
    bool all_ok = multi.all_ok;
    uint64_t max_version = multi.max_version;
    multiwrites_.erase(mit);
    if (cb) {
      cb(all_ok, max_version);
    }
    if (options_.mode == LoadMode::kClosedLoop) {
      ScheduleNextOp();
    }
    return;
  }
  if (msg->ok) {
    ++metrics_.writes_committed;
    metrics_.write_latency_us.Add(
        static_cast<double>(env()->Now() - it->second.first_issued));
  } else {
    ++metrics_.writes_rejected;
  }
  if (TraceSink* t = env()->trace()) {
    t->SpanEnd(TraceRole::kClient, id(), "write",
               MintTraceId(id(), msg->request_id), msg->ok ? 1 : 0);
  }
  WriteCallback cb = std::move(it->second.cb);
  uint64_t version = msg->committed_version;
  bool ok = msg->ok;
  writes_.erase(it);
  if (cb) {
    cb(ok, version);
  }
  if (options_.mode == LoadMode::kClosedLoop) {
    ScheduleNextOp();
  }
}

// ---------------------------------------------------------------------------
// Load generation.
// ---------------------------------------------------------------------------

void Client::ScheduleNextOp() {
  if (options_.mode == LoadMode::kClosedLoop) {
    env()->ScheduleAfter(options_.think_time, [this] { IssueGeneratedOp(); });
    return;
  }
  if (options_.mode == LoadMode::kOpenLoop) {
    double rate = options_.reads_per_second;
    if (options_.rate_multiplier) {
      rate *= options_.rate_multiplier(env()->Now());
    }
    rate = std::max(rate, 1e-6);
    SimTime gap = static_cast<SimTime>(
        rng_.NextExponential(static_cast<double>(kSecond) / rate));
    env()->ScheduleAfter(gap, [this] {
      IssueGeneratedOp();
      ScheduleNextOp();  // open loop: arrivals independent of completions
    });
  }
}

void Client::IssueGeneratedOp() {
  if (phase_ != Phase::kReady) {
    // Mid re-setup: postpone one think-time.
    env()->ScheduleAfter(options_.think_time, [this] { IssueGeneratedOp(); });
    return;
  }
  bool write = options_.write_fraction > 0.0 && options_.write_source &&
               rng_.NextBool(options_.write_fraction);
  if (write) {
    IssueWrite(options_.write_source(rng_));
  } else {
    IssueRead(options_.query_source(rng_));
  }
}

// ---------------------------------------------------------------------------

void Client::HandleMessage(NodeId from, const Payload& payload) {
  auto type = PeekType(payload);
  if (!type.ok()) {
    return;
  }
  BytesView body = BytesView(payload).substr(1);
  switch (*type) {
    case MsgType::kDirectoryLookupReply:
      HandleDirectoryReply(body);
      break;
    case MsgType::kClientHelloReply:
      HandleHelloReply(from, body);
      break;
    case MsgType::kReadReply:
      HandleReadReply(from, body);
      break;
    case MsgType::kDoubleCheckReply:
      HandleDoubleCheckReply(body);
      break;
    case MsgType::kWriteReply:
      HandleWriteReply(body);
      break;
    case MsgType::kReassignment:
      HandleReassignment(from, body);
      break;
    case MsgType::kBadReadNotice:
      HandleBadReadNotice(body);
      break;
    case MsgType::kVvExchange:
      HandleVvExchange(body);
      break;
    case MsgType::kPlacementReply:
      HandlePlacementReply(body);
      break;
    // Not addressed to a client; ignored by design.
    case MsgType::kDirectoryLookup:
    case MsgType::kClientHello:
    case MsgType::kReadRequest:
    case MsgType::kWriteRequest:
    case MsgType::kDoubleCheckRequest:
    case MsgType::kAccusation:
    case MsgType::kStateUpdate:
    case MsgType::kStateUpdateBatch:
    case MsgType::kKeepAlive:
    case MsgType::kSlaveAck:
    case MsgType::kAuditSubmit:
    case MsgType::kBroadcastEnvelope:
    case MsgType::kForkEvidence:
    case MsgType::kPlacementQuery:
      break;
  }
}

}  // namespace sdr
