// Wire messages of the replication protocol. Every network payload is one
// byte of MsgType followed by the message body. Encoding helpers keep the
// node implementations readable; decoding returns Result so corrupt or
// truncated payloads are rejected rather than trusted.
#ifndef SDR_SRC_CORE_MESSAGES_H_
#define SDR_SRC_CORE_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/certificate.h"
#include "src/core/pledge.h"
#include "src/core/shard.h"
#include "src/forkcheck/fork.h"
#include "src/store/document_store.h"
#include "src/store/executor.h"
#include "src/store/query.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace sdr {

// sdrlint:protocol-enum — switches over MsgType must be exhaustive and
// default-free, so adding a message type breaks the lint, not the protocol.
enum class MsgType : uint8_t {
  // Directory.
  kDirectoryLookup = 1,
  kDirectoryLookupReply = 2,
  // Client setup with a master.
  kClientHello = 3,
  kClientHelloReply = 4,
  // Reads (client <-> slave).
  kReadRequest = 5,
  kReadReply = 6,
  // Writes (client <-> master).
  kWriteRequest = 7,
  kWriteReply = 8,
  // Probabilistic checking (client <-> master).
  kDoubleCheckRequest = 9,
  kDoubleCheckReply = 10,
  // Corrective action.
  kAccusation = 11,     // client or auditor -> master, carries the pledge
  kReassignment = 12,   // master -> client: new slave assignment
  // State propagation (master -> slave).
  kStateUpdate = 13,
  kKeepAlive = 14,
  kSlaveAck = 15,       // slave -> master: highest applied version
  // Auditing.
  kAuditSubmit = 16,    // client -> auditor
  // Master group internals.
  kBroadcastEnvelope = 17,  // wraps TotalOrderBroadcast wire payloads
  // Delayed discovery (Section 3.5): the auditor tells the client that a
  // read it already accepted was wrong, so the application can roll back.
  kBadReadNotice = 18,  // auditor -> client
  // Fork-consistency checking (src/forkcheck/, beyond the paper).
  kVvExchange = 19,    // client <-> client version-vector gossip
  kForkEvidence = 20,  // anyone -> master: transferable equivocation proof
  // Keyspace sharding (src/core/shard.h, beyond the paper).
  kPlacementQuery = 21,  // client -> directory: which shards serve a content
  kPlacementReply = 22,  // directory -> client: signed ShardPlacement
  // Group commit (master -> slave): one certificate + one token cover a
  // contiguous run of versions.
  kStateUpdateBatch = 23,
};

// Payloads carried *inside* the total-order broadcast. The auditor is a
// member of the master group (the paper's "only trusted server that does
// not have a slave set"), so it learns writes and slave assignments from
// the same ordered stream the masters use.
// sdrlint:protocol-enum
enum class TobPayloadType : uint8_t {
  kWrite = 1,   // a client write to be committed by every master
  kGossip = 2,  // a master's current slave set (liveness + crash recovery)
  kWriteBundle = 3,  // group commit: N client writes under one broadcast
};

// Returns the MsgType of a payload, or kCorrupt error when empty.
Result<MsgType> PeekType(BytesView payload);

// Prepends the type byte.
Bytes WithType(MsgType type, const Bytes& body);

// ---- Message structs -------------------------------------------------------

struct DirectoryLookup {
  Bytes content_public_key;
  Bytes Encode() const;
  static Result<DirectoryLookup> Decode(BytesView body);
};

struct DirectoryLookupReply {
  std::vector<Certificate> master_certs;
  Bytes Encode() const;
  static Result<DirectoryLookupReply> Decode(BytesView body);
};

struct ClientHello {
  Bytes client_nonce;
  Bytes Encode() const;
  static Result<ClientHello> Decode(BytesView body);
};

// The master's handshake reply: signed over (client_nonce || server_nonce ||
// assignment payload); the payload is the slave certificate plus the id of
// the auditor to forward pledges to.
struct ClientHelloReply {
  Bytes server_nonce;
  Certificate slave_cert;
  NodeId auditor = kInvalidNode;
  Bytes signature;

  Bytes SignedBody(const Bytes& client_nonce) const;
  Bytes Encode() const;
  static Result<ClientHelloReply> Decode(BytesView body);
};

struct ReadRequest {
  uint64_t request_id = 0;
  // Causal trace id for the observability subsystem (src/trace/). Minted
  // by the issuing client, echoed through replies, double-checks, audit
  // submissions and verdicts so one read's pledge can be followed across
  // nodes. Always carried (0 = untraced), never part of any signed body.
  uint64_t trace_id = 0;
  Query query;
  Bytes Encode() const;
  static Result<ReadRequest> Decode(BytesView body);
};

struct ReadReply {
  uint64_t request_id = 0;
  uint64_t trace_id = 0;    // echoed from the request
  bool ok = false;          // false: slave declined (e.g. stale, excluded)
  QueryResult result;
  Pledge pledge;
  // Fork-consistency commitment for the pledged version; attached only
  // when fork checking is enabled (optional trailing field, so disabled
  // encodings are byte-identical to the fork-unaware wire format).
  std::optional<VersionVector> vv;
  Bytes Encode() const;
  static Result<ReadReply> Decode(BytesView body);
};

struct WriteRequest {
  uint64_t request_id = 0;
  WriteBatch batch;
  Bytes Encode() const;
  static Result<WriteRequest> Decode(BytesView body);
};

struct WriteReply {
  uint64_t request_id = 0;
  bool ok = false;
  uint64_t committed_version = 0;
  uint8_t error_code = 0;  // ErrorCode when !ok
  Bytes Encode() const;
  static Result<WriteReply> Decode(BytesView body);
};

struct DoubleCheckRequest {
  uint64_t request_id = 0;
  uint64_t trace_id = 0;
  Pledge pledge;
  Bytes Encode() const;
  static Result<DoubleCheckRequest> Decode(BytesView body);
};

struct DoubleCheckReply {
  uint64_t request_id = 0;
  uint64_t trace_id = 0;
  bool served = false;   // false: quota exceeded / version unavailable
  bool matches = false;  // master's hash == pledge hash
  QueryResult correct_result;  // master's result (when served)
  Bytes Encode() const;
  static Result<DoubleCheckReply> Decode(BytesView body);
};

struct Accusation {
  uint64_t trace_id = 0;
  Pledge pledge;
  Bytes Encode() const;
  static Result<Accusation> Decode(BytesView body);
};

struct Reassignment {
  Certificate new_slave_cert;
  // The auditor responsible for the new slave's pledges.
  NodeId auditor = kInvalidNode;
  NodeId excluded_slave = kInvalidNode;  // kInvalidNode: master-initiated move
  uint64_t trace_id = 0;  // evidence chain that triggered the exclusion
  Bytes signature;        // master's, over the body (trace_id excluded)

  Bytes SignedBody() const;
  Bytes Encode() const;
  static Result<Reassignment> Decode(BytesView body);
};

struct StateUpdate {
  uint64_t version = 0;
  WriteBatch batch;
  VersionToken token;
  Bytes Encode() const;
  static Result<StateUpdate> Decode(BytesView body);
};

struct KeepAlive {
  VersionToken token;
  Bytes Encode() const;
  static Result<KeepAlive> Decode(BytesView body);
};

struct SlaveAck {
  uint64_t applied_version = 0;
  Bytes Encode() const;
  static Result<SlaveAck> Decode(BytesView body);
};

struct AuditSubmit {
  uint64_t trace_id = 0;
  Pledge pledge;
  // The slave's fork-consistency commitment as received on the read reply,
  // so the auditor can reconcile chain heads across client sets that never
  // gossip with each other. Optional trailing field like ReadReply::vv.
  std::optional<VersionVector> vv;
  Bytes Encode() const;
  static Result<AuditSubmit> Decode(BytesView body);
};

// "In some applications, the harm may be undone, by rolling back the
// client to the state before that particular read" (Section 3.5). The
// auditor sends the incriminating pledge back to the client that accepted
// the bad read, together with the correct result hash.
struct BadReadNotice {
  uint64_t trace_id = 0;
  Pledge pledge;
  Bytes correct_sha1;
  Bytes Encode() const;
  static Result<BadReadNotice> Decode(BytesView body);
};

// Client <-> client fork-consistency gossip: the sender's latest attested
// version vector per slave it has heard from.
struct VvExchange {
  NodeId origin = kInvalidNode;
  std::vector<AttestedVv> entries;
  Bytes Encode() const;
  static Result<VvExchange> Decode(BytesView body);
};

// A transferable equivocation proof en route to a master (which verifies
// it offline and excludes the forked slave).
struct ForkEvidence {
  uint64_t trace_id = 0;
  EvidenceChain chain;
  Bytes Encode() const;
  static Result<ForkEvidence> Decode(BytesView body);
};

// Asks the directory for the shard placement of a content. Sent once per
// setup; clients cache the verified reply (the client-side placement
// cache) until a master suspicion forces a re-setup.
struct PlacementQuery {
  Bytes content_public_key;
  Bytes Encode() const;
  static Result<PlacementQuery> Decode(BytesView body);
};

struct PlacementReply {
  bool found = false;  // false: content is unsharded (or unknown)
  ShardPlacement placement;
  Bytes Encode() const;
  static Result<PlacementReply> Decode(BytesView body);
};

// Group commit's state propagation: batches for versions
// [first_version, first_version + batches.size() - 1], one head token and
// one BatchCommit certificate instead of per-version signatures. The slave
// decomposes it into buffered per-version updates, so its apply path (and
// everything downstream — pledges, audits, fork chains) is unchanged.
struct StateUpdateBatch {
  uint64_t first_version = 0;
  std::vector<WriteBatch> batches;
  VersionToken token;  // covers the last version of the run
  BatchCommit commit;
  Bytes Encode() const;
  static Result<StateUpdateBatch> Decode(BytesView body);
};

// ---- Total-order broadcast inner payloads ----------------------------------

Result<TobPayloadType> PeekTobType(BytesView payload);
Bytes WithTobType(TobPayloadType type, const Bytes& body);

struct TobWrite {
  NodeId origin_master = kInvalidNode;  // the master that accepted the write
  NodeId client = kInvalidNode;         // for the reply
  uint64_t request_id = 0;
  WriteBatch batch;
  Bytes Encode() const;
  static Result<TobWrite> Decode(BytesView body);
};

// Group commit: the origin master accumulates client writes for a window
// or count and broadcasts them as one ordered unit, amortizing broadcast
// and signature cost over the bundle. Commit order within the bundle is
// its vector order.
struct TobWriteBundle {
  std::vector<TobWrite> writes;
  Bytes Encode() const;
  static Result<TobWriteBundle> Decode(BytesView body);
};

struct TobGossip {
  NodeId master = kInvalidNode;
  std::vector<Certificate> slave_certs;
  Bytes Encode() const;
  static Result<TobGossip> Decode(BytesView body);
};

}  // namespace sdr

#endif  // SDR_SRC_CORE_MESSAGES_H_
