// Certificates and the content trust chain (paper Section 2):
//
//   content key  — owned by the content owner; its public half identifies
//                  the content (self-certifying, per the Mazieres/Kaashoek
//                  reference).
//   master certs — bind a master's contact address (node id here) to its
//                  public key; issued and signed by the content key and
//                  published in the directory.
//   slave certs  — bind a slave's address to its key; signed by the master
//                  that manages the slave and handed to clients at setup.
#ifndef SDR_SRC_CORE_CERTIFICATE_H_
#define SDR_SRC_CORE_CERTIFICATE_H_

#include <cstdint>
#include <string>

#include "src/crypto/signer.h"
#include "src/runtime/env.h"
#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/util/serde.h"

namespace sdr {

enum class Role : uint8_t {
  kMaster = 0,
  kSlave = 1,
  kAuditor = 2,
};

const char* RoleName(Role role);

struct Certificate {
  NodeId subject = kInvalidNode;  // contact address in the simulator
  Role role = Role::kMaster;
  Bytes subject_public_key;
  Bytes signature;  // by the issuer over the body

  // Canonical signed body (everything but the signature).
  Bytes SignedBody() const;

  void EncodeTo(Writer& w) const;
  static Certificate DecodeFrom(Reader& r);

  bool operator==(const Certificate&) const = default;
};

// Issues a certificate signed with `issuer`.
Certificate IssueCertificate(const Signer& issuer, NodeId subject, Role role,
                             const Bytes& subject_public_key);

// Verifies that `cert` is signed by `issuer_public_key` under `scheme`.
bool VerifyCertificate(SignatureScheme scheme, const Bytes& issuer_public_key,
                       const Certificate& cert);

// The content identity: the content public key is the root of trust every
// client is assumed to know a priori (e.g. embedded in the content name).
struct ContentIdentity {
  SignatureScheme scheme = SignatureScheme::kEd25519;
  Bytes content_public_key;
};

}  // namespace sdr

#endif  // SDR_SRC_CORE_CERTIFICATE_H_
