// Protocol and cost-model configuration shared by all roles.
#ifndef SDR_SRC_CORE_CONFIG_H_
#define SDR_SRC_CORE_CONFIG_H_

#include <cstdint>

#include "src/crypto/signer.h"
#include "src/runtime/env.h"

namespace sdr {

// Knobs of the paper's protocol (Sections 3 and 4).
struct ProtocolParams {
  // Bound on the inconsistency window: clients reject pledges whose version
  // token is older than this, and masters space write commits at least this
  // far apart (Section 3.1).
  SimTime max_latency = 2 * kSecond;

  // How often masters push signed "keep-alive" version tokens to slaves.
  SimTime keepalive_period = 500 * kMillisecond;

  // Probability that a client double-checks an accepted read with its
  // master (Section 3.3).
  double double_check_probability = 0.05;

  // Extra wait beyond max_latency before the auditor finalizes a version
  // (accounts for client->auditor network delay; Section 3.4).
  SimTime audit_slack = 500 * kMillisecond;

  // Fraction of submitted pledges the auditor actually re-executes
  // (1.0 = audit everything; lower = sampling fallback, Section 3.4).
  double audit_sample_fraction = 1.0;

  // Whether clients forward pledges to the auditor at all.
  bool audit_enabled = true;

  // The auditor verifies submitted pledge signatures in batches: buffered
  // pledges are flushed through one batch verification once this many have
  // accumulated, or after this window, whichever comes first. The window
  // only delays detection, never correctness — it is far inside
  // audit_slack, so version finalization is unaffected.
  uint32_t audit_verify_batch_size = 16;
  SimTime audit_verify_batch_window = 50 * kMillisecond;

  // Capacity of the auditor's verify-dedup cache (entries, LRU). Sized so
  // the working set of version tokens plus recently re-checked pledge
  // signatures fits; evictions are counted in sig_cache_evictions.
  uint32_t audit_verify_cache_entries = 1024;

  // Whether masters exclude slaves proven malicious. Disabling this is an
  // experimentation knob: it exposes steady-state wrong-answer rates that
  // exclusion would otherwise quickly drive to zero.
  bool exclusion_enabled = true;

  // Client-side request timeout before retrying / re-setup.
  SimTime client_timeout = 3 * kSecond;

  // Master-to-master gossip period (slave lists; also peer liveness).
  SimTime gossip_period = 1 * kSecond;
  // A master silent (no delivered gossip) this long is presumed crashed.
  SimTime master_failure_timeout = 5 * kSecond;

  // Greedy-client policing (Section 3.3): a client whose double-check rate
  // exceeds allowance * double_check_probability * observed read rate gets
  // its excess double-checks ignored. The master estimates read rate from
  // audit-side information in the paper; here it uses a token bucket
  // refilled at `greedy_refill_per_second` with burst `greedy_burst`.
  double greedy_refill_per_second = 1.0;
  double greedy_burst = 20.0;
  bool greedy_policing_enabled = false;

  // ---- Fork-consistency checking (src/forkcheck/, beyond the paper) ----
  // Off by default: with fork checking disabled no wire message, timer,
  // rng draw or report field changes, so disabled-mode outputs stay
  // byte-identical to the fork-unaware protocol.
  bool fork_check_enabled = false;
  // How often a client gossips its latest per-slave version vectors to
  // randomly chosen peer clients (client <-> client kVvExchange).
  SimTime vv_gossip_period = 1 * kSecond;
  // How many peers each gossip round targets.
  uint32_t vv_gossip_fanout = 2;

  // ---- Master-side group commit (scale-out, beyond the paper) ----
  // commit_batch <= 1 keeps the paper's one-write-per-commit path
  // bit-for-bit: no new wire messages, timers or counters. With
  // commit_batch > 1, the origin master accumulates up to commit_batch
  // writes (or for commit_window, whichever fills first) and broadcasts
  // them as one ordered bundle; the commit side applies the bundle under
  // one head token plus one BatchCommit certificate, so the per-write
  // signing cost drops by ~the bundle size while commits stay spaced
  // >= max_latency apart and the inconsistency-window bound is unchanged.
  uint32_t commit_batch = 1;
  SimTime commit_window = 10 * kMillisecond;

  // Signature scheme for all protocol signatures. Ed25519 exercises the
  // real cost asymmetry; HMAC is for very large simulations.
  SignatureScheme scheme = SignatureScheme::kEd25519;
};

// Maps logical work to virtual service time. All values are microseconds of
// simulated server CPU. The shape mirrors the paper's argument: slaves pay
// execute + hash + *sign* per read, the auditor only execute + hash (and can
// cache), masters pay execute + hash per double-check.
//
// sign_us tracks bench_e10_micro on the reference machine: with the
// precomputed-table fast path a full Ed25519Sign measures ~32 us and the
// Signer's steady state (pre-expanded key) ~21 us; the naive ladder it
// replaced measured ~177 us. The default models the expanded-key signer the
// slaves actually run, rounded up for message hashing.
struct CostModel {
  double work_unit_us = 5.0;        // per query-executor work unit
  double hash_us_per_kb = 2.0;      // result hashing
  double sign_us = 25.0;            // producing one signature (see above)
  double audit_cache_hit_us = 1.0;  // auditor serving a repeat query

  // Per-role speed multipliers (>1 = faster server).
  double master_speed = 1.0;
  double slave_speed = 1.0;
  double auditor_speed = 1.0;

  SimTime ExecuteTime(uint64_t cost_units, size_t result_bytes) const {
    double us = work_unit_us * static_cast<double>(cost_units) +
                hash_us_per_kb * (static_cast<double>(result_bytes) / 1024.0);
    return static_cast<SimTime>(us);
  }
  SimTime SignTime() const { return static_cast<SimTime>(sign_us); }
};

}  // namespace sdr

#endif  // SDR_SRC_CORE_CONFIG_H_
