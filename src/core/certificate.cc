#include "src/core/certificate.h"

namespace sdr {

const char* RoleName(Role role) {
  switch (role) {
    case Role::kMaster:
      return "master";
    case Role::kSlave:
      return "slave";
    case Role::kAuditor:
      return "auditor";
  }
  return "?";
}

Bytes Certificate::SignedBody() const {
  Writer w;
  w.Blob(std::string_view("sdr-cert-v1"));
  w.U32(subject);
  w.U8(static_cast<uint8_t>(role));
  w.Blob(subject_public_key);
  return w.Take();
}

void Certificate::EncodeTo(Writer& w) const {
  w.U32(subject);
  w.U8(static_cast<uint8_t>(role));
  w.Blob(subject_public_key);
  w.Blob(signature);
}

Certificate Certificate::DecodeFrom(Reader& r) {
  Certificate c;
  c.subject = r.U32();
  c.role = static_cast<Role>(r.U8());
  c.subject_public_key = r.Blob();
  c.signature = r.Blob();
  return c;
}

Certificate IssueCertificate(const Signer& issuer, NodeId subject, Role role,
                             const Bytes& subject_public_key) {
  Certificate cert;
  cert.subject = subject;
  cert.role = role;
  cert.subject_public_key = subject_public_key;
  cert.signature = issuer.Sign(cert.SignedBody());
  return cert;
}

bool VerifyCertificate(SignatureScheme scheme, const Bytes& issuer_public_key,
                       const Certificate& cert) {
  return VerifySignature(scheme, issuer_public_key, cert.SignedBody(),
                         cert.signature);
}

}  // namespace sdr
