// Versioned operation log with periodic snapshots.
//
// content_version starts at 0 when the content is created; each committed
// write batch increments it. Masters and the auditor use the log to
// materialize the store at any historical version: the auditor audits all
// reads pledged at version v before executing the write that produces v+1,
// and masters use it to re-execute double-checked queries at the pledge's
// version (the pledge may lag the master's head by a state update or two).
#ifndef SDR_SRC_STORE_OPLOG_H_
#define SDR_SRC_STORE_OPLOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/store/document_store.h"
#include "src/util/result.h"
#include "src/util/thread_annotations.h"

namespace sdr {

class OpLog {
 public:
  // `snapshot_interval`: a full store snapshot is retained every N versions
  // (plus version 0), bounding replay cost at the price of memory.
  explicit OpLog(uint64_t snapshot_interval = 16);

  // Appends the batch committed as `version`. Must be head_version() + 1.
  void Append(uint64_t version, WriteBatch batch);

  uint64_t head_version() const { return head_version_; }

  // The batch that produced `version`, or nullptr if unknown.
  const WriteBatch* BatchFor(uint64_t version) const;

  // Materializes the store contents at `version` (0 = empty initial
  // content unless a base snapshot was installed). Fails for versions
  // beyond head.
  //
  // Thread-safety: const and touches no mutable state, so concurrent calls
  // are safe as long as nothing mutates the log — the auditor's re-execution
  // pool relies on this (the owning thread is blocked inside the fork-join
  // while lanes materialize).
  Result<DocumentStore> MaterializeAt(uint64_t version) const;

  // Shared-snapshot cache: committed versions are immutable, so the store
  // at a version can be materialized once and handed out by reference to
  // every re-execution against it, instead of a full map copy per query
  // (the auditor's old per-pledge MaterializeAt dominated its host CPU).
  // Entries are dropped by PruneBelow alongside the batches.
  //
  // Unlike the rest of OpLog (single-writer, lanes read only through the
  // const MaterializeAt), the cache map itself is guarded by shared_mu_ so
  // worker lanes may probe and adopt concurrently; the DocumentStores it
  // hands out are immutable and need no lock.

  // The cached shared snapshot at `version`, or nullptr if none is cached.
  std::shared_ptr<const DocumentStore> CachedSnapshot(uint64_t version) const;

  // Installs `store` as the shared snapshot for `version` (first insert
  // wins) and returns the cached pointer. The caller asserts `store` is the
  // materialization of `version`; typically it came from MaterializeAt on a
  // worker lane.
  std::shared_ptr<const DocumentStore> AdoptSnapshot(uint64_t version,
                                                     DocumentStore store);

  // CachedSnapshot, materializing and caching on miss.
  Result<std::shared_ptr<const DocumentStore>> MaterializeShared(
      uint64_t version);

  size_t shared_snapshots() const {
    std::lock_guard<std::mutex> lock(shared_mu_);
    return shared_.size();
  }

  // Installs the initial content as version 0 (e.g. the corpus the owner
  // created before replication starts).
  void SetBaseSnapshot(DocumentStore base);

  // Live store at head; kept incrementally, cheap to read.
  const DocumentStore& head() const { return head_store_; }

  // Drops batches and snapshots strictly below `version` (the auditor
  // advances this as it finishes auditing old versions).
  void PruneBelow(uint64_t version);

  size_t retained_batches() const { return batches_.size(); }
  size_t retained_snapshots() const { return snapshots_.size(); }

 private:
  uint64_t snapshot_interval_;
  uint64_t head_version_ = 0;
  DocumentStore head_store_;
  std::map<uint64_t, WriteBatch> batches_;      // version -> batch
  std::map<uint64_t, DocumentStore> snapshots_;  // version -> full copy
  // Immutable materializations handed out to re-executors; see above.
  mutable std::mutex shared_mu_;
  // sdrlint:guarded_by(shared_mu_)
  std::map<uint64_t, std::shared_ptr<const DocumentStore>> shared_
      SDR_GUARDED_BY(shared_mu_);
};

}  // namespace sdr

#endif  // SDR_SRC_STORE_OPLOG_H_
