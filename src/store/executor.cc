#include "src/store/executor.h"

#include <algorithm>

#include "src/crypto/sha1.h"

namespace sdr {

Bytes QueryResult::Encode() const {
  Writer w;
  w.U8(static_cast<uint8_t>(type));
  w.U32(static_cast<uint32_t>(rows.size()));
  for (const auto& [key, value] : rows) {
    w.Blob(key);
    w.Blob(value);
  }
  w.I64(scalar);
  w.Bool(empty_aggregate);
  return w.Take();
}

Result<QueryResult> QueryResult::Decode(const Bytes& data) {
  Reader r(data);
  QueryResult res;
  res.type = static_cast<Type>(r.U8());
  uint32_t n = r.U32();
  res.rows.reserve(std::min<uint32_t>(n, 4096));
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string k = r.BlobString();
    std::string v = r.BlobString();
    res.rows.emplace_back(std::move(k), std::move(v));
  }
  res.scalar = r.I64();
  res.empty_aggregate = r.Bool();
  if (!r.Done()) {
    return Error(ErrorCode::kCorrupt, "bad result encoding");
  }
  return res;
}

Bytes QueryResult::Sha1Digest() const {
  return Sha1::Hash(Encode());
}

namespace {

// True when `p` contains no ECMAScript metacharacter, i.e. regex_search
// (p) is exactly substring search. The workload's canned grep patterns are
// plain vocabulary words, so the hot path never builds a regex machine.
bool IsLiteralPattern(const std::string& p) {
  for (char c : p) {
    switch (c) {
      case '.':
      case '^':
      case '$':
      case '|':
      case '(':
      case ')':
      case '[':
      case ']':
      case '{':
      case '}':
      case '*':
      case '+':
      case '?':
      case '\\':
        return false;
      default:
        break;
    }
  }
  return true;
}

}  // namespace

const std::regex* QueryExecutor::CompiledPattern(const std::string& pattern) {
  if (cache_regex_) {
    auto it = regex_cache_.find(pattern);
    if (it != regex_cache_.end()) {
      ++regex_cache_hits_;
      return &it->second;
    }
    auto [pos, inserted] = regex_cache_.emplace(
        pattern, std::regex(pattern, std::regex::ECMAScript));
    (void)inserted;
    return &pos->second;
  }
  scratch_ = std::regex(pattern, std::regex::ECMAScript);
  return &scratch_;
}

Result<QueryExecutor::Outcome> QueryExecutor::Execute(
    const DocumentStore& store, const Query& q) {
  Outcome out;
  QueryResult& res = out.result;

  switch (q.kind) {
    case QueryKind::kGet: {
      res.type = QueryResult::Type::kRows;
      out.cost = 1;
      auto v = store.Get(q.key);
      if (v.has_value()) {
        res.rows.emplace_back(q.key, *v);
      }
      return out;
    }
    case QueryKind::kScan: {
      res.type = QueryResult::Type::kRows;
      auto it = store.RangeBegin(q.range_lo);
      auto end = store.RangeEnd(q.range_hi);
      for (; it != end; ++it) {
        ++out.cost;
        if (q.limit > 0 && res.rows.size() >= q.limit) {
          break;
        }
        res.rows.emplace_back(it->first, it->second);
      }
      out.cost = std::max<uint64_t>(out.cost, 1);
      return out;
    }
    case QueryKind::kGrep: {
      res.type = QueryResult::Type::kRows;
      // Literal patterns (the common case) match by substring search;
      // regex_search over a metacharacter-free ECMAScript pattern is
      // exactly std::string::find, minus the regex engine and its
      // per-match allocations.
      const bool literal = IsLiteralPattern(q.pattern);
      const std::regex* re = nullptr;
      if (!literal) {
        try {
          re = CompiledPattern(q.pattern);
        } catch (const std::regex_error&) {
          return Error(ErrorCode::kParseError, "bad regex: " + q.pattern);
        }
      }
      auto it = store.RangeBegin(q.range_lo);
      auto end = store.RangeEnd(q.range_hi);
      for (; it != end; ++it) {
        out.cost += 1 + it->second.size() / 64;
        if (q.limit > 0 && res.rows.size() >= q.limit) {
          break;
        }
        bool match = literal ? it->second.find(q.pattern) != std::string::npos
                             : std::regex_search(it->second, *re);
        if (match) {
          res.rows.emplace_back(it->first, it->second);
        }
      }
      out.cost = std::max<uint64_t>(out.cost, 1);
      return out;
    }
    case QueryKind::kCount:
    case QueryKind::kSum:
    case QueryKind::kMin:
    case QueryKind::kMax:
    case QueryKind::kAvg: {
      res.type = QueryResult::Type::kScalar;
      auto it = store.RangeBegin(q.range_lo);
      auto end = store.RangeEnd(q.range_hi);
      int64_t count = 0;
      int64_t sum = 0;
      int64_t min_v = 0;
      int64_t max_v = 0;
      int64_t numeric = 0;
      for (; it != end; ++it) {
        ++out.cost;
        ++count;
        int64_t value = 0;
        bool is_numeric = false;
        try {
          size_t pos = 0;
          value = std::stoll(it->second, &pos);
          is_numeric = pos == it->second.size();
        } catch (...) {
          is_numeric = false;
        }
        if (is_numeric) {
          if (numeric == 0) {
            min_v = max_v = value;
          } else {
            min_v = std::min(min_v, value);
            max_v = std::max(max_v, value);
          }
          sum += value;
          ++numeric;
        }
      }
      out.cost = std::max<uint64_t>(out.cost, 1);
      switch (q.kind) {
        case QueryKind::kCount:
          res.scalar = count;
          break;
        case QueryKind::kSum:
          res.scalar = sum;
          res.empty_aggregate = numeric == 0;
          break;
        case QueryKind::kMin:
          res.scalar = min_v;
          res.empty_aggregate = numeric == 0;
          break;
        case QueryKind::kMax:
          res.scalar = max_v;
          res.empty_aggregate = numeric == 0;
          break;
        case QueryKind::kAvg:
          res.scalar = numeric == 0 ? 0 : 1000 * sum / numeric;
          res.empty_aggregate = numeric == 0;
          break;
        default:
          break;
      }
      return out;
    }
  }
  return Error(ErrorCode::kInvalidArgument, "unknown query kind");
}

bool QueryAffectedBy(const Query& q, const WriteBatch& batch) {
  if (q.kind == QueryKind::kGet) {
    for (const WriteOp& op : batch) {
      if (op.key == q.key) {
        return true;
      }
    }
    return false;
  }
  // Range footprint: [range_lo, range_hi), empty bound = unbounded.
  for (const WriteOp& op : batch) {
    if (!q.range_lo.empty() && op.key < q.range_lo) {
      continue;
    }
    if (!q.range_hi.empty() && op.key >= q.range_hi) {
      continue;
    }
    return true;
  }
  return false;
}

}  // namespace sdr
