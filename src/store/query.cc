#include "src/store/query.h"

#include <sstream>
#include <vector>

namespace sdr {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kGet:
      return "GET";
    case QueryKind::kScan:
      return "SCAN";
    case QueryKind::kGrep:
      return "GREP";
    case QueryKind::kCount:
      return "COUNT";
    case QueryKind::kSum:
      return "SUM";
    case QueryKind::kMin:
      return "MIN";
    case QueryKind::kMax:
      return "MAX";
    case QueryKind::kAvg:
      return "AVG";
  }
  return "?";
}

Query Query::Get(std::string key) {
  Query q;
  q.kind = QueryKind::kGet;
  q.key = std::move(key);
  return q;
}

Query Query::Scan(std::string lo, std::string hi, uint32_t limit) {
  Query q;
  q.kind = QueryKind::kScan;
  q.range_lo = std::move(lo);
  q.range_hi = std::move(hi);
  q.limit = limit;
  return q;
}

Query Query::Grep(std::string pattern, std::string lo, std::string hi) {
  Query q;
  q.kind = QueryKind::kGrep;
  q.pattern = std::move(pattern);
  q.range_lo = std::move(lo);
  q.range_hi = std::move(hi);
  return q;
}

Query Query::Aggregate(QueryKind kind, std::string lo, std::string hi) {
  Query q;
  q.kind = kind;
  q.range_lo = std::move(lo);
  q.range_hi = std::move(hi);
  return q;
}

void Query::EncodeTo(Writer& w) const {
  w.U8(static_cast<uint8_t>(kind));
  w.Blob(key);
  w.Blob(range_lo);
  w.Blob(range_hi);
  w.Blob(pattern);
  w.U32(limit);
}

Bytes Query::Encode() const {
  Writer w;
  EncodeTo(w);
  return w.Take();
}

Query Query::DecodeFrom(Reader& r) {
  Query q;
  q.kind = static_cast<QueryKind>(r.U8());
  q.key = r.BlobString();
  q.range_lo = r.BlobString();
  q.range_hi = r.BlobString();
  q.pattern = r.BlobString();
  q.limit = r.U32();
  return q;
}

Result<Query> Query::Decode(const Bytes& data) {
  Reader r(data);
  Query q = DecodeFrom(r);
  if (!r.Done()) {
    return Error(ErrorCode::kCorrupt, "bad query encoding");
  }
  if (static_cast<uint8_t>(q.kind) > static_cast<uint8_t>(QueryKind::kAvg)) {
    return Error(ErrorCode::kCorrupt, "unknown query kind");
  }
  return q;
}

namespace {
// Tokens are space-separated; "*" denotes the empty (unbounded) range end.
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) {
    tokens.push_back(tok);
  }
  return tokens;
}

std::string Unstar(const std::string& s) {
  return s == "*" ? "" : s;
}

std::string Star(const std::string& s) {
  return s.empty() ? "*" : s;
}
}  // namespace

std::string Query::ToText() const {
  std::string out = QueryKindName(kind);
  switch (kind) {
    case QueryKind::kGet:
      out += " " + key;
      break;
    case QueryKind::kScan:
      out += " " + Star(range_lo) + " " + Star(range_hi);
      if (limit > 0) {
        out += " " + std::to_string(limit);
      }
      break;
    case QueryKind::kGrep:
      out += " " + pattern + " " + Star(range_lo) + " " + Star(range_hi);
      break;
    default:
      out += " " + Star(range_lo) + " " + Star(range_hi);
      break;
  }
  return out;
}

Result<Query> Query::Parse(const std::string& text) {
  std::vector<std::string> tokens = Tokenize(text);
  if (tokens.empty()) {
    return Error(ErrorCode::kParseError, "empty query");
  }
  const std::string& op = tokens[0];
  auto args = [&](size_t i) -> std::string {
    return i < tokens.size() ? tokens[i] : "";
  };

  if (op == "GET") {
    if (tokens.size() != 2) {
      return Error(ErrorCode::kParseError, "GET needs exactly one key");
    }
    return Query::Get(tokens[1]);
  }
  if (op == "SCAN") {
    if (tokens.size() < 3 || tokens.size() > 4) {
      return Error(ErrorCode::kParseError, "SCAN needs lo hi [limit]");
    }
    uint32_t limit = 0;
    if (tokens.size() == 4) {
      try {
        limit = static_cast<uint32_t>(std::stoul(tokens[3]));
      } catch (...) {
        return Error(ErrorCode::kParseError, "bad SCAN limit");
      }
    }
    return Query::Scan(Unstar(tokens[1]), Unstar(tokens[2]), limit);
  }
  if (op == "GREP") {
    if (tokens.size() < 2 || tokens.size() > 4) {
      return Error(ErrorCode::kParseError, "GREP needs pattern [lo hi]");
    }
    return Query::Grep(tokens[1], Unstar(args(2)), Unstar(args(3)));
  }
  QueryKind kind;
  if (op == "COUNT") {
    kind = QueryKind::kCount;
  } else if (op == "SUM") {
    kind = QueryKind::kSum;
  } else if (op == "MIN") {
    kind = QueryKind::kMin;
  } else if (op == "MAX") {
    kind = QueryKind::kMax;
  } else if (op == "AVG") {
    kind = QueryKind::kAvg;
  } else {
    return Error(ErrorCode::kParseError, "unknown operator: " + op);
  }
  if (tokens.size() > 3) {
    return Error(ErrorCode::kParseError, op + " takes [lo hi]");
  }
  return Query::Aggregate(kind, Unstar(args(1)), Unstar(args(2)));
}

}  // namespace sdr
