// Query execution with a work-unit cost model and canonical results.
//
// The paper's load arguments (offloading reads to slaves, auditor
// throughput, master double-check overhead) are about *work*, so every
// execution reports a cost in work units alongside the result:
//   GET                    -> 1
//   SCAN / aggregates      -> rows touched (min 1)
//   GREP                   -> rows touched * (1 + value_len / 64)  (regex)
// Benchmarks map work units to simulated service time.
//
// QueryResult has a canonical binary encoding; its SHA-1 is what slaves put
// in pledge packets, so any two honest replicas at the same content_version
// must produce byte-identical encodings. DocumentStore's ordered map makes
// row order deterministic.
#ifndef SDR_SRC_STORE_EXECUTOR_H_
#define SDR_SRC_STORE_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <regex>
#include <string>
#include <vector>

#include "src/store/document_store.h"
#include "src/store/query.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace sdr {

struct QueryResult {
  enum class Type : uint8_t { kNone = 0, kRows = 1, kScalar = 2 };

  Type type = Type::kNone;
  // kRows: matching key/value pairs in key order.
  std::vector<std::pair<std::string, std::string>> rows;
  // kScalar: COUNT/SUM/MIN/MAX; AVG is reported in fixed-point
  // milli-units (floor(1000 * sum / count)) to stay integer-deterministic.
  int64_t scalar = 0;
  // True when a scalar aggregate had no input rows (empty MIN/MAX/AVG).
  bool empty_aggregate = false;

  Bytes Encode() const;
  static Result<QueryResult> Decode(const Bytes& data);

  // SHA-1 of the canonical encoding — the digest embedded in pledges.
  Bytes Sha1Digest() const;

  bool operator==(const QueryResult&) const = default;
};

// Executes queries against a DocumentStore. Stateless apart from a compiled
// regex cache (which the auditor's cache-ablation benchmark toggles).
class QueryExecutor {
 public:
  struct Outcome {
    QueryResult result;
    uint64_t cost = 0;  // work units
  };

  explicit QueryExecutor(bool cache_regex = true)
      : cache_regex_(cache_regex) {}

  // Executes `q` against `store`. Fails only on invalid queries (bad regex,
  // unknown kind); missing keys produce an empty result, not an error.
  Result<Outcome> Execute(const DocumentStore& store, const Query& q);

  uint64_t regex_cache_hits() const { return regex_cache_hits_; }

 private:
  const std::regex* CompiledPattern(const std::string& pattern);

  bool cache_regex_;
  std::map<std::string, std::regex> regex_cache_;
  std::regex scratch_;  // used when caching is disabled
  uint64_t regex_cache_hits_ = 0;
};

// True when applying `batch` could change the result of `q`: some written
// (or deleted) key falls inside the query's key footprint. GET reads one
// key; every other kind reads [range_lo, range_hi) with "" meaning
// unbounded on either side. Conservative — a touched key inside the range
// counts as interference even if the value is unchanged — so a `false` is
// a proof that re-executing `q` before and after the batch yields the same
// result. The auditor's cross-version memo rides on that proof.
bool QueryAffectedBy(const Query& q, const WriteBatch& batch);

}  // namespace sdr

#endif  // SDR_SRC_STORE_EXECUTOR_H_
