#include "src/store/document_store.h"

#include "src/crypto/sha2.h"

namespace sdr {

void WriteOp::EncodeTo(Writer& w) const {
  w.U8(static_cast<uint8_t>(kind));
  w.Blob(key);
  w.Blob(value);
}

WriteOp WriteOp::DecodeFrom(Reader& r) {
  WriteOp op;
  op.kind = static_cast<Kind>(r.U8());
  op.key = r.BlobString();
  op.value = r.BlobString();
  return op;
}

void EncodeBatch(Writer& w, const WriteBatch& batch) {
  w.U32(static_cast<uint32_t>(batch.size()));
  for (const WriteOp& op : batch) {
    op.EncodeTo(w);
  }
}

WriteBatch DecodeBatch(Reader& r) {
  uint32_t n = r.U32();
  WriteBatch batch;
  // Cap reservation: a corrupt length must not allocate unboundedly.
  batch.reserve(std::min<uint32_t>(n, 1024));
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    batch.push_back(WriteOp::DecodeFrom(r));
  }
  return batch;
}

bool DocumentStore::Apply(const WriteOp& op) {
  switch (op.kind) {
    case WriteOp::Kind::kPut:
      data_[op.key] = op.value;
      return true;
    case WriteOp::Kind::kDelete:
      return data_.erase(op.key) > 0;
    case WriteOp::Kind::kAppend:
      data_[op.key] += op.value;
      return true;
  }
  return false;
}

void DocumentStore::ApplyBatch(const WriteBatch& batch) {
  for (const WriteOp& op : batch) {
    Apply(op);
  }
}

std::optional<std::string> DocumentStore::Get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) {
    return std::nullopt;
  }
  return it->second;
}

DocumentStore::Map::const_iterator DocumentStore::RangeBegin(
    const std::string& lo) const {
  return data_.lower_bound(lo);
}

DocumentStore::Map::const_iterator DocumentStore::RangeEnd(
    const std::string& hi) const {
  return hi.empty() ? data_.end() : data_.lower_bound(hi);
}

Bytes DocumentStore::Fingerprint() const {
  Sha256 h;
  for (const auto& [key, value] : data_) {
    Writer w;
    w.Blob(key);
    w.Blob(value);
    h.Update(w.bytes());
  }
  return h.Final();
}

}  // namespace sdr
