// The replicated data content: an ordered key -> document map supporting
// point writes and the rich read queries the paper requires ("not only
// read FileName, but also grep Expression Path").
#ifndef SDR_SRC_STORE_DOCUMENT_STORE_H_
#define SDR_SRC_STORE_DOCUMENT_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/serde.h"

namespace sdr {

// A single mutation. Batches of these form one committed write (one
// content_version increment).
struct WriteOp {
  enum class Kind : uint8_t { kPut = 0, kDelete = 1, kAppend = 2 };

  Kind kind = Kind::kPut;
  std::string key;
  std::string value;  // unused for kDelete

  static WriteOp Put(std::string key, std::string value) {
    return {Kind::kPut, std::move(key), std::move(value)};
  }
  static WriteOp Delete(std::string key) {
    return {Kind::kDelete, std::move(key), ""};
  }
  static WriteOp Append(std::string key, std::string value) {
    return {Kind::kAppend, std::move(key), std::move(value)};
  }

  void EncodeTo(Writer& w) const;
  static WriteOp DecodeFrom(Reader& r);

  bool operator==(const WriteOp&) const = default;
};

using WriteBatch = std::vector<WriteOp>;

void EncodeBatch(Writer& w, const WriteBatch& batch);
WriteBatch DecodeBatch(Reader& r);

// In-memory ordered document store. Deterministic iteration order (std::map)
// keeps query results canonical across replicas.
class DocumentStore {
 public:
  using Map = std::map<std::string, std::string>;

  // Applies one mutation. Returns false for no-ops (deleting a missing key).
  bool Apply(const WriteOp& op);
  void ApplyBatch(const WriteBatch& batch);

  std::optional<std::string> Get(const std::string& key) const;
  bool Contains(const std::string& key) const { return data_.count(key) > 0; }
  size_t size() const { return data_.size(); }
  const Map& data() const { return data_; }

  // Iterator range for keys in [lo, hi); empty hi means unbounded.
  Map::const_iterator RangeBegin(const std::string& lo) const;
  Map::const_iterator RangeEnd(const std::string& hi) const;

  void Clear() { data_.clear(); }

  // Content fingerprint: SHA-256 over all key/value pairs in order. Used by
  // tests to assert replica convergence and by the Merkle baseline.
  Bytes Fingerprint() const;

 private:
  Map data_;
};

}  // namespace sdr

#endif  // SDR_SRC_STORE_DOCUMENT_STORE_H_
