// The read-query language. A Query is what a client sends to a slave, what
// a pledge packet embeds, and what the auditor re-executes. Two cost
// classes deliberately coexist:
//   - cheap point lookups (GET)
//   - expensive whole-range operations (SCAN / GREP / aggregates), the
//     "grep Expression Path" class the paper uses to motivate offloading
//     reads to slaves.
//
// Text syntax (parsed by Query::Parse):
//   GET <key>
//   SCAN <lo> <hi> [<limit>]       keys in [lo, hi), empty-string hi = "*"
//   GREP <pattern> [<lo> <hi>]     regex over values
//   COUNT [<lo> <hi>]
//   SUM | MIN | MAX | AVG [<lo> <hi>]   over integer-valued documents
#ifndef SDR_SRC_STORE_QUERY_H_
#define SDR_SRC_STORE_QUERY_H_

#include <cstdint>
#include <string>

#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/util/serde.h"

namespace sdr {

enum class QueryKind : uint8_t {
  kGet = 0,
  kScan = 1,
  kGrep = 2,
  kCount = 3,
  kSum = 4,
  kMin = 5,
  kMax = 6,
  kAvg = 7,
};

const char* QueryKindName(QueryKind kind);

struct Query {
  QueryKind kind = QueryKind::kGet;
  std::string key;       // kGet only
  std::string range_lo;  // range queries; empty = from start
  std::string range_hi;  // exclusive; empty = to end
  std::string pattern;   // kGrep only (ECMAScript regex)
  uint32_t limit = 0;    // kScan/kGrep row cap; 0 = unlimited

  static Query Get(std::string key);
  static Query Scan(std::string lo, std::string hi, uint32_t limit = 0);
  static Query Grep(std::string pattern, std::string lo = "",
                    std::string hi = "");
  static Query Aggregate(QueryKind kind, std::string lo = "",
                         std::string hi = "");

  // Canonical binary encoding (hashed into pledges — must be deterministic).
  void EncodeTo(Writer& w) const;
  Bytes Encode() const;
  static Query DecodeFrom(Reader& r);
  static Result<Query> Decode(const Bytes& data);

  // Human-readable round-trippable text form.
  std::string ToText() const;
  static Result<Query> Parse(const std::string& text);

  bool operator==(const Query&) const = default;
};

}  // namespace sdr

#endif  // SDR_SRC_STORE_QUERY_H_
