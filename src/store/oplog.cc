#include "src/store/oplog.h"

#include <cassert>

namespace sdr {

OpLog::OpLog(uint64_t snapshot_interval)
    : snapshot_interval_(snapshot_interval == 0 ? 1 : snapshot_interval) {
  snapshots_[0] = DocumentStore();
}

void OpLog::SetBaseSnapshot(DocumentStore base) {
  assert(head_version_ == 0);
  head_store_ = base;
  snapshots_[0] = std::move(base);
}

void OpLog::Append(uint64_t version, WriteBatch batch) {
  assert(version == head_version_ + 1);
  head_store_.ApplyBatch(batch);
  batches_[version] = std::move(batch);
  head_version_ = version;
  if (version % snapshot_interval_ == 0) {
    snapshots_[version] = head_store_;
  }
}

const WriteBatch* OpLog::BatchFor(uint64_t version) const {
  auto it = batches_.find(version);
  return it == batches_.end() ? nullptr : &it->second;
}

Result<DocumentStore> OpLog::MaterializeAt(uint64_t version) const {
  if (version > head_version_) {
    return Error(ErrorCode::kNotFound,
                 "version " + std::to_string(version) + " beyond head " +
                     std::to_string(head_version_));
  }
  if (version == head_version_) {
    return head_store_;
  }
  // Latest snapshot at or below `version`.
  auto snap = snapshots_.upper_bound(version);
  if (snap == snapshots_.begin()) {
    return Error(ErrorCode::kNotFound, "snapshot pruned below requested version");
  }
  --snap;
  DocumentStore store = snap->second;
  for (uint64_t v = snap->first + 1; v <= version; ++v) {
    auto it = batches_.find(v);
    if (it == batches_.end()) {
      return Error(ErrorCode::kNotFound,
                   "batch " + std::to_string(v) + " pruned");
    }
    store.ApplyBatch(it->second);
  }
  return store;
}

std::shared_ptr<const DocumentStore> OpLog::CachedSnapshot(
    uint64_t version) const {
  std::lock_guard<std::mutex> lock(shared_mu_);
  auto it = shared_.find(version);
  return it == shared_.end() ? nullptr : it->second;
}

std::shared_ptr<const DocumentStore> OpLog::AdoptSnapshot(
    uint64_t version, DocumentStore store) {
  // Build outside the lock (a DocumentStore move is cheap, but the
  // make_shared allocation need not serialize lanes), insert under it.
  auto built = std::make_shared<const DocumentStore>(std::move(store));
  std::lock_guard<std::mutex> lock(shared_mu_);
  auto it = shared_.find(version);
  if (it != shared_.end()) {
    return it->second;  // first insert won; drop ours
  }
  shared_[version] = built;
  return built;
}

Result<std::shared_ptr<const DocumentStore>> OpLog::MaterializeShared(
    uint64_t version) {
  if (auto cached = CachedSnapshot(version)) {
    return cached;
  }
  auto store = MaterializeAt(version);
  if (!store.ok()) {
    return store.error();
  }
  return AdoptSnapshot(version, std::move(store).value());
}

void OpLog::PruneBelow(uint64_t version) {
  // Keep the newest snapshot at or below `version` so MaterializeAt(version)
  // still works; drop everything older.
  auto keep = snapshots_.upper_bound(version);
  if (keep != snapshots_.begin()) {
    --keep;
    snapshots_.erase(snapshots_.begin(), keep);
  }
  // Replay always starts from the newest snapshot at or below the requested
  // version, so batches in (kept snapshot, version) are still needed to
  // materialize versions in [version, head]. Only batches at or below the
  // kept snapshot can never be replayed again.
  uint64_t floor = snapshots_.empty() ? version : snapshots_.begin()->first;
  batches_.erase(batches_.begin(), batches_.upper_bound(floor));
  // Shared materializations below `version` can never be requested again.
  std::lock_guard<std::mutex> lock(shared_mu_);
  shared_.erase(shared_.begin(), shared_.lower_bound(version));
}

}  // namespace sdr
