// Drives a chaos scenario against a live cluster, and sweeps one scenario
// across many seeds.
//
// ChaosController wires one Scenario plus a set of InvariantCheckers into
// one Cluster: events are scheduled on the simulator at their virtual
// times, checkers run on a cadence through the cluster's tick hook, and
// every client-accepted read is fed to the checkers.
//
// RunSeedSweep executes the same scenario across N seeds and reports, per
// invariant, which seeds passed and the first violating (seed, virtual
// time, evidence) triple — the paper's "eventually caught" claims turned
// into a pass/fail matrix.
#ifndef SDR_SRC_CHAOS_RUNNER_H_
#define SDR_SRC_CHAOS_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/chaos/checkers.h"
#include "src/chaos/scenario.h"
#include "src/core/cluster.h"

namespace sdr {

struct ChaosControllerOptions {
  SimTime cadence = 250 * kMillisecond;  // invariant-checking tick
};

class ChaosController {
 public:
  ChaosController(Cluster* cluster, Scenario scenario,
                  std::vector<std::unique_ptr<InvariantChecker>> checkers,
                  ChaosControllerOptions options = {});

  // Schedules the scenario's events and registers the checker tick; call
  // once, before the cluster runs. Uninstalled controllers do nothing.
  void Install();

  // Flushes pending accepted reads and runs every checker's finish pass;
  // call after the last RunFor.
  void Finish();

  // First violation per violated checker, in checker order.
  std::vector<Violation> violations() const;
  const std::vector<std::unique_ptr<InvariantChecker>>& checkers() const {
    return checkers_;
  }

  // Resolves a selector against this controller's cluster (random picks
  // consume the controller's deterministic stream). Exposed for tests.
  std::vector<NodeId> Resolve(const NodeSelector& sel);

 private:
  void ApplyEvent(const ChaosEvent& event);
  void Tick(bool finish);
  ChaosContext MakeContext();

  Cluster* cluster_;
  Scenario scenario_;
  std::vector<std::unique_ptr<InvariantChecker>> checkers_;
  ChaosControllerOptions options_;
  Rng rng_;
  std::vector<Cluster::AcceptedRead> new_reads_;
  bool installed_ = false;
  bool finished_ = false;
};

struct SweepOptions {
  uint64_t first_seed = 1;
  int num_seeds = 20;
  SimTime duration = 90 * kSecond;
  SimTime cadence = 250 * kMillisecond;
  // Worker threads for the sweep. Each seed's simulator, cluster, and
  // checkers are confined to one thread, and verdicts are merged in seed
  // order, so the report is byte-identical for any jobs value. Values < 1
  // are treated as 1.
  int jobs = 1;
};

struct SeedVerdict {
  uint64_t seed = 0;
  // Invariant name -> violation, for invariants that fired (empty = pass).
  std::vector<Violation> violations;
  uint64_t accepted_reads = 0;
  uint64_t accepted_wrong = 0;
  uint64_t double_check_mismatches = 0;
  uint64_t auditor_mismatches = 0;
  uint64_t slaves_excluded = 0;

  bool passed(const std::string& invariant) const;
  bool all_passed() const { return violations.empty(); }
};

struct SweepReport {
  std::vector<std::string> invariants;  // names, in checker order
  std::vector<SeedVerdict> seeds;

  int failures(const std::string& invariant) const;
  // First violating triple for an invariant across all seeds, or nullptr.
  const Violation* first_violation(const std::string& invariant) const;
  bool all_passed() const;
  // Printable per-seed verdict matrix plus first-violation details.
  std::string Summary() const;
};

using CheckerFactory =
    std::function<std::vector<std::unique_ptr<InvariantChecker>>(
        const ClusterConfig&)>;

// Runs `scenario` on a fresh cluster per seed. `base` supplies everything
// but the seed. A null factory uses DefaultCheckers. With options.jobs > 1
// seeds run on worker threads; `factory` calls are serialized under a lock,
// but the checkers it returns must not share mutable state across calls.
SweepReport RunSeedSweep(const ClusterConfig& base, const Scenario& scenario,
                         const SweepOptions& options,
                         const CheckerFactory& factory = nullptr);

}  // namespace sdr

#endif  // SDR_SRC_CHAOS_RUNNER_H_
