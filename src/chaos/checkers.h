// Online invariant checking for chaos runs: checkers observe the cluster
// on a virtual-time cadence (plus a per-tick feed of accepted reads) and
// record the first violation with enough evidence to reproduce it —
// (seed, virtual time, human-readable evidence).
//
// The built-ins encode the paper's end-to-end claims:
//   NoWrongReadUndetected — a ground-truth-wrong accepted read must be
//     matched by detection evidence (a client double-check mismatch or an
//     auditor mismatch) within a bound; silent wrong-accepts violate.
//   DetectionLatencyBound — a slave that tells consistent lies must be
//     excluded by some master within a bound of its first lie.
//   ExclusionPermanent — once excluded, a slave never again serves an
//     accepted read (beyond a grace window for replies already in flight).
//   AvailabilityFloor — in every rolling window of non-partitioned time,
//     clients keep accepting reads at no less than a configured rate.
//   TokenFreshness — no accepted read's version token is older than the
//     client's freshness bound (plus the double-check round-trip allowance).
//   NoForkUndetected — a slave that served divergent reads to both of
//     its client sets must be named by fork evidence — and excluded, when
//     exclusion is on — within a bound of the divergence first being
//     served both ways (each such read signs a chain commitment, so the
//     conflicting pair exists as soon as both sets have one).
//   EvidenceTransferable — every emitted evidence chain must verify
//     offline against nothing but the content owner's public key.
// The last two are installed only when params.fork_check_enabled.
#ifndef SDR_SRC_CHAOS_CHECKERS_H_
#define SDR_SRC_CHAOS_CHECKERS_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/cluster.h"

namespace sdr {

// The reproducible failure triple.
struct Violation {
  std::string invariant;
  uint64_t seed = 0;
  SimTime time = 0;
  std::string evidence;

  std::string ToString() const;
};

// What a checker sees on each cadence tick.
struct ChaosContext {
  Cluster* cluster = nullptr;
  uint64_t seed = 0;
  SimTime tick_period = 0;
  // Reads accepted since the previous tick, in acceptance order.
  const std::vector<Cluster::AcceptedRead>* new_reads = nullptr;

  SimTime now() const { return cluster->sim().Now(); }
};

class InvariantChecker {
 public:
  virtual ~InvariantChecker() = default;

  virtual std::string name() const = 0;

  // Called on every cadence tick, and once more (via Finish) after the run.
  virtual void OnTick(const ChaosContext& ctx) = 0;
  // End-of-run hook for checkers with residual state; default re-ticks.
  virtual void OnFinish(const ChaosContext& ctx) { OnTick(ctx); }

  bool violated() const { return violation_.has_value(); }
  const std::optional<Violation>& violation() const { return violation_; }

 protected:
  // Records the first violation; later ones are ignored (the first is the
  // reproducible one — everything after may be fallout).
  void Report(const ChaosContext& ctx, std::string evidence);

 private:
  std::optional<Violation> violation_;
};

// --- Built-in checkers. ----------------------------------------------------

class NoWrongReadUndetected : public InvariantChecker {
 public:
  explicit NoWrongReadUndetected(SimTime bound) : bound_(bound) {}
  std::string name() const override { return "NoWrongReadUndetected"; }
  void OnTick(const ChaosContext& ctx) override;

 private:
  uint64_t EvidenceTotal(const ChaosContext& ctx) const;
  SimTime bound_;
  std::deque<Cluster::AcceptedRead> pending_wrong_;
  uint64_t matched_ = 0;
};

class DetectionLatencyBound : public InvariantChecker {
 public:
  explicit DetectionLatencyBound(SimTime bound) : bound_(bound) {}
  std::string name() const override { return "DetectionLatencyBound"; }
  void OnTick(const ChaosContext& ctx) override;

 private:
  // slave index -> tick time its first consistent lie was observed.
  std::map<int, SimTime> first_lie_seen_;
  std::map<int, bool> excluded_;
  SimTime bound_;
};

class ExclusionPermanent : public InvariantChecker {
 public:
  explicit ExclusionPermanent(SimTime grace) : grace_(grace) {}
  std::string name() const override { return "ExclusionPermanent"; }
  void OnTick(const ChaosContext& ctx) override;

 private:
  std::map<NodeId, SimTime> excluded_at_;  // slave node id -> first seen
  SimTime grace_;
};

class AvailabilityFloor : public InvariantChecker {
 public:
  AvailabilityFloor(double min_accepts_per_second, SimTime warmup,
                    SimTime min_window)
      : floor_(min_accepts_per_second),
        warmup_(warmup),
        min_window_(min_window) {}
  std::string name() const override { return "AvailabilityFloor"; }
  void OnTick(const ChaosContext& ctx) override;
  // No final re-tick: the windowed check already covered the last tick.
  void OnFinish(const ChaosContext&) override {}

 private:
  double floor_;
  SimTime warmup_;
  SimTime min_window_;
  // Rolling window over clear (non-partitioned) time: one entry per tick.
  // A cumulative average would let healthy early throughput mask a total
  // stall for a long time; the window bounds how long a stall can hide.
  struct WindowSample {
    SimTime dt;
    uint64_t accepts;
  };
  std::deque<WindowSample> window_;
  SimTime window_time_ = 0;
  uint64_t window_accepts_ = 0;
};

class NoForkUndetected : public InvariantChecker {
 public:
  explicit NoForkUndetected(SimTime bound) : bound_(bound) {}
  std::string name() const override { return "NoForkUndetected"; }
  void OnTick(const ChaosContext& ctx) override;

 private:
  struct Track {
    // When both client sets had been served divergent reads — from that
    // point conflicting signed commitments exist on both chains, so
    // detection is possible and the clock starts.
    SimTime divergence_served = 0;
    bool resolved = false;
  };
  SimTime bound_;
  std::map<int, Track> tracks_;  // slave index -> state
};

class EvidenceTransferable : public InvariantChecker {
 public:
  std::string name() const override { return "EvidenceTransferable"; }
  void OnTick(const ChaosContext& ctx) override;

 private:
  size_t checked_ = 0;  // prefix of cluster.fork_evidence() already verified
};

class TokenFreshness : public InvariantChecker {
 public:
  // bound_override > 0 replaces the derived per-client bound (the client's
  // effective max_latency plus its double-check timeout allowance).
  explicit TokenFreshness(SimTime bound_override = 0)
      : bound_override_(bound_override) {}
  std::string name() const override { return "TokenFreshness"; }
  void OnTick(const ChaosContext& ctx) override;

 private:
  SimTime bound_override_;
};

// The standard panel with bounds derived from the protocol parameters.
std::vector<std::unique_ptr<InvariantChecker>> DefaultCheckers(
    const ClusterConfig& config);

}  // namespace sdr

#endif  // SDR_SRC_CHAOS_CHECKERS_H_
