#include "src/chaos/runner.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <set>
#include <thread>

#include "src/trace/trace.h"
#include "src/util/logging.h"

namespace sdr {
namespace {

// Timeline label for each fault kind. Exhaustive on purpose
// (sdrlint:protocol-enum): a new chaos event must pick its trace name here.
const char* ChaosEventTraceName(ChaosEvent::Type type) {
  switch (type) {
    case ChaosEvent::Type::kCrash:
      return "chaos.crash";
    case ChaosEvent::Type::kRestart:
      return "chaos.restart";
    case ChaosEvent::Type::kPartition:
      return "chaos.partition";
    case ChaosEvent::Type::kHeal:
      return "chaos.heal";
    case ChaosEvent::Type::kHealAll:
      return "chaos.heal_all";
    case ChaosEvent::Type::kSetLink:
      return "chaos.set_link";
    case ChaosEvent::Type::kSetBehavior:
      return "chaos.set_behavior";
    case ChaosEvent::Type::kBurstWrites:
      return "chaos.burst_writes";
    case ChaosEvent::Type::kPauseAuditor:
      return "chaos.pause_auditor";
    case ChaosEvent::Type::kResumeAuditor:
      return "chaos.resume_auditor";
  }
  return "chaos.unknown";
}

}  // namespace

ChaosController::ChaosController(
    Cluster* cluster, Scenario scenario,
    std::vector<std::unique_ptr<InvariantChecker>> checkers,
    ChaosControllerOptions options)
    : cluster_(cluster),
      scenario_(std::move(scenario)),
      checkers_(std::move(checkers)),
      options_(options),
      // Deterministic per cluster seed, independent of the simulator's own
      // stream so chaos does not perturb protocol-level randomness.
      rng_(cluster->config().seed * 0x9E3779B97F4A7C15ULL + 0xC0FFEE) {}

std::vector<NodeId> ChaosController::Resolve(const NodeSelector& sel) {
  using Role = NodeSelector::Role;
  using Pick = NodeSelector::Pick;

  auto role_count = [this](Role role) -> int {
    switch (role) {
      case Role::kSlave:
        return cluster_->num_slaves();
      case Role::kMaster:
        return cluster_->num_masters();
      case Role::kAuditor:
        return cluster_->num_auditors();
      case Role::kClient:
        return cluster_->num_clients();
      case Role::kAll:
        return static_cast<int>(cluster_->net().node_count());
    }
    return 0;
  };
  auto role_id = [this](Role role, int i) -> NodeId {
    switch (role) {
      case Role::kSlave:
        return cluster_->slave(i).id();
      case Role::kMaster:
        return cluster_->master(i).id();
      case Role::kAuditor:
        return cluster_->auditor(i).id();
      case Role::kClient:
        return cluster_->client(i).id();
      case Role::kAll:
        return static_cast<NodeId>(i + 1);  // ids are dense from 1
    }
    return kInvalidNode;
  };

  std::vector<NodeId> ids;
  int count = role_count(sel.role);
  switch (sel.pick) {
    case Pick::kIndex:
      if (sel.arg < count) {
        ids.push_back(role_id(sel.role, sel.arg));
      }
      break;
    case Pick::kAll:
      for (int i = 0; i < count; ++i) {
        ids.push_back(role_id(sel.role, i));
      }
      break;
    case Pick::kOdd:
    case Pick::kEven:
      for (int i = sel.pick == Pick::kOdd ? 1 : 0; i < count; i += 2) {
        ids.push_back(role_id(sel.role, i));
      }
      break;
    case Pick::kRandom: {
      // k distinct slaves, order-independent of k draws' outcome.
      std::set<int> chosen;
      int want = std::min(sel.arg, count);
      while (static_cast<int>(chosen.size()) < want) {
        chosen.insert(
            static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(count))));
      }
      for (int i : chosen) {
        ids.push_back(role_id(sel.role, i));
      }
      break;
    }
  }
  return ids;
}

void ChaosController::ApplyEvent(const ChaosEvent& event) {
  using Type = ChaosEvent::Type;
  Network& net = cluster_->net();
  if (TraceSink* t = cluster_->sim().trace()) {
    // Fault injections appear as instants on the timeline so a chaos run's
    // anomalies (latency spikes, exclusions) can be read in context.
    t->Instant(TraceRole::kChaos, 0, ChaosEventTraceName(event.type));
  }
  switch (event.type) {
    case Type::kCrash:
      for (NodeId id : Resolve(event.a)) {
        net.SetNodeUp(id, false);
      }
      break;
    case Type::kRestart:
      for (NodeId id : Resolve(event.a)) {
        net.SetNodeUp(id, true);
      }
      break;
    case Type::kPartition:
    case Type::kHeal: {
      bool on = event.type == Type::kPartition;
      std::vector<NodeId> left = Resolve(event.a);
      std::vector<NodeId> right = Resolve(event.b);
      for (NodeId a : left) {
        for (NodeId b : right) {
          if (a != b) {
            net.SetPartitioned(a, b, on);
          }
        }
      }
      break;
    }
    case Type::kHealAll:
      net.ClearPartitions();
      break;
    case Type::kSetLink: {
      std::vector<NodeId> left = Resolve(event.a);
      std::vector<NodeId> right = Resolve(event.b);
      for (NodeId a : left) {
        for (NodeId b : right) {
          if (a != b) {
            net.SetLinkSymmetric(a, b, event.link);
          }
        }
      }
      break;
    }
    case Type::kSetBehavior: {
      std::vector<NodeId> targets = Resolve(event.a);
      for (int s = 0; s < cluster_->num_slaves(); ++s) {
        Slave& slave = cluster_->slave(s);
        if (std::find(targets.begin(), targets.end(), slave.id()) !=
            targets.end()) {
          Slave::Behavior behavior = slave.behavior();
          event.patch.ApplyTo(behavior);
          slave.SetBehavior(behavior);
        }
      }
      break;
    }
    case Type::kBurstWrites: {
      WriteGen gen = cluster_->config().write_gen;
      gen.n_items = cluster_->config().corpus.n_items;
      std::vector<NodeId> targets = Resolve(event.a);
      for (int c = 0; c < cluster_->num_clients(); ++c) {
        Client& client = cluster_->client(c);
        if (std::find(targets.begin(), targets.end(), client.id()) ==
            targets.end()) {
          continue;
        }
        for (int i = 0; i < event.count; ++i) {
          client.IssueWrite(gen.Generate(rng_));
        }
      }
      break;
    }
    case Type::kPauseAuditor:
    case Type::kResumeAuditor: {
      bool pause = event.type == Type::kPauseAuditor;
      std::vector<NodeId> targets = Resolve(event.a);
      bool everything = event.a.role == NodeSelector::Role::kAll;
      for (int a = 0; a < cluster_->num_auditors(); ++a) {
        Auditor& auditor = cluster_->auditor(a);
        if (everything || std::find(targets.begin(), targets.end(),
                                    auditor.id()) != targets.end()) {
          auditor.SetPaused(pause);
        }
      }
      break;
    }
  }
}

ChaosContext ChaosController::MakeContext() {
  ChaosContext ctx;
  ctx.cluster = cluster_;
  ctx.seed = cluster_->config().seed;
  ctx.tick_period = options_.cadence;
  ctx.new_reads = &new_reads_;
  return ctx;
}

void ChaosController::Tick(bool finish) {
  ChaosContext ctx = MakeContext();
  for (auto& checker : checkers_) {
    if (finish) {
      checker->OnFinish(ctx);
    } else {
      checker->OnTick(ctx);
    }
  }
  new_reads_.clear();
}

void ChaosController::Install() {
  if (installed_) {
    return;
  }
  installed_ = true;
  for (const ChaosEvent& event : scenario_.events) {
    cluster_->sim().ScheduleAt(event.at,
                               [this, event] { ApplyEvent(event); });
  }
  cluster_->on_accepted_read = [this](const Cluster::AcceptedRead& read) {
    new_reads_.push_back(read);
  };
  if (!checkers_.empty()) {
    cluster_->AddTickHook(options_.cadence, [this] { Tick(/*finish=*/false); });
  }
}

void ChaosController::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  Tick(/*finish=*/true);
}

std::vector<Violation> ChaosController::violations() const {
  std::vector<Violation> out;
  for (const auto& checker : checkers_) {
    if (checker->violated()) {
      out.push_back(*checker->violation());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Seed sweep.
// ---------------------------------------------------------------------------

bool SeedVerdict::passed(const std::string& invariant) const {
  for (const Violation& v : violations) {
    if (v.invariant == invariant) {
      return false;
    }
  }
  return true;
}

int SweepReport::failures(const std::string& invariant) const {
  int n = 0;
  for (const SeedVerdict& seed : seeds) {
    n += seed.passed(invariant) ? 0 : 1;
  }
  return n;
}

const Violation* SweepReport::first_violation(
    const std::string& invariant) const {
  for (const SeedVerdict& seed : seeds) {
    for (const Violation& v : seed.violations) {
      if (v.invariant == invariant) {
        return &v;
      }
    }
  }
  return nullptr;
}

bool SweepReport::all_passed() const {
  for (const SeedVerdict& seed : seeds) {
    if (!seed.all_passed()) {
      return false;
    }
  }
  return true;
}

std::string SweepReport::Summary() const {
  std::string out;
  char line[512];
  for (const SeedVerdict& seed : seeds) {
    std::snprintf(line, sizeof(line),
                  "seed %-4llu accepted=%-6llu wrong=%-4llu dc-mismatch=%-3llu "
                  "audit-mismatch=%-3llu excluded=%llu  ",
                  static_cast<unsigned long long>(seed.seed),
                  static_cast<unsigned long long>(seed.accepted_reads),
                  static_cast<unsigned long long>(seed.accepted_wrong),
                  static_cast<unsigned long long>(seed.double_check_mismatches),
                  static_cast<unsigned long long>(seed.auditor_mismatches),
                  static_cast<unsigned long long>(seed.slaves_excluded));
    out += line;
    for (const std::string& invariant : invariants) {
      out += invariant + "=" + (seed.passed(invariant) ? "PASS" : "FAIL") + " ";
    }
    out += "\n";
  }
  for (const std::string& invariant : invariants) {
    int failed = failures(invariant);
    std::snprintf(line, sizeof(line), "%-24s %d/%zu seeds passed\n",
                  invariant.c_str(), static_cast<int>(seeds.size()) - failed,
                  seeds.size());
    out += line;
    if (const Violation* v = first_violation(invariant)) {
      out += "  first violation: " + v->ToString() + "\n";
    }
  }
  return out;
}

namespace {

// Runs one seed end to end on the calling thread. Everything it touches —
// simulator, cluster, checkers — is freshly built here, so concurrent calls
// never share mutable state. `invariants_out` is filled only when non-null
// (the caller passes it for seed index 0 alone).
SeedVerdict RunOneSweepSeed(const ClusterConfig& config,
                            const Scenario& scenario,
                            const SweepOptions& options,
                            std::vector<std::unique_ptr<InvariantChecker>>
                                checkers,
                            std::vector<std::string>* invariants_out) {
  if (invariants_out != nullptr) {
    for (const auto& checker : checkers) {
      invariants_out->push_back(checker->name());
    }
  }
  Cluster cluster(config);
  ChaosController controller(&cluster, scenario, std::move(checkers),
                             ChaosControllerOptions{options.cadence});
  controller.Install();
  cluster.RunFor(options.duration);
  controller.Finish();

  SeedVerdict verdict;
  verdict.seed = config.seed;
  verdict.violations = controller.violations();
  Cluster::Totals totals = cluster.ComputeTotals();
  verdict.accepted_reads = totals.reads_accepted;
  verdict.accepted_wrong = cluster.accepted_wrong();
  verdict.double_check_mismatches = totals.double_check_mismatches;
  verdict.auditor_mismatches = totals.auditor_mismatches;
  verdict.slaves_excluded = totals.slaves_excluded;
  return verdict;
}

}  // namespace

SweepReport RunSeedSweep(const ClusterConfig& base, const Scenario& scenario,
                         const SweepOptions& options,
                         const CheckerFactory& factory) {
  SweepReport report;
  if (options.num_seeds <= 0) {
    return report;
  }
  const int jobs =
      std::min(std::max(options.jobs, 1), options.num_seeds);
  report.seeds.resize(static_cast<size_t>(options.num_seeds));

  // The factory is caller-supplied and may not be reentrant, so calls are
  // serialized; the checkers each call returns stay thread-confined.
  std::mutex factory_mu;
  auto make_checkers = [&](const ClusterConfig& config) {
    std::lock_guard<std::mutex> lock(factory_mu);
    return factory ? factory(config) : DefaultCheckers(config);
  };
  auto run_indices = [&](int worker) {
    for (int i = worker; i < options.num_seeds; i += jobs) {
      ClusterConfig config = base;
      config.seed = options.first_seed + static_cast<uint64_t>(i);
      // Only the worker that owns index 0 writes report.invariants, so the
      // merge needs no further synchronization: each verdict slot has
      // exactly one writer.
      report.seeds[static_cast<size_t>(i)] = RunOneSweepSeed(
          config, scenario, options, make_checkers(config),
          i == 0 ? &report.invariants : nullptr);
    }
  };

  if (jobs == 1) {
    run_indices(0);
    return report;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    workers.emplace_back(run_indices, w);
  }
  for (std::thread& t : workers) {
    t.join();
  }
  return report;
}

}  // namespace sdr
