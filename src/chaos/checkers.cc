#include "src/chaos/checkers.h"

#include <algorithm>
#include <cstdio>

#include "src/chaos/scenario.h"

namespace sdr {

std::string Violation::ToString() const {
  return invariant + " violated (seed=" + std::to_string(seed) +
         ", t=" + FormatSimTime(time) + "): " + evidence;
}

void InvariantChecker::Report(const ChaosContext& ctx, std::string evidence) {
  if (violation_.has_value()) {
    return;
  }
  violation_ = Violation{name(), ctx.seed, ctx.now(), std::move(evidence)};
}

// ---------------------------------------------------------------------------
// NoWrongReadUndetected.
// ---------------------------------------------------------------------------

uint64_t NoWrongReadUndetected::EvidenceTotal(const ChaosContext& ctx) const {
  // Detection evidence the protocol can produce for a consistent lie:
  // the client's own double-check mismatch (immediate discovery) or the
  // auditor re-execution mismatch (delayed discovery; the bad-read notice
  // to the victim is downstream of it and may be lost to a partition, so
  // the mismatch itself is the countable event).
  uint64_t total = 0;
  for (int c = 0; c < ctx.cluster->num_clients(); ++c) {
    total += ctx.cluster->client(c).metrics().double_check_mismatches;
  }
  for (int a = 0; a < ctx.cluster->num_auditors(); ++a) {
    total += ctx.cluster->auditor(a).metrics().mismatches_found;
  }
  return total;
}

void NoWrongReadUndetected::OnTick(const ChaosContext& ctx) {
  for (const Cluster::AcceptedRead& read : *ctx.new_reads) {
    if (read.checked && read.wrong) {
      pending_wrong_.push_back(read);
    }
  }
  // Each unit of evidence vouches for one wrong accept, oldest first.
  uint64_t evidence = EvidenceTotal(ctx);
  while (!pending_wrong_.empty() && matched_ < evidence) {
    pending_wrong_.pop_front();
    ++matched_;
  }
  if (!pending_wrong_.empty() &&
      ctx.now() - pending_wrong_.front().accepted_at > bound_) {
    const Cluster::AcceptedRead& read = pending_wrong_.front();
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "wrong read accepted by client %d from slave node %u at "
                  "version %llu (t=%s) with no double-check mismatch or "
                  "auditor mismatch within %s",
                  read.client_index, read.slave,
                  static_cast<unsigned long long>(read.version),
                  FormatSimTime(read.accepted_at).c_str(),
                  FormatSimTime(bound_).c_str());
    Report(ctx, buf);
  }
}

// ---------------------------------------------------------------------------
// DetectionLatencyBound.
// ---------------------------------------------------------------------------

void DetectionLatencyBound::OnTick(const ChaosContext& ctx) {
  if (!ctx.cluster->config().params.exclusion_enabled) {
    return;  // nothing to bound when corrective action is switched off
  }
  for (int s = 0; s < ctx.cluster->num_slaves(); ++s) {
    const Slave& slave = ctx.cluster->slave(s);
    if (slave.metrics().consistent_lies_told > 0 &&
        first_lie_seen_.count(s) == 0) {
      first_lie_seen_[s] = ctx.now();
    }
  }
  for (const auto& [s, first_lie] : first_lie_seen_) {
    if (excluded_[s]) {
      continue;
    }
    const Slave& slave = ctx.cluster->slave(s);
    if (ctx.cluster->ExcludedByAnyMaster(slave.id())) {
      excluded_[s] = true;
      continue;
    }
    if (ctx.now() - first_lie > bound_) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "slave %d (node %u) told %llu consistent lies starting "
                    "~%s but no master excluded it within %s",
                    s, slave.id(),
                    static_cast<unsigned long long>(
                        slave.metrics().consistent_lies_told),
                    FormatSimTime(first_lie).c_str(),
                    FormatSimTime(bound_).c_str());
      Report(ctx, buf);
    }
  }
}

// ---------------------------------------------------------------------------
// ExclusionPermanent.
// ---------------------------------------------------------------------------

void ExclusionPermanent::OnTick(const ChaosContext& ctx) {
  for (int s = 0; s < ctx.cluster->num_slaves(); ++s) {
    NodeId node = ctx.cluster->slave(s).id();
    if (excluded_at_.count(node) == 0 &&
        ctx.cluster->ExcludedByAnyMaster(node)) {
      excluded_at_[node] = ctx.now();
    }
  }
  for (const Cluster::AcceptedRead& read : *ctx.new_reads) {
    auto it = excluded_at_.find(read.slave);
    if (it == excluded_at_.end()) {
      continue;
    }
    if (read.accepted_at > it->second + grace_) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "slave node %u was excluded at %s yet client %d accepted "
                    "a read from it at %s (grace %s)",
                    read.slave, FormatSimTime(it->second).c_str(),
                    read.client_index,
                    FormatSimTime(read.accepted_at).c_str(),
                    FormatSimTime(grace_).c_str());
      Report(ctx, buf);
    }
  }
}

// ---------------------------------------------------------------------------
// AvailabilityFloor.
// ---------------------------------------------------------------------------

void AvailabilityFloor::OnTick(const ChaosContext& ctx) {
  if (ctx.now() <= warmup_) {
    return;  // setup phase: clients are still performing their handshakes
  }
  if (ctx.cluster->net().active_partitions() > 0) {
    return;  // the floor only binds outside partition windows
  }
  window_.push_back({ctx.tick_period, ctx.new_reads->size()});
  window_time_ += ctx.tick_period;
  window_accepts_ += ctx.new_reads->size();
  while (!window_.empty() && window_time_ - window_.front().dt >= min_window_) {
    window_time_ -= window_.front().dt;
    window_accepts_ -= window_.front().accepts;
    window_.pop_front();
  }
  if (window_time_ < min_window_) {
    return;
  }
  double rate = static_cast<double>(window_accepts_) /
                (static_cast<double>(window_time_) / kSecond);
  if (rate < floor_) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "accepted-read rate outside partitions fell to %.3f/s over "
                  "the last %s of clear time (floor %.3f/s)",
                  rate, FormatSimTime(window_time_).c_str(), floor_);
    Report(ctx, buf);
  }
}

// ---------------------------------------------------------------------------
// NoForkUndetected.
// ---------------------------------------------------------------------------

void NoForkUndetected::OnTick(const ChaosContext& ctx) {
  for (int s = 0; s < ctx.cluster->num_slaves(); ++s) {
    // Track a slave only once it has served *divergent* reads to BOTH of
    // its client sets: a forked slave whose assigned clients all landed in
    // one set presents one consistent history — there is no second head to
    // catch, and freshness/audit bounds cover plain staleness. Once both
    // counters tick, both chains carry a post-divergence commitment, so a
    // conflicting pair provably exists and the detection clock can start.
    if (ctx.cluster->slave(s).metrics().equivocations_served > 0 &&
        ctx.cluster->slave(s).metrics().honest_serves_forked > 0 &&
        tracks_.count(s) == 0) {
      tracks_[s] = Track{ctx.now(), false};
    }
  }
  for (auto& [s, track] : tracks_) {
    if (track.resolved) {
      continue;
    }
    NodeId node = ctx.cluster->slave(s).id();
    bool named = false;
    for (const EvidenceChain& chain : ctx.cluster->fork_evidence()) {
      if (chain.a.vv.slave == node) {
        named = true;
        break;
      }
    }
    bool excluded_ok = !ctx.cluster->config().params.exclusion_enabled ||
                       ctx.cluster->ExcludedByAnyMaster(node);
    if (named && excluded_ok) {
      track.resolved = true;
      continue;
    }
    if (ctx.now() - track.divergence_served > bound_) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "slave %d (node %u) served %llu equivocating reads "
                    "(divergent both ways since ~%s) but %s within %s",
                    s, node,
                    static_cast<unsigned long long>(
                        ctx.cluster->slave(s).metrics().equivocations_served),
                    FormatSimTime(track.divergence_served).c_str(),
                    named ? "no master excluded it"
                          : "no fork evidence names it",
                    FormatSimTime(bound_).c_str());
      Report(ctx, buf);
    }
  }
}

// ---------------------------------------------------------------------------
// EvidenceTransferable.
// ---------------------------------------------------------------------------

void EvidenceTransferable::OnTick(const ChaosContext& ctx) {
  const std::vector<EvidenceChain>& chains = ctx.cluster->fork_evidence();
  for (; checked_ < chains.size(); ++checked_) {
    std::string why;
    if (!VerifyEvidenceChain(ctx.cluster->config().params.scheme,
                             ctx.cluster->content().content_public_key,
                             chains[checked_], &why)) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "evidence chain %zu (slave node %u, version %llu) does "
                    "not verify offline: %s",
                    checked_, chains[checked_].a.vv.slave,
                    static_cast<unsigned long long>(
                        chains[checked_].a.vv.content_version),
                    why.c_str());
      Report(ctx, buf);
    }
  }
}

// ---------------------------------------------------------------------------
// TokenFreshness.
// ---------------------------------------------------------------------------

void TokenFreshness::OnTick(const ChaosContext& ctx) {
  for (const Cluster::AcceptedRead& read : *ctx.new_reads) {
    // The client verified freshness when the reply arrived; acceptance may
    // lag by one double-check round trip, which is bounded by the client
    // timeout (a silent master resolves the check at that point).
    SimTime bound =
        bound_override_ > 0
            ? bound_override_
            : ctx.cluster->client(read.client_index).effective_max_latency() +
                  ctx.cluster->config().params.client_timeout;
    SimTime age = read.accepted_at - read.token_timestamp;
    if (age > bound) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "client %d accepted a read from slave node %u whose "
                    "version token was %s old (bound %s)",
                    read.client_index, read.slave,
                    FormatSimTime(age).c_str(), FormatSimTime(bound).c_str());
      Report(ctx, buf);
    }
  }
}

// ---------------------------------------------------------------------------

std::vector<std::unique_ptr<InvariantChecker>> DefaultCheckers(
    const ClusterConfig& config) {
  const ProtocolParams& params = config.params;
  // Delayed discovery needs the pledge to reach the auditor and the audit
  // to run; the finalization rule bounds that by max_latency + slack plus
  // queueing, so give it a few multiples before calling a wrong read
  // silent.
  SimTime detection_bound =
      8 * (params.max_latency + params.audit_slack) + 10 * kSecond;
  std::vector<std::unique_ptr<InvariantChecker>> checkers;
  checkers.push_back(std::make_unique<NoWrongReadUndetected>(detection_bound));
  checkers.push_back(std::make_unique<DetectionLatencyBound>(detection_bound));
  checkers.push_back(
      std::make_unique<ExclusionPermanent>(params.client_timeout));
  checkers.push_back(std::make_unique<AvailabilityFloor>(
      /*min_accepts_per_second=*/0.5, /*warmup=*/5 * kSecond,
      /*min_window=*/10 * kSecond));
  checkers.push_back(std::make_unique<TokenFreshness>());
  if (params.fork_check_enabled) {
    // Fork detection additionally waits on client gossip or an audit
    // submission to pair the conflicting commitments, then the evidence
    // round trip to the owning master — all inside the detection bound's
    // slack.
    checkers.push_back(std::make_unique<NoForkUndetected>(detection_bound));
    checkers.push_back(std::make_unique<EvidenceTransferable>());
  }
  return checkers;
}

}  // namespace sdr
