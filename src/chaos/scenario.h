// Chaos scenarios: a timeline of typed fault-injection events applied to
// node selectors, with a text grammar for the command line and a
// programmatic builder for tests.
//
// Grammar (statements separated by ';'):
//   at <time> crash <sel>
//   at <time> restart <sel>
//   at <time> partition <selA> <selB>
//   at <time> heal <selA> <selB>
//   at <time> heal all
//   at <time> set_link <selA> <selB> [latency=<time>] [jitter=<time>]
//                                    [loss=<p>]
//   at <time> set_behavior <sel> <field>=<value> ...
//   at <time> burst_writes <sel> [count=<n>]
//   at <time> pause_auditor <sel>
//   at <time> resume_auditor <sel>
//
// Times are a number plus a unit: us, ms, s, m ("10s", "1.5s", "250ms").
// Selectors name a role and a pick: slave:3 (index), slaves:* (all),
// slaves:odd / slaves:even, masters:*, auditor:0, clients:*, all, and
// random:k (k distinct random slaves, drawn deterministically per seed).
// set_behavior fields are Slave::Behavior members: lie_probability,
// inconsistent_lie_probability, drop_probability, ignore_updates,
// serve_despite_stale, and the equivocation flags fork_views,
// stale_pledge, split_serve (caught by src/forkcheck/ when
// --fork_check is on).
#ifndef SDR_SRC_CHAOS_SCENARIO_H_
#define SDR_SRC_CHAOS_SCENARIO_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/slave.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/util/result.h"

namespace sdr {

// Which nodes an event applies to, resolved against a live cluster.
struct NodeSelector {
  enum class Role { kSlave, kMaster, kAuditor, kClient, kAll };
  enum class Pick { kIndex, kAll, kOdd, kEven, kRandom };

  Role role = Role::kSlave;
  Pick pick = Pick::kAll;
  // kIndex: the role-local index; kRandom: how many slaves to draw.
  int arg = 0;

  static NodeSelector Index(Role role, int index) {
    return {role, Pick::kIndex, index};
  }
  static NodeSelector All(Role role) { return {role, Pick::kAll, 0}; }
  static NodeSelector Everything() { return {Role::kAll, Pick::kAll, 0}; }
  static NodeSelector RandomSlaves(int k) {
    return {Role::kSlave, Pick::kRandom, k};
  }

  std::string ToString() const;
  static Result<NodeSelector> Parse(const std::string& text);

  bool operator==(const NodeSelector&) const = default;
};

// A sparse overlay on Slave::Behavior: only the named fields change.
struct BehaviorPatch {
  std::optional<double> lie_probability;
  std::optional<double> inconsistent_lie_probability;
  std::optional<double> drop_probability;
  std::optional<bool> ignore_updates;
  std::optional<bool> serve_despite_stale;
  std::optional<bool> fork_views;
  std::optional<bool> stale_pledge;
  std::optional<bool> split_serve;

  void ApplyTo(Slave::Behavior& behavior) const;
  bool empty() const;
  std::string ToString() const;  // "k=v k=v" in canonical field order

  bool operator==(const BehaviorPatch&) const = default;
};

struct ChaosEvent {
  // sdrlint:protocol-enum — fault kinds; every dispatcher must name them all.
  enum class Type {
    kCrash,
    kRestart,
    kPartition,
    kHeal,
    kHealAll,
    kSetLink,
    kSetBehavior,
    kBurstWrites,
    kPauseAuditor,
    kResumeAuditor,
  };

  SimTime at = 0;
  Type type = Type::kCrash;
  NodeSelector a;       // primary selector (unused by kHealAll)
  NodeSelector b;       // second endpoint for partition / heal / set_link
  LinkModel link;       // kSetLink
  BehaviorPatch patch;  // kSetBehavior
  int count = 1;        // kBurstWrites

  std::string ToString() const;  // one parseable statement, canonical form

  bool operator==(const ChaosEvent&) const = default;
};

struct Scenario {
  std::vector<ChaosEvent> events;  // sorted by time (stable on ties)

  bool empty() const { return events.empty(); }
  // "; "-joined canonical statements; ParseScenario round-trips it.
  std::string ToString() const;

  bool operator==(const Scenario&) const = default;
};

// Parses the grammar above. Statements may appear out of time order; the
// returned scenario is sorted. Errors name the offending statement.
Result<Scenario> ParseScenario(const std::string& text);

// Programmatic construction: b.At(10 * kSecond).Crash(...).At(...)...
class ScenarioBuilder {
 public:
  ScenarioBuilder& At(SimTime t) {
    now_ = t;
    return *this;
  }
  ScenarioBuilder& Crash(NodeSelector sel);
  ScenarioBuilder& Restart(NodeSelector sel);
  ScenarioBuilder& Partition(NodeSelector a, NodeSelector b);
  ScenarioBuilder& Heal(NodeSelector a, NodeSelector b);
  ScenarioBuilder& HealAll();
  ScenarioBuilder& SetLink(NodeSelector a, NodeSelector b, LinkModel link);
  ScenarioBuilder& SetBehavior(NodeSelector sel, BehaviorPatch patch);
  ScenarioBuilder& BurstWrites(NodeSelector clients, int count);
  ScenarioBuilder& PauseAuditor(NodeSelector sel);
  ScenarioBuilder& ResumeAuditor(NodeSelector sel);

  Scenario Build();  // stable-sorts by event time

 private:
  ChaosEvent& Push(ChaosEvent::Type type);
  SimTime now_ = 0;
  Scenario scenario_;
};

// "10s" / "250ms" / "1.5s" — the canonical rendering ParseScenario accepts.
std::string FormatSimTime(SimTime t);
Result<SimTime> ParseSimTime(const std::string& text);

}  // namespace sdr

#endif  // SDR_SRC_CHAOS_SCENARIO_H_
