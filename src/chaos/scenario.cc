#include "src/chaos/scenario.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace sdr {

namespace {

Error ParseErr(const std::string& what) {
  return Error(ErrorCode::kParseError, what);
}

std::vector<std::string> SplitWhitespace(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// key=value tokens; returns false on tokens without '='.
bool SplitKeyValue(const std::string& token, std::string* key,
                   std::string* value) {
  size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

Result<double> ParseDouble(const std::string& text) {
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return ParseErr("bad number: '" + text + "'");
  }
  return v;
}

Result<bool> ParseBool(const std::string& text) {
  if (text == "true" || text == "1") {
    return true;
  }
  if (text == "false" || text == "0") {
    return false;
  }
  return ParseErr("bad boolean: '" + text + "' (want true/false)");
}

Result<int> ParseIndex(const std::string& text) {
  char* end = nullptr;
  long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < 0) {
    return ParseErr("bad index: '" + text + "'");
  }
  return static_cast<int>(v);
}

const char* RoleNoun(NodeSelector::Role role, bool plural) {
  switch (role) {
    case NodeSelector::Role::kSlave:
      return plural ? "slaves" : "slave";
    case NodeSelector::Role::kMaster:
      return plural ? "masters" : "master";
    case NodeSelector::Role::kAuditor:
      return plural ? "auditors" : "auditor";
    case NodeSelector::Role::kClient:
      return plural ? "clients" : "client";
    case NodeSelector::Role::kAll:
      return "all";
  }
  return "?";
}

}  // namespace

// ---------------------------------------------------------------------------
// Times.
// ---------------------------------------------------------------------------

std::string FormatSimTime(SimTime t) {
  char buf[48];
  if (t % kSecond == 0) {
    std::snprintf(buf, sizeof(buf), "%llds",
                  static_cast<long long>(t / kSecond));
  } else if (t % kMillisecond == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms",
                  static_cast<long long>(t / kMillisecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(t));
  }
  return buf;
}

Result<SimTime> ParseSimTime(const std::string& text) {
  size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.' ||
          text[i] == '-')) {
    ++i;
  }
  if (i == 0) {
    return ParseErr("bad time: '" + text + "'");
  }
  auto magnitude = ParseDouble(text.substr(0, i));
  if (!magnitude.ok()) {
    return ParseErr("bad time: '" + text + "'");
  }
  std::string unit = text.substr(i);
  double scale = 0;
  if (unit == "us") {
    scale = static_cast<double>(kMicrosecond);
  } else if (unit == "ms") {
    scale = static_cast<double>(kMillisecond);
  } else if (unit == "s") {
    scale = static_cast<double>(kSecond);
  } else if (unit == "m") {
    scale = static_cast<double>(kMinute);
  } else {
    return ParseErr("bad time unit in '" + text + "' (want us/ms/s/m)");
  }
  double value = *magnitude * scale;
  if (value < 0) {
    return ParseErr("negative time: '" + text + "'");
  }
  return static_cast<SimTime>(value);
}

// ---------------------------------------------------------------------------
// Selectors.
// ---------------------------------------------------------------------------

std::string NodeSelector::ToString() const {
  if (role == Role::kAll) {
    return "all";
  }
  if (pick == Pick::kRandom) {
    return "random:" + std::to_string(arg);
  }
  if (pick == Pick::kIndex) {
    return std::string(RoleNoun(role, /*plural=*/false)) + ":" +
           std::to_string(arg);
  }
  std::string out = RoleNoun(role, /*plural=*/true);
  switch (pick) {
    case Pick::kAll:
      return out + ":*";
    case Pick::kOdd:
      return out + ":odd";
    case Pick::kEven:
      return out + ":even";
    default:
      return out;  // unreachable
  }
}

Result<NodeSelector> NodeSelector::Parse(const std::string& text) {
  if (text == "all") {
    return Everything();
  }
  size_t colon = text.find(':');
  if (colon == std::string::npos) {
    return ParseErr("bad selector: '" + text +
                    "' (want role:pick, e.g. slave:2 or slaves:*)");
  }
  std::string role_text = text.substr(0, colon);
  std::string pick_text = text.substr(colon + 1);

  if (role_text == "random") {
    auto k = ParseIndex(pick_text);
    if (!k.ok() || *k <= 0) {
      return ParseErr("bad selector: '" + text + "' (random:k wants k >= 1)");
    }
    return RandomSlaves(*k);
  }

  Role role;
  if (role_text == "slave" || role_text == "slaves") {
    role = Role::kSlave;
  } else if (role_text == "master" || role_text == "masters") {
    role = Role::kMaster;
  } else if (role_text == "auditor" || role_text == "auditors") {
    role = Role::kAuditor;
  } else if (role_text == "client" || role_text == "clients") {
    role = Role::kClient;
  } else {
    return ParseErr("bad selector role: '" + role_text + "'");
  }

  NodeSelector sel;
  sel.role = role;
  if (pick_text == "*") {
    sel.pick = Pick::kAll;
  } else if (pick_text == "odd") {
    sel.pick = Pick::kOdd;
  } else if (pick_text == "even") {
    sel.pick = Pick::kEven;
  } else {
    auto idx = ParseIndex(pick_text);
    if (!idx.ok()) {
      return ParseErr("bad selector pick: '" + text + "'");
    }
    sel.pick = Pick::kIndex;
    sel.arg = *idx;
  }
  return sel;
}

// ---------------------------------------------------------------------------
// Behavior patches.
// ---------------------------------------------------------------------------

void BehaviorPatch::ApplyTo(Slave::Behavior& behavior) const {
  if (lie_probability) {
    behavior.lie_probability = *lie_probability;
  }
  if (inconsistent_lie_probability) {
    behavior.inconsistent_lie_probability = *inconsistent_lie_probability;
  }
  if (drop_probability) {
    behavior.drop_probability = *drop_probability;
  }
  if (ignore_updates) {
    behavior.ignore_updates = *ignore_updates;
  }
  if (serve_despite_stale) {
    behavior.serve_despite_stale = *serve_despite_stale;
  }
  if (fork_views) {
    behavior.fork_views = *fork_views;
  }
  if (stale_pledge) {
    behavior.stale_pledge = *stale_pledge;
  }
  if (split_serve) {
    behavior.split_serve = *split_serve;
  }
}

bool BehaviorPatch::empty() const {
  return !lie_probability && !inconsistent_lie_probability &&
         !drop_probability && !ignore_updates && !serve_despite_stale &&
         !fork_views && !stale_pledge && !split_serve;
}

std::string BehaviorPatch::ToString() const {
  std::string out;
  auto append = [&out](const std::string& kv) {
    if (!out.empty()) {
      out += ' ';
    }
    out += kv;
  };
  if (lie_probability) {
    append("lie_probability=" + FormatDouble(*lie_probability));
  }
  if (inconsistent_lie_probability) {
    append("inconsistent_lie_probability=" +
           FormatDouble(*inconsistent_lie_probability));
  }
  if (drop_probability) {
    append("drop_probability=" + FormatDouble(*drop_probability));
  }
  if (ignore_updates) {
    append(std::string("ignore_updates=") +
           (*ignore_updates ? "true" : "false"));
  }
  if (serve_despite_stale) {
    append(std::string("serve_despite_stale=") +
           (*serve_despite_stale ? "true" : "false"));
  }
  if (fork_views) {
    append(std::string("fork_views=") + (*fork_views ? "true" : "false"));
  }
  if (stale_pledge) {
    append(std::string("stale_pledge=") + (*stale_pledge ? "true" : "false"));
  }
  if (split_serve) {
    append(std::string("split_serve=") + (*split_serve ? "true" : "false"));
  }
  return out;
}

namespace {

Status ApplyBehaviorField(BehaviorPatch& patch, const std::string& key,
                          const std::string& value) {
  if (key == "ignore_updates" || key == "serve_despite_stale" ||
      key == "fork_views" || key == "stale_pledge" || key == "split_serve") {
    auto flag = ParseBool(value);
    if (!flag.ok()) {
      return flag.error();
    }
    if (key == "ignore_updates") {
      patch.ignore_updates = *flag;
    } else if (key == "serve_despite_stale") {
      patch.serve_despite_stale = *flag;
    } else if (key == "fork_views") {
      patch.fork_views = *flag;
    } else if (key == "stale_pledge") {
      patch.stale_pledge = *flag;
    } else {
      patch.split_serve = *flag;
    }
    return Status::Ok();
  }
  auto p = ParseDouble(value);
  if (!p.ok()) {
    return p.error();
  }
  if (*p < 0.0 || *p > 1.0) {
    return ParseErr("probability out of [0,1]: " + key + "=" + value);
  }
  if (key == "lie_probability") {
    patch.lie_probability = *p;
  } else if (key == "inconsistent_lie_probability") {
    patch.inconsistent_lie_probability = *p;
  } else if (key == "drop_probability") {
    patch.drop_probability = *p;
  } else {
    return ParseErr("unknown behavior field: '" + key + "'");
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Events and scenarios.
// ---------------------------------------------------------------------------

std::string ChaosEvent::ToString() const {
  std::string out = "at " + FormatSimTime(at) + " ";
  switch (type) {
    case Type::kCrash:
      return out + "crash " + a.ToString();
    case Type::kRestart:
      return out + "restart " + a.ToString();
    case Type::kPartition:
      return out + "partition " + a.ToString() + " " + b.ToString();
    case Type::kHeal:
      return out + "heal " + a.ToString() + " " + b.ToString();
    case Type::kHealAll:
      return out + "heal all";
    case Type::kSetLink:
      return out + "set_link " + a.ToString() + " " + b.ToString() +
             " latency=" + FormatSimTime(link.base_latency) +
             " jitter=" + FormatSimTime(link.jitter) +
             " loss=" + FormatDouble(link.drop_probability);
    case Type::kSetBehavior:
      return out + "set_behavior " + a.ToString() + " " + patch.ToString();
    case Type::kBurstWrites:
      return out + "burst_writes " + a.ToString() +
             " count=" + std::to_string(count);
    case Type::kPauseAuditor:
      return out + "pause_auditor " + a.ToString();
    case Type::kResumeAuditor:
      return out + "resume_auditor " + a.ToString();
  }
  return out;
}

std::string Scenario::ToString() const {
  std::string out;
  for (const ChaosEvent& event : events) {
    if (!out.empty()) {
      out += "; ";
    }
    out += event.ToString();
  }
  return out;
}

namespace {

// One statement: tokens after "at <time>" have been peeled off.
Result<ChaosEvent> ParseStatement(const std::string& statement) {
  std::vector<std::string> tokens = SplitWhitespace(statement);
  if (tokens.empty()) {
    return ParseErr("empty statement");
  }
  if (tokens.size() < 3 || tokens[0] != "at") {
    return ParseErr("statement must start with 'at <time> <verb>': '" +
                    statement + "'");
  }
  auto at = ParseSimTime(tokens[1]);
  if (!at.ok()) {
    return at.error();
  }
  ChaosEvent event;
  event.at = *at;
  const std::string& verb = tokens[2];
  std::vector<std::string> args(tokens.begin() + 3, tokens.end());

  auto need_one_selector = [&](ChaosEvent::Type type) -> Result<ChaosEvent> {
    if (args.size() != 1) {
      return ParseErr("'" + verb + "' wants exactly one selector: '" +
                      statement + "'");
    }
    auto sel = NodeSelector::Parse(args[0]);
    if (!sel.ok()) {
      return sel.error();
    }
    event.type = type;
    event.a = *sel;
    return event;
  };

  auto two_selectors = [&](size_t extra_args) -> Status {
    if (args.size() < 2 + extra_args) {
      return ParseErr("'" + verb + "' wants two selectors: '" + statement +
                      "'");
    }
    auto a = NodeSelector::Parse(args[0]);
    if (!a.ok()) {
      return a.error();
    }
    auto b = NodeSelector::Parse(args[1]);
    if (!b.ok()) {
      return b.error();
    }
    event.a = *a;
    event.b = *b;
    return Status::Ok();
  };

  if (verb == "crash") {
    return need_one_selector(ChaosEvent::Type::kCrash);
  }
  if (verb == "restart") {
    return need_one_selector(ChaosEvent::Type::kRestart);
  }
  if (verb == "pause_auditor") {
    auto parsed = need_one_selector(ChaosEvent::Type::kPauseAuditor);
    if (parsed.ok() && parsed->a.role != NodeSelector::Role::kAuditor &&
        parsed->a.role != NodeSelector::Role::kAll) {
      return ParseErr("pause_auditor wants an auditor selector: '" +
                      statement + "'");
    }
    return parsed;
  }
  if (verb == "resume_auditor") {
    auto parsed = need_one_selector(ChaosEvent::Type::kResumeAuditor);
    if (parsed.ok() && parsed->a.role != NodeSelector::Role::kAuditor &&
        parsed->a.role != NodeSelector::Role::kAll) {
      return ParseErr("resume_auditor wants an auditor selector: '" +
                      statement + "'");
    }
    return parsed;
  }
  if (verb == "partition") {
    if (Status s = two_selectors(0); !s.ok()) {
      return s.error();
    }
    if (args.size() != 2) {
      return ParseErr("partition wants exactly two selectors: '" + statement +
                      "'");
    }
    event.type = ChaosEvent::Type::kPartition;
    return event;
  }
  if (verb == "heal") {
    if (args.size() == 1 && args[0] == "all") {
      event.type = ChaosEvent::Type::kHealAll;
      return event;
    }
    if (Status s = two_selectors(0); !s.ok()) {
      return s.error();
    }
    if (args.size() != 2) {
      return ParseErr("heal wants two selectors or 'all': '" + statement +
                      "'");
    }
    event.type = ChaosEvent::Type::kHeal;
    return event;
  }
  if (verb == "set_link") {
    if (Status s = two_selectors(0); !s.ok()) {
      return s.error();
    }
    event.type = ChaosEvent::Type::kSetLink;
    for (size_t i = 2; i < args.size(); ++i) {
      std::string key, value;
      if (!SplitKeyValue(args[i], &key, &value)) {
        return ParseErr("set_link wants key=value, got '" + args[i] + "'");
      }
      if (key == "latency") {
        auto t = ParseSimTime(value);
        if (!t.ok()) {
          return t.error();
        }
        event.link.base_latency = *t;
      } else if (key == "jitter") {
        auto t = ParseSimTime(value);
        if (!t.ok()) {
          return t.error();
        }
        event.link.jitter = *t;
      } else if (key == "loss") {
        auto p = ParseDouble(value);
        if (!p.ok()) {
          return p.error();
        }
        if (*p < 0.0 || *p > 1.0) {
          return ParseErr("loss out of [0,1]: '" + value + "'");
        }
        event.link.drop_probability = *p;
      } else {
        return ParseErr("unknown set_link key: '" + key + "'");
      }
    }
    return event;
  }
  if (verb == "set_behavior") {
    if (args.size() < 2) {
      return ParseErr(
          "set_behavior wants a selector and at least one field=value: '" +
          statement + "'");
    }
    auto sel = NodeSelector::Parse(args[0]);
    if (!sel.ok()) {
      return sel.error();
    }
    if (sel->role != NodeSelector::Role::kSlave) {
      return ParseErr("set_behavior only applies to slaves: '" + statement +
                      "'");
    }
    event.type = ChaosEvent::Type::kSetBehavior;
    event.a = *sel;
    for (size_t i = 1; i < args.size(); ++i) {
      std::string key, value;
      if (!SplitKeyValue(args[i], &key, &value)) {
        return ParseErr("set_behavior wants field=value, got '" + args[i] +
                        "'");
      }
      if (Status s = ApplyBehaviorField(event.patch, key, value); !s.ok()) {
        return s.error();
      }
    }
    return event;
  }
  if (verb == "burst_writes") {
    if (args.empty()) {
      return ParseErr("burst_writes wants a client selector: '" + statement +
                      "'");
    }
    auto sel = NodeSelector::Parse(args[0]);
    if (!sel.ok()) {
      return sel.error();
    }
    if (sel->role != NodeSelector::Role::kClient) {
      return ParseErr("burst_writes only applies to clients: '" + statement +
                      "'");
    }
    event.type = ChaosEvent::Type::kBurstWrites;
    event.a = *sel;
    event.count = 10;
    for (size_t i = 1; i < args.size(); ++i) {
      std::string key, value;
      if (!SplitKeyValue(args[i], &key, &value) || key != "count") {
        return ParseErr("burst_writes wants count=<n>, got '" + args[i] + "'");
      }
      auto n = ParseIndex(value);
      if (!n.ok() || *n <= 0) {
        return ParseErr("bad burst_writes count: '" + value + "'");
      }
      event.count = *n;
    }
    return event;
  }
  return ParseErr("unknown chaos verb: '" + verb + "'");
}

}  // namespace

Result<Scenario> ParseScenario(const std::string& text) {
  Scenario scenario;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t semi = text.find(';', pos);
    std::string statement = text.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    // Skip blank segments (trailing ';', empty input).
    if (!SplitWhitespace(statement).empty()) {
      auto event = ParseStatement(statement);
      if (!event.ok()) {
        return event.error();
      }
      scenario.events.push_back(*event);
    }
    if (semi == std::string::npos) {
      break;
    }
    pos = semi + 1;
  }
  std::stable_sort(
      scenario.events.begin(), scenario.events.end(),
      [](const ChaosEvent& x, const ChaosEvent& y) { return x.at < y.at; });
  return scenario;
}

// ---------------------------------------------------------------------------
// Builder.
// ---------------------------------------------------------------------------

ChaosEvent& ScenarioBuilder::Push(ChaosEvent::Type type) {
  ChaosEvent event;
  event.at = now_;
  event.type = type;
  scenario_.events.push_back(event);
  return scenario_.events.back();
}

ScenarioBuilder& ScenarioBuilder::Crash(NodeSelector sel) {
  Push(ChaosEvent::Type::kCrash).a = sel;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Restart(NodeSelector sel) {
  Push(ChaosEvent::Type::kRestart).a = sel;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Partition(NodeSelector a, NodeSelector b) {
  ChaosEvent& event = Push(ChaosEvent::Type::kPartition);
  event.a = a;
  event.b = b;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Heal(NodeSelector a, NodeSelector b) {
  ChaosEvent& event = Push(ChaosEvent::Type::kHeal);
  event.a = a;
  event.b = b;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::HealAll() {
  Push(ChaosEvent::Type::kHealAll);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::SetLink(NodeSelector a, NodeSelector b,
                                          LinkModel link) {
  ChaosEvent& event = Push(ChaosEvent::Type::kSetLink);
  event.a = a;
  event.b = b;
  event.link = link;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::SetBehavior(NodeSelector sel,
                                              BehaviorPatch patch) {
  ChaosEvent& event = Push(ChaosEvent::Type::kSetBehavior);
  event.a = sel;
  event.patch = patch;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::BurstWrites(NodeSelector clients,
                                              int count) {
  ChaosEvent& event = Push(ChaosEvent::Type::kBurstWrites);
  event.a = clients;
  event.count = count;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::PauseAuditor(NodeSelector sel) {
  Push(ChaosEvent::Type::kPauseAuditor).a = sel;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::ResumeAuditor(NodeSelector sel) {
  Push(ChaosEvent::Type::kResumeAuditor).a = sel;
  return *this;
}

Scenario ScenarioBuilder::Build() {
  std::stable_sort(
      scenario_.events.begin(), scenario_.events.end(),
      [](const ChaosEvent& x, const ChaosEvent& y) { return x.at < y.at; });
  return std::move(scenario_);
}

}  // namespace sdr
