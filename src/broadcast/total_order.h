// Reliable, totally-ordered broadcast among the master servers.
//
// The paper requires masters to be "fully connected to each other through
// secure communication links, and implement a reliable, total-ordering
// broadcast protocol that can tolerate benign (non-malicious) server
// failures", citing Kaashoek et al.'s sequencer-based protocol. This is a
// sequencer protocol in that spirit:
//
//   - one member (the sequencer for the current epoch) assigns a global
//     sequence number to every submitted message and re-broadcasts it;
//   - members deliver strictly in sequence order, holding back
//     out-of-order arrivals and NACKing gaps for retransmission;
//   - origins retransmit unacknowledged submissions (dedup at the
//     sequencer by (origin, local_id));
//   - the sequencer heartbeats; silence beyond failure_timeout makes
//     members advance the epoch, rotating the sequencer role to
//     group[epoch % n], with a short state-sync round so no ordered
//     message is lost (benign crashes only — Byzantine masters are outside
//     the paper's trust model, masters are trusted).
//
// The class is transport-agnostic: the owner supplies a send callback and
// feeds incoming wire payloads to OnMessage(). All timing runs on the
// owning node's Env (virtual time in simulation, wall clock on a live
// node).
#ifndef SDR_SRC_BROADCAST_TOTAL_ORDER_H_
#define SDR_SRC_BROADCAST_TOTAL_ORDER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/runtime/env.h"
#include "src/util/bytes.h"
#include "src/util/serde.h"

namespace sdr {

class TotalOrderBroadcast {
 public:
  struct Config {
    std::vector<NodeId> group;  // static membership, all masters
    SimTime heartbeat_period = 200 * kMillisecond;
    SimTime failure_timeout = 1 * kSecond;
    SimTime retransmit_timeout = 300 * kMillisecond;
    SimTime sync_window = 400 * kMillisecond;  // takeover state-sync wait
    // Ask for a gap at most once per retransmit window instead of on every
    // arrival behind it (see MaybeNackGap). Off by default: duplicate gap
    // nacks are visible in network message counts, and classic
    // single-group configs must stay byte-identical to the original
    // protocol. The cluster turns this on with any scale-out feature —
    // at high broadcast rates per-message link jitter reorders the
    // ordered stream constantly, and re-nacking per arrival makes the
    // sequencer re-serve a retransmission window per message, a storm
    // quadratic in the broadcast rate.
    bool dedup_gap_nacks = false;
  };

  using SendFn = std::function<void(NodeId to, const Bytes& payload)>;
  // Called exactly once per message, in sequence order, on every live
  // member (including the origin and the sequencer).
  using DeliverFn =
      std::function<void(uint64_t seq, NodeId origin, const Bytes& payload)>;

  TotalOrderBroadcast(Env* env, Node* owner, Config config, SendFn send,
                      DeliverFn deliver);

  // Arms timers. Call once after the network is wired.
  void Start();

  // Submits a message for total ordering; returns the local id used for
  // retransmission tracking.
  uint64_t Broadcast(Bytes payload);

  // Feeds a received broadcast-protocol payload.
  void OnMessage(NodeId from, BytesView payload);

  uint64_t epoch() const { return epoch_; }
  NodeId sequencer() const;
  bool IsSequencer() const;
  uint64_t delivered_seq() const { return delivered_seq_; }
  size_t pending_submissions() const { return pending_.size(); }

  // Drops ordered-log entries with seq < `seq` (they can no longer be
  // fetched for retransmission).
  void PruneLogBelow(uint64_t seq);

 private:
  enum MsgType : uint8_t {
    kSubmit = 1,
    kOrdered = 2,
    kNack = 3,
    kHeartbeat = 4,
    kNewEpoch = 5,
    kSyncInfo = 6,
  };

  struct OrderedMsg {
    NodeId origin;
    uint64_t local_id;
    Bytes payload;
  };

  void SendToAll(const Bytes& payload, bool include_self);
  void AdoptEpoch(uint64_t epoch);
  void HandleSubmit(NodeId from, Reader& r);
  void HandleOrdered(Reader& r);
  void HandleNack(NodeId from, Reader& r);
  void HandleHeartbeat(NodeId from, Reader& r);
  void HandleNewEpoch(NodeId from, Reader& r);
  void HandleSyncInfo(Reader& r);
  void OrderAndSend(NodeId origin, uint64_t local_id, const Bytes& payload);
  void StoreOrdered(uint64_t seq, OrderedMsg msg);
  void DeliverReady();
  void MaybeNackGap();
  void HeartbeatTick();
  void RetransmitTick();
  void FailureCheckTick();
  void AnnounceEpoch();
  void FinishTakeover();
  uint64_t MaxKnownSeq() const;
  bool Active() const { return started_ && owner_->up(); }

  Env* env_;
  Node* owner_;
  Config config_;
  SendFn send_;
  DeliverFn deliver_;

  bool started_ = false;
  uint64_t epoch_ = 0;
  uint64_t next_seq_ = 1;        // sequencer only
  uint64_t delivered_seq_ = 0;   // highest delivered
  SimTime last_heard_ = 0;       // last sign of life from the sequencer

  // Sequencer dedup: (origin, local_id) -> assigned seq.
  std::map<std::pair<NodeId, uint64_t>, uint64_t> assigned_;
  // All ordered messages seen (also serves retransmissions).
  std::map<uint64_t, OrderedMsg> log_;
  // Our unacknowledged submissions.
  uint64_t next_local_id_ = 1;
  std::map<uint64_t, Bytes> pending_;

  // Gap-nack suppression (see MaybeNackGap): the last sequence number we
  // nacked and when, so a reordered burst asks for a gap once per
  // retransmit window instead of once per arrival.
  uint64_t last_nack_seq_ = 0;
  SimTime last_nack_time_ = 0;

  // Takeover state (valid while we are the epoch's sequencer and syncing).
  // A takeover completes only after a majority of the group answered the
  // kNewEpoch announcement: a member isolated in a minority partition can
  // therefore never finish self-electing, which keeps a healed partition
  // from resurrecting with conflicting sequence numbers.
  bool syncing_ = false;
  uint64_t sync_max_seq_ = 0;
  size_t sync_responses_ = 0;
};

}  // namespace sdr

#endif  // SDR_SRC_BROADCAST_TOTAL_ORDER_H_
