#include "src/broadcast/total_order.h"

#include <algorithm>
#include <cassert>

#include "src/util/logging.h"
#include "src/util/serde.h"

namespace sdr {

TotalOrderBroadcast::TotalOrderBroadcast(Env* env, Node* owner, Config config,
                                         SendFn send, DeliverFn deliver)
    : env_(env),
      owner_(owner),
      config_(std::move(config)),
      send_(std::move(send)),
      deliver_(std::move(deliver)) {
  assert(!config_.group.empty());
}

NodeId TotalOrderBroadcast::sequencer() const {
  return config_.group[epoch_ % config_.group.size()];
}

bool TotalOrderBroadcast::IsSequencer() const {
  return sequencer() == owner_->id();
}

void TotalOrderBroadcast::Start() {
  started_ = true;
  last_heard_ = env_->Now();
  HeartbeatTick();
  RetransmitTick();
  FailureCheckTick();
}

void TotalOrderBroadcast::SendToAll(const Bytes& payload, bool include_self) {
  for (NodeId member : config_.group) {
    if (member == owner_->id()) {
      if (include_self) {
        OnMessage(owner_->id(), payload);
      }
      continue;
    }
    send_(member, payload);
  }
}

uint64_t TotalOrderBroadcast::Broadcast(Bytes payload) {
  uint64_t local_id = next_local_id_++;
  pending_[local_id] = payload;

  if (IsSequencer()) {
    OrderAndSend(owner_->id(), local_id, payload);
  } else {
    Writer w;
    w.U8(kSubmit);
    w.U64(epoch_);
    w.U32(owner_->id());
    w.U64(local_id);
    w.Blob(payload);
    send_(sequencer(), w.Take());
  }
  return local_id;
}

void TotalOrderBroadcast::OnMessage(NodeId from, BytesView payload) {
  if (!Active()) {
    return;
  }
  Reader r(payload);
  uint8_t type = r.U8();
  switch (type) {
    case kSubmit:
      HandleSubmit(from, r);
      break;
    case kOrdered:
      HandleOrdered(r);
      break;
    case kNack:
      HandleNack(from, r);
      break;
    case kHeartbeat:
      HandleHeartbeat(from, r);
      break;
    case kNewEpoch:
      HandleNewEpoch(from, r);
      break;
    case kSyncInfo:
      HandleSyncInfo(r);
      break;
    default:
      SDR_LOG(kWarn) << "broadcast: unknown message type " << int(type);
  }
}

void TotalOrderBroadcast::AdoptEpoch(uint64_t epoch) {
  if (epoch > epoch_) {
    epoch_ = epoch;
    syncing_ = false;
    last_heard_ = env_->Now();
  }
}

void TotalOrderBroadcast::HandleSubmit(NodeId from, Reader& r) {
  uint64_t epoch = r.U64();
  NodeId origin = r.U32();
  uint64_t local_id = r.U64();
  Bytes payload = r.Blob();
  if (!r.ok()) {
    return;
  }
  (void)from;
  AdoptEpoch(epoch);
  if (!IsSequencer()) {
    // Misrouted (stale sequencer view at the origin); the origin's
    // retransmit timer will redirect to the current sequencer.
    return;
  }
  if (syncing_) {
    // Defer ordering until takeover sync completes; the origin retransmits.
    return;
  }
  OrderAndSend(origin, local_id, payload);
}

void TotalOrderBroadcast::OrderAndSend(NodeId origin, uint64_t local_id,
                                       const Bytes& payload) {
  auto key = std::make_pair(origin, local_id);
  auto it = assigned_.find(key);
  uint64_t seq;
  if (it != assigned_.end()) {
    seq = it->second;  // duplicate submit: re-announce the same ordering
  } else {
    seq = next_seq_++;
    assigned_[key] = seq;
    StoreOrdered(seq, OrderedMsg{origin, local_id, payload});
    DeliverReady();
  }
  Writer w;
  w.U8(kOrdered);
  w.U64(epoch_);
  w.U64(seq);
  w.U32(origin);
  w.U64(local_id);
  w.Blob(payload);
  SendToAll(w.Take(), /*include_self=*/false);
}

void TotalOrderBroadcast::HandleOrdered(Reader& r) {
  uint64_t epoch = r.U64();
  uint64_t seq = r.U64();
  NodeId origin = r.U32();
  uint64_t local_id = r.U64();
  Bytes payload = r.Blob();
  if (!r.ok()) {
    return;
  }
  AdoptEpoch(epoch);
  last_heard_ = env_->Now();
  StoreOrdered(seq, OrderedMsg{origin, local_id, payload});
  DeliverReady();
  MaybeNackGap();
}

void TotalOrderBroadcast::StoreOrdered(uint64_t seq, OrderedMsg msg) {
  if (seq <= delivered_seq_ || log_.count(seq) > 0) {
    return;  // duplicate
  }
  if (msg.origin == owner_->id()) {
    pending_.erase(msg.local_id);
  }
  log_.emplace(seq, std::move(msg));
}

void TotalOrderBroadcast::DeliverReady() {
  auto it = log_.find(delivered_seq_ + 1);
  while (it != log_.end()) {
    const OrderedMsg& msg = it->second;
    ++delivered_seq_;
    deliver_(delivered_seq_, msg.origin, msg.payload);
    it = log_.find(delivered_seq_ + 1);
  }
}

void TotalOrderBroadcast::MaybeNackGap() {
  uint64_t max_seen = MaxKnownSeq();
  if (max_seen > delivered_seq_ && log_.count(delivered_seq_ + 1) == 0) {
    // One nack per distinct gap per retransmit window (when enabled).
    // Jitter-scale gaps close by themselves; a gap from real loss is
    // re-nacked after the window here, and independently whenever a
    // sequencer heartbeat shows us behind.
    uint64_t want = delivered_seq_ + 1;
    if (config_.dedup_gap_nacks) {
      SimTime now = env_->Now();
      if (want == last_nack_seq_ &&
          now - last_nack_time_ < config_.retransmit_timeout) {
        return;
      }
      last_nack_seq_ = want;
      last_nack_time_ = now;
    }
    Writer w;
    w.U8(kNack);
    w.U64(epoch_);
    w.U64(want);
    if (!IsSequencer()) {
      send_(sequencer(), w.Take());
    }
  }
}

void TotalOrderBroadcast::HandleNack(NodeId from, Reader& r) {
  uint64_t epoch = r.U64();
  uint64_t from_seq = r.U64();
  if (!r.ok()) {
    return;
  }
  AdoptEpoch(epoch);
  // Serve from our log regardless of role: during takeover the new
  // sequencer may be the one asking.
  constexpr uint64_t kMaxBatch = 64;
  uint64_t served = 0;
  for (auto it = log_.lower_bound(from_seq);
       it != log_.end() && served < kMaxBatch; ++it, ++served) {
    Writer w;
    w.U8(kOrdered);
    w.U64(epoch_);
    w.U64(it->first);
    w.U32(it->second.origin);
    w.U64(it->second.local_id);
    w.Blob(it->second.payload);
    send_(from, w.Take());
  }
}

void TotalOrderBroadcast::HandleHeartbeat(NodeId from, Reader& r) {
  uint64_t epoch = r.U64();
  uint64_t next_seq = r.U64();
  if (!r.ok()) {
    return;
  }
  if (epoch < epoch_) {
    return;  // stale sequencer; ignore
  }
  AdoptEpoch(epoch);
  last_heard_ = env_->Now();
  // If the sequencer has ordered messages we have not seen, fetch them.
  if (next_seq > 0 && next_seq - 1 > MaxKnownSeq()) {
    Writer w;
    w.U8(kNack);
    w.U64(epoch_);
    w.U64(delivered_seq_ + 1);
    send_(from, w.Take());
  }
}

void TotalOrderBroadcast::HandleNewEpoch(NodeId from, Reader& r) {
  uint64_t epoch = r.U64();
  if (!r.ok()) {
    return;
  }
  if (epoch <= epoch_ && from != sequencer()) {
    return;
  }
  AdoptEpoch(epoch);
  // Tell the new sequencer how much of the sequence we know so it can
  // resume numbering above everything already ordered.
  Writer w;
  w.U8(kSyncInfo);
  w.U64(epoch_);
  w.U64(MaxKnownSeq());
  send_(from, w.Take());
}

void TotalOrderBroadcast::HandleSyncInfo(Reader& r) {
  uint64_t epoch = r.U64();
  uint64_t max_seq = r.U64();
  if (!r.ok() || epoch != epoch_ || !IsSequencer()) {
    return;
  }
  ++sync_responses_;
  sync_max_seq_ = std::max(sync_max_seq_, max_seq);
  // Fetch anything they know that we lack; kNack doubles as a fetch.
  if (max_seq > MaxKnownSeq()) {
    // We cannot address the sender here (no from in scope); members also
    // push via NACK service. Conservatively re-request from everyone.
    Writer w;
    w.U8(kNack);
    w.U64(epoch_);
    w.U64(delivered_seq_ + 1);
    SendToAll(w.Take(), /*include_self=*/false);
  }
}

uint64_t TotalOrderBroadcast::MaxKnownSeq() const {
  uint64_t max_seq = delivered_seq_;
  if (!log_.empty()) {
    max_seq = std::max(max_seq, log_.rbegin()->first);
  }
  return max_seq;
}

void TotalOrderBroadcast::HeartbeatTick() {
  env_->ScheduleAfter(config_.heartbeat_period, [this] { HeartbeatTick(); });
  if (!Active() || !IsSequencer() || syncing_) {
    return;
  }
  Writer w;
  w.U8(kHeartbeat);
  w.U64(epoch_);
  w.U64(next_seq_);
  SendToAll(w.Take(), /*include_self=*/false);
}

void TotalOrderBroadcast::RetransmitTick() {
  env_->ScheduleAfter(config_.retransmit_timeout, [this] { RetransmitTick(); });
  if (!Active()) {
    return;
  }
  // OrderAndSend() can erase from pending_ (self-delivery), so iterate a
  // snapshot.
  std::vector<std::pair<uint64_t, Bytes>> snapshot(pending_.begin(),
                                                   pending_.end());
  for (const auto& [local_id, payload] : snapshot) {
    Writer w;
    w.U8(kSubmit);
    w.U64(epoch_);
    w.U32(owner_->id());
    w.U64(local_id);
    w.Blob(payload);
    if (IsSequencer()) {
      if (!syncing_) {
        OrderAndSend(owner_->id(), local_id, payload);
      }
    } else {
      send_(sequencer(), w.Take());
    }
  }
}

void TotalOrderBroadcast::FailureCheckTick() {
  env_->ScheduleAfter(config_.heartbeat_period, [this] { FailureCheckTick(); });
  if (!Active() || IsSequencer()) {
    return;
  }
  if (env_->Now() - last_heard_ <= config_.failure_timeout) {
    return;
  }
  // Sequencer presumed crashed: advance the epoch. The role rotates to
  // group[epoch % n]; if that is us, announce and sync.
  epoch_ += 1;
  last_heard_ = env_->Now();
  SDR_LOG(kInfo) << "broadcast: node " << owner_->id() << " moves to epoch "
                 << epoch_ << ", sequencer now " << sequencer();
  if (IsSequencer()) {
    syncing_ = true;
    sync_max_seq_ = MaxKnownSeq();
    sync_responses_ = 0;
    AnnounceEpoch();
  }
}

void TotalOrderBroadcast::AnnounceEpoch() {
  if (!Active() || !IsSequencer() || !syncing_) {
    return;
  }
  Writer w;
  w.U8(kNewEpoch);
  w.U64(epoch_);
  SendToAll(w.Take(), /*include_self=*/false);
  env_->ScheduleAfter(config_.sync_window, [this, epoch = epoch_] {
    if (epoch != epoch_ || !IsSequencer() || !syncing_) {
      return;
    }
    // Majority rule: we finish only once self + responders exceed half the
    // group; otherwise keep announcing (we may be in a minority partition,
    // in which case we must never assume the sequencer role).
    if ((sync_responses_ + 1) * 2 > config_.group.size()) {
      FinishTakeover();
    } else {
      AnnounceEpoch();
    }
  });
}

void TotalOrderBroadcast::FinishTakeover() {
  syncing_ = false;
  next_seq_ = std::max(next_seq_, sync_max_seq_ + 1);
  // Rebuild the dedup map from the log so resubmitted messages that were
  // already ordered by the previous sequencer keep their sequence numbers.
  for (const auto& [seq, msg] : log_) {
    assigned_[{msg.origin, msg.local_id}] = seq;
  }
  SDR_LOG(kInfo) << "broadcast: node " << owner_->id()
                 << " took over as sequencer, next_seq=" << next_seq_;
}

void TotalOrderBroadcast::PruneLogBelow(uint64_t seq) {
  log_.erase(log_.begin(), log_.lower_bound(std::min(seq, delivered_seq_ + 1)));
}

}  // namespace sdr
