// Simplified PBFT-style Byzantine-tolerant total-order broadcast — the
// road NOT taken by the paper, implemented to quantify why (Section 3):
//
//   "Since only masters are trusted, a total ordering broadcast protocol
//   including the slaves would have to be resistant to byzantine failures,
//   and implementing such an algorithm over a WAN is extremely expensive.
//   'Lazy' state updates make the write protocol much more efficient."
//
// This is the common-case three-phase protocol of Castro-Liskov PBFT
// (pre-prepare, prepare, commit) with n = 3f+1 replicas and 2f+1 quorums,
// counting every message and per-message authenticator. View changes are
// not implemented: the ablation (bench_e11_lazy_vs_eager) measures the
// *common-case* cost, which is what the paper's efficiency argument rests
// on; a primary crash therefore halts this broadcast (documented
// limitation, matching the scope of the comparison).
#ifndef SDR_SRC_BROADCAST_BFT_ORDER_H_
#define SDR_SRC_BROADCAST_BFT_ORDER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/runtime/env.h"
#include "src/util/bytes.h"
#include "src/util/serde.h"

namespace sdr {

class BftOrderBroadcast {
 public:
  struct Config {
    std::vector<NodeId> group;  // n = 3f+1 recommended
    // Per-message authenticator cost accounting (MACs in PBFT).
    SimTime retransmit_timeout = 500 * kMillisecond;
  };

  using SendFn = std::function<void(NodeId to, const Bytes& payload)>;
  using DeliverFn =
      std::function<void(uint64_t seq, NodeId origin, const Bytes& payload)>;

  BftOrderBroadcast(Env* env, Node* owner, Config config, SendFn send,
                    DeliverFn deliver);

  void Start();

  // Submits a payload for Byzantine-tolerant total ordering.
  void Broadcast(Bytes payload);

  void OnMessage(NodeId from, BytesView payload);

  int f() const { return (static_cast<int>(config_.group.size()) - 1) / 3; }
  int quorum() const { return 2 * f() + 1; }
  NodeId primary() const { return config_.group.front(); }
  bool IsPrimary() const { return primary() == owner_->id(); }
  uint64_t delivered_seq() const { return delivered_seq_; }

  // Cost accounting for the ablation.
  uint64_t protocol_messages_sent() const { return messages_sent_; }
  uint64_t authenticators_computed() const { return auth_ops_; }

 private:
  enum MsgType : uint8_t {
    kRequest = 1,     // member -> primary
    kPrePrepare = 2,  // primary -> all
    kPrepare = 3,     // all -> all
    kCommit = 4,      // all -> all
  };

  struct Instance {
    NodeId origin = kInvalidNode;
    Bytes payload;
    bool have_preprepare = false;
    std::set<NodeId> prepares;
    std::set<NodeId> commits;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool delivered = false;
  };

  void SendToAll(const Bytes& payload);
  void SendTo(NodeId to, const Bytes& payload);
  void HandleRequest(NodeId from, Reader& r);
  void HandlePrePrepare(Reader& r);
  void HandlePrepare(NodeId from, Reader& r);
  void HandleCommit(NodeId from, Reader& r);
  void MaybeProgress(uint64_t seq);
  void HelpLaggard(NodeId peer, uint64_t seq);
  void DeliverReady();
  void RetransmitTick();

  Env* env_;
  Node* owner_;
  Config config_;
  SendFn send_;
  DeliverFn deliver_;

  bool started_ = false;
  uint64_t next_seq_ = 1;  // primary only
  uint64_t delivered_seq_ = 0;
  std::map<uint64_t, Instance> instances_;
  // Pending local submissions awaiting a pre-prepare (resubmitted on
  // timeout; dedup at the primary by (origin, local_id)).
  uint64_t next_local_id_ = 1;
  std::map<uint64_t, Bytes> pending_;
  std::map<std::pair<NodeId, uint64_t>, uint64_t> assigned_;

  uint64_t messages_sent_ = 0;
  uint64_t auth_ops_ = 0;
};

}  // namespace sdr

#endif  // SDR_SRC_BROADCAST_BFT_ORDER_H_
