#include "src/broadcast/bft_order.h"

#include <cassert>

namespace sdr {

BftOrderBroadcast::BftOrderBroadcast(Env* env, Node* owner, Config config,
                                     SendFn send, DeliverFn deliver)
    : env_(env),
      owner_(owner),
      config_(std::move(config)),
      send_(std::move(send)),
      deliver_(std::move(deliver)) {
  assert(!config_.group.empty());
}

void BftOrderBroadcast::Start() {
  started_ = true;
  RetransmitTick();
}

void BftOrderBroadcast::SendTo(NodeId to, const Bytes& payload) {
  ++messages_sent_;
  ++auth_ops_;  // every PBFT message carries an authenticator
  send_(to, payload);
}

void BftOrderBroadcast::SendToAll(const Bytes& payload) {
  for (NodeId member : config_.group) {
    if (member != owner_->id()) {
      SendTo(member, payload);
    }
  }
}

void BftOrderBroadcast::Broadcast(Bytes payload) {
  uint64_t local_id = next_local_id_++;
  pending_[local_id] = payload;

  Writer w;
  w.U8(kRequest);
  w.U32(owner_->id());
  w.U64(local_id);
  w.Blob(payload);
  if (IsPrimary()) {
    Bytes wire = w.Take();
    Reader r(wire);
    r.U8();
    HandleRequest(owner_->id(), r);
  } else {
    SendTo(primary(), w.Take());
  }
}

void BftOrderBroadcast::OnMessage(NodeId from, BytesView payload) {
  if (!started_ || !owner_->up()) {
    return;
  }
  ++auth_ops_;  // verify the sender's authenticator
  Reader r(payload);
  uint8_t type = r.U8();
  switch (type) {
    case kRequest:
      HandleRequest(from, r);
      break;
    case kPrePrepare:
      HandlePrePrepare(r);
      break;
    case kPrepare:
      HandlePrepare(from, r);
      break;
    case kCommit:
      HandleCommit(from, r);
      break;
    default:
      break;
  }
}

void BftOrderBroadcast::HandleRequest(NodeId /*from*/, Reader& r) {
  NodeId origin = r.U32();
  uint64_t local_id = r.U64();
  Bytes payload = r.Blob();
  if (!r.ok() || !IsPrimary()) {
    return;
  }
  auto key = std::make_pair(origin, local_id);
  uint64_t seq;
  auto it = assigned_.find(key);
  if (it != assigned_.end()) {
    seq = it->second;  // duplicate: re-announce the same pre-prepare
  } else {
    seq = next_seq_++;
    assigned_[key] = seq;
    Instance& inst = instances_[seq];
    inst.origin = origin;
    inst.payload = payload;
    inst.have_preprepare = true;
  }
  if (origin == owner_->id()) {
    pending_.erase(local_id);  // the primary's own request is now ordered
  }
  Writer w;
  w.U8(kPrePrepare);
  w.U64(seq);
  w.U32(origin);
  w.U64(local_id);
  w.Blob(payload);
  SendToAll(w.Take());
  MaybeProgress(seq);
}

void BftOrderBroadcast::HandlePrePrepare(Reader& r) {
  uint64_t seq = r.U64();
  NodeId origin = r.U32();
  uint64_t local_id = r.U64();
  Bytes payload = r.Blob();
  if (!r.ok()) {
    return;
  }
  if (origin == owner_->id()) {
    pending_.erase(local_id);
  }
  Instance& inst = instances_[seq];
  if (!inst.have_preprepare) {
    inst.origin = origin;
    inst.payload = std::move(payload);
    inst.have_preprepare = true;
  }
  MaybeProgress(seq);
}

void BftOrderBroadcast::HandlePrepare(NodeId from, Reader& r) {
  uint64_t seq = r.U64();
  if (!r.ok()) {
    return;
  }
  Instance& inst = instances_[seq];
  inst.prepares.insert(from);
  if (inst.delivered) {
    HelpLaggard(from, seq);
    return;
  }
  MaybeProgress(seq);
}

void BftOrderBroadcast::HandleCommit(NodeId from, Reader& r) {
  uint64_t seq = r.U64();
  if (!r.ok()) {
    return;
  }
  Instance& inst = instances_[seq];
  inst.commits.insert(from);
  // Commits never trigger help replies — that would let two delivered
  // members ping-pong forever.
  if (inst.delivered) {
    return;
  }
  MaybeProgress(seq);
}

void BftOrderBroadcast::HelpLaggard(NodeId peer, uint64_t seq) {
  // A peer is still (re)transmitting a PREPARE for an instance we already
  // delivered: it lost phase messages and everyone else moved on. Send our
  // COMMIT directly (and the pre-prepare if we are the primary). Only
  // prepares trigger this, and the reply is a commit, which never triggers
  // a reply itself — so helped exchanges always terminate.
  const Instance& inst = instances_[seq];
  if (IsPrimary() && inst.have_preprepare) {
    Writer w;
    w.U8(kPrePrepare);
    w.U64(seq);
    w.U32(inst.origin);
    w.U64(0);
    w.Blob(inst.payload);
    SendTo(peer, w.Take());
  }
  Writer wc;
  wc.U8(kCommit);
  wc.U64(seq);
  SendTo(peer, wc.Take());
}

void BftOrderBroadcast::MaybeProgress(uint64_t seq) {
  Instance& inst = instances_[seq];
  if (!inst.have_preprepare) {
    return;
  }
  // Prepare phase: every replica (including the primary) multicasts
  // PREPARE once it holds the pre-prepare.
  if (!inst.sent_prepare) {
    inst.sent_prepare = true;
    inst.prepares.insert(owner_->id());
    Writer w;
    w.U8(kPrepare);
    w.U64(seq);
    SendToAll(w.Take());
  }
  // Commit phase: prepared == pre-prepare + 2f matching prepares.
  if (!inst.sent_commit &&
      static_cast<int>(inst.prepares.size()) >= 2 * f() + 1) {
    inst.sent_commit = true;
    inst.commits.insert(owner_->id());
    Writer w;
    w.U8(kCommit);
    w.U64(seq);
    SendToAll(w.Take());
  }
  // Committed: 2f+1 commits. Deliver in sequence order.
  if (!inst.delivered && static_cast<int>(inst.commits.size()) >= quorum()) {
    inst.delivered = true;
    DeliverReady();
  }
}

void BftOrderBroadcast::DeliverReady() {
  for (;;) {
    auto it = instances_.find(delivered_seq_ + 1);
    if (it == instances_.end() || !it->second.delivered) {
      return;
    }
    ++delivered_seq_;
    deliver_(delivered_seq_, it->second.origin, it->second.payload);
  }
}

void BftOrderBroadcast::RetransmitTick() {
  env_->ScheduleAfter(config_.retransmit_timeout, [this] { RetransmitTick(); });
  if (!started_ || !owner_->up()) {
    return;
  }
  // Recover lost phase messages: re-multicast our phase votes (and the
  // pre-prepare, if we are the primary) for every undelivered instance.
  for (auto& [seq, inst] : instances_) {
    if (inst.delivered) {
      continue;
    }
    if (IsPrimary() && inst.have_preprepare) {
      Writer w;
      w.U8(kPrePrepare);
      w.U64(seq);
      w.U32(inst.origin);
      w.U64(0);  // local_id only matters for the origin's dedup bookkeeping
      w.Blob(inst.payload);
      SendToAll(w.Take());
    }
    if (inst.sent_prepare) {
      Writer w;
      w.U8(kPrepare);
      w.U64(seq);
      SendToAll(w.Take());
    }
    if (inst.sent_commit) {
      Writer w;
      w.U8(kCommit);
      w.U64(seq);
      SendToAll(w.Take());
    }
  }

  // HandleRequest can erase from pending_, so iterate a snapshot.
  std::vector<std::pair<uint64_t, Bytes>> snapshot(pending_.begin(),
                                                   pending_.end());
  for (const auto& [local_id, payload] : snapshot) {
    Writer w;
    w.U8(kRequest);
    w.U32(owner_->id());
    w.U64(local_id);
    w.Blob(payload);
    if (IsPrimary()) {
      Bytes wire = w.Take();
      Reader r(wire);
      r.U8();
      HandleRequest(owner_->id(), r);
    } else {
      SendTo(primary(), w.Take());
    }
  }
}

}  // namespace sdr
