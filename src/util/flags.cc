#include "src/util/flags.h"

#include <cstdio>
#include <cstdlib>

namespace sdr {

Flags& Flags::Define(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  if (specs_.count(name) == 0) {
    order_.push_back(name);
  }
  specs_[name] = Spec{default_value, help};
  return *this;
}

Flags& Flags::AllowPositional(const std::string& help) {
  allow_positional_ = true;
  positional_help_ = help;
  return *this;
}

void Flags::PrintUsage(const char* program) const {
  if (allow_positional_) {
    std::fprintf(stderr, "usage: %s %s [--flag=value ...]\n", program,
                 positional_help_.c_str());
  } else {
    std::fprintf(stderr, "usage: %s [--flag=value ...]\n", program);
  }
  for (const std::string& name : order_) {
    const Spec& spec = specs_.at(name);
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(),
                 spec.help.c_str(), spec.default_value.c_str());
  }
}

bool Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      if (allow_positional_) {
        positional_.push_back(arg);
        continue;
      }
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      PrintUsage(argv[0]);
      return false;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      if (specs_.count(name) > 0 &&
          (specs_.at(name).default_value == "true" ||
           specs_.at(name).default_value == "false")) {
        value = "true";  // bare boolean flag
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        PrintUsage(argv[0]);
        return false;
      }
    }
    if (specs_.count(name) == 0) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      PrintUsage(argv[0]);
      return false;
    }
    values_[name] = value;
  }
  return true;
}

std::string Flags::GetString(const std::string& name) const {
  auto it = values_.find(name);
  if (it != values_.end()) {
    return it->second;
  }
  auto spec = specs_.find(name);
  return spec == specs_.end() ? "" : spec->second.default_value;
}

int64_t Flags::GetInt(const std::string& name) const {
  return std::strtoll(GetString(name).c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name) const {
  std::string v = GetString(name);
  return v == "true" || v == "1" || v == "yes";
}

std::vector<std::pair<std::string, std::string>> Flags::NonDefault() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& name : order_) {
    auto it = values_.find(name);
    if (it != values_.end() && it->second != specs_.at(name).default_value) {
      out.emplace_back(name, it->second);
    }
  }
  return out;
}

}  // namespace sdr
