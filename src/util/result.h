// A small Result<T> / Error type used for fallible operations across the
// library. Modeled on absl::StatusOr but self-contained.
#ifndef SDR_SRC_UTIL_RESULT_H_
#define SDR_SRC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sdr {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kPermissionDenied,
  kStale,            // freshness window violated
  kBadSignature,     // signature verification failed
  kHashMismatch,     // result hash does not match pledge
  kUnavailable,      // node down / excluded / not yet synced
  kQuotaExceeded,    // greedy-client throttling
  kParseError,       // query or message parsing failed
  kCorrupt,          // malformed wire data
  kInternal,
};

// Human-readable name for an error code (for logs and test output).
const char* ErrorCodeName(ErrorCode code);

class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    return std::string(ErrorCodeName(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

// Result<T> holds either a value or an Error.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors StatusOr ergonomics.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Error error) : error_(std::move(error)) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

// Result<void> analogue.
class Status {
 public:
  Status() : error_(std::nullopt) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Status(Error error) : error_(std::move(error)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

  std::string ToString() const { return ok() ? "OK" : error_->ToString(); }

 private:
  std::optional<Error> error_;
};

}  // namespace sdr

#endif  // SDR_SRC_UTIL_RESULT_H_
