// Deterministic JSON writer. Objects are std::map-backed, so keys emit in
// sorted order and a metrics dump is byte-identical across runs with the
// same seed — which is what lets CI diff `sdrsim --json` artifacts and what
// rule R2 (ordered output) exists to protect.
#ifndef SDR_UTIL_JSON_H_
#define SDR_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sdr {

class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(int64_t i) : kind_(Kind::kInt), int_(i) {}
  JsonValue(uint64_t u) : JsonValue(static_cast<int64_t>(u)) {}
  JsonValue(int i) : JsonValue(static_cast<int64_t>(i)) {}
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}

  static JsonValue Object();
  static JsonValue Array();

  // Object access; sets kind to object on first use.
  JsonValue& operator[](const std::string& key);
  // Array append; sets kind to array on first use.
  void Append(JsonValue v);

  bool is_null() const { return kind_ == Kind::kNull; }

  // Serializes with sorted object keys. `indent` < 0 means compact
  // single-line output; otherwise pretty-print with that indent step.
  std::string Dump(int indent = -1) const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kObject, kArray };

  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::map<std::string, JsonValue> obj_;
  std::vector<JsonValue> arr_;
};

// JSON string escaping (quotes not included).
std::string JsonEscape(const std::string& s);

}  // namespace sdr

#endif  // SDR_UTIL_JSON_H_
