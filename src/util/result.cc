#include "src/util/result.h"

namespace sdr {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kStale:
      return "STALE";
    case ErrorCode::kBadSignature:
      return "BAD_SIGNATURE";
    case ErrorCode::kHashMismatch:
      return "HASH_MISMATCH";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kQuotaExceeded:
      return "QUOTA_EXCEEDED";
    case ErrorCode::kParseError:
      return "PARSE_ERROR";
    case ErrorCode::kCorrupt:
      return "CORRUPT";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace sdr
