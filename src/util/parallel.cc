#include "src/util/parallel.h"

namespace sdr {

WorkerPool::WorkerPool(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {
  threads_.reserve(static_cast<size_t>(jobs_ - 1));
  for (int lane = 1; lane < jobs_; ++lane) {
    threads_.emplace_back([this, lane] { WorkerMain(lane); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::Run(int n, const std::function<void(int, int)>& fn) {
  if (n <= 0) {
    return;
  }
  if (threads_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) {
      fn(0, i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    total_ = n;
    next_.store(0, std::memory_order_relaxed);
    active_ = static_cast<int>(threads_.size());
    ++epoch_;
  }
  work_cv_.notify_all();
  // The caller is lane 0: it steals indices alongside the workers, so a
  // Run() is never slower than the inline loop it replaces.
  for (;;) {
    int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) {
      break;
    }
    fn(0, i);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  fn_ = nullptr;
}

void WorkerPool::WorkerMain(int lane) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int, int)>* fn = nullptr;
    int n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen] { return stop_ || epoch_ != seen; });
      if (stop_) {
        return;
      }
      // Run() cannot start epoch k+1 until every worker has drained epoch
      // k (active_ == 0), so each worker observes each epoch exactly once.
      seen = epoch_;
      fn = fn_;
      n = total_;
    }
    for (;;) {
      int i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        break;
      }
      (*fn)(lane, i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

}  // namespace sdr
