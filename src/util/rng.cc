#include "src/util/rng.h"

#include <cmath>

namespace sdr {

static uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    s = SplitMix64(x);
  }
}

static inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 1e-18;
  }
  return -mean * std::log(u);
}

double Rng::NextNormal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 1e-18;
  }
  double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(6.283185307179586 * u2);
}

Bytes Rng::NextBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i < n) {
    uint64_t v = Next();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
  return out;
}

Rng Rng::Fork() {
  return Rng(Next());
}

}  // namespace sdr
