// Clang -Wthread-safety attribute macros (no-ops on GCC and MSVC). These
// give the compiler the same member-to-mutex mapping that sdrlint R6 reads
// from the `// sdrlint:guarded_by(m)` comments, so the two checkers verify
// each other: clang's flow-sensitive analysis catches paths the token-level
// lint cannot see, and the lint covers condition-variable waits through
// std::unique_lock, which the standard-library annotations do not model.
//
// CI builds the annotated translation units with
//   clang++ -stdlib=libc++ -D_LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS
//           -Wthread-safety -Werror=thread-safety
// (libc++ is required: its std::mutex/std::lock_guard carry capability
// attributes behind that define; libstdc++'s do not).
#ifndef SDR_SRC_UTIL_THREAD_ANNOTATIONS_H_
#define SDR_SRC_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SDR_THREAD_ATTR(x) __attribute__((x))
#else
#define SDR_THREAD_ATTR(x)
#endif

// Data members: which mutex protects them.
#define SDR_GUARDED_BY(x) SDR_THREAD_ATTR(guarded_by(x))
#define SDR_PT_GUARDED_BY(x) SDR_THREAD_ATTR(pt_guarded_by(x))

// Functions: lock requirements of the caller.
#define SDR_REQUIRES(...) SDR_THREAD_ATTR(requires_capability(__VA_ARGS__))
#define SDR_EXCLUDES(...) SDR_THREAD_ATTR(locks_excluded(__VA_ARGS__))
#define SDR_ACQUIRE(...) SDR_THREAD_ATTR(acquire_capability(__VA_ARGS__))
#define SDR_RELEASE(...) SDR_THREAD_ATTR(release_capability(__VA_ARGS__))

// Escape hatch for functions whose locking clang cannot model — e.g.
// condition-variable waits through std::unique_lock (not annotated even in
// libc++). Every use must say why in a comment; sdrlint R6 still checks
// the accesses inside.
#define SDR_NO_THREAD_SAFETY_ANALYSIS \
  SDR_THREAD_ATTR(no_thread_safety_analysis)

#endif  // SDR_SRC_UTIL_THREAD_ANNOTATIONS_H_
