// A small persistent fork-join worker pool for pure-compute parallel
// sections (the auditor's re-execution engine, batched signature
// verification). Design constraints, in order:
//
//   1. Determinism: the pool runs *functions of the index only*. Which lane
//      executes which index is scheduling noise; callers write results into
//      pre-sized per-index slots and merge them on the calling thread in
//      index order, so every observable byte is identical at any lane
//      count. This mirrors the parallel seed-sweep discipline (PR 5).
//   2. Cheap dispatch: the auditor flushes thousands of small batches per
//      run, so lanes are persistent threads woken by condition variable —
//      not a thread spawn per batch (RunIndexedParallel in bench_util spawns
//      per call, fine for 4 long trials, ruinous for 7k flushes).
//   3. Thread confinement: the callback receives the executing lane id so
//      callers can keep per-lane mutable state (a QueryExecutor's regex
//      cache) without locks.
//
// Indices are claimed from a shared atomic counter (work stealing), so a
// lane stuck on one expensive GREP does not leave the others idle behind a
// static stride.
//
// `jobs <= 1` creates no threads and Run() executes inline on the caller —
// the single-lane engine and the pooled engine are the same code path.
#ifndef SDR_SRC_UTIL_PARALLEL_H_
#define SDR_SRC_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/thread_annotations.h"

namespace sdr {

class WorkerPool {
 public:
  // `jobs` lanes total: the calling thread participates as lane 0 and
  // jobs - 1 worker threads are spawned (none for jobs <= 1).
  explicit WorkerPool(int jobs);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int jobs() const { return jobs_; }

  // Runs fn(lane, index) for every index in [0, n), blocking until all
  // complete. `lane` is in [0, jobs); fn must not touch shared mutable
  // state except per-index or per-lane slots. Exceptions must not escape fn.
  // Run and WorkerMain synchronize through condition-variable waits on a
  // std::unique_lock, which clang's thread-safety analysis cannot model
  // (unique_lock carries no capability annotations); sdrlint R6 still
  // checks every guarded access inside both bodies.
  void Run(int n, const std::function<void(int lane, int index)>& fn)
      SDR_NO_THREAD_SAFETY_ANALYSIS;

 private:
  void WorkerMain(int lane) SDR_NO_THREAD_SAFETY_ANALYSIS;

  int jobs_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new epoch
  std::condition_variable done_cv_;   // caller waits for workers to drain
  // Epoch state handed from Run() to the lanes; every access is under mu_.
  // sdrlint:guarded_by(mu_)
  const std::function<void(int, int)>* fn_ SDR_GUARDED_BY(mu_) =
      nullptr;  // valid within epoch
  int total_ SDR_GUARDED_BY(mu_) = 0;  // sdrlint:guarded_by(mu_)
  // sdrlint:guarded_by(mu_) — bumped per Run; workers join each epoch once
  uint64_t epoch_ SDR_GUARDED_BY(mu_) = 0;
  // sdrlint:guarded_by(mu_) — workers still inside the current epoch
  int active_ SDR_GUARDED_BY(mu_) = 0;
  bool stop_ SDR_GUARDED_BY(mu_) = false;  // sdrlint:guarded_by(mu_)

  // sdrlint:shared_atomic — lock-free work stealing across lanes
  std::atomic<int> next_{0};  // next unclaimed index of the current epoch
};

}  // namespace sdr

#endif  // SDR_SRC_UTIL_PARALLEL_H_
