// Byte-buffer primitives shared across the library.
#ifndef SDR_SRC_UTIL_BYTES_H_
#define SDR_SRC_UTIL_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sdr {

// The universal wire/byte-string type used for messages, keys, hashes and
// signatures throughout the library.
using Bytes = std::vector<uint8_t>;

// A non-owning view over a byte range (the Bytes analogue of
// std::string_view). Decoders take BytesView so a sub-range of a received
// payload can be parsed without copying it out first.
class BytesView {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  constexpr BytesView() = default;
  constexpr BytesView(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  BytesView(const Bytes& b)  // NOLINT(google-explicit-constructor)
      : data_(b.data()), size_(b.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const { return data_[i]; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }

  // Sub-view clamped to the underlying range.
  BytesView substr(size_t pos, size_t count = npos) const {
    if (pos > size_) {
      pos = size_;
    }
    size_t n = size_ - pos;
    return BytesView(data_ + pos, count < n ? count : n);
  }

  Bytes ToBytes() const { return Bytes(data_, data_ + size_); }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

// A ref-counted immutable byte buffer plus an (offset, length) window: the
// copy-free message payload. Sending one buffer to N receivers bumps a
// refcount N times instead of copying the bytes N times, and a handler
// that stashes the payload keeps the buffer alive for free. The refcount
// is atomic (std::shared_ptr) so thread-confined simulators in a parallel
// seed sweep can pass payloads without data races.
class Payload {
 public:
  Payload() = default;
  Payload(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : buf_(std::make_shared<const Bytes>(std::move(bytes))),
        offset_(0),
        len_(buf_->size()) {}

  const uint8_t* data() const {
    return buf_ == nullptr ? nullptr : buf_->data() + offset_;
  }
  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  uint8_t operator[](size_t i) const { return data()[i]; }

  BytesView view() const { return BytesView(data(), len_); }
  operator BytesView() const {  // NOLINT(google-explicit-constructor)
    return view();
  }

  // A sub-window sharing the same buffer (no copy).
  Payload Slice(size_t pos, size_t count = BytesView::npos) const {
    Payload p;
    if (pos > len_) {
      pos = len_;
    }
    size_t n = len_ - pos;
    p.buf_ = buf_;
    p.offset_ = offset_ + pos;
    p.len_ = count < n ? count : n;
    return p;
  }

  Bytes ToBytes() const { return view().ToBytes(); }

 private:
  std::shared_ptr<const Bytes> buf_;
  size_t offset_ = 0;
  size_t len_ = 0;
};

// Converts a string's contents to Bytes (no encoding applied).
Bytes ToBytes(std::string_view s);

// Converts Bytes back to a std::string (no encoding applied).
std::string ToString(const Bytes& b);

// Lower-case hex encoding of `b`.
std::string HexEncode(const Bytes& b);
std::string HexEncode(const uint8_t* data, size_t len);

// Decodes a hex string. Returns an empty vector and sets *ok=false when the
// input has odd length or non-hex characters; *ok may be null.
Bytes HexDecode(std::string_view hex, bool* ok = nullptr);

// Appends `src` to `dst`.
void Append(Bytes& dst, const Bytes& src);
void Append(Bytes& dst, std::string_view src);

// Constant-time equality for secret-dependent comparisons (signatures,
// MACs). Returns false on length mismatch without early exit on content.
bool ConstantTimeEquals(const Bytes& a, const Bytes& b);

}  // namespace sdr

#endif  // SDR_SRC_UTIL_BYTES_H_
