// Byte-buffer primitives shared across the library.
#ifndef SDR_SRC_UTIL_BYTES_H_
#define SDR_SRC_UTIL_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sdr {

// The universal wire/byte-string type used for messages, keys, hashes and
// signatures throughout the library.
using Bytes = std::vector<uint8_t>;

// Converts a string's contents to Bytes (no encoding applied).
Bytes ToBytes(std::string_view s);

// Converts Bytes back to a std::string (no encoding applied).
std::string ToString(const Bytes& b);

// Lower-case hex encoding of `b`.
std::string HexEncode(const Bytes& b);
std::string HexEncode(const uint8_t* data, size_t len);

// Decodes a hex string. Returns an empty vector and sets *ok=false when the
// input has odd length or non-hex characters; *ok may be null.
Bytes HexDecode(std::string_view hex, bool* ok = nullptr);

// Appends `src` to `dst`.
void Append(Bytes& dst, const Bytes& src);
void Append(Bytes& dst, std::string_view src);

// Constant-time equality for secret-dependent comparisons (signatures,
// MACs). Returns false on length mismatch without early exit on content.
bool ConstantTimeEquals(const Bytes& a, const Bytes& b);

}  // namespace sdr

#endif  // SDR_SRC_UTIL_BYTES_H_
