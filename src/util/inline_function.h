// A move-only callable with small-buffer optimization, used on the
// simulator hot path. The common event capture — a node pointer plus a
// shared payload view, or a service-queue completion wrapping another
// InlineFunction — fits in the 64-byte inline buffer, so scheduling
// an event never touches the allocator; larger captures fall back to one
// heap cell, matching std::function's behavior.
#ifndef SDR_SRC_UTIL_INLINE_FUNCTION_H_
#define SDR_SRC_UTIL_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sdr {

template <typename Signature>
class InlineFunction;

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  static constexpr size_t kInlineSize = 64;

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void* buf, Args&&... args);
    void (*move)(void* dst, void* src);  // src is left destroyed
    void (*destroy)(void* buf);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* buf, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(buf)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* buf) { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* buf, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(buf)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        *reinterpret_cast<Fn**>(dst) =
            *std::launder(reinterpret_cast<Fn**>(src));
      },
      [](void* buf) { delete *std::launder(reinterpret_cast<Fn**>(buf)); }};

  void MoveFrom(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace sdr

#endif  // SDR_SRC_UTIL_INLINE_FUNCTION_H_
