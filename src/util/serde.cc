#include "src/util/serde.h"

#include <cstring>

namespace sdr {

void Writer::U16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::Double(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void Writer::Blob(const Bytes& b) {
  U32(static_cast<uint32_t>(b.size()));
  Raw(b);
}

void Writer::Blob(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::Raw(const Bytes& b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Writer::Raw(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

bool Reader::Need(size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t Reader::U8() {
  if (!Need(1)) {
    return 0;
  }
  return data_[pos_++];
}

uint16_t Reader::U16() {
  if (!Need(2)) {
    return 0;
  }
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

uint32_t Reader::U32() {
  if (!Need(4)) {
    return 0;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t Reader::U64() {
  if (!Need(8)) {
    return 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Reader::Double() {
  uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Bytes Reader::Blob() {
  uint32_t len = U32();
  return Raw(len);
}

std::string Reader::BlobString() {
  Bytes b = Blob();
  return std::string(b.begin(), b.end());
}

Bytes Reader::Raw(size_t len) {
  if (!Need(len)) {
    return Bytes();
  }
  Bytes out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

}  // namespace sdr
