#include "src/util/json.h"

#include <cmath>
#include <cstdio>

namespace sdr {

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue& JsonValue::operator[](const std::string& key) {
  kind_ = Kind::kObject;
  return obj_[key];
}

void JsonValue::Append(JsonValue v) {
  kind_ = Kind::kArray;
  arr_.push_back(std::move(v));
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

// Doubles print with a fixed format so identical values serialize to
// identical bytes regardless of locale or stream state.
std::string FormatDouble(double d) {
  if (std::isnan(d) || std::isinf(d)) {
    return "null";
  }
  if (d == static_cast<int64_t>(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld.0",
                  static_cast<long long>(d));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", d);
  return buf;
}

void NewlineIndent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Kind::kDouble:
      out += FormatDouble(double_);
      break;
    case Kind::kString:
      out += '"';
      out += JsonEscape(str_);
      out += '"';
      break;
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, val] : obj_) {  // std::map: sorted keys
        if (!first) {
          out += ',';
        }
        first = false;
        if (indent >= 0) {
          NewlineIndent(out, indent, depth + 1);
        }
        out += '"';
        out += JsonEscape(key);
        out += indent >= 0 ? "\": " : "\":";
        val.DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) {
        NewlineIndent(out, indent, depth);
      }
      out += '}';
      break;
    }
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const JsonValue& val : arr_) {
        if (!first) {
          out += ',';
        }
        first = false;
        if (indent >= 0) {
          NewlineIndent(out, indent, depth + 1);
        }
        val.DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) {
        NewlineIndent(out, indent, depth);
      }
      out += ']';
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

}  // namespace sdr
