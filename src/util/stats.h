// Streaming and batch statistics used by the benchmark harness and the
// master's greedy-client detector.
#ifndef SDR_SRC_UTIL_STATS_H_
#define SDR_SRC_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sdr {

// Welford streaming mean/variance with min/max.
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Batch percentile over collected samples. Samples are sorted on demand.
class Percentiles {
 public:
  // Invalidates the sort memo: quantiles stay correct when Add and
  // Quantile calls interleave.
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  size_t count() const { return samples_.size(); }

  // q in [0, 1]; nearest-rank on the sorted samples. Returns 0 when empty.
  double Quantile(double q) const;

  double Median() const { return Quantile(0.5); }
  double P99() const { return Quantile(0.99); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Fixed-boundary histogram used for printing latency distributions.
class Histogram {
 public:
  // Buckets: [0,b0), [b0,b1), ..., [b_{n-1}, inf).
  explicit Histogram(std::vector<double> bounds);

  void Add(double x);
  uint64_t total() const { return total_; }

  // Text rendering, one bucket per line with a proportional bar.
  std::string Render(int bar_width = 40) const;

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace sdr

#endif  // SDR_SRC_UTIL_STATS_H_
