#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sdr {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const {
  return std::sqrt(variance());
}

double Percentiles::Quantile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  size_t idx = static_cast<size_t>(q * static_cast<double>(samples_.size() - 1) + 0.5);
  if (idx >= samples_.size()) {
    idx = samples_.size() - 1;
  }
  return samples_[idx];
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

void Histogram::Add(double x) {
  size_t i = 0;
  while (i < bounds_.size() && x >= bounds_[i]) {
    ++i;
  }
  ++counts_[i];
  ++total_;
}

std::string Histogram::Render(int bar_width) const {
  std::string out;
  uint64_t max_count = 1;
  for (uint64_t c : counts_) {
    max_count = std::max(max_count, c);
  }
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    double lo = i == 0 ? 0.0 : bounds_[i - 1];
    int bar = static_cast<int>(static_cast<double>(counts_[i]) /
                               static_cast<double>(max_count) * bar_width);
    if (i < bounds_.size()) {
      std::snprintf(line, sizeof(line), "[%10.3g, %10.3g) %8llu |", lo, bounds_[i],
                    static_cast<unsigned long long>(counts_[i]));
    } else {
      std::snprintf(line, sizeof(line), "[%10.3g,        inf) %8llu |", lo,
                    static_cast<unsigned long long>(counts_[i]));
    }
    out += line;
    out.append(static_cast<size_t>(bar), '#');
    out.push_back('\n');
  }
  return out;
}

}  // namespace sdr
