// Deterministic pseudo-random number generation. Every simulation takes an
// explicit seed so runs are exactly reproducible; nothing in the protocol
// path reads entropy from the host.
#ifndef SDR_SRC_UTIL_RNG_H_
#define SDR_SRC_UTIL_RNG_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace sdr {

// xoshiro256** seeded via splitmix64. Small, fast, and good enough for
// workload generation and protocol randomness (not for key generation in a
// real deployment; fine for a simulator where determinism is the point).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound) using rejection to avoid modulo bias. bound > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in the closed interval [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with success probability p.
  bool NextBool(double p);

  // Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  // Normally distributed value (Box-Muller).
  double NextNormal(double mean, double stddev);

  // `n` pseudo-random bytes (used for deterministic key generation in the
  // simulator).
  Bytes NextBytes(size_t n);

  // Derives an independent child generator; used to give each simulated
  // node its own stream so adding a node does not perturb the others.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace sdr

#endif  // SDR_SRC_UTIL_RNG_H_
