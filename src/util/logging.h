// Tiny leveled logger. Simulation code logs with the virtual timestamp via
// the SIM_LOG wrapper in src/sim/simulator.h; everything else uses LOG().
#ifndef SDR_SRC_UTIL_LOGGING_H_
#define SDR_SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace sdr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; messages below it are discarded. Defaults to kWarn
// so tests and benchmarks stay quiet unless asked.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr: "[LEVEL] message".
void LogLine(LogLevel level, const std::string& message);

// Stream-style helper: Log(LogLevel::kInfo) << "x=" << x; emits at scope end.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() {
    if (level_ >= GetLogLevel()) {
      LogLine(level_, ss_.str());
    }
  }
  template <typename T>
  LogStream& operator<<(const T& v) {
    if (level_ >= GetLogLevel()) {
      ss_ << v;
    }
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

#define SDR_LOG(level) ::sdr::LogStream(::sdr::LogLevel::level)

}  // namespace sdr

#endif  // SDR_SRC_UTIL_LOGGING_H_
