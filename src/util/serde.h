// Minimal binary serialization: little-endian fixed-width integers and
// length-prefixed byte strings. All protocol messages, pledges and
// certificates are serialized with this so that hashes and signatures are
// computed over a canonical encoding.
#ifndef SDR_SRC_UTIL_SERDE_H_
#define SDR_SRC_UTIL_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/bytes.h"

namespace sdr {

// Appends primitive values to a growing byte buffer.
class Writer {
 public:
  Writer() = default;

  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Double(double v);

  // Length-prefixed (u32) byte string.
  void Blob(const Bytes& b);
  void Blob(std::string_view s);

  // Raw bytes without a length prefix (for fixed-size fields like hashes).
  void Raw(const Bytes& b);
  void Raw(const uint8_t* data, size_t len);

  // Pre-sizes the buffer for `n` further bytes. Hot paths that know their
  // encoded size (pledge and token signing bodies, built for every read)
  // use this to avoid the push_back regrowth reallocations.
  void Reserve(size_t n) { buf_.reserve(buf_.size() + n); }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

// Reads primitive values back. On any out-of-bounds access the reader
// enters a failed state; callers check ok() once at the end (monadic
// error handling keeps message-decoding code flat).
class Reader {
 public:
  explicit Reader(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  explicit Reader(BytesView buf) : data_(buf.data()), size_(buf.size()) {}
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  // Canonical: the writer only ever emits 0 or 1, so any other byte marks
  // the buffer corrupt. This keeps decoders prefix-hostile — random bytes
  // cannot masquerade as a bool field.
  bool Bool() {
    uint8_t v = U8();
    if (v > 1) {
      ok_ = false;
      return false;
    }
    return v == 1;
  }
  double Double();

  Bytes Blob();
  std::string BlobString();

  // Reads exactly `len` raw bytes.
  Bytes Raw(size_t len);

  bool ok() const { return ok_; }
  // True when the whole buffer has been consumed and no error occurred.
  bool Done() const { return ok_ && pos_ == size_; }
  size_t remaining() const { return ok_ ? size_ - pos_ : 0; }

 private:
  bool Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace sdr

#endif  // SDR_SRC_UTIL_SERDE_H_
