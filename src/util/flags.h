// Minimal command-line flag parsing for the tools and benchmark binaries:
// --name=value / --name value / --bool-flag. Unknown flags are an error so
// typos do not silently run the default experiment.
#ifndef SDR_SRC_UTIL_FLAGS_H_
#define SDR_SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sdr {

class Flags {
 public:
  // Declares a flag with a default and a help line; returns *this for
  // chaining.
  Flags& Define(const std::string& name, const std::string& default_value,
                const std::string& help);

  // Opts in to non-flag arguments (collected via positional()). Without
  // this, a stray argument is an error — tools that take no operands keep
  // rejecting typos.
  Flags& AllowPositional(const std::string& help);

  // Parses argv. Returns false (and prints usage) on unknown flags,
  // missing values, or --help.
  bool Parse(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  // Flags explicitly set to a value different from their default, in
  // definition order — tools echo these so every report states the exact
  // command line that reproduces it.
  std::vector<std::pair<std::string, std::string>> NonDefault() const;

  void PrintUsage(const char* program) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;
  std::map<std::string, std::string> values_;
  bool allow_positional_ = false;
  std::string positional_help_;
  std::vector<std::string> positional_;
};

}  // namespace sdr

#endif  // SDR_SRC_UTIL_FLAGS_H_
