#include "src/util/bytes.h"

namespace sdr {

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

static constexpr char kHexDigits[] = "0123456789abcdef";

std::string HexEncode(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0x0f]);
  }
  return out;
}

std::string HexEncode(const Bytes& b) {
  return HexEncode(b.data(), b.size());
}

static int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

Bytes HexDecode(std::string_view hex, bool* ok) {
  Bytes out;
  if (hex.size() % 2 != 0) {
    if (ok != nullptr) {
      *ok = false;
    }
    return out;
  }
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      if (ok != nullptr) {
        *ok = false;
      }
      return Bytes();
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  if (ok != nullptr) {
    *ok = true;
  }
  return out;
}

void Append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void Append(Bytes& dst, std::string_view src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

bool ConstantTimeEquals(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace sdr
