// Baseline 1: state signing (the paper's related work [7, 2, 6, 11, 13, 3]).
//
// The content is authenticated with a Merkle hash tree whose root the
// trusted owner signs at every version. Untrusted slaves can serve *point
// reads* with a membership proof that clients verify against the signed
// root — no pledges, no double-checking, no auditor needed. The defining
// limitation the paper argues against: "dynamic queries on the data need
// to be executed on trusted hosts", so every scan/grep/aggregate goes to a
// master, which must also verify nothing (it is trusted) but pays the full
// execution cost.
//
// The node set mirrors the core system so benchmark comparisons are
// apples-to-apples: one signing master (+ optional peers), slaves serving
// GETs, clients that route by query class.
#ifndef SDR_SRC_BASELINE_STATE_SIGNING_H_
#define SDR_SRC_BASELINE_STATE_SIGNING_H_

#include <map>
#include <memory>
#include <optional>

#include "src/core/config.h"
#include "src/core/service_queue.h"
#include "src/merkle/merkle_tree.h"
#include "src/runtime/env.h"
#include "src/store/executor.h"
#include "src/util/stats.h"

namespace sdr {

// Signed Merkle root: the per-version authenticator clients trust.
struct SignedRoot {
  Bytes root;
  uint64_t version = 0;
  SimTime timestamp = 0;
  Bytes signature;

  Bytes SignedBody() const;
};

SignedRoot MakeSignedRoot(const Signer& signer, const Bytes& root,
                          uint64_t version, SimTime now);
bool VerifySignedRoot(SignatureScheme scheme, const Bytes& public_key,
                      const SignedRoot& root);

class SsMaster : public Node {
 public:
  struct Options {
    ProtocolParams params;
    CostModel cost;
    KeyPair key_pair;
  };

  explicit SsMaster(Options options);
  void Start() override;
  void HandleMessage(NodeId from, const Payload& payload) override;

  void SetContent(const DocumentStore& content);
  // Commits a write batch: applies it, rebuilds + re-signs the tree, and
  // pushes the new state to registered slaves.
  void CommitWrite(const WriteBatch& batch);
  void AddSlave(NodeId slave);

  uint64_t dynamic_queries_served() const { return dynamic_queries_served_; }
  uint64_t work_units_executed() const { return work_units_; }
  const ServiceQueue& service_queue() const { return *queue_; }
  const Bytes& public_key() const { return signer_.public_key(); }
  uint64_t version() const { return version_; }

 private:
  void RefreshRoot();
  void RefreshTick();

  Options options_;
  Signer signer_;
  DocumentStore store_;
  MerkleTree tree_ = MerkleTree::Build(DocumentStore{});
  uint64_t version_ = 0;
  QueryExecutor executor_;
  std::unique_ptr<ServiceQueue> queue_;
  std::vector<NodeId> slaves_;
  uint64_t dynamic_queries_served_ = 0;
  uint64_t work_units_ = 0;
};

class SsSlave : public Node {
 public:
  struct Options {
    ProtocolParams params;
    CostModel cost;
  };

  explicit SsSlave(Options options);
  void Start() override;
  void HandleMessage(NodeId from, const Payload& payload) override;

  void SetContent(const DocumentStore& content, const SignedRoot& root);

  uint64_t point_reads_served() const { return point_reads_served_; }
  uint64_t work_units_executed() const { return work_units_; }
  const ServiceQueue& service_queue() const { return *queue_; }

 private:
  Options options_;
  DocumentStore store_;
  MerkleTree tree_ = MerkleTree::Build(DocumentStore{});
  std::optional<SignedRoot> root_;
  std::unique_ptr<ServiceQueue> queue_;
  uint64_t point_reads_served_ = 0;
  uint64_t work_units_ = 0;
};

class SsClient : public Node {
 public:
  struct Options {
    ProtocolParams params;
    Bytes master_public_key;
    NodeId master = kInvalidNode;
    NodeId slave = kInvalidNode;
  };

  explicit SsClient(Options options);
  void HandleMessage(NodeId from, const Payload& payload) override;

  using Callback = std::function<void(bool ok)>;
  // Routes by query class: GET -> slave (proof-verified), anything else ->
  // master (trusted execution).
  void IssueRead(const Query& query, Callback cb = nullptr);

  uint64_t reads_accepted() const { return reads_accepted_; }
  uint64_t proof_failures() const { return proof_failures_; }
  uint64_t reads_to_master() const { return reads_to_master_; }
  uint64_t reads_to_slave() const { return reads_to_slave_; }
  const Percentiles& latency_us() const { return latency_us_; }

 private:
  struct PendingRead {
    Query query;
    SimTime issued = 0;
    Callback cb;
  };

  Options options_;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, PendingRead> pending_;
  uint64_t reads_accepted_ = 0;
  uint64_t proof_failures_ = 0;
  uint64_t reads_to_master_ = 0;
  uint64_t reads_to_slave_ = 0;
  Percentiles latency_us_;
};

}  // namespace sdr

#endif  // SDR_SRC_BASELINE_STATE_SIGNING_H_
