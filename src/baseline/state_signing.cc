#include "src/baseline/state_signing.h"

namespace sdr {

namespace {
// Private message tags for the baseline protocol.
enum SsMsg : uint8_t {
  kSsPointRead = 1,
  kSsPointReadReply = 2,
  kSsDynRead = 3,
  kSsDynReadReply = 4,
  kSsStateUpdate = 5,
};
}  // namespace

Bytes SignedRoot::SignedBody() const {
  Writer w;
  w.Blob(std::string_view("sdr-ssroot-v1"));
  w.Blob(root);
  w.U64(version);
  w.I64(timestamp);
  return w.Take();
}

SignedRoot MakeSignedRoot(const Signer& signer, const Bytes& root,
                          uint64_t version, SimTime now) {
  SignedRoot sr;
  sr.root = root;
  sr.version = version;
  sr.timestamp = now;
  sr.signature = signer.Sign(sr.SignedBody());
  return sr;
}

bool VerifySignedRoot(SignatureScheme scheme, const Bytes& public_key,
                      const SignedRoot& root) {
  return VerifySignature(scheme, public_key, root.SignedBody(),
                         root.signature);
}

static void EncodeRoot(Writer& w, const SignedRoot& root) {
  w.Blob(root.root);
  w.U64(root.version);
  w.I64(root.timestamp);
  w.Blob(root.signature);
}

static SignedRoot DecodeRoot(Reader& r) {
  SignedRoot root;
  root.root = r.Blob();
  root.version = r.U64();
  root.timestamp = r.I64();
  root.signature = r.Blob();
  return root;
}

// ---------------------------------------------------------------------------
// SsMaster
// ---------------------------------------------------------------------------

SsMaster::SsMaster(Options options)
    : options_(std::move(options)), signer_(options_.key_pair) {}

void SsMaster::Start() {
  queue_ = std::make_unique<ServiceQueue>(env(), options_.cost.master_speed);
  // Periodically re-sign the root so slave-held roots stay fresh even
  // without writes (the keep-alive analogue).
  RefreshTick();
}

void SsMaster::RefreshTick() {
  env()->ScheduleAfter(options_.params.keepalive_period,
                       [this] { RefreshTick(); });
  if (!up()) {
    return;
  }
  RefreshRoot();
}

void SsMaster::SetContent(const DocumentStore& content) {
  store_ = content;
  tree_ = MerkleTree::Build(store_);
}

void SsMaster::AddSlave(NodeId slave) {
  slaves_.push_back(slave);
}

void SsMaster::RefreshRoot() {
  SignedRoot root =
      MakeSignedRoot(signer_, tree_.root(), version_, env()->Now());
  Writer w;
  w.U8(kSsStateUpdate);
  EncodeRoot(w, root);
  // An empty batch refreshes the timestamp only.
  EncodeBatch(w, WriteBatch{});
  Bytes wire = w.Take();
  for (NodeId slave : slaves_) {
    env()->Send(slave, wire);
  }
}

void SsMaster::CommitWrite(const WriteBatch& batch) {
  store_.ApplyBatch(batch);
  ++version_;
  // The whole-tree rebuild is the honest cost of this baseline's write
  // path; charge it.
  tree_ = MerkleTree::Build(store_);
  work_units_ += store_.size();

  SignedRoot root =
      MakeSignedRoot(signer_, tree_.root(), version_, env()->Now());
  Writer w;
  w.U8(kSsStateUpdate);
  EncodeRoot(w, root);
  EncodeBatch(w, batch);
  Bytes wire = w.Take();
  for (NodeId slave : slaves_) {
    env()->Send(slave, wire);
  }
}

void SsMaster::HandleMessage(NodeId from, const Payload& payload) {
  Reader r(payload);
  uint8_t tag = r.U8();
  if (tag != kSsDynRead) {
    return;
  }
  uint64_t request_id = r.U64();
  Query query = Query::DecodeFrom(r);
  if (!r.Done()) {
    return;
  }
  auto outcome = executor_.Execute(store_, query);
  if (!outcome.ok()) {
    return;
  }
  work_units_ += outcome->cost;
  ++dynamic_queries_served_;
  SimTime service_time = options_.cost.ExecuteTime(
      outcome->cost, outcome->result.Encode().size());
  queue_->Enqueue(service_time,
                  [this, from, request_id, result = outcome->result] {
                    Writer w;
                    w.U8(kSsDynReadReply);
                    w.U64(request_id);
                    w.Blob(result.Encode());
                    env()->Send(from, w.Take());
                  });
}

// ---------------------------------------------------------------------------
// SsSlave
// ---------------------------------------------------------------------------

SsSlave::SsSlave(Options options) : options_(std::move(options)) {}

void SsSlave::Start() {
  queue_ = std::make_unique<ServiceQueue>(env(), options_.cost.slave_speed);
}

void SsSlave::SetContent(const DocumentStore& content,
                         const SignedRoot& root) {
  store_ = content;
  tree_ = MerkleTree::Build(store_);
  root_ = root;
}

void SsSlave::HandleMessage(NodeId from, const Payload& payload) {
  Reader r(payload);
  uint8_t tag = r.U8();
  if (tag == kSsStateUpdate) {
    SignedRoot root = DecodeRoot(r);
    WriteBatch batch = DecodeBatch(r);
    if (!r.Done()) {
      return;
    }
    if (!batch.empty()) {
      store_.ApplyBatch(batch);
      tree_ = MerkleTree::Build(store_);
      work_units_ += store_.size();
    }
    if (!root_.has_value() || root.timestamp > root_->timestamp) {
      root_ = root;
    }
    return;
  }
  if (tag != kSsPointRead) {
    return;
  }
  uint64_t request_id = r.U64();
  std::string key = r.BlobString();
  if (!r.Done() || !root_.has_value()) {
    return;
  }
  ++point_reads_served_;
  work_units_ += 1;
  auto proof = tree_.Prove(key);
  // Proof generation: one execute unit plus hashing along the path — cheap,
  // and crucially there is NO signature on the hot path.
  SimTime service_time = options_.cost.ExecuteTime(1, 64);
  queue_->Enqueue(service_time, [this, from, request_id,
                                 proof = std::move(proof)] {
    Writer w;
    w.U8(kSsPointReadReply);
    w.U64(request_id);
    w.Bool(proof.has_value());
    if (proof.has_value()) {
      w.Blob(proof->Encode());
    }
    EncodeRoot(w, *root_);
    env()->Send(from, w.Take());
  });
}

// ---------------------------------------------------------------------------
// SsClient
// ---------------------------------------------------------------------------

SsClient::SsClient(Options options) : options_(std::move(options)) {}

void SsClient::IssueRead(const Query& query, Callback cb) {
  uint64_t request_id = next_request_id_++;
  pending_[request_id] = PendingRead{query, env()->Now(), std::move(cb)};
  if (query.kind == QueryKind::kGet) {
    ++reads_to_slave_;
    Writer w;
    w.U8(kSsPointRead);
    w.U64(request_id);
    w.Blob(query.key);
    env()->Send(options_.slave, w.Take());
  } else {
    ++reads_to_master_;
    Writer w;
    w.U8(kSsDynRead);
    w.U64(request_id);
    query.EncodeTo(w);
    env()->Send(options_.master, w.Take());
  }
}

void SsClient::HandleMessage(NodeId /*from*/, const Payload& payload) {
  Reader r(payload);
  uint8_t tag = r.U8();
  if (tag == kSsDynReadReply) {
    uint64_t request_id = r.U64();
    Bytes result_enc = r.Blob();
    if (!r.Done()) {
      return;
    }
    auto it = pending_.find(request_id);
    if (it == pending_.end()) {
      return;
    }
    // Executed by a trusted master: accepted as-is.
    ++reads_accepted_;
    latency_us_.Add(static_cast<double>(env()->Now() - it->second.issued));
    Callback cb = std::move(it->second.cb);
    pending_.erase(it);
    if (cb) {
      cb(true);
    }
    return;
  }
  if (tag != kSsPointReadReply) {
    return;
  }
  uint64_t request_id = r.U64();
  bool found = r.Bool();
  Bytes proof_enc;
  if (found) {
    proof_enc = r.Blob();
  }
  SignedRoot root = DecodeRoot(r);
  if (!r.Done()) {
    return;
  }
  auto it = pending_.find(request_id);
  if (it == pending_.end()) {
    return;
  }
  // Root must be authentic and fresh.
  if (!VerifySignedRoot(options_.params.scheme, options_.master_public_key,
                        root) ||
      env()->Now() - root.timestamp > options_.params.max_latency) {
    ++proof_failures_;
    pending_.erase(it);
    return;
  }
  if (!found) {
    // Absence is unverifiable in this baseline: escalate to the trusted
    // master as a dynamic read.
    Query query = it->second.query;
    Callback cb = std::move(it->second.cb);
    SimTime issued = it->second.issued;
    pending_.erase(it);
    ++reads_to_master_;
    uint64_t new_id = next_request_id_++;
    pending_[new_id] = PendingRead{query, issued, std::move(cb)};
    Writer w;
    w.U8(kSsDynRead);
    w.U64(new_id);
    query.EncodeTo(w);
    env()->Send(options_.master, w.Take());
    return;
  }
  auto proof = MerkleTree::Proof::Decode(proof_enc);
  if (!proof.has_value() || proof->key != it->second.query.key ||
      !MerkleTree::VerifyProof(*proof, root.root)) {
    ++proof_failures_;
    pending_.erase(it);
    return;
  }
  ++reads_accepted_;
  latency_us_.Add(static_cast<double>(env()->Now() - it->second.issued));
  Callback cb = std::move(it->second.cb);
  pending_.erase(it);
  if (cb) {
    cb(true);
  }
}

}  // namespace sdr
