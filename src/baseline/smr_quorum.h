// Baseline 2: state machine replication with quorum reads (the paper's
// related work [4, 15, 10, 17], PBFT-style).
//
// Every read is executed by a quorum of 2f+1 untrusted replicas; the
// client accepts a result once f+1 replicas agree on its hash. Malicious
// replicas must *collude* (return the same wrong answer) to defeat it.
// The defining costs the paper argues against:
//   - each request consumes (2f+1)x the execution resources,
//   - the client-observed latency is set by the (f+1)-th matching reply,
//     i.e. effectively by the slower members of the quorum.
#ifndef SDR_SRC_BASELINE_SMR_QUORUM_H_
#define SDR_SRC_BASELINE_SMR_QUORUM_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/config.h"
#include "src/core/service_queue.h"
#include "src/runtime/env.h"
#include "src/store/executor.h"
#include "src/util/stats.h"

namespace sdr {

class QrReplica : public Node {
 public:
  struct Options {
    CostModel cost;
    // Colluding replicas corrupt results *deterministically* (same wrong
    // bytes on every colluder) — the strongest realistic attack, since
    // independent lies never match.
    bool colluding = false;
  };

  explicit QrReplica(Options options);
  void Start() override;
  void HandleMessage(NodeId from, const Payload& payload) override;

  void SetContent(const DocumentStore& content);

  uint64_t reads_executed() const { return reads_executed_; }
  uint64_t work_units_executed() const { return work_units_; }
  const ServiceQueue& service_queue() const { return *queue_; }

 private:
  Options options_;
  DocumentStore store_;
  QueryExecutor executor_;
  std::unique_ptr<ServiceQueue> queue_;
  uint64_t reads_executed_ = 0;
  uint64_t work_units_ = 0;
};

class QrClient : public Node {
 public:
  struct Options {
    std::vector<NodeId> replicas;  // the full replica set
    int f = 1;                     // tolerate up to f faulty replicas
  };

  explicit QrClient(Options options);
  void HandleMessage(NodeId from, const Payload& payload) override;

  using Callback = std::function<void(bool ok, const QueryResult& result)>;
  // Sends the query to 2f+1 replicas; accepts on f+1 matching hashes.
  void IssueRead(const Query& query, Callback cb = nullptr);

  uint64_t reads_accepted() const { return reads_accepted_; }
  uint64_t wrong_accepted() const { return wrong_accepted_; }
  uint64_t reads_unresolved() const { return reads_unresolved_; }
  const Percentiles& latency_us() const { return latency_us_; }

  // Ground truth hook: called with the accepted result's hash and the
  // honest hash is compared externally; here we just expose acceptance.
  std::function<void(const Query&, const QueryResult&)> on_accept;

 private:
  struct PendingRead {
    Query query;
    SimTime issued = 0;
    int quorum_size = 0;
    int replies = 0;
    std::map<Bytes, std::pair<int, QueryResult>> votes;  // hash -> count
    Callback cb;
    bool done = false;
  };

  Options options_;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, PendingRead> pending_;
  uint64_t reads_accepted_ = 0;
  uint64_t wrong_accepted_ = 0;
  uint64_t reads_unresolved_ = 0;
  Percentiles latency_us_;
};

}  // namespace sdr

#endif  // SDR_SRC_BASELINE_SMR_QUORUM_H_
