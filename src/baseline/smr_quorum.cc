#include "src/baseline/smr_quorum.h"

namespace sdr {

namespace {
enum QrMsg : uint8_t {
  kQrRead = 1,
  kQrReadReply = 2,
};
}  // namespace

QrReplica::QrReplica(Options options) : options_(std::move(options)) {}

void QrReplica::Start() {
  queue_ = std::make_unique<ServiceQueue>(env(), options_.cost.slave_speed);
}

void QrReplica::SetContent(const DocumentStore& content) {
  store_ = content;
}

void QrReplica::HandleMessage(NodeId from, const Payload& payload) {
  Reader r(payload);
  if (r.U8() != kQrRead) {
    return;
  }
  uint64_t request_id = r.U64();
  Query query = Query::DecodeFrom(r);
  if (!r.Done()) {
    return;
  }
  auto outcome = executor_.Execute(store_, query);
  if (!outcome.ok()) {
    return;
  }
  ++reads_executed_;
  work_units_ += outcome->cost;

  QueryResult result = std::move(outcome->result);
  if (options_.colluding) {
    // Deterministic corruption: every colluder produces the same wrong
    // answer, so their votes stack.
    if (result.type == QueryResult::Type::kScalar) {
      result.scalar += 1000000;
    } else {
      result.rows.emplace_back("zzz/colluded", "forged");
    }
  }

  SimTime service_time =
      options_.cost.ExecuteTime(outcome->cost, result.Encode().size());
  queue_->Enqueue(service_time, [this, from, request_id,
                                 result = std::move(result)] {
    Writer w;
    w.U8(kQrReadReply);
    w.U64(request_id);
    w.Blob(result.Encode());
    env()->Send(from, w.Take());
  });
}

QrClient::QrClient(Options options) : options_(std::move(options)) {}

void QrClient::IssueRead(const Query& query, Callback cb) {
  uint64_t request_id = next_request_id_++;
  PendingRead read;
  read.query = query;
  read.issued = env()->Now();
  read.quorum_size =
      std::min<int>(2 * options_.f + 1, static_cast<int>(options_.replicas.size()));
  read.cb = std::move(cb);
  pending_.emplace(request_id, std::move(read));

  Writer w;
  w.U8(kQrRead);
  w.U64(request_id);
  query.EncodeTo(w);
  Bytes wire = w.Take();
  for (int i = 0; i < pending_[request_id].quorum_size; ++i) {
    env()->Send(options_.replicas[i], wire);
  }
}

void QrClient::HandleMessage(NodeId /*from*/, const Payload& payload) {
  Reader r(payload);
  if (r.U8() != kQrReadReply) {
    return;
  }
  uint64_t request_id = r.U64();
  Bytes result_enc = r.Blob();
  if (!r.Done()) {
    return;
  }
  auto it = pending_.find(request_id);
  if (it == pending_.end() || it->second.done) {
    return;
  }
  PendingRead& read = it->second;
  ++read.replies;

  auto result = QueryResult::Decode(result_enc);
  if (result.ok()) {
    Bytes digest = result->Sha1Digest();
    auto& slot = read.votes[digest];
    slot.first += 1;
    slot.second = *result;
    if (slot.first >= options_.f + 1) {
      // Quorum reached: f+1 identical answers cannot all come from the at
      // most f faulty replicas... unless more than f collude.
      read.done = true;
      ++reads_accepted_;
      latency_us_.Add(static_cast<double>(env()->Now() - read.issued));
      if (on_accept) {
        on_accept(read.query, slot.second);
      }
      Callback cb = std::move(read.cb);
      QueryResult accepted = slot.second;
      pending_.erase(it);
      if (cb) {
        cb(true, accepted);
      }
      return;
    }
  }
  if (read.replies >= read.quorum_size) {
    // All replies in, no f+1 agreement: unresolved (a real system would
    // widen the quorum; we count and fail the read).
    ++reads_unresolved_;
    Callback cb = std::move(read.cb);
    pending_.erase(it);
    if (cb) {
      cb(false, QueryResult{});
    }
  }
}

}  // namespace sdr
