#include "src/runtime/timer_queue.h"

namespace sdr {

EventId TimerQueue::Schedule(SimTime t, InlineFunction<void()> fn) {
  EventId id = next_id_++;
  timers_.emplace(Key{t, id}, std::move(fn));
  deadlines_.emplace(id, t);
  return id;
}

bool TimerQueue::Cancel(EventId id) {
  auto it = deadlines_.find(id);
  if (it == deadlines_.end()) {
    return false;
  }
  timers_.erase(Key{it->second, id});
  deadlines_.erase(it);
  return true;
}

size_t TimerQueue::RunDue(SimTime now) {
  size_t fired = 0;
  while (!timers_.empty() && timers_.begin()->first.first <= now) {
    auto it = timers_.begin();
    // Retire before running: the callback may Schedule or Cancel freely.
    InlineFunction<void()> fn = std::move(it->second);
    deadlines_.erase(it->first.second);
    timers_.erase(it);
    fn();
    ++fired;
  }
  return fired;
}

}  // namespace sdr
