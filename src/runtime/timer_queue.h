// Timer bookkeeping for RealEnv: an ordered map of (deadline, sequence) ->
// callback plus an id index, mirroring the simulator's event-queue
// semantics exactly — same-deadline timers fire in schedule order, and
// Cancel on a fired, cancelled, or invalid id is an exact no-op. Pure data
// structure (no clock, no syscalls) so it unit-tests without a RealEnv:
// the caller supplies `now`, whatever its timescale.
#ifndef SDR_SRC_RUNTIME_TIMER_QUEUE_H_
#define SDR_SRC_RUNTIME_TIMER_QUEUE_H_

#include <cstddef>
#include <map>
#include <utility>

#include "src/runtime/env.h"
#include "src/util/inline_function.h"

namespace sdr {

class TimerQueue {
 public:
  // Registers `fn` to fire at absolute time `t` (the caller's timescale).
  // The returned id is never 0 and never reused.
  EventId Schedule(SimTime t, InlineFunction<void()> fn);

  // Removes a pending timer. Returns false (and does nothing) when the id
  // has already fired, was already cancelled, or never existed.
  bool Cancel(EventId id);

  bool empty() const { return timers_.empty(); }
  size_t size() const { return timers_.size(); }

  // Deadline of the earliest pending timer; only valid when !empty().
  SimTime next_deadline() const { return timers_.begin()->first.first; }

  // Fires every timer with deadline <= now, in (deadline, schedule-order)
  // order, including timers the callbacks themselves add within the window.
  // Returns the number fired.
  size_t RunDue(SimTime now);

 private:
  using Key = std::pair<SimTime, EventId>;  // (deadline, id); id breaks ties
  std::map<Key, InlineFunction<void()>> timers_;
  std::map<EventId, SimTime> deadlines_;  // pending id -> its deadline
  EventId next_id_ = 1;
};

}  // namespace sdr

#endif  // SDR_SRC_RUNTIME_TIMER_QUEUE_H_
