// SimEnv: the Env implementation over the deterministic simulator. A thin,
// per-node adapter — every call forwards to the exact Simulator/Network
// primitive the role code used to invoke directly, in the same order with
// the same arguments, so a port from `sim()`/`network()` to `env()` is
// byte-identical under the same seed.
#ifndef SDR_SRC_RUNTIME_SIM_ENV_H_
#define SDR_SRC_RUNTIME_SIM_ENV_H_

#include "src/runtime/env.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace sdr {

class SimEnv final : public Env {
 public:
  SimEnv(Simulator* sim, Network* net, NodeId self)
      : sim_(sim), net_(net), self_(self) {}

  // Wires `node` to this env (Network::AddNode calls this).
  void Attach(Node* node) { BindNode(node, self_, this); }

  SimTime Now() const override { return sim_->Now(); }
  EventId ScheduleAt(SimTime t, InlineFunction<void()> fn) override {
    return sim_->ScheduleAt(t, std::move(fn));
  }
  void Cancel(EventId id) override { sim_->Cancel(id); }
  void Send(NodeId to, Payload payload) override;
  Rng& rng() override { return sim_->rng(); }
  TraceSink* trace() const override { return sim_->trace(); }

 private:
  Simulator* sim_;
  Network* net_;
  NodeId self_;
};

}  // namespace sdr

#endif  // SDR_SRC_RUNTIME_SIM_ENV_H_
