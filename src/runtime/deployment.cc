#include "src/runtime/deployment.h"

#include <cstdlib>
#include <sstream>

namespace sdr {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDirectory:
      return "directory";
    case NodeKind::kMaster:
      return "master";
    case NodeKind::kAuditor:
      return "auditor";
    case NodeKind::kSlave:
      return "slave";
    case NodeKind::kClient:
      return "client";
  }
  return "unknown";
}

NodeKind DeploymentPlan::KindOf(NodeId id) const {
  if (id == directory_id) {
    return NodeKind::kDirectory;
  }
  NodeId n = id - 2;  // ids after the directory, zero-based
  if (n < master_ids.size()) {
    return NodeKind::kMaster;
  }
  n -= static_cast<NodeId>(master_ids.size());
  if (n < auditor_ids.size()) {
    return NodeKind::kAuditor;
  }
  n -= static_cast<NodeId>(auditor_ids.size());
  if (n < slave_ids.size()) {
    return NodeKind::kSlave;
  }
  return NodeKind::kClient;
}

int DeploymentPlan::RoleIndexOf(NodeId id) const {
  switch (KindOf(id)) {
    case NodeKind::kDirectory:
      return 0;
    case NodeKind::kMaster:
      return static_cast<int>(id - master_ids.front());
    case NodeKind::kAuditor:
      return static_cast<int>(id - auditor_ids.front());
    case NodeKind::kSlave:
      return static_cast<int>(id - slave_ids.front());
    case NodeKind::kClient:
      return static_cast<int>(id - client_ids.front());
  }
  return 0;
}

DeploymentPlan BuildDeployment(const DeploymentConfig& config) {
  DeploymentPlan plan;
  plan.config = config;

  // Key derivation mirrors the simulator Cluster's order (content key,
  // master keys, auditor keys, then slave keys interleaved with nothing
  // else) so the derivation is auditable against cluster.cc.
  Rng root(config.seed);
  Rng key_rng = root.Fork();

  KeyPair content_key = KeyPair::Generate(config.params.scheme, key_rng);
  Signer owner(content_key);
  plan.content.scheme = config.params.scheme;
  plan.content.content_public_key = content_key.public_key;

  plan.directory_id = 1;
  for (int i = 0; i < config.num_masters; ++i) {
    plan.master_ids.push_back(static_cast<NodeId>(2 + i));
  }
  int num_auditors = config.num_auditors < 1 ? 1 : config.num_auditors;
  for (int i = 0; i < num_auditors; ++i) {
    plan.auditor_ids.push_back(
        static_cast<NodeId>(2 + config.num_masters + i));
  }
  NodeId next = static_cast<NodeId>(2 + config.num_masters + num_auditors);
  for (int i = 0; i < config.num_masters * config.slaves_per_master; ++i) {
    plan.slave_ids.push_back(next++);
  }
  for (int i = 0; i < config.num_clients; ++i) {
    plan.client_ids.push_back(next++);
  }

  for (int i = 0; i < config.num_masters; ++i) {
    plan.master_keys.push_back(
        KeyPair::Generate(config.params.scheme, key_rng));
    plan.master_key_map[plan.master_ids[i]] =
        plan.master_keys.back().public_key;
    plan.master_certs.push_back(
        IssueCertificate(owner, plan.master_ids[i], Role::kMaster,
                         plan.master_keys.back().public_key));
  }
  for (int i = 0; i < num_auditors; ++i) {
    plan.auditor_keys.push_back(
        KeyPair::Generate(config.params.scheme, key_rng));
  }

  Rng corpus_rng = root.Fork();
  plan.base = BuildCatalogCorpus(config.corpus, corpus_rng);

  for (size_t s = 0; s < plan.slave_ids.size(); ++s) {
    plan.slave_keys.push_back(
        KeyPair::Generate(config.params.scheme, key_rng));
    int owner_master = plan.OwnerMasterOf(static_cast<int>(s));
    Signer master_signer(plan.master_keys[owner_master]);
    plan.slave_certs.push_back(
        IssueCertificate(master_signer, plan.slave_ids[s], Role::kSlave,
                         plan.slave_keys.back().public_key));
  }
  return plan;
}

Master::Options MasterOptionsFor(const DeploymentPlan& plan, int index) {
  Master::Options opts;
  opts.params = plan.config.params;
  opts.cost = plan.config.cost;
  opts.key_pair = plan.master_keys[index];
  opts.content = plan.content;
  opts.group = plan.master_ids;
  for (NodeId a : plan.auditor_ids) {
    opts.group.push_back(a);
  }
  opts.auditors = plan.auditor_ids;
  opts.master_keys = plan.master_key_map;
  return opts;
}

Auditor::Options AuditorOptionsFor(const DeploymentPlan& plan, int index) {
  Auditor::Options opts;
  opts.params = plan.config.params;
  opts.cost = plan.config.cost;
  opts.key_pair = plan.auditor_keys[index];
  opts.group = plan.master_ids;
  for (NodeId a : plan.auditor_ids) {
    opts.group.push_back(a);
  }
  opts.master_keys = plan.master_key_map;
  opts.audit_jobs = plan.config.audit_jobs;
  return opts;
}

Slave::Options SlaveOptionsFor(const DeploymentPlan& plan, int slave_index) {
  Slave::Options opts;
  opts.params = plan.config.params;
  opts.cost = plan.config.cost;
  opts.key_pair = plan.slave_keys[slave_index];
  opts.master_keys = plan.master_key_map;
  opts.rng_seed = plan.config.seed * 1000003 + slave_index;
  return opts;
}

Client::Options ClientOptionsFor(const DeploymentPlan& plan, int client_index,
                                 Client::LoadMode mode) {
  Client::Options opts;
  opts.params = plan.config.params;
  opts.content = plan.content;
  opts.directory = plan.directory_id;
  opts.mode = mode;
  opts.think_time = plan.config.client_think_time;
  opts.write_fraction = plan.config.client_write_fraction;
  opts.rng_seed = plan.config.seed * 7919 + client_index;
  QueryMix mix = plan.config.mix;
  mix.n_items = plan.config.corpus.n_items;
  opts.query_source = [mix](Rng& rng) { return mix.Generate(rng); };
  WriteGen write_gen = plan.config.write_gen;
  write_gen.n_items = plan.config.corpus.n_items;
  opts.write_source = [write_gen](Rng& rng) { return write_gen.Generate(rng); };
  return opts;
}

namespace {

bool SplitHostPort(const std::string& s, std::string* host, uint16_t* port) {
  size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon + 1 >= s.size()) {
    return false;
  }
  *host = s.substr(0, colon);
  long p = std::strtol(s.c_str() + colon + 1, nullptr, 10);
  if (p < 0 || p > 65535) {
    return false;
  }
  *port = static_cast<uint16_t>(p);
  return !host->empty();
}

}  // namespace

Result<NodeConfig> ParseNodeConfig(const std::string& text) {
  NodeConfig config;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) {
      continue;  // blank / comment-only line
    }
    auto fail = [&](const std::string& why) {
      return Error(ErrorCode::kParseError,
                   "config line " + std::to_string(lineno) + ": " + why);
    };
    if (key == "node_id") {
      uint32_t v;
      if (!(ls >> v)) return fail("node_id needs an integer");
      config.node_id = v;
    } else if (key == "seed") {
      if (!(ls >> config.deployment.seed)) return fail("seed needs an integer");
    } else if (key == "masters") {
      if (!(ls >> config.deployment.num_masters)) return fail("bad masters");
    } else if (key == "auditors") {
      if (!(ls >> config.deployment.num_auditors)) return fail("bad auditors");
    } else if (key == "slaves_per_master") {
      if (!(ls >> config.deployment.slaves_per_master)) {
        return fail("bad slaves_per_master");
      }
    } else if (key == "clients") {
      if (!(ls >> config.deployment.num_clients)) return fail("bad clients");
    } else if (key == "items") {
      if (!(ls >> config.deployment.corpus.n_items)) return fail("bad items");
    } else if (key == "max_latency_ms") {
      int64_t ms;
      if (!(ls >> ms)) return fail("bad max_latency_ms");
      config.deployment.params.max_latency = ms * kMillisecond;
    } else if (key == "keepalive_ms") {
      int64_t ms;
      if (!(ls >> ms)) return fail("bad keepalive_ms");
      config.deployment.params.keepalive_period = ms * kMillisecond;
    } else if (key == "audit_slack_ms") {
      int64_t ms;
      if (!(ls >> ms)) return fail("bad audit_slack_ms");
      config.deployment.params.audit_slack = ms * kMillisecond;
    } else if (key == "commit_batch") {
      if (!(ls >> config.deployment.params.commit_batch)) {
        return fail("bad commit_batch");
      }
    } else if (key == "commit_window_us") {
      int64_t us;
      if (!(ls >> us)) return fail("bad commit_window_us");
      config.deployment.params.commit_window = us * kMicrosecond;
    } else if (key == "double_check_p") {
      if (!(ls >> config.deployment.params.double_check_probability)) {
        return fail("bad double_check_p");
      }
    } else if (key == "think_ms") {
      int64_t ms;
      if (!(ls >> ms)) return fail("bad think_ms");
      config.deployment.client_think_time = ms * kMillisecond;
    } else if (key == "write_fraction") {
      if (!(ls >> config.deployment.client_write_fraction)) {
        return fail("bad write_fraction");
      }
    } else if (key == "audit_jobs") {
      if (!(ls >> config.deployment.audit_jobs)) return fail("bad audit_jobs");
    } else if (key == "liar_index") {
      if (!(ls >> config.liar_index)) return fail("bad liar_index");
    } else if (key == "lie_probability") {
      if (!(ls >> config.lie_probability)) return fail("bad lie_probability");
    } else if (key == "epoch_us") {
      if (!(ls >> config.epoch_us)) return fail("bad epoch_us");
    } else if (key == "start_delay_ms") {
      if (!(ls >> config.start_delay_ms)) return fail("bad start_delay_ms");
    } else if (key == "listen") {
      std::string addr;
      if (!(ls >> addr) ||
          !SplitHostPort(addr, &config.listen_host, &config.listen_port)) {
        return fail("listen needs HOST:PORT");
      }
    } else if (key == "peer") {
      NodeConfig::PeerAddr peer;
      std::string addr;
      if (!(ls >> peer.id >> addr) ||
          !SplitHostPort(addr, &peer.host, &peer.port)) {
        return fail("peer needs ID HOST:PORT");
      }
      config.peers.push_back(std::move(peer));
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (config.node_id == kInvalidNode) {
    return Error(ErrorCode::kParseError, "config missing node_id");
  }
  return config;
}

std::string FormatNodeConfig(const NodeConfig& config) {
  std::ostringstream out;
  out << "node_id " << config.node_id << "\n";
  out << "seed " << config.deployment.seed << "\n";
  out << "masters " << config.deployment.num_masters << "\n";
  out << "auditors " << config.deployment.num_auditors << "\n";
  out << "slaves_per_master " << config.deployment.slaves_per_master << "\n";
  out << "clients " << config.deployment.num_clients << "\n";
  out << "items " << config.deployment.corpus.n_items << "\n";
  out << "max_latency_ms "
      << config.deployment.params.max_latency / kMillisecond << "\n";
  out << "keepalive_ms "
      << config.deployment.params.keepalive_period / kMillisecond << "\n";
  out << "audit_slack_ms "
      << config.deployment.params.audit_slack / kMillisecond << "\n";
  out << "commit_batch " << config.deployment.params.commit_batch << "\n";
  out << "commit_window_us "
      << config.deployment.params.commit_window / kMicrosecond << "\n";
  out << "double_check_p " << config.deployment.params.double_check_probability
      << "\n";
  out << "think_ms " << config.deployment.client_think_time / kMillisecond
      << "\n";
  out << "write_fraction " << config.deployment.client_write_fraction << "\n";
  out << "audit_jobs " << config.deployment.audit_jobs << "\n";
  out << "liar_index " << config.liar_index << "\n";
  out << "lie_probability " << config.lie_probability << "\n";
  out << "epoch_us " << config.epoch_us << "\n";
  out << "start_delay_ms " << config.start_delay_ms << "\n";
  out << "listen " << config.listen_host << ":" << config.listen_port << "\n";
  for (const auto& peer : config.peers) {
    out << "peer " << peer.id << " " << peer.host << ":" << peer.port << "\n";
  }
  return out.str();
}

}  // namespace sdr
