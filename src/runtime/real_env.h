// RealEnv: the Env implementation for running one protocol role as a real
// process. A single-threaded epoll event loop over:
//
//   - a TCP listener accepting inbound peer connections,
//   - one outbound TCP connection per configured peer, redialed with
//     exponential backoff while down (messages to a down peer drop, which
//     is the same best-effort contract the simulated network gives),
//   - a wall-clock timer queue with the simulator's exact Cancel semantics,
//   - a self-pipe so RequestStop() is safe from signal handlers and other
//     threads.
//
// Wire framing is minimal and symmetric: every message is
//   [u32le payload_len][u32le sender_id][payload bytes]
// on a connection in either direction. The sender id is carried per frame
// (not negotiated per connection) and is exactly as unauthenticated as the
// simulator's `from` — the protocol's signatures are the trust layer.
//
// Clocks: Now() is microseconds since a configured epoch, advanced by
// CLOCK_MONOTONIC (the realtime-vs-monotonic offset is sampled once at
// construction, so NTP steps cannot yank timers). Every process in a
// deployment is given the same epoch (sdrcluster passes its own start
// time), which makes Now() comparable across processes up to host clock
// skew — the paper's freshness windows assume exactly this kind of loose
// synchronization, and the skew budget must stay well under max_latency.
#ifndef SDR_SRC_RUNTIME_REAL_ENV_H_
#define SDR_SRC_RUNTIME_REAL_ENV_H_

#include <cstdint>
#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "src/runtime/env.h"
#include "src/runtime/timer_queue.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace sdr {

class TraceSink;

class RealEnv final : public Env {
 public:
  struct Options {
    std::string listen_host = "127.0.0.1";
    // 0 binds an ephemeral port; read it back with listen_port().
    uint16_t listen_port = 0;
    // Seed for this node's private random stream (lying slaves, query
    // generators). Per-node in a real deployment, unlike the simulator's
    // shared stream.
    uint64_t rng_seed = 1;
    // Cluster epoch in microseconds of CLOCK_REALTIME. Now() counts from
    // here. 0 means "this process's start", which is only correct for a
    // node that never compares timestamps with peers (or tests).
    int64_t epoch_realtime_us = 0;
    // Reconnect backoff: min(initial << attempt, max), attempt counting
    // from 0 per disconnected peer.
    SimTime reconnect_initial = 100 * kMillisecond;
    SimTime reconnect_max = 5 * kSecond;
    // Frames larger than this abort the connection (corrupt peer guard).
    uint32_t max_frame_bytes = 16u << 20;
    // Defers the node's Start() so a freshly launched process fleet can
    // finish dialing before the first protocol message goes out.
    SimTime start_delay = 0;
  };

  explicit RealEnv(Options options);
  ~RealEnv() override;

  RealEnv(const RealEnv&) = delete;
  RealEnv& operator=(const RealEnv&) = delete;

  // Binds `node` to this env under `id`. Call once before Run().
  void Attach(Node* node, NodeId id);

  // Registers a peer's address. Outbound dialing starts when Run() does;
  // messages to unregistered ids are counted and dropped.
  void AddPeer(NodeId id, const std::string& host, uint16_t port);

  // The actual bound port (useful with listen_port = 0).
  uint16_t listen_port() const { return bound_port_; }

  void set_trace(TraceSink* trace) { trace_ = trace; }

  // Runs the event loop on the calling thread: calls the node's Start(),
  // then serves timers and sockets until RequestStop(). Everything except
  // RequestStop() must be called from this thread.
  void Run();

  // Env interface.
  SimTime Now() const override;
  EventId ScheduleAt(SimTime t, InlineFunction<void()> fn) override;
  void Cancel(EventId id) override;
  void Send(NodeId to, Payload payload) override;
  Rng& rng() override { return rng_; }
  TraceSink* trace() const override { return trace_; }
  // Async-signal-safe and callable from any thread.
  void RequestStop() override;

  // The backoff schedule, exposed for tests: min(initial << attempt, max).
  static SimTime ReconnectDelay(int attempt, SimTime initial, SimTime max);

  // Transport counters (shape matches the simulated Network's).
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t reconnects() const { return reconnects_; }

 private:
  struct Peer {
    NodeId id = kInvalidNode;
    std::string host;
    uint16_t port = 0;
    int fd = -1;              // outbound socket, -1 while down
    bool connecting = false;  // non-blocking connect in flight
    int attempts = 0;         // consecutive failed dials
    EventId redial_timer = 0;
    Bytes out;                // unflushed outbound bytes
    size_t out_off = 0;       // consumed prefix of `out`
  };
  struct Inbound {
    int fd = -1;
    Bytes in;  // partial frame bytes
  };

  void SetupListener();
  void CloseAll();
  void DialPeer(Peer& peer);
  void OnDialResult(Peer& peer, bool ok);
  void ScheduleRedial(Peer& peer);
  void FlushPeer(Peer& peer);
  void AcceptPending();
  void ReadInbound(Inbound& conn);
  // Consumes complete frames from `buf`, delivering each to the node.
  // Returns false when the stream is corrupt (oversized frame).
  bool DrainFrames(Bytes& buf);
  void UpdateEpollOut(const Peer& peer);
  void PumpEpoll(int timeout_ms);
  int TimeoutUntilNextTimer() const;

  Options options_;
  Node* node_ = nullptr;
  NodeId self_ = kInvalidNode;
  Rng rng_;
  TraceSink* trace_ = nullptr;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t bound_port_ = 0;
  int64_t mono_epoch_us_ = 0;  // Now() = mono_us - mono_epoch_us_

  TimerQueue timers_;
  std::map<NodeId, Peer> peers_;
  std::map<int, Inbound> inbound_;  // by fd
  // sdrlint:shared_atomic — set by Stop() from signal/other threads,
  // polled by the event loop
  std::atomic<bool> stop_{false};
  bool running_ = false;

  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t reconnects_ = 0;
};

}  // namespace sdr

#endif  // SDR_SRC_RUNTIME_REAL_ENV_H_
