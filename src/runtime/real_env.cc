#include "src/runtime/real_env.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>

#include "src/util/logging.h"

namespace sdr {

namespace {

int64_t NowMonotonicUs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

int64_t NowRealtimeUs() {
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

uint32_t LoadU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

void AppendU32Le(Bytes& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

}  // namespace

RealEnv::RealEnv(Options options)
    : options_(std::move(options)), rng_(options_.rng_seed) {
  // Anchor the clock: Now() advances with CLOCK_MONOTONIC but counts from
  // the configured realtime epoch, sampled exactly once so later NTP steps
  // cannot move deadlines.
  int64_t mono = NowMonotonicUs();
  if (options_.epoch_realtime_us > 0) {
    mono_epoch_us_ = mono - (NowRealtimeUs() - options_.epoch_realtime_us);
  } else {
    mono_epoch_us_ = mono;
  }

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
  if (epoll_fd_ >= 0 && wake_pipe_[0] >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_pipe_[0];
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev);
  }
  SetupListener();
}

RealEnv::~RealEnv() { CloseAll(); }

void RealEnv::CloseAll() {
  for (auto& [id, peer] : peers_) {
    if (peer.fd >= 0) {
      close(peer.fd);
      peer.fd = -1;
    }
  }
  for (auto& [fd, conn] : inbound_) {
    close(fd);
  }
  inbound_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_pipe_[0] >= 0) {
    close(wake_pipe_[0]);
    close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

void RealEnv::SetupListener() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    SDR_LOG(kError) << "realenv: socket(): " << strerror(errno);
    return;
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.listen_port);
  if (inet_pton(AF_INET, options_.listen_host.c_str(), &addr.sin_addr) != 1) {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, 64) != 0) {
    SDR_LOG(kError) << "realenv: bind/listen " << options_.listen_host << ":"
                    << options_.listen_port << ": " << strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
}

void RealEnv::Attach(Node* node, NodeId id) {
  node_ = node;
  self_ = id;
  BindNode(node, id, this);
}

void RealEnv::AddPeer(NodeId id, const std::string& host, uint16_t port) {
  Peer peer;
  peer.id = id;
  peer.host = host;
  peer.port = port;
  peers_[id] = std::move(peer);
}

SimTime RealEnv::Now() const { return NowMonotonicUs() - mono_epoch_us_; }

EventId RealEnv::ScheduleAt(SimTime t, InlineFunction<void()> fn) {
  return timers_.Schedule(std::max(t, Now()), std::move(fn));
}

void RealEnv::Cancel(EventId id) { timers_.Cancel(id); }

SimTime RealEnv::ReconnectDelay(int attempt, SimTime initial, SimTime max) {
  if (attempt < 0) {
    attempt = 0;
  }
  // Shift saturates well before overflow: 63 - attempt bits of headroom.
  if (attempt >= 32 || (initial << attempt) >= max || initial >= max) {
    return max;
  }
  return initial << attempt;
}

void RealEnv::Send(NodeId to, Payload payload) {
  ++messages_sent_;
  bytes_sent_ += payload.size();
  auto it = peers_.find(to);
  if (it == peers_.end() || it->second.fd < 0) {
    // Unknown or currently unreachable peer: best-effort drop, exactly like
    // a partitioned/down node in the simulator.
    ++messages_dropped_;
    return;
  }
  Peer& peer = it->second;
  if (payload.size() > options_.max_frame_bytes) {
    ++messages_dropped_;
    return;
  }
  AppendU32Le(peer.out, static_cast<uint32_t>(payload.size()));
  AppendU32Le(peer.out, self_);
  peer.out.insert(peer.out.end(), payload.data(),
                  payload.data() + payload.size());
  if (!peer.connecting) {
    // While a non-blocking connect is in flight the frame just buffers;
    // the EPOLLOUT completion flushes it.
    FlushPeer(peer);
  }
}

void RealEnv::FlushPeer(Peer& peer) {
  while (peer.out_off < peer.out.size()) {
    ssize_t n = ::send(peer.fd, peer.out.data() + peer.out_off,
                       peer.out.size() - peer.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      peer.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;  // kernel buffer full; EPOLLOUT resumes us
    }
    // Hard error: tear down and redial. Buffered frames are lost (best
    // effort); the protocol's retransmit timers recover.
    OnDialResult(peer, false);
    return;
  }
  if (peer.out_off == peer.out.size()) {
    peer.out.clear();
    peer.out_off = 0;
  } else if (peer.out_off > (64u << 10)) {
    peer.out.erase(peer.out.begin(),
                   peer.out.begin() + static_cast<ptrdiff_t>(peer.out_off));
    peer.out_off = 0;
  }
  UpdateEpollOut(peer);
}

void RealEnv::UpdateEpollOut(const Peer& peer) {
  if (peer.fd < 0) {
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (peer.connecting || peer.out_off < peer.out.size()) {
    ev.events |= EPOLLOUT;
  }
  ev.data.fd = peer.fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, peer.fd, &ev);
}

void RealEnv::DialPeer(Peer& peer) {
  peer.redial_timer = 0;
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    ScheduleRedial(peer);
    return;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    ScheduleRedial(peer);
    return;
  }
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  peer.fd = fd;
  peer.connecting = (rc != 0 && errno == EINPROGRESS);
  if (rc != 0 && !peer.connecting) {
    close(fd);
    peer.fd = -1;
    ScheduleRedial(peer);
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN | (peer.connecting ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  if (!peer.connecting) {
    OnDialResult(peer, true);
  }
}

void RealEnv::OnDialResult(Peer& peer, bool ok) {
  if (ok) {
    peer.connecting = false;
    peer.attempts = 0;
    FlushPeer(peer);  // drain anything buffered while connecting
    return;
  }
  if (peer.fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, peer.fd, nullptr);
    close(peer.fd);
    peer.fd = -1;
  }
  peer.connecting = false;
  peer.out.clear();
  peer.out_off = 0;
  ScheduleRedial(peer);
}

void RealEnv::ScheduleRedial(Peer& peer) {
  if (peer.redial_timer != 0) {
    return;
  }
  SimTime delay = ReconnectDelay(peer.attempts, options_.reconnect_initial,
                                 options_.reconnect_max);
  ++peer.attempts;
  ++reconnects_;
  NodeId id = peer.id;
  peer.redial_timer = timers_.Schedule(Now() + delay, [this, id] {
    auto it = peers_.find(id);
    if (it != peers_.end() && it->second.fd < 0) {
      DialPeer(it->second);
    }
  });
}

void RealEnv::AcceptPending() {
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Inbound conn;
    conn.fd = fd;
    inbound_[fd] = std::move(conn);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

bool RealEnv::DrainFrames(Bytes& buf) {
  size_t off = 0;
  while (buf.size() - off >= 8) {
    uint32_t len = LoadU32Le(buf.data() + off);
    if (len > options_.max_frame_bytes) {
      return false;
    }
    if (buf.size() - off < 8 + static_cast<size_t>(len)) {
      break;
    }
    NodeId sender = LoadU32Le(buf.data() + off + 4);
    Payload payload(Bytes(buf.begin() + static_cast<ptrdiff_t>(off) + 8,
                          buf.begin() + static_cast<ptrdiff_t>(off) + 8 + len));
    off += 8 + len;
    ++messages_delivered_;
    if (node_ != nullptr && node_->up()) {
      node_->HandleMessage(sender, payload);
    }
  }
  if (off > 0) {
    buf.erase(buf.begin(), buf.begin() + static_cast<ptrdiff_t>(off));
  }
  return true;
}

void RealEnv::ReadInbound(Inbound& conn) {
  uint8_t chunk[64 * 1024];
  for (;;) {
    ssize_t n = recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.in.insert(conn.in.end(), chunk, chunk + n);
      if (!DrainFrames(conn.in)) {
        n = 0;  // corrupt stream: fall through to close
      } else {
        continue;
      }
    }
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
      close(conn.fd);
      inbound_.erase(conn.fd);
    }
    return;
  }
}

void RealEnv::RequestStop() {
  stop_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    uint8_t b = 1;
    // write() is async-signal-safe; a full pipe is fine (loop will wake).
    ssize_t ignored = write(wake_pipe_[1], &b, 1);
    (void)ignored;
  }
}

int RealEnv::TimeoutUntilNextTimer() const {
  if (timers_.empty()) {
    return 1000;  // wake periodically anyway; costs nothing
  }
  SimTime until = timers_.next_deadline() - Now();
  if (until <= 0) {
    return 0;
  }
  // Round up so we do not busy-spin under the deadline.
  return static_cast<int>(std::min<SimTime>(
      (until + kMillisecond - 1) / kMillisecond, 1000));
}

void RealEnv::PumpEpoll(int timeout_ms) {
  epoll_event events[64];
  int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  for (int i = 0; i < n; ++i) {
    int fd = events[i].data.fd;
    uint32_t mask = events[i].events;
    if (fd == wake_pipe_[0]) {
      uint8_t drain[64];
      while (read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    if (fd == listen_fd_) {
      AcceptPending();
      continue;
    }
    auto in_it = inbound_.find(fd);
    if (in_it != inbound_.end()) {
      ReadInbound(in_it->second);
      continue;
    }
    // Outbound peer socket.
    Peer* peer = nullptr;
    for (auto& [id, p] : peers_) {
      if (p.fd == fd) {
        peer = &p;
        break;
      }
    }
    if (peer == nullptr) {
      continue;
    }
    if (peer->connecting) {
      int err = 0;
      socklen_t len = sizeof(err);
      getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      OnDialResult(*peer, err == 0 && (mask & (EPOLLERR | EPOLLHUP)) == 0);
      continue;
    }
    if (mask & (EPOLLERR | EPOLLHUP)) {
      OnDialResult(*peer, false);
      continue;
    }
    if (mask & EPOLLIN) {
      // Peers never send on our outbound connection; a read event here is
      // EOF (peer restarted). Redial.
      uint8_t probe[256];
      ssize_t r = recv(fd, probe, sizeof(probe), 0);
      if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
        OnDialResult(*peer, false);
        continue;
      }
    }
    if (mask & EPOLLOUT) {
      FlushPeer(*peer);
    }
  }
}

void RealEnv::Run() {
  running_ = true;
  for (auto& [id, peer] : peers_) {
    DialPeer(peer);
  }
  if (node_ != nullptr) {
    if (options_.start_delay > 0) {
      timers_.Schedule(Now() + options_.start_delay, [this] { node_->Start(); });
    } else {
      node_->Start();
    }
  }
  while (!stop_.load(std::memory_order_acquire)) {
    PumpEpoll(TimeoutUntilNextTimer());
    timers_.RunDue(Now());
  }
  running_ = false;
}

}  // namespace sdr
