// Deterministic deployment provisioning: every process in a real cluster
// derives the complete roster — node ids, key pairs, certificates, initial
// corpus — from one shared (seed, counts) tuple, so no key distribution
// step is needed to stand a cluster up. This is a provisioning stand-in:
// production would distribute real keys out of band; the *protocol* trust
// story is unchanged either way because every key still only ever lives
// with its owner role in a real deployment (deriving all of them here is a
// convenience the test harness exploits, same as the simulator's Cluster).
//
// The roster layout matches the simulator's Cluster exactly:
//   id 1                      directory
//   ids 2 .. 1+M              masters
//   ids 2+M .. 1+M+A          auditors
//   then M*S slaves (grouped by owning master), then C clients.
//
// Also here: the node-config grammar sdrnode consumes and sdrcluster
// emits — a line-oriented `key value` format (see ParseNodeConfig).
#ifndef SDR_SRC_RUNTIME_DEPLOYMENT_H_
#define SDR_SRC_RUNTIME_DEPLOYMENT_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/auditor.h"
#include "src/core/client.h"
#include "src/core/config.h"
#include "src/core/master.h"
#include "src/core/slave.h"
#include "src/runtime/env.h"
#include "src/store/document_store.h"
#include "src/util/result.h"
#include "src/workload/workload.h"

namespace sdr {

// The shared tuple every process must agree on.
struct DeploymentConfig {
  uint64_t seed = 1;
  int num_masters = 1;
  int num_auditors = 1;
  int slaves_per_master = 2;
  int num_clients = 1;

  ProtocolParams params;
  CostModel cost;
  CorpusConfig corpus;
  QueryMix mix;
  WriteGen write_gen;

  // Client load shape (closed-loop in real deployments).
  SimTime client_think_time = 100 * kMillisecond;
  double client_write_fraction = 0.0;

  // Worker lanes for the auditor's re-execution engine (host CPU only;
  // every protocol-visible output is identical at any value).
  int audit_jobs = 1;
};

enum class NodeKind : uint8_t {
  kDirectory = 0,
  kMaster = 1,
  kAuditor = 2,
  kSlave = 3,
  kClient = 4,
};

const char* NodeKindName(NodeKind kind);

// Everything derivable from a DeploymentConfig. Holds every role's private
// key — callers building a single node use only their own (see file
// comment).
struct DeploymentPlan {
  DeploymentConfig config;

  ContentIdentity content;
  NodeId directory_id = 1;
  std::vector<NodeId> master_ids;
  std::vector<NodeId> auditor_ids;
  std::vector<NodeId> slave_ids;
  std::vector<NodeId> client_ids;

  std::vector<KeyPair> master_keys;
  std::vector<KeyPair> auditor_keys;
  std::vector<KeyPair> slave_keys;
  std::map<NodeId, Bytes> master_key_map;
  std::vector<Certificate> master_certs;
  // slave_certs[i] is issued by the owning master (i / slaves_per_master).
  std::vector<Certificate> slave_certs;

  DocumentStore base;  // initial content at version 0

  int num_nodes() const {
    return 1 + static_cast<int>(master_ids.size() + auditor_ids.size() +
                                slave_ids.size() + client_ids.size());
  }
  NodeKind KindOf(NodeId id) const;
  // Index within the node's role group (master 0.., slave 0.., ...).
  int RoleIndexOf(NodeId id) const;
  int OwnerMasterOf(int slave_index) const {
    return slave_index / config.slaves_per_master;
  }
};

DeploymentPlan BuildDeployment(const DeploymentConfig& config);

// Role option factories; index is the role-group index. Query/write sources
// for clients come from the plan's mix/write_gen.
Master::Options MasterOptionsFor(const DeploymentPlan& plan, int index);
Auditor::Options AuditorOptionsFor(const DeploymentPlan& plan, int index);
Slave::Options SlaveOptionsFor(const DeploymentPlan& plan, int slave_index);
Client::Options ClientOptionsFor(const DeploymentPlan& plan, int client_index,
                                 Client::LoadMode mode);

// --- Node config file (sdrnode input, sdrcluster output). ---
//
// Line-oriented `key value...` pairs; '#' starts a comment. Keys:
//   node_id N            this process's node id (required)
//   seed N               deployment seed (required)
//   masters N / auditors N / slaves_per_master N / clients N
//   items N              corpus size
//   max_latency_ms N / keepalive_ms N / double_check_p X / think_ms N
//   write_fraction X / lie_probability X (slaves pick it up by index)
//   liar_index N         global slave index that lies (-1 = none)
//   epoch_us N           shared cluster epoch (CLOCK_REALTIME microseconds)
//   start_delay_ms N     defer this node's Start() after its env comes up
//   listen HOST:PORT     this node's listen address
//   peer ID HOST:PORT    one line per peer this node talks to
struct NodeConfig {
  NodeId node_id = kInvalidNode;
  DeploymentConfig deployment;
  int liar_index = -1;
  double lie_probability = 1.0;
  int64_t epoch_us = 0;
  int64_t start_delay_ms = 0;
  std::string listen_host = "127.0.0.1";
  uint16_t listen_port = 0;
  struct PeerAddr {
    NodeId id;
    std::string host;
    uint16_t port;
  };
  std::vector<PeerAddr> peers;
};

Result<NodeConfig> ParseNodeConfig(const std::string& text);
std::string FormatNodeConfig(const NodeConfig& config);

}  // namespace sdr

#endif  // SDR_SRC_RUNTIME_DEPLOYMENT_H_
