#include "src/runtime/sim_env.h"

namespace sdr {

void SimEnv::Send(NodeId to, Payload payload) {
  net_->Send(self_, to, std::move(payload));
}

}  // namespace sdr
