// The execution environment abstraction: everything a protocol role needs
// from the world — a clock, cancellable timers, a message transport, a
// random stream, an optional trace sink — behind one interface, so the
// identical role code runs on two substrates:
//
//   SimEnv  — adapter over the deterministic Simulator/Network pair; every
//             call forwards to the same simulator primitives the roles used
//             to call directly, so behavior is byte-identical and the
//             determinism gates (same-seed replays) are untouched.
//   RealEnv — an epoll-based single-threaded event loop with TCP transport
//             and a monotonic wall clock, for running roles as processes.
//
// Time is SimTime microseconds on both substrates: virtual on SimEnv,
// monotonic-since-start on RealEnv. Role code must express all deadlines as
// durations relative to Now() — never as absolute epochs — so the same
// freshness windows work whether Now() started at zero nanoseconds ago or
// the process has been up for a week.
#ifndef SDR_SRC_RUNTIME_ENV_H_
#define SDR_SRC_RUNTIME_ENV_H_

#include <cstdint>

#include "src/util/bytes.h"
#include "src/util/inline_function.h"
#include "src/util/rng.h"

namespace sdr {

class TraceSink;

// Time in microseconds. Virtual under SimEnv, monotonic under RealEnv.
using SimTime = int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

// Identifies a scheduled timer/event for cancellation. 0 is never valid.
using EventId = uint64_t;

// Node identity on the transport. Ids start at 1; 0 means "no node".
using NodeId = uint32_t;
constexpr NodeId kInvalidNode = 0;

// Read-only time source. TraceSink and other passive observers take a
// Clock rather than a full Env so they work with the bare Simulator too.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual SimTime Now() const = 0;
};

class Node;

// The per-node execution environment. Each node holds exactly one Env; the
// sender id on Send is implicit (this env's node), which is also the honest
// position for a real transport — a process cannot pick its source address.
class Env : public Clock {
 public:
  // Schedules `fn` at absolute time `t` (clamped to Now()). The returned id
  // stays valid for Cancel until the event fires.
  virtual EventId ScheduleAt(SimTime t, InlineFunction<void()> fn) = 0;

  // Schedules `fn` to run `delay` from now.
  EventId ScheduleAfter(SimTime delay, InlineFunction<void()> fn) {
    return ScheduleAt(Now() + delay, std::move(fn));
  }

  // Cancels a pending event. Safe on already-fired, already-cancelled, or
  // invalid ids (exact no-op), any number of times.
  virtual void Cancel(EventId id) = 0;

  // Sends `payload` from this env's node to `to`. Best-effort on both
  // substrates: the simulator models loss and partitions, the real
  // transport drops messages while a peer connection is down.
  virtual void Send(NodeId to, Payload payload) = 0;

  // The environment's deterministic random stream (shared simulator stream
  // under SimEnv; per-node seeded stream under RealEnv).
  virtual Rng& rng() = 0;

  // Null when tracing is off; instrumentation sites branch once on this.
  virtual TraceSink* trace() const = 0;

  // Asks the environment's event loop to stop. No-op under SimEnv (the
  // harness drives the simulator); under RealEnv this is the shutdown hook
  // sdrnode's signal handlers use.
  virtual void RequestStop() {}

 protected:
  // Substrate wiring: implementations bind themselves to their node.
  static void BindNode(Node* node, NodeId id, Env* env);
};

// Base class for protocol participants. Subclasses implement HandleMessage;
// the harness (Network::StartAll in the simulator, sdrnode in a real
// deployment) calls Start() once the node has an id and an Env.
class Node {
 public:
  virtual ~Node() = default;

  // Called once, after the node has an id and its Env is wired.
  virtual void Start() {}

  // Called on message delivery. `from` is the (unauthenticated) sender id;
  // protocol layers must not trust it for security decisions — that is what
  // the signatures inside the payloads are for. The payload is an immutable
  // shared view; handlers that need to keep it alive copy the cheap Payload
  // handle, not the bytes.
  virtual void HandleMessage(NodeId from, const Payload& payload) = 0;

  NodeId id() const { return id_; }
  bool up() const { return up_; }

 protected:
  Env* env() const { return env_; }

 private:
  friend class Env;
  friend class Network;  // crash/restart toggles up_ in the simulator
  NodeId id_ = kInvalidNode;
  bool up_ = true;
  Env* env_ = nullptr;
};

inline void Env::BindNode(Node* node, NodeId id, Env* env) {
  node->id_ = id;
  node->env_ = env;
}

}  // namespace sdr

#endif  // SDR_SRC_RUNTIME_ENV_H_
