// Ed25519 signatures (RFC 8032), implemented from scratch:
//   - field arithmetic mod p = 2^255 - 19 (5 x 51-bit limbs, __int128 mul,
//     dedicated squaring)
//   - twisted Edwards point arithmetic in extended coordinates with the
//     unified add-2008-hwcd-3 formulas plus a dedicated doubling and mixed
//     additions against precomputed (y+x, y-x, 2dxy) points
//   - scalar arithmetic mod the group order L (byte-limb folding reduction
//     on the fast path, binary long division on the reference path)
//   - SHA-512 from src/crypto/sha2.h
//
// Two code paths produce bit-identical signatures and verdicts:
//   - the *fast path* (default): a precomputed signed-radix-16 fixed-base
//     table for signing/key derivation, Straus/Shamir interleaved
//     double-scalar multiplication for verification, and a random-linear-
//     combination batch verifier with bisection fallback;
//   - the *naive path*: the original clarity-first double-and-add ladders,
//     kept as a cross-checking oracle behind Ed25519SetFastPath(false).
//
// Curve constants (d, sqrt(-1), the base point) are derived numerically at
// first use instead of being transcribed, and validated by the RFC 8032
// test vectors in tests/crypto_test.cc.
//
// Constant-time discipline: the *fast-path* signing and key-derivation
// pipeline (seed hash -> clamp -> radix-16 digits -> fixed-base table
// multiplication -> S = r + k*a) is branch-free and memory-index-free in
// the secret, enforced two ways: statically by sdrlint rule R5 over the
// `sdrlint:secret` annotations in the sources, and dynamically by the
// MemorySanitizer taint harness `tools/ct_check` (see docs/ANALYSIS.md).
// The *naive* reference ladders remain variable-time by design and must
// only see secrets in offline cross-checking, never on a host exposed to
// timing adversaries.
#ifndef SDR_SRC_CRYPTO_ED25519_H_
#define SDR_SRC_CRYPTO_ED25519_H_

#include <cstdint>
#include <vector>

#include "src/util/bytes.h"

namespace sdr {

constexpr size_t kEd25519SeedSize = 32;
constexpr size_t kEd25519PublicKeySize = 32;
constexpr size_t kEd25519SignatureSize = 64;

// Derives the public key for a 32-byte seed.
Bytes Ed25519PublicKey(const Bytes& seed);

// Signs `message` with the given 32-byte seed; returns the 64-byte
// signature R || S.
Bytes Ed25519Sign(const Bytes& seed, const Bytes& message);

// Verifies signature over message for the given 32-byte public key.
// Rejects non-canonical S (S >= L) and undecodable points.
bool Ed25519Verify(const Bytes& public_key, const Bytes& message,
                   const Bytes& signature);

// Precomputed signing state for one seed: the clamped secret scalar, the
// deterministic-nonce prefix, and the encoded public key. Expanding costs
// one fixed-base multiplication; signing with the expanded key skips the
// per-call seed hashing and public-key derivation (the bulk of a naive
// sign). Signatures are bit-identical to Ed25519Sign on the same seed.
struct Ed25519ExpandedKey {
  uint8_t scalar[32];  // sdrlint:secret
  uint8_t prefix[32];  // sdrlint:secret
  Bytes public_key;
};

Ed25519ExpandedKey Ed25519ExpandKey(const Bytes& seed);
Bytes Ed25519SignExpanded(const Ed25519ExpandedKey& key, const Bytes& message);

// One (public key, message, signature) triple for batch verification.
struct Ed25519BatchItem {
  Bytes public_key;
  Bytes message;
  Bytes signature;
};

// Verifies many signatures at once with a random-linear-combination check:
// sum_i z_i * (S_i B - R_i - k_i A_i) == identity for random 128-bit z_i,
// sharing one interleaved multi-scalar multiplication across the batch.
// When the combined equation fails, the batch is bisected until every
// culprit is identified, so out[i] always equals Ed25519Verify(item i).
// Amortized cost per signature is well below a single verification for
// batches of ~4 or more.
std::vector<bool> Ed25519VerifyBatch(const std::vector<Ed25519BatchItem>& items);

// Test/bench hook: toggles between the precomputed-table fast path and the
// original naive ladders (both produce identical bytes). Fast is the
// default; flipping this is global and not thread-safe.
void Ed25519SetFastPath(bool enabled);
bool Ed25519FastPathEnabled();

}  // namespace sdr

#endif  // SDR_SRC_CRYPTO_ED25519_H_
