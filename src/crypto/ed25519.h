// Ed25519 signatures (RFC 8032), implemented from scratch:
//   - field arithmetic mod p = 2^255 - 19 (5 x 51-bit limbs, __int128 mul)
//   - twisted Edwards point arithmetic in extended coordinates with the
//     unified add-2008-hwcd-3 formulas (also used for doubling)
//   - scalar arithmetic mod the group order L via binary long division
//   - SHA-512 from src/crypto/sha2.h
//
// Curve constants (d, sqrt(-1), the base point) are derived numerically at
// first use instead of being transcribed, and validated by the RFC 8032
// test vectors in tests/crypto_test.cc.
//
// This implementation favours clarity over speed and is NOT constant-time;
// it authenticates messages inside a deterministic simulator, not on a real
// network exposed to timing adversaries.
#ifndef SDR_SRC_CRYPTO_ED25519_H_
#define SDR_SRC_CRYPTO_ED25519_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace sdr {

constexpr size_t kEd25519SeedSize = 32;
constexpr size_t kEd25519PublicKeySize = 32;
constexpr size_t kEd25519SignatureSize = 64;

// Derives the public key for a 32-byte seed.
Bytes Ed25519PublicKey(const Bytes& seed);

// Signs `message` with the given 32-byte seed; returns the 64-byte
// signature R || S.
Bytes Ed25519Sign(const Bytes& seed, const Bytes& message);

// Verifies signature over message for the given 32-byte public key.
// Rejects non-canonical S (S >= L) and undecodable points.
bool Ed25519Verify(const Bytes& public_key, const Bytes& message,
                   const Bytes& signature);

}  // namespace sdr

#endif  // SDR_SRC_CRYPTO_ED25519_H_
