// SHA-256 and SHA-512 (FIPS 180-2). SHA-512 backs Ed25519; SHA-256 backs
// HMAC session authentication and the Merkle tree used by the state-signing
// baseline.
//
// The round constants (fractional parts of cube roots of the first 80
// primes) are derived at process start by exact integer arithmetic rather
// than transcribed, and the derivation is cross-checked by the published
// test vectors in tests/crypto_test.cc.
#ifndef SDR_SRC_CRYPTO_SHA2_H_
#define SDR_SRC_CRYPTO_SHA2_H_

#include <cstdint>
#include <string_view>

#include "src/util/bytes.h"

namespace sdr {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  Bytes Final();

  static Bytes Hash(const Bytes& data);
  static Bytes Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[8];
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

class Sha512 {
 public:
  static constexpr size_t kDigestSize = 64;
  static constexpr size_t kBlockSize = 128;

  Sha512();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  Bytes Final();

  static Bytes Hash(const Bytes& data);
  static Bytes Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint64_t h_[8];
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
  // 128-bit message length is overkill for a simulator; 64-bit byte count
  // (2^64 bytes) is far beyond anything we hash.
  uint64_t total_len_ = 0;
};

// Exposed for tests: the derived SHA-512 round constant table (80 entries);
// SHA-256's constants are the top 32 bits of the first 64 entries.
const uint64_t* Sha512RoundConstants();

}  // namespace sdr

#endif  // SDR_SRC_CRYPTO_SHA2_H_
