// Pluggable signing abstraction.
//
// The protocol's guarantees hinge on non-repudiable slave signatures over
// pledge packets, so the default scheme is real Ed25519. For very large
// simulations (millions of reads) an HMAC mode trades non-repudiation for
// speed — everything else in the protocol stays identical — and a Null mode
// exists for logic-only unit tests. Which mode is in use is part of the
// cluster configuration and is reported by the benches.
//
// Two throughput helpers sit on top of plain VerifySignature:
//   - VerifySignatureBatch amortizes many verifications into one
//     random-linear-combination check when the scheme supports it
//     (SchemeSupportsBatchVerify — currently Ed25519 only);
//   - VerifyCache deduplicates repeated verifications of the same
//     (key, message, signature) triple, e.g. one master's version token
//     attached to thousands of pledges.
#ifndef SDR_SRC_CRYPTO_SIGNER_H_
#define SDR_SRC_CRYPTO_SIGNER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace sdr {

struct Ed25519ExpandedKey;
class WorkerPool;

enum class SignatureScheme : uint8_t {
  kEd25519 = 0,
  kHmacSha256 = 1,  // symmetric; verifier must hold the same key
  kNull = 2,        // no-op; for logic-only tests
};

const char* SignatureSchemeName(SignatureScheme scheme);

// A key pair under one of the schemes. For kEd25519 `private_key` is the
// 32-byte seed and `public_key` the compressed point; for kHmacSha256 both
// are the shared key; for kNull both are empty.
struct KeyPair {
  SignatureScheme scheme = SignatureScheme::kEd25519;
  Bytes private_key;
  Bytes public_key;

  // Deterministic key generation from the simulation RNG.
  static KeyPair Generate(SignatureScheme scheme, Rng& rng);
};

// Signs messages with a held private key. For Ed25519 the seed is expanded
// once on first use (secret scalar, nonce prefix, public key), so repeated
// signing — a slave pledging every read — skips the per-call key setup.
class Signer {
 public:
  explicit Signer(KeyPair key_pair) : key_(std::move(key_pair)) {}

  Bytes Sign(const Bytes& message) const;
  const Bytes& public_key() const { return key_.public_key; }
  SignatureScheme scheme() const { return key_.scheme; }

 private:
  KeyPair key_;
  mutable std::shared_ptr<Ed25519ExpandedKey> expanded_;  // lazy, Ed25519 only
};

// Verifies signatures against a public key.
bool VerifySignature(SignatureScheme scheme, const Bytes& public_key,
                     const Bytes& message, const Bytes& signature);

// One (public key, message, signature) triple for VerifySignatureBatch.
struct VerifyItem {
  Bytes public_key;
  Bytes message;
  Bytes signature;
};

// True when the scheme has a batch verification cheaper than item-by-item
// verification (currently Ed25519 only).
bool SchemeSupportsBatchVerify(SignatureScheme scheme);

// Verifies all items; out[i] == VerifySignature(item i) always, but for
// batch-capable schemes the amortized cost per item is well below a single
// verification.
std::vector<bool> VerifySignatureBatch(SignatureScheme scheme,
                                       const std::vector<VerifyItem>& items);

// A small LRU cache deduplicating repeated verifications of the identical
// (scheme, public key, message, signature) triple. Both verdicts are
// cached: a forged signature stays forged no matter how often it is
// retried. Null-scheme verifications bypass the cache (a map lookup costs
// more than the check itself).
//
// Not thread-safe, by design — each simulated node owns its cache.
class VerifyCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  explicit VerifyCache(size_t capacity = 1024) : capacity_(capacity) {}

  // Cached equivalent of VerifySignature.
  bool Verify(SignatureScheme scheme, const Bytes& public_key,
              const Bytes& message, const Bytes& signature);

  // Cached equivalent of VerifySignatureBatch: hits are answered from the
  // cache, the remaining misses go through one batch verification, and
  // their verdicts are inserted.
  //
  // With a WorkerPool the pure-compute phases — cache-key hashing and the
  // miss verifications (sharded into per-lane sub-batches) — fan out across
  // its lanes; cache lookups and inserts stay on the calling thread. The
  // verdict vector is a function of the items alone, so it is byte-identical
  // at any lane count (sub-batch boundaries cannot change per-item truth:
  // batch verification reports exact per-item validity).
  std::vector<bool> VerifyBatch(SignatureScheme scheme,
                                const std::vector<VerifyItem>& items,
                                WorkerPool* pool = nullptr);

  const Stats& stats() const { return stats_; }
  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  // Key: SHA-256 over (scheme, public key, message, signature), so entries
  // are fixed-size regardless of message length.
  using Key = std::string;

  static Key MakeKey(SignatureScheme scheme, const Bytes& public_key,
                     const Bytes& message, const Bytes& signature);
  // Returns the cached verdict for key, refreshing its LRU position;
  // nullptr on miss. Updates hit/miss counters.
  const bool* Lookup(const Key& key);
  void Insert(const Key& key, bool verdict);

  size_t capacity_;
  // Most-recently-used at the front.
  std::list<std::pair<Key, bool>> lru_;
  std::unordered_map<Key, std::list<std::pair<Key, bool>>::iterator> map_;
  Stats stats_;
};

}  // namespace sdr

#endif  // SDR_SRC_CRYPTO_SIGNER_H_
