// Pluggable signing abstraction.
//
// The protocol's guarantees hinge on non-repudiable slave signatures over
// pledge packets, so the default scheme is real Ed25519. For very large
// simulations (millions of reads) an HMAC mode trades non-repudiation for
// speed — everything else in the protocol stays identical — and a Null mode
// exists for logic-only unit tests. Which mode is in use is part of the
// cluster configuration and is reported by the benches.
#ifndef SDR_SRC_CRYPTO_SIGNER_H_
#define SDR_SRC_CRYPTO_SIGNER_H_

#include <cstdint>
#include <memory>

#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace sdr {

enum class SignatureScheme : uint8_t {
  kEd25519 = 0,
  kHmacSha256 = 1,  // symmetric; verifier must hold the same key
  kNull = 2,        // no-op; for logic-only tests
};

const char* SignatureSchemeName(SignatureScheme scheme);

// A key pair under one of the schemes. For kEd25519 `private_key` is the
// 32-byte seed and `public_key` the compressed point; for kHmacSha256 both
// are the shared key; for kNull both are empty.
struct KeyPair {
  SignatureScheme scheme = SignatureScheme::kEd25519;
  Bytes private_key;
  Bytes public_key;

  // Deterministic key generation from the simulation RNG.
  static KeyPair Generate(SignatureScheme scheme, Rng& rng);
};

// Signs messages with a held private key.
class Signer {
 public:
  explicit Signer(KeyPair key_pair) : key_(std::move(key_pair)) {}

  Bytes Sign(const Bytes& message) const;
  const Bytes& public_key() const { return key_.public_key; }
  SignatureScheme scheme() const { return key_.scheme; }

 private:
  KeyPair key_;
};

// Verifies signatures against a public key.
bool VerifySignature(SignatureScheme scheme, const Bytes& public_key,
                     const Bytes& message, const Bytes& signature);

}  // namespace sdr

#endif  // SDR_SRC_CRYPTO_SIGNER_H_
