#include "src/crypto/sha2.h"

#include <algorithm>
#include <cstring>

namespace sdr {

namespace {

// ---------------------------------------------------------------------------
// Round-constant derivation.
//
// K_i = first 64 bits of frac(cbrt(p_i)) for the i-th prime p_i, i.e.
// floor(cbrt(p_i * 2^192)) mod 2^64. We compute the integer cube root of the
// 200-bit value p_i << 192 by binary search using 256-bit arithmetic.
// ---------------------------------------------------------------------------

struct U256 {
  uint64_t w[4] = {0, 0, 0, 0};  // little-endian limbs
};

// Compares a and b; returns -1/0/1.
int Cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] != b.w[i]) {
      return a.w[i] < b.w[i] ? -1 : 1;
    }
  }
  return 0;
}

// c = a * b for 128-bit a, b (given as lo/hi pairs), truncated to 256 bits.
// Cube candidates are < 2^67 so no truncation occurs in practice.
U256 Mul128(uint64_t a_lo, uint64_t a_hi, uint64_t b_lo, uint64_t b_hi) {
  U256 r;
  auto mac = [&r](int idx, uint64_t x, uint64_t y) {
    unsigned __int128 p = static_cast<unsigned __int128>(x) * y;
    unsigned __int128 acc = p;
    for (int i = idx; i < 4 && acc != 0; ++i) {
      acc += r.w[i];
      r.w[i] = static_cast<uint64_t>(acc);
      acc >>= 64;
    }
  };
  mac(0, a_lo, b_lo);
  mac(1, a_lo, b_hi);
  mac(1, a_hi, b_lo);
  mac(2, a_hi, b_hi);
  return r;
}

// candidate^3 where candidate < 2^85 (fits lo/hi). Result must fit 256 bits.
U256 Cube(uint64_t lo, uint64_t hi) {
  U256 sq = Mul128(lo, hi, lo, hi);
  // sq fits in 192 bits for our candidates; multiply by candidate again.
  // Full 256x128 multiply, truncated to 256 bits (no overflow for our use).
  U256 r;
  auto mac = [&r](int idx, uint64_t x, uint64_t y) {
    if (idx >= 4) {
      return;
    }
    unsigned __int128 p = static_cast<unsigned __int128>(x) * y;
    unsigned __int128 acc = p;
    for (int i = idx; i < 4 && acc != 0; ++i) {
      acc += r.w[i];
      r.w[i] = static_cast<uint64_t>(acc);
      acc >>= 64;
    }
  };
  for (int i = 0; i < 4; ++i) {
    mac(i, sq.w[i], lo);
    mac(i + 1, sq.w[i], hi);
  }
  return r;
}

// floor(cbrt(p << 192)) mod 2^64.
uint64_t CbrtFrac64(uint32_t prime) {
  U256 target;
  target.w[3] = static_cast<uint64_t>(prime);  // prime << 192
  // The root is < 2^67 (prime < 512 -> cbrt(2^201) ~ 2^67).
  uint64_t lo = 0, hi = 0;
  for (int bit = 66; bit >= 0; --bit) {
    uint64_t t_lo = lo, t_hi = hi;
    if (bit >= 64) {
      t_hi |= 1ULL << (bit - 64);
    } else {
      t_lo |= 1ULL << bit;
    }
    if (Cmp(Cube(t_lo, t_hi), target) <= 0) {
      lo = t_lo;
      hi = t_hi;
    }
  }
  // Fractional part = root with the integer part (top bits) dropped; since
  // the integer part of cbrt(prime) is < 8, it occupies bits >= 64 of the
  // scaled root only when prime >= 2... Concretely: root = cbrt(p)*2^64, and
  // cbrt(p) in [1, 8), so root in [2^64, 2^67); the low 64 bits are exactly
  // the fractional part we want.
  return lo;
}

const uint64_t* BuildK512() {
  static uint64_t k[80];
  static bool built = false;
  if (!built) {
    int count = 0;
    for (uint32_t n = 2; count < 80; ++n) {
      bool prime = true;
      for (uint32_t d = 2; d * d <= n; ++d) {
        if (n % d == 0) {
          prime = false;
          break;
        }
      }
      if (prime) {
        k[count++] = CbrtFrac64(n);
      }
    }
    built = true;
  }
  return k;
}

inline uint32_t Rotr32(uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}
inline uint64_t Rotr64(uint64_t x, int n) {
  return (x >> n) | (x << (64 - n));
}

}  // namespace

const uint64_t* Sha512RoundConstants() {
  return BuildK512();
}

// ---------------------------------------------------------------------------
// SHA-256
// ---------------------------------------------------------------------------

Sha256::Sha256() {
  static constexpr uint32_t kInit[8] = {
      0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
      0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
  };
  std::memcpy(h_, kInit, sizeof(h_));
}

void Sha256::ProcessBlock(const uint8_t* block) {
  const uint64_t* k512 = Sha512RoundConstants();
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<uint32_t>(block[4 * i]) << 24 |
           static_cast<uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = Rotr32(w[i - 15], 7) ^ Rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = Rotr32(w[i - 2], 17) ^ Rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  uint32_t e = h_[4], f = h_[5], g = h_[6], hh = h_[7];
  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = Rotr32(e, 6) ^ Rotr32(e, 11) ^ Rotr32(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t k = static_cast<uint32_t>(k512[i] >> 32);
    uint32_t temp1 = hh + s1 + ch + k + w[i];
    uint32_t s0 = Rotr32(a, 2) ^ Rotr32(a, 13) ^ Rotr32(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t temp2 = s0 + maj;
    hh = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += hh;
}

void Sha256::Update(const uint8_t* data, size_t len) {
  total_len_ += len;
  if (buffer_len_ > 0) {
    size_t take = std::min(len, kBlockSize - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= kBlockSize) {
    ProcessBlock(data);
    data += kBlockSize;
    len -= kBlockSize;
  }
  if (len > 0) {
    std::memcpy(buffer_, data, len);
    buffer_len_ = len;
  }
}

Bytes Sha256::Final() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(len_bytes, 8);

  Bytes digest(kDigestSize);
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    digest[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return digest;
}

Bytes Sha256::Hash(const Bytes& data) {
  Sha256 h;
  h.Update(data);
  return h.Final();
}

Bytes Sha256::Hash(std::string_view data) {
  Sha256 h;
  h.Update(data);
  return h.Final();
}

// ---------------------------------------------------------------------------
// SHA-512
// ---------------------------------------------------------------------------

Sha512::Sha512() {
  static constexpr uint64_t kInit[8] = {
      0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL, 0x3c6ef372fe94f82bULL,
      0xa54ff53a5f1d36f1ULL, 0x510e527fade682d1ULL, 0x9b05688c2b3e6c1fULL,
      0x1f83d9abfb41bd6bULL, 0x5be0cd19137e2179ULL,
  };
  std::memcpy(h_, kInit, sizeof(h_));
}

void Sha512::ProcessBlock(const uint8_t* block) {
  const uint64_t* k = Sha512RoundConstants();
  uint64_t w[80];
  for (int i = 0; i < 16; ++i) {
    uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v = (v << 8) | block[8 * i + b];
    }
    w[i] = v;
  }
  for (int i = 16; i < 80; ++i) {
    uint64_t s0 = Rotr64(w[i - 15], 1) ^ Rotr64(w[i - 15], 8) ^ (w[i - 15] >> 7);
    uint64_t s1 = Rotr64(w[i - 2], 19) ^ Rotr64(w[i - 2], 61) ^ (w[i - 2] >> 6);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint64_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  uint64_t e = h_[4], f = h_[5], g = h_[6], hh = h_[7];
  for (int i = 0; i < 80; ++i) {
    uint64_t s1 = Rotr64(e, 14) ^ Rotr64(e, 18) ^ Rotr64(e, 41);
    uint64_t ch = (e & f) ^ (~e & g);
    uint64_t temp1 = hh + s1 + ch + k[i] + w[i];
    uint64_t s0 = Rotr64(a, 28) ^ Rotr64(a, 34) ^ Rotr64(a, 39);
    uint64_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint64_t temp2 = s0 + maj;
    hh = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += hh;
}

void Sha512::Update(const uint8_t* data, size_t len) {
  total_len_ += len;
  if (buffer_len_ > 0) {
    size_t take = std::min(len, kBlockSize - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= kBlockSize) {
    ProcessBlock(data);
    data += kBlockSize;
    len -= kBlockSize;
  }
  if (len > 0) {
    std::memcpy(buffer_, data, len);
    buffer_len_ = len;
  }
}

Bytes Sha512::Final() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  // Pad to 112 mod 128; the 16-byte length field's upper 8 bytes are zero.
  while (buffer_len_ != 112) {
    Update(&zero, 1);
  }
  uint8_t len_bytes[16] = {0};
  for (int i = 0; i < 8; ++i) {
    len_bytes[8 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(len_bytes, 16);

  Bytes digest(kDigestSize);
  for (int i = 0; i < 8; ++i) {
    for (int b = 0; b < 8; ++b) {
      digest[8 * i + b] = static_cast<uint8_t>(h_[i] >> (56 - 8 * b));
    }
  }
  return digest;
}

Bytes Sha512::Hash(const Bytes& data) {
  Sha512 h;
  h.Update(data);
  return h.Final();
}

Bytes Sha512::Hash(std::string_view data) {
  Sha512 h;
  h.Update(data);
  return h.Final();
}

}  // namespace sdr
