// HMAC-SHA256 (RFC 2104). Used by the HmacSigner (cheap symmetric
// authentication mode for very large simulations) and by channel session
// authentication in src/sim/channel.h.
#ifndef SDR_SRC_CRYPTO_HMAC_H_
#define SDR_SRC_CRYPTO_HMAC_H_

#include "src/util/bytes.h"

namespace sdr {

// Computes HMAC-SHA256(key, message). Keys longer than the block size are
// hashed first, per the RFC.
Bytes HmacSha256(const Bytes& key, const Bytes& message);

}  // namespace sdr

#endif  // SDR_SRC_CRYPTO_HMAC_H_
