// Constant-time discipline hooks (ctgrind-style, via MemorySanitizer).
//
// The pledge protocol's evidence chain is only as strong as the secrecy of
// the slaves' signing keys: a key recovered through a timing or cache side
// channel forges the very pledges the auditor treats as proof. Following
// the ctgrind / dudect line of work, we machine-check the Ed25519 fast
// path instead of trusting review: `tools/ct_check` marks private-key
// bytes as *tainted* (MSan "uninitialized"), runs key expansion and
// signing, and lets MemorySanitizer report any branch or memory index
// that depends on them — exactly the operations a microarchitectural
// attacker can observe.
//
// Three hooks make that workable:
//   - CtClassify(p, n): taint n bytes as secret (MSan poison). No-op in
//     ordinary builds.
//   - CtDeclassify(p, n): declare n bytes public by design. Placed at the
//     protocol-level declassification boundaries only: the output point of
//     a fixed-base scalar multiplication (A = aB and R = rB are published)
//     and the signature scalar S (published in every signature). Everything
//     between taint and declassification must be branch-free and
//     index-free in the secret.
//   - CtIsTainted(p, n): true when any of the n bytes still carries taint;
//     lets the harness assert it is not vacuously passing.
//
// The static half of the same discipline is sdrlint rule R5 (see
// docs/ANALYSIS.md): identifiers tagged `// sdrlint:secret` may not reach
// comparisons, branch conditions, `memcmp`, or array subscripts unless the
// line is annotated `// sdrlint:public`.
#ifndef SDR_SRC_CRYPTO_CT_H_
#define SDR_SRC_CRYPTO_CT_H_

#include <cstddef>

#if defined(__has_feature)
#if __has_feature(memory_sanitizer)
#include <sanitizer/msan_interface.h>
#define SDR_CT_MSAN 1
#endif
#endif

namespace sdr {

// True when the taint harness is active (MemorySanitizer build); in such
// builds CtClassify/CtDeclassify really move shadow state.
constexpr bool CtTaintActive() {
#if defined(SDR_CT_MSAN)
  return true;
#else
  return false;
#endif
}

inline void CtClassify(void* p, size_t n) {
#if defined(SDR_CT_MSAN)
  __msan_poison(p, n);
#else
  (void)p;
  (void)n;
#endif
}

inline void CtDeclassify(void* p, size_t n) {
#if defined(SDR_CT_MSAN)
  __msan_unpoison(p, n);
#else
  (void)p;
  (void)n;
#endif
}

inline bool CtIsTainted(const void* p, size_t n) {
#if defined(SDR_CT_MSAN)
  return __msan_test_shadow(p, n) != -1;
#else
  (void)p;
  (void)n;
  return false;
#endif
}

}  // namespace sdr

#endif  // SDR_SRC_CRYPTO_CT_H_
