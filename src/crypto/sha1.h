// SHA-1 (FIPS 180-1) — the hash the paper specifies for pledge result
// digests. Incremental Update/Final interface plus a one-shot helper.
#ifndef SDR_SRC_CRYPTO_SHA1_H_
#define SDR_SRC_CRYPTO_SHA1_H_

#include <cstdint>
#include <string_view>

#include "src/util/bytes.h"

namespace sdr {

class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;
  static constexpr size_t kBlockSize = 64;

  Sha1();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  // Finalizes and returns the 20-byte digest. The object must not be used
  // after Final().
  Bytes Final();

  static Bytes Hash(const Bytes& data);
  static Bytes Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[5];
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

}  // namespace sdr

#endif  // SDR_SRC_CRYPTO_SHA1_H_
