#include "src/crypto/signer.h"

#include <algorithm>

#include "src/crypto/ed25519.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha2.h"
#include "src/util/parallel.h"

namespace sdr {

const char* SignatureSchemeName(SignatureScheme scheme) {
  switch (scheme) {
    case SignatureScheme::kEd25519:
      return "ed25519";
    case SignatureScheme::kHmacSha256:
      return "hmac-sha256";
    case SignatureScheme::kNull:
      return "null";
  }
  return "?";
}

KeyPair KeyPair::Generate(SignatureScheme scheme, Rng& rng) {
  KeyPair kp;
  kp.scheme = scheme;
  switch (scheme) {
    case SignatureScheme::kEd25519: {
      kp.private_key = rng.NextBytes(kEd25519SeedSize);
      kp.public_key = Ed25519PublicKey(kp.private_key);
      break;
    }
    case SignatureScheme::kHmacSha256: {
      kp.private_key = rng.NextBytes(32);
      kp.public_key = kp.private_key;
      break;
    }
    case SignatureScheme::kNull:
      break;
  }
  return kp;
}

Bytes Signer::Sign(const Bytes& message) const {
  switch (key_.scheme) {
    case SignatureScheme::kEd25519:
      if (!expanded_) {
        expanded_ = std::make_shared<Ed25519ExpandedKey>(
            Ed25519ExpandKey(key_.private_key));
      }
      return Ed25519SignExpanded(*expanded_, message);
    case SignatureScheme::kHmacSha256:
      return HmacSha256(key_.private_key, message);
    case SignatureScheme::kNull:
      return Bytes{0x4e};  // non-empty marker so "missing" != "null-signed"
  }
  return Bytes();
}

bool VerifySignature(SignatureScheme scheme, const Bytes& public_key,
                     const Bytes& message, const Bytes& signature) {
  switch (scheme) {
    case SignatureScheme::kEd25519:
      return Ed25519Verify(public_key, message, signature);
    case SignatureScheme::kHmacSha256:
      return ConstantTimeEquals(HmacSha256(public_key, message), signature);
    case SignatureScheme::kNull:
      return signature == Bytes{0x4e};
  }
  return false;
}

bool SchemeSupportsBatchVerify(SignatureScheme scheme) {
  return scheme == SignatureScheme::kEd25519;
}

std::vector<bool> VerifySignatureBatch(SignatureScheme scheme,
                                       const std::vector<VerifyItem>& items) {
  if (scheme == SignatureScheme::kEd25519) {
    std::vector<Ed25519BatchItem> batch(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      batch[i].public_key = items[i].public_key;
      batch[i].message = items[i].message;
      batch[i].signature = items[i].signature;
    }
    return Ed25519VerifyBatch(batch);
  }
  std::vector<bool> out(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    out[i] = VerifySignature(scheme, items[i].public_key, items[i].message,
                             items[i].signature);
  }
  return out;
}

VerifyCache::Key VerifyCache::MakeKey(SignatureScheme scheme,
                                      const Bytes& public_key,
                                      const Bytes& message,
                                      const Bytes& signature) {
  // Length-prefix each field so (key, message) boundaries cannot collide.
  Sha256 h;
  uint8_t hdr[1 + 3 * 8];
  hdr[0] = static_cast<uint8_t>(scheme);
  auto put_len = [&hdr](int at, uint64_t n) {
    for (int i = 0; i < 8; ++i) {
      hdr[at + i] = (uint8_t)(n >> (8 * i));
    }
  };
  put_len(1, public_key.size());
  put_len(9, message.size());
  put_len(17, signature.size());
  h.Update(hdr, sizeof(hdr));
  h.Update(public_key);
  h.Update(message);
  h.Update(signature);
  Bytes digest = h.Final();
  return Key(reinterpret_cast<const char*>(digest.data()), digest.size());
}

const bool* VerifyCache::Lookup(const Key& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->second;
}

void VerifyCache::Insert(const Key& key, bool verdict) {
  if (capacity_ == 0) {
    return;
  }
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = verdict;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(key, verdict);
  map_[key] = lru_.begin();
}

bool VerifyCache::Verify(SignatureScheme scheme, const Bytes& public_key,
                         const Bytes& message, const Bytes& signature) {
  if (scheme == SignatureScheme::kNull) {
    return VerifySignature(scheme, public_key, message, signature);
  }
  Key key = MakeKey(scheme, public_key, message, signature);
  if (const bool* cached = Lookup(key)) {
    return *cached;
  }
  bool verdict = VerifySignature(scheme, public_key, message, signature);
  Insert(key, verdict);
  return verdict;
}

std::vector<bool> VerifyCache::VerifyBatch(SignatureScheme scheme,
                                           const std::vector<VerifyItem>& items,
                                           WorkerPool* pool) {
  if (scheme == SignatureScheme::kNull) {
    return VerifySignatureBatch(scheme, items);
  }
  std::vector<bool> out(items.size(), false);
  std::vector<Key> keys(items.size());
  if (pool != nullptr && pool->jobs() > 1 && items.size() >= 8) {
    pool->Run(static_cast<int>(items.size()), [&](int, int i) {
      keys[i] = MakeKey(scheme, items[i].public_key, items[i].message,
                        items[i].signature);
    });
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      keys[i] = MakeKey(scheme, items[i].public_key, items[i].message,
                        items[i].signature);
    }
  }
  // item index -> slot in the deduplicated miss list. Duplicates inside one
  // batch (the same version token on many pledges) are verified once.
  std::vector<size_t> miss_slot(items.size());
  std::unordered_map<Key, size_t> pending;
  std::vector<Key> slot_key;
  std::vector<size_t> miss_idx;
  std::vector<VerifyItem> misses;
  for (size_t i = 0; i < items.size(); ++i) {
    auto dup = pending.find(keys[i]);
    if (dup != pending.end()) {
      ++stats_.hits;
      miss_slot[i] = dup->second;
      miss_idx.push_back(i);
      continue;
    }
    if (const bool* cached = Lookup(keys[i])) {
      out[i] = *cached;
      continue;
    }
    miss_slot[i] = misses.size();
    pending[keys[i]] = misses.size();
    slot_key.push_back(keys[i]);
    miss_idx.push_back(i);
    misses.push_back(items[i]);
  }
  if (!misses.empty()) {
    std::vector<bool> verdicts;
    if (pool != nullptr && pool->jobs() > 1 && misses.size() >= 2) {
      // Shard the misses into contiguous per-lane sub-batches. Each lane's
      // verification is independent; per-item verdicts do not depend on
      // which sub-batch an item landed in.
      int lanes = std::min<int>(pool->jobs(), static_cast<int>(misses.size()));
      size_t per = (misses.size() + lanes - 1) / static_cast<size_t>(lanes);
      verdicts.resize(misses.size(), false);
      std::vector<std::vector<bool>> shard(static_cast<size_t>(lanes));
      pool->Run(lanes, [&](int, int c) {
        size_t lo = static_cast<size_t>(c) * per;
        size_t hi = std::min(misses.size(), lo + per);
        if (lo >= hi) {
          return;
        }
        std::vector<VerifyItem> sub(misses.begin() + lo, misses.begin() + hi);
        shard[c] = VerifySignatureBatch(scheme, sub);
      });
      for (int c = 0; c < lanes; ++c) {
        size_t lo = static_cast<size_t>(c) * per;
        for (size_t k = 0; k < shard[c].size(); ++k) {
          verdicts[lo + k] = shard[c][k];
        }
      }
    } else {
      verdicts = VerifySignatureBatch(scheme, misses);
    }
    for (size_t i : miss_idx) {
      out[i] = verdicts[miss_slot[i]];
    }
    for (size_t slot = 0; slot < misses.size(); ++slot) {
      Insert(slot_key[slot], verdicts[slot]);
    }
  }
  return out;
}

}  // namespace sdr
