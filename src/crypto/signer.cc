#include "src/crypto/signer.h"

#include "src/crypto/ed25519.h"
#include "src/crypto/hmac.h"

namespace sdr {

const char* SignatureSchemeName(SignatureScheme scheme) {
  switch (scheme) {
    case SignatureScheme::kEd25519:
      return "ed25519";
    case SignatureScheme::kHmacSha256:
      return "hmac-sha256";
    case SignatureScheme::kNull:
      return "null";
  }
  return "?";
}

KeyPair KeyPair::Generate(SignatureScheme scheme, Rng& rng) {
  KeyPair kp;
  kp.scheme = scheme;
  switch (scheme) {
    case SignatureScheme::kEd25519: {
      kp.private_key = rng.NextBytes(kEd25519SeedSize);
      kp.public_key = Ed25519PublicKey(kp.private_key);
      break;
    }
    case SignatureScheme::kHmacSha256: {
      kp.private_key = rng.NextBytes(32);
      kp.public_key = kp.private_key;
      break;
    }
    case SignatureScheme::kNull:
      break;
  }
  return kp;
}

Bytes Signer::Sign(const Bytes& message) const {
  switch (key_.scheme) {
    case SignatureScheme::kEd25519:
      return Ed25519Sign(key_.private_key, message);
    case SignatureScheme::kHmacSha256:
      return HmacSha256(key_.private_key, message);
    case SignatureScheme::kNull:
      return Bytes{0x4e};  // non-empty marker so "missing" != "null-signed"
  }
  return Bytes();
}

bool VerifySignature(SignatureScheme scheme, const Bytes& public_key,
                     const Bytes& message, const Bytes& signature) {
  switch (scheme) {
    case SignatureScheme::kEd25519:
      return Ed25519Verify(public_key, message, signature);
    case SignatureScheme::kHmacSha256:
      return ConstantTimeEquals(HmacSha256(public_key, message), signature);
    case SignatureScheme::kNull:
      return signature == Bytes{0x4e};
  }
  return false;
}

}  // namespace sdr
