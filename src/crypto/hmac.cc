#include "src/crypto/hmac.h"

#include "src/crypto/sha2.h"

namespace sdr {

Bytes HmacSha256(const Bytes& key, const Bytes& message) {
  constexpr size_t kBlock = Sha256::kBlockSize;
  Bytes k = key;
  if (k.size() > kBlock) {
    k = Sha256::Hash(k);
  }
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad);
  inner.Update(message);
  Bytes inner_digest = inner.Final();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  return outer.Final();
}

}  // namespace sdr
