#include "src/crypto/ed25519.h"

#include <cassert>
#include <cstring>

#include "src/crypto/sha2.h"

namespace sdr {

namespace {

// ---------------------------------------------------------------------------
// Field arithmetic mod p = 2^255 - 19. Elements are 5 limbs of 51 bits.
// ---------------------------------------------------------------------------

struct Fe {
  uint64_t v[5];
};

constexpr uint64_t kMask51 = (1ULL << 51) - 1;

Fe FeZero() {
  return Fe{{0, 0, 0, 0, 0}};
}
Fe FeOne() {
  return Fe{{1, 0, 0, 0, 0}};
}

// No carry: inputs <= 2^52 keep the result <= 2^53, safe as fe_mul input.
Fe FeAdd(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) {
    r.v[i] = a.v[i] + b.v[i];
  }
  return r;
}

// a - b, biased by 2p limbwise so limbs never underflow (inputs <= 2^52).
Fe FeSub(const Fe& a, const Fe& b) {
  static constexpr uint64_t kTwoP[5] = {
      0xfffffffffffdaULL, 0xffffffffffffeULL, 0xffffffffffffeULL,
      0xffffffffffffeULL, 0xffffffffffffeULL};
  Fe r;
  for (int i = 0; i < 5; ++i) {
    r.v[i] = a.v[i] + kTwoP[i] - b.v[i];
  }
  return r;
}

// Carries r so every limb is < 2^52 (not fully canonical; FeToBytes
// freezes).
void FeCarry(Fe& r) {
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 4; ++i) {
      uint64_t c = r.v[i] >> 51;
      r.v[i] &= kMask51;
      r.v[i + 1] += c;
    }
    uint64_t c = r.v[4] >> 51;
    r.v[4] &= kMask51;
    r.v[0] += 19 * c;
  }
}

Fe FeMul(const Fe& a, const Fe& b) {
  using u128 = unsigned __int128;
  const uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  // Terms that wrap past limb 4 are multiplied by 19 (since 2^255 = 19).
  const uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;

  Fe r;
  uint64_t c;
  r.v[0] = (uint64_t)t0 & kMask51;
  c = (uint64_t)(t0 >> 51);
  t1 += c;
  r.v[1] = (uint64_t)t1 & kMask51;
  c = (uint64_t)(t1 >> 51);
  t2 += c;
  r.v[2] = (uint64_t)t2 & kMask51;
  c = (uint64_t)(t2 >> 51);
  t3 += c;
  r.v[3] = (uint64_t)t3 & kMask51;
  c = (uint64_t)(t3 >> 51);
  t4 += c;
  r.v[4] = (uint64_t)t4 & kMask51;
  c = (uint64_t)(t4 >> 51);
  r.v[0] += 19 * c;
  c = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += c;
  return r;
}

Fe FeSq(const Fe& a) {
  return FeMul(a, a);
}

Fe FeFromBytes(const uint8_t s[32]) {
  auto load = [&s](int byte, int shift_bits, int nbytes) {
    uint64_t v = 0;
    for (int i = 0; i < nbytes; ++i) {
      v |= (uint64_t)s[byte + i] << (8 * i);
    }
    return (v >> shift_bits) & kMask51;
  };
  Fe r;
  r.v[0] = load(0, 0, 8);
  r.v[1] = load(6, 3, 8);
  r.v[2] = load(12, 6, 8);
  r.v[3] = load(19, 1, 8);
  // Limb 4 holds bits 204..254; the 51-bit mask in load() drops bit 255
  // (the sign bit of point encodings), per RFC 8032.
  r.v[4] = load(24, 12, 8);
  return r;
}

// Fully reduces to [0, p) and serializes little-endian.
void FeToBytes(uint8_t out[32], const Fe& a) {
  Fe t = a;
  FeCarry(t);
  // Freeze: compute t mod p exactly. Add 19, propagate, then drop bit 255
  // and add the wraparound; standard two-pass approach.
  uint64_t q = (t.v[0] + 19) >> 51;
  q = (t.v[1] + q) >> 51;
  q = (t.v[2] + q) >> 51;
  q = (t.v[3] + q) >> 51;
  q = (t.v[4] + q) >> 51;  // q = 1 iff t >= p
  t.v[0] += 19 * q;
  for (int i = 0; i < 4; ++i) {
    uint64_t c = t.v[i] >> 51;
    t.v[i] &= kMask51;
    t.v[i + 1] += c;
  }
  t.v[4] &= kMask51;  // discard bit 255 (subtracts 2^255, completing -p)

  uint64_t limbs[5] = {t.v[0], t.v[1], t.v[2], t.v[3], t.v[4]};
  std::memset(out, 0, 32);
  int bit = 0;
  for (int i = 0; i < 5; ++i) {
    for (int b = 0; b < 51; ++b, ++bit) {
      if ((limbs[i] >> b) & 1) {
        out[bit / 8] |= (uint8_t)(1 << (bit % 8));
      }
    }
  }
}

bool FeIsNegative(const Fe& a) {
  uint8_t s[32];
  FeToBytes(s, a);
  return (s[0] & 1) != 0;
}

bool FeIsZero(const Fe& a) {
  uint8_t s[32];
  FeToBytes(s, a);
  for (int i = 0; i < 32; ++i) {
    if (s[i] != 0) {
      return false;
    }
  }
  return true;
}

bool FeEqual(const Fe& a, const Fe& b) {
  return FeIsZero(FeSub(a, b));
}

Fe FeNeg(const Fe& a) {
  return FeSub(FeZero(), a);
}

// base^e where e is given as 32 little-endian bytes.
Fe FePow(const Fe& base, const uint8_t e[32]) {
  Fe result = FeOne();
  bool started = false;
  for (int bit = 255; bit >= 0; --bit) {
    if (started) {
      result = FeSq(result);
    }
    if ((e[bit / 8] >> (bit % 8)) & 1) {
      result = started ? FeMul(result, base) : base;
      started = true;
    }
  }
  return started ? result : FeOne();
}

Fe FeInvert(const Fe& a) {
  // a^(p-2), p-2 = 2^255 - 21.
  uint8_t e[32];
  std::memset(e, 0xff, 32);
  e[0] = 0xeb;  // 256 - 21 = 235 = 0xeb
  e[31] = 0x7f;
  return FePow(a, e);
}

// a^((p-5)/8) with (p-5)/8 = 2^252 - 3.
Fe FePow2523(const Fe& a) {
  uint8_t e[32];
  std::memset(e, 0xff, 32);
  e[0] = 0xfd;
  e[31] = 0x0f;
  return FePow(a, e);
}

// Lazily derived curve constants.
struct Constants {
  Fe d;        // -121665/121666
  Fe d2;       // 2*d
  Fe sqrtm1;   // sqrt(-1) = 2^((p-1)/4)
};

Fe FeFromU64(uint64_t x) {
  Fe r = FeZero();
  r.v[0] = x & kMask51;
  r.v[1] = x >> 51;
  return r;
}

const Constants& GetConstants() {
  static const Constants c = [] {
    Constants k;
    Fe num = FeNeg(FeFromU64(121665));
    Fe den = FeFromU64(121666);
    k.d = FeMul(num, FeInvert(den));
    k.d2 = FeAdd(k.d, k.d);
    FeCarry(k.d2);
    // sqrt(-1) = 2^((p-1)/4), (p-1)/4 = 2^253 - 5.
    uint8_t e[32];
    std::memset(e, 0xff, 32);
    e[0] = 0xfb;
    e[31] = 0x1f;
    k.sqrtm1 = FePow(FeFromU64(2), e);
    return k;
  }();
  return c;
}

// ---------------------------------------------------------------------------
// Point arithmetic: extended coordinates (X, Y, Z, T), x = X/Z, y = Y/Z,
// T = XY/Z on -x^2 + y^2 = 1 + d x^2 y^2.
// ---------------------------------------------------------------------------

struct Point {
  Fe x, y, z, t;
};

Point PointIdentity() {
  return Point{FeZero(), FeOne(), FeOne(), FeZero()};
}

// Unified addition (add-2008-hwcd-3); also correct for doubling.
Point PointAdd(const Point& p, const Point& q) {
  const Constants& k = GetConstants();
  Fe a = FeMul(FeSub(p.y, p.x), FeSub(q.y, q.x));
  Fe b = FeMul(FeAdd(p.y, p.x), FeAdd(q.y, q.x));
  Fe c = FeMul(FeMul(p.t, k.d2), q.t);
  Fe zz = FeMul(p.z, q.z);
  Fe dd = FeAdd(zz, zz);
  Fe e = FeSub(b, a);
  Fe f = FeSub(dd, c);
  Fe g = FeAdd(dd, c);
  Fe h = FeAdd(b, a);
  Point r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

// scalar given as 32 little-endian bytes; plain double-and-add.
Point PointScalarMul(const Point& p, const uint8_t scalar[32]) {
  Point r = PointIdentity();
  for (int bit = 255; bit >= 0; --bit) {
    r = PointAdd(r, r);
    if ((scalar[bit / 8] >> (bit % 8)) & 1) {
      r = PointAdd(r, p);
    }
  }
  return r;
}

void PointCompress(uint8_t out[32], const Point& p) {
  Fe zinv = FeInvert(p.z);
  Fe x = FeMul(p.x, zinv);
  Fe y = FeMul(p.y, zinv);
  FeToBytes(out, y);
  if (FeIsNegative(x)) {
    out[31] |= 0x80;
  }
}

// Decompresses a point; returns false for invalid encodings.
bool PointDecompress(Point& out, const uint8_t in[32]) {
  const Constants& k = GetConstants();
  Fe y = FeFromBytes(in);
  bool x_neg = (in[31] & 0x80) != 0;

  // x^2 = (y^2 - 1) / (d y^2 + 1)
  Fe y2 = FeSq(y);
  Fe u = FeSub(y2, FeOne());
  Fe v = FeAdd(FeMul(k.d, y2), FeOne());
  FeCarry(v);

  // Candidate root: x = u v^3 (u v^7)^((p-5)/8)
  Fe v3 = FeMul(FeSq(v), v);
  Fe v7 = FeMul(FeSq(v3), v);
  Fe x = FeMul(FeMul(u, v3), FePow2523(FeMul(u, v7)));

  Fe vx2 = FeMul(v, FeSq(x));
  if (!FeEqual(vx2, u)) {
    if (FeEqual(vx2, FeNeg(u))) {
      x = FeMul(x, k.sqrtm1);
    } else {
      return false;
    }
  }
  if (FeIsZero(x) && x_neg) {
    return false;  // -0 is not a valid encoding
  }
  if (FeIsNegative(x) != x_neg) {
    x = FeNeg(x);
  }
  out.x = x;
  out.y = y;
  out.z = FeOne();
  out.t = FeMul(x, y);
  return true;
}

const Point& BasePoint() {
  static const Point b = [] {
    // y = 4/5, x recovered with even parity.
    Fe y = FeMul(FeFromU64(4), FeInvert(FeFromU64(5)));
    uint8_t enc[32];
    FeToBytes(enc, y);  // sign bit 0 => even x
    Point p;
    bool ok = PointDecompress(p, enc);
    assert(ok);
    (void)ok;
    return p;
  }();
  return b;
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod L = 2^252 + 27742317777372353535851937790883648493.
// Scalars are handled as little-endian byte arrays; reduction uses binary
// long division over a 4-limb accumulator (slow but simple; a handful of
// calls per signature).
// ---------------------------------------------------------------------------

struct U256L {
  uint64_t w[4] = {0, 0, 0, 0};
};

const U256L& OrderL() {
  static const U256L l = [] {
    // L little-endian bytes.
    static constexpr uint8_t kL[32] = {
        0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7,
        0xa2, 0xde, 0xf9, 0xde, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
    U256L v;
    for (int i = 0; i < 32; ++i) {
      v.w[i / 8] |= (uint64_t)kL[i] << (8 * (i % 8));
    }
    return v;
  }();
  return l;
}

int CmpL(const U256L& a, const U256L& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] != b.w[i]) {
      return a.w[i] < b.w[i] ? -1 : 1;
    }
  }
  return 0;
}

void SubL(U256L& a, const U256L& b) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 d =
        (unsigned __int128)a.w[i] - b.w[i] - (uint64_t)borrow;
    a.w[i] = (uint64_t)d;
    borrow = (d >> 64) & 1;
  }
}

// Reduces a little-endian byte string (up to 64 bytes) mod L.
void ScReduceBytes(uint8_t out[32], const uint8_t* in, size_t len) {
  const U256L& l = OrderL();
  U256L r;
  for (size_t i = len; i-- > 0;) {
    for (int bit = 7; bit >= 0; --bit) {
      // r = r*2 + bit, then conditional subtract.
      uint64_t carry = 0;
      for (int w = 0; w < 4; ++w) {
        uint64_t next_carry = r.w[w] >> 63;
        r.w[w] = (r.w[w] << 1) | carry;
        carry = next_carry;
      }
      r.w[0] |= (in[i] >> bit) & 1;
      // After one doubling of a value < L (< 2^253), r < 2^254: no limb
      // overflow, and at most one subtraction restores r < L.
      if (carry != 0 || CmpL(r, l) >= 0) {
        SubL(r, l);
      }
    }
  }
  std::memset(out, 0, 32);
  for (int i = 0; i < 32; ++i) {
    out[i] = (uint8_t)(r.w[i / 8] >> (8 * (i % 8)));
  }
}

// out = (a*b + c) mod L; a, b, c are 32-byte little-endian scalars.
void ScMulAdd(uint8_t out[32], const uint8_t a[32], const uint8_t b[32],
              const uint8_t c[32]) {
  // 512-bit product via schoolbook on 8-bit digits is too slow; use 64-bit
  // limbs with __int128 accumulation.
  uint64_t al[4] = {0}, bl[4] = {0};
  for (int i = 0; i < 32; ++i) {
    al[i / 8] |= (uint64_t)a[i] << (8 * (i % 8));
    bl[i / 8] |= (uint64_t)b[i] << (8 * (i % 8));
  }
  uint64_t prod[8] = {0};
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur =
          (unsigned __int128)al[i] * bl[j] + prod[i + j] + (uint64_t)carry;
      prod[i + j] = (uint64_t)cur;
      carry = cur >> 64;
    }
    prod[i + 4] += (uint64_t)carry;
  }
  // Add c (256-bit) into the 512-bit product.
  unsigned __int128 carry = 0;
  uint64_t cl[4] = {0};
  for (int i = 0; i < 32; ++i) {
    cl[i / 8] |= (uint64_t)c[i] << (8 * (i % 8));
  }
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 cur = (unsigned __int128)prod[i] + cl[i] + (uint64_t)carry;
    prod[i] = (uint64_t)cur;
    carry = cur >> 64;
  }
  for (int i = 4; i < 8 && carry != 0; ++i) {
    unsigned __int128 cur = (unsigned __int128)prod[i] + (uint64_t)carry;
    prod[i] = (uint64_t)cur;
    carry = cur >> 64;
  }
  uint8_t prod_bytes[64];
  for (int i = 0; i < 64; ++i) {
    prod_bytes[i] = (uint8_t)(prod[i / 8] >> (8 * (i % 8)));
  }
  ScReduceBytes(out, prod_bytes, 64);
}

// True when s (little-endian 32 bytes) < L; rejects malleable signatures.
bool ScIsCanonical(const uint8_t s[32]) {
  U256L v;
  for (int i = 0; i < 32; ++i) {
    v.w[i / 8] |= (uint64_t)s[i] << (8 * (i % 8));
  }
  return CmpL(v, OrderL()) < 0;
}

void ClampScalar(uint8_t a[32]) {
  a[0] &= 248;
  a[31] &= 127;
  a[31] |= 64;
}

}  // namespace

Bytes Ed25519PublicKey(const Bytes& seed) {
  assert(seed.size() == kEd25519SeedSize);
  Bytes h = Sha512::Hash(seed);
  uint8_t a[32];
  std::memcpy(a, h.data(), 32);
  ClampScalar(a);
  Point p = PointScalarMul(BasePoint(), a);
  Bytes pub(32);
  PointCompress(pub.data(), p);
  return pub;
}

Bytes Ed25519Sign(const Bytes& seed, const Bytes& message) {
  assert(seed.size() == kEd25519SeedSize);
  Bytes h = Sha512::Hash(seed);
  uint8_t a[32];
  std::memcpy(a, h.data(), 32);
  ClampScalar(a);

  Bytes pub = Ed25519PublicKey(seed);

  // r = SHA512(prefix || M) mod L
  Sha512 hr;
  hr.Update(h.data() + 32, 32);
  hr.Update(message);
  Bytes r_hash = hr.Final();
  uint8_t r[32];
  ScReduceBytes(r, r_hash.data(), r_hash.size());

  Point rp = PointScalarMul(BasePoint(), r);
  uint8_t r_enc[32];
  PointCompress(r_enc, rp);

  // k = SHA512(R || A || M) mod L
  Sha512 hk;
  hk.Update(r_enc, 32);
  hk.Update(pub);
  hk.Update(message);
  Bytes k_hash = hk.Final();
  uint8_t k[32];
  ScReduceBytes(k, k_hash.data(), k_hash.size());

  // S = (r + k*a) mod L
  uint8_t s[32];
  ScMulAdd(s, k, a, r);

  Bytes sig(kEd25519SignatureSize);
  std::memcpy(sig.data(), r_enc, 32);
  std::memcpy(sig.data() + 32, s, 32);
  return sig;
}

bool Ed25519Verify(const Bytes& public_key, const Bytes& message,
                   const Bytes& signature) {
  if (public_key.size() != kEd25519PublicKeySize ||
      signature.size() != kEd25519SignatureSize) {
    return false;
  }
  const uint8_t* r_enc = signature.data();
  const uint8_t* s = signature.data() + 32;
  if (!ScIsCanonical(s)) {
    return false;
  }
  Point a_point, r_point;
  if (!PointDecompress(a_point, public_key.data()) ||
      !PointDecompress(r_point, r_enc)) {
    return false;
  }

  Sha512 hk;
  hk.Update(r_enc, 32);
  hk.Update(public_key);
  hk.Update(message);
  Bytes k_hash = hk.Final();
  uint8_t k[32];
  ScReduceBytes(k, k_hash.data(), k_hash.size());

  // Check [S]B == R + [k]A by comparing compressed encodings.
  Point sb = PointScalarMul(BasePoint(), s);
  Point rka = PointAdd(r_point, PointScalarMul(a_point, k));
  uint8_t e1[32], e2[32];
  PointCompress(e1, sb);
  PointCompress(e2, rka);
  return std::memcmp(e1, e2, 32) == 0;
}

}  // namespace sdr
