#include "src/crypto/ed25519.h"

#include <array>
#include <cassert>
#include <cstring>

#include "src/crypto/ct.h"
#include "src/crypto/sha2.h"

namespace sdr {

namespace {

bool g_fast_path = true;

// ---------------------------------------------------------------------------
// Field arithmetic mod p = 2^255 - 19. Elements are 5 limbs of 51 bits.
// ---------------------------------------------------------------------------

struct Fe {
  uint64_t v[5];
};

constexpr uint64_t kMask51 = (1ULL << 51) - 1;

Fe FeZero() {
  return Fe{{0, 0, 0, 0, 0}};
}
Fe FeOne() {
  return Fe{{1, 0, 0, 0, 0}};
}

// No carry: inputs <= 2^52 keep the result <= 2^53, safe as fe_mul input.
Fe FeAdd(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) {
    r.v[i] = a.v[i] + b.v[i];
  }
  return r;
}

// a - b, biased by 2p limbwise so limbs never underflow (inputs <= 2^52).
Fe FeSub(const Fe& a, const Fe& b) {
  static constexpr uint64_t kTwoP[5] = {
      0xfffffffffffdaULL, 0xffffffffffffeULL, 0xffffffffffffeULL,
      0xffffffffffffeULL, 0xffffffffffffeULL};
  Fe r;
  for (int i = 0; i < 5; ++i) {
    r.v[i] = a.v[i] + kTwoP[i] - b.v[i];
  }
  return r;
}

// a - b with a 4p bias: safe when b's limbs reach 2^53 (sums of products,
// 2p-biased differences), at the price of limbs up to ~2^54 in the result —
// still fine as multiplication input.
Fe FeSubWide(const Fe& a, const Fe& b) {
  static constexpr uint64_t kFourP[5] = {
      0x1fffffffffffb4ULL, 0x1ffffffffffffcULL, 0x1ffffffffffffcULL,
      0x1ffffffffffffcULL, 0x1ffffffffffffcULL};
  Fe r;
  for (int i = 0; i < 5; ++i) {
    r.v[i] = a.v[i] + kFourP[i] - b.v[i];
  }
  return r;
}

// Carries r so every limb is < 2^52 (not fully canonical; FeToBytes
// freezes).
void FeCarry(Fe& r) {
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 4; ++i) {
      uint64_t c = r.v[i] >> 51;
      r.v[i] &= kMask51;
      r.v[i + 1] += c;
    }
    uint64_t c = r.v[4] >> 51;
    r.v[4] &= kMask51;
    r.v[0] += 19 * c;
  }
}

using u128 = unsigned __int128;

// Shared carry chain for the five 128-bit column sums of a product.
Fe FeCarryProduct(u128 t0, u128 t1, u128 t2, u128 t3, u128 t4) {
  Fe r;
  uint64_t c;
  r.v[0] = (uint64_t)t0 & kMask51;
  c = (uint64_t)(t0 >> 51);
  t1 += c;
  r.v[1] = (uint64_t)t1 & kMask51;
  c = (uint64_t)(t1 >> 51);
  t2 += c;
  r.v[2] = (uint64_t)t2 & kMask51;
  c = (uint64_t)(t2 >> 51);
  t3 += c;
  r.v[3] = (uint64_t)t3 & kMask51;
  c = (uint64_t)(t3 >> 51);
  t4 += c;
  r.v[4] = (uint64_t)t4 & kMask51;
  c = (uint64_t)(t4 >> 51);
  r.v[0] += 19 * c;
  c = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += c;
  return r;
}

Fe FeMul(const Fe& a, const Fe& b) {
  const uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  // Terms that wrap past limb 4 are multiplied by 19 (since 2^255 = 19).
  const uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;
  return FeCarryProduct(t0, t1, t2, t3, t4);
}

// Dedicated squaring: 15 base multiplications instead of 25.
Fe FeSq(const Fe& a) {
  const uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const uint64_t a0_2 = a0 * 2, a1_2 = a1 * 2, a2_2 = a2 * 2, a3_2 = a3 * 2;
  const uint64_t a3_19 = a3 * 19, a4_19 = a4 * 19;

  u128 t0 = (u128)a0 * a0 + (u128)a1_2 * a4_19 + (u128)a2_2 * a3_19;
  u128 t1 = (u128)a0_2 * a1 + (u128)a2_2 * a4_19 + (u128)a3 * a3_19;
  u128 t2 = (u128)a0_2 * a2 + (u128)a1 * a1 + (u128)a3_2 * a4_19;
  u128 t3 = (u128)a0_2 * a3 + (u128)a1_2 * a2 + (u128)a4 * a4_19;
  u128 t4 = (u128)a0_2 * a4 + (u128)a1_2 * a3 + (u128)a2 * a2;
  return FeCarryProduct(t0, t1, t2, t3, t4);
}

Fe FeFromBytes(const uint8_t s[32]) {
  auto load = [&s](int byte, int shift_bits, int nbytes) {
    uint64_t v = 0;
    for (int i = 0; i < nbytes; ++i) {
      v |= (uint64_t)s[byte + i] << (8 * i);
    }
    return (v >> shift_bits) & kMask51;
  };
  Fe r;
  r.v[0] = load(0, 0, 8);
  r.v[1] = load(6, 3, 8);
  r.v[2] = load(12, 6, 8);
  r.v[3] = load(19, 1, 8);
  // Limb 4 holds bits 204..254; the 51-bit mask in load() drops bit 255
  // (the sign bit of point encodings), per RFC 8032.
  r.v[4] = load(24, 12, 8);
  return r;
}

// Fully reduces to [0, p) and serializes little-endian.
void FeToBytes(uint8_t out[32], const Fe& a) {
  Fe t = a;
  FeCarry(t);
  // Freeze: compute t mod p exactly. Add 19, propagate, then drop bit 255
  // and add the wraparound; standard two-pass approach.
  uint64_t q = (t.v[0] + 19) >> 51;
  q = (t.v[1] + q) >> 51;
  q = (t.v[2] + q) >> 51;
  q = (t.v[3] + q) >> 51;
  q = (t.v[4] + q) >> 51;  // q = 1 iff t >= p
  t.v[0] += 19 * q;
  for (int i = 0; i < 4; ++i) {
    uint64_t c = t.v[i] >> 51;
    t.v[i] &= kMask51;
    t.v[i + 1] += c;
  }
  t.v[4] &= kMask51;  // discard bit 255 (subtracts 2^255, completing -p)

  // Pack the 5x51-bit limbs into four little-endian words.
  uint64_t w[4];
  w[0] = t.v[0] | (t.v[1] << 51);
  w[1] = (t.v[1] >> 13) | (t.v[2] << 38);
  w[2] = (t.v[2] >> 26) | (t.v[3] << 25);
  w[3] = (t.v[3] >> 39) | (t.v[4] << 12);
  for (int i = 0; i < 32; ++i) {
    out[i] = (uint8_t)(w[i / 8] >> (8 * (i % 8)));
  }
}

bool FeIsNegative(const Fe& a) {
  uint8_t s[32];
  FeToBytes(s, a);
  return (s[0] & 1) != 0;
}

bool FeIsZero(const Fe& a) {
  uint8_t s[32];
  FeToBytes(s, a);
  for (int i = 0; i < 32; ++i) {
    if (s[i] != 0) {
      return false;
    }
  }
  return true;
}

bool FeEqual(const Fe& a, const Fe& b) {
  return FeIsZero(FeSub(a, b));
}

Fe FeNeg(const Fe& a) {
  return FeSub(FeZero(), a);
}

// base^e where e is given as 32 little-endian bytes.
Fe FePow(const Fe& base, const uint8_t e[32]) {
  Fe result = FeOne();
  bool started = false;
  for (int bit = 255; bit >= 0; --bit) {
    if (started) {
      result = FeSq(result);
    }
    if ((e[bit / 8] >> (bit % 8)) & 1) {
      result = started ? FeMul(result, base) : base;
      started = true;
    }
  }
  return started ? result : FeOne();
}

Fe FeSqN(Fe x, int n) {
  for (int i = 0; i < n; ++i) {
    x = FeSq(x);
  }
  return x;
}

// Shared addition-chain ladder (ref10): computes z^(2^250 - 1) and z^11,
// from which both exponents below are two steps away. 252 squarings and 11
// multiplications, against ~500 field operations for the generic FePow.
void FePowLadder(const Fe& z, Fe& z2_250_0, Fe& z11) {
  Fe z2 = FeSq(z);
  Fe z9 = FeMul(FeSq(FeSq(z2)), z);
  z11 = FeMul(z9, z2);
  Fe z2_5_0 = FeMul(FeSq(z11), z9);
  Fe z2_10_0 = FeMul(FeSqN(z2_5_0, 5), z2_5_0);
  Fe z2_20_0 = FeMul(FeSqN(z2_10_0, 10), z2_10_0);
  Fe z2_40_0 = FeMul(FeSqN(z2_20_0, 20), z2_20_0);
  Fe z2_50_0 = FeMul(FeSqN(z2_40_0, 10), z2_10_0);
  Fe z2_100_0 = FeMul(FeSqN(z2_50_0, 50), z2_50_0);
  Fe z2_200_0 = FeMul(FeSqN(z2_100_0, 100), z2_100_0);
  z2_250_0 = FeMul(FeSqN(z2_200_0, 50), z2_50_0);
}

// a^(p-2) = a^(2^255 - 21): (2^250 - 1) * 2^5 + 11 = 2^255 - 21.
//
// The naive path keeps the original generic square-and-multiply so it stays
// a faithful cost (and correctness) baseline for the addition chain.
Fe FeInvert(const Fe& a) {
  if (!g_fast_path) {
    static const uint8_t kPrimeMinus2[32] = {
        0xeb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f};
    return FePow(a, kPrimeMinus2);
  }
  Fe z2_250_0, z11;
  FePowLadder(a, z2_250_0, z11);
  return FeMul(FeSqN(z2_250_0, 5), z11);
}

// a^((p-5)/8) = a^(2^252 - 3): (2^250 - 1) * 2^2 + 1 = 2^252 - 3.
Fe FePow2523(const Fe& a) {
  if (!g_fast_path) {
    static const uint8_t kP58[32] = {
        0xfd, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f};
    return FePow(a, kP58);
  }
  Fe z2_250_0, z11;
  FePowLadder(a, z2_250_0, z11);
  return FeMul(FeSqN(z2_250_0, 2), a);
}

// Lazily derived curve constants.
struct Constants {
  Fe d;        // -121665/121666
  Fe d2;       // 2*d
  Fe sqrtm1;   // sqrt(-1) = 2^((p-1)/4)
};

Fe FeFromU64(uint64_t x) {
  Fe r = FeZero();
  r.v[0] = x & kMask51;
  r.v[1] = x >> 51;
  return r;
}

const Constants& GetConstants() {
  static const Constants c = [] {
    Constants k;
    Fe num = FeNeg(FeFromU64(121665));
    Fe den = FeFromU64(121666);
    k.d = FeMul(num, FeInvert(den));
    k.d2 = FeAdd(k.d, k.d);
    FeCarry(k.d2);
    // sqrt(-1) = 2^((p-1)/4), (p-1)/4 = 2^253 - 5.
    uint8_t e[32];
    std::memset(e, 0xff, 32);
    e[0] = 0xfb;
    e[31] = 0x1f;
    k.sqrtm1 = FePow(FeFromU64(2), e);
    return k;
  }();
  return c;
}

// ---------------------------------------------------------------------------
// Point arithmetic: extended coordinates (X, Y, Z, T), x = X/Z, y = Y/Z,
// T = XY/Z on -x^2 + y^2 = 1 + d x^2 y^2.
// ---------------------------------------------------------------------------

struct Point {
  Fe x, y, z, t;
};

// A point prepared for repeated addition: (Y+X, Y-X, Z, 2dT). Saves the
// per-addition recomputation of those sums and the 2d multiply.
struct CachedPoint {
  Fe y_plus_x, y_minus_x, z, t2d;
};

// An affine (Z = 1) precomputed point: (y+x, y-x, 2dxy). The table form of
// the fixed-base and odd-multiple tables; mixed addition against one of
// these is the cheapest addition we have.
struct PrecompPoint {
  Fe y_plus_x, y_minus_x, xy2d;
};

Point PointIdentity() {
  return Point{FeZero(), FeOne(), FeOne(), FeZero()};
}

// Unified addition (add-2008-hwcd-3); also correct for doubling.
Point PointAdd(const Point& p, const Point& q) {
  const Constants& k = GetConstants();
  Fe a = FeMul(FeSub(p.y, p.x), FeSub(q.y, q.x));
  Fe b = FeMul(FeAdd(p.y, p.x), FeAdd(q.y, q.x));
  Fe c = FeMul(FeMul(p.t, k.d2), q.t);
  Fe zz = FeMul(p.z, q.z);
  Fe dd = FeAdd(zz, zz);
  Fe e = FeSub(b, a);
  Fe f = FeSub(dd, c);
  Fe g = FeAdd(dd, c);
  Fe h = FeAdd(b, a);
  Point r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

// Dedicated doubling (dbl-2008-hwcd): 4 squarings + 4 multiplications,
// noticeably cheaper than the unified addition it replaces in scalar-mult
// inner loops.
Point PointDouble(const Point& p) {
  Fe xx = FeSq(p.x);
  Fe yy = FeSq(p.y);
  Fe zz = FeSq(p.z);
  Fe zz2 = FeAdd(zz, zz);
  Fe xy = FeAdd(p.x, p.y);
  Fe a = FeSq(xy);                  // (X+Y)^2
  Fe yy_plus_xx = FeAdd(yy, xx);    // Y'
  Fe yy_minus_xx = FeSub(yy, xx);   // Z'
  Fe xp = FeSubWide(a, yy_plus_xx);         // X' = 2XY
  Fe tp = FeSubWide(zz2, yy_minus_xx);      // T'
  Point r;
  r.x = FeMul(xp, tp);
  r.y = FeMul(yy_plus_xx, yy_minus_xx);
  r.z = FeMul(yy_minus_xx, tp);
  r.t = FeMul(xp, yy_plus_xx);
  return r;
}

// Doubling that skips the extended coordinate T (one multiplication saved).
// Valid whenever the result is consumed only by another doubling or a
// projective comparison — in a sliding-window ladder that is every position
// where no window addition fires, i.e. most of them.
Point PointDoubleP2(const Point& p) {
  Fe xx = FeSq(p.x);
  Fe yy = FeSq(p.y);
  Fe zz = FeSq(p.z);
  Fe zz2 = FeAdd(zz, zz);
  Fe xy = FeAdd(p.x, p.y);
  Fe a = FeSq(xy);
  Fe yy_plus_xx = FeAdd(yy, xx);
  Fe yy_minus_xx = FeSub(yy, xx);
  Fe xp = FeSubWide(a, yy_plus_xx);
  Fe tp = FeSubWide(zz2, yy_minus_xx);
  Point r;
  r.x = FeMul(xp, tp);
  r.y = FeMul(yy_plus_xx, yy_minus_xx);
  r.z = FeMul(yy_minus_xx, tp);
  r.t = FeZero();  // deliberately not 2XY/Z: callers must not read it
  return r;
}

CachedPoint ToCached(const Point& p) {
  const Constants& k = GetConstants();
  CachedPoint c;
  c.y_plus_x = FeAdd(p.y, p.x);
  c.y_minus_x = FeSub(p.y, p.x);
  c.z = p.z;
  c.t2d = FeMul(p.t, k.d2);
  return c;
}

Point AddCached(const Point& p, const CachedPoint& q) {
  Fe a = FeMul(FeSub(p.y, p.x), q.y_minus_x);
  Fe b = FeMul(FeAdd(p.y, p.x), q.y_plus_x);
  Fe c = FeMul(q.t2d, p.t);
  Fe zz = FeMul(p.z, q.z);
  Fe dd = FeAdd(zz, zz);
  Fe e = FeSub(b, a);
  Fe f = FeSub(dd, c);
  Fe g = FeAdd(dd, c);
  Fe h = FeAdd(b, a);
  Point r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

// p - q for a cached q: negating a point swaps (Y+X, Y-X) and negates T,
// which in turn swaps F and G below.
Point SubCached(const Point& p, const CachedPoint& q) {
  Fe a = FeMul(FeSub(p.y, p.x), q.y_plus_x);
  Fe b = FeMul(FeAdd(p.y, p.x), q.y_minus_x);
  Fe c = FeMul(q.t2d, p.t);
  Fe zz = FeMul(p.z, q.z);
  Fe dd = FeAdd(zz, zz);
  Fe e = FeSub(b, a);
  Fe f = FeAdd(dd, c);
  Fe g = FeSub(dd, c);
  Fe h = FeAdd(b, a);
  Point r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

// Mixed addition p + q for an affine precomputed q (Z2 = 1).
Point AddPrecomp(const Point& p, const PrecompPoint& q) {
  Fe a = FeMul(FeSub(p.y, p.x), q.y_minus_x);
  Fe b = FeMul(FeAdd(p.y, p.x), q.y_plus_x);
  Fe c = FeMul(q.xy2d, p.t);
  Fe dd = FeAdd(p.z, p.z);
  Fe e = FeSub(b, a);
  Fe f = FeSub(dd, c);
  Fe g = FeAdd(dd, c);
  Fe h = FeAdd(b, a);
  Point r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

Point SubPrecomp(const Point& p, const PrecompPoint& q) {
  Fe a = FeMul(FeSub(p.y, p.x), q.y_plus_x);
  Fe b = FeMul(FeAdd(p.y, p.x), q.y_minus_x);
  Fe c = FeMul(q.xy2d, p.t);
  Fe dd = FeAdd(p.z, p.z);
  Fe e = FeSub(b, a);
  Fe f = FeAdd(dd, c);
  Fe g = FeSub(dd, c);
  Fe h = FeAdd(b, a);
  Point r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

Point PointNeg(const Point& p) {
  Point r;
  r.x = FeNeg(p.x);
  r.y = p.y;
  r.z = p.z;
  r.t = FeNeg(p.t);
  return r;
}

// scalar given as 32 little-endian bytes; plain double-and-add. This is the
// naive reference ladder, kept as the cross-checking oracle for the
// precomputed fast path. NOT constant-time: it branches on scalar bits, so
// it must never see a secret outside the naive reference configuration.
Point PointScalarMul(const Point& p, const uint8_t scalar[32] /* sdrlint:secret */) {
  Point r = PointIdentity();
  for (int bit = 255; bit >= 0; --bit) {
    r = PointAdd(r, r);
    // sdrlint:allow(R5) naive reference ladder, non-constant-time by design
    if ((scalar[bit / 8] >> (bit % 8)) & 1) {
      r = PointAdd(r, p);
    }
  }
  return r;
}

void PointCompress(uint8_t out[32], const Point& p) {
  Fe zinv = FeInvert(p.z);
  Fe x = FeMul(p.x, zinv);
  Fe y = FeMul(p.y, zinv);
  FeToBytes(out, y);
  if (FeIsNegative(x)) {
    out[31] |= 0x80;
  }
}

// Compression with an externally supplied 1/Z, for sharing one field
// inversion across several compressions.
void CompressWithZInv(uint8_t out[32], const Point& p, const Fe& zinv) {
  Fe x = FeMul(p.x, zinv);
  Fe y = FeMul(p.y, zinv);
  FeToBytes(out, y);
  if (FeIsNegative(x)) {
    out[31] |= 0x80;
  }
}

// True when p and q are the same curve point. The projective cross-check
// X1 Z2 == X2 Z1, Y1 Z2 == Y2 Z1 costs four multiplications instead of the
// inversion a compress-and-compare would need; for valid points it is
// equivalent to comparing canonical encodings.
bool PointsEqual(const Point& p, const Point& q) {
  return FeEqual(FeMul(p.x, q.z), FeMul(q.x, p.z)) &&
         FeEqual(FeMul(p.y, q.z), FeMul(q.y, p.z));
}

// Decompresses a point; returns false for invalid encodings.
bool PointDecompress(Point& out, const uint8_t in[32]) {
  const Constants& k = GetConstants();
  Fe y = FeFromBytes(in);
  bool x_neg = (in[31] & 0x80) != 0;

  // x^2 = (y^2 - 1) / (d y^2 + 1)
  Fe y2 = FeSq(y);
  Fe u = FeSub(y2, FeOne());
  Fe v = FeAdd(FeMul(k.d, y2), FeOne());
  FeCarry(v);

  // Candidate root: x = u v^3 (u v^7)^((p-5)/8)
  Fe v3 = FeMul(FeSq(v), v);
  Fe v7 = FeMul(FeSq(v3), v);
  Fe x = FeMul(FeMul(u, v3), FePow2523(FeMul(u, v7)));

  Fe vx2 = FeMul(v, FeSq(x));
  if (!FeEqual(vx2, u)) {
    if (FeEqual(vx2, FeNeg(u))) {
      x = FeMul(x, k.sqrtm1);
    } else {
      return false;
    }
  }
  if (FeIsZero(x) && x_neg) {
    return false;  // -0 is not a valid encoding
  }
  if (FeIsNegative(x) != x_neg) {
    x = FeNeg(x);
  }
  out.x = x;
  out.y = y;
  out.z = FeOne();
  out.t = FeMul(x, y);
  return true;
}

const Point& BasePoint() {
  static const Point b = [] {
    // y = 4/5, x recovered with even parity.
    Fe y = FeMul(FeFromU64(4), FeInvert(FeFromU64(5)));
    uint8_t enc[32];
    FeToBytes(enc, y);  // sign bit 0 => even x
    Point p;
    bool ok = PointDecompress(p, enc);
    assert(ok);
    (void)ok;
    return p;
  }();
  return b;
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod L = 2^252 + 27742317777372353535851937790883648493.
// Scalars are handled as little-endian byte arrays. The fast path reduces
// with byte-limb folding (2^256 = -16c mod L); the naive path keeps the
// original binary long division as a reference.
// ---------------------------------------------------------------------------

// L, little-endian.
constexpr uint8_t kLBytes[32] = {
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7,
    0xa2, 0xde, 0xf9, 0xde, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};

struct U256L {
  uint64_t w[4] = {0, 0, 0, 0};
};

const U256L& OrderL() {
  static const U256L l = [] {
    U256L v;
    for (int i = 0; i < 32; ++i) {
      v.w[i / 8] |= (uint64_t)kLBytes[i] << (8 * (i % 8));
    }
    return v;
  }();
  return l;
}

int CmpL(const U256L& a, const U256L& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] != b.w[i]) {
      return a.w[i] < b.w[i] ? -1 : 1;
    }
  }
  return 0;
}

void SubL(U256L& a, const U256L& b) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 d =
        (unsigned __int128)a.w[i] - b.w[i] - (uint64_t)borrow;
    a.w[i] = (uint64_t)d;
    borrow = (d >> 64) & 1;
  }
}

// Naive reduction of a little-endian byte string (up to 64 bytes) mod L:
// binary long division over a 4-limb accumulator.
void ScReduceBytesNaive(uint8_t out[32], const uint8_t* in, size_t len) {
  const U256L& l = OrderL();
  U256L r;
  for (size_t i = len; i-- > 0;) {
    for (int bit = 7; bit >= 0; --bit) {
      // r = r*2 + bit, then conditional subtract.
      uint64_t carry = 0;
      for (int w = 0; w < 4; ++w) {
        uint64_t next_carry = r.w[w] >> 63;
        r.w[w] = (r.w[w] << 1) | carry;
        carry = next_carry;
      }
      r.w[0] |= (in[i] >> bit) & 1;
      // After one doubling of a value < L (< 2^253), r < 2^254: no limb
      // overflow, and at most one subtraction restores r < L.
      if (carry != 0 || CmpL(r, l) >= 0) {
        SubL(r, l);
      }
    }
  }
  std::memset(out, 0, 32);
  for (int i = 0; i < 32; ++i) {
    out[i] = (uint8_t)(r.w[i / 8] >> (8 * (i % 8)));
  }
}

// Fast reduction mod L over 64 signed byte-limbs (limbs may hold partial
// products far above 255). Folds the top half with 2^256 = -16c (mod L),
// c = L - 2^252, then squeezes the remaining high nibble of limb 31 and
// fixes up the final borrow. Output is canonical ([0, L)).
void ReduceModL(uint8_t out[32], int64_t x[64]) {
  for (int i = 63; i >= 32; --i) {
    int64_t carry = 0;
    const int64_t xi = x[i];
    int j;
    for (j = i - 32; j < i - 12; ++j) {
      x[j] += carry - 16 * xi * (int64_t)kLBytes[j - (i - 32)];
      carry = (x[j] + 128) >> 8;
      x[j] -= carry << 8;
    }
    x[j] += carry;
    x[i] = 0;
  }
  int64_t carry = 0;
  for (int j = 0; j < 32; ++j) {
    // Note: x[31] is re-read each iteration; the j == 31 step folds its own
    // high nibble via L's top byte (0x10).
    x[j] += carry - (x[31] >> 4) * (int64_t)kLBytes[j];
    carry = x[j] >> 8;
    x[j] &= 255;
  }
  for (int j = 0; j < 32; ++j) {
    x[j] -= carry * (int64_t)kLBytes[j];
  }
  for (int i = 0; i < 32; ++i) {
    x[i + 1] += x[i] >> 8;
    out[i] = (uint8_t)(x[i] & 255);
  }
}

// Reduces a little-endian byte string (up to 64 bytes) mod L.
void ScReduceBytes(uint8_t out[32], const uint8_t* in, size_t len) {
  if (g_fast_path) {
    int64_t x[64] = {0};
    for (size_t i = 0; i < len && i < 64; ++i) {
      x[i] = in[i];
    }
    ReduceModL(out, x);
    return;
  }
  ScReduceBytesNaive(out, in, len);
}

// out = (a*b + c) mod L; a, b, c are 32-byte little-endian scalars (a and b
// need not be reduced).
void ScMulAdd(uint8_t out[32], const uint8_t a[32], const uint8_t b[32],
              const uint8_t c[32]) {
  if (g_fast_path) {
    int64_t x[64] = {0};
    for (int i = 0; i < 32; ++i) {
      x[i] = c[i];
    }
    for (int i = 0; i < 32; ++i) {
      for (int j = 0; j < 32; ++j) {
        x[i + j] += (int64_t)a[i] * (int64_t)b[j];
      }
    }
    ReduceModL(out, x);
    return;
  }
  // Naive: 64-bit limb schoolbook product, then binary reduction.
  uint64_t al[4] = {0}, bl[4] = {0};
  for (int i = 0; i < 32; ++i) {
    al[i / 8] |= (uint64_t)a[i] << (8 * (i % 8));
    bl[i / 8] |= (uint64_t)b[i] << (8 * (i % 8));
  }
  uint64_t prod[8] = {0};
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur =
          (unsigned __int128)al[i] * bl[j] + prod[i + j] + (uint64_t)carry;
      prod[i + j] = (uint64_t)cur;
      carry = cur >> 64;
    }
    prod[i + 4] += (uint64_t)carry;
  }
  // Add c (256-bit) into the 512-bit product.
  unsigned __int128 carry = 0;
  uint64_t cl[4] = {0};
  for (int i = 0; i < 32; ++i) {
    cl[i / 8] |= (uint64_t)c[i] << (8 * (i % 8));
  }
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 cur = (unsigned __int128)prod[i] + cl[i] + (uint64_t)carry;
    prod[i] = (uint64_t)cur;
    carry = cur >> 64;
  }
  for (int i = 4; i < 8 && carry != 0; ++i) {
    unsigned __int128 cur = (unsigned __int128)prod[i] + (uint64_t)carry;
    prod[i] = (uint64_t)cur;
    carry = cur >> 64;
  }
  uint8_t prod_bytes[64];
  for (int i = 0; i < 64; ++i) {
    prod_bytes[i] = (uint8_t)(prod[i / 8] >> (8 * (i % 8)));
  }
  ScReduceBytesNaive(out, prod_bytes, 64);
}

// True when s (little-endian 32 bytes) < L; rejects malleable signatures.
bool ScIsCanonical(const uint8_t s[32]) {
  U256L v;
  for (int i = 0; i < 32; ++i) {
    v.w[i / 8] |= (uint64_t)s[i] << (8 * (i % 8));
  }
  return CmpL(v, OrderL()) < 0;
}

void ClampScalar(uint8_t a[32]) {
  a[0] &= 248;
  a[31] &= 127;
  a[31] |= 64;
}

// ---------------------------------------------------------------------------
// Precomputed tables and fast scalar multiplication.
// ---------------------------------------------------------------------------

// Normalizes points to Z = 1 (canonical limbs) sharing one field inversion
// across the whole vector (Montgomery's trick). Only used at table-build
// time.
void BatchNormalize(std::vector<Point>& pts) {
  const size_t n = pts.size();
  if (n == 0) {
    return;
  }
  std::vector<Fe> prefix(n);
  Fe acc = FeOne();
  for (size_t i = 0; i < n; ++i) {
    prefix[i] = acc;
    acc = FeMul(acc, pts[i].z);
  }
  Fe inv = FeInvert(acc);
  for (size_t i = n; i-- > 0;) {
    Fe zinv = FeMul(inv, prefix[i]);
    inv = FeMul(inv, pts[i].z);
    pts[i].x = FeMul(pts[i].x, zinv);
    pts[i].y = FeMul(pts[i].y, zinv);
    pts[i].z = FeOne();
    pts[i].t = FeMul(pts[i].x, pts[i].y);
  }
}

PrecompPoint ToPrecompAffine(const Point& p) {
  // Requires Z == 1 (post-BatchNormalize).
  const Constants& k = GetConstants();
  PrecompPoint r;
  r.y_plus_x = FeAdd(p.y, p.x);
  FeCarry(r.y_plus_x);
  r.y_minus_x = FeSub(p.y, p.x);
  FeCarry(r.y_minus_x);
  r.xy2d = FeMul(FeMul(p.x, p.y), k.d2);
  return r;
}

struct BaseTables {
  // table[i][j] = (j+1) * 16^(2i) * B, for the signed-radix-16 fixed-base
  // multiplication used by signing and key derivation.
  PrecompPoint table[32][8];
  // odd[j] = (2j+1) * B, for the sliding-window base-point half of the
  // Straus double-scalar multiplication used by verification.
  PrecompPoint odd[8];
};

const BaseTables& GetBaseTables() {
  static const BaseTables t = [] {
    std::vector<Point> pts;
    pts.reserve(32 * 8 + 8);
    Point row = BasePoint();  // 16^(2i) * B
    for (int i = 0; i < 32; ++i) {
      Point m = row;
      for (int j = 0; j < 8; ++j) {
        pts.push_back(m);
        m = PointAdd(m, row);
      }
      for (int k = 0; k < 8; ++k) {
        row = PointDouble(row);  // advance by 16^2 = 2^8
      }
    }
    Point b2 = PointDouble(BasePoint());
    Point o = BasePoint();
    for (int j = 0; j < 8; ++j) {
      pts.push_back(o);
      o = PointAdd(o, b2);
    }
    BatchNormalize(pts);
    BaseTables bt;
    size_t idx = 0;
    for (int i = 0; i < 32; ++i) {
      for (int j = 0; j < 8; ++j) {
        bt.table[i][j] = ToPrecompAffine(pts[idx++]);
      }
    }
    for (int j = 0; j < 8; ++j) {
      bt.odd[j] = ToPrecompAffine(pts[idx++]);
    }
    return bt;
  }();
  return t;
}

// Decomposes a (< 2^253) into 64 signed radix-16 digits in [-8, 8].
// Branch-free: carry propagation is pure shift/mask arithmetic, so secret
// scalars are safe here.
void SignedRadix16(int8_t e[64] /* sdrlint:secret */,
                   const uint8_t a[32] /* sdrlint:secret */) {
  for (int i = 0; i < 32; ++i) {
    e[2 * i] = a[i] & 15;
    e[2 * i + 1] = (a[i] >> 4) & 15;
  }
  int8_t carry = 0;
  for (int i = 0; i < 63; ++i) {
    e[i] = (int8_t)(e[i] + carry);
    carry = (int8_t)((e[i] + 8) >> 4);
    e[i] = (int8_t)(e[i] - (carry << 4));
  }
  e[63] = (int8_t)(e[63] + carry);
}

// Variable-time digit addition: branches on the digit and indexes the table
// with it. Only ever fed *public* scalars (the batch-verification
// combination scalar); secret scalars go through SelectBaseDigit below.
Point AddBaseDigit(const Point& h, const PrecompPoint row[8], int8_t digit) {
  if (digit > 0) {
    return AddPrecomp(h, row[digit - 1]);
  }
  if (digit < 0) {
    return SubPrecomp(h, row[-digit - 1]);
  }
  return h;
}

// ---- Constant-time table selection ----------------------------------------
//
// The radix-16 digits of a signing scalar are secret; loading row[digit]
// directly would put the digit into a cache-line address, which is exactly
// the side channel ct_check exists to rule out. Instead every lookup scans
// the full row and accumulates the wanted entry with arithmetic masks, so
// the memory trace is independent of the digit.

// mask = all-ones when b == 1; b must be 0 or 1.
void FeCMov(Fe& f, const Fe& g, uint8_t b) {
  const uint64_t mask = (uint64_t)0 - (uint64_t)b;
  for (int i = 0; i < 5; ++i) {
    f.v[i] ^= mask & (f.v[i] ^ g.v[i]);
  }
}

void PrecompCMov(PrecompPoint& t, const PrecompPoint& u, uint8_t b) {
  FeCMov(t.y_plus_x, u.y_plus_x, b);
  FeCMov(t.y_minus_x, u.y_minus_x, b);
  FeCMov(t.xy2d, u.xy2d, b);
}

// 1 when a == b, 0 otherwise, without a data-dependent branch.
uint8_t CtByteEqual(uint8_t a, uint8_t b) {
  uint32_t x = (uint32_t)(a ^ b);
  return (uint8_t)((x - 1) >> 31);
}

// Returns digit * (row base point) in precomputed form, digit in [-8, 8],
// as a constant-time full-row select plus conditional negation. digit == 0
// yields the neutral (1, 1, 0), which the unified addition formulas absorb.
PrecompPoint SelectBaseDigit(const PrecompPoint row[8],
                             int8_t digit /* sdrlint:secret */) {
  const uint8_t negative = (uint8_t)((uint8_t)digit >> 7);
  // |digit| via two's-complement identity (x ^ m) - m with m = -negative.
  const int m = -(int)negative;
  const uint8_t babs = (uint8_t)(((int)digit ^ m) - m);
  PrecompPoint t{FeOne(), FeOne(), FeZero()};
  for (uint8_t j = 1; j <= 8; ++j) {
    PrecompCMov(t, row[j - 1], CtByteEqual(babs, j));
  }
  // Negation swaps (Y+X, Y-X) and negates 2dXY.
  PrecompPoint minus_t;
  minus_t.y_plus_x = t.y_minus_x;
  minus_t.y_minus_x = t.y_plus_x;
  minus_t.xy2d = FeNeg(t.xy2d);
  PrecompCMov(t, minus_t, negative);
  return t;
}

// a * B via the precomputed table: 64 table additions + 4 doublings instead
// of the naive 256-double / ~128-add ladder. Constant time in `a`: digit
// decomposition is pure arithmetic, every table access is a full-row
// select, and zero digits perform a neutral-element addition rather than
// skipping. The resulting *point* (a·B — a public key or a signature's R)
// is public by design, which is the declassification boundary.
Point ScalarMulBaseCt(const uint8_t a[32] /* sdrlint:secret */) {
  const BaseTables& bt = GetBaseTables();
  int8_t e[64];  // sdrlint:secret
  SignedRadix16(e, a);
  // h = sum_{i odd} e[i] 16^(i-1) B, then x16, then + sum_{i even} e[i] 16^i B.
  Point h = PointIdentity();
  for (int i = 1; i < 64; i += 2) {
    h = AddPrecomp(h, SelectBaseDigit(bt.table[i / 2], e[i]));
  }
  h = PointDouble(PointDouble(PointDouble(PointDouble(h))));
  for (int i = 0; i < 64; i += 2) {
    h = AddPrecomp(h, SelectBaseDigit(bt.table[i / 2], e[i]));
  }
  CtDeclassify(&h, sizeof(h));
  return h;
}

// Variable-time fixed-base multiplication (zero digits skipped, direct
// table indexing) for public scalars: the batch-verification combination
// scalar, never a signing secret.
Point ScalarMulBaseVartime(const uint8_t a[32]) {
  const BaseTables& bt = GetBaseTables();
  int8_t e[64];
  SignedRadix16(e, a);
  Point h = PointIdentity();
  for (int i = 1; i < 64; i += 2) {
    h = AddBaseDigit(h, bt.table[i / 2], e[i]);
  }
  h = PointDouble(PointDouble(PointDouble(PointDouble(h))));
  for (int i = 0; i < 64; i += 2) {
    h = AddBaseDigit(h, bt.table[i / 2], e[i]);
  }
  return h;
}

// Width-5 sliding-window recoding: odd digits in [-15, 15], at most one
// nonzero digit per 5 consecutive positions.
void Slide(int8_t r[256], const uint8_t a[32]) {
  for (int i = 0; i < 256; ++i) {
    r[i] = (int8_t)(1 & (a[i >> 3] >> (i & 7)));
  }
  for (int i = 0; i < 256; ++i) {
    if (!r[i]) {
      continue;
    }
    for (int b = 1; b <= 6 && i + b < 256; ++b) {
      if (!r[i + b]) {
        continue;
      }
      if (r[i] + (r[i + b] << b) <= 15) {
        r[i] = (int8_t)(r[i] + (r[i + b] << b));
        r[i + b] = 0;
      } else if (r[i] - (r[i + b] << b) >= -15) {
        r[i] = (int8_t)(r[i] - (r[i + b] << b));
        for (int k = i + b; k < 256; ++k) {
          if (!r[k]) {
            r[k] = 1;
            break;
          }
          r[k] = 0;
        }
      } else {
        break;
      }
    }
  }
}

// Builds the odd multiples {1,3,...,15} * p in cached form.
void OddMultiples(CachedPoint out[8], const Point& p) {
  Point p2 = PointDouble(p);
  Point cur = p;
  for (int i = 0; i < 8; ++i) {
    out[i] = ToCached(cur);
    if (i < 7) {
      cur = PointAdd(p2, cur);
    }
  }
}

// a * A + b * B with one interleaved Straus/Shamir loop: 256 shared
// doublings instead of two independent ladders.
Point DoubleScalarMulBaseVartime(const uint8_t a[32], const Point& big_a,
                                 const uint8_t b[32]) {
  int8_t aslide[256], bslide[256];
  Slide(aslide, a);
  Slide(bslide, b);
  CachedPoint ai[8];
  OddMultiples(ai, big_a);
  const BaseTables& bt = GetBaseTables();

  int i = 255;
  while (i >= 0 && aslide[i] == 0 && bslide[i] == 0) {
    --i;
  }
  Point r = PointIdentity();
  for (; i >= 0; --i) {
    // Only an addition reads r.t, so add-free positions take the cheaper
    // doubling. The final r feeds a projective compare, never an addition.
    if (aslide[i] == 0 && bslide[i] == 0) {
      r = PointDoubleP2(r);
      continue;
    }
    r = PointDouble(r);
    if (aslide[i] > 0) {
      r = AddCached(r, ai[aslide[i] / 2]);
    } else if (aslide[i] < 0) {
      r = SubCached(r, ai[(-aslide[i]) / 2]);
    }
    if (bslide[i] > 0) {
      r = AddPrecomp(r, bt.odd[bslide[i] / 2]);
    } else if (bslide[i] < 0) {
      r = SubPrecomp(r, bt.odd[(-bslide[i]) / 2]);
    }
  }
  return r;
}

// One term of a multi-scalar multiplication.
struct MsmTerm {
  uint8_t scalar[32];
  const Point* point;
};

// sum_i scalar_i * point_i, interleaving all terms over one shared doubling
// chain. Used by batch verification, where the per-term table build and
// ~43 window additions amortize far below a full double-scalar
// multiplication per signature.
Point MultiScalarMulVartime(const std::vector<MsmTerm>& terms) {
  const size_t n = terms.size();
  std::vector<std::array<int8_t, 256>> slides(n);
  std::vector<std::array<CachedPoint, 8>> tables(n);
  for (size_t t = 0; t < n; ++t) {
    Slide(slides[t].data(), terms[t].scalar);
    OddMultiples(tables[t].data(), *terms[t].point);
  }
  int i = 255;
  for (; i >= 0; --i) {
    bool any = false;
    for (size_t t = 0; t < n && !any; ++t) {
      any = slides[t][i] != 0;
    }
    if (any) {
      break;
    }
  }
  Point r = PointIdentity();
  for (; i >= 0; --i) {
    bool any = false;
    for (size_t t = 0; t < n && !any; ++t) {
      any = slides[t][i] != 0;
    }
    r = any ? PointDouble(r) : PointDoubleP2(r);
    for (size_t t = 0; t < n; ++t) {
      int8_t d = slides[t][i];
      if (d > 0) {
        r = AddCached(r, tables[t][d / 2]);
      } else if (d < 0) {
        r = SubCached(r, tables[t][(-d) / 2]);
      }
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Naive sign/verify (the original reference path).
// ---------------------------------------------------------------------------

Bytes PublicKeyNaive(const Bytes& seed) {
  Bytes h = Sha512::Hash(seed);
  uint8_t a[32];  // sdrlint:secret
  std::memcpy(a, h.data(), 32);
  ClampScalar(a);
  Point p = PointScalarMul(BasePoint(), a);
  Bytes pub(32);
  PointCompress(pub.data(), p);
  return pub;
}

Bytes SignNaive(const Bytes& seed, const Bytes& message) {
  Bytes h = Sha512::Hash(seed);
  uint8_t a[32];  // sdrlint:secret
  std::memcpy(a, h.data(), 32);
  ClampScalar(a);

  Bytes pub = PublicKeyNaive(seed);

  // r = SHA512(prefix || M) mod L
  Sha512 hr;
  hr.Update(h.data() + 32, 32);
  hr.Update(message);
  Bytes r_hash = hr.Final();
  uint8_t r[32];  // sdrlint:secret
  ScReduceBytes(r, r_hash.data(), r_hash.size());

  Point rp = PointScalarMul(BasePoint(), r);
  uint8_t r_enc[32];
  PointCompress(r_enc, rp);

  // k = SHA512(R || A || M) mod L
  Sha512 hk;
  hk.Update(r_enc, 32);
  hk.Update(pub);
  hk.Update(message);
  Bytes k_hash = hk.Final();
  uint8_t k[32];
  ScReduceBytes(k, k_hash.data(), k_hash.size());

  // S = (r + k*a) mod L
  uint8_t s[32];
  ScMulAdd(s, k, a, r);

  Bytes sig(kEd25519SignatureSize);
  std::memcpy(sig.data(), r_enc, 32);
  std::memcpy(sig.data() + 32, s, 32);
  return sig;
}

bool VerifyNaive(const Bytes& public_key, const Bytes& message,
                 const Bytes& signature) {
  const uint8_t* r_enc = signature.data();
  const uint8_t* s = signature.data() + 32;
  Point a_point, r_point;
  if (!PointDecompress(a_point, public_key.data()) ||
      !PointDecompress(r_point, r_enc)) {
    return false;
  }

  Sha512 hk;
  hk.Update(r_enc, 32);
  hk.Update(public_key);
  hk.Update(message);
  Bytes k_hash = hk.Final();
  uint8_t k[32];
  ScReduceBytes(k, k_hash.data(), k_hash.size());

  // Check [S]B == R + [k]A by comparing compressed encodings.
  Point sb = PointScalarMul(BasePoint(), s);
  Point rka = PointAdd(r_point, PointScalarMul(a_point, k));
  uint8_t e1[32], e2[32];
  PointCompress(e1, sb);
  PointCompress(e2, rka);
  // sdrlint:public — R == R' over canonical point encodings; both sides
  // derive from the (public) signature and key, not from signing secrets.
  return std::memcmp(e1, e2, 32) == 0;
}

// ---------------------------------------------------------------------------
// Fast sign/verify.
// ---------------------------------------------------------------------------

// k = SHA512(R || A || M) mod L.
void ChallengeScalar(uint8_t k[32], const uint8_t r_enc[32], const Bytes& pub,
                     const Bytes& message) {
  Sha512 hk;
  hk.Update(r_enc, 32);
  hk.Update(pub);
  hk.Update(message);
  Bytes k_hash = hk.Final();
  ScReduceBytes(k, k_hash.data(), k_hash.size());
}

// Raw seed-to-signature fast path. Unlike ExpandKey + SignExpanded, the
// public-key point and the nonce point R share one field inversion for
// their compressions.
Bytes SignSeedFast(const Bytes& seed, const Bytes& message) {
  Bytes h = Sha512::Hash(seed);
  uint8_t a[32];  // sdrlint:secret
  std::memcpy(a, h.data(), 32);
  ClampScalar(a);
  Point a_point = ScalarMulBaseCt(a);

  // r = SHA512(prefix || M) mod L
  Sha512 hr;
  hr.Update(h.data() + 32, 32);
  hr.Update(message);
  Bytes r_hash = hr.Final();
  uint8_t r[32];  // sdrlint:secret
  ScReduceBytes(r, r_hash.data(), r_hash.size());
  Point r_point = ScalarMulBaseCt(r);

  Fe inv = FeInvert(FeMul(a_point.z, r_point.z));
  Bytes pub(32);
  CompressWithZInv(pub.data(), a_point, FeMul(inv, r_point.z));
  uint8_t r_enc[32];
  CompressWithZInv(r_enc, r_point, FeMul(inv, a_point.z));

  uint8_t k[32];
  ChallengeScalar(k, r_enc, pub, message);
  uint8_t s[32];
  ScMulAdd(s, k, a, r);
  CtDeclassify(s, 32);  // S is published in the signature

  Bytes sig(kEd25519SignatureSize);
  std::memcpy(sig.data(), r_enc, 32);
  std::memcpy(sig.data() + 32, s, 32);
  return sig;
}

Bytes SignExpandedFast(const Ed25519ExpandedKey& key, const Bytes& message) {
  // r = SHA512(prefix || M) mod L
  Sha512 hr;
  hr.Update(key.prefix, 32);
  hr.Update(message);
  Bytes r_hash = hr.Final();
  uint8_t r[32];  // sdrlint:secret
  ScReduceBytes(r, r_hash.data(), r_hash.size());

  Point rp = ScalarMulBaseCt(r);
  uint8_t r_enc[32];
  PointCompress(r_enc, rp);

  uint8_t k[32];
  ChallengeScalar(k, r_enc, key.public_key, message);

  // S = (r + k*a) mod L
  uint8_t s[32];
  ScMulAdd(s, k, key.scalar, r);
  CtDeclassify(s, 32);  // S is published in the signature

  Bytes sig(kEd25519SignatureSize);
  std::memcpy(sig.data(), r_enc, 32);
  std::memcpy(sig.data() + 32, s, 32);
  return sig;
}

bool VerifyFast(const Bytes& public_key, const Bytes& message,
                const Bytes& signature) {
  const uint8_t* r_enc = signature.data();
  const uint8_t* s = signature.data() + 32;
  Point a_point, r_point;
  if (!PointDecompress(a_point, public_key.data()) ||
      !PointDecompress(r_point, r_enc)) {
    return false;
  }

  uint8_t k[32];
  ChallengeScalar(k, r_enc, public_key, message);

  // Check [S]B - [k]A == R with one interleaved double-scalar loop.
  // Comparing against the decompressed R as a point (not the raw bytes)
  // keeps the naive path's acceptance of non-canonical R encodings.
  Point neg_a = PointNeg(a_point);
  Point p = DoubleScalarMulBaseVartime(k, neg_a, s);
  return PointsEqual(p, r_point);
}

}  // namespace

void Ed25519SetFastPath(bool enabled) {
  g_fast_path = enabled;
}

bool Ed25519FastPathEnabled() {
  return g_fast_path;
}

Ed25519ExpandedKey Ed25519ExpandKey(const Bytes& seed) {
  assert(seed.size() == kEd25519SeedSize);
  Bytes h = Sha512::Hash(seed);
  Ed25519ExpandedKey key;
  std::memcpy(key.scalar, h.data(), 32);
  ClampScalar(key.scalar);
  std::memcpy(key.prefix, h.data() + 32, 32);
  Point p = g_fast_path ? ScalarMulBaseCt(key.scalar)
                        : PointScalarMul(BasePoint(), key.scalar);
  key.public_key.resize(32);
  PointCompress(key.public_key.data(), p);
  return key;
}

Bytes Ed25519SignExpanded(const Ed25519ExpandedKey& key, const Bytes& message) {
  if (g_fast_path) {
    return SignExpandedFast(key, message);
  }
  // The naive path has no expanded-key shortcut; re-derive nothing, just
  // run the same equations with the reference ladder.
  Sha512 hr;
  hr.Update(key.prefix, 32);
  hr.Update(message);
  Bytes r_hash = hr.Final();
  uint8_t r[32];
  ScReduceBytes(r, r_hash.data(), r_hash.size());
  Point rp = PointScalarMul(BasePoint(), r);
  uint8_t r_enc[32];
  PointCompress(r_enc, rp);
  uint8_t k[32];
  ChallengeScalar(k, r_enc, key.public_key, message);
  uint8_t s[32];
  ScMulAdd(s, k, key.scalar, r);
  CtDeclassify(s, 32);  // S is published in the signature
  Bytes sig(kEd25519SignatureSize);
  std::memcpy(sig.data(), r_enc, 32);
  std::memcpy(sig.data() + 32, s, 32);
  return sig;
}

Bytes Ed25519PublicKey(const Bytes& seed) {
  assert(seed.size() == kEd25519SeedSize);
  if (g_fast_path) {
    return Ed25519ExpandKey(seed).public_key;
  }
  return PublicKeyNaive(seed);
}

Bytes Ed25519Sign(const Bytes& seed, const Bytes& message) {
  assert(seed.size() == kEd25519SeedSize);
  if (g_fast_path) {
    return SignSeedFast(seed, message);
  }
  return SignNaive(seed, message);
}

bool Ed25519Verify(const Bytes& public_key, const Bytes& message,
                   const Bytes& signature) {
  if (public_key.size() != kEd25519PublicKeySize ||
      signature.size() != kEd25519SignatureSize) {
    return false;
  }
  if (!ScIsCanonical(signature.data() + 32)) {
    return false;
  }
  if (g_fast_path) {
    return VerifyFast(public_key, message, signature);
  }
  return VerifyNaive(public_key, message, signature);
}

namespace {

// Per-item state for batch verification.
struct BatchSlot {
  bool pre_ok = false;  // sizes, canonical S, decodable A and R
  Point a_point;
  Point r_point;
  uint8_t k[32];
  uint8_t z[32];  // 128-bit random coefficient, zero-extended
  const uint8_t* s = nullptr;
};

// Checks sum_{i in idx} z_i (S_i B - R_i - k_i A_i) == identity, i.e.
// [sum z_i S_i] B == sum z_i R_i + sum (z_i k_i) A_i.
bool BatchEquationHolds(const std::vector<BatchSlot>& slots,
                        const std::vector<size_t>& idx) {
  static const uint8_t kZero[32] = {0};
  uint8_t c[32] = {0};
  std::vector<MsmTerm> terms;
  terms.reserve(2 * idx.size());
  std::vector<std::array<uint8_t, 32>> zk(idx.size());
  for (size_t n = 0; n < idx.size(); ++n) {
    const BatchSlot& slot = slots[idx[n]];
    ScMulAdd(c, slot.z, slot.s, c);
    ScMulAdd(zk[n].data(), slot.z, slot.k, kZero);
    MsmTerm tr;
    std::memcpy(tr.scalar, slot.z, 32);
    tr.point = &slot.r_point;
    terms.push_back(tr);
    MsmTerm ta;
    std::memcpy(ta.scalar, zk[n].data(), 32);
    ta.point = &slot.a_point;
    terms.push_back(ta);
  }
  Point lhs = ScalarMulBaseVartime(c);
  Point rhs = MultiScalarMulVartime(terms);
  return PointsEqual(lhs, rhs);
}

bool SingleVerifySlot(const BatchSlot& slot) {
  Point neg_a = PointNeg(slot.a_point);
  Point p = DoubleScalarMulBaseVartime(slot.k, neg_a, slot.s);
  return PointsEqual(p, slot.r_point);
}

// Bisection: a failing combined equation is split until every culprit is
// pinned down by a direct check.
void ResolveBatch(const std::vector<BatchSlot>& slots,
                  const std::vector<size_t>& idx, std::vector<bool>& out) {
  if (idx.empty()) {
    return;
  }
  if (idx.size() == 1) {
    out[idx[0]] = SingleVerifySlot(slots[idx[0]]);
    return;
  }
  if (BatchEquationHolds(slots, idx)) {
    for (size_t i : idx) {
      out[i] = true;
    }
    return;
  }
  size_t mid = idx.size() / 2;
  ResolveBatch(slots, std::vector<size_t>(idx.begin(), idx.begin() + mid), out);
  ResolveBatch(slots, std::vector<size_t>(idx.begin() + mid, idx.end()), out);
}

}  // namespace

std::vector<bool> Ed25519VerifyBatch(
    const std::vector<Ed25519BatchItem>& items) {
  const size_t n = items.size();
  std::vector<bool> out(n, false);
  if (n == 0) {
    return out;
  }
  if (!g_fast_path || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = Ed25519Verify(items[i].public_key, items[i].message,
                             items[i].signature);
    }
    return out;
  }

  std::vector<BatchSlot> slots(n);
  std::vector<size_t> idx;
  idx.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Ed25519BatchItem& it = items[i];
    BatchSlot& slot = slots[i];
    if (it.public_key.size() != kEd25519PublicKeySize ||
        it.signature.size() != kEd25519SignatureSize ||
        !ScIsCanonical(it.signature.data() + 32) ||
        !PointDecompress(slot.a_point, it.public_key.data()) ||
        !PointDecompress(slot.r_point, it.signature.data())) {
      continue;  // out[i] stays false
    }
    slot.s = it.signature.data() + 32;
    ChallengeScalar(slot.k, it.signature.data(), it.public_key, it.message);
    slot.pre_ok = true;
    idx.push_back(i);
  }
  if (idx.empty()) {
    return out;
  }

  // Deterministic 128-bit coefficients: seeded from every signature and key
  // in the batch, so no item's coefficient can be chosen independently of
  // the others. (A real network deployment would use fresh randomness.)
  Sha512 hs;
  hs.Update(Bytes{'s', 'd', 'r', '-', 'e', 'd', '2', '5', '5', '1', '9',
                  '-', 'b', 'a', 't', 'c', 'h'});
  for (size_t i : idx) {
    hs.Update(items[i].public_key);
    hs.Update(items[i].signature);
    hs.Update(Sha512::Hash(items[i].message));
  }
  Bytes seed = hs.Final();
  for (size_t i : idx) {
    Sha512 hz;
    hz.Update(seed);
    uint8_t le[8];
    for (int b = 0; b < 8; ++b) {
      le[b] = (uint8_t)(i >> (8 * b));
    }
    hz.Update(le, 8);
    Bytes z = hz.Final();
    std::memset(slots[i].z, 0, 32);
    std::memcpy(slots[i].z, z.data(), 16);
    slots[i].z[0] |= 1;  // never zero
  }

  ResolveBatch(slots, idx, out);
  return out;
}

}  // namespace sdr
