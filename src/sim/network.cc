#include "src/sim/network.h"

#include <cassert>

namespace sdr {

NodeId Network::AddNode(Node* node) {
  assert(node != nullptr);
  nodes_.push_back(node);
  NodeId id = static_cast<NodeId>(nodes_.size());
  node->id_ = id;
  node->network_ = this;
  node->sim_ = sim_;
  return id;
}

Node* Network::node(NodeId id) const {
  if (id == kInvalidNode || id > nodes_.size()) {
    return nullptr;
  }
  return nodes_[id - 1];
}

void Network::StartAll() {
  for (Node* n : nodes_) {
    n->Start();
  }
}

void Network::SetLink(NodeId from, NodeId to, LinkModel model) {
  links_[{from, to}] = model;
}

void Network::SetLinkSymmetric(NodeId a, NodeId b, LinkModel model) {
  SetLink(a, b, model);
  SetLink(b, a, model);
}

const LinkModel& Network::LinkFor(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  return it != links_.end() ? it->second : default_link_;
}

void Network::Send(NodeId from, NodeId to, Bytes payload) {
  ++messages_sent_;
  bytes_sent_ += payload.size();

  Node* src = node(from);
  Node* dst = node(to);
  if (src == nullptr || dst == nullptr || !src->up()) {
    ++messages_dropped_;
    return;
  }
  auto key = std::minmax(from, to);
  if (partitions_.count({key.first, key.second}) > 0) {
    ++messages_dropped_;
    return;
  }
  const LinkModel& link = LinkFor(from, to);
  if (link.drop_probability > 0.0 && rng_.NextBool(link.drop_probability)) {
    ++messages_dropped_;
    return;
  }
  SimTime jitter =
      link.jitter > 0 ? static_cast<SimTime>(rng_.NextBounded(
                            static_cast<uint64_t>(link.jitter) + 1))
                      : 0;
  SimTime delivery = link.base_latency + jitter;
  sim_->ScheduleAfter(delivery, [this, from, to, msg = std::move(payload)]() {
    Node* receiver = node(to);
    if (receiver == nullptr || !receiver->up()) {
      ++messages_dropped_;
      return;
    }
    ++messages_delivered_;
    receiver->HandleMessage(from, msg);
  });
}

void Network::SetNodeUp(NodeId id, bool up) {
  Node* n = node(id);
  if (n != nullptr) {
    n->up_ = up;
  }
}

void Network::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  auto key = std::minmax(a, b);
  if (partitioned) {
    partitions_.insert({key.first, key.second});
  } else {
    partitions_.erase({key.first, key.second});
  }
}

}  // namespace sdr
