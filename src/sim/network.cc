#include "src/sim/network.h"

#include <cassert>

#include "src/runtime/sim_env.h"

namespace sdr {

Network::Network(Simulator* sim, LinkModel default_link)
    : sim_(sim), default_link_(default_link), rng_(sim->rng().Fork()) {}

Network::~Network() = default;

NodeId Network::AddNode(Node* node) {
  assert(node != nullptr);
  nodes_.push_back(node);
  NodeId id = static_cast<NodeId>(nodes_.size());
  envs_.push_back(std::make_unique<SimEnv>(sim_, this, id));
  envs_.back()->Attach(node);
  RebuildTables();
  return id;
}

Node* Network::node(NodeId id) const {
  if (id == kInvalidNode || id > nodes_.size()) {
    return nullptr;
  }
  return nodes_[id - 1];
}

void Network::StartAll() {
  for (Node* n : nodes_) {
    n->Start();
  }
}

void Network::RebuildTables() {
  size_t n = nodes_.size();
  link_table_.assign(n * n, default_link_);
  for (const auto& [pair, model] : links_) {
    auto [from, to] = pair;
    if (from >= 1 && from <= n && to >= 1 && to <= n) {
      link_table_[(from - 1) * n + (to - 1)] = model;
    }
  }
  partition_table_.assign(n * n, 0);
  for (const auto& [a, b] : partitions_) {
    if (a >= 1 && a <= n && b >= 1 && b <= n) {
      partition_table_[(a - 1) * n + (b - 1)] = 1;
      partition_table_[(b - 1) * n + (a - 1)] = 1;
    }
  }
}

void Network::SetLink(NodeId from, NodeId to, LinkModel model) {
  links_[{from, to}] = model;
  size_t n = nodes_.size();
  if (from >= 1 && from <= n && to >= 1 && to <= n) {
    link_table_[(from - 1) * n + (to - 1)] = model;
  }
}

void Network::SetLinkSymmetric(NodeId a, NodeId b, LinkModel model) {
  SetLink(a, b, model);
  SetLink(b, a, model);
}

void Network::Send(NodeId from, NodeId to, Payload payload) {
  ++messages_sent_;
  bytes_sent_ += payload.size();

  Node* src = node(from);
  Node* dst = node(to);
  if (src == nullptr || dst == nullptr || !src->up()) {
    ++dropped_node_;
    return;
  }
  if (PartitionedFast(from, to)) {
    ++dropped_partition_;
    return;
  }
  const LinkModel& link = LinkFor(from, to);
  if (link.drop_probability > 0.0 && rng_.NextBool(link.drop_probability)) {
    ++dropped_loss_;
    return;
  }
  SimTime jitter =
      link.jitter > 0 ? static_cast<SimTime>(rng_.NextBounded(
                            static_cast<uint64_t>(link.jitter) + 1))
                      : 0;
  SimTime delivery = link.base_latency + jitter;
  // this + from + to + Payload fits InlineFunction's inline buffer: the
  // delivery event costs no allocation beyond the one shared buffer.
  sim_->ScheduleAfter(delivery, [this, from, to, msg = std::move(payload)]() {
    Node* receiver = node(to);
    if (receiver == nullptr || !receiver->up()) {
      ++dropped_node_;
      return;
    }
    ++messages_delivered_;
    receiver->HandleMessage(from, msg);
  });
}

void Network::SetNodeUp(NodeId id, bool up) {
  Node* n = node(id);
  if (n != nullptr) {
    n->up_ = up;
  }
}

void Network::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  auto key = std::minmax(a, b);
  if (partitioned) {
    partitions_.insert({key.first, key.second});
  } else {
    partitions_.erase({key.first, key.second});
  }
  size_t n = nodes_.size();
  if (key.first >= 1 && key.second <= n) {
    uint8_t v = partitioned ? 1 : 0;
    partition_table_[(key.first - 1) * n + (key.second - 1)] = v;
    partition_table_[(key.second - 1) * n + (key.first - 1)] = v;
  }
}

void Network::ClearPartitions() {
  partitions_.clear();
  partition_table_.assign(partition_table_.size(), 0);
}

}  // namespace sdr
