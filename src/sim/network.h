// Simulated message network: nodes exchange opaque byte messages over links
// with configurable latency, jitter, and loss. Nodes can be taken down
// (crash) and pairs of nodes can be partitioned.
//
// Registration owns the substrate wiring: AddNode creates a per-node SimEnv
// (the Env adapter over this network and its simulator) and binds it to the
// node, so role code written against Env runs here unchanged.
//
// Hot-path layout: payloads are ref-counted (Payload), so a send shares the
// buffer with the in-flight event and the receiver instead of copying it;
// link and partition lookups hit flat per-pair tables (rebuilt on AddNode /
// SetLink) instead of std::map/std::set.
#ifndef SDR_SRC_SIM_NETWORK_H_
#define SDR_SRC_SIM_NETWORK_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/runtime/env.h"
#include "src/sim/simulator.h"
#include "src/util/bytes.h"

namespace sdr {

class SimEnv;

// Latency/loss model for one direction of a link.
struct LinkModel {
  SimTime base_latency = 5 * kMillisecond;
  SimTime jitter = 2 * kMillisecond;  // uniform in [0, jitter]
  double drop_probability = 0.0;

  // Sugar for a LAN-ish link.
  static LinkModel Lan() { return {500 * kMicrosecond, 200 * kMicrosecond, 0.0}; }
  // Cross-continent WAN link.
  static LinkModel Wan() { return {40 * kMillisecond, 10 * kMillisecond, 0.0}; }

  bool operator==(const LinkModel&) const = default;
};

class Network {
 public:
  Network(Simulator* sim, LinkModel default_link);
  ~Network();

  // Registers a node (not owned), assigns it an id, and binds a SimEnv
  // (owned by the network) to it.
  NodeId AddNode(Node* node);

  Node* node(NodeId id) const;
  size_t node_count() const { return nodes_.size(); }

  // Calls Start() on every registered node.
  void StartAll();

  // Overrides the link model for the (from, to) direction.
  void SetLink(NodeId from, NodeId to, LinkModel model);
  // Overrides the model for both directions.
  void SetLinkSymmetric(NodeId a, NodeId b, LinkModel model);

  // Sends `payload` from `from` to `to`. Messages from/to down nodes and
  // across partitions are silently dropped, as are random losses. The
  // payload buffer is shared, not copied — fanning one encoded message out
  // to N peers costs N refcount bumps.
  void Send(NodeId from, NodeId to, Payload payload);

  // Crash / restart a node. Messages in flight toward a down node are
  // dropped at delivery time.
  void SetNodeUp(NodeId id, bool up);

  // Blocks (or unblocks) both directions between a and b.
  void SetPartitioned(NodeId a, NodeId b, bool partitioned);
  // Removes every partition at once (a chaos scenario's "heal all").
  void ClearPartitions();
  // Number of currently partitioned node pairs (0 = fully connected).
  size_t active_partitions() const { return partitions_.size(); }
  bool IsPartitioned(NodeId a, NodeId b) const {
    auto key = std::minmax(a, b);
    return partitions_.count({key.first, key.second}) > 0;
  }

  // Traffic counters (for benches: bytes on the wire per protocol).
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const {
    return dropped_node_ + dropped_partition_ + dropped_loss_;
  }
  // Drop breakdown: sender/receiver missing or down; active partition;
  // random link loss.
  uint64_t messages_dropped_node() const { return dropped_node_; }
  uint64_t messages_dropped_partition() const { return dropped_partition_; }
  uint64_t messages_dropped_loss() const { return dropped_loss_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  const LinkModel& LinkFor(NodeId from, NodeId to) const {
    size_t n = nodes_.size();
    if (from == kInvalidNode || to == kInvalidNode || from > n || to > n) {
      return default_link_;
    }
    return link_table_[(from - 1) * n + (to - 1)];
  }
  bool PartitionedFast(NodeId a, NodeId b) const {
    return partition_table_[(a - 1) * nodes_.size() + (b - 1)] != 0;
  }
  // Re-derives the flat per-pair tables from links_/partitions_ after the
  // node count grows.
  void RebuildTables();

  Simulator* sim_;
  LinkModel default_link_;
  Rng rng_;
  std::vector<Node*> nodes_;  // index = id - 1
  // One SimEnv per registered node, same index; must outlive the delivery
  // events that reference the nodes, which the simulator guarantees.
  std::vector<std::unique_ptr<SimEnv>> envs_;
  // Source of truth for custom links/partitions (covers ids not yet
  // registered); the flat tables below are the per-send fast path.
  std::map<std::pair<NodeId, NodeId>, LinkModel> links_;
  std::set<std::pair<NodeId, NodeId>> partitions_;  // normalized (min,max)
  std::vector<LinkModel> link_table_;       // n*n, [from-1][to-1]
  std::vector<uint8_t> partition_table_;    // n*n, symmetric

  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t dropped_node_ = 0;
  uint64_t dropped_partition_ = 0;
  uint64_t dropped_loss_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace sdr

#endif  // SDR_SRC_SIM_NETWORK_H_
