#include "src/sim/channel.h"

#include "src/crypto/hmac.h"
#include "src/crypto/sha2.h"

namespace sdr {

namespace {
Bytes Transcript(const HandshakeHello& hello, const Bytes& server_nonce,
                 const Bytes& payload) {
  Bytes t;
  Append(t, hello.client_nonce);
  Append(t, server_nonce);
  Append(t, payload);
  return t;
}
}  // namespace

HandshakeReply MakeHandshakeReply(const Signer& server_signer,
                                  const HandshakeHello& hello,
                                  const Bytes& payload, Rng& rng) {
  HandshakeReply reply;
  reply.server_nonce = rng.NextBytes(16);
  reply.payload = payload;
  reply.signature =
      server_signer.Sign(Transcript(hello, reply.server_nonce, payload));
  return reply;
}

Result<Bytes> VerifyHandshakeReply(SignatureScheme scheme,
                                   const Bytes& server_public_key,
                                   const HandshakeHello& hello,
                                   const HandshakeReply& reply) {
  Bytes transcript = Transcript(hello, reply.server_nonce, reply.payload);
  if (!VerifySignature(scheme, server_public_key, transcript,
                       reply.signature)) {
    return Error(ErrorCode::kBadSignature, "handshake signature invalid");
  }
  Bytes key_material;
  Append(key_material, hello.client_nonce);
  Append(key_material, reply.server_nonce);
  Append(key_material, server_public_key);
  return Sha256::Hash(key_material);
}

Bytes SessionMac(const Bytes& session_key, const Bytes& message) {
  return HmacSha256(session_key, message);
}

bool CheckSessionMac(const Bytes& session_key, const Bytes& message,
                     const Bytes& mac) {
  return ConstantTimeEquals(HmacSha256(session_key, message), mac);
}

}  // namespace sdr
