#include "src/sim/simulator.h"

#include <algorithm>

#include "src/trace/trace.h"

namespace sdr {

// Moves `entry` into heap_[pos] and updates the slot's position index.
void Simulator::Place(size_t pos, HeapEntry entry) {
  slots_[entry.slot].heap_pos = static_cast<int32_t>(pos);
  heap_[pos] = std::move(entry);
}

void Simulator::SiftUp(size_t pos) {
  HeapEntry entry = std::move(heap_[pos]);
  while (pos > 0) {
    size_t parent = (pos - 1) / 2;
    if (!Before(entry, heap_[parent])) {
      break;
    }
    Place(pos, std::move(heap_[parent]));
    pos = parent;
  }
  Place(pos, std::move(entry));
}

void Simulator::SiftDown(size_t pos) {
  HeapEntry entry = std::move(heap_[pos]);
  const size_t n = heap_.size();
  for (;;) {
    size_t child = 2 * pos + 1;
    if (child >= n) {
      break;
    }
    if (child + 1 < n && Before(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!Before(heap_[child], entry)) {
      break;
    }
    Place(pos, std::move(heap_[child]));
    pos = child;
  }
  Place(pos, std::move(entry));
}

EventId Simulator::ScheduleAt(SimTime t, InlineFunction<void()> fn) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  EventId id = (static_cast<uint64_t>(slots_[slot].generation) << 32) | slot;
  heap_.push_back(
      HeapEntry{std::max(t, now_), next_seq_++, slot, std::move(fn)});
  SiftUp(heap_.size() - 1);
  return id;
}

void Simulator::Cancel(EventId id) {
  uint32_t slot = static_cast<uint32_t>(id);
  uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].generation != generation ||
      slots_[slot].heap_pos < 0) {
    return;  // never scheduled, already fired, or already cancelled
  }
  size_t pos = static_cast<size_t>(slots_[slot].heap_pos);
  // Retire the slot: bump the generation (skipping 0) so the id is dead.
  if (++slots_[slot].generation == 0) {
    slots_[slot].generation = 1;
  }
  slots_[slot].heap_pos = -1;
  free_slots_.push_back(slot);

  size_t last = heap_.size() - 1;
  if (pos != last) {
    Place(pos, std::move(heap_[last]));
    heap_.pop_back();
    // The moved-in entry may need to travel either direction.
    if (pos > 0 && Before(heap_[pos], heap_[(pos - 1) / 2])) {
      SiftUp(pos);
    } else {
      SiftDown(pos);
    }
  } else {
    heap_.pop_back();
  }
}

InlineFunction<void()> Simulator::PopTop() {
  HeapEntry& top = heap_.front();
  uint32_t slot = top.slot;
  if (++slots_[slot].generation == 0) {
    slots_[slot].generation = 1;
  }
  slots_[slot].heap_pos = -1;
  free_slots_.push_back(slot);

  InlineFunction<void()> fn = std::move(top.fn);
  size_t last = heap_.size() - 1;
  if (last > 0) {
    heap_[0] = std::move(heap_[last]);
    slots_[heap_[0].slot].heap_pos = 0;
    heap_.pop_back();
    SiftDown(0);
  } else {
    heap_.pop_back();
  }
  return fn;
}

void Simulator::Dispatch(InlineFunction<void()>& fn) {
  ++events_processed_;
  if (trace_ != nullptr && trace_->sim_spans()) {
    // Event-loop span: the payload is the pending-event count, a cheap
    // live gauge of queue depth on the timeline.
    trace_->SpanBegin(TraceRole::kSim, 0, "sim.event", kNoTrace,
                      static_cast<int64_t>(pending_events()));
    fn();
    trace_->SpanEnd(TraceRole::kSim, 0, "sim.event");
    return;
  }
  fn();
}

bool Simulator::Step() {
  if (heap_.empty()) {
    return false;
  }
  now_ = heap_.front().time;
  InlineFunction<void()> fn = PopTop();
  Dispatch(fn);
  return true;
}

void Simulator::RunUntil(SimTime t) {
  while (!heap_.empty() && heap_.front().time <= t) {
    now_ = heap_.front().time;
    InlineFunction<void()> fn = PopTop();
    Dispatch(fn);
  }
  now_ = std::max(now_, t);
}

size_t Simulator::RunUntilIdle(size_t max_events) {
  size_t n = 0;
  while (n < max_events && Step()) {
    ++n;
  }
  return n;
}

}  // namespace sdr
