#include "src/sim/simulator.h"

#include <algorithm>

namespace sdr {

EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  EventId id = next_id_++;
  queue_.push(Event{std::max(t, now_), id, std::move(fn)});
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) {
    return;
  }
  cancelled_.push_back(id);
  ++cancelled_live_;
}

bool Simulator::IsCancelled(EventId id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) {
    return false;
  }
  cancelled_.erase(it);
  --cancelled_live_;
  return true;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (IsCancelled(ev.id)) {
      continue;
    }
    now_ = ev.time;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Event ev = queue_.top();
    queue_.pop();
    if (IsCancelled(ev.id)) {
      continue;
    }
    now_ = ev.time;
    ev.fn();
  }
  now_ = std::max(now_, t);
}

size_t Simulator::RunUntilIdle(size_t max_events) {
  size_t n = 0;
  while (n < max_events && Step()) {
    ++n;
  }
  return n;
}

}  // namespace sdr
