#include "src/sim/simulator.h"

#include <algorithm>

#include "src/trace/trace.h"

namespace sdr {

EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  EventId id = next_id_++;
  queue_.push(Event{std::max(t, now_), id, std::move(fn)});
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) {
    return;
  }
  cancelled_.push_back(id);
  ++cancelled_live_;
}

bool Simulator::IsCancelled(EventId id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) {
    return false;
  }
  cancelled_.erase(it);
  --cancelled_live_;
  return true;
}

void Simulator::Dispatch(Event& ev) {
  if (trace_ != nullptr && trace_->sim_spans()) {
    // Event-loop span: the payload is the pending-event count, a cheap
    // live gauge of queue depth on the timeline.
    trace_->SpanBegin(TraceRole::kSim, 0, "sim.event", kNoTrace,
                      static_cast<int64_t>(pending_events()));
    ev.fn();
    trace_->SpanEnd(TraceRole::kSim, 0, "sim.event");
    return;
  }
  ev.fn();
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (IsCancelled(ev.id)) {
      continue;
    }
    now_ = ev.time;
    Dispatch(ev);
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Event ev = queue_.top();
    queue_.pop();
    if (IsCancelled(ev.id)) {
      continue;
    }
    now_ = ev.time;
    Dispatch(ev);
  }
  now_ = std::max(now_, t);
}

size_t Simulator::RunUntilIdle(size_t max_events) {
  size_t n = 0;
  while (n < max_events && Step()) {
    ++n;
  }
  return n;
}

}  // namespace sdr
