// Authenticated session establishment, used by the client setup phase: the
// paper has clients "establish a secure connection (using the master's
// certified public key)". Data secrecy is explicitly out of scope in the
// paper (Section 2), so a "secure connection" here means an *authenticated*
// one: a signed nonce exchange proving the server controls the certified
// key, plus a per-session MAC key so later requests/responses on the
// session cannot be spoofed by other simulated nodes.
#ifndef SDR_SRC_SIM_CHANNEL_H_
#define SDR_SRC_SIM_CHANNEL_H_

#include "src/crypto/signer.h"
#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace sdr {

// Handshake transcript pieces. Flow:
//   client -> server : client_nonce
//   server -> client : server_nonce, payload, Sign(server_key,
//                      client_nonce || server_nonce || payload)
// The client verifies the signature against the server's certified public
// key; both sides then derive session_key = SHA256(client_nonce ||
// server_nonce || server_public_key).
struct HandshakeHello {
  Bytes client_nonce;  // 16 bytes
};

struct HandshakeReply {
  Bytes server_nonce;  // 16 bytes
  Bytes payload;       // server-chosen data bound into the handshake
  Bytes signature;
};

// Server side: produce a signed reply for a received hello.
HandshakeReply MakeHandshakeReply(const Signer& server_signer,
                                  const HandshakeHello& hello,
                                  const Bytes& payload, Rng& rng);

// Client side: verify the reply against the server's certified public key.
// On success returns the derived session key.
Result<Bytes> VerifyHandshakeReply(SignatureScheme scheme,
                                   const Bytes& server_public_key,
                                   const HandshakeHello& hello,
                                   const HandshakeReply& reply);

// Per-message session authentication after the handshake.
Bytes SessionMac(const Bytes& session_key, const Bytes& message);
bool CheckSessionMac(const Bytes& session_key, const Bytes& message,
                     const Bytes& mac);

}  // namespace sdr

#endif  // SDR_SRC_SIM_CHANNEL_H_
