// Deterministic discrete-event simulator: a virtual clock and an event
// queue. All protocol timing (keep-alives, max_latency freshness windows,
// audit lag, detection latency) is measured in virtual time, so runs are
// exactly reproducible from a seed.
#ifndef SDR_SRC_SIM_SIMULATOR_H_
#define SDR_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/rng.h"

namespace sdr {

class TraceSink;

// Virtual time in microseconds.
using SimTime = int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

// Identifies a scheduled event for cancellation.
using EventId = uint64_t;

class Simulator {
 public:
  explicit Simulator(uint64_t seed) : rng_(seed) {}

  SimTime Now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` to run at absolute virtual time `t` (clamped to Now()).
  EventId ScheduleAt(SimTime t, std::function<void()> fn);

  // Schedules `fn` to run `delay` from now.
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Safe to call on already-fired ids (no-op).
  void Cancel(EventId id);

  // Runs the next event, if any. Returns false when the queue is empty.
  bool Step();

  // Runs events until virtual time would exceed `t`; leaves Now() == t.
  void RunUntil(SimTime t);

  // Runs until no events remain (or `max_events` processed, as a runaway
  // guard). Returns the number of events processed.
  size_t RunUntilIdle(size_t max_events = SIZE_MAX);

  size_t pending_events() const { return queue_.size() - cancelled_live_; }

  // Optional trace sink (owned by the harness, e.g. Cluster). Null when
  // tracing is off — instrumentation sites branch once on this pointer,
  // which is the whole "zero overhead when disabled" story.
  void set_trace(TraceSink* trace) { trace_ = trace; }
  TraceSink* trace() const { return trace_; }

 private:
  struct Event {
    SimTime time;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : id > other.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<EventId> cancelled_;  // sorted lazily; small in practice
  size_t cancelled_live_ = 0;
  Rng rng_;
  TraceSink* trace_ = nullptr;

  bool IsCancelled(EventId id);
  void Dispatch(Event& ev);
};

}  // namespace sdr

#endif  // SDR_SRC_SIM_SIMULATOR_H_
