// Deterministic discrete-event simulator: a virtual clock and an event
// queue. All protocol timing (keep-alives, max_latency freshness windows,
// audit lag, detection latency) is measured in virtual time, so runs are
// exactly reproducible from a seed.
//
// The queue is an index-tracked binary heap: every pending event owns a
// slot in a side table that records its heap position, so Cancel is a true
// O(log n) removal instead of the former lazy tombstone scan. EventIds are
// (generation << 32 | slot), which makes double-cancel and cancel-after-
// fire exact no-ops — a stale id's generation no longer matches.
#ifndef SDR_SRC_SIM_SIMULATOR_H_
#define SDR_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "src/runtime/env.h"
#include "src/util/inline_function.h"
#include "src/util/rng.h"

namespace sdr {

class TraceSink;

// SimTime, the time constants, and EventId live in src/runtime/env.h (the
// substrate-neutral vocabulary); the simulator is the virtual-time Clock.
class Simulator final : public Clock {
 public:
  explicit Simulator(uint64_t seed) : rng_(seed) {}

  SimTime Now() const override { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` to run at absolute virtual time `t` (clamped to Now()).
  EventId ScheduleAt(SimTime t, InlineFunction<void()> fn);

  // Schedules `fn` to run `delay` from now.
  EventId ScheduleAfter(SimTime delay, InlineFunction<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Safe to call on already-fired, already-
  // cancelled, or invalid ids (no-op), any number of times.
  void Cancel(EventId id);

  // Runs the next event, if any. Returns false when the queue is empty.
  bool Step();

  // Runs events until virtual time would exceed `t`; leaves Now() == t.
  void RunUntil(SimTime t);

  // Runs until no events remain (or `max_events` processed, as a runaway
  // guard). Returns the number of events processed.
  size_t RunUntilIdle(size_t max_events = SIZE_MAX);

  size_t pending_events() const { return heap_.size(); }

  // Total events dispatched since construction (perf instrumentation).
  size_t events_processed() const { return events_processed_; }

  // Optional trace sink (owned by the harness, e.g. Cluster). Null when
  // tracing is off — instrumentation sites branch once on this pointer,
  // which is the whole "zero overhead when disabled" story.
  void set_trace(TraceSink* trace) { trace_ = trace; }
  TraceSink* trace() const { return trace_; }

 private:
  struct Slot {
    uint32_t generation = 1;  // bumped on retire; never 0, so id != 0
    int32_t heap_pos = -1;    // -1: not pending
  };
  struct HeapEntry {
    SimTime time;
    uint64_t seq;   // schedule order; ties at equal time fire in this order
    uint32_t slot;
    InlineFunction<void()> fn;
  };

  bool Before(const HeapEntry& a, const HeapEntry& b) const {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }
  void SiftUp(size_t pos);
  void SiftDown(size_t pos);
  void Place(size_t pos, HeapEntry entry);
  // Removes the root, retiring its slot; returns its callback.
  InlineFunction<void()> PopTop();
  void Dispatch(InlineFunction<void()>& fn);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  size_t events_processed_ = 0;
  Rng rng_;
  TraceSink* trace_ = nullptr;
};

}  // namespace sdr

#endif  // SDR_SRC_SIM_SIMULATOR_H_
