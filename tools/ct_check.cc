// ct_check — ctgrind-style constant-time harness for the Ed25519 fast path.
//
// The signed pledge is the protocol's evidence: a slave caught lying is
// convicted by its own signature. That conviction is only sound while the
// signing key stays secret, so the from-scratch fast path must not leak
// key bits through timing or cache side channels. Following ctgrind
// (Langley) and the dudect line of work, this harness marks the private
// seed as *tainted* using MemorySanitizer's uninitialized-memory shadow
// and then runs key expansion and signing. Any branch on tainted data and
// any tainted memory index is precisely what MSan reports — the same
// operations a microarchitectural attacker can observe. The declassifiers
// in src/crypto/ct.h release taint only where values become public by
// design (the published points A and R, the signature scalar S).
//
// Modes:
//   ct_check            taint check of fast-path keygen + sign (the CI
//                       MSan gate). In a non-MSan build the taint calls
//                       are no-ops and the run degrades to a functional
//                       smoke check; the banner says which one you got.
//   ct_check --suite    gtest-free crypto suite: RFC 8032 vectors through
//                       both paths, fast-vs-naive cross-checks, batch
//                       verification with culprits. Runs under MSan where
//                       the gtest-based tests cannot (uninstrumented
//                       libgtest would false-positive).
//   ct_check --smoke    quick functional pass over both paths, including
//                       the naive reference ladder; wired into ctest so
//                       the harness itself cannot rot.
#include <cstdio>
#include <cstring>
#include <string>

#include "src/crypto/ct.h"
#include "src/crypto/ed25519.h"
#include "src/util/bytes.h"

using namespace sdr;

namespace {

int g_failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    ++g_failures;
    std::fprintf(stderr, "ct_check: FAIL: %s\n", what);
  }
}

Bytes SeedFor(uint8_t tag) {
  Bytes seed(kEd25519SeedSize);
  for (size_t i = 0; i < seed.size(); ++i) {
    seed[i] = (uint8_t)(0x5d * (uint8_t)(i + 1) + tag);
  }
  return seed;
}

Bytes MessageFor(uint8_t tag, size_t len) {
  Bytes msg(len);
  for (size_t i = 0; i < len; ++i) {
    msg[i] = (uint8_t)(tag ^ (uint8_t)(31 * i + 7));
  }
  return msg;
}

// ---------------------------------------------------------------------------
// Taint mode: the actual constant-time check.
// ---------------------------------------------------------------------------

int RunTaint() {
  std::printf("ct_check: taint harness %s\n",
              CtTaintActive() ? "ACTIVE (MemorySanitizer)"
                              : "inactive (plain build; functional smoke only)");
  Ed25519SetFastPath(true);

  for (uint8_t round = 0; round < 4; ++round) {
    const Bytes clean_seed = SeedFor(round);
    const Bytes msg = MessageFor(round, 32 + 17 * round);

    // Reference signature and key from an untainted copy, for correctness.
    const Ed25519ExpandedKey ref_key = Ed25519ExpandKey(clean_seed);
    const Bytes ref_sig = Ed25519SignExpanded(ref_key, msg);

    // Taint the seed. From here until the declassification points, every
    // derived value (hash, clamped scalar, radix-16 digits) carries shadow,
    // and MSan aborts on any branch or memory index that consumes it.
    Bytes seed = clean_seed;
    CtClassify(seed.data(), seed.size());
    if (CtTaintActive()) {
      Check(CtIsTainted(seed.data(), seed.size()),
            "harness sanity: classified seed must carry taint");
    }

    // Key expansion: one fixed-base multiplication over the secret scalar.
    Ed25519ExpandedKey key = Ed25519ExpandKey(seed);
    Check(!CtIsTainted(key.public_key.data(), key.public_key.size()),
          "public key must be declassified");
    Check(key.public_key == ref_key.public_key, "tainted keygen mismatch");

    // Expanded signing: the hot path (a slave pledging every read).
    Bytes sig = Ed25519SignExpanded(key, msg);
    Check(!CtIsTainted(sig.data(), sig.size()),
          "signature must be declassified");
    Check(sig == ref_sig, "tainted sign-expanded mismatch");

    // Seed signing (shared-inversion variant) exercises its own compress.
    Bytes sig2 = Ed25519Sign(seed, msg);
    Check(!CtIsTainted(sig2.data(), sig2.size()),
          "seed-signature must be declassified");
    Check(sig2 == ref_sig, "tainted seed-sign mismatch");

    // The verdict consumes only public data.
    Check(Ed25519Verify(key.public_key, msg, sig), "signature must verify");
  }

  if (g_failures == 0) {
    std::printf(
        "ct_check: PASS — no secret-dependent branch or index in fast-path "
        "keygen/sign%s\n",
        CtTaintActive() ? "" : " (functional only; rerun under MSan)");
  }
  return g_failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Suite mode: gtest-free crypto checks that can run fully instrumented.
// ---------------------------------------------------------------------------

struct Rfc8032Vector {
  const char* seed_hex;
  const char* public_hex;
  const char* message_hex;
  const char* signature_hex;
};

constexpr Rfc8032Vector kVectors[] = {
    {"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
     "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
     "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
     "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
    {"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
     "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c", "72",
     "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
     "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
    {"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
     "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025", "af82",
     "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
     "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"},
};

void RunVectors(bool fast) {
  Ed25519SetFastPath(fast);
  for (const auto& v : kVectors) {
    Bytes seed = HexDecode(v.seed_hex);
    Bytes pub = HexDecode(v.public_hex);
    Bytes msg = HexDecode(v.message_hex);
    Bytes sig = HexDecode(v.signature_hex);
    Check(Ed25519PublicKey(seed) == pub, "RFC 8032 public key");
    Check(Ed25519Sign(seed, msg) == sig, "RFC 8032 signature");
    Check(Ed25519Verify(pub, msg, sig), "RFC 8032 verify");
  }
}

int RunSuite(bool quick) {
  const int rounds = quick ? 2 : 8;
  RunVectors(true);
  RunVectors(false);

  // Fast and naive paths must agree bit-for-bit on derived inputs, and the
  // naive reference ladder itself must round-trip (it is the oracle the
  // fast path is judged against).
  for (int i = 0; i < rounds; ++i) {
    Bytes seed = SeedFor((uint8_t)(0x40 + i));
    Bytes msg = MessageFor((uint8_t)i, 11 + 29 * (size_t)i);
    Ed25519SetFastPath(false);
    Bytes pub_naive = Ed25519PublicKey(seed);
    Bytes sig_naive = Ed25519Sign(seed, msg);
    Check(Ed25519Verify(pub_naive, msg, sig_naive), "naive ladder round trip");
    Ed25519SetFastPath(true);
    Check(Ed25519PublicKey(seed) == pub_naive, "fast/naive public key");
    Check(Ed25519Sign(seed, msg) == sig_naive, "fast/naive signature");
    Check(Ed25519Verify(pub_naive, msg, sig_naive), "fast verify of naive sig");
    Bytes bad = sig_naive;
    bad[40] ^= 1;
    Check(!Ed25519Verify(pub_naive, msg, bad), "tampered signature rejected");
  }

  // Batch verification with an embedded culprit.
  Ed25519SetFastPath(true);
  std::vector<Ed25519BatchItem> items;
  for (int i = 0; i < 6; ++i) {
    Bytes seed = SeedFor((uint8_t)(0x80 + i));
    Bytes msg = MessageFor((uint8_t)(0xc0 + i), 24);
    Ed25519BatchItem item;
    item.public_key = Ed25519PublicKey(seed);
    item.message = msg;
    item.signature = Ed25519Sign(seed, msg);
    if (i == 3) {
      item.signature[5] ^= 0xff;  // the culprit
    }
    items.push_back(item);
  }
  std::vector<bool> verdicts = Ed25519VerifyBatch(items);
  for (size_t i = 0; i < verdicts.size(); ++i) {
    Check(verdicts[i] == (i != 3), "batch culprit isolation");
  }

  if (g_failures == 0) {
    std::printf("ct_check: %s PASS (%d cross-check rounds, both paths)\n",
                quick ? "smoke" : "suite", rounds);
  }
  return g_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = argc > 1 ? argv[1] : "";
  if (mode == "--suite") {
    return RunSuite(/*quick=*/false);
  }
  if (mode == "--smoke") {
    int rc = RunSuite(/*quick=*/true);
    return rc != 0 ? rc : RunTaint();
  }
  if (mode.empty() || mode == "--taint") {
    return RunTaint();
  }
  std::fprintf(stderr, "usage: ct_check [--taint|--suite|--smoke]\n");
  return 2;
}
