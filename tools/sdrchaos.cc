// sdrchaos — sweep one chaos scenario across many seeds and report, per
// invariant, which seeds passed and the first violating (seed, virtual
// time, evidence) triple.
//
// Examples (one line each; wrap with shell quoting as needed):
//   # a slave starts lying mid-run, then gets partitioned from the masters
//   ./build/tools/sdrchaos --seeds=20
//     --scenario="at 10s set_behavior slave:2 lie_probability=0.2;
//                 at 40s partition slave:2 master:*; at 60s heal all"
//
//   # crash a master and watch availability / exclusion invariants
//   ./build/tools/sdrchaos --seeds=10 --seconds=120
//     --scenario="at 15s crash master:0; at 45s restart master:0"
#include <cstdio>

#include "src/chaos/runner.h"
#include "src/util/flags.h"

using namespace sdr;

int main(int argc, char** argv) {
  Flags flags;
  flags.Define("scenario", "", "chaos scenario text (see docs/CHAOS.md)")
      .Define("seeds", "20", "number of seeds to sweep")
      .Define("first_seed", "1", "first seed of the sweep")
      .Define("seconds", "90", "virtual seconds per seed")
      .Define("cadence_ms", "250", "invariant-checking cadence")
      .Define("masters", "2", "number of serving masters")
      .Define("auditors", "1", "number of auditors")
      .Define("slaves_per_master", "2", "slaves per master")
      .Define("clients", "4", "number of clients")
      .Define("shards", "1",
              "keyspace shards (each with its own master group; 1 = the "
              "paper's single group, byte-identical)")
      .Define("commit_batch", "1",
              "master-side group commit bundle size (1 = byte-identical "
              "classic path)")
      .Define("items", "200", "catalogue size (documents = 3x)")
      .Define("max_latency_ms", "2000", "freshness bound / write spacing")
      .Define("double_check_p", "0.05", "double-check probability")
      .Define("write_fraction", "0.02", "fraction of client ops that write")
      .Define("think_ms", "100", "client think time (closed loop)")
      .Define("scheme", "hmac", "ed25519 | hmac | null")
      .Define("link_ms", "5", "one-way link latency")
      .Define("availability_floor", "0.5",
              "minimum accepted reads/sec outside partitions")
      .Define("jobs", "1", "worker threads for the sweep (report bytes are "
              "identical for any value)")
      .Define("audit_jobs", "1",
              "host worker lanes inside each auditor's re-execution engine "
              "(report bytes are identical for any value)")
      .Define("fork_check", "false",
              "enable the fork-consistency subsystem and its invariants "
              "(NoForkUndetected, EvidenceTransferable)")
      .Define("vv_gossip_ms", "1000",
              "client version-vector gossip period (with --fork_check)")
      .Define("vv_fanout", "2",
              "gossip targets per round (with --fork_check)")
      .Define("fail_on_violation", "false",
              "exit nonzero when any invariant fails");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  auto parsed = ParseScenario(flags.GetString("scenario"));
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad --scenario: %s\n",
                 parsed.error().message().c_str());
    return 1;
  }
  Scenario scenario = std::move(parsed).value();

  ClusterConfig config;
  config.num_masters = static_cast<int>(flags.GetInt("masters"));
  config.num_auditors = static_cast<int>(flags.GetInt("auditors"));
  config.slaves_per_master =
      static_cast<int>(flags.GetInt("slaves_per_master"));
  config.num_clients = static_cast<int>(flags.GetInt("clients"));
  config.num_shards = static_cast<int>(flags.GetInt("shards"));
  config.params.commit_batch =
      static_cast<uint32_t>(flags.GetInt("commit_batch"));
  config.corpus.n_items = static_cast<size_t>(flags.GetInt("items"));
  config.params.max_latency = flags.GetInt("max_latency_ms") * kMillisecond;
  config.params.double_check_probability = flags.GetDouble("double_check_p");
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = flags.GetInt("think_ms") * kMillisecond;
  config.client_write_fraction = flags.GetDouble("write_fraction");
  config.default_link =
      LinkModel{flags.GetInt("link_ms") * kMillisecond,
                flags.GetInt("link_ms") * kMillisecond / 2, 0.0};
  config.audit_jobs = static_cast<int>(flags.GetInt("audit_jobs"));
  config.params.fork_check_enabled = flags.GetBool("fork_check");
  config.params.vv_gossip_period = flags.GetInt("vv_gossip_ms") * kMillisecond;
  config.params.vv_gossip_fanout =
      static_cast<uint32_t>(flags.GetInt("vv_fanout"));

  std::string scheme = flags.GetString("scheme");
  if (scheme == "hmac") {
    config.params.scheme = SignatureScheme::kHmacSha256;
  } else if (scheme == "null") {
    config.params.scheme = SignatureScheme::kNull;
  } else if (scheme == "ed25519") {
    config.params.scheme = SignatureScheme::kEd25519;
  } else {
    std::fprintf(stderr, "unknown --scheme: %s\n", scheme.c_str());
    return 1;
  }

  SweepOptions sweep;
  sweep.first_seed = static_cast<uint64_t>(flags.GetInt("first_seed"));
  sweep.num_seeds = static_cast<int>(flags.GetInt("seeds"));
  sweep.duration = flags.GetInt("seconds") * kSecond;
  sweep.cadence = flags.GetInt("cadence_ms") * kMillisecond;
  sweep.jobs = static_cast<int>(flags.GetInt("jobs"));

  double floor = flags.GetDouble("availability_floor");
  CheckerFactory factory = [floor](const ClusterConfig& cfg) {
    auto checkers = DefaultCheckers(cfg);
    for (auto& checker : checkers) {
      if (checker->name() == "AvailabilityFloor") {
        checker = std::make_unique<AvailabilityFloor>(
            floor, /*warmup=*/5 * kSecond, /*min_window=*/10 * kSecond);
      }
    }
    return checkers;
  };

  std::printf("sdrchaos: %d masters, %d auditors, %d slaves, %d clients, "
              "scheme=%s, %d seeds x %lld virtual seconds\n",
              config.num_masters, config.num_auditors,
              config.num_masters * config.slaves_per_master,
              config.num_clients, scheme.c_str(), sweep.num_seeds,
              static_cast<long long>(flags.GetInt("seconds")));
  for (const auto& [name, value] : flags.NonDefault()) {
    if (name == "jobs" || name == "audit_jobs") {
      continue;  // host-parallelism knobs must not change output bytes
    }
    std::printf("  --%s=%s\n", name.c_str(), value.c_str());
  }
  if (scenario.empty()) {
    std::printf("scenario: (none — honest baseline)\n");
  } else {
    std::printf("scenario: %s\n", scenario.ToString().c_str());
  }

  SweepReport report = RunSeedSweep(config, scenario, sweep, factory);
  std::printf("\n%s", report.Summary().c_str());
  std::printf("verdict: %s\n", report.all_passed() ? "ALL INVARIANTS HELD"
                                                   : "VIOLATIONS FOUND");
  if (flags.GetBool("fail_on_violation") && !report.all_passed()) {
    return 2;
  }
  return 0;
}
