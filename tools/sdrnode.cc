// sdrnode — run ONE protocol role (directory, master, auditor, slave, or
// client) as a real OS process on the RealEnv transport. Every process in a
// deployment reads a small config file (see ParseNodeConfig in
// src/runtime/deployment.h) naming its node id, the shared deployment tuple
// (seed + counts — from which the full roster, keys, and corpus derive
// deterministically), its listen address, and its peers' addresses.
//
// The role code that runs here is the *same* code the simulator runs — the
// Env abstraction is the only seam. sdrcluster launches fleets of this
// binary for end-to-end real-transport runs.
//
// Reports: on SIGINT/SIGTERM the event loop exits cleanly and the process
// writes a final JSON report (sorted keys, byte-stable given identical
// counter values) whose per-role sections use the exact field names of
// `sdrsim --json`, so the same analysis scripts read both. With
// --stats_interval=N a compact one-line snapshot of the same report is
// printed to stdout every N seconds while running.
//
// Example (by hand; sdrcluster generates all of this):
//   cat > node5.conf <<EOF
//   node_id 5
//   seed 1
//   masters 1
//   clients 1
//   listen 127.0.0.1:7105
//   peer 1 127.0.0.1:7101
//   peer 2 127.0.0.1:7102
//   EOF
//   ./build/tools/sdrnode --config node5.conf --out node5.json
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include "src/core/directory.h"
#include "src/runtime/deployment.h"
#include "src/runtime/real_env.h"
#include "src/trace/export.h"
#include "src/util/flags.h"
#include "src/util/json.h"

using namespace sdr;

namespace {

// Signal handlers may only touch async-signal-safe state; RealEnv's
// RequestStop is exactly that (atomic flag + self-pipe write).
RealEnv* g_env = nullptr;

void OnSignal(int) {
  if (g_env != nullptr) {
    g_env->RequestStop();
  }
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

bool WriteFileString(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "sdrnode: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  size_t n = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return n == data.size();
}

TraceRole TraceRoleFor(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDirectory:
      return TraceRole::kDirectory;
    case NodeKind::kMaster:
      return TraceRole::kMaster;
    case NodeKind::kAuditor:
      return TraceRole::kAuditor;
    case NodeKind::kSlave:
      return TraceRole::kSlave;
    case NodeKind::kClient:
      return TraceRole::kClient;
  }
  return TraceRole::kNone;
}

// The one role this process runs. Exactly one pointer is non-null.
struct RoleSet {
  std::unique_ptr<Directory> directory;
  std::unique_ptr<Master> master;
  std::unique_ptr<Auditor> auditor;
  std::unique_ptr<Slave> slave;
  std::unique_ptr<Client> client;
  Node* node = nullptr;
};

RoleSet BuildRole(const DeploymentPlan& plan, const NodeConfig& config,
                  NodeKind kind, int index) {
  RoleSet roles;
  switch (kind) {
    case NodeKind::kDirectory: {
      roles.directory = std::make_unique<Directory>();
      roles.directory->Publish(plan.content.content_public_key,
                               plan.master_certs);
      roles.node = roles.directory.get();
      break;
    }
    case NodeKind::kMaster: {
      roles.master = std::make_unique<Master>(MasterOptionsFor(plan, index));
      for (size_t s = 0; s < plan.slave_ids.size(); ++s) {
        if (plan.OwnerMasterOf(static_cast<int>(s)) == index) {
          roles.master->AddSlave(plan.slave_certs[s]);
        }
      }
      roles.master->SetBaseContent(plan.base);
      roles.node = roles.master.get();
      break;
    }
    case NodeKind::kAuditor: {
      roles.auditor =
          std::make_unique<Auditor>(AuditorOptionsFor(plan, index));
      roles.auditor->SetBaseContent(plan.base);
      roles.node = roles.auditor.get();
      break;
    }
    case NodeKind::kSlave: {
      Slave::Options opts = SlaveOptionsFor(plan, index);
      if (config.liar_index == index) {
        opts.behavior.lie_probability = config.lie_probability;
      }
      roles.slave = std::make_unique<Slave>(std::move(opts));
      roles.slave->SetBaseContent(plan.base);
      roles.node = roles.slave.get();
      break;
    }
    case NodeKind::kClient: {
      roles.client = std::make_unique<Client>(
          ClientOptionsFor(plan, index, Client::LoadMode::kClosedLoop));
      roles.node = roles.client.get();
      break;
    }
  }
  return roles;
}

// Single-node report in the sdrsim --json shape: the same top-level
// sections and the same per-role field names, with the role arrays holding
// just this process's entry. Keys emit sorted (JsonValue is map-backed) so
// the dump is byte-stable for given counter values.
JsonValue NodeReport(const RealEnv& env, const DeploymentPlan& plan,
                     NodeKind kind, int index, const RoleSet& roles,
                     const TraceSink* sink) {
  JsonValue root = JsonValue::Object();
  root["wall_seconds"] = static_cast<double>(env.Now()) / kSecond;
  root["seed"] = plan.config.seed;
  root["node"] = static_cast<int64_t>(roles.node->id());
  root["role"] = NodeKindName(kind);
  root["role_index"] = index;

  uint64_t cache_hits = 0, cache_misses = 0;
  switch (kind) {
    case NodeKind::kDirectory: {
      JsonValue& d = root["directory"];
      d["lookups_served"] = roles.directory->lookups_served();
      break;
    }
    case NodeKind::kMaster: {
      const Master& master = *roles.master;
      const MasterMetrics& mm = master.metrics();
      JsonValue j = JsonValue::Object();
      j["index"] = index;
      j["node"] = static_cast<int64_t>(master.id());
      j["version"] = master.version();
      j["writes_committed"] = mm.writes_committed;
      j["double_checks_served"] = mm.double_checks_served;
      j["double_check_lies_found"] = mm.double_check_lies_found;
      j["slaves_excluded"] = mm.slaves_excluded;
      j["work_units"] = mm.work_units_executed;
      j["sig_cache_hits"] = mm.sig_cache_hits;
      j["sig_cache_misses"] = mm.sig_cache_misses;
      // Which slaves this master has excluded, by node id — sdrcluster
      // asserts the injected liar shows up here.
      JsonValue excluded = JsonValue::Array();
      for (NodeId slave : plan.slave_ids) {
        if (master.IsExcluded(slave)) {
          excluded.Append(static_cast<int64_t>(slave));
        }
      }
      j["excluded_nodes"] = std::move(excluded);
      cache_hits += mm.sig_cache_hits;
      cache_misses += mm.sig_cache_misses;
      JsonValue masters = JsonValue::Array();
      masters.Append(std::move(j));
      root["masters"] = std::move(masters);
      break;
    }
    case NodeKind::kAuditor: {
      const Auditor& auditor = *roles.auditor;
      const AuditorMetrics& am = auditor.metrics();
      JsonValue j = JsonValue::Object();
      j["index"] = index;
      j["node"] = static_cast<int64_t>(auditor.id());
      j["pledges_received"] = am.pledges_received;
      j["pledges_audited"] = am.pledges_audited;
      j["pledges_version_pruned"] = am.pledges_version_pruned;
      j["pledges_bad_signature"] = am.pledges_bad_signature;
      j["mismatches_found"] = am.mismatches_found;
      j["bad_read_notices_sent"] = am.bad_read_notices_sent;
      j["cache_hits"] = am.cache_hits;
      j["pledges_deduped"] = am.pledges_deduped;
      j["reexec_memo_hits"] = am.reexec_memo_hits;
      j["reexec_memo_misses"] = am.reexec_memo_misses;
      j["audit_workers_busy"] = am.audit_workers_busy;
      j["verify_batches"] = am.verify_batches;
      j["sigs_batch_verified"] = am.sigs_batch_verified;
      j["sig_cache_hits"] = am.sig_cache_hits;
      j["sig_cache_misses"] = am.sig_cache_misses;
      j["sig_cache_evictions"] = am.sig_cache_evictions;
      j["version_lag"] = auditor.version_lag();
      j["backlog"] = auditor.backlog();
      cache_hits += am.sig_cache_hits;
      cache_misses += am.sig_cache_misses;
      JsonValue auditors = JsonValue::Array();
      auditors.Append(std::move(j));
      root["auditors"] = std::move(auditors);
      break;
    }
    case NodeKind::kSlave: {
      const Slave& slave = *roles.slave;
      const SlaveMetrics& sm = slave.metrics();
      JsonValue j = JsonValue::Object();
      j["index"] = index;
      j["node"] = static_cast<int64_t>(slave.id());
      j["applied_version"] = slave.applied_version();
      j["reads_served"] = sm.reads_served;
      j["reads_declined_stale"] = sm.reads_declined_stale;
      j["lies_told"] = sm.lies_told;
      j["consistent_lies_told"] = sm.consistent_lies_told;
      j["work_units"] = sm.work_units_executed;
      j["sig_cache_hits"] = sm.sig_cache_hits;
      j["sig_cache_misses"] = sm.sig_cache_misses;
      // No "excluded" flag here: exclusion is master-side state a slave
      // process cannot observe; read it from the masters' reports.
      cache_hits += sm.sig_cache_hits;
      cache_misses += sm.sig_cache_misses;
      JsonValue slaves = JsonValue::Array();
      slaves.Append(std::move(j));
      root["slaves"] = std::move(slaves);
      break;
    }
    case NodeKind::kClient: {
      const Client& client = *roles.client;
      const ClientMetrics& cm = client.metrics();
      JsonValue j = JsonValue::Object();
      j["index"] = index;
      j["node"] = static_cast<int64_t>(client.id());
      j["reads_issued"] = cm.reads_issued;
      j["reads_accepted"] = cm.reads_accepted;
      j["reads_rejected_stale"] = cm.reads_rejected_stale;
      j["reads_rejected_bad_sig"] = cm.reads_rejected_bad_sig;
      j["reads_rejected_hash"] = cm.reads_rejected_hash;
      j["double_checks_sent"] = cm.double_checks_sent;
      j["double_check_mismatches"] = cm.double_check_mismatches;
      j["writes_committed"] = cm.writes_committed;
      j["bad_read_notices"] = cm.bad_read_notices;
      j["sig_cache_hits"] = cm.sig_cache_hits;
      j["sig_cache_misses"] = cm.sig_cache_misses;
      j["read_latency_p50_us"] = cm.read_latency_us.Median();
      j["read_latency_p99_us"] = cm.read_latency_us.P99();
      cache_hits += cm.sig_cache_hits;
      cache_misses += cm.sig_cache_misses;
      JsonValue clients = JsonValue::Array();
      clients.Append(std::move(j));
      root["clients"] = std::move(clients);
      break;
    }
  }

  JsonValue& vc = root["verify_cache"];
  vc["hits"] = cache_hits;
  vc["misses"] = cache_misses;

  JsonValue& net = root["network"];
  net["messages_sent"] = env.messages_sent();
  net["messages_delivered"] = env.messages_delivered();
  net["bytes_sent"] = env.bytes_sent();
  net["messages_dropped"] = env.messages_dropped();
  net["reconnects"] = env.reconnects();

  if (sink != nullptr) {
    root["histograms"] = HistogramSummaryJson(sink->MergedHistograms());
    JsonValue& tr = root["trace"];
    tr["events"] = sink->total_emitted();
    tr["dropped"] = sink->dropped();
  }
  return root;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags
      .Define("config", "",
              "node config file (required; see docs/RUNTIME.md)")
      .Define("out", "",
              "write the final JSON report to this file (default: stdout)")
      .Define("stats_interval", "0",
              "seconds between compact one-line JSON stats dumps to stdout "
              "(0 = only the final report)")
      .Define("trace", "true",
              "enable the tracing subsystem (latency histograms in reports)")
      .Define("trace_capacity", "262144", "trace ring-buffer capacity");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  const std::string config_path = flags.GetString("config");
  if (config_path.empty()) {
    std::fprintf(stderr, "sdrnode: --config is required\n");
    return 1;
  }
  std::string config_text;
  if (!ReadFileToString(config_path, &config_text)) {
    std::fprintf(stderr, "sdrnode: cannot read %s\n", config_path.c_str());
    return 1;
  }
  auto parsed = ParseNodeConfig(config_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "sdrnode: %s: %s\n", config_path.c_str(),
                 parsed.error().message().c_str());
    return 1;
  }
  NodeConfig config = std::move(parsed).value();

  DeploymentPlan plan = BuildDeployment(config.deployment);
  if (config.node_id >= static_cast<NodeId>(plan.num_nodes() + 1)) {
    std::fprintf(stderr, "sdrnode: node_id %u outside the %d-node roster\n",
                 config.node_id, plan.num_nodes());
    return 1;
  }
  const NodeKind kind = plan.KindOf(config.node_id);
  const int index = plan.RoleIndexOf(config.node_id);

  RealEnv::Options eopts;
  eopts.listen_host = config.listen_host;
  eopts.listen_port = config.listen_port;
  // Private per-process stream; any collision-free derivation works, since
  // unlike the simulator no cross-node stream sharing is possible.
  eopts.rng_seed = config.deployment.seed * 1000003 + config.node_id;
  eopts.epoch_realtime_us = config.epoch_us;
  eopts.start_delay = config.start_delay_ms * kMillisecond;
  RealEnv env(eopts);

  RoleSet roles = BuildRole(plan, config, kind, index);
  env.Attach(roles.node, config.node_id);
  for (const auto& peer : config.peers) {
    env.AddPeer(peer.id, peer.host, peer.port);
  }

  std::unique_ptr<TraceSink> sink;
  if (flags.GetBool("trace")) {
    TraceSink::Options topts;
    topts.capacity = static_cast<size_t>(flags.GetInt("trace_capacity"));
    sink = std::make_unique<TraceSink>(&env, topts);
    sink->RegisterNode(config.node_id, TraceRoleFor(kind),
                       std::string(NodeKindName(kind)) + "[" +
                           std::to_string(index) + "]");
    env.set_trace(sink.get());
  }

  g_env = &env;
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::fprintf(stderr, "sdrnode: node %u (%s[%d]) listening on %s:%u\n",
               config.node_id, NodeKindName(kind), index,
               config.listen_host.c_str(), env.listen_port());

  const int64_t stats_s = flags.GetInt("stats_interval");
  std::function<void()> stats_tick;  // re-arms itself
  if (stats_s > 0) {
    stats_tick = [&] {
      JsonValue snapshot =
          NodeReport(env, plan, kind, index, roles, sink.get());
      std::printf("%s\n", snapshot.Dump().c_str());
      std::fflush(stdout);
      env.ScheduleAfter(stats_s * kSecond, [&] { stats_tick(); });
    };
    env.ScheduleAfter(stats_s * kSecond, [&] { stats_tick(); });
  }

  env.Run();  // until SIGINT/SIGTERM -> RequestStop

  JsonValue report = NodeReport(env, plan, kind, index, roles, sink.get());
  const std::string dump = report.Dump(2) + "\n";
  const std::string out_path = flags.GetString("out");
  if (out_path.empty()) {
    std::printf("%s", dump.c_str());
  } else if (!WriteFileString(out_path, dump)) {
    return 1;
  }
  return 0;
}
