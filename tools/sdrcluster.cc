// sdrcluster — stand up a full secure-data-replication deployment as real
// OS processes on localhost, run it for a while, tear it down cleanly, and
// assert the protocol outcomes from the per-node JSON reports.
//
// What it does, in order:
//   1. derives the roster from (seed, counts) exactly like every sdrnode
//      process will (BuildDeployment),
//   2. probes a free loopback port per node and writes one sdrnode config
//      file per process into --workdir (full-mesh peer lists),
//   3. fork/execs one sdrnode per roster entry — directory, masters,
//      auditors, slaves first; clients carry a start delay so the serving
//      fleet finishes dialing before the first lookup goes out,
//   4. lets the cluster run for --seconds wall seconds (watching for early
//      child deaths),
//   5. SIGTERMs everyone (each sdrnode writes its final report on the way
//      out), reaps with a timeout, SIGKILLs stragglers,
//   6. reads the reports back and asserts: reads were accepted; with an
//      injected liar (--liar_index), the lie was caught — the liar's node
//      id appears in a master's excluded_nodes, or an auditor/double-check
//      mismatch fired; every child exited cleanly.
//
// Exit status 0 iff all assertions hold — CI runs this as the real-transport
// smoke. Example:
//   ./build/tools/sdrcluster --nodes 3 --clients 2 --seconds 8
//       --liar_index 0 --lie_probability 0.5 --workdir /tmp/sdr.smoke
#include <arpa/inet.h>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "src/runtime/deployment.h"
#include "src/util/flags.h"
#include "src/util/json.h"

using namespace sdr;

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

void OnSignal(int) { g_interrupted = 1; }

int64_t NowRealtimeUs() {
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

void SleepMs(int64_t ms) {
  timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (ms % 1000) * 1000000;
  nanosleep(&ts, nullptr);
}

// Binds an ephemeral loopback port, reads it back, and releases it. The
// classic probe race (someone else grabbing the port before the child
// binds) is acceptable on a CI loopback; sdrnode fails loudly if it loses.
uint16_t ProbeFreePort() {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return 0;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  uint16_t port = 0;
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
    socklen_t len = sizeof addr;
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      port = ntohs(addr.sin_port);
    }
  }
  close(fd);
  return port;
}

bool WriteFileString(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  size_t n = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return n == data.size();
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

// util/json is a writer, not a parser; the reports are byte-stable
// `"key": value` dumps, so a text scan for the first occurrence is exact.
bool FindJsonInt(const std::string& text, const std::string& key,
                 int64_t* out) {
  std::string needle = "\"" + key + "\": ";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtoll(text.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

int64_t JsonIntOr(const std::string& text, const std::string& key,
                  int64_t fallback) {
  int64_t v = fallback;
  FindJsonInt(text, key, &v);
  return v;
}

// Scans the integers of `"key": [a, b, ...]` for `want`.
bool JsonArrayContains(const std::string& text, const std::string& key,
                       int64_t want) {
  std::string needle = "\"" + key + "\": [";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  const char* p = text.c_str() + pos + needle.size();
  while (*p != '\0' && *p != ']') {
    char* end = nullptr;
    long long v = std::strtoll(p, &end, 10);
    if (end == p) {
      ++p;
      continue;
    }
    if (v == want) {
      return true;
    }
    p = end;
  }
  return false;
}

struct Child {
  NodeId node_id = kInvalidNode;
  std::string role;
  pid_t pid = -1;
  std::string config_path;
  std::string report_path;
  bool exited = false;
  int status = 0;
};

std::string DirOfProgram(const char* argv0) {
  std::string path(argv0);
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) {
    return ".";
  }
  return path.substr(0, slash);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Define("nodes", "3", "number of slave nodes (total, across masters)")
      .Define("masters", "1", "number of masters")
      .Define("auditors", "1", "number of auditors")
      .Define("clients", "2", "number of clients")
      .Define("seconds", "8", "wall-clock seconds to run the workload")
      .Define("seed", "1", "deployment seed (roster, keys, corpus)")
      .Define("items", "50", "catalogue size")
      .Define("liar_index", "-1", "slave index that lies (-1 = honest run)")
      .Define("lie_probability", "0.5", "lie rate for the lying slave")
      .Define("think_ms", "50", "client think time between operations")
      .Define("write_fraction", "0.05", "fraction of client ops that write")
      .Define("max_latency_ms", "2000", "freshness bound / write spacing")
      .Define("keepalive_ms", "500", "keep-alive period")
      .Define("double_check_p", "0.05", "double-check probability")
      .Define("start_delay_ms", "500", "client start delay after launch")
      .Define("stats_interval", "0", "per-node periodic stats dump seconds")
      .Define("workdir", "",
              "directory for configs + reports (default /tmp/sdrcluster.PID)")
      .Define("sdrnode", "",
              "path to the sdrnode binary (default: next to sdrcluster)")
      .Define("json", "false", "emit the aggregate summary as JSON");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  DeploymentConfig dc;
  dc.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  dc.num_masters = static_cast<int>(flags.GetInt("masters"));
  dc.num_auditors = static_cast<int>(flags.GetInt("auditors"));
  int total_slaves = static_cast<int>(flags.GetInt("nodes"));
  if (dc.num_masters < 1 || total_slaves < dc.num_masters) {
    std::fprintf(stderr, "sdrcluster: need --nodes >= --masters >= 1\n");
    return 1;
  }
  dc.slaves_per_master = total_slaves / dc.num_masters;
  dc.num_clients = static_cast<int>(flags.GetInt("clients"));
  dc.corpus.n_items = static_cast<size_t>(flags.GetInt("items"));
  dc.params.max_latency = flags.GetInt("max_latency_ms") * kMillisecond;
  dc.params.keepalive_period = flags.GetInt("keepalive_ms") * kMillisecond;
  dc.params.double_check_probability = flags.GetDouble("double_check_p");
  dc.client_think_time = flags.GetInt("think_ms") * kMillisecond;
  dc.client_write_fraction = flags.GetDouble("write_fraction");

  const int liar_index = static_cast<int>(flags.GetInt("liar_index"));
  const double lie_probability = flags.GetDouble("lie_probability");
  const int64_t seconds = flags.GetInt("seconds");
  const bool emit_json = flags.GetBool("json");

  DeploymentPlan plan = BuildDeployment(dc);
  if (liar_index >= static_cast<int>(plan.slave_ids.size())) {
    std::fprintf(stderr, "sdrcluster: --liar_index %d but only %zu slaves\n",
                 liar_index, plan.slave_ids.size());
    return 1;
  }

  std::string workdir = flags.GetString("workdir");
  if (workdir.empty()) {
    workdir = "/tmp/sdrcluster." + std::to_string(getpid());
  }
  if (mkdir(workdir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "sdrcluster: cannot create %s\n", workdir.c_str());
    return 1;
  }

  std::string sdrnode = flags.GetString("sdrnode");
  if (sdrnode.empty()) {
    sdrnode = DirOfProgram(argv[0]) + "/sdrnode";
  }
  if (access(sdrnode.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "sdrcluster: sdrnode binary not found at %s\n",
                 sdrnode.c_str());
    return 1;
  }

  // Roster in launch order: servers first, clients last.
  std::vector<NodeId> roster;
  roster.push_back(plan.directory_id);
  for (NodeId id : plan.master_ids) roster.push_back(id);
  for (NodeId id : plan.auditor_ids) roster.push_back(id);
  for (NodeId id : plan.slave_ids) roster.push_back(id);
  for (NodeId id : plan.client_ids) roster.push_back(id);

  std::map<NodeId, uint16_t> ports;
  for (NodeId id : roster) {
    uint16_t port = ProbeFreePort();
    if (port == 0) {
      std::fprintf(stderr, "sdrcluster: cannot probe a free port\n");
      return 1;
    }
    ports[id] = port;
  }

  const int64_t epoch_us = NowRealtimeUs();
  const int64_t client_delay_ms = flags.GetInt("start_delay_ms");

  std::vector<Child> children;
  for (NodeId id : roster) {
    NodeConfig nc;
    nc.node_id = id;
    nc.deployment = dc;
    nc.liar_index = liar_index;
    nc.lie_probability = lie_probability;
    nc.epoch_us = epoch_us;
    nc.start_delay_ms =
        plan.KindOf(id) == NodeKind::kClient ? client_delay_ms : 0;
    nc.listen_host = "127.0.0.1";
    nc.listen_port = ports[id];
    for (NodeId peer : roster) {
      if (peer != id) {
        nc.peers.push_back({peer, "127.0.0.1", ports[peer]});
      }
    }

    Child child;
    child.node_id = id;
    child.role = NodeKindName(plan.KindOf(id));
    child.config_path =
        workdir + "/node" + std::to_string(id) + ".conf";
    child.report_path =
        workdir + "/node" + std::to_string(id) + ".json";
    if (!WriteFileString(child.config_path, FormatNodeConfig(nc))) {
      std::fprintf(stderr, "sdrcluster: cannot write %s\n",
                   child.config_path.c_str());
      return 1;
    }
    children.push_back(std::move(child));
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  const std::string stats_arg =
      "--stats_interval=" + std::to_string(flags.GetInt("stats_interval"));
  for (Child& child : children) {
    pid_t pid = fork();
    if (pid < 0) {
      std::fprintf(stderr, "sdrcluster: fork failed\n");
      g_interrupted = 1;
      break;
    }
    if (pid == 0) {
      std::string config_arg = "--config=" + child.config_path;
      std::string out_arg = "--out=" + child.report_path;
      execl(sdrnode.c_str(), sdrnode.c_str(), config_arg.c_str(),
            out_arg.c_str(), stats_arg.c_str(), (char*)nullptr);
      std::fprintf(stderr, "sdrcluster: exec %s failed\n", sdrnode.c_str());
      _exit(127);
    }
    child.pid = pid;
  }

  std::printf("sdrcluster: %zu processes up (%d masters, %d auditors, "
              "%d slaves, %d clients), running %llds, workdir %s\n",
              children.size(), dc.num_masters, dc.num_auditors, total_slaves,
              dc.num_clients, static_cast<long long>(seconds),
              workdir.c_str());

  // Run phase: wall-clock wait, watching for early deaths.
  bool early_death = false;
  const int64_t deadline_ms = seconds * 1000;
  for (int64_t elapsed = 0;
       elapsed < deadline_ms && !g_interrupted && !early_death;
       elapsed += 100) {
    SleepMs(100);
    for (Child& child : children) {
      if (child.pid <= 0 || child.exited) {
        continue;
      }
      int status = 0;
      if (waitpid(child.pid, &status, WNOHANG) == child.pid) {
        child.exited = true;
        child.status = status;
        std::fprintf(stderr,
                     "sdrcluster: node %u (%s) died early (status %d)\n",
                     child.node_id, child.role.c_str(), status);
        early_death = true;
      }
    }
  }

  // Teardown: SIGTERM -> graceful report write -> reap; SIGKILL stragglers.
  for (Child& child : children) {
    if (child.pid > 0 && !child.exited) {
      kill(child.pid, SIGTERM);
    }
  }
  for (int64_t waited = 0; waited < 10000; waited += 50) {
    bool all_done = true;
    for (Child& child : children) {
      if (child.pid <= 0 || child.exited) {
        continue;
      }
      int status = 0;
      if (waitpid(child.pid, &status, WNOHANG) == child.pid) {
        child.exited = true;
        child.status = status;
      } else {
        all_done = false;
      }
    }
    if (all_done) {
      break;
    }
    SleepMs(50);
  }
  for (Child& child : children) {
    if (child.pid > 0 && !child.exited) {
      std::fprintf(stderr, "sdrcluster: node %u unresponsive, SIGKILL\n",
                   child.node_id);
      kill(child.pid, SIGKILL);
      waitpid(child.pid, &child.status, 0);
      child.exited = true;
      child.status = -1;  // counts as unclean
    }
  }

  // Verdicts from the per-node reports.
  bool all_clean = !early_death;
  int64_t reads_issued = 0, reads_accepted = 0, writes_committed = 0;
  int64_t double_check_mismatches = 0, mismatches_found = 0;
  int64_t slaves_excluded = 0, lies_told = 0;
  bool liar_excluded_by_id = false;
  const NodeId liar_node =
      liar_index >= 0 ? plan.slave_ids[liar_index] : kInvalidNode;
  JsonValue per_node = JsonValue::Array();
  for (Child& child : children) {
    bool clean = child.exited && WIFEXITED(child.status) &&
                 WEXITSTATUS(child.status) == 0;
    std::string report;
    bool have_report = ReadFileToString(child.report_path, &report);
    if (!clean || !have_report) {
      std::fprintf(stderr, "sdrcluster: node %u (%s): %s\n", child.node_id,
                   child.role.c_str(),
                   !clean ? "unclean exit" : "missing report");
      all_clean = false;
    }
    if (have_report) {
      reads_issued += JsonIntOr(report, "reads_issued", 0);
      reads_accepted += JsonIntOr(report, "reads_accepted", 0);
      writes_committed +=
          child.role == "client" ? JsonIntOr(report, "writes_committed", 0)
                                 : 0;
      double_check_mismatches +=
          JsonIntOr(report, "double_check_mismatches", 0);
      mismatches_found += JsonIntOr(report, "mismatches_found", 0);
      slaves_excluded += JsonIntOr(report, "slaves_excluded", 0);
      lies_told += JsonIntOr(report, "lies_told", 0);
      if (liar_node != kInvalidNode &&
          JsonArrayContains(report, "excluded_nodes",
                            static_cast<int64_t>(liar_node))) {
        liar_excluded_by_id = true;
      }
    }
    JsonValue j = JsonValue::Object();
    j["node"] = static_cast<int64_t>(child.node_id);
    j["role"] = child.role;
    j["clean_exit"] = clean;
    j["report"] = child.report_path;
    per_node.Append(std::move(j));
  }

  const bool made_progress = reads_accepted > 0;
  // A lie is "caught" when the liar was excluded by id, or any detection
  // counter fired (audit mismatch / double-check mismatch / exclusion).
  const bool liar_caught =
      liar_index < 0 || liar_excluded_by_id || mismatches_found > 0 ||
      double_check_mismatches > 0 || slaves_excluded > 0;
  const bool pass = all_clean && made_progress && liar_caught;

  if (emit_json) {
    JsonValue root = JsonValue::Object();
    root["pass"] = pass;
    root["all_clean_exits"] = all_clean;
    root["reads_issued"] = reads_issued;
    root["reads_accepted"] = reads_accepted;
    root["writes_committed"] = writes_committed;
    root["lies_told"] = lies_told;
    root["double_check_mismatches"] = double_check_mismatches;
    root["auditor_mismatches"] = mismatches_found;
    root["slaves_excluded"] = slaves_excluded;
    root["liar_node"] = static_cast<int64_t>(liar_node);
    root["liar_excluded_by_id"] = liar_excluded_by_id;
    root["workdir"] = workdir;
    root["nodes"] = std::move(per_node);
    std::printf("%s\n", root.Dump(2).c_str());
  } else {
    std::printf("sdrcluster: reads issued=%lld accepted=%lld  "
                "writes=%lld  lies=%lld  detections: audit=%lld "
                "double-check=%lld excluded=%lld%s\n",
                static_cast<long long>(reads_issued),
                static_cast<long long>(reads_accepted),
                static_cast<long long>(writes_committed),
                static_cast<long long>(lies_told),
                static_cast<long long>(mismatches_found),
                static_cast<long long>(double_check_mismatches),
                static_cast<long long>(slaves_excluded),
                liar_node != kInvalidNode
                    ? (liar_excluded_by_id ? "  [liar excluded]"
                                           : "  [liar NOT excluded]")
                    : "");
    std::printf("sdrcluster: %s\n", pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}
