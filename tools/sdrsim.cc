// sdrsim — run a configurable secure-data-replication simulation from the
// command line and print a full metrics report.
//
// Examples:
//   # default honest cluster, 60 virtual seconds
//   ./build/tools/sdrsim
//
//   # a hostile CDN: every third slave lies on 10% of reads
//   ./build/tools/sdrsim --liar_every=3 --lie_probability=0.1 --seconds=120
//
//   # stress the auditor with an expensive mix and no cache
//   ./build/tools/sdrsim --grep_weight=0.4 --auditor_cache=false
#include <algorithm>
#include <cstdio>

#include "src/chaos/runner.h"
#include "src/core/cluster.h"
#include "src/trace/export.h"
#include "src/util/flags.h"
#include "src/util/json.h"

using namespace sdr;

namespace {

bool WriteFileBytes(const std::string& path, const Bytes& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  size_t n = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (n != data.size()) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

bool WriteFileString(const std::string& path, const std::string& data) {
  return WriteFileBytes(path, Bytes(data.begin(), data.end()));
}

void PrintReport(Cluster& cluster) {
  std::printf("\n--- simulation report (t = %.1f virtual seconds) ---\n",
              static_cast<double>(cluster.sim().Now()) / kSecond);

  auto totals = cluster.ComputeTotals();
  std::printf("clients:\n");
  std::printf("  reads: issued=%llu accepted=%llu stale-rejected=%llu "
              "retries=%llu\n",
              (unsigned long long)totals.reads_issued,
              (unsigned long long)totals.reads_accepted,
              (unsigned long long)totals.reads_rejected_stale,
              (unsigned long long)totals.retries);
  std::printf("  double-checks=%llu mismatches(caught red-handed)=%llu\n",
              (unsigned long long)totals.double_checks_sent,
              (unsigned long long)totals.double_check_mismatches);
  std::printf("  writes committed=%llu  pledges forwarded=%llu\n",
              (unsigned long long)totals.writes_committed_clients,
              (unsigned long long)totals.pledges_forwarded);
  if (cluster.config().params.fork_check_enabled) {
    std::printf("  fork check: vv-exchanges=%llu forks-detected=%llu "
                "evidence-chains=%llu\n",
                (unsigned long long)totals.vv_exchanges,
                (unsigned long long)totals.forks_detected,
                (unsigned long long)totals.evidence_chains_emitted);
  }
  if (cluster.config().track_ground_truth) {
    std::printf("  ground truth: checked=%llu WRONG-ACCEPTED=%llu\n",
                (unsigned long long)cluster.accepted_checked(),
                (unsigned long long)cluster.accepted_wrong());
  }
  std::printf("  read latency: p50=%.1fms p99=%.1fms (client 0)\n",
              cluster.client(0).metrics().read_latency_us.Median() / 1000.0,
              cluster.client(0).metrics().read_latency_us.P99() / 1000.0);

  // Scale-out counters only exist when sharding or group commit is on, so
  // classic reports stay byte-identical.
  if (cluster.num_shards() > 1 || cluster.config().params.commit_batch > 1) {
    std::printf("scale-out:\n");
    std::printf("  shards=%d  placement cache: hits=%llu misses=%llu\n",
                cluster.num_shards(),
                (unsigned long long)totals.placement_cache_hits,
                (unsigned long long)totals.placement_cache_misses);
    std::printf("  multi-shard: reads=%llu (legs %llu/%llu) writes=%llu "
                "(legs committed=%llu)\n",
                (unsigned long long)totals.multi_shard_reads,
                (unsigned long long)totals.shard_subreads_accepted,
                (unsigned long long)totals.shard_subreads_issued,
                (unsigned long long)totals.multi_shard_writes,
                (unsigned long long)totals.shard_subwrites_committed);
    std::printf("  group commit: writes_batched=%llu batches=%llu "
                "batch-updates=%llu commit-sigs=%llu (sigs/write=%.2f)\n",
                (unsigned long long)totals.writes_batched,
                (unsigned long long)totals.batches_committed,
                (unsigned long long)totals.state_update_batches,
                (unsigned long long)totals.commit_signatures,
                totals.writes_committed_masters == 0
                    ? 0.0
                    : static_cast<double>(totals.commit_signatures) /
                          static_cast<double>(totals.writes_committed_masters));
    for (int sh = 0; sh < cluster.num_shards(); ++sh) {
      uint64_t version = 0, writes = 0, served = 0, audited = 0;
      for (int i = 0; i < cluster.masters_per_shard(); ++i) {
        const Master& m = cluster.master(sh * cluster.masters_per_shard() + i);
        version = std::max(version, m.version());
        writes += m.metrics().writes_committed;
      }
      for (int i = 0; i < cluster.slaves_per_shard(); ++i) {
        served += cluster.slave(sh * cluster.slaves_per_shard() + i)
                      .metrics().reads_served;
      }
      for (int i = 0; i < cluster.auditors_per_shard(); ++i) {
        audited += cluster.auditor(sh * cluster.auditors_per_shard() + i)
                       .metrics().pledges_audited;
      }
      std::printf("  shard[%d]: version=%llu writes=%llu reads-served=%llu "
                  "audited=%llu\n",
                  sh, (unsigned long long)version, (unsigned long long)writes,
                  (unsigned long long)served, (unsigned long long)audited);
    }
  }
  if (ClientFleet* fleet = cluster.fleet()) {
    const ClientFleet::Metrics& fm = fleet->metrics();
    std::printf("fleet: %zu simulated clients\n", fleet->num_clients());
    std::printf("  reads: issued=%llu accepted=%llu failed=%llu legs=%llu\n",
                (unsigned long long)fm.reads_issued,
                (unsigned long long)fm.reads_accepted,
                (unsigned long long)fm.reads_failed,
                (unsigned long long)fm.subreads_sent);
    std::printf("  writes: issued=%llu committed=%llu failed=%llu  "
                "pledges forwarded=%llu\n",
                (unsigned long long)fm.writes_issued,
                (unsigned long long)fm.writes_committed,
                (unsigned long long)fm.writes_failed,
                (unsigned long long)fm.pledges_forwarded);
    std::printf("  read rtt: p50=%.1fms p99=%.1fms\n",
                fm.read_rtt_us.Median() / 1000.0,
                fm.read_rtt_us.P99() / 1000.0);
  }

  std::printf("masters:\n");
  for (int m = 0; m < cluster.num_masters(); ++m) {
    const MasterMetrics& mm = cluster.master(m).metrics();
    std::printf("  master[%d] node%u: version=%llu writes=%llu dchecks=%llu "
                "lies-found=%llu excluded=%llu work=%llu\n",
                m, cluster.master(m).id(),
                (unsigned long long)cluster.master(m).version(),
                (unsigned long long)mm.writes_committed,
                (unsigned long long)mm.double_checks_served,
                (unsigned long long)mm.double_check_lies_found,
                (unsigned long long)mm.slaves_excluded,
                (unsigned long long)mm.work_units_executed);
  }
  std::printf("slaves:\n");
  for (int s = 0; s < cluster.num_slaves(); ++s) {
    const SlaveMetrics& sm = cluster.slave(s).metrics();
    std::printf("  slave[%d] node%u: v=%llu served=%llu declined=%llu "
                "lies=%llu work=%llu%s\n",
                s, cluster.slave(s).id(),
                (unsigned long long)cluster.slave(s).applied_version(),
                (unsigned long long)sm.reads_served,
                (unsigned long long)sm.reads_declined_stale,
                (unsigned long long)sm.lies_told,
                (unsigned long long)sm.work_units_executed,
                cluster.master(0).IsExcluded(cluster.slave(s).id()) ||
                        (cluster.num_masters() > 1 &&
                         cluster.master(1).IsExcluded(cluster.slave(s).id()))
                    ? "  [EXCLUDED]"
                    : "");
  }
  std::printf("auditors:\n");
  for (int a = 0; a < cluster.num_auditors(); ++a) {
    const AuditorMetrics& am = cluster.auditor(a).metrics();
    std::printf("  auditor[%d] node%u: received=%llu audited=%llu "
                "cache-hits=%llu mismatches=%llu notices=%llu lag=%llu "
                "backlog=%zu pruned=%llu bad-sig=%llu\n",
                a, cluster.auditor(a).id(),
                (unsigned long long)am.pledges_received,
                (unsigned long long)am.pledges_audited,
                (unsigned long long)am.cache_hits,
                (unsigned long long)am.mismatches_found,
                (unsigned long long)am.bad_read_notices_sent,
                (unsigned long long)cluster.auditor(a).version_lag(),
                cluster.auditor(a).backlog(),
                (unsigned long long)am.pledges_version_pruned,
                (unsigned long long)am.pledges_bad_signature);
    std::printf("    engine: deduped=%llu memo-hits=%llu memo-misses=%llu "
                "pool-work=%llu sig-evictions=%llu\n",
                (unsigned long long)am.pledges_deduped,
                (unsigned long long)am.reexec_memo_hits,
                (unsigned long long)am.reexec_memo_misses,
                (unsigned long long)am.audit_workers_busy,
                (unsigned long long)am.sig_cache_evictions);
  }
  std::printf("network: %llu messages sent, %llu delivered, %.1f MB\n",
              (unsigned long long)cluster.net().messages_sent(),
              (unsigned long long)cluster.net().messages_delivered(),
              static_cast<double>(cluster.net().bytes_sent()) / 1e6);
}

// Machine-readable report. JsonValue objects are std::map-backed, so keys
// emit sorted and the dump is byte-identical across runs with the same
// seed and flags — CI diffs these artifacts directly.
JsonValue JsonReport(Cluster& cluster, const ChaosController* controller) {
  JsonValue root = JsonValue::Object();
  root["virtual_seconds"] =
      static_cast<double>(cluster.sim().Now()) / kSecond;
  root["seed"] = cluster.config().seed;

  auto totals = cluster.ComputeTotals();
  JsonValue& t = root["totals"];
  t["reads_issued"] = totals.reads_issued;
  t["reads_accepted"] = totals.reads_accepted;
  t["reads_rejected_stale"] = totals.reads_rejected_stale;
  t["retries"] = totals.retries;
  t["double_checks_sent"] = totals.double_checks_sent;
  t["double_check_mismatches"] = totals.double_check_mismatches;
  t["pledges_forwarded"] = totals.pledges_forwarded;
  t["writes_committed_clients"] = totals.writes_committed_clients;
  t["slave_work_units"] = totals.slave_work_units;
  t["master_work_units"] = totals.master_work_units;
  t["auditor_work_units"] = totals.auditor_work_units;
  t["slaves_excluded"] = totals.slaves_excluded;
  t["auditor_mismatches"] = totals.auditor_mismatches;
  t["lies_told"] = totals.lies_told;
  // Fork-consistency counters appear only when the subsystem is on, so
  // disabled-mode artifacts stay byte-identical to pre-forkcheck runs.
  if (cluster.config().params.fork_check_enabled) {
    t["forks_detected"] = totals.forks_detected;
    t["evidence_chains_emitted"] = totals.evidence_chains_emitted;
    t["vv_exchanges"] = totals.vv_exchanges;
  }
  // Scale-out counters appear only when sharding or group commit is on,
  // so classic artifacts stay byte-identical to pre-scale-out runs.
  if (cluster.num_shards() > 1 || cluster.config().params.commit_batch > 1) {
    t["writes_committed_masters"] = totals.writes_committed_masters;
    t["writes_batched"] = totals.writes_batched;
    t["batches_committed"] = totals.batches_committed;
    t["state_update_batches"] = totals.state_update_batches;
    t["commit_signatures"] = totals.commit_signatures;
    t["placement_cache_hits"] = totals.placement_cache_hits;
    t["placement_cache_misses"] = totals.placement_cache_misses;
    t["multi_shard_reads"] = totals.multi_shard_reads;
    t["multi_shard_writes"] = totals.multi_shard_writes;
    t["shard_subreads_issued"] = totals.shard_subreads_issued;
    t["shard_subreads_accepted"] = totals.shard_subreads_accepted;
    t["shard_subwrites_committed"] = totals.shard_subwrites_committed;
    JsonValue shards = JsonValue::Array();
    for (int sh = 0; sh < cluster.num_shards(); ++sh) {
      uint64_t version = 0, writes = 0, served = 0, audited = 0;
      for (int i = 0; i < cluster.masters_per_shard(); ++i) {
        const Master& m =
            cluster.master(sh * cluster.masters_per_shard() + i);
        version = std::max(version, m.version());
        writes += m.metrics().writes_committed;
      }
      for (int i = 0; i < cluster.slaves_per_shard(); ++i) {
        served += cluster.slave(sh * cluster.slaves_per_shard() + i)
                      .metrics().reads_served;
      }
      for (int i = 0; i < cluster.auditors_per_shard(); ++i) {
        audited += cluster.auditor(sh * cluster.auditors_per_shard() + i)
                       .metrics().pledges_audited;
      }
      JsonValue j = JsonValue::Object();
      j["index"] = sh;
      j["version"] = version;
      j["writes_committed"] = writes;
      j["reads_served"] = served;
      j["pledges_audited"] = audited;
      shards.Append(std::move(j));
    }
    root["shards"] = std::move(shards);
  }
  if (ClientFleet* fleet = cluster.fleet()) {
    const ClientFleet::Metrics& fm = fleet->metrics();
    JsonValue& f = root["fleet"];
    f["num_clients"] = fleet->num_clients();
    f["reads_issued"] = fm.reads_issued;
    f["reads_accepted"] = fm.reads_accepted;
    f["reads_failed"] = fm.reads_failed;
    f["subreads_sent"] = fm.subreads_sent;
    f["writes_issued"] = fm.writes_issued;
    f["writes_committed"] = fm.writes_committed;
    f["writes_failed"] = fm.writes_failed;
    f["pledges_forwarded"] = fm.pledges_forwarded;
    f["sig_cache_hits"] = fm.sig_cache_hits;
    f["sig_cache_misses"] = fm.sig_cache_misses;
    f["read_rtt_p50_us"] = fm.read_rtt_us.Median();
    f["read_rtt_p99_us"] = fm.read_rtt_us.P99();
    f["write_rtt_p50_us"] = fm.write_rtt_us.Median();
    f["write_rtt_p99_us"] = fm.write_rtt_us.P99();
  }
  if (cluster.config().track_ground_truth) {
    JsonValue& g = root["ground_truth"];
    g["accepted_checked"] = cluster.accepted_checked();
    g["accepted_wrong"] = cluster.accepted_wrong();
    g["accepted_uncheckable"] = cluster.accepted_uncheckable();
  }

  const bool scale_out = cluster.num_shards() > 1 ||
                         cluster.config().params.commit_batch > 1;
  JsonValue clients = JsonValue::Array();
  uint64_t cache_hits = 0, cache_misses = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    const ClientMetrics& cm = cluster.client(c).metrics();
    JsonValue j = JsonValue::Object();
    j["index"] = c;
    j["node"] = (int64_t)cluster.client(c).id();
    if (scale_out) {
      j["placement_cache_hits"] = cm.placement_cache_hits;
      j["placement_cache_misses"] = cm.placement_cache_misses;
      j["multi_shard_reads"] = cm.multi_shard_reads;
      j["multi_shard_writes"] = cm.multi_shard_writes;
      j["merged_token_age_p50_us"] = cm.merged_token_age_us.Median();
      j["merged_token_age_p99_us"] = cm.merged_token_age_us.P99();
    }
    j["reads_issued"] = cm.reads_issued;
    j["reads_accepted"] = cm.reads_accepted;
    j["reads_rejected_stale"] = cm.reads_rejected_stale;
    j["reads_rejected_bad_sig"] = cm.reads_rejected_bad_sig;
    j["reads_rejected_hash"] = cm.reads_rejected_hash;
    j["double_checks_sent"] = cm.double_checks_sent;
    j["double_check_mismatches"] = cm.double_check_mismatches;
    j["writes_committed"] = cm.writes_committed;
    j["bad_read_notices"] = cm.bad_read_notices;
    j["sig_cache_hits"] = cm.sig_cache_hits;
    j["sig_cache_misses"] = cm.sig_cache_misses;
    j["read_latency_p50_us"] = cm.read_latency_us.Median();
    j["read_latency_p99_us"] = cm.read_latency_us.P99();
    cache_hits += cm.sig_cache_hits;
    cache_misses += cm.sig_cache_misses;
    clients.Append(std::move(j));
  }
  root["clients"] = std::move(clients);

  JsonValue masters = JsonValue::Array();
  for (int m = 0; m < cluster.num_masters(); ++m) {
    const MasterMetrics& mm = cluster.master(m).metrics();
    JsonValue j = JsonValue::Object();
    j["index"] = m;
    j["node"] = (int64_t)cluster.master(m).id();
    j["version"] = cluster.master(m).version();
    j["writes_committed"] = mm.writes_committed;
    j["double_checks_served"] = mm.double_checks_served;
    j["double_check_lies_found"] = mm.double_check_lies_found;
    j["slaves_excluded"] = mm.slaves_excluded;
    j["work_units"] = mm.work_units_executed;
    j["sig_cache_hits"] = mm.sig_cache_hits;
    j["sig_cache_misses"] = mm.sig_cache_misses;
    cache_hits += mm.sig_cache_hits;
    cache_misses += mm.sig_cache_misses;
    masters.Append(std::move(j));
  }
  root["masters"] = std::move(masters);

  JsonValue slaves = JsonValue::Array();
  for (int s = 0; s < cluster.num_slaves(); ++s) {
    const SlaveMetrics& sm = cluster.slave(s).metrics();
    JsonValue j = JsonValue::Object();
    j["index"] = s;
    j["node"] = (int64_t)cluster.slave(s).id();
    j["applied_version"] = cluster.slave(s).applied_version();
    j["reads_served"] = sm.reads_served;
    j["reads_declined_stale"] = sm.reads_declined_stale;
    j["lies_told"] = sm.lies_told;
    j["consistent_lies_told"] = sm.consistent_lies_told;
    j["work_units"] = sm.work_units_executed;
    j["sig_cache_hits"] = sm.sig_cache_hits;
    j["sig_cache_misses"] = sm.sig_cache_misses;
    j["excluded"] =
        cluster.master(0).IsExcluded(cluster.slave(s).id()) ||
        (cluster.num_masters() > 1 &&
         cluster.master(1).IsExcluded(cluster.slave(s).id()));
    cache_hits += sm.sig_cache_hits;
    cache_misses += sm.sig_cache_misses;
    slaves.Append(std::move(j));
  }
  root["slaves"] = std::move(slaves);

  JsonValue auditors = JsonValue::Array();
  for (int a = 0; a < cluster.num_auditors(); ++a) {
    const AuditorMetrics& am = cluster.auditor(a).metrics();
    JsonValue j = JsonValue::Object();
    j["index"] = a;
    j["node"] = (int64_t)cluster.auditor(a).id();
    j["pledges_received"] = am.pledges_received;
    j["pledges_audited"] = am.pledges_audited;
    j["pledges_version_pruned"] = am.pledges_version_pruned;
    j["pledges_bad_signature"] = am.pledges_bad_signature;
    j["mismatches_found"] = am.mismatches_found;
    j["bad_read_notices_sent"] = am.bad_read_notices_sent;
    j["cache_hits"] = am.cache_hits;
    j["pledges_deduped"] = am.pledges_deduped;
    j["reexec_memo_hits"] = am.reexec_memo_hits;
    j["reexec_memo_misses"] = am.reexec_memo_misses;
    j["audit_workers_busy"] = am.audit_workers_busy;
    j["verify_batches"] = am.verify_batches;
    j["sigs_batch_verified"] = am.sigs_batch_verified;
    j["sig_cache_hits"] = am.sig_cache_hits;
    j["sig_cache_misses"] = am.sig_cache_misses;
    j["sig_cache_evictions"] = am.sig_cache_evictions;
    j["version_lag"] = cluster.auditor(a).version_lag();
    j["backlog"] = cluster.auditor(a).backlog();
    cache_hits += am.sig_cache_hits;
    cache_misses += am.sig_cache_misses;
    auditors.Append(std::move(j));
  }
  root["auditors"] = std::move(auditors);

  // Aggregate view of the VerifyCache across every role.
  JsonValue& vc = root["verify_cache"];
  vc["hits"] = cache_hits;
  vc["misses"] = cache_misses;

  JsonValue& net = root["network"];
  net["messages_sent"] = cluster.net().messages_sent();
  net["messages_delivered"] = cluster.net().messages_delivered();
  net["bytes_sent"] = cluster.net().bytes_sent();
  net["messages_dropped"] = cluster.net().messages_dropped();
  net["dropped_node"] = cluster.net().messages_dropped_node();
  net["dropped_partition"] = cluster.net().messages_dropped_partition();
  net["dropped_loss"] = cluster.net().messages_dropped_loss();

  // With --trace the run-wide latency histograms (read RTT, audit lag,
  // detection latency, queue wait) merge into the report; keys stay sorted
  // so the dump remains byte-stable per seed.
  if (TraceSink* sink = cluster.trace()) {
    root["histograms"] = HistogramSummaryJson(sink->MergedHistograms());
    JsonValue& tr = root["trace"];
    tr["events"] = sink->total_emitted();
    tr["dropped"] = sink->dropped();
  }

  if (controller != nullptr) {
    JsonValue verdicts = JsonValue::Array();
    for (const auto& checker : controller->checkers()) {
      JsonValue j = JsonValue::Object();
      j["name"] = checker->name();
      j["pass"] = !checker->violated();
      if (checker->violated()) {
        j["violation"] = checker->violation()->ToString();
      }
      verdicts.Append(std::move(j));
    }
    root["chaos_invariants"] = std::move(verdicts);
  }
  return root;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Define("seed", "1", "simulation seed")
      .Define("seconds", "60", "virtual seconds to run")
      .Define("masters", "2", "number of serving masters")
      .Define("auditors", "1", "number of auditors")
      .Define("slaves_per_master", "2", "slaves per master")
      .Define("clients", "4", "number of clients")
      .Define("items", "200", "catalogue size (documents = 3x)")
      .Define("shards", "1",
              "keyspace shards, each with its own master group + slaves + "
              "auditors and an independent version sequence (1 = the "
              "paper's single group, byte-identical)")
      .Define("commit_batch", "1",
              "master-side group commit: writes bundled per broadcast "
              "(1 = the paper's one-write-per-commit path, byte-identical)")
      .Define("commit_window_us", "10000",
              "max time a write waits for its bundle to fill "
              "(with --commit_batch > 1)")
      .Define("fleet_clients", "0",
              "simulated open-loop clients multiplexed onto one fleet "
              "node (0 = none; see src/workload/fleet.h)")
      .Define("fleet_rps", "1.0", "per-fleet-client reads per second")
      .Define("fleet_write_fraction", "0.0",
              "fraction of fleet ops that write")
      .Define("max_latency_ms", "2000", "freshness bound / write spacing")
      .Define("keepalive_ms", "500", "keep-alive period")
      .Define("double_check_p", "0.05", "double-check probability")
      .Define("write_fraction", "0.02", "fraction of client ops that write")
      .Define("think_ms", "100", "client think time (closed loop)")
      .Define("liar_every", "0",
              "every Nth slave lies (0 = everyone honest)")
      .Define("lie_probability", "0.1", "lie rate for lying slaves")
      .Define("greedy_client", "false", "make client 0 greedy")
      .Define("policing", "false", "enable greedy-client policing")
      .Define("scheme", "ed25519", "ed25519 | hmac | null")
      .Define("link_ms", "5", "one-way link latency")
      .Define("grep_weight", "0.10", "query-mix weight of GREP")
      .Define("auditor_cache", "true", "auditor result cache")
      .Define("audit_jobs", "1",
              "host worker lanes for the auditor's re-execution engine "
              "(host CPU only; the report is byte-identical at any value)")
      .Define("audit_verify_cache", "1024",
              "auditor verify-dedup cache capacity (entries)")
      .Define("ground_truth", "true", "validate accepted reads")
      .Define("fork_check", "false",
              "enable the fork-consistency subsystem (signed version "
              "vectors on read replies, client gossip, auditor "
              "reconciliation; see src/forkcheck/)")
      .Define("vv_gossip_ms", "1000",
              "client version-vector gossip period (with --fork_check)")
      .Define("vv_fanout", "2",
              "gossip targets per round (with --fork_check)")
      .Define("evidence_out", "",
              "write collected fork-evidence chains as a verifiable "
              "bundle to this file (for sdrtrace --evidence)")
      .Define("scenario", "",
              "chaos scenario applied during the run (see docs/CHAOS.md)")
      .Define("chaos_cadence_ms", "250", "invariant-checking cadence")
      .Define("json", "false",
              "emit the report as deterministic JSON (sorted keys, "
              "byte-stable per seed) instead of the text report")
      .Define("trace", "false",
              "enable the tracing subsystem (adds histogram summaries to "
              "--json; implied by --trace_out / --trace_chrome)")
      .Define("trace_out", "",
              "write the binary trace (SDRT) to this file, for sdrtrace")
      .Define("trace_chrome", "",
              "write a Chrome trace_event JSON file (Perfetto-loadable)")
      .Define("trace_capacity", "1048576", "trace ring-buffer capacity")
      .Define("trace_sim_spans", "false",
              "also trace every simulator event dispatch (verbose)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  ClusterConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.num_masters = static_cast<int>(flags.GetInt("masters"));
  config.num_auditors = static_cast<int>(flags.GetInt("auditors"));
  config.slaves_per_master =
      static_cast<int>(flags.GetInt("slaves_per_master"));
  config.num_clients = static_cast<int>(flags.GetInt("clients"));
  config.num_shards = static_cast<int>(flags.GetInt("shards"));
  config.params.commit_batch =
      static_cast<uint32_t>(flags.GetInt("commit_batch"));
  config.params.commit_window =
      flags.GetInt("commit_window_us") * kMicrosecond;
  config.fleet_clients = static_cast<int>(flags.GetInt("fleet_clients"));
  config.fleet_reads_per_second = flags.GetDouble("fleet_rps");
  config.fleet_write_fraction = flags.GetDouble("fleet_write_fraction");
  config.corpus.n_items = static_cast<size_t>(flags.GetInt("items"));
  config.params.max_latency = flags.GetInt("max_latency_ms") * kMillisecond;
  config.params.keepalive_period = flags.GetInt("keepalive_ms") * kMillisecond;
  config.params.double_check_probability = flags.GetDouble("double_check_p");
  config.params.greedy_policing_enabled = flags.GetBool("policing");
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = flags.GetInt("think_ms") * kMillisecond;
  config.client_write_fraction = flags.GetDouble("write_fraction");
  config.default_link =
      LinkModel{flags.GetInt("link_ms") * kMillisecond,
                flags.GetInt("link_ms") * kMillisecond / 2, 0.0};
  config.mix.grep_weight = flags.GetDouble("grep_weight");
  config.auditor_use_cache = flags.GetBool("auditor_cache");
  config.audit_jobs = static_cast<int>(flags.GetInt("audit_jobs"));
  config.params.audit_verify_cache_entries =
      static_cast<uint32_t>(flags.GetInt("audit_verify_cache"));
  config.track_ground_truth = flags.GetBool("ground_truth");
  config.params.fork_check_enabled = flags.GetBool("fork_check");
  config.params.vv_gossip_period = flags.GetInt("vv_gossip_ms") * kMillisecond;
  config.params.vv_gossip_fanout =
      static_cast<uint32_t>(flags.GetInt("vv_fanout"));

  std::string scheme = flags.GetString("scheme");
  if (scheme == "hmac") {
    config.params.scheme = SignatureScheme::kHmacSha256;
  } else if (scheme == "null") {
    config.params.scheme = SignatureScheme::kNull;
  } else if (scheme == "ed25519") {
    config.params.scheme = SignatureScheme::kEd25519;
  } else {
    std::fprintf(stderr, "unknown --scheme: %s\n", scheme.c_str());
    return 1;
  }

  int liar_every = static_cast<int>(flags.GetInt("liar_every"));
  double lie_p = flags.GetDouble("lie_probability");
  if (liar_every > 0) {
    config.slave_behavior = [liar_every, lie_p](int index) {
      Slave::Behavior b;
      if (index % liar_every == 0) {
        b.lie_probability = lie_p;
      }
      return b;
    };
  }
  if (flags.GetBool("greedy_client")) {
    config.tweak_client = [](int index, Client::Options& opts) {
      if (index == 0) {
        opts.greedy = true;
      }
    };
  }

  const std::string trace_out = flags.GetString("trace_out");
  const std::string trace_chrome = flags.GetString("trace_chrome");
  config.trace.enabled = flags.GetBool("trace") || !trace_out.empty() ||
                         !trace_chrome.empty();
  config.trace.capacity =
      static_cast<size_t>(flags.GetInt("trace_capacity"));
  config.trace.sim_spans = flags.GetBool("trace_sim_spans");

  auto parsed = ParseScenario(flags.GetString("scenario"));
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad --scenario: %s\n",
                 parsed.error().message().c_str());
    return 1;
  }
  Scenario scenario = std::move(parsed).value();

  const bool emit_json = flags.GetBool("json");
  if (!emit_json) {
    std::printf("sdrsim: %d masters, %d auditors, %d slaves, %d clients, "
                "scheme=%s, %lld virtual seconds\n",
                config.num_masters, config.num_auditors,
                config.num_masters * config.slaves_per_master,
                config.num_clients, scheme.c_str(),
                static_cast<long long>(flags.GetInt("seconds")));
    // Echo the seed and every explicitly-set flag so the report alone is
    // enough to reproduce the run.
    std::printf("seed: %llu\n",
                static_cast<unsigned long long>(config.seed));
    for (const auto& [name, value] : flags.NonDefault()) {
      if (name == "audit_jobs") {
        continue;  // host-only knob; keep the report jobs-invariant
      }
      std::printf("  --%s=%s\n", name.c_str(), value.c_str());
    }
  }

  Cluster cluster(config);
  ChaosController controller(
      &cluster, scenario, DefaultCheckers(config),
      ChaosControllerOptions{flags.GetInt("chaos_cadence_ms") * kMillisecond});
  if (!scenario.empty()) {
    if (!emit_json) {
      std::printf("scenario: %s\n", scenario.ToString().c_str());
    }
    controller.Install();
  }
  cluster.RunFor(flags.GetInt("seconds") * kSecond);
  if (!scenario.empty()) {
    controller.Finish();
  }
  if (cluster.trace() != nullptr) {
    // One snapshot feeds both exporters so the files agree byte-for-byte
    // with each other on the same run.
    TraceData data = Snapshot(*cluster.trace());
    if (!trace_out.empty() &&
        !WriteFileBytes(trace_out, EncodeTrace(data))) {
      return 1;
    }
    if (!trace_chrome.empty() &&
        !WriteFileString(trace_chrome,
                         ChromeTraceJson(data).Dump() + "\n")) {
      return 1;
    }
  }
  const std::string evidence_out = flags.GetString("evidence_out");
  if (!evidence_out.empty()) {
    EvidenceBundle bundle;
    bundle.scheme = config.params.scheme;
    bundle.content_public_key = cluster.content().content_public_key;
    bundle.chains = cluster.fork_evidence();
    if (!WriteFileBytes(evidence_out, bundle.Encode())) {
      return 1;
    }
    if (!emit_json) {
      std::printf("evidence bundle: %zu chain(s) -> %s\n",
                  bundle.chains.size(), evidence_out.c_str());
    }
  }
  if (emit_json) {
    // Pure JSON on stdout: the whole report, flags echo included, so the
    // artifact alone reproduces the run.
    JsonValue root = JsonReport(cluster, scenario.empty() ? nullptr
                                                          : &controller);
    JsonValue fl = JsonValue::Object();
    for (const auto& [name, value] : flags.NonDefault()) {
      if (name == "audit_jobs") {
        continue;  // host-only knob; keep the artifact jobs-invariant
      }
      fl[name] = value;
    }
    root["flags"] = std::move(fl);
    std::printf("%s\n", root.Dump(2).c_str());
    return 0;
  }
  PrintReport(cluster);
  if (!scenario.empty()) {
    std::printf("chaos invariants:\n");
    for (const auto& checker : controller.checkers()) {
      if (checker->violated()) {
        std::printf("  %s: FAIL — %s\n", checker->name().c_str(),
                    checker->violation()->ToString().c_str());
      } else {
        std::printf("  %s: PASS\n", checker->name().c_str());
      }
    }
  }
  return 0;
}
