// sdrlint CLI. Usage: sdrlint [flags] <path>... — lints .h/.cc files under
// each path and exits nonzero when gate-failing findings remain (the CI
// gate). With --baseline only findings not in the baseline fail the gate.
#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  sdr::lint::RunOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: sdrlint [flags] <path>...\n"
          "  --baseline=FILE    suppress findings listed in FILE; fail only\n"
          "                     on new ones (and report fixed stale entries)\n"
          "  --json=FILE        write a machine-readable findings report\n"
          "  --update_baseline  rewrite --baseline FILE from this run\n"
          "Rules: R1 determinism, R2 ordered-output, R3 switch\n"
          "exhaustiveness over protocol enums, R4 serde pairing,\n"
          "R5 constant-time discipline, R6 thread confinement & lock\n"
          "discipline, R7 BytesView lifetime, R8 serde field-order\n"
          "symmetry. See docs/ANALYSIS.md.\n");
      return 0;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      opts.baseline_path = arg.substr(std::string("--baseline=").size());
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      opts.json_path = arg.substr(std::string("--json=").size());
      continue;
    }
    if (arg == "--update_baseline") {
      opts.update_baseline = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "sdrlint: unknown flag %s (see --help)\n",
                   arg.c_str());
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: sdrlint [flags] <path>...\n");
    return 2;
  }
  return sdr::lint::RunTool(paths, opts) == 0 ? 0 : 1;
}
