// sdrlint CLI. Usage: sdrlint <path>... — lints .h/.cc files under each
// path and exits nonzero when findings remain (the CI gate).
#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: sdrlint <path>...\n"
          "Rules: R1 determinism, R2 ordered-output, R3 switch\n"
          "exhaustiveness over protocol enums, R4 serde pairing,\n"
          "R5 constant-time discipline. See docs/ANALYSIS.md.\n");
      return 0;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: sdrlint <path>...\n");
    return 2;
  }
  return sdr::lint::RunTool(paths) == 0 ? 0 : 1;
}
