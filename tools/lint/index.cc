// Pass 1 of the two-pass lint: the cross-translation-unit SymbolIndex —
// protocol enums, thread-discipline-annotated members, and Encode/Decode
// body shapes — plus the index-wide R8 serde field-order check that runs
// after every file has been indexed.
#include <algorithm>

#include "tools/lint/internal.h"
#include "tools/lint/lint.h"

namespace sdr::lint {

using namespace internal;  // NOLINT — rule passes are built on these helpers

namespace {

// ---------------------------------------------------------------------------
// Protocol enums
// ---------------------------------------------------------------------------

void CollectEnumsImpl(const std::vector<Token>& toks,
                      const std::vector<size_t>& code, const Annotations& ann,
                      EnumRegistry& registry) {
  for (size_t i = 0; i + 2 < code.size(); ++i) {
    if (!IsIdent(toks[code[i]], "enum")) {
      continue;
    }
    size_t j = i + 1;
    if (IsIdent(toks[code[j]], "class") || IsIdent(toks[code[j]], "struct")) {
      ++j;
    }
    if (toks[code[j]].kind != TokKind::kIdent) {
      continue;
    }
    const std::string name = toks[code[j]].text;
    const int decl_line = toks[code[i]].line;
    if (!ann.Effective(decl_line).protocol_enum) {
      continue;
    }
    // Skip ": underlying_type" to the "{".
    while (j < code.size() && !IsPunct(toks[code[j]], "{") &&
           !IsPunct(toks[code[j]], ";")) {
      ++j;
    }
    if (j >= code.size() || !IsPunct(toks[code[j]], "{")) {
      continue;  // forward declaration
    }
    size_t close = MatchForward(toks, code, j, "{", "}");
    std::vector<std::string> enumerators;
    bool expect_name = true;
    for (size_t k = j + 1; k < close; ++k) {
      const Token& t = toks[code[k]];
      if (expect_name && t.kind == TokKind::kIdent) {
        enumerators.push_back(t.text);
        expect_name = false;
      } else if (IsPunct(t, ",")) {
        expect_name = true;
      }
    }
    registry[name] = enumerators;
  }
}

// ---------------------------------------------------------------------------
// Annotated class members (R6)
// ---------------------------------------------------------------------------

// Name declared by a member statement: the last identifier directly
// followed by ";", "=", "{", or "[" — i.e. the declarator, not a type or
// template argument. Function declarations yield "".
// SDR_GUARDED_BY(mu_) and friends are attribute macros, not calls: an
// all-caps identifier followed by "(" inside a member declaration must not
// make the indexer mistake the member for a method.
bool IsMacroName(const std::string& s) {
  bool has_alpha = false;
  for (char c : s) {
    if (c >= 'a' && c <= 'z') {
      return false;
    }
    if (c >= 'A' && c <= 'Z') {
      has_alpha = true;
    }
  }
  return has_alpha;
}

std::string MemberDeclName(const std::vector<Token>& toks,
                           const std::vector<size_t>& code,
                           const std::vector<size_t>& raw_stmt) {
  // Drop attribute-macro invocations (SDR_GUARDED_BY(mu_), ...) so the
  // member name is adjacent to its initializer again.
  std::vector<size_t> stmt;
  for (size_t x = 0; x < raw_stmt.size(); ++x) {
    const Token& t = toks[code[raw_stmt[x]]];
    if (t.kind == TokKind::kIdent && IsMacroName(t.text)) {
      if (x + 1 < raw_stmt.size() &&
          IsPunct(toks[code[raw_stmt[x + 1]]], "(")) {
        int depth = 0;
        for (++x; x < raw_stmt.size(); ++x) {
          const Token& u = toks[code[raw_stmt[x]]];
          if (IsPunct(u, "(")) {
            ++depth;
          } else if (IsPunct(u, ")") && --depth == 0) {
            break;
          }
        }
      }
      continue;  // bare macro (no parens) is dropped too
    }
    stmt.push_back(raw_stmt[x]);
  }
  std::string name;
  for (size_t x = 0; x < stmt.size(); ++x) {
    const Token& t = toks[code[stmt[x]]];
    if (t.kind != TokKind::kIdent || IsTypeish(t.text)) {
      continue;
    }
    if (x + 1 >= stmt.size()) {
      name = t.text;  // statement ends right at the ";"
      break;
    }
    const Token& next = toks[code[stmt[x + 1]]];
    if (IsPunct(next, "(")) {
      return "";  // a method declaration, not a data member
    }
    if (next.kind == TokKind::kPunct &&
        (next.text == "=" || next.text == "{" || next.text == "[")) {
      name = t.text;
    }
  }
  return name;
}

void IndexClassMembers(const std::string& path,
                       const std::vector<Token>& toks,
                       const std::vector<size_t>& code,
                       const Annotations& ann,
                       const std::vector<FuncSpan>& spans,
                       const std::vector<ClassSpan>& classes,
                       SymbolIndex& index) {
  for (const ClassSpan& cs : classes) {
    // Statements at this class's member level: skip method bodies and
    // nested class bodies (nested classes index their own pass).
    std::vector<size_t> stmt;
    for (size_t k = cs.open_code + 1; k < cs.close_code; ++k) {
      // Jump over any function body opening here.
      bool jumped = true;
      while (jumped && k < cs.close_code) {
        jumped = false;
        for (const FuncSpan& fs : spans) {
          if (fs.open_code == k) {
            k = fs.close_code + 1;
            stmt.clear();
            jumped = true;
            break;
          }
        }
        for (const ClassSpan& inner : classes) {
          if (&inner != &cs && inner.open_code == k &&
              inner.open_code > cs.open_code &&
              inner.close_code < cs.close_code) {
            k = inner.close_code + 1;
            stmt.clear();
            jumped = true;
            break;
          }
        }
      }
      if (k >= cs.close_code) {
        break;
      }
      const Token& t = toks[code[k]];
      if (IsPunct(t, ";")) {
        if (!stmt.empty()) {
          const int first_line = toks[code[stmt.front()]].line;
          const int last_line = toks[code[stmt.back()]].line;
          LineAnn a = ann.Effective(first_line);
          if (last_line != first_line) {
            LineAnn b = ann.Effective(last_line);
            a.lane_confined |= b.lane_confined;
            a.shared_atomic |= b.shared_atomic;
            if (a.guarded_by.empty()) {
              a.guarded_by = b.guarded_by;
            }
          }
          if (a.lane_confined || a.shared_atomic || !a.guarded_by.empty()) {
            std::string name = MemberDeclName(toks, code, stmt);
            if (!name.empty()) {
              ClassInfo& ci = index.classes[cs.name];
              if (ci.file.empty()) {
                ci.file = path;
                ci.line = cs.line;
              }
              MemberAnn& m = ci.members[name];
              m.lane_confined |= a.lane_confined;
              m.shared_atomic |= a.shared_atomic;
              if (m.guarded_by.empty()) {
                m.guarded_by = a.guarded_by;
              }
              m.line = first_line;
              for (size_t x : stmt) {
                if (toks[code[x]].kind == TokKind::kIdent &&
                    toks[code[x]].text != name &&
                    toks[code[x]].text.find("atomic") != std::string::npos) {
                  m.decl_atomic = true;
                }
              }
            }
          }
        }
        stmt.clear();
      } else {
        stmt.push_back(k);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Serde bodies (R8)
// ---------------------------------------------------------------------------

const std::set<std::string>& WireOps() {
  static const std::set<std::string> kOps = {
      "U8", "U16", "U32", "U64", "I64", "Bool", "Double", "Blob",
      "BlobString", "Raw",
  };
  return kOps;
}

std::string NormalizeOp(const std::string& op) {
  return op == "BlobString" ? "Blob" : op;
}

// First identifier in [from, to) that names the value being written:
// casts, std:: qualifiers, and integer-width type names are skipped.
std::string FirstFieldIdent(const std::vector<Token>& toks,
                            const std::vector<size_t>& code, size_t from,
                            size_t to) {
  static const std::set<std::string> kSkip = {
      "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
      "std",         "string_view",      "string",     "size_t",
      "uint8_t",     "uint16_t",         "uint32_t",   "uint64_t",
      "int8_t",      "int16_t",          "int32_t",    "int64_t",
  };
  for (size_t i = from; i < to && i < code.size(); ++i) {
    const Token& t = toks[code[i]];
    if (t.kind != TokKind::kIdent || IsTypeish(t.text) ||
        kSkip.count(t.text) != 0) {
      continue;
    }
    // Walk the member chain (`tw.origin_master` names the field
    // `origin_master`, matching the decode extractor's lhs member), but
    // stop before a method call: `msg.Encode()` names `msg`.
    size_t last = i;
    while (last + 2 < to && last + 2 < code.size() &&
           (IsPunct(toks[code[last + 1]], ".") ||
            IsPunct(toks[code[last + 1]], "->")) &&
           toks[code[last + 2]].kind == TokKind::kIdent &&
           !(last + 3 < code.size() && IsPunct(toks[code[last + 3]], "("))) {
      last += 2;
    }
    return toks[code[last]].text;
  }
  return "";
}

// The serde method kind of a function span, or "" when it is not one.
std::string SerdeMethodOf(const std::string& fn) {
  if (fn == "Encode" || fn == "Decode" || fn == "EncodeTo" ||
      fn == "DecodeFrom") {
    return fn;
  }
  return "";
}

void ExtractEncodeSteps(const std::vector<Token>& toks,
                        const std::vector<size_t>& code, const FuncSpan& fs,
                        std::vector<SerdeStep>& steps) {
  for (size_t k = fs.open_code + 1; k < fs.close_code; ++k) {
    const Token& t = toks[code[k]];
    if (t.kind != TokKind::kIdent || k + 1 >= code.size() ||
        !IsPunct(toks[code[k + 1]], "(")) {
      continue;
    }
    const bool dotted =
        k > 0 && (IsPunct(toks[code[k - 1]], ".") ||
                  IsPunct(toks[code[k - 1]], "->"));
    if (WireOps().count(t.text) != 0 && dotted) {
      size_t close = MatchForward(toks, code, k + 1, "(", ")");
      steps.push_back({FirstFieldIdent(toks, code, k + 2, close),
                       NormalizeOp(t.text), t.line});
      k = close;
    } else if (t.text == "EncodeTo") {
      std::string field;
      if (dotted && k >= 2 && toks[code[k - 2]].kind == TokKind::kIdent &&
          !IsTypeish(toks[code[k - 2]].text)) {
        field = toks[code[k - 2]].text;
      }
      steps.push_back({field, "nested", t.line});
      k = MatchForward(toks, code, k + 1, "(", ")");
    } else if (t.text.size() > 6 && t.text.compare(0, 6, "Encode") == 0 &&
               !dotted) {
      // Helper call `EncodeX(w, field, ...)`: the op is the suffix and the
      // field is the first plain identifier after the writer argument.
      size_t close = MatchForward(toks, code, k + 1, "(", ")");
      size_t arg2 = close;
      int depth = 0;
      for (size_t m = k + 2; m < close; ++m) {
        const Token& u = toks[code[m]];
        if (IsPunct(u, "(") || IsPunct(u, "[") || IsPunct(u, "{")) {
          ++depth;
        } else if (IsPunct(u, ")") || IsPunct(u, "]") || IsPunct(u, "}")) {
          --depth;
        } else if (depth == 0 && IsPunct(u, ",")) {
          arg2 = m + 1;
          break;
        }
      }
      steps.push_back({FirstFieldIdent(toks, code, arg2, close),
                       t.text.substr(6), t.line});
      k = close;
    }
  }
}

void ExtractDecodeSteps(const std::vector<Token>& toks,
                        const std::vector<size_t>& code, const FuncSpan& fs,
                        std::vector<SerdeStep>& steps) {
  // Statement-based: the target field comes from the `lhs = ...` member
  // chain, the ops from reader calls in the statement.
  std::vector<size_t> stmt;
  auto flush = [&]() {
    if (stmt.empty()) {
      return;
    }
    // Split at a top-level "=" (not "==").
    size_t eq = stmt.size();
    int depth = 0;
    for (size_t x = 0; x < stmt.size(); ++x) {
      const Token& u = toks[code[stmt[x]]];
      if (IsPunct(u, "(") || IsPunct(u, "[") || IsPunct(u, "{")) {
        ++depth;
      } else if (IsPunct(u, ")") || IsPunct(u, "]") || IsPunct(u, "}")) {
        --depth;
      } else if (depth == 0 && IsPunct(u, "=")) {
        eq = x;
        break;
      }
    }
    // Field: `obj.field = ...` / `obj->field = ...`; locals yield "".
    std::string field;
    if (eq != stmt.size() && eq >= 2) {
      const Token& lhs = toks[code[stmt[eq - 1]]];
      const Token& sep = toks[code[stmt[eq - 2]]];
      if (lhs.kind == TokKind::kIdent &&
          (IsPunct(sep, ".") || IsPunct(sep, "->"))) {
        field = lhs.text;
      }
    }
    const size_t rhs = eq == stmt.size() ? 0 : eq + 1;
    for (size_t x = rhs; x < stmt.size(); ++x) {
      const Token& t = toks[code[stmt[x]]];
      if (t.kind != TokKind::kIdent || x + 1 >= stmt.size() ||
          !IsPunct(toks[code[stmt[x + 1]]], "(")) {
        continue;
      }
      const bool dotted =
          x > 0 && (IsPunct(toks[code[stmt[x - 1]]], ".") ||
                    IsPunct(toks[code[stmt[x - 1]]], "->"));
      if (WireOps().count(t.text) != 0 && dotted) {
        steps.push_back({field, NormalizeOp(t.text), t.line});
      } else if (t.text == "DecodeFrom") {
        steps.push_back({field, "nested", t.line});
      } else if (t.text.size() > 6 && t.text.compare(0, 6, "Decode") == 0 &&
                 !dotted) {
        steps.push_back({field, t.text.substr(6), t.line});
      }
    }
    stmt.clear();
  };
  for (size_t k = fs.open_code + 1; k < fs.close_code; ++k) {
    const Token& t = toks[code[k]];
    if (t.kind == TokKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      flush();
    } else {
      stmt.push_back(k);
    }
  }
  flush();
}

void IndexSerdeBodies(const std::string& path, const std::vector<Token>& toks,
                      const std::vector<size_t>& code, const Annotations& ann,
                      const std::vector<FuncSpan>& spans,
                      const std::vector<ClassSpan>& classes,
                      SymbolIndex& index) {
  for (const FuncSpan& fs : spans) {
    const std::string method = SerdeMethodOf(SpanFuncName(toks, code, fs));
    if (method.empty()) {
      continue;
    }
    const std::string owner = SpanOwner(toks, code, fs, classes);
    if (owner.empty()) {
      continue;  // free Encode/Decode helpers are not paired by R8
    }
    const int header_line = toks[code[fs.header_code]].line;
    SerdeBody body;
    body.file = path;
    body.line = header_line;
    body.allowed = ann.Allowed(header_line, "R8") ||
                   ann.Allowed(fs.start_line, "R8");
    if (method == "Encode" || method == "EncodeTo") {
      ExtractEncodeSteps(toks, code, fs, body.steps);
    } else {
      ExtractDecodeSteps(toks, code, fs, body.steps);
    }
    SerdeInfo& info = index.serde[owner];
    if (method == "Encode") {
      info.encode = body;
    } else if (method == "Decode") {
      info.decode = body;
    } else if (method == "EncodeTo") {
      info.encode_to = body;
    } else {
      info.decode_from = body;
    }
  }
}

// ---------------------------------------------------------------------------
// R8 — serde field-order symmetry over the index
// ---------------------------------------------------------------------------

void CompareSerdePair(const std::string& owner, const char* pair_name,
                      const SerdeBody& enc, const SerdeBody& dec,
                      std::vector<Finding>& out) {
  if (enc.line == 0 || dec.line == 0 || enc.allowed || dec.allowed) {
    return;  // missing halves are R4's findings, not R8's
  }
  const size_t n = std::min(enc.steps.size(), dec.steps.size());
  for (size_t i = 0; i < n; ++i) {
    const SerdeStep& e = enc.steps[i];
    const SerdeStep& d = dec.steps[i];
    const bool op_mismatch = e.op != d.op;
    const bool field_mismatch =
        !e.field.empty() && !d.field.empty() && e.field != d.field;
    if (!op_mismatch && !field_mismatch) {
      continue;
    }
    auto describe = [](const SerdeStep& s) {
      return (s.field.empty() ? std::string("<expr>") : "`" + s.field + "`") +
             " (" + s.op + ")";
    };
    out.push_back(
        {"R8", dec.file, d.line,
         owner + " " + pair_name + " disagree at wire field " +
             std::to_string(i + 1) + ": decode reads " + describe(d) +
             " where encode writes " + describe(e) + " (" + enc.file + ":" +
             std::to_string(e.line) +
             "); reordered or retyped fields corrupt the wire"});
    return;  // one finding per pair; later steps are all shifted anyway
  }
  if (enc.steps.size() != dec.steps.size()) {
    out.push_back(
        {"R8", dec.file, dec.line,
         owner + " " + pair_name + " are asymmetric: encode writes " +
             std::to_string(enc.steps.size()) + " wire fields but decode reads " +
             std::to_string(dec.steps.size()) + " (" + enc.file + ":" +
             std::to_string(enc.line) +
             "); a skipped field desynchronizes every later read"});
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

void IndexSource(const std::string& path, const std::string& src,
                 SymbolIndex& index) {
  std::vector<Token> toks = Tokenize(src);
  std::vector<size_t> code = CodeIndex(toks);
  Annotations ann(toks);
  CollectEnumsImpl(toks, code, ann, index.enums);
  std::vector<FuncSpan> spans = FunctionSpans(toks, code);
  std::vector<ClassSpan> classes = ClassSpans(toks, code);
  IndexClassMembers(path, toks, code, ann, spans, classes, index);
  if (ClassifyPath(path).r8) {
    IndexSerdeBodies(path, toks, code, ann, spans, classes, index);
  }
}

std::vector<Finding> AnalyzeIndex(const SymbolIndex& index) {
  std::vector<Finding> out;
  for (const auto& [owner, info] : index.serde) {
    CompareSerdePair(owner, "Encode/Decode", info.encode, info.decode, out);
    CompareSerdePair(owner, "EncodeTo/DecodeFrom", info.encode_to,
                     info.decode_from, out);
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    if (a.rule != b.rule) {
      return a.rule < b.rule;
    }
    return a.message < b.message;
  });
  return out;
}

}  // namespace sdr::lint
