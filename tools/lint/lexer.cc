// Tokenizer for sdrlint: enough C++ lexing to walk this repo reliably —
// identifiers, numbers, string/char literals (incl. raw strings), comments,
// and longest-match punctuation. No preprocessing; directives tokenize as
// ordinary code.
#include <cctype>

#include "tools/lint/lint.h"

namespace sdr::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuation, longest first so "==" wins over "=".
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "##",
};

}  // namespace

std::vector<Token> Tokenize(const std::string& src) {
  std::vector<Token> out;
  const size_t n = src.size();
  size_t i = 0;
  int line = 1;

  auto push = [&out](TokKind kind, std::string text, int at) {
    out.push_back(Token{kind, std::move(text), at});
  };
  auto count_lines = [&line](const std::string& text) {
    for (char c : text) {
      if (c == '\n') {
        ++line;
      }
    }
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < n && (src[i + 1] == '/' || src[i + 1] == '*')) {
      const int at = line;
      size_t start = i;
      if (src[i + 1] == '/') {
        while (i < n && src[i] != '\n') {
          ++i;
        }
      } else {
        i += 2;
        while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
          ++i;
        }
        i = i + 1 < n ? i + 2 : n;
      }
      std::string text = src.substr(start, i - start);
      push(TokKind::kComment, text, at);
      count_lines(text);
      continue;
    }

    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t delim_end = src.find('(', i + 2);
      if (delim_end != std::string::npos) {
        std::string delim = src.substr(i + 2, delim_end - (i + 2));
        std::string closer = ")" + delim + "\"";
        size_t body_end = src.find(closer, delim_end + 1);
        const int at = line;
        size_t end = body_end == std::string::npos
                         ? n
                         : body_end + closer.size();
        std::string text = src.substr(i, end - i);
        push(TokKind::kString, text, at);
        count_lines(text);
        i = end;
        continue;
      }
    }

    // String and character literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int at = line;
      size_t start = i++;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (src[i] == '\n') {
          ++line;
        }
        ++i;
      }
      i = i < n ? i + 1 : n;
      push(quote == '"' ? TokKind::kString : TokKind::kChar,
           src.substr(start + 1, i - start - 2), at);
      continue;
    }

    // Identifiers / keywords.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(src[i])) {
        ++i;
      }
      push(TokKind::kIdent, src.substr(start, i - start), line);
      continue;
    }

    // Numbers (incl. hex, digit separators, suffixes, leading-dot floats).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t start = i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      push(TokKind::kNumber, src.substr(start, i - start), line);
      continue;
    }

    // Punctuation, longest match first.
    bool matched = false;
    for (const char* p : kPuncts) {
      size_t len = std::char_traits<char>::length(p);
      if (src.compare(i, len, p) == 0) {
        push(TokKind::kPunct, p, line);
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(TokKind::kPunct, std::string(1, c), line);
      ++i;
    }
  }
  return out;
}

}  // namespace sdr::lint
