// Per-file rule passes R1–R5 and the AnalyzeSource dispatcher. Everything
// works over the token stream from lexer.cc plus a per-line annotation
// table extracted from comments; no type information is needed because the
// invariants are lexical by construction (banned identifiers, annotated
// enums, tagged variables). Shared machinery lives in internal.h; the
// cross-TU rule families R6–R8 live in concurrency.cc and index.cc.
#include <algorithm>
#include <cstring>

#include "tools/lint/internal.h"
#include "tools/lint/lint.h"

namespace sdr::lint {

using namespace internal;  // NOLINT — rule passes are built on these helpers

namespace {

// ---------------------------------------------------------------------------
// R1 — determinism
// ---------------------------------------------------------------------------

void CheckR1(const std::string& path, const std::string& src,
             const std::vector<Token>& toks, const std::vector<size_t>& code,
             const Annotations& ann, std::vector<Finding>& out) {
  static const std::set<std::string> kBannedIdents = {
      "rand",          "srand",        "rand_r",
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand",   "default_random_engine",
      "system_clock",  "steady_clock", "high_resolution_clock",
      "gettimeofday",  "localtime",    "gmtime",
      "getenv",        "setenv",       "secure_getenv",
      "clock_gettime", "clock_getres", "nanosleep",
      "epoll_create1", "epoll_wait",
  };
  for (size_t i = 0; i < code.size(); ++i) {
    const Token& t = toks[code[i]];
    if (t.kind != TokKind::kIdent) {
      continue;
    }
    bool banned = kBannedIdents.count(t.text) != 0;
    if (!banned && (t.text == "time" || t.text == "clock")) {
      banned = i + 1 < code.size() && IsPunct(toks[code[i + 1]], "(");
    }
    if (banned && !ann.Allowed(t.line, "R1")) {
      out.push_back(
          {"R1", path, t.line,
           "nondeterminism source `" + t.text +
               "` outside util/rng; route randomness/time through the "
               "seeded simulator"});
    }
  }
  // Header includes that smuggle ambient nondeterminism in.
  int line_no = 0;
  size_t pos = 0;
  while (pos <= src.size()) {
    size_t eol = src.find('\n', pos);
    std::string line = src.substr(pos, eol == std::string::npos
                                           ? std::string::npos
                                           : eol - pos);
    ++line_no;
    for (const char* hdr : {"<random>", "<chrono>", "<ctime>", "<sys/time.h>",
                            "<sys/epoll.h>", "<sys/socket.h>"}) {
      if (line.find("#include") != std::string::npos &&
          line.find(hdr) != std::string::npos &&
          !ann.Allowed(line_no, "R1")) {
        out.push_back({"R1", path, line_no,
                       std::string("include of ") + hdr +
                           " in a determinism-critical directory"});
      }
    }
    if (eol == std::string::npos) {
      break;
    }
    pos = eol + 1;
  }
}

// ---------------------------------------------------------------------------
// R2 — ordered output
// ---------------------------------------------------------------------------

void CheckR2(const std::string& path, const std::vector<Token>& toks,
             const std::vector<size_t>& code, const Annotations& ann,
             const std::vector<FuncSpan>& spans, std::vector<Finding>& out) {
  // Pass 1: names of unordered containers — direct declarations and
  // `using Alias = std::unordered_...` aliases.
  std::set<std::string> unordered_types = {"unordered_map", "unordered_set",
                                           "unordered_multimap",
                                           "unordered_multiset"};
  std::set<std::string> vars;
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < code.size(); ++i) {
      const Token& t = toks[code[i]];
      if (t.kind != TokKind::kIdent || unordered_types.count(t.text) == 0) {
        continue;
      }
      size_t j = i + 1;
      if (j < code.size() && IsPunct(toks[code[j]], "<")) {
        j = MatchForward(toks, code, j, "<", ">");
        if (j == code.size()) {
          continue;
        }
        ++j;
      } else if (t.text == "unordered_map" || t.text == "unordered_set") {
        // Bare alias use (registered in pass 1) — fall through with j = i+1.
      }
      while (j < code.size() &&
             (IsPunct(toks[code[j]], "&") || IsPunct(toks[code[j]], "*") ||
              IsIdent(toks[code[j]], "const"))) {
        ++j;
      }
      if (j >= code.size() || toks[code[j]].kind != TokKind::kIdent ||
          IsTypeish(toks[code[j]].text)) {
        continue;
      }
      const std::string& name = toks[code[j]].text;
      // `using Alias = std::unordered_map<...>` registers a type, not a var.
      bool is_alias = false;
      for (size_t b = i; b > 0 && b + 8 > i; --b) {
        const Token& p = toks[code[b - 1]];
        if (IsIdent(p, "using")) {
          is_alias = true;
          break;
        }
        if (p.kind == TokKind::kPunct &&
            (p.text == ";" || p.text == "{" || p.text == "}")) {
          break;
        }
      }
      if (is_alias) {
        // The alias name precedes the '='; register it as a container type.
        for (size_t b = i; b > 0; --b) {
          if (IsPunct(toks[code[b - 1]], "=") && b >= 2) {
            unordered_types.insert(toks[code[b - 2]].text);
            break;
          }
        }
      } else {
        vars.insert(name);
      }
    }
  }
  if (vars.empty()) {
    return;
  }

  // A function "feeds output" when it mentions a serialization / metrics /
  // logging sink anywhere in its body.
  static const std::set<std::string> kSinks = {
      "SDR_LOG",     "printf",         "fprintf", "snprintf",
      "sprintf",     "Encode",         "EncodeTo", "Serialize",
      "Append",      "Writer",         "JsonWriter", "Json",
      "ToJson",      "ToString",       "Dump",     "Report",
      // Trace serialization: events and histograms feed byte-stable
      // artifacts, so iteration order ahead of these is determinism-bearing.
      "EncodeTrace", "ChromeTraceJson", "Snapshot", "Emit",
  };
  auto span_sink = [&](const FuncSpan* s) -> std::string {
    if (s == nullptr) {
      return "";
    }
    for (size_t i = s->header_code; i <= s->close_code && i < code.size();
         ++i) {
      const Token& t = toks[code[i]];
      if (t.kind == TokKind::kIdent && kSinks.count(t.text) != 0) {
        return t.text;
      }
    }
    return "";
  };

  auto report = [&](int line, const std::string& var) {
    const FuncSpan* s = SpanForLine(spans, line);
    std::string sink = span_sink(s);
    if (sink.empty() || ann.Allowed(line, "R2")) {
      return;
    }
    out.push_back({"R2", path, line,
                   "iteration over unordered container `" + var +
                       "` in a function that feeds `" + sink +
                       "`; hash order is not deterministic — iterate a "
                       "sorted view or use std::map"});
  };

  for (size_t i = 0; i < code.size(); ++i) {
    const Token& t = toks[code[i]];
    // Range-for over a tracked container.
    if (IsIdent(t, "for") && i + 1 < code.size() &&
        IsPunct(toks[code[i + 1]], "(")) {
      size_t close = MatchForward(toks, code, i + 1, "(", ")");
      for (size_t j = i + 2; j < close; ++j) {
        if (IsPunct(toks[code[j]], ":")) {
          for (size_t k = j + 1; k < close; ++k) {
            const Token& e = toks[code[k]];
            if (e.kind == TokKind::kIdent && vars.count(e.text) != 0) {
              report(t.line, e.text);
            }
          }
          break;
        }
      }
    }
    // Explicit iterator walk: var.begin() / var.cbegin() / var.rbegin().
    if (t.kind == TokKind::kIdent && vars.count(t.text) != 0 &&
        i + 2 < code.size() && IsPunct(toks[code[i + 1]], ".") &&
        (IsIdent(toks[code[i + 2]], "begin") ||
         IsIdent(toks[code[i + 2]], "cbegin") ||
         IsIdent(toks[code[i + 2]], "rbegin"))) {
      report(t.line, t.text);
    }
  }
}

// ---------------------------------------------------------------------------
// R3 — protocol-enum switch exhaustiveness
// ---------------------------------------------------------------------------

void CheckR3(const std::string& path, const std::vector<Token>& toks,
             const std::vector<size_t>& code, const Annotations& ann,
             const EnumRegistry& registry, std::vector<Finding>& out) {
  if (registry.empty()) {
    return;
  }
  for (size_t i = 0; i < code.size(); ++i) {
    if (!IsIdent(toks[code[i]], "switch") || i + 1 >= code.size() ||
        !IsPunct(toks[code[i + 1]], "(")) {
      continue;
    }
    size_t cond_close = MatchForward(toks, code, i + 1, "(", ")");
    if (cond_close + 1 >= code.size() ||
        !IsPunct(toks[code[cond_close + 1]], "{")) {
      continue;
    }
    size_t body_open = cond_close + 1;
    size_t body_close = MatchForward(toks, code, body_open, "{", "}");

    // Scan this switch's body at its own nesting level: nested switches are
    // skipped (they are analyzed independently by the outer loop).
    std::set<std::string> labels;
    std::vector<int> default_lines;
    for (size_t k = body_open + 1; k < body_close; ++k) {
      const Token& t = toks[code[k]];
      if (IsIdent(t, "switch") && k + 1 < body_close &&
          IsPunct(toks[code[k + 1]], "(")) {
        size_t inner_cond = MatchForward(toks, code, k + 1, "(", ")");
        if (inner_cond + 1 < body_close &&
            IsPunct(toks[code[inner_cond + 1]], "{")) {
          k = MatchForward(toks, code, inner_cond + 1, "{", "}");
        }
        continue;
      }
      if (IsIdent(t, "default") && k + 1 < body_close &&
          IsPunct(toks[code[k + 1]], ":")) {
        default_lines.push_back(t.line);
      }
      if (IsIdent(t, "case")) {
        // Tokens of the label up to the ":".
        std::vector<size_t> label;
        size_t m = k + 1;
        while (m < body_close && !IsPunct(toks[code[m]], ":")) {
          label.push_back(m);
          ++m;
        }
        // Record both bare enumerators and the Enum::kValue qualified form.
        for (size_t x = 0; x < label.size(); ++x) {
          const Token& lt = toks[code[label[x]]];
          if (lt.kind == TokKind::kIdent) {
            std::string qualifier =
                x >= 2 && IsPunct(toks[code[label[x - 1]]], "::")
                    ? toks[code[label[x - 2]]].text
                    : "";
            labels.insert(qualifier.empty() ? lt.text
                                            : qualifier + "::" + lt.text);
          }
        }
        k = m;
      }
    }

    // Which protocol enum, if any, do the labels reference?
    const std::string* matched_enum = nullptr;
    std::set<std::string> present;
    for (const auto& [ename, values] : registry) {
      std::set<std::string> hits;
      for (const std::string& v : values) {
        if (labels.count(ename + "::" + v) != 0 || labels.count(v) != 0) {
          hits.insert(v);
        }
      }
      if (!hits.empty()) {
        matched_enum = &ename;
        present = hits;
        break;
      }
    }
    if (matched_enum == nullptr) {
      continue;
    }
    const int sw_line = toks[code[i]].line;
    if (ann.Allowed(sw_line, "R3")) {
      continue;
    }
    for (int dl : default_lines) {
      if (!ann.Allowed(dl, "R3")) {
        out.push_back({"R3", path, dl,
                       "`default:` in switch over protocol enum " +
                           *matched_enum +
                           "; list every enumerator so new variants fail "
                           "the lint instead of being silently dropped"});
      }
    }
    std::string missing;
    for (const std::string& v : registry.at(*matched_enum)) {
      if (present.count(v) == 0) {
        missing += missing.empty() ? v : ", " + v;
      }
    }
    if (!missing.empty()) {
      out.push_back({"R3", path, sw_line,
                     "non-exhaustive switch over protocol enum " +
                         *matched_enum + ": missing " + missing});
    }
  }
}

// ---------------------------------------------------------------------------
// R4 — serde pairing
// ---------------------------------------------------------------------------

void CheckR4(const std::string& path, const std::vector<Token>& toks,
             const std::vector<size_t>& code, const Annotations& ann,
             const std::vector<FuncSpan>& spans, std::vector<Finding>& out) {
  // True when code position i sits inside a function body — a call site,
  // not an out-of-line definition (whose header precedes its own span).
  auto in_function_body = [&spans](size_t i) {
    return SpanForCode(spans, i) != nullptr;
  };
  struct Serde {
    bool encode = false, decode = false;
    bool encode_to = false, decode_from = false;
    int line = 0;
  };
  std::map<std::string, Serde> structs;

  // Header form: methods inside `struct Name { ... }`.
  for (size_t i = 0; i + 2 < code.size(); ++i) {
    if (!IsIdent(toks[code[i]], "struct") && !IsIdent(toks[code[i]], "class")) {
      continue;
    }
    if (toks[code[i + 1]].kind != TokKind::kIdent) {
      continue;
    }
    std::string name = toks[code[i + 1]].text;
    size_t j = i + 2;
    while (j < code.size() && !IsPunct(toks[code[j]], "{") &&
           !IsPunct(toks[code[j]], ";")) {
      ++j;
    }
    if (j >= code.size() || !IsPunct(toks[code[j]], "{")) {
      continue;
    }
    size_t close = MatchForward(toks, code, j, "{", "}");
    Serde& s = structs[name];
    s.line = toks[code[i]].line;
    for (size_t k = j + 1; k < close; ++k) {
      const Token& t = toks[code[k]];
      if (t.kind != TokKind::kIdent || k + 1 >= code.size() ||
          !IsPunct(toks[code[k + 1]], "(")) {
        continue;
      }
      if (t.text == "Encode") s.encode = true;
      if (t.text == "Decode") s.decode = true;
      if (t.text == "EncodeTo") s.encode_to = true;
      if (t.text == "DecodeFrom") s.decode_from = true;
    }
    i = close;
  }

  // Definition form: `Name::Encode(` at namespace scope in .cc files.
  for (size_t i = 0; i + 2 < code.size(); ++i) {
    if (toks[code[i]].kind == TokKind::kIdent &&
        IsPunct(toks[code[i + 1]], "::") &&
        toks[code[i + 2]].kind == TokKind::kIdent && i + 3 < code.size() &&
        IsPunct(toks[code[i + 3]], "(") && !in_function_body(i)) {
      const std::string& name = toks[code[i]].text;
      const std::string& method = toks[code[i + 2]].text;
      if (method == "Encode" || method == "Decode" || method == "EncodeTo" ||
          method == "DecodeFrom") {
        Serde& s = structs[name];
        if (s.line == 0) {
          s.line = toks[code[i]].line;
        }
        if (method == "Encode") s.encode = true;
        if (method == "Decode") s.decode = true;
        if (method == "EncodeTo") s.encode_to = true;
        if (method == "DecodeFrom") s.decode_from = true;
      }
    }
  }

  for (const auto& [name, s] : structs) {
    if (ann.Allowed(s.line, "R4")) {
      continue;
    }
    if (s.encode != s.decode) {
      out.push_back({"R4", path, s.line,
                     "struct " + name + " has " +
                         (s.encode ? "Encode without Decode"
                                   : "Decode without Encode") +
                         "; wire messages must round-trip"});
    }
    if (s.encode_to != s.decode_from) {
      out.push_back({"R4", path, s.line,
                     "struct " + name + " has " +
                         (s.encode_to ? "EncodeTo without DecodeFrom"
                                      : "DecodeFrom without EncodeTo") +
                         "; wire messages must round-trip"});
    }
  }
}

// ---------------------------------------------------------------------------
// R5 — constant-time discipline
// ---------------------------------------------------------------------------

void CheckR5(const std::string& path, const std::vector<Token>& toks,
             const std::vector<size_t>& code, const Annotations& ann,
             const std::vector<FuncSpan>& spans, std::vector<Finding>& out) {
  // Secret tags: names declared on `sdrlint:secret` lines, scoped to the
  // enclosing (or immediately following) function, else file-wide.
  struct SecretScope {
    std::string name;
    int from_line = 0;
    int to_line = 1 << 30;
  };
  std::vector<SecretScope> secrets;
  std::set<int> secret_lines;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kComment) {
      LineAnn a;
      ParseMarkers(t.text, a);
      if (a.is_secret) {
        secret_lines.insert(t.line);
      }
    }
  }
  for (int line : secret_lines) {
    const FuncSpan* span = SpanForTag(spans, line);
    for (size_t i = 0; i < code.size(); ++i) {
      const Token& t = toks[code[i]];
      if (t.line != line || t.kind != TokKind::kIdent ||
          IsTypeish(t.text)) {
        continue;
      }
      if (i + 1 >= code.size()) {
        continue;
      }
      const Token& next = toks[code[i + 1]];
      if (next.kind == TokKind::kPunct &&
          (next.text == "[" || next.text == "=" || next.text == "," ||
           next.text == ";" || next.text == ")")) {
        SecretScope s;
        s.name = t.text;
        s.from_line = line;
        if (span != nullptr) {
          s.to_line = span->end_line;
        }
        secrets.push_back(s);
      }
    }
  }

  auto is_secret_at = [&secrets](const std::string& name, int line) {
    for (const SecretScope& s : secrets) {
      if (s.name == name && line >= s.from_line && line <= s.to_line) {
        return true;
      }
    }
    return false;
  };
  auto range_has_secret = [&](size_t from, size_t to,
                              std::string* which) -> bool {
    for (size_t i = from; i < to && i < code.size(); ++i) {
      const Token& t = toks[code[i]];
      if (t.kind == TokKind::kIdent && is_secret_at(t.text, t.line)) {
        *which = t.text;
        return true;
      }
    }
    return false;
  };

  for (size_t i = 0; i < code.size(); ++i) {
    const Token& t = toks[code[i]];
    std::string which;

    // Raw byte-compare primitives always need an explicit verdict.
    if (t.kind == TokKind::kIdent &&
        (t.text == "memcmp" || t.text == "bcmp") &&
        !ann.Allowed(t.line, "R5")) {
      out.push_back({"R5", path, t.line,
                     "`" + t.text +
                         "` in crypto code leaks via early exit; use "
                         "ConstantTimeEquals or annotate the line "
                         "sdrlint:public"});
      continue;
    }
    if (secrets.empty()) {
      continue;
    }

    // Branch conditions: if / while / switch / for on a secret.
    if (t.kind == TokKind::kIdent &&
        (t.text == "if" || t.text == "while" || t.text == "switch" ||
         t.text == "for") &&
        i + 1 < code.size() && IsPunct(toks[code[i + 1]], "(")) {
      size_t close = MatchForward(toks, code, i + 1, "(", ")");
      if (range_has_secret(i + 2, close, &which) &&
          !ann.Allowed(t.line, "R5")) {
        out.push_back({"R5", path, t.line,
                       "branch on secret-tagged `" + which +
                           "`; control flow must not depend on secrets"});
      }
      continue;
    }

    // ==/!= with a secret operand in the same statement.
    if (t.kind == TokKind::kPunct && (t.text == "==" || t.text == "!=")) {
      size_t from, to;
      StatementBounds(toks, code, i, &from, &to);
      if (range_has_secret(from, to, &which) && !ann.Allowed(t.line, "R5")) {
        out.push_back({"R5", path, t.line,
                       "variable-time comparison involving secret-tagged `" +
                           which + "`; use ConstantTimeEquals or mask "
                                   "arithmetic"});
      }
      continue;
    }

    // Ternary selection on a secret in the same statement.
    if (IsPunct(t, "?")) {
      size_t from, to;
      StatementBounds(toks, code, i, &from, &to);
      if (range_has_secret(from, i, &which) && !ann.Allowed(t.line, "R5")) {
        out.push_back({"R5", path, t.line,
                       "ternary select on secret-tagged `" + which +
                           "`; compiles to a branch on many targets"});
      }
      continue;
    }

    // Array subscript indexed by a secret: a cache-line side channel.
    if (IsPunct(t, "[")) {
      size_t close = MatchForward(toks, code, i, "[", "]");
      if (range_has_secret(i + 1, close, &which) &&
          !ann.Allowed(t.line, "R5")) {
        out.push_back({"R5", path, t.line,
                       "memory index derived from secret-tagged `" + which +
                           "`; the address is observable through the "
                           "cache — use a constant-time full-table select"});
      }
      continue;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

FileClass ClassifyPath(const std::string& path) {
  auto has = [&path](const char* s) {
    return path.find(s) != std::string::npos;
  };
  FileClass fc;
  // The determinism domain is the protocol/simulation core. src/runtime/
  // and tools/ (RealEnv, sdrnode, sdrcluster) are deliberately outside it:
  // that is the real-transport domain, where wall clocks, sockets, and
  // event-loop syscalls are the whole point — role code in src/core may
  // reach time and transport only through the Env interface.
  fc.r1 = (has("src/sim/") || has("src/core/") || has("src/chaos/") ||
           has("src/trace/")) &&
          !has("util/rng");
  fc.r4 = has("src/core/messages.") || has("src/core/pledge.") ||
          has("src/core/shard.");
  fc.r5 = has("src/crypto/");
  // R8 analyzes Encode/Decode bodies statement-by-statement, so it runs
  // only where bodies follow the linear `w.Op(field)` / `m.f = r.Op()`
  // idiom: the wire-message and store serde files.
  fc.r8 = has("src/core/messages.") || has("src/core/pledge.") ||
          has("src/core/certificate.") || has("src/store/query.") ||
          has("src/store/document_store.") || has("src/store/executor.") ||
          has("src/forkcheck/") || has("src/core/shard.");
  return fc;
}

void CollectProtocolEnums(const std::string& src, EnumRegistry& registry) {
  SymbolIndex tmp;
  IndexSource("", src, tmp);
  for (auto& [name, values] : tmp.enums) {
    registry[name] = values;
  }
}

std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& src,
                                   const FileClass& fc,
                                   const SymbolIndex& index) {
  std::vector<Token> toks = Tokenize(src);
  std::vector<size_t> code = CodeIndex(toks);
  Annotations ann(toks);
  std::vector<FuncSpan> spans = FunctionSpans(toks, code);
  std::vector<ClassSpan> classes = ClassSpans(toks, code);

  std::vector<Finding> out;
  if (fc.r1) {
    CheckR1(path, src, toks, code, ann, out);
  }
  if (fc.r2) {
    CheckR2(path, toks, code, ann, spans, out);
  }
  if (fc.r3) {
    CheckR3(path, toks, code, ann, index.enums, out);
  }
  if (fc.r4) {
    CheckR4(path, toks, code, ann, spans, out);
  }
  if (fc.r5) {
    CheckR5(path, toks, code, ann, spans, out);
  }
  if (fc.r6) {
    CheckR6(path, toks, code, ann, spans, classes, index, out);
  }
  if (fc.r7) {
    CheckR7(path, toks, code, ann, spans, classes, out);
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) {
      return a.line < b.line;
    }
    if (a.rule != b.rule) {
      return a.rule < b.rule;
    }
    return a.message < b.message;
  });
  return out;
}

}  // namespace sdr::lint
