// File collection and the two-pass lint driver.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/lint/lint.h"

namespace sdr::lint {

namespace {

bool IsSourceFile(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".cpp";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return out.good();
}

}  // namespace

std::vector<std::string> CollectFiles(const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file(ec) && IsSourceFile(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else {
      files.push_back(p);  // taken as given, even with an odd extension
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

int RunTool(const std::vector<std::string>& paths) {
  return RunTool(paths, RunOptions{});
}

int RunTool(const std::vector<std::string>& paths, const RunOptions& opts) {
  // A typo'd path must fail the gate, not silently lint nothing.
  int missing = 0;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (!std::filesystem::exists(p, ec)) {
      std::fprintf(stderr, "sdrlint: no such path: %s\n", p.c_str());
      ++missing;
    }
  }
  if (missing != 0) {
    return missing;
  }
  const std::vector<std::string> files = CollectFiles(paths);

  // Pass 1: the cross-TU symbol index — protocol enums, annotated members,
  // and serde body shapes — spans all files, so a switch (or a Decode) in
  // one translation unit is checked against declarations in another.
  SymbolIndex index;
  std::map<std::string, std::string> contents;
  for (const std::string& f : files) {
    contents[f] = ReadFile(f);
    IndexSource(f, contents[f], index);
  }

  // Pass 2: per-file rules, then index-wide rules (R8).
  std::vector<Finding> findings;
  for (const std::string& f : files) {
    std::vector<Finding> fs =
        AnalyzeSource(f, contents[f], ClassifyPath(f), index);
    findings.insert(findings.end(), fs.begin(), fs.end());
  }
  {
    std::vector<Finding> fs = AnalyzeIndex(index);
    findings.insert(findings.end(), fs.begin(), fs.end());
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              if (a.line != b.line) {
                return a.line < b.line;
              }
              if (a.rule != b.rule) {
                return a.rule < b.rule;
              }
              return a.message < b.message;
            });

  if (opts.update_baseline) {
    if (opts.baseline_path.empty()) {
      std::fprintf(stderr,
                   "sdrlint: --update_baseline requires --baseline=FILE\n");
      return 1;
    }
    if (!WriteFile(opts.baseline_path, BaselineToJson(findings))) {
      std::fprintf(stderr, "sdrlint: cannot write baseline %s\n",
                   opts.baseline_path.c_str());
      return 1;
    }
    std::printf("sdrlint: baseline %s updated with %zu finding%s\n",
                opts.baseline_path.c_str(), findings.size(),
                findings.size() == 1 ? "" : "s");
    return 0;
  }

  BaselineDiff diff;
  const BaselineDiff* diff_ptr = nullptr;
  int gate = (int)findings.size();
  if (!opts.baseline_path.empty()) {
    std::map<std::string, int> baseline;
    if (!LoadBaseline(opts.baseline_path, &baseline)) {
      std::fprintf(stderr, "sdrlint: cannot read baseline %s\n",
                   opts.baseline_path.c_str());
      return 1;
    }
    diff = DiffAgainstBaseline(findings, baseline);
    diff_ptr = &diff;
    gate = (int)diff.fresh.size();
    for (const Finding& fi : diff.suppressed) {
      std::printf("%s:%d: [%s] (baseline) %s\n", fi.file.c_str(), fi.line,
                  fi.rule.c_str(), fi.message.c_str());
    }
    for (const Finding& fi : diff.fresh) {
      std::printf("%s:%d: [%s] %s\n", fi.file.c_str(), fi.line,
                  fi.rule.c_str(), fi.message.c_str());
    }
    for (const std::string& key : diff.fixed) {
      std::printf("sdrlint: baseline entry fixed (delete it): %s\n",
                  key.c_str());
    }
  } else {
    for (const Finding& fi : findings) {
      std::printf("%s:%d: [%s] %s\n", fi.file.c_str(), fi.line,
                  fi.rule.c_str(), fi.message.c_str());
    }
  }

  if (!opts.json_path.empty() &&
      !WriteFile(opts.json_path, ReportJson(files.size(), findings,
                                            diff_ptr))) {
    std::fprintf(stderr, "sdrlint: cannot write report %s\n",
                 opts.json_path.c_str());
    return gate + 1;
  }

  if (diff_ptr != nullptr) {
    std::printf("sdrlint: %zu files, %zu finding%s (%zu baseline, %d fresh, "
                "%zu fixed)\n",
                files.size(), findings.size(),
                findings.size() == 1 ? "" : "s", diff.suppressed.size(), gate,
                diff.fixed.size());
  } else if (gate == 0) {
    std::printf("sdrlint: %zu files, clean\n", files.size());
  } else {
    std::printf("sdrlint: %zu files, %d finding%s\n", files.size(), gate,
                gate == 1 ? "" : "s");
  }
  return gate;
}

}  // namespace sdr::lint
