// File collection and the two-pass lint driver.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/lint/lint.h"

namespace sdr::lint {

namespace {

bool IsSourceFile(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".cpp";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

std::vector<std::string> CollectFiles(const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file(ec) && IsSourceFile(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else {
      files.push_back(p);  // taken as given, even with an odd extension
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

int RunTool(const std::vector<std::string>& paths) {
  // A typo'd path must fail the gate, not silently lint nothing.
  int missing = 0;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (!std::filesystem::exists(p, ec)) {
      std::fprintf(stderr, "sdrlint: no such path: %s\n", p.c_str());
      ++missing;
    }
  }
  if (missing != 0) {
    return missing;
  }
  const std::vector<std::string> files = CollectFiles(paths);

  // Pass 1: the protocol-enum registry spans all files, so a switch in one
  // translation unit is checked against the enum declared in another.
  EnumRegistry registry;
  std::map<std::string, std::string> contents;
  for (const std::string& f : files) {
    contents[f] = ReadFile(f);
    CollectProtocolEnums(contents[f], registry);
  }

  // Pass 2: rules.
  int total = 0;
  for (const std::string& f : files) {
    const std::vector<Finding> findings =
        AnalyzeSource(f, contents[f], ClassifyPath(f), registry);
    for (const Finding& fi : findings) {
      std::printf("%s:%d: [%s] %s\n", fi.file.c_str(), fi.line,
                  fi.rule.c_str(), fi.message.c_str());
    }
    total += (int)findings.size();
  }
  if (total == 0) {
    std::printf("sdrlint: %zu files, clean\n", files.size());
  } else {
    std::printf("sdrlint: %zu files, %d finding%s\n", files.size(), total,
                total == 1 ? "" : "s");
  }
  return total;
}

}  // namespace sdr::lint
