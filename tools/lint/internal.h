// Shared internals of the sdrlint rule engine: annotation tables, token
// cursors, bracket matching, and function/class span discovery. Everything
// here is header-only and lexical; rule passes in analyze.cc,
// concurrency.cc, and index.cc build on these primitives.
#ifndef SDR_TOOLS_LINT_INTERNAL_H_
#define SDR_TOOLS_LINT_INTERNAL_H_

#include <algorithm>
#include <cctype>
#include <cstring>
#include <string>

#include "tools/lint/lint.h"

namespace sdr::lint::internal {

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

struct LineAnn {
  // One flag per marker word in the annotation grammar: allow(Rn ...),
  // public, secret, protocol-enum, lane_confined, shared_atomic, and
  // guarded_by(mutex_name). (Spelled indirectly here on purpose — a literal
  // marker in this comment would annotate these very members.)
  std::set<std::string> allow;  // rule names from the allow(...) form
  bool is_public = false;
  bool is_secret = false;
  bool protocol_enum = false;
  bool lane_confined = false;
  bool shared_atomic = false;
  std::string guarded_by;
};

// Extracts sdrlint markers from one comment's text.
inline void ParseMarkers(const std::string& text, LineAnn& ann) {
  size_t pos = 0;
  while ((pos = text.find("sdrlint:", pos)) != std::string::npos) {
    size_t word_start = pos + std::strlen("sdrlint:");
    size_t word_end = word_start;
    while (word_end < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[word_end])) ||
            text[word_end] == '-' || text[word_end] == '_')) {
      ++word_end;
    }
    std::string word = text.substr(word_start, word_end - word_start);
    auto paren_arg = [&]() -> std::string {
      if (word_end >= text.size() || text[word_end] != '(') {
        return "";
      }
      size_t close = text.find(')', word_end);
      return close == std::string::npos
                 ? text.substr(word_end + 1)
                 : text.substr(word_end + 1, close - word_end - 1);
    };
    if (word == "secret") {
      ann.is_secret = true;
    } else if (word == "public") {
      ann.is_public = true;
    } else if (word == "protocol-enum") {
      ann.protocol_enum = true;
    } else if (word == "lane_confined") {
      ann.lane_confined = true;
    } else if (word == "shared_atomic") {
      ann.shared_atomic = true;
    } else if (word == "guarded_by") {
      std::string inner = paren_arg();
      // Strip whitespace; the argument is a member mutex name.
      inner.erase(std::remove_if(inner.begin(), inner.end(),
                                 [](unsigned char c) {
                                   return std::isspace(c) != 0;
                                 }),
                  inner.end());
      if (!inner.empty()) {
        ann.guarded_by = inner;
      }
    } else if (word == "allow") {
      std::string inner = paren_arg();
      if (!inner.empty()) {
        // First whitespace-delimited word is the rule; rest is rationale.
        size_t sp = inner.find_first_of(" \t");
        ann.allow.insert(sp == std::string::npos ? inner
                                                 : inner.substr(0, sp));
      }
    }
    pos = word_end;
  }
}

class Annotations {
 public:
  explicit Annotations(const std::vector<Token>& toks) {
    // Raw per-line markers, and which lines hold only comments.
    for (const Token& t : toks) {
      if (t.kind == TokKind::kComment) {
        ParseMarkers(t.text, raw_[t.line]);
        int lines_spanned =
            (int)std::count(t.text.begin(), t.text.end(), '\n');
        comment_only_.insert(t.line);
        last_comment_line_[t.line] = t.line + lines_spanned;
      } else {
        code_lines_.insert(t.line);
      }
    }
    for (int l : code_lines_) {
      comment_only_.erase(l);
    }
  }

  // Annotations governing `line`: markers on the line itself plus markers
  // from an immediately preceding run of comment-only lines.
  LineAnn Effective(int line) const {
    LineAnn out = Get(line);
    int l = line - 1;
    while (comment_only_.count(l) != 0) {
      Merge(out, Get(l));
      --l;
    }
    // A multi-line block comment ending just above also governs this line.
    for (const auto& [start, end] : last_comment_line_) {
      if (comment_only_.count(start) != 0 && end == line - 1 && start < l) {
        Merge(out, Get(start));
      }
    }
    return out;
  }

  bool Allowed(int line, const char* rule) const {
    LineAnn a = Effective(line);
    return a.allow.count(rule) != 0 ||
           (std::strcmp(rule, "R5") == 0 && a.is_public);
  }

 private:
  LineAnn Get(int line) const {
    auto it = raw_.find(line);
    return it == raw_.end() ? LineAnn{} : it->second;
  }
  static void Merge(LineAnn& into, const LineAnn& from) {
    into.allow.insert(from.allow.begin(), from.allow.end());
    into.is_public |= from.is_public;
    into.is_secret |= from.is_secret;
    into.protocol_enum |= from.protocol_enum;
    into.lane_confined |= from.lane_confined;
    into.shared_atomic |= from.shared_atomic;
    if (into.guarded_by.empty()) {
      into.guarded_by = from.guarded_by;
    }
  }

  std::map<int, LineAnn> raw_;
  std::map<int, int> last_comment_line_;  // comment start line -> end line
  std::set<int> comment_only_;
  std::set<int> code_lines_;
};

// ---------------------------------------------------------------------------
// Token-stream helpers (comments skipped)
// ---------------------------------------------------------------------------

// Indices of non-comment tokens, in order.
inline std::vector<size_t> CodeIndex(const std::vector<Token>& toks) {
  std::vector<size_t> idx;
  idx.reserve(toks.size());
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kComment) {
      idx.push_back(i);
    }
  }
  return idx;
}

inline bool IsPunct(const Token& t, const char* p) {
  return t.kind == TokKind::kPunct && t.text == p;
}
inline bool IsIdent(const Token& t, const char* name) {
  return t.kind == TokKind::kIdent && t.text == name;
}

// Matching close for the open bracket at code position `open` ("(" / "[" /
// "{" / "<"); returns code-position of the closer, or `end` if unmatched.
// For "<" the search bails out on tokens that cannot appear in a template
// argument list, so comparison operators are not misparsed.
inline size_t MatchForward(const std::vector<Token>& toks,
                           const std::vector<size_t>& code, size_t open,
                           const char* open_p, const char* close_p) {
  int depth = 0;
  const bool angle = std::strcmp(open_p, "<") == 0;
  for (size_t i = open; i < code.size(); ++i) {
    const Token& t = toks[code[i]];
    if (angle) {
      if (IsPunct(t, "<")) {
        ++depth;
      } else if (IsPunct(t, ">")) {
        if (--depth == 0) {
          return i;
        }
      } else if (IsPunct(t, ">>")) {
        depth -= 2;
        if (depth <= 0) {
          return i;
        }
      } else if (t.kind == TokKind::kPunct &&
                 (t.text == ";" || t.text == "{" || t.text == "}")) {
        return code.size();  // not a template argument list after all
      }
      continue;
    }
    if (IsPunct(t, open_p)) {
      ++depth;
    } else if (IsPunct(t, close_p)) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return code.size();
}

// Matching open bracket for the closer at code position `close`; returns
// code-position of the opener, or code.size() if unmatched.
inline size_t MatchBackward(const std::vector<Token>& toks,
                            const std::vector<size_t>& code, size_t close,
                            const char* open_p, const char* close_p) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    const Token& t = toks[code[i]];
    if (IsPunct(t, close_p)) {
      ++depth;
    } else if (IsPunct(t, open_p)) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return code.size();
}

// Statement bounds around code position `at`: [from, to) delimited by the
// nearest ";", "{", or "}" on either side.
inline void StatementBounds(const std::vector<Token>& toks,
                            const std::vector<size_t>& code, size_t at,
                            size_t* from, size_t* to) {
  size_t a = at;
  while (a > 0) {
    const Token& t = toks[code[a - 1]];
    if (t.kind == TokKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      break;
    }
    --a;
  }
  size_t b = at;
  while (b < code.size()) {
    const Token& t = toks[code[b]];
    if (t.kind == TokKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      break;
    }
    ++b;
  }
  *from = a;
  *to = b;
}

// Function spans as line ranges, for scoping secret tags and sink checks.
struct FuncSpan {
  int start_line = 0;  // line of the opening "{"
  int end_line = 0;    // line of the matching "}"
  size_t header_code = 0;  // first token of the signature
  size_t open_code = 0;
  size_t close_code = 0;
};

inline std::vector<FuncSpan> FunctionSpans(const std::vector<Token>& toks,
                                           const std::vector<size_t>& code) {
  std::vector<FuncSpan> spans;
  int depth = 0;
  int open_depth = -1;
  FuncSpan cur;
  for (size_t i = 0; i < code.size(); ++i) {
    const Token& t = toks[code[i]];
    if (IsPunct(t, "{")) {
      if (open_depth < 0) {
        // A function body iff a ")" appears among the few preceding tokens
        // before any statement terminator or declaration keyword.
        bool is_func = false;
        size_t back = i;
        for (int steps = 0; steps < 8 && back > 0; ++steps) {
          const Token& p = toks[code[--back]];
          if (IsPunct(p, ")")) {
            is_func = true;
            break;
          }
          if (p.kind == TokKind::kPunct &&
              (p.text == ";" || p.text == "{" || p.text == "}" ||
               p.text == "=")) {
            break;
          }
          if (IsIdent(p, "struct") || IsIdent(p, "class") ||
              IsIdent(p, "enum") || IsIdent(p, "namespace") ||
              IsIdent(p, "union")) {
            break;
          }
        }
        if (is_func) {
          // Header starts after the previous statement/block boundary, so
          // sink detection sees the function's own name (e.g. `Encode`).
          size_t header = i;
          while (header > 0) {
            const Token& p = toks[code[header - 1]];
            if (p.kind == TokKind::kPunct &&
                (p.text == ";" || p.text == "{" || p.text == "}")) {
              break;
            }
            --header;
          }
          open_depth = depth;
          cur = FuncSpan{t.line, t.line, header, i, i};
        }
      }
      ++depth;
    } else if (IsPunct(t, "}")) {
      --depth;
      if (open_depth >= 0 && depth == open_depth) {
        cur.end_line = t.line;
        cur.close_code = i;
        spans.push_back(cur);
        open_depth = -1;
      }
    }
  }
  return spans;
}

inline const FuncSpan* SpanForLine(const std::vector<FuncSpan>& spans,
                                   int line) {
  for (const FuncSpan& s : spans) {
    if (line >= s.start_line && line <= s.end_line) {
      return &s;
    }
  }
  return nullptr;
}

// The span governing a tag written on a function's parameter line: the
// span containing the line, or one opening within a few lines below it.
inline const FuncSpan* SpanForTag(const std::vector<FuncSpan>& spans,
                                  int line) {
  if (const FuncSpan* s = SpanForLine(spans, line)) {
    return s;
  }
  for (const FuncSpan& s : spans) {
    if (s.start_line >= line && s.start_line <= line + 4) {
      return &s;
    }
  }
  return nullptr;
}

// The span whose body contains code position `i` (a call site, not an
// out-of-line definition header). Spans do not nest, so at most one matches.
inline const FuncSpan* SpanForCode(const std::vector<FuncSpan>& spans,
                                   size_t i) {
  for (const FuncSpan& s : spans) {
    if (i > s.open_code && i < s.close_code) {
      return &s;
    }
  }
  return nullptr;
}

// The function's own name: the identifier directly before the parameter
// list's "(" in the header (skipping "~" for destructors). Empty when the
// header does not look like a function signature.
inline std::string SpanFuncName(const std::vector<Token>& toks,
                                const std::vector<size_t>& code,
                                const FuncSpan& s) {
  for (size_t i = s.header_code; i < s.open_code; ++i) {
    if (!IsPunct(toks[code[i]], "(") || i == 0) {
      continue;
    }
    size_t n = i - 1;
    if (n > s.header_code && IsPunct(toks[code[n]], "~")) {
      // operator~ is not a function name; destructors put ~ before it.
      --n;
    }
    if (toks[code[n]].kind == TokKind::kIdent) {
      return toks[code[n]].text;
    }
    return "";
  }
  return "";
}

// ---------------------------------------------------------------------------
// Class spans
// ---------------------------------------------------------------------------

struct ClassSpan {
  std::string name;
  int line = 0;
  size_t intro_code = 0;  // the "struct"/"class" keyword
  size_t open_code = 0;   // "{"
  size_t close_code = 0;  // "}"
};

// All `struct Name { ... }` / `class Name { ... }` bodies, including nested
// ones. Template parameter lists, forward declarations, and `enum class`
// are skipped.
inline std::vector<ClassSpan> ClassSpans(const std::vector<Token>& toks,
                                         const std::vector<size_t>& code) {
  std::vector<ClassSpan> spans;
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    const Token& t = toks[code[i]];
    if (!IsIdent(t, "struct") && !IsIdent(t, "class")) {
      continue;
    }
    if (i > 0 && IsIdent(toks[code[i - 1]], "enum")) {
      continue;  // enum class
    }
    if (toks[code[i + 1]].kind != TokKind::kIdent) {
      continue;  // anonymous or template parameter
    }
    ClassSpan cs;
    cs.name = toks[code[i + 1]].text;
    cs.line = t.line;
    cs.intro_code = i;
    // Walk the base-clause to the "{"; bail on anything that means this was
    // not a class-head (template parameter, forward declaration, ...).
    size_t j = i + 2;
    bool ok = false;
    while (j < code.size()) {
      const Token& u = toks[code[j]];
      if (IsPunct(u, "{")) {
        ok = true;
        break;
      }
      if (IsPunct(u, "<")) {
        size_t close = MatchForward(toks, code, j, "<", ">");
        if (close == code.size()) {
          break;
        }
        j = close + 1;
        continue;
      }
      if (u.kind == TokKind::kPunct &&
          (u.text == ";" || u.text == "(" || u.text == ")" ||
           u.text == ">" || u.text == "=" || u.text == "}")) {
        break;
      }
      ++j;
    }
    if (!ok) {
      continue;
    }
    cs.open_code = j;
    cs.close_code = MatchForward(toks, code, j, "{", "}");
    if (cs.close_code == code.size()) {
      continue;
    }
    spans.push_back(cs);
  }
  return spans;
}

// Innermost class span whose body contains code position `i`.
inline const ClassSpan* ClassForCode(const std::vector<ClassSpan>& classes,
                                     size_t i) {
  const ClassSpan* best = nullptr;
  for (const ClassSpan& c : classes) {
    if (i > c.open_code && i < c.close_code &&
        (best == nullptr ||
         c.close_code - c.open_code < best->close_code - best->open_code)) {
      best = &c;
    }
  }
  return best;
}

// The class that owns a function span: `Owner::name(...)` out-of-line
// definitions, else the innermost enclosing class body.
inline std::string SpanOwner(const std::vector<Token>& toks,
                             const std::vector<size_t>& code,
                             const FuncSpan& s,
                             const std::vector<ClassSpan>& classes) {
  for (size_t i = s.header_code; i < s.open_code; ++i) {
    if (!IsPunct(toks[code[i]], "(") || i < 2) {
      continue;
    }
    size_t n = i - 1;
    if (n > s.header_code && IsPunct(toks[code[n]], "~")) {
      --n;
    }
    if (toks[code[n]].kind == TokKind::kIdent && n >= 2 &&
        IsPunct(toks[code[n - 1]], "::") &&
        toks[code[n - 2]].kind == TokKind::kIdent) {
      return toks[code[n - 2]].text;
    }
    break;
  }
  if (const ClassSpan* c = ClassForCode(classes, s.open_code)) {
    return c->name;
  }
  return "";
}

inline bool IsTypeish(const std::string& s) {
  static const std::set<std::string> kTypeish = {
      "const",    "constexpr", "static",   "mutable",  "volatile", "register",
      "signed",   "unsigned",  "int",      "char",     "short",    "long",
      "float",    "double",    "bool",     "void",     "auto",     "struct",
      "class",    "enum",      "union",    "typename", "template", "using",
      "namespace", "return",   "if",       "else",     "while",    "for",
      "switch",   "case",      "default",  "break",    "continue", "sizeof",
      "true",     "false",     "nullptr",  "new",      "delete",   "operator",
      "override", "final",     "noexcept", "inline",   "extern",   "this",
  };
  return kTypeish.count(s) != 0;
}

// ---------------------------------------------------------------------------
// Cross-TU rule passes defined in concurrency.cc, called from AnalyzeSource
// ---------------------------------------------------------------------------

void CheckR6(const std::string& path, const std::vector<Token>& toks,
             const std::vector<size_t>& code, const Annotations& ann,
             const std::vector<FuncSpan>& spans,
             const std::vector<ClassSpan>& classes, const SymbolIndex& index,
             std::vector<Finding>& out);

void CheckR7(const std::string& path, const std::vector<Token>& toks,
             const std::vector<size_t>& code, const Annotations& ann,
             const std::vector<FuncSpan>& spans,
             const std::vector<ClassSpan>& classes,
             std::vector<Finding>& out);

}  // namespace sdr::lint::internal

#endif  // SDR_TOOLS_LINT_INTERNAL_H_
