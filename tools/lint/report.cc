// Baseline file handling and the machine-readable findings report. The
// baseline turns sdrlint into a ratchet: CI fails on *new* findings while
// pre-existing, reviewed ones are suppressed until fixed — and a fixed
// finding shows up as a stale entry so the file never rots. Keys omit line
// numbers on purpose: an edit above a baselined finding must not break the
// gate.
#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/util/json.h"
#include "tools/lint/lint.h"

namespace sdr::lint {

namespace {

// Quotes and backslashes in messages are flattened so a key survives the
// round trip through the baseline file with any JSON-ish parser, including
// our own tokenizer.
std::string SanitizeMessage(const std::string& msg) {
  std::string out = msg;
  for (char& c : out) {
    if (c == '"' || c == '\\' || c == '\n') {
      c = '\'';
    }
  }
  return out;
}

}  // namespace

std::string NormalizeRepoPath(const std::string& path) {
  // Take the suffix starting at the first repo-root component, so
  // `sdrlint src tools` (relative) and ctest's absolute
  // `${CMAKE_SOURCE_DIR}/src` produce identical keys.
  static const char* kRoots[] = {"src/", "tools/", "tests/", "bench/",
                                 "examples/", "docs/"};
  size_t best = std::string::npos;
  for (const char* root : kRoots) {
    size_t pos = path.find(root);
    while (pos != std::string::npos) {
      // Only component boundaries count: start of string or after '/'.
      if (pos == 0 || path[pos - 1] == '/') {
        best = std::min(best, pos);
        break;
      }
      pos = path.find(root, pos + 1);
    }
  }
  return best == std::string::npos ? path : path.substr(best);
}

std::string FindingKey(const Finding& f) {
  return f.rule + "|" + NormalizeRepoPath(f.file) + "|" +
         SanitizeMessage(f.message);
}

bool LoadBaseline(const std::string& path, std::map<std::string, int>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  // The baseline is JSON, but all we need are the string entries of the
  // "findings" array — the lint tokenizer reads them directly.
  const std::vector<Token> toks = Tokenize(ss.str());
  bool in_findings = false;
  int depth = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!in_findings) {
      if (t.kind == TokKind::kString && t.text == "findings" &&
          i + 2 < toks.size() && toks[i + 1].kind == TokKind::kPunct &&
          toks[i + 1].text == ":" && toks[i + 2].kind == TokKind::kPunct &&
          toks[i + 2].text == "[") {
        in_findings = true;
        depth = 0;
        i += 2;
      }
      continue;
    }
    if (t.kind == TokKind::kPunct && t.text == "[") {
      ++depth;
    } else if (t.kind == TokKind::kPunct && t.text == "]") {
      if (depth-- == 0) {
        in_findings = false;
      }
    } else if (t.kind == TokKind::kString) {
      ++(*out)[t.text];
    }
  }
  return true;
}

std::string BaselineToJson(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) {
    keys.push_back(FindingKey(f));
  }
  std::sort(keys.begin(), keys.end());
  JsonValue root = JsonValue::Object();
  root["tool"] = "sdrlint-baseline-v1";
  root["comment"] =
      "Reviewed pre-existing findings; sdrlint fails only on findings not "
      "listed here. Regenerate with sdrlint --update_baseline after fixing "
      "one.";
  JsonValue arr = JsonValue::Array();
  for (const std::string& k : keys) {
    arr.Append(JsonValue(k));
  }
  root["findings"] = std::move(arr);
  return root.Dump(2) + "\n";
}

BaselineDiff DiffAgainstBaseline(const std::vector<Finding>& findings,
                                 const std::map<std::string, int>& baseline) {
  BaselineDiff diff;
  std::map<std::string, int> used;
  for (const Finding& f : findings) {
    const std::string key = FindingKey(f);
    auto it = baseline.find(key);
    if (it != baseline.end() && used[key] < it->second) {
      ++used[key];
      diff.suppressed.push_back(f);
    } else {
      diff.fresh.push_back(f);
    }
  }
  for (const auto& [key, count] : baseline) {
    for (int i = used[key]; i < count; ++i) {
      diff.fixed.push_back(key);
    }
  }
  return diff;
}

std::string ReportJson(size_t files_scanned,
                       const std::vector<Finding>& findings,
                       const BaselineDiff* diff) {
  JsonValue root = JsonValue::Object();
  root["tool"] = "sdrlint";
  root["files_scanned"] = (int64_t)files_scanned;
  root["total_findings"] = (int64_t)findings.size();

  std::map<std::string, int64_t> per_rule;
  JsonValue arr = JsonValue::Array();
  std::set<std::string> fresh_keys;
  std::map<std::string, int> fresh_budget;
  if (diff != nullptr) {
    for (const Finding& f : diff->fresh) {
      ++fresh_budget[FindingKey(f) + "@" + std::to_string(f.line)];
    }
  }
  for (const Finding& f : findings) {
    ++per_rule[f.rule];
    JsonValue item = JsonValue::Object();
    item["rule"] = f.rule;
    item["file"] = NormalizeRepoPath(f.file);
    item["line"] = (int64_t)f.line;
    item["message"] = f.message;
    item["key"] = FindingKey(f);
    if (diff != nullptr) {
      const std::string slot = FindingKey(f) + "@" + std::to_string(f.line);
      auto it = fresh_budget.find(slot);
      const bool fresh = it != fresh_budget.end() && it->second > 0;
      if (fresh) {
        --it->second;
      }
      item["status"] = fresh ? "fresh" : "baseline";
    }
    arr.Append(std::move(item));
  }
  root["findings"] = std::move(arr);

  JsonValue rules = JsonValue::Object();
  for (const auto& [rule, count] : per_rule) {
    rules[rule] = count;
  }
  root["per_rule"] = std::move(rules);

  if (diff != nullptr) {
    JsonValue b = JsonValue::Object();
    b["fresh"] = (int64_t)diff->fresh.size();
    b["suppressed"] = (int64_t)diff->suppressed.size();
    JsonValue fixed = JsonValue::Array();
    std::vector<std::string> fixed_sorted = diff->fixed;
    std::sort(fixed_sorted.begin(), fixed_sorted.end());
    for (const std::string& k : fixed_sorted) {
      fixed.Append(JsonValue(k));
    }
    b["fixed"] = std::move(fixed);
    root["baseline"] = std::move(b);
  }
  return root.Dump(2) + "\n";
}

}  // namespace sdr::lint
