// sdrlint — project-invariant linter for the secure-data-replication repo.
//
// A self-contained static analyzer (own tokenizer, no libclang) that
// enforces invariants the compiler cannot check but the paper's guarantees
// depend on. Since v2 it is a two-pass, repo-wide analyzer: pass 1 builds a
// cross-translation-unit SymbolIndex (protocol enums, annotated members,
// Encode/Decode body shapes); pass 2 runs rule families over each file plus
// index-wide checks. Rules are named and individually suppressible:
//
//   R1 determinism      — no ambient nondeterminism (rand, random_device,
//                         wall clocks, clock_gettime/nanosleep, sockets,
//                         getenv, <random>/<chrono>/<ctime>/<sys/epoll.h>
//                         includes) in src/sim, src/core, src/chaos,
//                         src/trace; the seeded RNG in src/util/rng is the
//                         only sanctioned source. Every chaos sweep and
//                         EXPERIMENTS.md claim depends on bit-identical
//                         replays. src/runtime/ and tools/ are exempt by
//                         design: that is the real-transport domain
//                         (RealEnv, sdrnode, sdrcluster) where real clocks,
//                         sockets, and threads live — protocol role code
//                         reaches them only through the Env interface.
//   R2 ordered-output   — no iteration over std::unordered_map/set inside
//                         functions that feed serialization, metrics dumps,
//                         or log lines (hash order differs across standard
//                         libraries and runs).
//   R3 exhaustiveness   — switches over protocol enums (annotated
//                         `// sdrlint:protocol-enum`) must name every
//                         enumerator and carry no `default:`, so a new
//                         message type or fault kind fails the lint instead
//                         of being silently dropped.
//   R4 serde pairing    — every Encode/EncodeTo in src/core/messages.* and
//                         src/core/pledge.* has a matching Decode/DecodeFrom
//                         for the same struct in the same file.
//   R5 constant-time    — in src/crypto, values tagged `// sdrlint:secret`
//                         must not reach branch conditions, ==/!= compares,
//                         memcmp, or array subscripts; `// sdrlint:public`
//                         downgrades a genuinely public line. Raw memcmp in
//                         crypto code always needs a public annotation or
//                         ConstantTimeEquals.
//   R6 thread discipline — members tagged `sdrlint:guarded_by(m)` may only
//                         be touched while a lock idiom over `m`
//                         (lock_guard/unique_lock/scoped_lock/shared_lock or
//                         m.lock()) is in scope; members tagged
//                         `sdrlint:lane_confined` (per-worker-lane slot
//                         vectors) must be subscripted by the lane id inside
//                         worker-pool parallel regions and never mutated
//                         there; `sdrlint:shared_atomic` asserts the
//                         declaration really is a std::atomic.
//   R7 view lifetime    — a BytesView (non-owning window) may not be stored
//                         in a member or container unless the owning
//                         Payload is co-stored in the same class; views
//                         taken from temporaries (`MakeX().view()`),
//                         returned over function-local buffers, or captured
//                         by reference into deferred callbacks are flagged.
//   R8 serde symmetry   — extends R4 from name pairing to body analysis:
//                         the field write sequence in Encode/EncodeTo must
//                         match the field read sequence in the paired
//                         Decode/DecodeFrom, so a reordered or skipped
//                         field fails lint instead of corrupting the wire.
//
// Annotation grammar (in any comment, same line or a comment-only line
// directly above the code it governs):
//   sdrlint:secret            tag variables declared on this line as secret
//   sdrlint:public            declare this line's data public by design (R5)
//   sdrlint:protocol-enum     mark the enum declared here as a protocol enum
//   sdrlint:guarded_by(m)     member on this line is protected by mutex `m`
//   sdrlint:lane_confined     member is a per-lane slot vector; see R6
//   sdrlint:shared_atomic     member is cross-thread but atomic; see R6
//   sdrlint:allow(Rn[ reason])  suppress rule Rn here
//
// See docs/ANALYSIS.md for the full rule catalogue and rationale.
#ifndef SDR_TOOLS_LINT_LINT_H_
#define SDR_TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sdr::lint {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals
  kString,   // string literal (text excludes quotes)
  kChar,     // character literal
  kPunct,    // operators and punctuation, longest-match (e.g. "==", "::")
  kComment,  // // or /* */ comment, full text including markers
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

// Tokenizes C++ source. Comments are kept (annotations live there);
// preprocessor directives are tokenized like ordinary code. Raw strings,
// escapes, and line continuations are handled; the tokenizer never fails —
// unterminated constructs run to end of file.
std::vector<Token> Tokenize(const std::string& src);

// ---------------------------------------------------------------------------
// Findings and per-file rule applicability
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;  // "R1".."R8"
  std::string file;
  int line = 0;
  std::string message;
};

// Which rules apply to a file, derived from its repo-relative path.
struct FileClass {
  bool r1 = false;  // determinism domain: src/sim, src/core, src/chaos
  bool r2 = true;   // everywhere
  bool r3 = true;   // everywhere
  bool r4 = false;  // serde files: src/core/{messages,pledge,shard}.*
  bool r5 = false;  // src/crypto
  bool r6 = true;   // everywhere (annotation-driven)
  bool r7 = true;   // everywhere (BytesView/Payload lifetime)
  bool r8 = false;  // serde-body domain; see ClassifyPath
};

FileClass ClassifyPath(const std::string& path);

// Protocol-enum registry: enum name (unqualified) -> enumerator names.
using EnumRegistry = std::map<std::string, std::vector<std::string>>;

// Collects enums annotated `sdrlint:protocol-enum` from one file's source.
// (Subsumed by IndexSource; kept as the narrow single-purpose entry point.)
void CollectProtocolEnums(const std::string& src, EnumRegistry& registry);

// ---------------------------------------------------------------------------
// Cross-translation-unit symbol index (pass 1)
// ---------------------------------------------------------------------------

// One thread-discipline-annotated member of a class.
struct MemberAnn {
  std::string guarded_by;      // mutex member name, if guarded
  bool lane_confined = false;  // per-lane slot vector
  bool shared_atomic = false;  // cross-thread atomic
  bool decl_atomic = false;    // declaration statement mentions `atomic`
  int line = 0;                // declaration line
};

struct ClassInfo {
  std::string file;  // file that declared the class body
  int line = 0;
  std::map<std::string, MemberAnn> members;  // annotated members only
};

// One field access in an Encode/Decode body, in statement order.
struct SerdeStep {
  std::string field;  // "" when the field name is not recoverable
  std::string op;     // "U8", "Blob", "nested", helper suffix, ...
  int line = 0;
};

struct SerdeBody {
  std::string file;
  int line = 0;  // 0 == absent
  bool allowed = false;  // sdrlint:allow(R8) on the definition
  std::vector<SerdeStep> steps;
};

// The four serde methods of one struct (any may be absent).
struct SerdeInfo {
  SerdeBody encode, decode, encode_to, decode_from;
};

struct SymbolIndex {
  EnumRegistry enums;
  std::map<std::string, ClassInfo> classes;  // class name -> annotations
  std::map<std::string, SerdeInfo> serde;    // struct name -> bodies
};

// Pass 1 over one file: protocol enums, annotated members, and (for files
// in the serde-body domain) Encode/Decode field sequences.
void IndexSource(const std::string& path, const std::string& src,
                 SymbolIndex& index);

// Pass 2 over one file: runs all applicable per-file rules.
std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& src,
                                   const FileClass& fc,
                                   const SymbolIndex& index);

// Pass 2, index-wide: rules that need every translation unit at once
// (R8 serde field-order symmetry). Findings point at the Decode side.
std::vector<Finding> AnalyzeIndex(const SymbolIndex& index);

// ---------------------------------------------------------------------------
// Baseline and JSON report
// ---------------------------------------------------------------------------

// Stable identity of a finding across checkouts: "Rn|repo-path|message"
// with the path normalized to start at src/, tools/, tests/, bench/, or
// examples/ and quotes/backslashes in the message flattened. Line numbers
// are deliberately excluded so unrelated edits above a baselined finding
// do not break the gate.
std::string FindingKey(const Finding& f);

// Path normalization used by FindingKey (exposed for tests).
std::string NormalizeRepoPath(const std::string& path);

// Baseline: finding key -> count. Parses tools/lint/baseline.json (written
// by --update_baseline); returns false on unreadable/malformed input.
bool LoadBaseline(const std::string& path, std::map<std::string, int>* out);

// Serializes a baseline for the given findings (sorted keys, duplicate
// keys kept as repeated entries).
std::string BaselineToJson(const std::vector<Finding>& findings);

// Splits findings into fresh (beyond the baseline's count for their key)
// and suppressed; `fixed` receives baseline keys whose count exceeds what
// the current run produced (stale entries to delete from the file).
struct BaselineDiff {
  std::vector<Finding> fresh;
  std::vector<Finding> suppressed;
  std::vector<std::string> fixed;
};
BaselineDiff DiffAgainstBaseline(const std::vector<Finding>& findings,
                                 const std::map<std::string, int>& baseline);

// Machine-readable report: files scanned, findings with status, per-rule
// counts, baseline summary. Sorted-key JSON, byte-stable across runs.
std::string ReportJson(size_t files_scanned,
                       const std::vector<Finding>& findings,
                       const BaselineDiff* diff);

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

// Recursively collects .h/.cc files under each path (files are taken as
// given), sorted for deterministic output.
std::vector<std::string> CollectFiles(const std::vector<std::string>& paths);

struct RunOptions {
  std::string baseline_path;   // compare findings against this baseline
  std::string json_path;       // write the JSON report here
  bool update_baseline = false;  // rewrite baseline_path from this run
};

// Runs the two-pass lint over the given files/directories; prints findings
// gcc-style ("file:line: [Rn] message") to stdout. Returns the number of
// findings that fail the gate: all of them without a baseline, only fresh
// ones (plus baseline I/O errors) with one.
int RunTool(const std::vector<std::string>& paths);
int RunTool(const std::vector<std::string>& paths, const RunOptions& opts);

}  // namespace sdr::lint

#endif  // SDR_TOOLS_LINT_LINT_H_
