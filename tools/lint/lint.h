// sdrlint — project-invariant linter for the secure-data-replication repo.
//
// A self-contained static analyzer (own tokenizer, no libclang) that
// enforces invariants the compiler cannot check but the paper's guarantees
// depend on. Rules are named and individually suppressible:
//
//   R1 determinism      — no ambient nondeterminism (rand, random_device,
//                         wall clocks, clock_gettime/nanosleep, sockets,
//                         getenv, <random>/<chrono>/<ctime>/<sys/epoll.h>
//                         includes) in src/sim, src/core, src/chaos,
//                         src/trace; the seeded RNG in src/util/rng is the
//                         only sanctioned source. Every chaos sweep and
//                         EXPERIMENTS.md claim depends on bit-identical
//                         replays. src/runtime/ and tools/ are exempt by
//                         design: that is the real-transport domain
//                         (RealEnv, sdrnode, sdrcluster) where real clocks,
//                         sockets, and threads live — protocol role code
//                         reaches them only through the Env interface.
//   R2 ordered-output   — no iteration over std::unordered_map/set inside
//                         functions that feed serialization, metrics dumps,
//                         or log lines (hash order differs across standard
//                         libraries and runs).
//   R3 exhaustiveness   — switches over protocol enums (annotated
//                         `// sdrlint:protocol-enum`) must name every
//                         enumerator and carry no `default:`, so a new
//                         message type or fault kind fails the lint instead
//                         of being silently dropped.
//   R4 serde pairing    — every Encode/EncodeTo in src/core/messages.* and
//                         src/core/pledge.* has a matching Decode/DecodeFrom
//                         for the same struct in the same file.
//   R5 constant-time    — in src/crypto, values tagged `// sdrlint:secret`
//                         must not reach branch conditions, ==/!= compares,
//                         memcmp, or array subscripts; `// sdrlint:public`
//                         downgrades a genuinely public line. Raw memcmp in
//                         crypto code always needs a public annotation or
//                         ConstantTimeEquals.
//
// Annotation grammar (in any comment, same line or a comment-only line
// directly above the code it governs):
//   sdrlint:secret            tag variables declared on this line as secret
//   sdrlint:public            declare this line's data public by design (R5)
//   sdrlint:protocol-enum     mark the enum declared here as a protocol enum
//   sdrlint:allow(Rn[ reason])  suppress rule Rn here
//
// See docs/ANALYSIS.md for the full rule catalogue and rationale.
#ifndef SDR_TOOLS_LINT_LINT_H_
#define SDR_TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sdr::lint {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals
  kString,   // string literal (text excludes quotes)
  kChar,     // character literal
  kPunct,    // operators and punctuation, longest-match (e.g. "==", "::")
  kComment,  // // or /* */ comment, full text including markers
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

// Tokenizes C++ source. Comments are kept (annotations live there);
// preprocessor directives are tokenized like ordinary code. Raw strings,
// escapes, and line continuations are handled; the tokenizer never fails —
// unterminated constructs run to end of file.
std::vector<Token> Tokenize(const std::string& src);

// ---------------------------------------------------------------------------
// Findings and per-file rule applicability
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;  // "R1".."R5"
  std::string file;
  int line = 0;
  std::string message;
};

// Which rules apply to a file, derived from its repo-relative path.
struct FileClass {
  bool r1 = false;  // determinism domain: src/sim, src/core, src/chaos
  bool r2 = true;   // everywhere
  bool r3 = true;   // everywhere
  bool r4 = false;  // serde files: src/core/messages.*, src/core/pledge.*
  bool r5 = false;  // src/crypto
};

FileClass ClassifyPath(const std::string& path);

// Protocol-enum registry: enum name (unqualified) -> enumerator names.
using EnumRegistry = std::map<std::string, std::vector<std::string>>;

// First pass: records enums annotated `sdrlint:protocol-enum` in `src`.
void CollectProtocolEnums(const std::string& src, EnumRegistry& registry);

// Second pass: runs all applicable rules over one file's contents.
std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& src,
                                   const FileClass& fc,
                                   const EnumRegistry& registry);

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

// Recursively collects .h/.cc files under each path (files are taken as
// given), sorted for deterministic output.
std::vector<std::string> CollectFiles(const std::vector<std::string>& paths);

// Runs the two-pass lint over the given files/directories; prints findings
// gcc-style ("file:line: [Rn] message") to stdout. Returns the number of
// findings (0 == clean).
int RunTool(const std::vector<std::string>& paths);

}  // namespace sdr::lint

#endif  // SDR_TOOLS_LINT_LINT_H_
