// Rule families R6 (thread confinement & lock discipline) and R7
// (BytesView lifetime escape). R6 consumes the cross-TU SymbolIndex so a
// member annotated in a header is checked at every use site in every
// translation unit; R7 is purely per-file.
#include <algorithm>

#include "tools/lint/internal.h"
#include "tools/lint/lint.h"

namespace sdr::lint::internal {

namespace {

// ---------------------------------------------------------------------------
// R6 helpers
// ---------------------------------------------------------------------------

bool IsLockClassName(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

// True when, scanning backward from the use at code position `use` to the
// function's opening "{", a lock idiom over `mutex` is found in a scope
// that still encloses the use: a lock_guard/unique_lock/scoped_lock/
// shared_lock constructed over the mutex, or an explicit mutex.lock().
// Scopes already closed before the use (sibling blocks) do not count.
bool LockHeldAt(const std::vector<Token>& toks,
                const std::vector<size_t>& code, size_t use,
                const FuncSpan& span, const std::string& mutex) {
  int level = 0;
  for (size_t k = use; k > span.open_code; --k) {
    const Token& u = toks[code[k - 1]];
    if (IsPunct(u, "}")) {
      ++level;
    } else if (IsPunct(u, "{")) {
      --level;
    } else if (level <= 0 && u.kind == TokKind::kIdent) {
      if (IsLockClassName(u.text)) {
        size_t from, to;
        StatementBounds(toks, code, k - 1, &from, &to);
        for (size_t x = from; x < to; ++x) {
          if (IsIdent(toks[code[x]], mutex.c_str())) {
            return true;
          }
        }
      } else if (u.text == mutex && k < code.size() &&
                 IsPunct(toks[code[k]], ".") && k + 1 < code.size() &&
                 IsIdent(toks[code[k + 1]], "lock")) {
        return true;
      }
    }
  }
  return false;
}

// A worker-pool parallel region: the literal lambda argument of a
// `PoolRun(...)` call or a `pool->Run(...)` / `pool.Run(...)` call.
struct PoolRegion {
  size_t body_open = 0;
  size_t body_close = 0;
  std::string lane_param;  // first lambda parameter name; "" when unnamed
};

std::vector<PoolRegion> FindPoolRegions(const std::vector<Token>& toks,
                                        const std::vector<size_t>& code) {
  std::vector<PoolRegion> regions;
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    const Token& t = toks[code[i]];
    if (t.kind != TokKind::kIdent || !IsPunct(toks[code[i + 1]], "(")) {
      continue;
    }
    bool is_pool_call = t.text == "PoolRun";
    if (!is_pool_call && t.text == "Run" && i >= 2 &&
        (IsPunct(toks[code[i - 1]], ".") ||
         IsPunct(toks[code[i - 1]], "->")) &&
        toks[code[i - 2]].kind == TokKind::kIdent) {
      std::string recv = toks[code[i - 2]].text;
      std::transform(recv.begin(), recv.end(), recv.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      is_pool_call = recv.find("pool") != std::string::npos;
    }
    if (!is_pool_call) {
      continue;
    }
    const size_t args_close = MatchForward(toks, code, i + 1, "(", ")");
    if (args_close == code.size()) {
      continue;
    }
    // Lambda intro: a "[" directly after "(" or a top-level ",".
    int depth = 0;
    for (size_t m = i + 2; m < args_close; ++m) {
      const Token& u = toks[code[m]];
      if (IsPunct(u, "(") || IsPunct(u, "{")) {
        ++depth;
      } else if (IsPunct(u, ")") || IsPunct(u, "}")) {
        --depth;
      }
      if (depth != 0 || !IsPunct(u, "[")) {
        continue;
      }
      const Token& prev = toks[code[m - 1]];
      if (!IsPunct(prev, "(") && !IsPunct(prev, ",")) {
        continue;  // a subscript, not a lambda introducer
      }
      PoolRegion region;
      size_t j = MatchForward(toks, code, m, "[", "]") + 1;
      if (j < args_close && IsPunct(toks[code[j]], "(")) {
        const size_t pclose = MatchForward(toks, code, j, "(", ")");
        // First parameter: tokens up to the first top-level ",". A lone
        // type token means the lane id is unnamed (and thus unusable).
        std::vector<size_t> param;
        for (size_t x = j + 1; x < pclose; ++x) {
          if (IsPunct(toks[code[x]], ",")) {
            break;
          }
          param.push_back(x);
        }
        if (param.size() >= 2 &&
            toks[code[param.back()]].kind == TokKind::kIdent &&
            !IsTypeish(toks[code[param.back()]].text)) {
          region.lane_param = toks[code[param.back()]].text;
        }
        j = pclose + 1;
      }
      while (j < args_close && !IsPunct(toks[code[j]], "{")) {
        ++j;
      }
      if (j >= args_close) {
        break;
      }
      region.body_open = j;
      region.body_close = MatchForward(toks, code, j, "{", "}");
      regions.push_back(region);
      m = region.body_close;
    }
  }
  return regions;
}

}  // namespace

// ---------------------------------------------------------------------------
// R6 — thread confinement & lock discipline
// ---------------------------------------------------------------------------

void CheckR6(const std::string& path, const std::vector<Token>& toks,
             const std::vector<size_t>& code, const Annotations& ann,
             const std::vector<FuncSpan>& spans,
             const std::vector<ClassSpan>& classes, const SymbolIndex& index,
             std::vector<Finding>& out) {
  // (a) shared_atomic consistency: the declaration this file annotates must
  // really be a std::atomic — the annotation is a claim, not a wish.
  for (const auto& [cname, ci] : index.classes) {
    if (ci.file != path) {
      continue;
    }
    for (const auto& [mname, m] : ci.members) {
      if (m.shared_atomic && !m.decl_atomic &&
          !ann.Allowed(m.line, "R6")) {
        out.push_back({"R6", path, m.line,
                       "member `" + mname + "` of " + cname +
                           " is tagged sdrlint:shared_atomic but its "
                           "declaration is not a std::atomic; cross-thread "
                           "plain loads/stores are data races"});
      }
    }
  }

  // Pre-resolve each function span's owning class and constructor-ness.
  std::vector<std::string> owners(spans.size());
  std::vector<bool> is_ctor(spans.size(), false);
  for (size_t s = 0; s < spans.size(); ++s) {
    owners[s] = SpanOwner(toks, code, spans[s], classes);
    const std::string fname = SpanFuncName(toks, code, spans[s]);
    if (!owners[s].empty() && fname == owners[s]) {
      bool dtor = false;
      for (size_t i = spans[s].header_code; i < spans[s].open_code; ++i) {
        if (IsPunct(toks[code[i]], "~")) {
          dtor = true;
          break;
        }
      }
      is_ctor[s] = !dtor;
    }
  }
  auto span_index_of = [&](size_t i) -> int {
    for (size_t s = 0; s < spans.size(); ++s) {
      if (i > spans[s].open_code && i < spans[s].close_code) {
        return (int)s;
      }
    }
    return -1;
  };

  // (b) guarded members: every use inside the owning class's methods must
  // have a lock idiom over the guard in scope. Constructors are exempt —
  // the object is not shared until the constructor returns.
  for (size_t i = 0; i < code.size(); ++i) {
    const Token& t = toks[code[i]];
    if (t.kind != TokKind::kIdent || IsTypeish(t.text)) {
      continue;
    }
    if (i > 0) {
      const Token& prev = toks[code[i - 1]];
      if (IsPunct(prev, ".") || IsPunct(prev, "::")) {
        continue;  // member of some other object
      }
      if (IsPunct(prev, "->") &&
          !(i >= 2 && IsIdent(toks[code[i - 2]], "this"))) {
        continue;
      }
    }
    const int s = span_index_of(i);
    if (s < 0 || owners[s].empty() || is_ctor[s]) {
      continue;
    }
    auto ci = index.classes.find(owners[s]);
    if (ci == index.classes.end()) {
      continue;
    }
    auto m = ci->second.members.find(t.text);
    if (m == ci->second.members.end() || m->second.guarded_by.empty()) {
      continue;
    }
    if (t.text == m->second.guarded_by) {
      continue;  // the mutex itself is not guarded by itself
    }
    if (ann.Allowed(t.line, "R6")) {
      continue;
    }
    if (!LockHeldAt(toks, code, i, spans[s], m->second.guarded_by)) {
      out.push_back(
          {"R6", path, t.line,
           "member `" + t.text + "` of " + owners[s] +
               " is sdrlint:guarded_by(" + m->second.guarded_by +
               ") but no lock_guard/unique_lock/scoped_lock over `" +
               m->second.guarded_by + "` is in scope here"});
    }
  }

  // (c) lane-confined members inside worker-pool parallel regions: every
  // access must be a per-lane subscript `member[lane]`; anything else —
  // unsubscripted reads, container mutation, wrong index — crosses lanes
  // and breaks the deterministic merge. Outside regions (constructor
  // setup, post-join merge) access is unrestricted.
  std::map<std::string, std::string> lane_members;  // member -> class
  for (const auto& [cname, ci] : index.classes) {
    for (const auto& [mname, m] : ci.members) {
      if (m.lane_confined) {
        lane_members[mname] = cname;
      }
    }
  }
  if (lane_members.empty()) {
    return;
  }
  for (const PoolRegion& region : FindPoolRegions(toks, code)) {
    for (size_t i = region.body_open + 1; i < region.body_close; ++i) {
      const Token& t = toks[code[i]];
      if (t.kind != TokKind::kIdent ||
          lane_members.count(t.text) == 0) {
        continue;
      }
      if (i > 0 && (IsPunct(toks[code[i - 1]], ".") ||
                    IsPunct(toks[code[i - 1]], "::"))) {
        continue;
      }
      if (ann.Allowed(t.line, "R6")) {
        continue;
      }
      bool ok = false;
      if (i + 1 < code.size() && IsPunct(toks[code[i + 1]], "[") &&
          !region.lane_param.empty()) {
        const size_t close = MatchForward(toks, code, i + 1, "[", "]");
        for (size_t x = i + 2; x < close; ++x) {
          if (IsIdent(toks[code[x]], region.lane_param.c_str())) {
            ok = true;
            break;
          }
        }
      }
      if (!ok) {
        out.push_back(
            {"R6", path, t.line,
             "lane-confined member `" + t.text + "` of " +
                 lane_members[t.text] +
                 " used inside a worker-pool region without a per-lane `[" +
                 (region.lane_param.empty() ? "lane" : region.lane_param) +
                 "]` subscript; cross-lane access breaks the deterministic "
                 "merge"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R7 — BytesView lifetime escape
// ---------------------------------------------------------------------------

namespace {

bool InAnyHeader(const std::vector<FuncSpan>& spans, size_t i) {
  for (const FuncSpan& s : spans) {
    if (i >= s.header_code && i <= s.open_code) {
      return true;
    }
  }
  return false;
}

// BytesView-typed locals declared in a span's body (not its parameters).
std::set<std::string> ViewLocals(const std::vector<Token>& toks,
                                 const std::vector<size_t>& code,
                                 const FuncSpan& span) {
  std::set<std::string> locals;
  for (size_t i = span.open_code + 1; i + 1 < span.close_code; ++i) {
    if (!IsIdent(toks[code[i]], "BytesView")) {
      continue;
    }
    const Token& next = toks[code[i + 1]];
    if (next.kind == TokKind::kIdent && !IsTypeish(next.text) &&
        i + 2 < code.size()) {
      const Token& after = toks[code[i + 2]];
      if (after.kind == TokKind::kPunct &&
          (after.text == "=" || after.text == ";" || after.text == "(" ||
           after.text == "{")) {
        locals.insert(next.text);
      }
    }
  }
  return locals;
}

}  // namespace

void CheckR7(const std::string& path, const std::vector<Token>& toks,
             const std::vector<size_t>& code, const Annotations& ann,
             const std::vector<FuncSpan>& spans,
             const std::vector<ClassSpan>& classes,
             std::vector<Finding>& out) {
  // (a1) BytesView data members: a stored view outlives the expression that
  // made it, so the class must co-store the owning Payload/Bytes buffer.
  for (const ClassSpan& cs : classes) {
    bool co_stores_owner = false;
    for (size_t i = cs.open_code + 1; i < cs.close_code; ++i) {
      const Token& t = toks[code[i]];
      if (IsIdent(t, "Payload") || IsIdent(t, "Bytes")) {
        co_stores_owner = true;
        break;
      }
    }
    if (co_stores_owner) {
      continue;
    }
    for (size_t i = cs.open_code + 1; i < cs.close_code; ++i) {
      if (!IsIdent(toks[code[i]], "BytesView") ||
          SpanForCode(spans, i) != nullptr || InAnyHeader(spans, i)) {
        continue;  // method bodies and signatures may pass views freely
      }
      // A data member iff the statement declares a name and has no "(".
      size_t from, to;
      StatementBounds(toks, code, i, &from, &to);
      bool has_paren = false;
      bool declares = false;
      for (size_t x = from; x < to; ++x) {
        if (IsPunct(toks[code[x]], "(")) {
          has_paren = true;
        }
        if (x > from && toks[code[x]].kind == TokKind::kIdent &&
            !IsTypeish(toks[code[x]].text) &&
            toks[code[x - 1]].kind == TokKind::kIdent) {
          declares = true;
        }
      }
      const int line = toks[code[i]].line;
      if (has_paren || !declares || ann.Allowed(line, "R7")) {
        continue;
      }
      out.push_back({"R7", path, line,
                     "class " + cs.name +
                         " stores a BytesView member without co-storing "
                         "the owning Payload/Bytes; the view dangles when "
                         "the buffer is released"});
    }
  }

  // (a2) containers of BytesView anywhere (members or locals): the
  // container outlives the expressions that filled it.
  static const std::set<std::string> kContainers = {
      "vector", "deque",         "list",          "array",
      "set",    "map",           "unordered_map", "unordered_set",
      "optional", "pair",        "tuple",
  };
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    const Token& t = toks[code[i]];
    if (t.kind != TokKind::kIdent || kContainers.count(t.text) == 0 ||
        !IsPunct(toks[code[i + 1]], "<") || InAnyHeader(spans, i)) {
      continue;
    }
    const size_t close = MatchForward(toks, code, i + 1, "<", ">");
    if (close == code.size()) {
      continue;
    }
    for (size_t x = i + 2; x < close; ++x) {
      if (IsIdent(toks[code[x]], "BytesView") &&
          !ann.Allowed(t.line, "R7")) {
        out.push_back({"R7", path, t.line,
                       "container of BytesView (`" + t.text +
                           "<...BytesView...>`); the views outlive the "
                           "expressions that made them — store Payload "
                           "windows instead"});
        break;
      }
    }
  }

  // (b) view-from-temporary: `MakeX().view()` — the buffer dies at the end
  // of the full expression. Chains rooted in a named owner are safe:
  // `p.Slice(1).view()` shares p's refcounted buffer.
  for (size_t i = 2; i < code.size(); ++i) {
    if (!IsIdent(toks[code[i]], "view") || !IsPunct(toks[code[i - 1]], ".") ||
        !IsPunct(toks[code[i - 2]], ")")) {
      continue;
    }
    bool safe = false;
    size_t cur = i - 2;  // the ")" ending the receiver expression
    while (true) {
      const size_t open = MatchBackward(toks, code, cur, "(", ")");
      if (open == code.size() || open == 0) {
        break;
      }
      const Token& callee = toks[code[open - 1]];
      if (callee.kind != TokKind::kIdent ||
          (callee.text != "Slice" && callee.text != "substr")) {
        break;  // a temporary from some other producer
      }
      if (open < 3) {
        break;
      }
      const Token& sep = toks[code[open - 2]];
      if (!IsPunct(sep, ".") && !IsPunct(sep, "->")) {
        break;
      }
      const Token& recv = toks[code[open - 3]];
      if (recv.kind == TokKind::kIdent) {
        safe = true;  // rooted at a named Payload the caller keeps alive
        break;
      }
      if (IsPunct(recv, ")")) {
        cur = open - 3;  // keep walking the chain
        continue;
      }
      break;
    }
    const int line = toks[code[i]].line;
    if (!safe && !ann.Allowed(line, "R7")) {
      out.push_back({"R7", path, line,
                     ".view() taken on a temporary; the owning buffer dies "
                     "at the end of this expression — bind the Payload to "
                     "a local first"});
    }
  }

  // (c) returning a view over a function-local buffer.
  for (const FuncSpan& s : spans) {
    bool returns_view = false;
    for (size_t i = s.header_code; i < s.open_code; ++i) {
      if (IsPunct(toks[code[i]], "(")) {
        break;
      }
      if (IsIdent(toks[code[i]], "BytesView")) {
        returns_view = true;
        break;
      }
    }
    if (!returns_view) {
      continue;
    }
    // Owning buffers declared in the body (not parameters, which the
    // caller keeps alive).
    std::set<std::string> local_buffers;
    for (size_t i = s.open_code + 1; i + 1 < s.close_code; ++i) {
      const Token& t = toks[code[i]];
      if (!IsIdent(t, "Bytes") && !IsIdent(t, "Payload") &&
          !IsIdent(t, "Writer")) {
        continue;
      }
      const Token& next = toks[code[i + 1]];
      if (next.kind == TokKind::kIdent && !IsTypeish(next.text)) {
        local_buffers.insert(next.text);
      }
    }
    if (local_buffers.empty()) {
      continue;
    }
    for (size_t i = s.open_code + 1; i < s.close_code; ++i) {
      if (!IsIdent(toks[code[i]], "return")) {
        continue;
      }
      size_t from, to;
      StatementBounds(toks, code, i, &from, &to);
      for (size_t x = i + 1; x < to; ++x) {
        const Token& t = toks[code[x]];
        if (t.kind == TokKind::kIdent && local_buffers.count(t.text) != 0 &&
            !ann.Allowed(t.line, "R7")) {
          out.push_back({"R7", path, t.line,
                         "returns a BytesView over function-local buffer `" +
                             t.text +
                             "`, which is destroyed at return; return the "
                             "owning Payload (or Bytes) instead"});
          break;
        }
      }
    }
  }

  // (d) BytesView locals captured by reference into deferred callbacks:
  // the callback runs after the frame (and the view's target) is gone.
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    const Token& t = toks[code[i]];
    if (t.kind != TokKind::kIdent ||
        (t.text != "ScheduleAt" && t.text != "ScheduleAfter") ||
        !IsPunct(toks[code[i + 1]], "(")) {
      continue;
    }
    const FuncSpan* enclosing = SpanForCode(spans, i);
    if (enclosing == nullptr) {
      continue;  // a declaration, not a call
    }
    const std::set<std::string> view_locals =
        ViewLocals(toks, code, *enclosing);
    if (view_locals.empty()) {
      continue;
    }
    const size_t args_close = MatchForward(toks, code, i + 1, "(", ")");
    for (size_t m = i + 2; m < args_close; ++m) {
      if (!IsPunct(toks[code[m]], "[") || m + 1 >= code.size() ||
          !IsPunct(toks[code[m + 1]], "&")) {
        continue;  // only by-reference captures can dangle
      }
      const size_t intro_close = MatchForward(toks, code, m, "[", "]");
      size_t j = intro_close + 1;
      if (j < args_close && IsPunct(toks[code[j]], "(")) {
        j = MatchForward(toks, code, j, "(", ")") + 1;
      }
      while (j < args_close && !IsPunct(toks[code[j]], "{")) {
        ++j;
      }
      if (j >= args_close) {
        break;
      }
      const size_t body_close = MatchForward(toks, code, j, "{", "}");
      for (size_t x = j + 1; x < body_close; ++x) {
        const Token& u = toks[code[x]];
        if (u.kind == TokKind::kIdent && view_locals.count(u.text) != 0 &&
            !ann.Allowed(u.line, "R7")) {
          out.push_back(
              {"R7", path, u.line,
               "BytesView local `" + u.text +
                   "` captured by reference into a deferred callback; the "
                   "view dangles when the callback runs — capture a "
                   "Payload by value instead"});
          break;
        }
      }
      m = body_close;
    }
  }
}

}  // namespace sdr::lint::internal
