// sdrtrace — offline analysis of a binary trace produced by
// `sdrsim --trace_out=<file>` (or any tool that calls EncodeTrace).
//
// Examples:
//   # what happened, who was involved, where did time go
//   ./build/tools/sdrtrace run.sdrt --summary
//
//   # follow one read's causal chain: client -> slave -> auditor -> master
//   ./build/tools/sdrtrace run.sdrt --follow 0x800000001
//
//   # the ten slowest reads, with their trace ids
//   ./build/tools/sdrtrace run.sdrt --slowest 10
//
//   # every exclusion verdict plus the evidence chain that produced it
//   ./build/tools/sdrtrace run.sdrt --verdicts
//
//   # re-export as Chrome trace_event JSON (chrome://tracing, Perfetto)
//   ./build/tools/sdrtrace run.sdrt --chrome trace.json
//
//   # verify a fork-evidence bundle (sdrsim --evidence_out) offline
//   ./build/tools/sdrtrace evidence.sdrb --evidence
#include <cstdio>
#include <string>

#include "src/forkcheck/fork.h"
#include "src/trace/export.h"
#include "src/trace/query.h"
#include "src/util/flags.h"

using namespace sdr;

namespace {

bool ReadFileBytes(const std::string& path, Bytes* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "sdrtrace: cannot open %s\n", path.c_str());
    return false;
  }
  out->clear();
  uint8_t buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "sdrtrace: error reading %s\n", path.c_str());
  }
  return ok;
}

const char* SchemeName(SignatureScheme scheme) {
  switch (scheme) {
    case SignatureScheme::kEd25519:
      return "ed25519";
    case SignatureScheme::kHmacSha256:
      return "hmac";
    case SignatureScheme::kNull:
      return "null";
  }
  return "?";
}

// --evidence mode: the positional file is an EvidenceBundle, not a trace.
// The point of the exercise is that this verification needs nothing from
// the run — only the bundle and the content owner's public key inside it.
int VerifyEvidenceBundle(const std::string& path, const Bytes& raw) {
  auto decoded = EvidenceBundle::Decode(raw);
  if (!decoded.ok()) {
    std::fprintf(stderr, "sdrtrace: %s is not an evidence bundle: %s\n",
                 path.c_str(), decoded.error().message().c_str());
    return 1;
  }
  EvidenceBundle bundle = std::move(decoded).value();
  std::printf("evidence bundle: %zu chain(s), scheme=%s\n",
              bundle.chains.size(), SchemeName(bundle.scheme));
  size_t bad = 0;
  for (size_t i = 0; i < bundle.chains.size(); ++i) {
    const EvidenceChain& chain = bundle.chains[i];
    std::string why;
    bool ok = VerifyEvidenceChain(bundle.scheme, bundle.content_public_key,
                                  chain, &why);
    if (ok) {
      std::printf(
          "  chain %zu: VERIFIED — slave node %u equivocated at version "
          "%llu (heads differ under its own signature)\n",
          i, chain.a.vv.slave,
          static_cast<unsigned long long>(chain.a.vv.content_version));
    } else {
      ++bad;
      std::printf("  chain %zu: FAILED — %s\n", i, why.c_str());
    }
  }
  if (bundle.chains.empty()) {
    std::printf("  (no equivocation evidence was collected)\n");
  }
  std::printf("verdict: %s\n",
              bad == 0 ? "ALL CHAINS VERIFY" : "BUNDLE DOES NOT VERIFY");
  return bad == 0 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.AllowPositional("<trace.sdrt>");
  flags.Define("follow", "",
               "print the causal chain for this trace id (decimal or 0x-hex)")
      .Define("slowest", "0", "rank the N slowest completed reads")
      .Define("verdicts", "false",
              "list exclusion verdicts with their evidence chains")
      .Define("summary", "false",
              "event/name/node/histogram overview of the trace")
      .Define("ids", "false", "list every trace id present")
      .Define("chrome", "",
              "write the trace as Chrome trace_event JSON to this file")
      .Define("evidence", "false",
              "treat the input as a fork-evidence bundle (sdrsim "
              "--evidence_out) and verify every chain offline; exits 3 "
              "if any chain fails");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: sdrtrace <trace.sdrt> [--follow ID] [--slowest N] "
                 "[--verdicts] [--summary] [--ids] [--chrome FILE]\n"
                 "       sdrtrace <bundle.sdrb> --evidence\n");
    return 1;
  }

  Bytes raw;
  if (!ReadFileBytes(flags.positional()[0], &raw)) {
    return 1;
  }
  if (flags.GetBool("evidence")) {
    return VerifyEvidenceBundle(flags.positional()[0], raw);
  }
  auto decoded = DecodeTrace(raw);
  if (!decoded.ok()) {
    std::fprintf(stderr, "sdrtrace: %s: %s\n", flags.positional()[0].c_str(),
                 decoded.error().message().c_str());
    return 1;
  }
  TraceData data = std::move(decoded).value();
  TraceQuery query(data);

  bool did_something = false;

  if (flags.GetBool("summary")) {
    std::fputs(query.FormatSummary().c_str(), stdout);
    did_something = true;
  }
  if (!flags.GetString("follow").empty()) {
    TraceId id = kNoTrace;
    if (!ParseTraceId(flags.GetString("follow"), &id)) {
      std::fprintf(stderr, "sdrtrace: bad trace id: %s\n",
                   flags.GetString("follow").c_str());
      return 1;
    }
    std::fputs(query.FormatChain(id).c_str(), stdout);
    did_something = true;
  }
  if (flags.GetInt("slowest") > 0) {
    std::fputs(
        query.FormatSlowest(static_cast<size_t>(flags.GetInt("slowest")))
            .c_str(),
        stdout);
    did_something = true;
  }
  if (flags.GetBool("verdicts")) {
    std::fputs(query.FormatVerdicts().c_str(), stdout);
    did_something = true;
  }
  if (flags.GetBool("ids")) {
    for (TraceId id : query.TraceIds()) {
      std::printf("0x%llx\n", static_cast<unsigned long long>(id));
    }
    did_something = true;
  }
  if (!flags.GetString("chrome").empty()) {
    std::string json = ChromeTraceJson(data).Dump() + "\n";
    std::FILE* f = std::fopen(flags.GetString("chrome").c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
      std::fprintf(stderr, "sdrtrace: cannot write %s\n",
                   flags.GetString("chrome").c_str());
      if (f != nullptr) {
        std::fclose(f);
      }
      return 1;
    }
    std::fclose(f);
    did_something = true;
  }

  if (!did_something) {
    // Bare invocation: the summary is the most useful default.
    std::fputs(query.FormatSummary().c_str(), stdout);
  }
  return 0;
}
