// The paper's file-system example, verbatim (Section 2): the replicated
// content "should not only support operations of the type `read FileName`,
// but also operations of the type `grep Expression Path`".
//
// Files become documents keyed by path; `read` is a GET and
// `grep Expression Path` is a GREP over the half-open key range
// [Path/, Path0) — '0' is the successor of '/' in ASCII, so the range is
// exactly the subtree. The slave executes the whole scan and pledges the
// result; the client verifies before trusting a single matched line.
//
//   ./build/examples/filesystem_grep
#include <cstdio>

#include "src/core/cluster.h"

using namespace sdr;

namespace {

// `grep Expression Path` as a Query.
Query GrepPath(const std::string& expression, const std::string& path) {
  return Query::Grep(expression, path + "/", path + "0");
}

}  // namespace

int main() {
  ClusterConfig config;
  config.seed = 7;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 1;
  config.corpus.n_items = 0;  // we install our own tree below
  config.client_mode = Client::LoadMode::kManual;
  Cluster cluster(config);
  cluster.RunFor(2 * kSecond);

  // Populate a small source tree through the write protocol.
  WriteBatch tree = {
      WriteOp::Put("src/main.c", "int main(void) { return run(); }"),
      WriteOp::Put("src/run.c", "int run(void) { /* TODO: fix leak */ }"),
      WriteOp::Put("src/util/log.c", "void log(const char* m) { puts(m); }"),
      WriteOp::Put("docs/README", "build with make; see TODO list"),
      WriteOp::Put("docs/TODO", "fix leak in run(); add tests"),
  };
  bool committed = false;
  cluster.client(0).IssueWrite(tree, [&](bool ok, uint64_t version) {
    committed = ok;
    std::printf("installed %zu files at content_version %llu\n", tree.size(),
                static_cast<unsigned long long>(version));
  });
  cluster.RunFor(3 * kSecond);
  if (!committed) {
    std::printf("write failed\n");
    return 1;
  }

  // read FileName
  cluster.client(0).IssueRead(
      Query::Get("src/main.c"), [](bool ok, const QueryResult& result) {
        std::printf("read src/main.c -> %s: \"%s\"\n",
                    ok ? "verified" : "failed",
                    ok && !result.rows.empty() ? result.rows[0].second.c_str()
                                               : "");
      });
  cluster.RunFor(2 * kSecond);

  // grep Expression Path — served by the untrusted slave, pledge-verified.
  struct Case {
    const char* expression;
    const char* path;
  };
  for (const Case& c : {Case{"TODO", "src"}, Case{"TODO", "docs"},
                        Case{"leak", "src"}, Case{"leak", "docs"}}) {
    cluster.client(0).IssueRead(
        GrepPath(c.expression, c.path),
        [c](bool ok, const QueryResult& result) {
          std::printf("grep %-5s %-5s -> %s, %zu match(es)\n", c.expression,
                      c.path, ok ? "verified" : "failed", result.rows.size());
          for (const auto& [file, line] : result.rows) {
            std::printf("    %s: %s\n", file.c_str(), line.c_str());
          }
        });
    cluster.RunFor(2 * kSecond);
  }

  std::printf("\nevery grep above was computed by a marginally-trusted slave "
              "and accepted only\nafter hash + pledge-signature + freshness "
              "verification (%llu pledges audited).\n",
              static_cast<unsigned long long>(
                  cluster.auditor().metrics().pledges_received));
  return 0;
}
