// Security-level variant (paper Section 4): clients differentiate between
// "normal" and "security sensitive" reads. Sensitive reads execute only on
// trusted hosts (double-check probability 1 — the degenerate case the
// paper describes); normal reads ride the cheap slave path; an
// intermediate tier double-checks more aggressively than the default.
//
// Three clients issue the same workload at the three levels against a
// cluster whose slaves lie with 10% probability; the example shows the
// correctness/cost dial the paper describes.
//
//   ./build/examples/security_levels
#include <cstdio>

#include "src/core/cluster.h"

using namespace sdr;

int main() {
  ClusterConfig config;
  config.seed = 5150;
  config.num_masters = 1;
  config.slaves_per_master = 3;
  config.num_clients = 3;
  config.corpus.n_items = 100;
  config.params.max_latency = 1 * kSecond;
  // Exclusion is disabled for this example: with a 10%-lying slave set the
  // corrective machinery would evict everyone within seconds, hiding the
  // per-level acceptance rates we want to show. (byzantine_slave shows the
  // corrective path.)
  config.params.exclusion_enabled = false;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 50 * kMillisecond;
  // EVERY slave lies 10% of the time — a hostile CDN.
  config.slave_behavior = [](int) {
    Slave::Behavior b;
    b.lie_probability = 0.10;
    return b;
  };
  // Security levels as per-client double-check probabilities.
  struct Level {
    const char* name;
    double p;
  };
  static const Level kLevels[] = {
      {"normal      (p=0.02)", 0.02},
      {"elevated    (p=0.25)", 0.25},
      {"sensitive   (p=1.00)", 1.00},  // effectively trusted-host execution
  };
  config.tweak_client = [](int index, Client::Options& opts) {
    opts.params.double_check_probability = kLevels[index].p;
  };

  Cluster cluster(config);

  // Track wrong accepts per client (the cluster-wide counter cannot be
  // attributed, so hook each client).
  uint64_t wrong[3] = {0, 0, 0};
  QueryExecutor truth;
  for (int c = 0; c < 3; ++c) {
    cluster.client(c).on_accept = [&, c](const Query& query,
                                         const Pledge& pledge,
                                         const QueryResult& result) {
      auto store = cluster.master(0).oplog().MaterializeAt(
          pledge.token.content_version);
      if (!store.ok()) {
        return;
      }
      auto expected = truth.Execute(*store, query);
      if (expected.ok() && !(expected->result == result)) {
        ++wrong[c];
      }
    };
  }

  cluster.RunFor(120 * kSecond);

  std::printf("every slave lies on 10%% of reads; 120 virtual seconds\n\n");
  std::printf("%-22s %10s %10s %12s %14s\n", "security level", "accepted",
              "wrong", "wrong rate", "master dchecks");
  for (int c = 0; c < 3; ++c) {
    const ClientMetrics& m = cluster.client(c).metrics();
    std::printf("%-22s %10llu %10llu %11.2f%% %14llu\n", kLevels[c].name,
                static_cast<unsigned long long>(m.reads_accepted),
                static_cast<unsigned long long>(wrong[c]),
                m.reads_accepted == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(wrong[c]) /
                          static_cast<double>(m.reads_accepted),
                static_cast<unsigned long long>(m.double_checks_sent));
  }
  std::printf("\nsensitive reads are always master-verified (0 wrong, full "
              "trusted cost);\nlower levels trade a bounded wrong rate for a "
              "lighter trusted-host load\n(exclusion disabled here to expose "
              "the steady state; see byzantine_slave\nfor the corrective "
              "machinery).\n");
  return 0;
}
