// Byzantine-slave walkthrough: one CDN slave starts returning wrong
// answers with internally consistent pledges (undetectable at the client).
// Watch both detection paths from the paper fire:
//   - immediate discovery: a probabilistic double-check catches the lie
//     red-handed and the master excludes the slave on the spot;
//   - delayed discovery: the background auditor re-executes forwarded
//     pledges, finds mismatches, and has the slave excluded even when no
//     double-check ever sampled a lie.
//
//   ./build/examples/byzantine_slave
#include <cstdio>

#include "src/core/cluster.h"

using namespace sdr;

namespace {

void RunScenario(const char* title, double double_check_p, bool audit) {
  std::printf("\n--- %s (p=%.2f, audit %s) ---\n", title, double_check_p,
              audit ? "on" : "off");
  ClusterConfig config;
  config.params.audit_enabled = audit;
  config.seed = 1234;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 2;
  config.corpus.n_items = 100;
  config.params.double_check_probability = double_check_p;
  config.params.max_latency = 1 * kSecond;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 50 * kMillisecond;
  config.client_write_fraction = 0.01;  // keep versions moving
  // Slave 0 lies on 20% of reads — with a correctly signed pledge over the
  // corrupted result, so clients cannot tell.
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0) {
      b.lie_probability = 0.2;
    }
    return b;
  };

  Cluster cluster(config);
  NodeId liar = 0;
  cluster.RunFor(100 * kMillisecond);
  liar = cluster.slave(0).id();

  SimTime caught_at = -1;
  for (int step = 0; step < 1200; ++step) {
    cluster.RunFor(250 * kMillisecond);
    if (cluster.master(0).IsExcluded(liar)) {
      caught_at = cluster.sim().Now();
      break;
    }
  }

  const SlaveMetrics& sm = cluster.slave(0).metrics();
  const AuditorMetrics& am = cluster.auditor().metrics();
  if (caught_at >= 0) {
    std::printf("slave node%u EXCLUDED after %.1f virtual seconds\n", liar,
                static_cast<double>(caught_at) / kSecond);
  } else {
    std::printf("slave node%u not caught within the run\n", liar);
  }
  std::printf("  lies told: %llu, reads served: %llu\n",
              static_cast<unsigned long long>(sm.lies_told),
              static_cast<unsigned long long>(sm.reads_served));
  uint64_t dc_catches = 0, reassigned = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    dc_catches += cluster.client(c).metrics().double_check_mismatches;
    reassigned += cluster.client(c).metrics().reassignments;
  }
  std::printf("  caught by double-check: %llu, by audit: %llu mismatches\n",
              static_cast<unsigned long long>(dc_catches),
              static_cast<unsigned long long>(am.mismatches_found));
  std::printf("  clients reassigned to honest slaves: %llu\n",
              static_cast<unsigned long long>(reassigned));
  std::printf("  wrong answers accepted before exclusion: %llu"
              " (the paper's optimistic trade-off)\n",
              static_cast<unsigned long long>(cluster.accepted_wrong()));
}

}  // namespace

int main() {
  std::printf("A slave starts lying with consistent pledges...\n");
  RunScenario("immediate discovery via double-checks", 0.10, false);
  RunScenario("delayed discovery via the auditor only", 0.00, true);
  std::printf("\nEither way the signed pledge is irrefutable evidence and the "
              "slave is evicted.\n");
  return 0;
}
