// Quickstart: bring up a complete replicated deployment — directory, two
// trusted masters, an elected auditor, four marginally-trusted slaves and
// a handful of clients — then write to the content through a master and
// read it back through a slave with full pledge verification.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/cluster.h"

using namespace sdr;

int main() {
  // Configure the deployment. Everything runs on a deterministic
  // discrete-event simulator, so this program produces the same output on
  // every run.
  ClusterConfig config;
  config.seed = 2003;            // HotOS IX
  config.num_masters = 2;        // trusted, owner-controlled
  config.slaves_per_master = 2;  // marginally trusted content servers
  config.num_clients = 3;
  config.corpus.n_items = 100;   // a small product catalogue
  config.params.max_latency = 2 * kSecond;         // freshness bound
  config.params.double_check_probability = 0.05;   // Section 3.3
  config.client_mode = Client::LoadMode::kManual;  // we drive ops below

  Cluster cluster(config);
  std::printf("cluster up: %d masters + auditor, %d slaves, %d clients\n",
              cluster.num_masters(), cluster.num_slaves(),
              cluster.num_clients());

  // Let the setup phase complete: every client contacts the directory,
  // verifies master certificates against the content key, and is assigned
  // a slave (whose certificate chains to its master).
  cluster.RunFor(2 * kSecond);
  for (int c = 0; c < cluster.num_clients(); ++c) {
    std::printf("client %d: master=node%u slave=node%u\n", c,
                cluster.client(c).master(),
                cluster.client(c).assigned_slave());
  }

  // A write: sent to the client's master, totally ordered across the
  // master set, committed, then lazily pushed to the slaves.
  cluster.client(0).IssueWrite(
      {WriteOp::Put("item/00042", "limited edition espresso machine"),
       WriteOp::Put("price/00042", "64900")},
      [](bool ok, uint64_t version) {
        std::printf("write %s at content_version %llu\n",
                    ok ? "committed" : "rejected",
                    static_cast<unsigned long long>(version));
      });
  cluster.RunFor(3 * kSecond);

  // A cheap point read and an expensive aggregate, both answered by the
  // untrusted slave with a signed pledge the client verifies (hash,
  // signatures, freshness) before accepting.
  cluster.client(1).IssueRead(
      Query::Get("item/00042"), [](bool ok, const QueryResult& result) {
        std::printf("GET item/00042 -> %s: \"%s\"\n",
                    ok ? "accepted" : "failed",
                    ok && !result.rows.empty() ? result.rows[0].second.c_str()
                                               : "");
      });
  auto sum_query = Query::Parse("SUM price/ price0");
  cluster.client(2).IssueRead(
      *sum_query, [](bool ok, const QueryResult& result) {
        std::printf("SUM price/* -> %s: %lld cents across the catalogue\n",
                    ok ? "accepted" : "failed",
                    static_cast<long long>(result.scalar));
      });
  cluster.RunFor(3 * kSecond);

  // What happened under the hood:
  auto totals = cluster.ComputeTotals();
  std::printf(
      "\nprotocol activity: %llu reads accepted, %llu pledges sent to the "
      "auditor, %llu double-checks, %llu writes committed\n",
      static_cast<unsigned long long>(totals.reads_accepted),
      static_cast<unsigned long long>(totals.pledges_forwarded),
      static_cast<unsigned long long>(totals.double_checks_sent),
      static_cast<unsigned long long>(totals.writes_committed_clients));
  std::printf("auditor: %llu pledges received, %llu audited, 0 mismatches\n",
              static_cast<unsigned long long>(
                  cluster.auditor().metrics().pledges_received),
              static_cast<unsigned long long>(
                  cluster.auditor().metrics().pledges_audited));
  std::printf("ground truth: %llu accepted reads checked, %llu wrong\n",
              static_cast<unsigned long long>(cluster.accepted_checked()),
              static_cast<unsigned long long>(cluster.accepted_wrong()));
  return 0;
}
