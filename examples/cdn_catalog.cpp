// CDN product-catalogue scenario (paper Section 6): the content owner runs
// the trusted masters; a content delivery network supplies the slaves.
// A day of diurnally-shaped shopper traffic (point lookups, searches,
// price aggregations) runs against the replicated catalogue while the
// owner pushes occasional price updates — demonstrating the high
// read/write-ratio regime the architecture targets.
//
//   ./build/examples/cdn_catalog
#include <cstdio>

#include "src/core/cluster.h"

using namespace sdr;

int main() {
  ClusterConfig config;
  config.seed = 77;
  config.num_masters = 2;
  config.slaves_per_master = 3;  // the "CDN edge"
  config.num_clients = 8;        // shoppers
  config.corpus.n_items = 500;
  // Shoppers: mostly product-page lookups, some catalogue searches
  // (regex), a few storefront aggregates.
  config.mix.get_weight = 0.80;
  config.mix.scan_weight = 0.08;
  config.mix.grep_weight = 0.09;
  config.mix.agg_weight = 0.03;
  // HMAC mode keeps a day-long simulation fast on the host; the protocol
  // logic is identical (see DESIGN.md).
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.max_latency = 2 * kSecond;
  config.params.double_check_probability = 0.02;
  // One shopper in ~50 ops is actually the merchant updating prices.
  config.client_mode = Client::LoadMode::kOpenLoop;
  config.client_reads_per_second = 0.8;
  config.client_write_fraction = 0.002;
  DiurnalShape shape;  // 3 AM trough, mid-afternoon peak
  config.client_rate_multiplier = [shape](SimTime t) {
    return shape.Multiplier(t);
  };
  config.track_ground_truth = false;  // day-scale run; checked in tests

  Cluster cluster(config);
  std::printf("CDN catalogue: %zu documents, %d edge slaves, %d shoppers\n",
              config.corpus.n_items * 3, cluster.num_slaves(),
              cluster.num_clients());
  std::printf("%6s %8s %10s %10s %12s %10s\n", "hour", "load", "reads",
              "writes", "auditBacklog", "auditLag");

  DiurnalShape probe;
  uint64_t last_reads = 0;
  for (int hour = 1; hour <= 24; ++hour) {
    cluster.RunFor(1 * kHour);
    auto totals = cluster.ComputeTotals();
    if (hour % 2 == 0) {
      std::printf("%6d %8.2f %10llu %10llu %12zu %10llu\n", hour,
                  probe.Multiplier(cluster.sim().Now()),
                  static_cast<unsigned long long>(totals.reads_accepted -
                                                  last_reads),
                  static_cast<unsigned long long>(
                      cluster.master(0).metrics().writes_committed),
                  cluster.auditor().backlog(),
                  static_cast<unsigned long long>(
                      cluster.auditor().version_lag()));
    }
    last_reads = totals.reads_accepted;
  }

  auto totals = cluster.ComputeTotals();
  std::printf("\n24h summary:\n");
  std::printf("  reads accepted: %llu   writes committed: %llu  (ratio %.0f:1)\n",
              static_cast<unsigned long long>(totals.reads_accepted),
              static_cast<unsigned long long>(
                  cluster.master(0).metrics().writes_committed),
              static_cast<double>(totals.reads_accepted) /
                  std::max<uint64_t>(1,
                                     cluster.master(0).metrics().writes_committed));
  std::printf("  trusted work: %llu units   untrusted work: %llu units\n",
              static_cast<unsigned long long>(totals.master_work_units +
                                              totals.auditor_work_units),
              static_cast<unsigned long long>(totals.slave_work_units));
  std::printf("  pledges audited: %llu of %llu received (cache hits %llu)\n",
              static_cast<unsigned long long>(
                  cluster.auditor().metrics().pledges_audited),
              static_cast<unsigned long long>(
                  cluster.auditor().metrics().pledges_received),
              static_cast<unsigned long long>(
                  cluster.auditor().metrics().cache_hits));
  return 0;
}
